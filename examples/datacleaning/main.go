// Data cleaning: record de-duplication in a customer master file — the
// data-integration application the paper cites (record joining and
// de-duplication in data warehouses, Sec. I-A).
//
// Customer records arrive from multiple source systems with
// inconsistently formatted names ("Li, Wei" vs "wei li" vs "Wei  Li.").
// The example de-duplicates them with the exact-token-matching
// approximation, which the paper recommends "for data integration and
// cleaning where missing some similar records does not have a significant
// financial impact, and the computational resources are scarce"
// (Sec. V-C) — and then shows what the full fuzzy join additionally finds.
//
// Run with:
//
//	go run ./examples/datacleaning
package main

import (
	"fmt"

	tsjoin "repro"
)

type record struct {
	source string
	name   string
	email  string
}

func main() {
	records := []record{
		{"crm", "Wei Li", "wei@example.com"},
		{"billing", "Li, Wei", "wei@example.com"},
		{"support", "wei  li.", "w.li@example.com"},
		{"crm", "Johannes Brandt", "jb@example.com"},
		{"billing", "Brandt, Johanes", "jb@example.com"}, // one-char typo
		{"support", "J. Brandt", "jbrandt@example.com"},
		{"crm", "Maria Gonzalez", "mg@example.com"},
		{"billing", "Marja Gonzales", "mg2@example.com"}, // both tokens edited
		{"crm", "Ulrich Schmidt", "us@example.com"},
		{"billing", "Ulrike Schmid", "ulrike@example.com"}, // different person!
		{"crm", "Anna Kowalska", "ak@example.com"},
	}
	names := make([]string, len(records))
	for i, r := range records {
		names[i] = r.name
	}

	// Pass 1: cheap exact-token-matching for the bulk of duplicates.
	cheap, err := tsjoin.SelfJoin(names, tsjoin.Options{
		Threshold: 0.15,
		Matching:  tsjoin.ExactTokenMatching,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("duplicates found by exact-token-matching (cheap pass):")
	printPairs(records, cheap)

	// Pass 2: the full fuzzy join catches duplicates that share no exact
	// token — "Maria Gonzalez" vs "Marja Gonzales" has an edit in every
	// token, so exact-token-matching never even considers the pair.
	full, err := tsjoin.SelfJoin(names, tsjoin.Options{Threshold: 0.15})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nduplicates found by the full fuzzy join:")
	printPairs(records, full)

	extra := len(full) - len(cheap)
	fmt.Printf("\nfuzzy matching recovered %d extra duplicate pair(s)\n", extra)

	// Note the near-miss: "Ulrich Schmidt" vs "Ulrike Schmid" shares
	// most characters, but the NSLD of the full names keeps distinct
	// people apart at this threshold.
	d := tsjoin.NSLD("Ulrich Schmidt", "Ulrike Schmid")
	fmt.Printf("distinct people stay apart: NSLD(\"Ulrich Schmidt\", \"Ulrike Schmid\") = %.3f > 0.15\n", d)
}

func printPairs(records []record, pairs []tsjoin.Pair) {
	if len(pairs) == 0 {
		fmt.Println("  (none)")
		return
	}
	for _, p := range pairs {
		fmt.Printf("  [%s] %-18q ~ [%s] %-18q NSLD=%.3f\n",
			records[p.A].source, records[p.A].name,
			records[p.B].source, records[p.B].name, p.NSLD)
	}
}
