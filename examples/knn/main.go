// Watchlist screening with K-nearest-neighbor queries.
//
// Because NSLD is a metric (Theorem 2), exact KNN and range queries work
// on a standard metric index — here a vantage-point tree. The example
// screens incoming account sign-ups against a watchlist of known-bad
// identities, a streaming complement to the batch self-join.
//
// Run with:
//
//	go run ./examples/knn
package main

import (
	"fmt"

	tsjoin "repro"
	"repro/internal/namegen"
)

func main() {
	// The watchlist: identities from previously-caught fraud rings.
	watchlist := namegen.Generate(namegen.Config{Seed: 99, NumNames: 5000})
	ix := tsjoin.NewIndex(watchlist)
	fmt.Printf("watchlist: %d identities indexed under NSLD\n\n", ix.Len())

	// Incoming sign-ups: some benign, some adversarial edits of
	// watchlisted identities.
	signups := []string{
		watchlist[17],                   // exact re-use
		perturbed(watchlist[17]),        // slightly edited re-use
		perturbed(watchlist[4242]),      // another ring member
		"genuinely new person xyzzy qu", // benign
	}

	const screenT = 0.15
	for _, s := range signups {
		fmt.Printf("sign-up %q\n", s)
		hits := ix.Within(s, screenT)
		if len(hits) == 0 {
			fmt.Printf("  clean at T=%.2f; nearest watchlist entries:\n", screenT)
			for _, n := range ix.Nearest(s, 2) {
				fmt.Printf("    %-28q NSLD=%.4f\n", n.Name, n.Distance)
			}
			continue
		}
		fmt.Printf("  MATCHES %d watchlist identit%s:\n", len(hits), plural(len(hits)))
		for i, n := range hits {
			if i == 3 {
				fmt.Printf("    ... and %d more\n", len(hits)-3)
				break
			}
			fmt.Printf("    %-28q NSLD=%.4f\n", n.Name, n.Distance)
		}
	}
}

// perturbed applies a simple adversarial edit: swap the tokens and damage
// one character — invisible to humans, fatal to exact matching.
func perturbed(name string) string {
	r := []rune(name)
	// Swap the two halves around the first space and edit one rune.
	for i, c := range r {
		if c == ' ' {
			swapped := append(append([]rune{}, r[i+1:]...), ' ')
			swapped = append(swapped, r[:i]...)
			if len(swapped) > 2 {
				swapped[1] = 'x'
			}
			return string(swapped)
		}
	}
	return name + " x"
}

func plural(n int) string {
	if n == 1 {
		return "y"
	}
	return "ies"
}
