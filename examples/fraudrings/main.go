// Fraud-ring detection: the paper's motivating application (Sec. I-A).
//
// A synthetic population of account names is generated with planted fraud
// rings — clusters of slightly-edited variants of one identity, the way a
// fraudster stretches a single bank-account holder across many accounts.
// The example self-joins the names under NSLD, builds the similarity
// graph, clusters it with connected components, and scores the recovered
// clusters against the planted ground truth.
//
// Run with:
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"

	tsjoin "repro"
	"repro/internal/namegen"
)

func main() {
	const numNames = 4000
	names, rings := namegen.GenerateWithRings(namegen.Config{
		Seed:     2024,
		NumNames: numNames,
	})
	fmt.Printf("population: %d account names, %d planted rings\n", len(names), len(rings))

	// Pair-wise compare all accounts: the TSJ self-join replaces the
	// infeasible N^2 comparison (here ~8M pairs; 1.9e15 at the paper's
	// scale).
	pairs, st, err := tsjoin.SelfJoinStats(names, tsjoin.Options{
		Threshold:    0.12,
		MaxTokenFreq: 1000,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("similarity edges: %d (verified %d of %d candidate pairs)\n",
		len(pairs), st.Verified, st.DedupedCandidates)

	// Cluster the similarity graph: connected components via union-find.
	uf := newUnionFind(len(names))
	for _, p := range pairs {
		uf.union(p.A, p.B)
	}
	clusters := make(map[int][]int)
	for i := range names {
		root := uf.find(i)
		clusters[root] = append(clusters[root], i)
	}
	var flagged [][]int
	for _, members := range clusters {
		if len(members) >= 2 {
			flagged = append(flagged, members)
		}
	}
	fmt.Printf("flagged clusters (>=2 accounts): %d\n", len(flagged))

	// Score against ground truth: a planted ring is "caught" when some
	// flagged cluster contains at least two of its members.
	caught := 0
	for _, ring := range rings {
		if len(ring.Members) < 2 {
			continue
		}
		root := uf.find(ring.Members[0])
		linked := 1
		for _, m := range ring.Members[1:] {
			if uf.find(m) == root {
				linked++
			}
		}
		if linked >= 2 {
			caught++
		}
	}
	fmt.Printf("rings caught: %d / %d (%.1f%%)\n",
		caught, len(rings), 100*float64(caught)/float64(len(rings)))

	// Show the largest flagged cluster — what an analyst would review.
	var largest []int
	for _, c := range flagged {
		if len(c) > len(largest) {
			largest = c
		}
	}
	fmt.Println("\nlargest flagged cluster:")
	for _, id := range largest {
		fmt.Printf("  account %4d  %q\n", id, names[id])
	}
}

// unionFind is a standard disjoint-set forest with path compression and
// union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
