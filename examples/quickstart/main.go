// Quickstart: the NSLD distance and a small self-join.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	tsjoin "repro"
)

func main() {
	// --- Distances -------------------------------------------------------
	// NSLD compares token *multisets*: token order and punctuation do not
	// matter, small edits inside tokens cost little, and the value is
	// normalized to [0, 1].
	fmt.Println("distances:")
	for _, pair := range [][2]string{
		{"Barak Obama", "Obama, Barak"},      // shuffle: identical multisets
		{"Barak Obama", "Burak Ubama"},       // two 1-char edits
		{"Barak Obama", "Obamma, Boraak H."}, // the paper's fraud example
		{"Barak Obama", "John Smith"},        // unrelated
	} {
		fmt.Printf("  NSLD(%q, %q) = %.4f  (SLD=%d, LD=%d)\n",
			pair[0], pair[1],
			tsjoin.NSLD(pair[0], pair[1]),
			tsjoin.SLD(pair[0], pair[1]),
			tsjoin.LD(pair[0], pair[1]))
	}

	// --- Self-join --------------------------------------------------------
	// Find every pair of accounts whose names are within NSLD 0.25 — the
	// pairs an abuse-detection pipeline would link in its similarity
	// graph.
	names := []string{
		"Barak Obama",
		"Obama, Barak H.",
		"Burak Ubama",
		"John Smith",
		"Smith John",
		"Jon Smyth",
		"Mary Huang",
	}
	pairs, err := tsjoin.SelfJoin(names, tsjoin.Options{Threshold: 0.25})
	if err != nil {
		panic(err)
	}
	fmt.Println("\nsimilar pairs at T=0.25:")
	for _, p := range pairs {
		fmt.Printf("  %-18q ~ %-18q NSLD=%.4f\n", names[p.A], names[p.B], p.NSLD)
	}

	// --- Nearest neighbors -------------------------------------------------
	// NSLD is a metric, so exact KNN queries work out of the box.
	ix := tsjoin.NewIndex(names)
	fmt.Println("\n3 nearest neighbors of \"barak h obama\":")
	for _, n := range ix.Nearest("barak h obama", 3) {
		fmt.Printf("  %-18q NSLD=%.4f\n", n.Name, n.Distance)
	}
}
