package tsjoin

import (
	"math"
	"testing"
)

func TestJoinBipartiteAPI(t *testing.T) {
	watchlist := []string{"barak obama", "mary huang", "wei chen"}
	signups := []string{"burak obama", "wei chen jr", "totally new"}
	pairs, err := Join(watchlist, signups, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]float64)
	for _, p := range pairs {
		if p.A < 0 || p.A >= len(watchlist) || p.B < 0 || p.B >= len(signups) {
			t.Fatalf("pair indices out of range: %+v", p)
		}
		got[[2]int{p.A, p.B}] = p.NSLD
	}
	// burak obama ~ barak obama: SLD 1 over L=10+10 -> 2/21 ≈ 0.095.
	if _, ok := got[[2]int{0, 0}]; !ok {
		t.Fatalf("missing obama pair in %v", got)
	}
	// wei chen ~ wei chen jr: SLD 2 (grow "jr") over 7+9 -> 4/18 ≈ 0.22 > 0.2.
	if _, ok := got[[2]int{2, 1}]; ok {
		t.Fatal("wei chen jr should be beyond 0.2")
	}
	// Cross-check every returned pair against the direct distance.
	for k, d := range got {
		if want := NSLD(watchlist[k[0]], signups[k[1]]); math.Abs(want-d) > 1e-12 {
			t.Fatalf("pair %v distance %v, direct %v", k, d, want)
		}
	}
}

// TestJoinForwardsPrefixFilterKnob: the public bipartite API honors
// Options.DisablePrefixFilter — disabling it zeroes Stats.PrefixPruned
// and returns the identical pair set.
func TestJoinForwardsPrefixFilterKnob(t *testing.T) {
	r := []string{"maria del carmen", "jose luis garcia", "wei chen"}
	p := []string{"maria del karmen", "jose luis garzia", "brand new"}
	opts := Options{Threshold: 0.15}
	filtered, fst, err := JoinStats(r, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.DisablePrefixFilter = true
	plain, pst, err := JoinStats(r, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pst.PrefixPruned != 0 {
		t.Fatalf("PrefixPruned=%d with the filter disabled: knob not forwarded", pst.PrefixPruned)
	}
	if len(filtered) != len(plain) || len(filtered) != 2 {
		t.Fatalf("pair sets differ across the knob: %d filtered vs %d plain", len(filtered), len(plain))
	}
	for i := range filtered {
		if filtered[i] != plain[i] {
			t.Fatalf("pair %d differs: %+v vs %+v", i, filtered[i], plain[i])
		}
	}
	if fst.SharedTokenCandidates > pst.SharedTokenCandidates {
		t.Fatalf("filter grew the candidate stream (%d vs %d)",
			fst.SharedTokenCandidates, pst.SharedTokenCandidates)
	}
}

func TestJoinMatchesSelfJoinOnMirror(t *testing.T) {
	// Joining a list against itself must contain the self-join pairs plus
	// the diagonal.
	names := []string{"anna lee", "ana lee", "bob ross", "bob r0ss"}
	self, err := SelfJoin(names, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cross, err := Join(names, names, Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	crossSet := make(map[[2]int]bool)
	for _, p := range cross {
		crossSet[[2]int{p.A, p.B}] = true
	}
	for i := range names {
		if !crossSet[[2]int{i, i}] {
			t.Fatalf("diagonal pair (%d,%d) missing", i, i)
		}
	}
	for _, p := range self {
		if !crossSet[[2]int{p.A, p.B}] || !crossSet[[2]int{p.B, p.A}] {
			t.Fatalf("self-join pair %+v missing from cross join (both orientations)", p)
		}
	}
}

func TestSimilarityConversions(t *testing.T) {
	if SimLinear(0) != 1 || SimLinear(1) != 0 {
		t.Error("SimLinear endpoints wrong")
	}
	if SimReciprocal(0) != 1 || math.Abs(SimReciprocal(1)-0.5) > 1e-12 {
		t.Error("SimReciprocal endpoints wrong")
	}
	if SimExponential(0) != 1 || math.Abs(SimExponential(1)-math.Exp(-1)) > 1e-12 {
		t.Error("SimExponential endpoints wrong")
	}
	// All are strictly decreasing on [0, 1].
	for d := 0.0; d < 1.0; d += 0.1 {
		for _, f := range []func(float64) float64{SimLinear, SimReciprocal, SimExponential} {
			if f(d+0.05) >= f(d) {
				t.Fatal("conversion not strictly decreasing")
			}
		}
	}
}
