package tsjoin

import (
	"repro/internal/core"
	"repro/internal/token"
	"repro/internal/vptree"
)

// Index is a K-nearest-neighbor index over names under the NSLD metric —
// the metric-space application the paper motivates in Sec. II-D. Queries
// are exact; correctness rests on NSLD's triangle inequality (Theorem 2).
type Index struct {
	names []string
	tree  *vptree.Tree[token.TokenizedString]
	tok   Tokenizer
}

// Neighbor is one query result.
type Neighbor struct {
	// ID indexes the name slice the Index was built from.
	ID int
	// Name is the indexed string.
	Name string
	// Distance is NSLD(query, name).
	Distance float64
}

// NewIndex builds an NSLD index over names with the default tokenizer.
func NewIndex(names []string) *Index { return NewIndexTokenizer(names, nil) }

// NewIndexTokenizer builds an index with a custom tokenizer.
func NewIndexTokenizer(names []string, tok Tokenizer) *Index {
	if tok == nil {
		tok = token.WhitespaceAndPunct
	}
	items := make([]token.TokenizedString, len(names))
	for i, n := range names {
		items[i] = tok(n)
	}
	metric := func(a, b token.TokenizedString) float64 { return core.NSLD(a, b) }
	return &Index{
		names: names,
		tree:  vptree.New(items, metric, 1),
		tok:   tok,
	}
}

// Nearest returns the k indexed names closest to query under NSLD,
// ordered by distance.
func (ix *Index) Nearest(query string, k int) []Neighbor {
	idx, dists := ix.tree.Nearest(ix.tok(query), k)
	return ix.neighbors(idx, dists)
}

// Within returns every indexed name with NSLD(query, name) <= r, ordered
// by distance.
func (ix *Index) Within(query string, r float64) []Neighbor {
	idx, dists := ix.tree.Within(ix.tok(query), r)
	return ix.neighbors(idx, dists)
}

// Len returns the number of indexed names.
func (ix *Index) Len() int { return ix.tree.Len() }

func (ix *Index) neighbors(idx []int, dists []float64) []Neighbor {
	out := make([]Neighbor, len(idx))
	for i := range idx {
		out[i] = Neighbor{ID: idx[i], Name: ix.names[idx[i]], Distance: dists[i]}
	}
	return out
}
