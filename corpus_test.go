package tsjoin

import (
	"reflect"
	"testing"
)

// TestOpenCorpusJoinAndRestart drives the public persistent-corpus API
// end to end: add, delete, self-join at two thresholds with zero order
// rebuilds, snapshot, reopen, identical join.
func TestOpenCorpusJoinAndRestart(t *testing.T) {
	names := []string{
		"barak obama", "barack obama", "barak h obama",
		"angela merkel", "angela merkle",
		"emmanuel macron", "emanuel macron",
		"unrelated person",
	}
	dir := t.TempDir()
	c, err := OpenCorpus(dir, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		id, err := c.Add(n)
		if err != nil {
			t.Fatal(err)
		}
		if id != i {
			t.Fatalf("Add id = %d, want %d", id, i)
		}
	}
	if err := c.Delete(2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != len(names) || c.Live() != len(names)-1 {
		t.Fatalf("Len=%d Live=%d", c.Len(), c.Live())
	}

	rebuilds := c.Stats().OrderRebuilds
	loose, err := c.SelfJoin(Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := c.SelfJoin(Options{Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().OrderRebuilds; got != rebuilds {
		t.Fatalf("joins rebuilt the order: %d -> %d", rebuilds, got)
	}
	if len(loose) == 0 || len(tight) >= len(loose) {
		t.Fatalf("threshold sweep implausible: %d pairs at 0.3, %d at 0.05", len(loose), len(tight))
	}
	for _, p := range loose {
		if p.A == 2 || p.B == 2 {
			t.Fatalf("deleted id joined: %+v", p)
		}
	}
	// The corpus join must agree with the plain one-shot join on the live
	// strings (ids preserved through the tombstone).
	var liveNames []string
	for i, n := range names {
		if i == 2 {
			n = "\x00placeholder-never-matches-anything-at-all"
		}
		liveNames = append(liveNames, n)
	}
	want, err := SelfJoin(liveNames, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, loose) {
		t.Fatalf("corpus join %v != one-shot join %v", loose, want)
	}

	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCorpus(dir, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	again, err := r.SelfJoin(Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loose, again) {
		t.Fatal("reopened corpus joins differently")
	}
}

// TestConcurrentMatcherFromCorpus: public warm-start path — matcher adds
// persist, and a rebuilt matcher answers identically.
func TestConcurrentMatcherFromCorpus(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCorpus(dir, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewConcurrentMatcherFromCorpus(c, ConcurrentMatcherOptions{
		MatcherOptions: MatcherOptions{Threshold: 0.2},
		Shards:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"john smith", "jon smith", "ann lee", "an lee"}
	for _, n := range names {
		if _, _, err := m.AddDurable(n); err != nil {
			t.Fatal(err)
		}
	}
	want := m.Query("jonn smith")
	m.Close()
	c.Close()

	c2, err := OpenCorpus(dir, CorpusOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	m2, err := NewConcurrentMatcherFromCorpus(c2, ConcurrentMatcherOptions{
		MatcherOptions: MatcherOptions{Threshold: 0.2},
		Shards:         4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != len(names) {
		t.Fatalf("warm Len = %d, want %d", m2.Len(), len(names))
	}
	got := m2.Query("jonn smith")
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("warm-restart query differs: %v != %v", got, want)
	}
}
