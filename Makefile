# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/stream/... ./internal/tsj/...

bench:
	$(GO) test -run='^$$' -bench=BenchmarkShardedAdd -benchtime=1x .

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

ci: build lint test race bench
