# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-verify bench-candidates bench-segment bench-corpus equivalence-guard lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/stream/... ./internal/tsj/... ./internal/core/... ./internal/assignment/... ./internal/corpus/... ./internal/histo/...

bench:
	$(GO) test -run='^$$' -bench=BenchmarkShardedAdd -benchtime=1x .

bench-verify:
	$(GO) test -run='^$$' -bench='SLD|Verify' -benchtime=1x -benchmem .

bench-candidates:
	$(GO) test -run='^$$' -bench='Candidates|Prefix' -benchtime=1x -benchmem .

bench-segment:
	$(GO) test -run='^$$' -bench=SegmentProbe -benchtime=1x -benchmem ./internal/stream/

bench-corpus:
	$(GO) test -run='^$$' -bench='CorpusAdd|SnapshotLoad|WALReplay' -benchtime=1x -benchmem ./internal/corpus/

equivalence-guard:
	@out=$$($(GO) test -v -run 'TestBoundedEquivalence|TestPrefixEquivalence|TestSegmentPrefixEquivalence|TestRestartEquivalence' ./internal/... 2>&1) || { echo "$$out"; exit 1; }; \
	for pat in TestBoundedEquivalence TestPrefixEquivalence TestSegmentPrefixEquivalence TestRestartEquivalence; do \
		if ! echo "$$out" | grep -q -- "--- PASS: $$pat"; then \
			echo "no $$pat tests ran"; exit 1; fi; \
		if echo "$$out" | grep -q -- "--- SKIP: $$pat"; then \
			echo "$$pat tests were skipped"; exit 1; fi; \
	done; \
	echo "equivalence guard (bounded + prefix + segment-prefix + restart): ok"

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

ci: build lint test race equivalence-guard bench bench-verify bench-candidates bench-segment bench-corpus
