# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test race bench bench-verify equivalence-guard lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/stream/... ./internal/tsj/... ./internal/core/... ./internal/assignment/...

bench:
	$(GO) test -run='^$$' -bench=BenchmarkShardedAdd -benchtime=1x .

bench-verify:
	$(GO) test -run='^$$' -bench='SLD|Verify' -benchtime=1x -benchmem .

equivalence-guard:
	@out=$$($(GO) test -v -run TestBoundedEquivalence ./internal/... 2>&1) || { echo "$$out"; exit 1; }; \
	if ! echo "$$out" | grep -q -- '--- PASS: TestBoundedEquivalence'; then \
		echo "no TestBoundedEquivalence tests ran"; exit 1; fi; \
	if echo "$$out" | grep -q -- '--- SKIP: TestBoundedEquivalence'; then \
		echo "TestBoundedEquivalence tests were skipped"; exit 1; fi; \
	echo "bounded-equivalence guard: ok"

lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

ci: build lint test race equivalence-guard bench bench-verify
