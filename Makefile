# Mirrors .github/workflows/ci.yml so local runs and CI stay in lockstep.

GO ?= go

.PHONY: all build test test-nosimd test-arm64 race torture replication-torture cluster-e2e bench bench-verify bench-candidates bench-segment bench-corpus bench-json bench-compare fuzz-smoke equivalence-guard lint ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The portable scalar path must stay green on its own: the nosimd build
# tag compiles the vector kernel out entirely, exactly like a non-AVX2
# host.
test-nosimd:
	$(GO) test -tags nosimd ./...

# Cross-compile everything (tests included) for arm64 to prove the
# build-tag fences hold off-amd64; when a qemu-aarch64 user-mode
# emulator is on PATH (CI's arm64 leg) the test binaries run under it,
# otherwise they are compiled and discarded via -exec /bin/true.
test-arm64:
	CGO_ENABLED=0 GOOS=linux GOARCH=arm64 $(GO) build ./...
	CGO_ENABLED=0 GOOS=linux GOARCH=arm64 $(GO) vet ./...
	@qemu=$$(command -v qemu-aarch64-static || command -v qemu-aarch64); \
	if [ -n "$$qemu" ]; then \
		echo "arm64 tests under $$qemu"; \
		CGO_ENABLED=0 GOOS=linux GOARCH=arm64 $(GO) test -exec "$$qemu" -count=1 ./... && \
		out=$$(CGO_ENABLED=0 GOOS=linux GOARCH=arm64 $(GO) test -exec "$$qemu" -v -run TestNEONKernelLive -count=1 ./internal/strdist/simd/ 2>&1) || { echo "$$out"; exit 1; }; \
		if ! echo "$$out" | grep -q -- "--- PASS: TestNEONKernelLive"; then \
			echo "$$out"; echo "TestNEONKernelLive did not pass — NEON kernel never executed"; exit 1; fi; \
		echo "NEON kernel liveness: ok"; \
	else \
		echo "qemu-aarch64 absent: arm64 compile-only (tests built, not run; CI's arm64 leg executes them)"; \
		CGO_ENABLED=0 GOOS=linux GOARCH=arm64 $(GO) test -exec /bin/true -count=1 ./... >/dev/null; \
	fi

# Bounded coverage-guided exploration of the two distance-kernel fuzz
# targets; their seed corpora also run in every plain `go test`.
fuzz-smoke:
	$(GO) test -fuzz FuzzLevenshteinSIMDEquivalence -fuzztime 30s ./internal/strdist/simd/
	$(GO) test -fuzz FuzzLevenshteinBoundedU16 -fuzztime 30s ./internal/strdist/

race:
	$(GO) test -race ./internal/stream/... ./internal/tsj/... ./internal/core/... ./internal/assignment/... ./internal/corpus/... ./internal/histo/... ./internal/replica/... ./internal/backoff/... ./internal/httpx/... ./internal/distrib/... ./cmd/tsjserve/...

# Storage fault-injection suite under the race detector: the op-sweep
# torture test (every WAL/snapshot/compact I/O operation failed in turn,
# then reopen + invariant check), degraded-mode sealing and recovery,
# and the bit-rot loud-failure contract — plus the serving layer's
# degraded-mode end-to-end test. -short strides the sweep; the full
# sweep runs in the plain `test` target.
torture:
	$(GO) test -race -short -run 'Torture|Degraded|BitRot' -count=1 ./internal/corpus/ ./cmd/tsjserve/

# Replication torture under the race detector: every shipped WAL frame
# failed in turn (drop, torn write, delay, standby crash, primary
# crash), plus promotion and restart equivalence, and the serving
# layer's failover end-to-end test. -short strides the frame sweep; the
# full sweep runs in the plain `test` target.
replication-torture:
	$(GO) test -race -short -run 'Replication|Promotion|Failover' -count=1 ./internal/replica/ ./cmd/tsjserve/

# Cluster end-to-end under the race detector: one coordinator over two
# real tsjserve workers (worker 0 with a warm replication standby) —
# add/join/query/distributed-selfjoin traffic byte-compared against a
# single node, then kill worker 0 and require hedged reads, heartbeat
# detection, real standby promotion, and a repointed partition map. The
# guard fails if the test is skipped or has gone missing.
cluster-e2e:
	@out=$$($(GO) test -race -v -run TestClusterE2E -count=1 ./cmd/tsjserve/ 2>&1) || { echo "$$out"; exit 1; }; \
	if ! echo "$$out" | grep -q -- "--- PASS: TestClusterE2E"; then \
		echo "$$out"; echo "TestClusterE2E did not run (missing or skipped)"; exit 1; fi; \
	echo "cluster e2e (kill-worker failover + single-node equivalence): ok"

bench:
	$(GO) test -run='^$$' -bench=BenchmarkShardedAdd -benchtime=1x .

bench-verify:
	$(GO) test -run='^$$' -bench='SLD|Verify' -benchtime=1x -benchmem .

bench-candidates:
	$(GO) test -run='^$$' -bench='Candidates|Prefix' -benchtime=1x -benchmem .

bench-segment:
	$(GO) test -run='^$$' -bench=SegmentProbe -benchtime=1x -benchmem ./internal/stream/

bench-corpus:
	$(GO) test -run='^$$' -bench='CorpusAdd|SnapshotLoad|WALReplay' -benchtime=1x -benchmem ./internal/corpus/

# Full benchmark pass rendered into one machine-readable artifact per
# commit (CI uploads these so perf trajectories can be diffed offline).
bench-json:
	@sha=$$(git rev-parse --short HEAD 2>/dev/null || echo unknown); \
	{ $(GO) test -run='^$$' -bench='SLD|Verify' -benchmem . && \
	  $(GO) test -run='^$$' -bench='Candidates|Prefix' -benchtime=1x -benchmem . && \
	  $(GO) test -run='^$$' -bench=SegmentProbe -benchtime=1x -benchmem ./internal/stream/ && \
	  $(GO) test -run='^$$' -bench='CorpusAdd|SnapshotLoad|WALReplay' -benchtime=1x -benchmem ./internal/corpus/; } \
	| $(GO) run ./cmd/benchjson -commit "$$sha" -o "BENCH_$$sha.json"

# Warn-only diff of two bench-json artifacts: flags every time metric
# (ns/op, ns/pair) that moved beyond THRESHOLD percent. Usage:
#   make bench-compare OLD=BENCH_old.json NEW=BENCH_new.json [THRESHOLD=10]
THRESHOLD ?= 10
bench-compare:
	@test -n "$(OLD)" && test -n "$(NEW)" || { echo "usage: make bench-compare OLD=old.json NEW=new.json [THRESHOLD=10]"; exit 2; }
	$(GO) run ./cmd/benchjson -compare -warn-only -threshold $(THRESHOLD) $(OLD) $(NEW)

equivalence-guard:
	@out=$$($(GO) test -v -run 'TestBoundedEquivalence|TestPrefixEquivalence|TestSegmentPrefixEquivalence|TestRestartEquivalence|TestSIMDEquivalence|TestTortureOpSweep|TestReplicationTortureSweep|TestPromotionEquivalence|TestJoinCorpusEquivalence|TestClusterEquivalence|TestClusterE2E' ./internal/... ./cmd/tsjserve/ 2>&1) || { echo "$$out"; exit 1; }; \
	for pat in TestBoundedEquivalence TestPrefixEquivalence TestSegmentPrefixEquivalence TestRestartEquivalence TestSIMDEquivalence TestTortureOpSweep TestReplicationTortureSweep TestPromotionEquivalence TestJoinCorpusEquivalence TestClusterEquivalence TestClusterE2E; do \
		if ! echo "$$out" | grep -q -- "--- PASS: $$pat"; then \
			echo "no $$pat tests ran"; exit 1; fi; \
		if echo "$$out" | grep -q -- "--- SKIP: $$pat"; then \
			echo "$$pat tests were skipped"; exit 1; fi; \
	done; \
	echo "equivalence guard (bounded + prefix + segment-prefix + restart + simd + torture + replication + corpus-join + cluster): ok"

# vet + gofmt always; staticcheck and govulncheck when installed (CI
# installs both — locally they degrade to a notice, never a failure).
lint:
	$(GO) vet ./...
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; \
	else echo "staticcheck not installed; skipping (CI runs it)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; \
	else echo "govulncheck not installed; skipping (CI runs it)"; fi

ci: build lint test test-nosimd race torture replication-torture cluster-e2e equivalence-guard bench bench-verify bench-candidates bench-segment bench-corpus
