package tsjoin

import "repro/internal/stream"

// ConcurrentMatcher is the concurrent incremental NSLD matcher: the
// inverted and segment indexes are partitioned across N shards by token
// hash, each arrival's candidate generation fans out to the shards
// through a persistent worker pool, and verification runs in parallel.
// Results are identical to the sequential Matcher's for any shard count.
//
// Adds are serialized with each other (ids are assigned in arrival
// order); Query runs concurrently with everything, so mixed Add/Query
// traffic scales with the shard count. This is the serving-layer building
// block behind cmd/tsjserve.
type ConcurrentMatcher struct {
	m *stream.ShardedMatcher
}

// ConcurrentMatcherOptions configures a ConcurrentMatcher.
type ConcurrentMatcherOptions struct {
	MatcherOptions
	// Shards is the index partition count and parallelism knob
	// (0 = GOMAXPROCS).
	Shards int
}

// MatcherStats is a snapshot of a ConcurrentMatcher's state and traffic.
type MatcherStats = stream.ShardedStats

// NewConcurrentMatcher creates an empty concurrent matcher. Call Close
// when done to release the worker pool.
func NewConcurrentMatcher(opts ConcurrentMatcherOptions) (*ConcurrentMatcher, error) {
	m, err := stream.NewShardedMatcher(streamOptions(opts), opts.Shards)
	if err != nil {
		return nil, err
	}
	return &ConcurrentMatcher{m: m}, nil
}

// NewConcurrentMatcherFromCorpus warm-starts a concurrent matcher from a
// persistent corpus: every string already in the corpus is bulk-loaded
// into the index (no matching, no verification — a restart costs one
// linear pass over local state), ids are the corpus ids, and the matcher
// stays attached: each subsequent Add/AddAll appends to the corpus WAL
// before the string becomes visible, so the matcher can always be
// rebuilt, byte-identically, from the directory it left behind.
//
// While a matcher is attached, route all writes through it: an Add
// straight to the corpus desynchronizes the id spaces (the matcher
// detects this and fails the next durable add), and a Corpus.Delete
// alone leaves the live index serving the string until the next restart
// (use ConcurrentMatcher.Delete). Close the matcher before closing the
// corpus.
func NewConcurrentMatcherFromCorpus(c *Corpus, opts ConcurrentMatcherOptions) (*ConcurrentMatcher, error) {
	m, err := stream.NewShardedFromCorpus(streamOptions(opts), opts.Shards, c.c)
	if err != nil {
		return nil, err
	}
	return &ConcurrentMatcher{m: m}, nil
}

func streamOptions(opts ConcurrentMatcherOptions) stream.Options {
	return stream.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Greedy:                     opts.Greedy,
		ExactTokensOnly:            opts.ExactTokensOnly,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
		Tokenizer:                  opts.Tokenizer,
	}
}

// Add matches s against every previously added string, then indexes it,
// returning the new string's id and the matches sorted by id. Safe for
// concurrent use.
func (m *ConcurrentMatcher) Add(s string) (id int, matches []Match) { return m.m.Add(s) }

// AddAll adds a batch atomically with respect to other writers: the batch
// occupies the dense id range [first, first+len(names)). Element i holds
// the matches of names[i], including matches to earlier batch elements.
func (m *ConcurrentMatcher) AddAll(names []string) (first int, matches [][]Match) {
	return m.m.AddAll(names)
}

// AddDurable is Add with the persistence error surfaced (corpus-backed
// matchers only; on an in-memory matcher it never fails). On a WAL
// failure nothing is indexed and id is -1.
func (m *ConcurrentMatcher) AddDurable(s string) (id int, matches []Match, err error) {
	return m.m.AddDurable(s)
}

// AddAllDurable is AddAll with the persistence error surfaced: the batch
// is WAL-appended with one group-commit fsync before any element is
// indexed.
func (m *ConcurrentMatcher) AddAllDurable(names []string) (first int, matches [][]Match, err error) {
	return m.m.AddAllDurable(names)
}

// Delete tombstones a string: it stops matching immediately, and on a
// corpus-backed matcher the delete is WAL-durable. Always delete through
// the matcher while one is attached — Corpus.Delete alone would leave
// the live index serving the string until the next restart.
func (m *ConcurrentMatcher) Delete(id int) error { return m.m.Delete(id) }

// Query matches s against everything added so far without indexing it.
// Safe for concurrent use with Adds and other Queries.
func (m *ConcurrentMatcher) Query(s string) []Match { return m.m.Query(s) }

// ApplyShipped applies one replicated record — a payload shipped from a
// primary corpus's WAL — to a corpus-backed matcher: the record is
// persisted locally first, then indexed without matching (a standby
// serves queries; it does not generate match results for replicated
// arrivals). Applying the primary's committed stream in order
// reproduces its id space, alive mask and LSN exactly.
func (m *ConcurrentMatcher) ApplyShipped(payload []byte) error { return m.m.ApplyShipped(payload) }

// LSN returns the backing corpus's logical sequence number (0 for an
// in-memory matcher) — the replication offset space.
func (m *ConcurrentMatcher) LSN() uint64 {
	if c := m.m.Corpus(); c != nil {
		return c.LSN()
	}
	return 0
}

// Degraded reports the backing corpus's degraded state (see
// Corpus.Degraded): nil while healthy or for an in-memory matcher,
// otherwise an ErrDegraded-wrapped error. Queries keep serving from
// the live index either way; durable writes fail fast until the corpus
// is healed (Corpus.Recover).
func (m *ConcurrentMatcher) Degraded() error {
	if c := m.m.Corpus(); c != nil {
		return c.Degraded()
	}
	return nil
}

// Len returns the number of indexed strings.
func (m *ConcurrentMatcher) Len() int { return m.m.Len() }

// Shards returns the index partition count.
func (m *ConcurrentMatcher) Shards() int { return m.m.Shards() }

// Stats snapshots the matcher's state and traffic counters.
func (m *ConcurrentMatcher) Stats() MatcherStats { return m.m.Stats() }

// Close stops the worker pool. The matcher must not be used afterwards.
func (m *ConcurrentMatcher) Close() { m.m.Close() }
