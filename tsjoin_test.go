package tsjoin

import (
	"math"
	"testing"
)

func TestDistanceFunctions(t *testing.T) {
	if got := LD("Thomson", "Thompson"); got != 1 {
		t.Errorf("LD = %d, want 1", got)
	}
	if got := NLD("Thomson", "Thompson"); got != 0.125 {
		t.Errorf("NLD = %v, want 0.125", got)
	}
	// Paper Sec. II-D example under explicit tokens.
	x := NewTokenizedString([]string{"chan", "kalan"})
	y := NewTokenizedString([]string{"chank", "alan"})
	if got := SLDTokens(x, y); got != 2 {
		t.Errorf("SLDTokens = %d, want 2", got)
	}
	if got := NSLDTokens(x, y); got != 0.2 {
		t.Errorf("NSLDTokens = %v, want 0.2", got)
	}
	// Token order and punctuation are irrelevant.
	if got := NSLD("Obama, Barak", "barak obama"); got != 0 {
		t.Errorf("NSLD of shuffled/punctuated = %v, want 0", got)
	}
	if got := SLD("Barak Obama", "Burak Ubama"); got != 2 {
		t.Errorf("SLD = %d, want 2", got)
	}
}

func TestSelfJoinQuickstart(t *testing.T) {
	names := []string{
		"Barak Obama",
		"Obamma, Boraak H.",
		"Burak Ubama",
		"John Smith",
		"Smith, John",
	}
	pairs, err := SelfJoin(names, Options{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[[2]int]float64)
	for _, p := range pairs {
		got[[2]int{p.A, p.B}] = p.NSLD
	}
	// The obama variants join to the seed (the (1,2) variant pair is at
	// NSLD 10/28 ≈ 0.357, beyond T=0.3); the two john smiths are
	// distance 0.
	for _, want := range [][2]int{{0, 1}, {0, 2}, {3, 4}} {
		if _, ok := got[want]; !ok {
			t.Errorf("missing pair %v in %v", want, got)
		}
	}
	if d := got[[2]int{3, 4}]; d != 0 {
		t.Errorf("shuffled name distance = %v, want 0", d)
	}
	// No cross-ring pairs.
	if len(pairs) != 3 {
		t.Errorf("got %d pairs, want 3: %v", len(pairs), got)
	}
}

func TestSelfJoinStatsExposed(t *testing.T) {
	names := []string{"a b", "a c", "b c"}
	_, st, err := SelfJoinStats(names, Options{Threshold: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st.SharedTokenCandidates == 0 {
		t.Error("expected shared-token candidates")
	}
	if len(st.Pipeline.Jobs) == 0 {
		t.Error("expected pipeline jobs")
	}
}

func TestSelfJoinOptionsValidation(t *testing.T) {
	if _, err := SelfJoin([]string{"x"}, Options{Threshold: 1.5}); err == nil {
		t.Fatal("invalid threshold must error")
	}
}

func TestIndexNearestAndWithin(t *testing.T) {
	names := []string{
		"barak obama", "barack obama", "boraak obamma",
		"john smith", "jon smyth", "mary huang",
	}
	ix := NewIndex(names)
	if ix.Len() != len(names) {
		t.Fatalf("Len = %d", ix.Len())
	}
	nn := ix.Nearest("barak obama", 3)
	if len(nn) != 3 || nn[0].ID != 0 || nn[0].Distance != 0 {
		t.Fatalf("Nearest = %+v", nn)
	}
	for i := 1; i < len(nn); i++ {
		if nn[i].Distance < nn[i-1].Distance {
			t.Fatal("neighbors not sorted")
		}
	}
	within := ix.Within("jhn smith", 0.3)
	if len(within) == 0 {
		t.Fatal("expected john smith variants within 0.3")
	}
	for _, n := range within {
		if NSLD("jhn smith", n.Name) != n.Distance {
			t.Fatalf("distance mismatch for %q", n.Name)
		}
		if n.Distance > 0.3 {
			t.Fatalf("out-of-range neighbor %+v", n)
		}
	}
}

func TestNSLDMetricSanity(t *testing.T) {
	a, b, c := "barak obama", "burak obama", "john smith"
	if NSLD(a, a) != 0 {
		t.Error("identity violated")
	}
	if NSLD(a, b) != NSLD(b, a) {
		t.Error("symmetry violated")
	}
	if NSLD(a, b)+NSLD(b, c) < NSLD(a, c)-1e-12 {
		t.Error("triangle inequality violated")
	}
	if d := NSLD(a, c); d <= 0 || d > 1 {
		t.Errorf("range violated: %v", d)
	}
}

func TestApproximateModes(t *testing.T) {
	names := []string{"anna lee", "anna leigh", "ana lee", "bob ross", "bob r0ss"}
	exactPairs, err := SelfJoin(names, Options{Threshold: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Options{
		{Threshold: 0.25, Matching: ExactTokenMatching},
		{Threshold: 0.25, Aligning: GreedyAligning},
		{Threshold: 0.25, Dedup: GroupOnBothStrings},
	} {
		pairs, err := SelfJoin(names, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) > len(exactPairs) {
			t.Fatalf("approximation found more pairs than exact: %+v", mode)
		}
		// Precision 1: every pair is truly within threshold.
		for _, p := range pairs {
			if math.Abs(NSLD(names[p.A], names[p.B])-p.NSLD) > 1e-9 && p.SLD != 0 {
				// Greedy may overestimate SLD but never accepts a pair
				// whose greedy distance exceeds the threshold; recheck
				// against the exact distance.
				if NSLD(names[p.A], names[p.B]) > 0.25 {
					t.Fatalf("false positive %+v", p)
				}
			}
		}
	}
}

func TestIncrementalMatcherAPI(t *testing.T) {
	m, err := NewMatcher(MatcherOptions{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Add("barak obama"); len(got) != 0 {
		t.Fatalf("first add: %v", got)
	}
	got := m.Add("barak obamma")
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("edited name must match: %v", got)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if _, err := NewMatcher(MatcherOptions{Threshold: 2}); err == nil {
		t.Fatal("bad threshold must error")
	}
}

// TestIncrementalMatchesBatch: streaming all names and unioning the match
// edges reproduces the batch self-join exactly.
func TestIncrementalMatchesBatch(t *testing.T) {
	names := []string{
		"anna lee", "ana lee", "anna leigh", "bob ross",
		"bob r0ss", "ross bob", "carol wu", "carrol wu",
	}
	const threshold = 0.2
	batch, err := SelfJoin(names, Options{Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	batchSet := make(map[[2]int]int)
	for _, p := range batch {
		batchSet[[2]int{p.A, p.B}] = p.SLD
	}
	m, _ := NewMatcher(MatcherOptions{Threshold: threshold})
	streamSet := make(map[[2]int]int)
	for i, n := range names {
		for _, g := range m.Add(n) {
			streamSet[[2]int{g.ID, i}] = g.SLD
		}
	}
	if len(streamSet) != len(batchSet) {
		t.Fatalf("stream %d pairs vs batch %d", len(streamSet), len(batchSet))
	}
	for k, sld := range batchSet {
		if s, ok := streamSet[k]; !ok || s != sld {
			t.Fatalf("pair %v: stream (%d,%v), batch %d", k, s, ok, sld)
		}
	}
}
