package tsjoin

import (
	"repro/internal/corpus"
	"repro/internal/iofault"
	"repro/internal/token"
	"repro/internal/tsj"
)

// ErrNotFound marks a Delete of an id that does not exist or is already
// deleted (a caller error — check with errors.Is to distinguish it from
// persistence failures).
var ErrNotFound = corpus.ErrNotFound

// ErrDegraded marks a corpus whose write path has been sealed by a
// storage failure (a failed WAL fsync or rollback, or a failed
// directory fsync): mutations fail fast with it while reads keep
// serving from memory. Check with errors.Is; heal with Recover (or
// Snapshot), which rotates to a fresh on-disk generation.
var ErrDegraded = corpus.ErrDegraded

// ErrShipBehind and ErrShipAhead report a ShipFrom offset the corpus
// cannot serve incrementally — older than the retained ship log, or
// beyond the committed LSN (a diverged follower). Either way the
// follower must be re-seeded from BootstrapPayloads.
var (
	ErrShipBehind = corpus.ErrShipBehind
	ErrShipAhead  = corpus.ErrShipAhead
)

// Corpus is a durable, mutable corpus of tokenized strings: adds and
// deletes are persisted through a CRC-framed write-ahead log, state is
// checkpointed into versioned binary snapshots, and the corpus-global
// filter assets the joiner needs — the rarest-first token-frequency
// order and every string's rank-sorted token list, from which each
// threshold's prefixes are sliced — are maintained incrementally across
// mutations. One opened corpus therefore serves repeated SelfJoin calls
// at any mix of thresholds with zero frequency-order rebuilds, and a
// process restart (OpenCorpus on the same directory) recovers the exact
// corpus from snapshot + WAL replay.
//
// All methods are safe for concurrent use. To serve live traffic over a
// corpus, attach it to a matcher with NewConcurrentMatcherFromCorpus —
// and then route all writes through the matcher.
type Corpus struct {
	c *corpus.Corpus
}

// CorpusOptions configures OpenCorpus.
type CorpusOptions struct {
	// Tokenizer maps raw strings to token multisets for Add; the WAL
	// stores tokenized forms, so recovery never depends on it. Defaults
	// to whitespace+punctuation.
	Tokenizer Tokenizer
	// SyncEvery batches WAL fsyncs (1, the default, makes every Add
	// durable before it returns; larger values trade the tail of the log
	// for write throughput).
	SyncEvery int
	// DisableSync skips fsync entirely (benchmarks and throwaway data).
	DisableSync bool
	// RerankSlack tunes how far token frequencies may drift before the
	// stored order is re-ranked (0 = default policy, negative = never;
	// purely a pruning-power knob — join results are identical under any
	// setting).
	RerankSlack float64
	// FS overrides the filesystem the durability layer runs over; nil
	// means the real OS filesystem. It exists for fault-injection tests
	// (see internal/iofault), which is why its type is internal: an
	// injector exercises every WAL/snapshot recovery path by failing a
	// chosen write, fsync, or rename.
	FS iofault.FS
	// ShipBufferRecords bounds the in-memory replication ship log: the
	// corpus retains up to this many recent committed records for
	// streaming to followers (see ShipFrom); a follower that falls off
	// the ring is re-seeded via BootstrapPayloads. 0 means the default
	// (1024).
	ShipBufferRecords int
}

// CorpusStats snapshots a corpus's state and persistence counters.
type CorpusStats = corpus.Stats

// OpenCorpus opens (creating if empty) the corpus persisted in dir: the
// newest valid snapshot is loaded and the write-ahead log replayed — a
// torn or corrupt WAL tail is detected via CRC and cleanly ignored.
func OpenCorpus(dir string, opts CorpusOptions) (*Corpus, error) {
	c, err := corpus.Open(dir, corpus.Options{
		Tokenizer:         opts.Tokenizer,
		SyncEvery:         opts.SyncEvery,
		DisableSync:       opts.DisableSync,
		RerankSlack:       opts.RerankSlack,
		FS:                opts.FS,
		ShipBufferRecords: opts.ShipBufferRecords,
	})
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// Add appends one string durably and returns its id (dense, starting at
// 0, stable across restarts).
func (c *Corpus) Add(name string) (int, error) {
	id, err := c.c.Add(name)
	return int(id), err
}

// AddBatch appends a batch with a single group-commit fsync, returning
// the first id of the dense range the batch occupies.
func (c *Corpus) AddBatch(names []string) (int, error) {
	toks := make([]token.TokenizedString, len(names))
	tok := c.c.Tokenizer()
	for i, n := range names {
		toks[i] = tok(n)
	}
	first, err := c.c.AddTokenizedBatch(toks)
	return int(first), err
}

// Delete durably tombstones a string: it stops participating in joins
// and in matchers built later from this corpus; its id is never reused.
// If a ConcurrentMatcher is currently attached (via
// NewConcurrentMatcherFromCorpus), delete through the matcher instead —
// ConcurrentMatcher.Delete updates the live index and the WAL together,
// while this method alone leaves the attached index serving the string
// until its next restart.
func (c *Corpus) Delete(id int) error { return c.c.Delete(token.StringID(id)) }

// Len returns the total id space (live strings plus tombstones); Live
// counts only live strings.
func (c *Corpus) Len() int  { return c.c.Len() }
func (c *Corpus) Live() int { return c.c.Live() }

// SelfJoin joins the live strings of the corpus under opts.Threshold,
// reusing the stored frequency order and prefixes (no per-call filter
// state is rebuilt — see CorpusStats.OrderRebuilds). Results use corpus
// ids and are exactly what SelfJoin on the same live strings returns.
func (c *Corpus) SelfJoin(opts Options) ([]Pair, error) {
	pairs, _, err := c.SelfJoinStats(opts)
	return pairs, err
}

// SelfJoinStats is SelfJoin plus the pipeline statistics.
func (c *Corpus) SelfJoinStats(opts Options) ([]Pair, *Stats, error) {
	jopts := tsj.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Matching:                   opts.Matching,
		Aligning:                   opts.Aligning,
		Dedup:                      opts.Dedup,
		MultiMatchAware:            true,
		Parallelism:                opts.Parallelism,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableTokenLDCache:        opts.DisableTokenLDCache,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
	}
	results, st, err := tsj.SelfJoinCorpus(c.c, jopts)
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]Pair, len(results))
	for i, r := range results {
		pairs[i] = Pair{A: int(r.A), B: int(r.B), SLD: r.SLD, NSLD: r.NSLD}
	}
	return pairs, st, nil
}

// Join performs a bipartite join of names against the corpus's live
// strings: every returned Pair has A = a corpus id and B = an index
// into names with NSLD(corpus[A], names[B]) <= opts.Threshold. The
// corpus side reuses the stored frequency order, prefixes and postings
// (no per-call rebuild of corpus filter state); results are exactly
// what the package-level Join on (live corpus strings, names) returns.
func (c *Corpus) Join(names []string, opts Options) ([]Pair, error) {
	pairs, _, err := c.JoinStats(names, opts)
	return pairs, err
}

// JoinStats is Join plus the pipeline statistics.
func (c *Corpus) JoinStats(names []string, opts Options) ([]Pair, *Stats, error) {
	tok := opts.Tokenizer
	if tok == nil {
		tok = token.WhitespaceAndPunct
	}
	probes := make([]TokenizedString, len(names))
	for i, s := range names {
		probes[i] = tok(s)
	}
	return c.JoinTokenized(probes, opts)
}

// JoinTokenized is JoinStats over already-tokenized probes (the form
// cluster workers receive probe sets in — token multisets travel the
// wire, so no tokenizer round trip can disagree with the corpus's).
func (c *Corpus) JoinTokenized(probes []TokenizedString, opts Options) ([]Pair, *Stats, error) {
	jopts := tsj.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Matching:                   opts.Matching,
		Aligning:                   opts.Aligning,
		Dedup:                      opts.Dedup,
		MultiMatchAware:            true,
		Parallelism:                opts.Parallelism,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableTokenLDCache:        opts.DisableTokenLDCache,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
	}
	results, st, err := tsj.JoinCorpus(c.c, probes, jopts)
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]Pair, len(results))
	for i, r := range results {
		pairs[i] = Pair{A: int(r.A), B: int(r.B), SLD: r.SLD, NSLD: r.NSLD}
	}
	return pairs, st, nil
}

// LiveTokens dumps the live corpus as (id, sorted token multiset) rows
// — the probe-side feed of a distributed join, where token multisets
// (not raw strings) travel the wire so no per-node tokenizer drift can
// split the cluster's notion of a string.
func (c *Corpus) LiveTokens() (ids []int, tokens [][]string) {
	v := c.c.View()
	for sid, ok := range v.Alive {
		if !ok {
			continue
		}
		ids = append(ids, sid)
		tokens = append(tokens, v.TC.Strings[sid].Tokens)
	}
	return ids, tokens
}

// Snapshot checkpoints the corpus into a new snapshot generation and
// starts a fresh WAL; Compact additionally removes older generations,
// retaining the newest prior one as a corruption fallback, so disk
// usage is bounded to two snapshots plus two logs.
func (c *Corpus) Snapshot() error { return c.c.Snapshot() }
func (c *Corpus) Compact() error  { return c.c.Compact() }

// Sync forces any batched WAL appends to stable storage.
func (c *Corpus) Sync() error { return c.c.Sync() }

// Degraded reports the corpus's degraded state: nil while healthy,
// otherwise an ErrDegraded-wrapped error naming the storage failure
// that sealed the write path. Reads are unaffected by degradation.
func (c *Corpus) Degraded() error { return c.c.Degraded() }

// Recover attempts to heal a degraded corpus by checkpointing the
// in-memory state — exactly the acknowledged mutations — into a fresh
// generation through new file descriptors. A no-op when healthy.
// Retrying the failed fsync itself would be unsound: the kernel may
// have dropped the dirty pages and would report a hollow success.
func (c *Corpus) Recover() error { return c.c.Recover() }

// LSN returns the corpus's logical sequence number: the total count of
// committed mutations (adds plus deletes) over its whole history. Two
// corpora with equal logical state have equal LSNs — the offset space
// WAL-shipping replication runs on (see internal/replica).
func (c *Corpus) LSN() uint64 { return c.c.LSN() }

// ShipFrom reads committed replication payloads starting at LSN from
// (up to maxRecords records / maxBytes payload bytes; empty means
// caught up). ErrShipBehind / ErrShipAhead mean the offset cannot be
// served incrementally and the follower needs BootstrapPayloads.
func (c *Corpus) ShipFrom(from uint64, maxRecords, maxBytes int) ([][]byte, error) {
	return c.c.ShipFrom(from, maxRecords, maxBytes)
}

// ShipNotify returns a channel closed when the next mutation commits,
// so a shipper that drained ShipFrom can block instead of polling.
func (c *Corpus) ShipNotify() <-chan struct{} { return c.c.ShipNotify() }

// BootstrapPayloads synthesizes a full-state replication stream:
// applied in order to an empty corpus it reproduces this corpus's
// logical state and exact LSN (returned), after which the follower can
// tail incrementally with ShipFrom.
func (c *Corpus) BootstrapPayloads() ([][]byte, uint64) { return c.c.BootstrapPayloads() }

// Stats snapshots the corpus counters.
func (c *Corpus) Stats() CorpusStats { return c.c.Stats() }

// Close flushes the WAL and releases the log file.
func (c *Corpus) Close() error { return c.c.Close() }
