// Package tsjoin is a scalable similarity joiner for tokenized strings —
// a from-scratch Go implementation of "Scalable Similarity Joins of
// Tokenized Strings" (Metwally & Huang, ICDE 2019).
//
// It provides:
//
//   - the Normalized Setwise Levenshtein Distance (NSLD), the paper's
//     novel metric over token multisets, together with the underlying
//     Levenshtein (LD), normalized Levenshtein (NLD) and setwise
//     Levenshtein (SLD) distances;
//   - the Tokenized-String Joiner (TSJ): a generate-filter-verify
//     framework that self-joins millions of tokenized strings under an
//     NSLD threshold, with the paper's optimizations (self-join symmetry
//     breaking, high-frequency-token cutoff, two candidate de-duplication
//     strategies) and approximations (exact-token-matching,
//     greedy-token-aligning);
//   - a K-nearest-neighbor index over NSLD (a vantage-point tree),
//     usable because NSLD is a true metric;
//   - the evaluation harness reproducing every figure of the paper
//     (internal/experiments, surfaced through cmd/tsjexp).
//
// Quick start:
//
//	pairs, err := tsjoin.SelfJoin([]string{
//	    "Barak Obama", "Obamma, Boraak H.", "Burak Ubama",
//	}, tsjoin.Options{Threshold: 0.3})
//
// See the examples/ directory for complete programs.
package tsjoin

import (
	"repro/internal/core"
	"repro/internal/strdist"
	"repro/internal/token"
	"repro/internal/tsj"
)

// TokenizedString is a multiset of tokens — the unit the joiner compares.
type TokenizedString = token.TokenizedString

// Tokenizer maps a raw string to its token multiset.
type Tokenizer = token.Tokenizer

// Tokenize applies the paper's evaluation tokenizer: split on whitespace
// and punctuation, lower-case the tokens (Sec. V).
func Tokenize(s string) TokenizedString { return token.WhitespaceAndPunct(s) }

// NewTokenizedString builds a TokenizedString from explicit tokens.
func NewTokenizedString(tokens []string) TokenizedString { return token.New(tokens) }

// LD returns the Levenshtein distance between two strings (Definition 1).
func LD(a, b string) int { return strdist.Levenshtein(a, b) }

// NLD returns the Normalized Levenshtein Distance in [0, 1]
// (Definition 2): 2*LD/(|a|+|b|+LD). NLD is a metric.
func NLD(a, b string) float64 { return strdist.NLD(a, b) }

// SLD returns the Setwise Levenshtein Distance (Definition 3) between the
// token multisets of a and b under the default tokenizer: the minimum
// number of character edits, with free empty-token additions/removals,
// transforming one multiset into the other. Computed exactly via the
// Hungarian algorithm.
func SLD(a, b string) int { return core.SLD(Tokenize(a), Tokenize(b)) }

// NSLD returns the Normalized Setwise Levenshtein Distance in [0, 1]
// (Definition 4) between the token multisets of a and b under the default
// tokenizer: 2*SLD/(L(a)+L(b)+SLD). NSLD is a metric (Theorem 2).
func NSLD(a, b string) float64 { return core.NSLD(Tokenize(a), Tokenize(b)) }

// SLDTokens and NSLDTokens operate on pre-built token multisets.
func SLDTokens(x, y TokenizedString) int      { return core.SLD(x, y) }
func NSLDTokens(x, y TokenizedString) float64 { return core.NSLD(x, y) }

// SIMDAvailable reports whether the vectorized batched verification
// kernel is live on this build and CPU (amd64 with AVX2, not built with
// -tags nosimd). When false, the batched paths transparently verify with
// the scalar engine — results are identical either way.
func SIMDAvailable() bool { return core.BatchKernelAvailable() }

// Matching selects the TSJ candidate-generation strategy.
type Matching = tsj.Matching

// Aligning selects the TSJ verification alignment.
type Aligning = tsj.Aligning

// Dedup selects the TSJ candidate de-duplication strategy.
type Dedup = tsj.Dedup

const (
	// FuzzyTokenMatching (default) generates shared-token and
	// similar-token candidates; exact when MaxTokenFreq is unlimited.
	FuzzyTokenMatching = tsj.FuzzyTokenMatching
	// ExactTokenMatching uses only shared-token candidates: much faster,
	// recall may drop (Sec. III-G.4).
	ExactTokenMatching = tsj.ExactTokenMatching
	// HungarianAligning verifies with the exact SLD.
	HungarianAligning = tsj.HungarianAligning
	// GreedyAligning verifies with the greedy alignment: faster, may
	// miss borderline pairs, never emits false positives (Sec. III-G.5).
	GreedyAligning = tsj.GreedyAligning
	// GroupOnOneString / GroupOnBothStrings are the Sec. III-G.3 dedup
	// strategies; the paper recommends GroupOnOneString.
	GroupOnOneString   = tsj.GroupOnOneString
	GroupOnBothStrings = tsj.GroupOnBothStrings
)

// Options configures SelfJoin. The zero value joins at threshold 0 (exact
// duplicates); most callers set Threshold and leave the rest defaulted.
type Options struct {
	// Threshold is the NSLD threshold T in [0, 1). Pairs with
	// NSLD <= T are returned. The paper's default is 0.1.
	Threshold float64
	// MaxTokenFreq is M: tokens occurring in more than M strings are
	// ignored during candidate generation (0 = unlimited). The paper's
	// default is 1000.
	MaxTokenFreq int
	// Matching, Aligning, Dedup select the strategies; zero values are
	// the paper's recommended configuration except Aligning, which
	// defaults to the exact Hungarian alignment.
	Matching Matching
	Aligning Aligning
	Dedup    Dedup
	// Tokenizer overrides the default whitespace+punctuation tokenizer.
	Tokenizer Tokenizer
	// Parallelism caps worker goroutines (0 = GOMAXPROCS).
	Parallelism int
	// DisableBoundedVerification switches off threshold-aware
	// verification. By default the verify stage derives an SLD budget
	// from the threshold — maxSLD = floor(T*(L(x)+L(y))/(2-T)) — and
	// abandons a candidate as soon as any lower bound exceeds it, which
	// is the hot-path optimization behind the join's verify speed.
	// Results are identical either way; disable only for ablation.
	DisableBoundedVerification bool
	// DisableTokenLDCache switches off the bounded verifier's
	// token-pair Levenshtein memo (on by default; hot postings re-verify
	// the same token pairs many times). Results are unaffected.
	DisableTokenLDCache bool
	// DisableSIMD switches off the vectorized batched verification path.
	// By default, on hardware and builds where the kernel is live (see
	// SIMDAvailable), each grouping-on-one-string reducer verifies its
	// partner list in lane-width batches against the shared probe string.
	// Results are identical either way; disable only for ablation or to
	// rule out kernel issues in the field.
	DisableSIMD bool
	// DisablePrefixFilter switches off threshold-aware candidate pruning
	// in the shared-token generator. By default only each string's
	// threshold-derived prefix — its maxErrors(T, L)+1 rarest tokens
	// under the global frequency order — feeds the posting lists, and
	// positional + length filters discard pairs that provably cannot
	// satisfy NSLD <= T before they are shuffled. Results are identical
	// either way; disable only for ablation.
	DisablePrefixFilter bool
	// DisableSegmentPrefixFilter switches off threshold-aware candidate
	// pruning in the similar-token generator. By default only prefix
	// tokens enter the token-space NLD join and the postings expansion —
	// lossless because a pair discoverable only through a similar token
	// pair shares no token, which forces both prefixes to cover the
	// strings' entire distinct sets. Results are identical either way;
	// disable only for ablation.
	DisableSegmentPrefixFilter bool
}

// Pair is one joined pair of input strings: indices into the input slice
// (A < B), the setwise distance, and its normalized form.
type Pair struct {
	A, B int
	SLD  int
	NSLD float64
}

// Stats exposes the TSJ pipeline statistics of a join.
type Stats = tsj.Stats

// SelfJoin finds every unordered pair of names whose NSLD is within
// opts.Threshold. With the default options (fuzzy matching, Hungarian
// alignment, unlimited token frequency) the result is exact.
func SelfJoin(names []string, opts Options) ([]Pair, error) {
	pairs, _, err := SelfJoinStats(names, opts)
	return pairs, err
}

// SelfJoinStats is SelfJoin plus the pipeline statistics (candidate
// counts, filter effectiveness, per-job task costs for cluster
// simulation).
func SelfJoinStats(names []string, opts Options) ([]Pair, *Stats, error) {
	tok := opts.Tokenizer
	if tok == nil {
		tok = token.WhitespaceAndPunct
	}
	c := token.BuildCorpus(names, tok)
	jopts := tsj.Options{
		Threshold:                  opts.Threshold,
		MaxTokenFreq:               opts.MaxTokenFreq,
		Matching:                   opts.Matching,
		Aligning:                   opts.Aligning,
		Dedup:                      opts.Dedup,
		MultiMatchAware:            true,
		Parallelism:                opts.Parallelism,
		DisableBoundedVerify:       opts.DisableBoundedVerification,
		DisableTokenLDCache:        opts.DisableTokenLDCache,
		DisableSIMD:                opts.DisableSIMD,
		DisablePrefixFilter:        opts.DisablePrefixFilter,
		DisableSegmentPrefixFilter: opts.DisableSegmentPrefixFilter,
	}
	results, st, err := tsj.SelfJoin(c, jopts)
	if err != nil {
		return nil, nil, err
	}
	pairs := make([]Pair, len(results))
	for i, r := range results {
		pairs[i] = Pair{A: int(r.A), B: int(r.B), SLD: r.SLD, NSLD: r.NSLD}
	}
	return pairs, st, nil
}
