// Package massjoin implements MassJoin (Deng, Li, Hao, Wang, Feng; ICDE
// 2014) — the MapReduce-distributed Pass-Join the paper employs for the
// NLD-join of token spaces (Sec. III-D) — on top of the in-process
// mapreduce engine.
//
// Job 1 (candidate generation) mirrors Sec. III-D: every index-side token
// is partitioned into its segments for every compatible probe length and
// emitted keyed by its string chunks; every probe-side token emits the
// selected substrings for every compatible index length. The shuffle
// groups tokens sharing a chunk, and the reducer outputs candidate token-id
// pairs. Job 2 de-duplicates candidates and verifies each surviving pair
// exactly once with a banded Levenshtein computation bounded by Lemma 8.
//
// Emission keys carry (indexLen, probeLen, segIdx) metadata exactly as
// MassJoin "augments the mapper output key by metadata to reduce candidate
// pairs".
package massjoin

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/passjoin"
	"repro/internal/strdist"
)

// Config tunes the distributed join.
type Config struct {
	// MultiMatchAware selects the tight substring window (default true
	// via DefaultConfig).
	MultiMatchAware bool
	// MapTasks / Parallelism are forwarded to the engine.
	MapTasks    int
	Parallelism int
	// NamePrefix labels the jobs in pipeline stats.
	NamePrefix string
}

// DefaultConfig returns the recommended configuration.
func DefaultConfig() Config { return Config{MultiMatchAware: true, NamePrefix: "massjoin"} }

// chunkKey is the Job-1 shuffle key: a string chunk plus the MassJoin
// metadata that restricts which token pairs may meet.
type chunkKey struct {
	indexLen, probeLen int32
	seg                int16
	chunk              string
}

// genVal is a Job-1 intermediate value: a token id on one side.
type genVal struct {
	id    int32
	probe bool // false: index side (segments); true: probe side (substrings)
}

// candPair is a candidate token-id pair (a = index side, b = probe side).
type candPair struct {
	a, b int32
}

// tokenRec is the Job-1 input record.
type tokenRec struct {
	id int32
	r  []rune
}

// SelfJoinNLD performs the distributed NLD self-join of a token space and
// returns every unordered pair (A < B by id when lengths are equal;
// otherwise A is the shorter token) with NLD <= t, along with the job
// pipeline statistics used by the simulated cluster.
func SelfJoinNLD(tokens [][]rune, t float64, cfg Config) ([]passjoin.Pair, *mapreduce.Pipeline) {
	return run(tokens, nil, t, cfg, true)
}

// JoinNLD performs the distributed bipartite NLD join: pairs (A indexes r,
// B indexes p) with NLD <= t.
func JoinNLD(r, p [][]rune, t float64, cfg Config) ([]passjoin.Pair, *mapreduce.Pipeline) {
	return run(r, p, t, cfg, false)
}

func run(r, p [][]rune, t float64, cfg Config, selfJoin bool) ([]passjoin.Pair, *mapreduce.Pipeline) {
	pipe := &mapreduce.Pipeline{}
	if cfg.NamePrefix == "" {
		cfg.NamePrefix = "massjoin"
	}

	// Assemble Job-1 input. For the bipartite join, probe records carry
	// ids offset by len(r) so both sides share one input slice.
	input := make([]tokenRec, 0, len(r)+len(p))
	for i, s := range r {
		input = append(input, tokenRec{id: int32(i), r: s})
	}
	if !selfJoin {
		for i, s := range p {
			input = append(input, tokenRec{id: int32(len(r) + i), r: s})
		}
	}
	nr := int32(len(r))
	lookup := func(id int32) []rune {
		if selfJoin || id < nr {
			return r[id]
		}
		return p[id-nr]
	}

	// ---- Job 1: candidate generation -----------------------------------
	engCfg := mapreduce.Config{
		Name:        cfg.NamePrefix + "-candidates",
		MapTasks:    cfg.MapTasks,
		Parallelism: cfg.Parallelism,
	}
	cands, st1 := mapreduce.Run(engCfg, input,
		func(rec tokenRec, ctx *mapreduce.MapCtx[chunkKey, genVal]) {
			asIndex := selfJoin || rec.id < nr
			asProbe := selfJoin || rec.id >= nr
			l := len(rec.r)
			if asIndex {
				emitSegments(rec, l, t, selfJoin, ctx)
			}
			if asProbe {
				emitSubstrings(rec, l, t, selfJoin, cfg.MultiMatchAware, ctx)
			}
		},
		func(k chunkKey, vals []genVal, ctx *mapreduce.ReduceCtx[candPair]) {
			var idxIDs, probeIDs []int32
			for _, v := range vals {
				if v.probe {
					probeIDs = append(probeIDs, v.id)
				} else {
					idxIDs = append(idxIDs, v.id)
				}
			}
			for _, a := range idxIDs {
				for _, b := range probeIDs {
					if selfJoin {
						if k.indexLen == k.probeLen && a >= b {
							continue
						}
						if a == b {
							continue
						}
					}
					ctx.Emit(candPair{a, b})
				}
			}
			// Pair enumeration is quadratic in the posting sizes.
			ctx.AddCost(float64(len(idxIDs)) * float64(len(probeIDs)) * 0.1)
		},
	)
	pipe.Add(st1)

	// ---- Job 2: de-duplicate + verify -----------------------------------
	engCfg.Name = cfg.NamePrefix + "-verify"
	results, st2 := mapreduce.Run(engCfg, cands,
		func(c candPair, ctx *mapreduce.MapCtx[candPair, struct{}]) {
			ctx.Emit(c, struct{}{})
		},
		func(k candPair, vals []struct{}, ctx *mapreduce.ReduceCtx[passjoin.Pair]) {
			x, y := lookup(k.a), lookup(k.b)
			tau := strdist.MaxLDWithin(t, len(x), len(y))
			// Charge the banded DP cost.
			minLen := len(x)
			if len(y) < minLen {
				minLen = len(y)
			}
			ctx.AddCost(float64((tau + 1) * (minLen + 1)))
			d, ok := strdist.LevenshteinBounded(x, y, tau)
			if !ok || !strdist.WithinNLD(d, len(x), len(y), t) {
				return
			}
			b := k.b
			if !selfJoin {
				b -= nr
			}
			ctx.Emit(passjoin.Pair{A: int(k.a), B: int(b), LD: d})
		},
	)
	pipe.Add(st2)
	return results, pipe
}

// emitSegments outputs the index-side records: for every compatible probe
// length, the token's even-partition segments under the Lemma 8 threshold.
// In self-join mode only probe lengths >= l are considered (Sec. III-G.1:
// "the case where |x| <= |y| only needs to be considered, yielding fewer
// segments"); the bipartite join must cover shorter probes too, since only
// R-side tokens are partitioned.
func emitSegments(rec tokenRec, l int, t float64, selfJoin bool, ctx *mapreduce.MapCtx[chunkKey, genVal]) {
	minLy := l
	if !selfJoin {
		minLy = strdist.MinLenWithin(t, l)
	}
	maxLy := strdist.MaxLenWithin(t, l)
	for ly := minLy; ly <= maxLy; ly++ {
		tau := strdist.MaxLDWithin(t, l, ly)
		if tau < 0 {
			continue
		}
		for i, sg := range passjoin.EvenPartition(l, tau+1) {
			ctx.Emit(chunkKey{
				indexLen: int32(l),
				probeLen: int32(ly),
				seg:      int16(i),
				chunk:    string(rec.r[sg.Start : sg.Start+sg.Len]),
			}, genVal{id: rec.id})
		}
	}
}

// emitSubstrings outputs the probe-side records: for every compatible index
// length, the selected substrings for each segment position. Self-join mode
// restricts to index lengths <= l (the |x| <= |y| direction).
func emitSubstrings(rec tokenRec, l int, t float64, selfJoin, multiMatch bool, ctx *mapreduce.MapCtx[chunkKey, genVal]) {
	minLs := strdist.MinLenWithin(t, l)
	maxLs := l
	if !selfJoin {
		maxLs = strdist.MaxLenWithin(t, l)
	}
	for ls := minLs; ls <= maxLs; ls++ {
		tau := strdist.MaxLDWithin(t, ls, l)
		if tau < 0 {
			continue
		}
		for i, sg := range passjoin.EvenPartition(ls, tau+1) {
			lo, hi := passjoin.SubstringWindow(ls, l, tau, i, sg, multiMatch)
			for q := lo; q <= hi; q++ {
				ctx.Emit(chunkKey{
					indexLen: int32(ls),
					probeLen: int32(l),
					seg:      int16(i),
					chunk:    string(rec.r[q : q+sg.Len]),
				}, genVal{id: rec.id, probe: true})
			}
		}
	}
}

// String renders a candPair for debugging.
func (c candPair) String() string { return fmt.Sprintf("(%d,%d)", c.a, c.b) }
