package massjoin

import (
	"math/rand"
	"testing"

	"repro/internal/passjoin"
	"repro/internal/strdist"
)

func randStr(rng *rand.Rand, minLen, maxLen int) []rune {
	n := minLen + rng.Intn(maxLen-minLen+1)
	s := make([]rune, n)
	for i := range s {
		s[i] = rune('a' + rng.Intn(4))
	}
	return s
}

func corpusWithNearDuplicates(rng *rand.Rand, n int) [][]rune {
	var out [][]rune
	for len(out) < n {
		base := randStr(rng, 3, 10)
		out = append(out, base)
		for k := 0; k < rng.Intn(3) && len(out) < n; k++ {
			c := append([]rune(nil), base...)
			switch rng.Intn(3) {
			case 0:
				c[rng.Intn(len(c))] = rune('a' + rng.Intn(4))
			case 1:
				p := rng.Intn(len(c) + 1)
				c = append(c[:p], append([]rune{rune('a' + rng.Intn(4))}, c[p:]...)...)
			case 2:
				if len(c) > 1 {
					p := rng.Intn(len(c))
					c = append(c[:p], c[p+1:]...)
				}
			}
			out = append(out, c)
		}
	}
	return out
}

func normKey(p passjoin.Pair) [2]int {
	if p.A < p.B {
		return [2]int{p.A, p.B}
	}
	return [2]int{p.B, p.A}
}

func TestSelfJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, threshold := range []float64{0.05, 0.1, 0.225} {
		for iter := 0; iter < 6; iter++ {
			toks := corpusWithNearDuplicates(rng, 60)
			want := make(map[[2]int]int)
			for i := 0; i < len(toks); i++ {
				for j := i + 1; j < len(toks); j++ {
					d := strdist.LevenshteinRunes(toks[i], toks[j])
					if strdist.WithinNLD(d, len(toks[i]), len(toks[j]), threshold) {
						want[[2]int{i, j}] = d
					}
				}
			}
			got, pipe := SelfJoinNLD(toks, threshold, DefaultConfig())
			gotSet := make(map[[2]int]int)
			for _, p := range got {
				if _, dup := gotSet[normKey(p)]; dup {
					t.Fatalf("duplicate result pair %+v", p)
				}
				gotSet[normKey(p)] = p.LD
			}
			if len(gotSet) != len(want) {
				t.Fatalf("T=%v: got %d pairs, want %d", threshold, len(gotSet), len(want))
			}
			for k, d := range want {
				if gd, ok := gotSet[k]; !ok || gd != d {
					t.Fatalf("T=%v: pair %v got (%d, %v), want %d", threshold, k, gd, ok, d)
				}
			}
			if len(pipe.Jobs) != 2 {
				t.Fatalf("pipeline must have 2 jobs, got %d", len(pipe.Jobs))
			}
		}
	}
}

func TestSelfJoinMatchesSerialPassJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	toks := corpusWithNearDuplicates(rng, 150)
	for _, threshold := range []float64{0.1, 0.3} {
		serial := passjoin.SelfJoinNLD(toks, threshold, passjoin.DefaultOptions())
		dist, _ := SelfJoinNLD(toks, threshold, DefaultConfig())
		sSet := make(map[[2]int]int)
		for _, p := range serial {
			sSet[normKey(p)] = p.LD
		}
		dSet := make(map[[2]int]int)
		for _, p := range dist {
			dSet[normKey(p)] = p.LD
		}
		if len(sSet) != len(dSet) {
			t.Fatalf("T=%v: serial %d vs distributed %d pairs", threshold, len(sSet), len(dSet))
		}
		for k, d := range sSet {
			if dd, ok := dSet[k]; !ok || dd != d {
				t.Fatalf("T=%v: mismatch on %v: serial %d, distributed (%d,%v)", threshold, k, d, dd, ok)
			}
		}
	}
}

func TestBipartiteJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, threshold := range []float64{0.1, 0.25} {
		r := corpusWithNearDuplicates(rng, 40)
		p := corpusWithNearDuplicates(rng, 40)
		want := make(map[[2]int]int)
		for i := range r {
			for j := range p {
				d := strdist.LevenshteinRunes(r[i], p[j])
				if strdist.WithinNLD(d, len(r[i]), len(p[j]), threshold) {
					want[[2]int{i, j}] = d
				}
			}
		}
		got, _ := JoinNLD(r, p, threshold, DefaultConfig())
		gotSet := make(map[[2]int]int)
		for _, pr := range got {
			gotSet[[2]int{pr.A, pr.B}] = pr.LD
		}
		if len(gotSet) != len(want) {
			t.Fatalf("T=%v: got %d pairs, want %d", threshold, len(gotSet), len(want))
		}
		for k, d := range want {
			if gd, ok := gotSet[k]; !ok || gd != d {
				t.Fatalf("T=%v: pair %v wrong: (%d,%v) want %d", threshold, k, gd, ok, d)
			}
		}
	}
}

func TestPipelineStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	toks := corpusWithNearDuplicates(rng, 100)
	_, pipe := SelfJoinNLD(toks, 0.2, DefaultConfig())
	if pipe.TotalWork() <= 0 {
		t.Fatal("pipeline work must be positive")
	}
	if pipe.Jobs[0].ShuffleRecords == 0 {
		t.Fatal("candidate generation must shuffle records")
	}
	if pipe.Jobs[1].ReduceKeys == 0 {
		t.Fatal("verification must have reduce keys")
	}
}

func TestEmptyTokenSpace(t *testing.T) {
	got, pipe := SelfJoinNLD(nil, 0.1, DefaultConfig())
	if len(got) != 0 || len(pipe.Jobs) != 2 {
		t.Fatalf("empty input: %v pairs, %d jobs", got, len(pipe.Jobs))
	}
}
