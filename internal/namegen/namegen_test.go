package namegen

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 5, NumNames: 500}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := Generate(Config{Seed: 6, NumNames: 500})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestCorpusShape(t *testing.T) {
	names := Generate(Config{Seed: 1, NumNames: 2000})
	if len(names) != 2000 {
		t.Fatalf("NumNames not honored: %d", len(names))
	}
	for _, n := range names {
		toks := strings.Fields(n)
		if len(toks) < 2 || len(toks) > 5 {
			t.Fatalf("name %q has %d tokens, want 2-5", n, len(toks))
		}
	}
}

func TestZipfTokenSkew(t *testing.T) {
	names := Generate(Config{Seed: 2, NumNames: 5000})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	freqs := make([]int, 0, c.NumTokens())
	for _, f := range c.Freq {
		freqs = append(freqs, int(f))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	// Zipf skew: the most popular token must dwarf the median.
	if freqs[0] < 20*freqs[len(freqs)/2] {
		t.Errorf("token popularity not skewed enough: top=%d median=%d",
			freqs[0], freqs[len(freqs)/2])
	}
}

func TestRingsAreTight(t *testing.T) {
	names, rings := GenerateWithRings(Config{Seed: 3, NumNames: 2000})
	if len(rings) == 0 {
		t.Fatal("no rings planted")
	}
	tok := token.WhitespaceAndPunct
	withinCount, total := 0, 0
	for _, ring := range rings {
		if len(ring.Members) < 2 {
			t.Fatalf("degenerate ring %v", ring)
		}
		seed := tok(names[ring.Members[0]])
		for _, m := range ring.Members[1:] {
			total++
			if core.NSLD(seed, tok(names[m])) <= 0.35 {
				withinCount++
			}
		}
	}
	// Adversarial edits are small: the bulk of ring members stay close to
	// their seed.
	if float64(withinCount) < 0.9*float64(total) {
		t.Errorf("only %d/%d ring members within NSLD 0.35 of their seed", withinCount, total)
	}
}

func TestRingMembersIndexCorpus(t *testing.T) {
	names, rings := GenerateWithRings(Config{Seed: 4, NumNames: 1000})
	seen := make(map[int]bool)
	for _, r := range rings {
		for _, m := range r.Members {
			if m < 0 || m >= len(names) {
				t.Fatalf("ring member %d out of range", m)
			}
			if seen[m] {
				t.Fatalf("name %d in two rings", m)
			}
			seen[m] = true
		}
	}
}

func TestNameChangesSeparation(t *testing.T) {
	pairs := NameChanges(ChangeConfig{Seed: 9, NumLegit: 300, NumFraud: 300})
	if len(pairs) != 600 {
		t.Fatalf("got %d pairs", len(pairs))
	}
	tok := token.WhitespaceAndPunct
	var legitSum, fraudSum float64
	var legitN, fraudN int
	for _, p := range pairs {
		d := core.NSLD(tok(p.Old), tok(p.New))
		if p.Fraud {
			fraudSum += d
			fraudN++
		} else {
			legitSum += d
			legitN++
		}
	}
	if legitN != 300 || fraudN != 300 {
		t.Fatalf("class sizes wrong: %d/%d", legitN, fraudN)
	}
	legitMean := legitSum / float64(legitN)
	fraudMean := fraudSum / float64(fraudN)
	if fraudMean < legitMean+0.2 {
		t.Errorf("classes not separated: legit mean %v, fraud mean %v", legitMean, fraudMean)
	}
	// But not trivially separable: some legit changes are sizable.
	if legitMean < 0.01 {
		t.Errorf("legit changes suspiciously tiny: %v", legitMean)
	}
}

func TestNameChangesDeterministic(t *testing.T) {
	a := NameChanges(ChangeConfig{Seed: 11, NumLegit: 50, NumFraud: 50})
	b := NameChanges(ChangeConfig{Seed: 11, NumLegit: 50, NumFraud: 50})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic change pair at %d", i)
		}
	}
}
