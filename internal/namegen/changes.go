package namegen

import (
	"math/rand"
	"strings"
)

// ChangePair is one labeled account name change: the old and new name on
// the account plus whether the account is a known fraud (Sec. V-D's
// evaluation sample).
type ChangePair struct {
	Old, New string
	Fraud    bool
}

// ChangeConfig controls the labeled name-change sample.
type ChangeConfig struct {
	Seed int64
	// NumLegit / NumFraud are the class sizes (the paper uses 5000/5000).
	NumLegit, NumFraud int
	// FraudKeepTokenProb is the probability a fraud rename retains one
	// token of the old name (account resellers occasionally keep a
	// surname), keeping the classes from being trivially separable.
	FraudKeepTokenProb float64
}

func (c ChangeConfig) withDefaults() ChangeConfig {
	if c.NumLegit <= 0 {
		c.NumLegit = 5000
	}
	if c.NumFraud <= 0 {
		c.NumFraud = 5000
	}
	if c.FraudKeepTokenProb <= 0 {
		c.FraudKeepTokenProb = 0.1
	}
	return c
}

// NameChanges generates the labeled sample: legitimate changes are rare
// small modifications (legal name change of one token, abbreviation such
// as "william" → "will", typo fixes); fraudulent changes are drastic
// renames, "since attackers who specialize in account creation are not
// those who specialize in account exploitation" — the credential buyer
// replaces the random creation-time name wholesale.
func NameChanges(cfg ChangeConfig) []ChangePair {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	p := newPools(rng, Config{}.withDefaults())

	pairs := make([]ChangePair, 0, cfg.NumLegit+cfg.NumFraud)
	for i := 0; i < cfg.NumLegit; i++ {
		old := p.freshName(rng)
		pairs = append(pairs, ChangePair{Old: old, New: legitChange(rng, old), Fraud: false})
	}
	for i := 0; i < cfg.NumFraud; i++ {
		old := p.freshName(rng)
		nw := p.freshName(rng)
		if rng.Float64() < cfg.FraudKeepTokenProb {
			// Keep one token of the old identity.
			ot := strings.Fields(old)
			nt := strings.Fields(nw)
			nt[len(nt)-1] = ot[len(ot)-1]
			nw = strings.Join(nt, " ")
		}
		pairs = append(pairs, ChangePair{Old: old, New: nw, Fraud: true})
	}
	// Interleave deterministically so downstream slicing is unbiased.
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	return pairs
}

// legitChange produces a small, explainable modification. Abbreviations
// dominate, per the paper's Sec. V-D examples ("name abbreviation, e.g.,
// from William to Bill"): they are the case that separates NSLD from the
// set-based measures, because a prefix-cut token falls below any fuzzy
// token-matching threshold while its character-level cost stays moderate.
func legitChange(rng *rand.Rand, name string) string {
	toks := strings.Fields(name)
	switch r := rng.Float64(); {
	case r < 0.45: // abbreviation: shorten a token to a prefix
		i := longestTokenIdx(toks)
		t := toks[i]
		if len(t) > 3 {
			keep := 3 + rng.Intn(len(t)-3)
			if keep > len(t)-1 {
				keep = len(t) - 1
			}
			toks[i] = t[:keep]
		}
	case r < 0.50: // initialism: a token collapses to its initial
		i := rng.Intn(len(toks))
		toks[i] = toks[i][:1]
	case r < 0.80: // typo fix / transliteration tweak: one character edit
		i := rng.Intn(len(toks))
		toks[i] = editToken(rng, toks[i])
	default: // small legal change: two character edits on one token
		i := rng.Intn(len(toks))
		toks[i] = editToken(rng, editToken(rng, toks[i]))
	}
	return strings.Join(toks, " ")
}

func longestTokenIdx(toks []string) int {
	best := 0
	for i, t := range toks {
		if len(t) > len(toks[best]) {
			best = i
		}
	}
	_ = toks
	return best
}
