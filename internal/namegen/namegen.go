// Package namegen generates the synthetic workloads that substitute for
// the paper's proprietary datasets (44M Google-account names; 10k labeled
// name-change pairs). See DESIGN.md §2 for the substitution argument.
//
// The generator reproduces the distributional properties the paper's
// algorithms are sensitive to:
//
//   - token popularity is Zipf-distributed, so some tokens ("John",
//     "Mary") are shared by many strings — the load-imbalance and
//     max-frequency-cutoff (M) story of Sec. III-G.2;
//   - names have 2–4 tokens of realistic lengths;
//   - fraud rings are planted as clusters of adversarially-edited
//     variants of a seed name (character edits, token shuffles,
//     abbreviations, token additions) exactly as the motivating
//     application describes ("Barak Obama" → "Obamma, Boraak H.");
//   - labeled name-change pairs separate into small legitimate edits and
//     drastic fraud renames (account resale, Sec. V-D).
//
// All generation is deterministic for a given seed.
package namegen

import (
	"math/rand"
	"strings"
)

// Config controls corpus generation.
type Config struct {
	// Seed drives all randomness; equal seeds give equal corpora.
	Seed int64
	// NumNames is the corpus size.
	NumNames int
	// RingFraction is the fraction of the corpus belonging to planted
	// fraud rings (default 0.3).
	RingFraction float64
	// MeanRingSize is the average ring cardinality (default 4).
	MeanRingSize int
	// MaxEditsPerVariant bounds the character edits applied to each ring
	// member (default 2).
	MaxEditsPerVariant int
	// FirstPool / LastPool are the distinct token-pool sizes (defaults
	// 2000 / 6000, sized so a 10k-name corpus has a realistically dense
	// distinct-token space). Smaller pools mean more shared tokens.
	FirstPool, LastPool int
	// ZipfS is the Zipf skew parameter (> 1; default 1.3).
	ZipfS float64
}

func (c Config) withDefaults() Config {
	if c.NumNames <= 0 {
		c.NumNames = 10000
	}
	if c.RingFraction <= 0 {
		c.RingFraction = 0.3
	}
	if c.MeanRingSize <= 1 {
		c.MeanRingSize = 4
	}
	if c.MaxEditsPerVariant <= 0 {
		c.MaxEditsPerVariant = 2
	}
	if c.FirstPool <= 0 {
		c.FirstPool = 2000
	}
	if c.LastPool <= 0 {
		c.LastPool = 6000
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	return c
}

// Ring records a planted fraud ring: the indices (into the generated
// corpus) of a seed name and its adversarial variants. Rings are the
// ground truth for recall studies.
type Ring struct {
	Members []int
}

// Generate returns a synthetic name corpus.
func Generate(cfg Config) []string {
	names, _ := GenerateWithRings(cfg)
	return names
}

// GenerateWithRings returns the corpus plus the planted-ring ground truth.
func GenerateWithRings(cfg Config) ([]string, []Ring) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pools := newPools(rng, cfg)

	var names []string
	var rings []Ring
	ringBudget := int(float64(cfg.NumNames) * cfg.RingFraction)
	for len(names) < cfg.NumNames {
		seed := pools.freshName(rng)
		if ringBudget > 0 && rng.Float64() < cfg.RingFraction {
			// Plant a ring around this seed.
			size := 2 + rng.Intn(2*cfg.MeanRingSize-3) // mean ≈ MeanRingSize
			if size > ringBudget {
				size = ringBudget
			}
			if size > cfg.NumNames-len(names) {
				size = cfg.NumNames - len(names)
			}
			ring := Ring{}
			for k := 0; k < size; k++ {
				var v string
				if k == 0 {
					v = seed
				} else {
					v = perturb(rng, seed, cfg.MaxEditsPerVariant)
				}
				ring.Members = append(ring.Members, len(names))
				names = append(names, v)
			}
			if len(ring.Members) >= 2 {
				rings = append(rings, ring)
			}
			ringBudget -= size
		} else {
			names = append(names, seed)
		}
	}
	return names, rings
}

// pools holds the Zipf-weighted token pools.
type pools struct {
	firsts, lasts []string
	zf, zl        *rand.Zipf
}

func newPools(rng *rand.Rand, cfg Config) *pools {
	p := &pools{
		firsts: makeTokens(rng, cfg.FirstPool, 3, 8),
		lasts:  makeTokens(rng, cfg.LastPool, 4, 10),
	}
	p.zf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.FirstPool-1))
	p.zl = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.LastPool-1))
	return p
}

// freshName draws a 2–4 token name with Zipf-popular tokens.
func (p *pools) freshName(rng *rand.Rand) string {
	parts := []string{p.firsts[p.zf.Uint64()], p.lasts[p.zl.Uint64()]}
	if rng.Float64() < 0.25 { // middle name or initial
		if rng.Float64() < 0.5 {
			parts = append(parts, string(rune('a'+rng.Intn(26))))
		} else {
			parts = append(parts, p.firsts[p.zf.Uint64()])
		}
	}
	if rng.Float64() < 0.05 { // generational suffix
		parts = append(parts, []string{"jr", "sr", "ii", "iii"}[rng.Intn(4)])
	}
	return strings.Join(parts, " ")
}

// makeTokens builds n distinct pronounceable tokens with lengths in
// [minLen, maxLen].
func makeTokens(rng *rand.Rand, n, minLen, maxLen int) []string {
	const cons = "bcdfghjklmnprstvwz"
	const vows = "aeiou"
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for len(out) < n {
		l := minLen + rng.Intn(maxLen-minLen+1)
		var b strings.Builder
		for i := 0; b.Len() < l; i++ {
			if i%2 == 0 {
				b.WriteByte(cons[rng.Intn(len(cons))])
			} else {
				b.WriteByte(vows[rng.Intn(len(vows))])
			}
		}
		t := b.String()
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// perturb applies the adversarial edits of the motivating application: a
// few character edits, possibly a token shuffle (free under NSLD but it
// exercises the pipeline), an abbreviation, or an extra initial.
func perturb(rng *rand.Rand, name string, maxEdits int) string {
	toks := strings.Fields(name)
	// Structural tweak with small probability.
	switch r := rng.Float64(); {
	case r < 0.15 && len(toks) >= 2: // shuffle tokens
		i, j := rng.Intn(len(toks)), rng.Intn(len(toks))
		toks[i], toks[j] = toks[j], toks[i]
	case r < 0.25: // append an initial
		toks = append(toks, string(rune('a'+rng.Intn(26))))
	case r < 0.30 && len(toks) >= 3: // drop a middle token
		toks = append(toks[:1], toks[2:]...)
	}
	// Character edits on randomly chosen tokens.
	edits := 1 + rng.Intn(maxEdits)
	for e := 0; e < edits; e++ {
		i := rng.Intn(len(toks))
		toks[i] = editToken(rng, toks[i])
	}
	return strings.Join(toks, " ")
}

// editToken applies one random character edit.
func editToken(rng *rand.Rand, tok string) string {
	r := []rune(tok)
	switch rng.Intn(3) {
	case 0: // substitute
		if len(r) > 0 {
			r[rng.Intn(len(r))] = rune('a' + rng.Intn(26))
		}
	case 1: // insert
		p := rng.Intn(len(r) + 1)
		r = append(r[:p], append([]rune{rune('a' + rng.Intn(26))}, r[p:]...)...)
	default: // delete
		if len(r) > 1 {
			p := rng.Intn(len(r))
			r = append(r[:p], r[p+1:]...)
		}
	}
	return string(r)
}
