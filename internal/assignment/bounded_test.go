package assignment

import (
	"math/rand"
	"testing"
)

// TestBoundedEquivalenceHungarian: for random matrices and every budget,
// HungarianBounded agrees with Hungarian whenever the optimum is within
// budget — same total — and correctly reports exceeded otherwise.
func TestBoundedEquivalenceHungarian(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(7)
		cost := randMatrix(r, n, 12)
		_, want := Hungarian(cost)
		for max := -1; max <= want+3; max++ {
			got, ok := HungarianBounded(cost, max)
			if max < 0 || want <= max {
				if !ok || got != want {
					t.Fatalf("n=%d max=%d: got (%d,%v), want (%d,true)", n, max, got, ok, want)
				}
			} else if ok || got <= max {
				t.Fatalf("n=%d max=%d want=%d: got (%d,%v), want exceeded with bound > max",
					n, max, want, got, ok)
			}
		}
	}
}

// TestBoundedEquivalenceGreedy is the greedy counterpart: the bound
// applies to the greedy total (tie-broken identically), so bounded greedy
// accepts exactly the matrices unbounded greedy totals within budget.
func TestBoundedEquivalenceGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(7)
		cost := randMatrix(r, n, 12)
		_, want := Greedy(cost)
		for max := -1; max <= want+3; max++ {
			got, ok := GreedyBounded(cost, max)
			if max < 0 || want <= max {
				if !ok || got != want {
					t.Fatalf("n=%d max=%d: got (%d,%v), want (%d,true)", n, max, got, ok, want)
				}
			} else if ok || got <= max {
				t.Fatalf("n=%d max=%d want=%d: got (%d,%v), want exceeded with bound > max",
					n, max, want, got, ok)
			}
		}
	}
}

// TestScratchReuseAcrossSizes drives one Scratch through interleaved
// solve sizes to prove the grown arrays are reset correctly between
// calls.
func TestScratchReuseAcrossSizes(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var s Scratch
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(9)
		cost := randMatrix(r, n, 12)
		flat := flatten(cost)
		_, want := Hungarian(cost)
		got, ok, _ := s.HungarianFlat(flat, n, -1)
		if !ok || got != want {
			t.Fatalf("iter=%d n=%d: HungarianFlat got (%d,%v), want (%d,true)", iter, n, got, ok, want)
		}
		_, wantG := Greedy(cost)
		gotG, okG, _ := s.GreedyFlat(flat, n, -1)
		if !okG || gotG != wantG {
			t.Fatalf("iter=%d n=%d: GreedyFlat got (%d,%v), want (%d,true)", iter, n, gotG, okG, wantG)
		}
	}
}
