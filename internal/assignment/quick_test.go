package assignment

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genMatrix generates small random cost matrices for quick checks.
type genMatrix struct {
	M [][]int
}

func (genMatrix) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(6)
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			m[i][j] = r.Intn(20)
		}
	}
	return reflect.ValueOf(genMatrix{m})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(55))}
}

// TestQuickHungarianOptimalVsRandomPermutations: no random permutation
// beats the Hungarian solution.
func TestQuickHungarianOptimalVsRandomPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	f := func(g genMatrix) bool {
		_, opt := Hungarian(g.M)
		n := len(g.M)
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(n)
			sum := 0
			for i, j := range perm {
				sum += g.M[i][j]
			}
			if sum < opt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickHungarianIsPermutation: the returned assignment is always a
// permutation whose cost equals the reported total.
func TestQuickHungarianIsPermutation(t *testing.T) {
	f := func(g genMatrix) bool {
		asg, total := Hungarian(g.M)
		n := len(g.M)
		if len(asg) != n {
			return false
		}
		seen := make([]bool, n)
		sum := 0
		for r, c := range asg {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
			sum += g.M[r][c]
		}
		return sum == total
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickGreedyValidAndDominated: greedy always yields a valid
// permutation costing at least the optimum.
func TestQuickGreedyValidAndDominated(t *testing.T) {
	f := func(g genMatrix) bool {
		asg, total := Greedy(g.M)
		_, opt := Hungarian(g.M)
		if total < opt {
			return false
		}
		n := len(g.M)
		seen := make([]bool, n)
		sum := 0
		for r, c := range asg {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
			sum += g.M[r][c]
		}
		return sum == total
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestQuickHungarianShiftInvariance: adding a constant to every entry of
// a row shifts the optimum by exactly that constant (LP duality sanity).
func TestQuickHungarianShiftInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	f := func(g genMatrix) bool {
		_, opt := Hungarian(g.M)
		shift := 1 + rng.Intn(10)
		row := rng.Intn(len(g.M))
		m2 := make([][]int, len(g.M))
		for i := range g.M {
			m2[i] = append([]int(nil), g.M[i]...)
		}
		for j := range m2[row] {
			m2[row][j] += shift
		}
		_, opt2 := Hungarian(m2)
		return opt2 == opt+shift
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
