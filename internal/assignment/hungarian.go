// Package assignment solves the min-cost assignment problem on dense cost
// matrices. The exact solver is the O(n^3) Hungarian algorithm the paper's
// SLD calculation prescribes (Sec. III-F); the greedy solver implements the
// greedy-token-aligning approximation of Sec. III-G.5.
package assignment

import "sort"

// Hungarian returns a minimum-cost perfect matching of an n x n cost
// matrix, as the assigned column for each row plus the total cost. cost
// must be square and non-negative.
//
// The implementation is the potential-based (Jonker–Volgenant style)
// shortest augmenting path formulation of Kuhn–Munkres, O(n^3) time and
// O(n) extra space per augmentation.
func Hungarian(cost [][]int) (rowToCol []int, total int) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	const inf = int(^uint(0) >> 2)
	// u, v are dual potentials; p[j] is the row matched to column j
	// (1-based internally, column 0 is the virtual root).
	u := make([]int, n+1)
	v := make([]int, n+1)
	p := make([]int, n+1)
	way := make([]int, n+1)
	minv := make([]int, n+1)
	used := make([]bool, n+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
	}
	rowToCol = make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowToCol[i]]
	}
	return rowToCol, total
}

// Greedy returns a perfect matching built by repeatedly selecting the
// globally cheapest remaining edge and removing its endpoints, exactly the
// greedy-token-aligning strategy of Sec. III-G.5. Ties are broken by
// (row, col) order so the result is deterministic. The returned total is an
// upper bound on the Hungarian optimum.
//
// Complexity: O(n^2 log n) for the sort plus O(n^2) selection, matching the
// paper's stated O(T(x)*T(y)*log(T(x)*T(y))) alignment term.
func Greedy(cost [][]int) (rowToCol []int, total int) {
	n := len(cost)
	if n == 0 {
		return nil, 0
	}
	type edge struct {
		w, r, c int
	}
	edges := make([]edge, 0, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			edges = append(edges, edge{cost[r][c], r, c})
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w < edges[b].w
		}
		if edges[a].r != edges[b].r {
			return edges[a].r < edges[b].r
		}
		return edges[a].c < edges[b].c
	})
	rowToCol = make([]int, n)
	for i := range rowToCol {
		rowToCol[i] = -1
	}
	colUsed := make([]bool, n)
	matched := 0
	for _, e := range edges {
		if matched == n {
			break
		}
		if rowToCol[e.r] != -1 || colUsed[e.c] {
			continue
		}
		rowToCol[e.r] = e.c
		colUsed[e.c] = true
		total += e.w
		matched++
	}
	return rowToCol, total
}
