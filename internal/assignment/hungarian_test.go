package assignment

import (
	"math/rand"
	"testing"
)

// bruteForceMin computes the optimal assignment cost by enumerating all
// permutations; reference for small n.
func bruteForceMin(cost [][]int) int {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := int(^uint(0) >> 2)
	var rec func(k, acc int)
	rec = func(k, acc int) {
		if acc >= best {
			return
		}
		if k == n {
			best = acc
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k+1, acc+cost[k][perm[k]])
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0, 0)
	return best
}

func randMatrix(rng *rand.Rand, n, maxCost int) [][]int {
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
		for j := range m[i] {
			m[i][j] = rng.Intn(maxCost)
		}
	}
	return m
}

func TestHungarianKnown(t *testing.T) {
	cost := [][]int{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	asg, total := Hungarian(cost)
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total = %d, want 5 (assignment %v)", total, asg)
	}
	// Verify the assignment is a permutation achieving the total.
	seen := make([]bool, 3)
	sum := 0
	for r, c := range asg {
		if seen[c] {
			t.Fatalf("column %d assigned twice", c)
		}
		seen[c] = true
		sum += cost[r][c]
	}
	if sum != total {
		t.Fatalf("assignment sums to %d, reported %d", sum, total)
	}
}

func TestHungarianEmptyAndSingle(t *testing.T) {
	if asg, total := Hungarian(nil); asg != nil || total != 0 {
		t.Fatal("empty matrix must yield empty assignment")
	}
	asg, total := Hungarian([][]int{{7}})
	if total != 7 || len(asg) != 1 || asg[0] != 0 {
		t.Fatalf("1x1: got %v %d", asg, total)
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(6)
		cost := randMatrix(rng, n, 12)
		_, got := Hungarian(cost)
		want := bruteForceMin(cost)
		if got != want {
			t.Fatalf("Hungarian = %d, brute force = %d on %v", got, want, cost)
		}
	}
}

func TestHungarianLargeUniform(t *testing.T) {
	// All-equal costs: any permutation is optimal; total must be n*c.
	n := 40
	cost := make([][]int, n)
	for i := range cost {
		cost[i] = make([]int, n)
		for j := range cost[i] {
			cost[i][j] = 3
		}
	}
	_, total := Hungarian(cost)
	if total != 3*n {
		t.Fatalf("uniform total = %d, want %d", total, 3*n)
	}
}

func TestGreedyIsUpperBoundAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for iter := 0; iter < 500; iter++ {
		n := 1 + rng.Intn(7)
		cost := randMatrix(rng, n, 10)
		asg, greedyTotal := Greedy(cost)
		_, optTotal := Hungarian(cost)
		if greedyTotal < optTotal {
			t.Fatalf("greedy %d beat optimal %d on %v", greedyTotal, optTotal, cost)
		}
		seen := make([]bool, n)
		sum := 0
		for r, c := range asg {
			if c < 0 || c >= n || seen[c] {
				t.Fatalf("invalid greedy assignment %v", asg)
			}
			seen[c] = true
			sum += cost[r][c]
		}
		if sum != greedyTotal {
			t.Fatalf("greedy assignment sums to %d, reported %d", sum, greedyTotal)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	cost := [][]int{
		{1, 1, 1},
		{1, 1, 1},
		{1, 1, 1},
	}
	a1, _ := Greedy(cost)
	a2, _ := Greedy(cost)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("greedy must be deterministic under ties")
		}
	}
	// Tie-break by (row, col): row i matches col i.
	for i, c := range a1 {
		if c != i {
			t.Fatalf("expected identity assignment under uniform ties, got %v", a1)
		}
	}
}

func TestGreedySuboptimalCase(t *testing.T) {
	// Classic greedy trap: cheapest edge (0,0)=0 forces expensive leftovers.
	cost := [][]int{
		{0, 1},
		{1, 100},
	}
	_, greedyTotal := Greedy(cost)
	_, optTotal := Hungarian(cost)
	if optTotal != 2 {
		t.Fatalf("optimal = %d, want 2", optTotal)
	}
	if greedyTotal != 100 {
		t.Fatalf("greedy = %d, want 100 (picks (0,0) then (1,1))", greedyTotal)
	}
}
