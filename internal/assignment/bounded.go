// Budget-aware flat solvers: the same Hungarian and greedy matchings as
// hungarian.go, but over caller-flattened row-major matrices, with every
// working array owned by a reusable Scratch and an optional cost budget
// that aborts the solve as soon as the answer is provably "too expensive".
//
// The budget soundness argument: after the Hungarian algorithm augments
// row i, the current partial matching is a minimum-cost matching of rows
// 1..i onto any i columns. The optimal full assignment restricted to those
// rows is one such matching, so with non-negative costs the partial cost
// is a monotonically non-decreasing lower bound on the full optimum —
// once it exceeds the budget, the total must too. The greedy matching
// only ever adds non-negative edges, so its running total is likewise a
// lower bound on its own final total.
package assignment

import "slices"

const inf = int(^uint(0) >> 2)

// HungarianBounded is the budget-aware form of Hungarian: it returns the
// minimum matching total and true when that total is at most max, and
// otherwise a lower bound exceeding max and false, terminating as soon as
// the growing partial-matching cost proves the budget is busted. max < 0
// solves unbounded. Hot paths should use Scratch.HungarianFlat directly.
func HungarianBounded(cost [][]int, max int) (total int, ok bool) {
	var s Scratch
	total, ok, _ = s.HungarianFlat(flatten(cost), len(cost), max)
	return total, ok
}

// GreedyBounded is the budget-aware form of Greedy with the same contract
// as HungarianBounded (the bound applies to the greedy total, an upper
// bound on the optimum).
func GreedyBounded(cost [][]int, max int) (total int, ok bool) {
	var s Scratch
	total, ok, _ = s.GreedyFlat(flatten(cost), len(cost), max)
	return total, ok
}

// flatten copies a square matrix into row-major form.
func flatten(cost [][]int) []int {
	n := len(cost)
	flat := make([]int, 0, n*n)
	for _, row := range cost {
		flat = append(flat, row...)
	}
	return flat
}

// Scratch holds the reusable working arrays of the flat solvers. The zero
// value is ready to use; arrays grow on demand and are retained across
// calls, so steady-state solves allocate nothing.
type Scratch struct {
	// Hungarian: dual potentials u, v; p[j] is the row matched to column
	// j (1-based, column 0 is the virtual root); way/minv/used are the
	// shortest-augmenting-path state.
	u, v, p, way, minv []int
	used               []bool
	// Greedy: edges packed as weight<<32 | row<<16 | col so an integer
	// sort yields the (weight, row, col) order, plus the matching state.
	edges    []uint64
	rowTaken []bool
	colTaken []bool
}

// grow readies the Hungarian arrays for an n x n solve.
func (s *Scratch) grow(n int) {
	if cap(s.u) < n+1 {
		c := 2 * (n + 1)
		s.u = make([]int, n+1, c)
		s.v = make([]int, n+1, c)
		s.p = make([]int, n+1, c)
		s.way = make([]int, n+1, c)
		s.minv = make([]int, n+1, c)
		s.used = make([]bool, n+1, c)
	}
	s.u = s.u[:n+1]
	s.v = s.v[:n+1]
	s.p = s.p[:n+1]
	s.way = s.way[:n+1]
	s.minv = s.minv[:n+1]
	s.used = s.used[:n+1]
	for j := 0; j <= n; j++ {
		s.u[j], s.v[j], s.p[j] = 0, 0, 0
	}
}

// HungarianFlat returns the minimum-cost perfect matching total of the
// n x n row-major matrix cost, bounded by budget max: if max >= 0 and the
// optimum exceeds max, it returns (lower bound > max, false, early) where
// early reports whether the solve was abandoned before all rows were
// assigned. max < 0 solves unbounded (ok is always true).
//
// The solver is the same potential-based shortest-augmenting-path
// formulation as Hungarian, made allocation-free by the Scratch and
// budget-aware by checking the partial-matching cost after every
// augmentation (a valid lower bound on the optimum; see the package
// comment above).
func (s *Scratch) HungarianFlat(cost []int, n, max int) (total int, ok, early bool) {
	if n == 0 {
		return 0, max < 0 || 0 <= max, false
	}
	s.grow(n)
	u, v, p, way, minv, used := s.u, s.v, s.p, s.way, s.minv, s.used
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= n; j++ {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			row := cost[(i0-1)*n:]
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
			if j0 == 0 {
				break
			}
		}
		if max >= 0 {
			// Partial-matching cost after augmenting i rows: a lower
			// bound on the full optimum, monotone in i.
			partial := 0
			for j := 1; j <= n; j++ {
				if p[j] > 0 {
					partial += cost[(p[j]-1)*n+(j-1)]
				}
			}
			if partial > max {
				return partial, false, i < n
			}
		}
	}
	total = 0
	for j := 1; j <= n; j++ {
		total += cost[(p[j]-1)*n+(j-1)]
	}
	return total, max < 0 || total <= max, false
}

// GreedyFlat returns the greedy matching total of the n x n row-major
// matrix cost — repeatedly the globally cheapest remaining edge, ties
// broken by (row, col) exactly as Greedy — bounded by budget max with the
// same contract as HungarianFlat. The running total is a lower bound on
// the final greedy total (edges are non-negative), so the solve aborts
// the moment it exceeds max.
//
// Preconditions (from the uint64 edge packing, cost<<32 | row<<16 | col):
// costs must be non-negative and < 2^32, and n < 2^16. Token cost
// matrices satisfy all three by construction (cells are capped token
// Levenshtein distances, rows are token counts).
//
// Note the budget compares against the greedy total, an upper bound on
// the true SLD, preserving the greedy aligner's one-sided error: bounded
// greedy accepts exactly the pairs unbounded greedy accepts.
func (s *Scratch) GreedyFlat(cost []int, n, max int) (total int, ok, early bool) {
	if n == 0 {
		return 0, max < 0 || 0 <= max, false
	}
	if cap(s.edges) < n*n {
		s.edges = make([]uint64, 0, 2*n*n)
	}
	s.edges = s.edges[:0]
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			s.edges = append(s.edges, uint64(cost[r*n+c])<<32|uint64(r)<<16|uint64(c))
		}
	}
	slices.Sort(s.edges)
	if cap(s.rowTaken) < n {
		s.rowTaken = make([]bool, n, 2*n)
		s.colTaken = make([]bool, n, 2*n)
	}
	s.rowTaken = s.rowTaken[:n]
	s.colTaken = s.colTaken[:n]
	for i := 0; i < n; i++ {
		s.rowTaken[i], s.colTaken[i] = false, false
	}
	matched := 0
	for _, e := range s.edges {
		r := int(e >> 16 & 0xffff)
		c := int(e & 0xffff)
		if s.rowTaken[r] || s.colTaken[c] {
			continue
		}
		s.rowTaken[r] = true
		s.colTaken[c] = true
		total += int(e >> 32)
		matched++
		if max >= 0 && total > max {
			return total, false, matched < n
		}
		if matched == n {
			break
		}
	}
	return total, true, false
}
