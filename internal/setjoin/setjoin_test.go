package setjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

func randomCorpus(rng *rand.Rand, n int) *token.Corpus {
	pool := []string{"anna", "bob", "carol", "dan", "erin", "frank", "gina", "hal", "ivy", "jon"}
	raw := make([]string, n)
	for i := range raw {
		k := 1 + rng.Intn(4)
		s := ""
		for j := 0; j < k; j++ {
			if j > 0 {
				s += " "
			}
			s += pool[rng.Intn(len(pool))]
		}
		raw[i] = s
	}
	return token.BuildCorpus(raw, token.WhitespaceAndPunct)
}

func TestSelfJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for _, minSim := range []float64{0.3, 0.5, 0.8, 1.0} {
		for iter := 0; iter < 8; iter++ {
			c := randomCorpus(rng, 80)
			got := SelfJoin(c, minSim)
			gotSet := make(map[[2]int]float64)
			for _, p := range got {
				if _, dup := gotSet[[2]int{p.A, p.B}]; dup {
					t.Fatalf("duplicate pair %+v", p)
				}
				gotSet[[2]int{p.A, p.B}] = p.Jaccard
			}
			want := make(map[[2]int]float64)
			for i := 0; i < c.NumStrings(); i++ {
				for j := i + 1; j < c.NumStrings(); j++ {
					if jac := Jaccard(c.Strings[i], c.Strings[j]); jac+1e-12 >= minSim {
						want[[2]int{i, j}] = jac
					}
				}
			}
			if len(gotSet) != len(want) {
				t.Fatalf("minSim=%v: got %d pairs, want %d\n%s",
					minSim, len(gotSet), len(want), diff(want, gotSet))
			}
			for k, jac := range want {
				if g, ok := gotSet[k]; !ok || g != jac {
					t.Fatalf("minSim=%v pair %v: got (%v,%v), want %v", minSim, k, g, ok, jac)
				}
			}
		}
	}
}

func diff(want, got map[[2]int]float64) string {
	s := ""
	for k := range want {
		if _, ok := got[k]; !ok {
			s += fmt.Sprintf("missing %v ", k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			s += fmt.Sprintf("extra %v ", k)
		}
	}
	return s
}

func TestJaccardBasics(t *testing.T) {
	a := token.New([]string{"x", "y"})
	b := token.New([]string{"y", "z"})
	if got := Jaccard(a, b); got != 1.0/3.0 {
		t.Errorf("Jaccard = %v, want 1/3", got)
	}
	if got := Jaccard(a, a); got != 1 {
		t.Errorf("self Jaccard = %v, want 1", got)
	}
	empty := token.New(nil)
	if got := Jaccard(empty, empty); got != 1 {
		t.Errorf("empty Jaccard = %v, want 1", got)
	}
	if got := Jaccard(a, empty); got != 0 {
		t.Errorf("vs empty = %v, want 0", got)
	}
	// Multiplicity is ignored: sets, not multisets.
	dup := token.New([]string{"x", "x", "y"})
	if got := Jaccard(a, dup); got != 1 {
		t.Errorf("duplicate-token Jaccard = %v, want 1", got)
	}
}

// TestSetJoinMissesTokenEdits pins the paper's core criticism of
// set-based joins (Sec. IV): one character edit removes a token from the
// overlap entirely, so the adversarially edited name evades the join
// while NSLD still catches it.
func TestSetJoinMissesTokenEdits(t *testing.T) {
	raw := []string{
		"barak obama",
		"barak obamma", // 1-char token edit
	}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	// Jaccard: overlap {barak} of {barak,obama,obamma} -> 1/3.
	pairs := SelfJoin(c, 0.5)
	if len(pairs) != 0 {
		t.Fatalf("set join at 0.5 should miss the edited pair, got %v", pairs)
	}
	// NSLD sees a single character edit: 2*1/(10+11+1) ≈ 0.09.
	if d := core.NSLD(c.Strings[0], c.Strings[1]); d > 0.1 {
		t.Fatalf("NSLD should be small: %v", d)
	}
}

func TestExactDuplicatesAtSimOne(t *testing.T) {
	raw := []string{"a b c", "c b a", "a b", "x y"}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	pairs := SelfJoin(c, 1.0)
	if len(pairs) != 1 || pairs[0].A != 0 || pairs[0].B != 1 {
		t.Fatalf("sim=1.0: got %v, want only (0,1)", pairs)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	c := token.BuildCorpus(nil, token.WhitespaceAndPunct)
	if got := SelfJoin(c, 0.5); len(got) != 0 {
		t.Fatal("empty corpus joins to nothing")
	}
	c = token.BuildCorpus([]string{"solo name"}, token.WhitespaceAndPunct)
	if got := SelfJoin(c, 0.5); len(got) != 0 {
		t.Fatal("single record joins to nothing")
	}
}
