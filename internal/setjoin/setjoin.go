// Package setjoin implements the classic prefix-filtering set-similarity
// self-join (AllPairs/PPJoin lineage; the MGJoin [51] / Vernica et al.
// [64] family the paper's related work contrasts TSJ against). It joins
// token *sets* under Jaccard similarity.
//
// As Sec. IV observes, "all these set-based techniques handle token
// shuffles, but do not handle token edits": a token changed by a single
// character no longer contributes to the overlap, so adversarially edited
// names evade set-based joins entirely. The package exists as the
// comparative baseline demonstrating exactly that (see the tests and the
// recall comparison in the examples).
package setjoin

import (
	"sort"

	"repro/internal/token"
)

// Pair is one joined pair (A < B) with its Jaccard similarity.
type Pair struct {
	A, B    int
	Jaccard float64
}

// SelfJoin returns all unordered pairs of records whose Jaccard
// similarity (over distinct tokens) is at least minSim, using prefix
// filtering with a document-frequency token ordering and length
// filtering.
//
// Guarantees: exact — identical result to the brute-force Jaccard join.
func SelfJoin(c *token.Corpus, minSim float64) []Pair {
	if minSim <= 0 {
		minSim = 1e-9 // avoid degenerate all-pairs prefixes
	}
	n := c.NumStrings()

	// Global token order: ascending document frequency (rare first), the
	// standard ordering that makes prefixes selective.
	rank := make([]int32, c.NumTokens())
	order := make([]token.TokenID, c.NumTokens())
	for i := range order {
		order[i] = token.TokenID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		if c.Freq[order[a]] != c.Freq[order[b]] {
			return c.Freq[order[a]] < c.Freq[order[b]]
		}
		return order[a] < order[b]
	})
	for r, tid := range order {
		rank[tid] = int32(r)
	}

	// Records as rank-sorted distinct token lists.
	recs := make([][]int32, n)
	for i := 0; i < n; i++ {
		toks := make([]int32, len(c.Members[i]))
		for j, tid := range c.Members[i] {
			toks[j] = rank[tid]
		}
		sort.Slice(toks, func(a, b int) bool { return toks[a] < toks[b] })
		recs[i] = toks
	}

	// Process records in ascending size order (required by the length
	// filter), tie-broken by id.
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		if len(recs[ids[a]]) != len(recs[ids[b]]) {
			return len(recs[ids[a]]) < len(recs[ids[b]])
		}
		return ids[a] < ids[b]
	})

	// Inverted index over prefix tokens of already-processed records.
	index := make(map[int32][]int32)
	var out []Pair
	overlap := make(map[int32]int)
	for _, y := range ids {
		ry := recs[y]
		ly := len(ry)
		clear(overlap)
		if ly > 0 {
			// Prefix length: l - ceil(minSim * l) + 1.
			py := ly - int(ceilMul(minSim, ly)) + 1
			if py > ly {
				py = ly
			}
			for _, tk := range ry[:py] {
				for _, cand := range index[tk] {
					overlap[cand]++
				}
			}
		}
		// Verify candidates.
		candIDs := make([]int32, 0, len(overlap))
		for cand := range overlap {
			candIDs = append(candIDs, cand)
		}
		sort.Slice(candIDs, func(a, b int) bool { return candIDs[a] < candIDs[b] })
		for _, cand := range candIDs {
			rx := recs[cand]
			lx := len(rx)
			// Length filter: |x| >= minSim * |y| (x is the smaller side).
			if float64(lx) < minSim*float64(ly)-1e-12 {
				continue
			}
			inter := intersectSize(rx, ry)
			union := lx + ly - inter
			if union == 0 {
				continue
			}
			j := float64(inter) / float64(union)
			if j+1e-12 >= minSim {
				a, b := int(cand), y
				if a > b {
					a, b = b, a
				}
				out = append(out, Pair{A: a, B: b, Jaccard: j})
			}
		}
		// Index y's prefix.
		if ly > 0 {
			py := ly - int(ceilMul(minSim, ly)) + 1
			if py > ly {
				py = ly
			}
			for _, tk := range ry[:py] {
				index[tk] = append(index[tk], int32(y))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// ceilMul computes ceil(f * n) robustly.
func ceilMul(f float64, n int) int {
	v := f * float64(n)
	c := int(v)
	if float64(c) < v-1e-12 {
		c++
	}
	return c
}

// intersectSize counts common elements of two ascending int32 slices.
func intersectSize(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Jaccard computes the plain Jaccard similarity of two tokenized strings'
// distinct token sets (1 if both are empty).
func Jaccard(x, y token.TokenizedString) float64 {
	sx := make(map[string]struct{}, len(x.Tokens))
	for _, t := range x.Tokens {
		sx[t] = struct{}{}
	}
	sy := make(map[string]struct{}, len(y.Tokens))
	for _, t := range y.Tokens {
		sy[t] = struct{}{}
	}
	if len(sx) == 0 && len(sy) == 0 {
		return 1
	}
	inter := 0
	for t := range sx {
		if _, ok := sy[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(sx)+len(sy)-inter)
}
