// Package cluster turns the pairs produced by a similarity join into
// account clusters — the final step of the paper's motivating application
// (Sec. I-A): "The pairs of accounts that are highly similar are used to
// form edges in a similarity graph ... The graph is clustered. The
// detected clusters flag potential rings."
//
// Connected components (union-find) is the baseline clustering; the
// package also provides an edge-weight-aware variant that only merges
// components through edges below a tighter distance, which keeps loosely
// chained accounts apart.
package cluster

import "sort"

// Edge is one similarity-graph edge between two node ids with a distance
// weight (smaller = more similar).
type Edge struct {
	A, B int
	Dist float64
}

// UnionFind is a disjoint-set forest with path compression and union by
// size.
type UnionFind struct {
	parent []int32
	size   []int32
	comps  int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n), comps: n}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the set representative of x.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != int32(x) {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = int(uf.parent[x])
	}
	return x
}

// Union merges the sets of a and b; it reports whether a merge happened.
func (uf *UnionFind) Union(a, b int) bool {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
	uf.comps--
	return true
}

// Components returns the number of disjoint sets.
func (uf *UnionFind) Components() int { return uf.comps }

// SizeOf returns the size of x's set.
func (uf *UnionFind) SizeOf(x int) int { return int(uf.size[uf.Find(x)]) }

// Cluster is one detected group of node ids, sorted ascending.
type Cluster struct {
	Members []int
	// MaxDist is the largest edge distance used inside the cluster.
	MaxDist float64
}

// ConnectedComponents clusters n nodes by the given edges and returns all
// clusters with at least minSize members, largest first (ties by smallest
// member id). This is the paper's baseline graph clustering.
func ConnectedComponents(n int, edges []Edge, minSize int) []Cluster {
	uf := NewUnionFind(n)
	maxDist := make(map[int]float64)
	for _, e := range edges {
		uf.Union(e.A, e.B)
	}
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := uf.Find(i)
		members[r] = append(members[r], i)
	}
	for _, e := range edges {
		r := uf.Find(e.A)
		if e.Dist > maxDist[r] {
			maxDist[r] = e.Dist
		}
	}
	var out []Cluster
	for r, m := range members {
		if len(m) < minSize {
			continue
		}
		sort.Ints(m)
		out = append(out, Cluster{Members: m, MaxDist: maxDist[r]})
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Members) != len(out[j].Members) {
			return len(out[i].Members) > len(out[j].Members)
		}
		return out[i].Members[0] < out[j].Members[0]
	})
	return out
}

// SingleLinkage clusters with a distance cut: edges are processed in
// ascending distance order and merging stops at the cut, so clusters are
// the connected components of the subgraph with Dist <= cut. Unlike plain
// connected components over all edges, a tight cut prevents "chaining"
// through borderline pairs.
func SingleLinkage(n int, edges []Edge, cut float64, minSize int) []Cluster {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dist != sorted[j].Dist {
			return sorted[i].Dist < sorted[j].Dist
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	var kept []Edge
	for _, e := range sorted {
		if e.Dist > cut {
			break
		}
		kept = append(kept, e)
	}
	return ConnectedComponents(n, kept, minSize)
}

// Dendrogram records the merge order of a full single-linkage run: each
// step merges two components through the cheapest remaining edge. Cutting
// the dendrogram at any distance reproduces SingleLinkage at that cut.
type Dendrogram struct {
	// Merges lists the accepted merge edges in ascending distance order.
	Merges []Edge
	n      int
}

// BuildDendrogram runs single-linkage to completion.
func BuildDendrogram(n int, edges []Edge) *Dendrogram {
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Dist != sorted[j].Dist {
			return sorted[i].Dist < sorted[j].Dist
		}
		if sorted[i].A != sorted[j].A {
			return sorted[i].A < sorted[j].A
		}
		return sorted[i].B < sorted[j].B
	})
	uf := NewUnionFind(n)
	d := &Dendrogram{n: n}
	for _, e := range sorted {
		if uf.Union(e.A, e.B) {
			d.Merges = append(d.Merges, e)
		}
	}
	return d
}

// Cut returns the clusters obtained by keeping only merges with
// Dist <= cut.
func (d *Dendrogram) Cut(cut float64, minSize int) []Cluster {
	var kept []Edge
	for _, e := range d.Merges {
		if e.Dist > cut {
			break
		}
		kept = append(kept, e)
	}
	return ConnectedComponents(d.n, kept, minSize)
}
