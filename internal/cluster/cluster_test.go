package cluster

import (
	"math/rand"
	"testing"
)

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatalf("Components = %d, want 5", uf.Components())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union must merge")
	}
	if uf.Union(1, 0) {
		t.Fatal("repeat union must not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Components() != 2 {
		t.Fatalf("Components = %d, want 2", uf.Components())
	}
	if uf.Find(1) != uf.Find(2) {
		t.Fatal("1 and 2 must share a root")
	}
	if uf.SizeOf(0) != 4 {
		t.Fatalf("SizeOf = %d, want 4", uf.SizeOf(0))
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("4 must stay separate")
	}
}

func TestConnectedComponents(t *testing.T) {
	edges := []Edge{
		{0, 1, 0.1}, {1, 2, 0.2}, // cluster {0,1,2}
		{3, 4, 0.05}, // cluster {3,4}
	}
	got := ConnectedComponents(6, edges, 2)
	if len(got) != 2 {
		t.Fatalf("got %d clusters, want 2", len(got))
	}
	// Largest first.
	if len(got[0].Members) != 3 || got[0].Members[0] != 0 {
		t.Fatalf("first cluster = %+v", got[0])
	}
	if got[0].MaxDist != 0.2 {
		t.Fatalf("MaxDist = %v, want 0.2", got[0].MaxDist)
	}
	if len(got[1].Members) != 2 || got[1].Members[0] != 3 {
		t.Fatalf("second cluster = %+v", got[1])
	}
	// minSize filters singletons (node 5).
	for _, c := range got {
		if len(c.Members) < 2 {
			t.Fatal("minSize violated")
		}
	}
}

func TestSingleLinkageCutStopsChaining(t *testing.T) {
	// A chain 0 -0.05- 1 -0.05- 2 -0.3- 3: a cut at 0.1 splits off 3.
	edges := []Edge{{0, 1, 0.05}, {1, 2, 0.05}, {2, 3, 0.3}}
	loose := SingleLinkage(4, edges, 0.5, 2)
	if len(loose) != 1 || len(loose[0].Members) != 4 {
		t.Fatalf("loose cut: %+v", loose)
	}
	tight := SingleLinkage(4, edges, 0.1, 2)
	if len(tight) != 1 || len(tight[0].Members) != 3 {
		t.Fatalf("tight cut: %+v", tight)
	}
}

func TestDendrogramCutMatchesSingleLinkage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 60
	var edges []Edge
	for i := 0; i < 150; i++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		edges = append(edges, Edge{a, b, rng.Float64()})
	}
	d := BuildDendrogram(n, edges)
	for _, cut := range []float64{0.1, 0.3, 0.7, 1.0} {
		want := SingleLinkage(n, edges, cut, 1)
		got := d.Cut(cut, 1)
		if len(want) != len(got) {
			t.Fatalf("cut %v: %d vs %d clusters", cut, len(got), len(want))
		}
		for i := range want {
			if len(want[i].Members) != len(got[i].Members) {
				t.Fatalf("cut %v cluster %d size mismatch", cut, i)
			}
			for j := range want[i].Members {
				if want[i].Members[j] != got[i].Members[j] {
					t.Fatalf("cut %v cluster %d member mismatch", cut, i)
				}
			}
		}
	}
	// Merge distances are non-decreasing.
	for i := 1; i < len(d.Merges); i++ {
		if d.Merges[i].Dist < d.Merges[i-1].Dist {
			t.Fatal("dendrogram merges out of order")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	if got := ConnectedComponents(0, nil, 1); len(got) != 0 {
		t.Fatal("empty graph must have no clusters")
	}
	if got := ConnectedComponents(3, nil, 2); len(got) != 0 {
		t.Fatal("edgeless graph has no clusters of size >= 2")
	}
	if got := ConnectedComponents(3, nil, 1); len(got) != 3 {
		t.Fatal("edgeless graph has n singletons at minSize 1")
	}
}
