package token

import (
	"sort"
	"sync"
)

// StringID identifies a tokenized string within a Corpus. The joining
// pipeline ships IDs (augmented with lengths and histograms) instead of the
// strings themselves, exactly as Sec. III-E prescribes "for efficiency".
type StringID int32

// TokenID identifies a distinct token within a Corpus's token space.
type TokenID int32

// Corpus is a set of tokenized strings R = {r^t_1, ..., r^t_S} together
// with its token space R^t (Sec. III-D): the set of all distinct tokens of
// all tokenized strings, each with the number of strings containing it.
type Corpus struct {
	// Strings holds the tokenized strings, indexed by StringID.
	Strings []TokenizedString
	// Tokens holds the distinct token space, indexed by TokenID, sorted
	// lexicographically for determinism.
	Tokens []string
	// TokenRunes caches the decoded form of each distinct token.
	TokenRunes [][]rune
	// Freq[t] is the number of tokenized strings containing token t at
	// least once (document frequency, used for the max-frequency cutoff M
	// of Sec. III-G.2 and for the IDF weights of the fuzzy set measures).
	Freq []int32
	// Members[s] lists the distinct TokenIDs of string s, in the
	// lexicographic order of their token strings (for BuildCorpus corpora,
	// whose ids are assigned lexicographically, that is also ascending id
	// order).
	Members     [][]TokenID
	tokenID     map[string]TokenID
	tokenIDOnce sync.Once
}

// BuildCorpus tokenizes raw strings and assembles the corpus and its token
// space. The i-th raw string receives StringID i.
func BuildCorpus(raw []string, tok Tokenizer) *Corpus {
	c := &Corpus{
		Strings: make([]TokenizedString, len(raw)),
		tokenID: make(map[string]TokenID),
	}
	// First pass: tokenize and collect the distinct token space.
	distinct := make(map[string]struct{})
	for i, s := range raw {
		c.Strings[i] = tok(s)
		for _, t := range c.Strings[i].Tokens {
			distinct[t] = struct{}{}
		}
	}
	c.Tokens = make([]string, 0, len(distinct))
	for t := range distinct {
		c.Tokens = append(c.Tokens, t)
	}
	sort.Strings(c.Tokens)
	c.TokenRunes = make([][]rune, len(c.Tokens))
	for id, t := range c.Tokens {
		c.tokenID[t] = TokenID(id)
		c.TokenRunes[id] = []rune(t)
	}
	// Second pass: membership lists and document frequencies.
	c.Freq = make([]int32, len(c.Tokens))
	c.Members = make([][]TokenID, len(c.Strings))
	for i, ts := range c.Strings {
		seen := make(map[TokenID]struct{}, len(ts.Tokens))
		ids := make([]TokenID, 0, len(ts.Tokens))
		for _, t := range ts.Tokens {
			id := c.tokenID[t]
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			ids = append(ids, id)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		c.Members[i] = ids
		for _, id := range ids {
			c.Freq[id]++
		}
	}
	return c
}

// BuildCorpusFromTokenized assembles a corpus from already-tokenized
// strings (used by generators that produce token multisets directly).
func BuildCorpusFromTokenized(strs []TokenizedString) *Corpus {
	raw := make([]string, len(strs))
	for i, ts := range strs {
		raw[i] = ts.String()
	}
	return BuildCorpus(raw, Whitespace)
}

// NewCorpusView assembles a Corpus from externally maintained state (the
// persistent corpus of internal/corpus exposes its token space this way so
// the batch joiner can run on it without rebuilding anything). Unlike
// BuildCorpus, token ids follow the caller's interning order rather than
// lexicographic order; members[s] must hold string s's distinct TokenIDs
// in the lexicographic order of their token strings — the invariant
// consumers of Members actually rely on (the id-expansion walk advances a
// distinct cursor whenever the sorted token changes), and the one
// BuildCorpus's lexicographic ids provide for free. The intern map is
// built lazily on the first TokenIDOf call, so views captured per join
// never pay for it (the join pipeline works on ids throughout).
func NewCorpusView(strings []TokenizedString, tokens []string, tokenRunes [][]rune, freq []int32, members [][]TokenID) *Corpus {
	return &Corpus{
		Strings:    strings,
		Tokens:     tokens,
		TokenRunes: tokenRunes,
		Freq:       freq,
		Members:    members,
	}
}

// TokenIDOf returns the TokenID for a token string, if present. Safe for
// concurrent use (the lazy intern-map build is synchronized).
func (c *Corpus) TokenIDOf(t string) (TokenID, bool) {
	c.tokenIDOnce.Do(func() {
		if c.tokenID != nil {
			return // BuildCorpus filled it eagerly
		}
		m := make(map[string]TokenID, len(c.Tokens))
		for id, tok := range c.Tokens {
			m[tok] = TokenID(id)
		}
		c.tokenID = m
	})
	id, ok := c.tokenID[t]
	return id, ok
}

// NumStrings returns |R|.
func (c *Corpus) NumStrings() int { return len(c.Strings) }

// NumTokens returns |R^t|, the distinct token-space size.
func (c *Corpus) NumTokens() int { return len(c.Tokens) }

// TotalPairs returns the number of unordered string pairs |R|*(|R|-1)/2 the
// self-join would naively compare (the paper quotes 1.967e15 for its 44.4M
// names).
func (c *Corpus) TotalPairs() float64 {
	n := float64(len(c.Strings))
	return n * (n - 1) / 2
}
