package token

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(77))}
}

func TestQuickTokenizeOrderInvariance(t *testing.T) {
	// Re-joining a tokenized string's tokens in any rotation and
	// re-tokenizing yields the same multiset.
	f := func(s string, rot uint8) bool {
		ts := WhitespaceAndPunct(s)
		if ts.Count() == 0 {
			return true
		}
		k := int(rot) % ts.Count()
		rotated := append(append([]string{}, ts.Tokens[k:]...), ts.Tokens[:k]...)
		return New(rotated).Equal(ts)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTokenizeIdempotent(t *testing.T) {
	// Tokenizing the canonical rendition reproduces the multiset.
	f := func(s string) bool {
		ts := WhitespaceAndPunct(s)
		return WhitespaceAndPunct(ts.String()).Equal(ts)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickAggregateLenMatchesTokens(t *testing.T) {
	f := func(s string) bool {
		ts := WhitespaceAndPunct(s)
		sum := 0
		for _, tok := range ts.Tokens {
			sum += len([]rune(tok))
		}
		if sum != ts.AggregateLen() {
			return false
		}
		h := ts.LengthHistogram()
		hsum := 0
		for i, l := range h {
			hsum += l
			if i > 0 && h[i] < h[i-1] {
				return false // histogram must be sorted
			}
		}
		return hsum == sum
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	// Equal keys imply equal multisets and vice versa.
	f := func(a, b string) bool {
		ta, tb := WhitespaceAndPunct(a), WhitespaceAndPunct(b)
		return (ta.Key() == tb.Key()) == ta.Equal(tb)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickTokensContainNoSeparators(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range WhitespaceAndPunct(s).Tokens {
			if tok == "" || strings.ContainsAny(tok, " \t\n.,-!'\x1f") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
