package token

import (
	"reflect"
	"testing"
)

func TestWhitespaceAndPunct(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Barak Obama", []string{"barak", "obama"}},
		{"Obamma, Boraak H.", []string{"boraak", "h", "obamma"}},
		{"  multiple   spaces ", []string{"multiple", "spaces"}},
		{"", nil},
		{"...", nil},
		{"O'Neill-Smith", []string{"neill", "o", "smith"}},
		{"Jean-Luc", []string{"jean", "luc"}},
		{"ABC123 def", []string{"abc123", "def"}},
		{"名前 テスト", []string{"テスト", "名前"}},
	}
	for _, c := range cases {
		got := WhitespaceAndPunct(c.in)
		if len(c.want) == 0 && got.Count() == 0 {
			continue
		}
		if !reflect.DeepEqual(got.Tokens, c.want) {
			t.Errorf("WhitespaceAndPunct(%q) = %v, want %v", c.in, got.Tokens, c.want)
		}
	}
}

func TestTokenizedStringAccounting(t *testing.T) {
	ts := New([]string{"chan", "kalan"})
	if ts.Count() != 2 {
		t.Errorf("Count = %d, want 2", ts.Count())
	}
	if ts.AggregateLen() != 9 { // paper Sec. II-D: L({"chan","kalan"}) = 9
		t.Errorf("AggregateLen = %d, want 9", ts.AggregateLen())
	}
	if got := ts.LengthHistogram(); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("LengthHistogram = %v, want [4 5]", got)
	}
}

func TestTokenizedStringMultisetSemantics(t *testing.T) {
	a := New([]string{"x", "x", "y"})
	b := New([]string{"y", "x", "x"})
	if !a.Equal(b) {
		t.Error("order must not matter for multiset equality")
	}
	c := New([]string{"x", "y"})
	if a.Equal(c) {
		t.Error("multiplicity must matter for multiset equality")
	}
	if a.Key() == c.Key() {
		t.Error("keys of distinct multisets must differ")
	}
}

func TestEmptyTokensDropped(t *testing.T) {
	ts := New([]string{"", "a", ""})
	if ts.Count() != 1 || ts.Tokens[0] != "a" {
		t.Errorf("empty tokens must be dropped, got %v", ts.Tokens)
	}
}

func TestRuneAwareLengths(t *testing.T) {
	ts := New([]string{"日本語"})
	if ts.AggregateLen() != 3 {
		t.Errorf("AggregateLen for 日本語 = %d, want 3 runes", ts.AggregateLen())
	}
}

func TestBuildCorpus(t *testing.T) {
	raw := []string{"barak obama", "barak h obama", "john smith", "john m smith"}
	c := BuildCorpus(raw, WhitespaceAndPunct)
	if c.NumStrings() != 4 {
		t.Fatalf("NumStrings = %d, want 4", c.NumStrings())
	}
	wantTokens := []string{"barak", "h", "john", "m", "obama", "smith"}
	if !reflect.DeepEqual(c.Tokens, wantTokens) {
		t.Fatalf("token space = %v, want %v", c.Tokens, wantTokens)
	}
	id, ok := c.TokenIDOf("barak")
	if !ok {
		t.Fatal("barak missing from token space")
	}
	if c.Freq[id] != 2 {
		t.Errorf("Freq[barak] = %d, want 2", c.Freq[id])
	}
	if got := c.TotalPairs(); got != 6 {
		t.Errorf("TotalPairs = %v, want 6", got)
	}
	// Membership lists are distinct token ids in ascending order.
	for s, mem := range c.Members {
		for i := 1; i < len(mem); i++ {
			if mem[i] <= mem[i-1] {
				t.Errorf("Members[%d] not strictly ascending: %v", s, mem)
			}
		}
	}
}

func TestCorpusDuplicateTokensCountOnce(t *testing.T) {
	c := BuildCorpus([]string{"bo bo bo"}, WhitespaceAndPunct)
	id, ok := c.TokenIDOf("bo")
	if !ok {
		t.Fatal("bo missing")
	}
	if c.Freq[id] != 1 {
		t.Errorf("document frequency must count strings, not occurrences: got %d", c.Freq[id])
	}
	if len(c.Members[0]) != 1 {
		t.Errorf("Members must list distinct tokens once: %v", c.Members[0])
	}
	// But the multiset itself retains multiplicity.
	if c.Strings[0].Count() != 3 {
		t.Errorf("multiset must keep duplicates: %v", c.Strings[0].Tokens)
	}
}
