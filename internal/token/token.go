// Package token implements the tokenized-string model of Sec. II-A: a
// tokenizer t(·) mapping a string to a finite multiset of tokens, plus the
// derived quantities the paper's algorithms consume — the token count
// T(x^t), the aggregate token length L(x^t), and per-string token-length
// histograms (used by the TSJ distance-lower-bound filter of Sec. III-E.2).
package token

import (
	"sort"
	"strings"
	"unicode"
)

// TokenizedString is a tokenized string x^t = {x^t1, ..., x^tm}: a finite
// multiset of tokens. Tokens are stored sorted so that two equal multisets
// compare equal element-wise and hashing/keying is deterministic; multiset
// semantics (duplicates allowed) are preserved.
type TokenizedString struct {
	// Tokens holds the multiset in sorted order.
	Tokens []string
	// runes caches the decoded form of each token, aligned with Tokens.
	runes [][]rune
	// aggLen caches L(x^t) in runes.
	aggLen int
	// lenHist caches the ascending token-length histogram, so the
	// per-candidate-pair lower-bound filter costs no allocation.
	lenHist []int
	// bmpOnly caches whether every rune sits in the Basic Multilingual
	// Plane — the precondition for the uint16-narrowed vector kernels,
	// checked once here instead of per candidate visit.
	bmpOnly bool
}

// New builds a TokenizedString from an arbitrary (unsorted) multiset of
// tokens. Empty tokens are dropped: per Definition 3 the set-level edit
// operations add and remove empty tokens freely, so a stored ε token never
// changes any SLD/NSLD value.
func New(tokens []string) TokenizedString {
	kept := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t != "" {
			kept = append(kept, t)
		}
	}
	sort.Strings(kept)
	ts := TokenizedString{Tokens: kept}
	ts.index()
	return ts
}

// index populates the cached rune forms, aggregate length and length
// histogram.
func (ts *TokenizedString) index() {
	ts.runes = make([][]rune, len(ts.Tokens))
	ts.aggLen = 0
	ts.lenHist = make([]int, len(ts.Tokens))
	ts.bmpOnly = true
	for i, t := range ts.Tokens {
		r := []rune(t)
		ts.runes[i] = r
		ts.aggLen += len(r)
		ts.lenHist[i] = len(r)
		for _, c := range r {
			if c < 0 || c >= 0x10000 {
				ts.bmpOnly = false
				break
			}
		}
	}
	sort.Ints(ts.lenHist)
}

// Count returns T(x^t), the number of tokens.
func (ts TokenizedString) Count() int { return len(ts.Tokens) }

// AggregateLen returns L(x^t) = Σ_i |x^ti| in runes.
func (ts TokenizedString) AggregateLen() int { return ts.aggLen }

// TokenRunes returns the decoded form of token i. The caller must not
// mutate the returned slice.
func (ts TokenizedString) TokenRunes(i int) []rune { return ts.runes[i] }

// RuneSlices returns the decoded form of every token, aligned with
// Tokens. The caller must not mutate the returned slices; hot loops use
// this to avoid re-copying the TokenizedString header per TokenRunes
// call.
func (ts *TokenizedString) RuneSlices() [][]rune { return ts.runes }

// BMPOnly reports whether every rune of every token lies in the Basic
// Multilingual Plane (computed once at construction). Strings
// assembled without New report false, which only costs them the
// vector-kernel fast path.
func (ts *TokenizedString) BMPOnly() bool { return ts.bmpOnly }

// String renders the multiset as a space-joined string (tokens are sorted,
// so this is a canonical form).
func (ts TokenizedString) String() string { return strings.Join(ts.Tokens, " ") }

// Key returns a canonical representation usable as a map key. Tokens are
// joined with a unit separator, which the tokenizer never emits inside a
// token.
func (ts TokenizedString) Key() string { return strings.Join(ts.Tokens, "\x1f") }

// Equal reports whether two tokenized strings are the same multiset.
func (ts TokenizedString) Equal(o TokenizedString) bool {
	if len(ts.Tokens) != len(o.Tokens) {
		return false
	}
	for i := range ts.Tokens {
		if ts.Tokens[i] != o.Tokens[i] {
			return false
		}
	}
	return true
}

// LengthHistogram returns the multiset of token lengths in ascending order.
// This is the histogram the TSJ length-based filters ship with each
// tokenized-string identifier (Sec. III-E). The returned slice is the
// cached histogram; the caller must not mutate it.
func (ts TokenizedString) LengthHistogram() []int {
	if ts.lenHist == nil && len(ts.Tokens) > 0 {
		// A TokenizedString assembled without New (zero value plus
		// Tokens); fall back to computing on the spot.
		h := make([]int, len(ts.Tokens))
		for i, t := range ts.Tokens {
			h[i] = len([]rune(t))
		}
		sort.Ints(h)
		return h
	}
	return ts.lenHist
}

// Tokenizer is a function mapping a raw string to its tokenized form.
type Tokenizer func(string) TokenizedString

// Whitespace tokenizes on Unicode whitespace only.
func Whitespace(s string) TokenizedString {
	return New(strings.Fields(s))
}

// WhitespaceAndPunct is the paper's evaluation tokenizer (Sec. V: "The
// names were tokenized using whitespaces and punctuation characters") with
// case folding: any run of non-letter, non-digit runes separates tokens,
// and tokens are lower-cased so that "Obama" and "obama" compare equal.
func WhitespaceAndPunct(s string) TokenizedString {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	for i, f := range fields {
		fields[i] = strings.ToLower(f)
	}
	return New(fields)
}

// CaseSensitivePunct is WhitespaceAndPunct without case folding, for
// applications where case carries signal.
func CaseSensitivePunct(s string) TokenizedString {
	return New(strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	}))
}
