package passjoin

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/strdist"
)

func TestEvenPartition(t *testing.T) {
	cases := []struct {
		l, m int
		want []Segment
	}{
		{10, 1, []Segment{{0, 10}}},
		{10, 3, []Segment{{0, 3}, {3, 3}, {6, 4}}},
		{7, 4, []Segment{{0, 1}, {1, 2}, {3, 2}, {5, 2}}},
		{3, 5, []Segment{{0, 0}, {0, 0}, {0, 1}, {1, 1}, {2, 1}}},
		{0, 2, []Segment{{0, 0}, {0, 0}}},
	}
	for _, c := range cases {
		got := EvenPartition(c.l, c.m)
		if len(got) != len(c.want) {
			t.Fatalf("EvenPartition(%d,%d) = %v, want %v", c.l, c.m, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("EvenPartition(%d,%d)[%d] = %v, want %v", c.l, c.m, i, got[i], c.want[i])
			}
		}
	}
	// Invariants: segments tile [0, l); lengths differ by at most 1.
	for l := 0; l <= 25; l++ {
		for m := 1; m <= 8; m++ {
			segs := EvenPartition(l, m)
			pos, minL, maxL := 0, 1<<30, 0
			for _, sg := range segs {
				if sg.Start != pos {
					t.Fatalf("gap in partition l=%d m=%d: %v", l, m, segs)
				}
				pos += sg.Len
				if sg.Len < minL {
					minL = sg.Len
				}
				if sg.Len > maxL {
					maxL = sg.Len
				}
			}
			if pos != l {
				t.Fatalf("partition does not cover string: l=%d m=%d %v", l, m, segs)
			}
			if maxL-minL > 1 {
				t.Fatalf("not even: l=%d m=%d %v", l, m, segs)
			}
		}
	}
}

// TestLemma7Pigeonhole: if LD(x,y) <= U, some segment of x (partitioned
// into U+1 segments) is a substring of y, found within the selection
// window.
func TestLemma7Pigeonhole(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, multiMatch := range []bool{true, false} {
		for iter := 0; iter < 4000; iter++ {
			x := randStr(rng, 1, 12)
			y := randStr(rng, 1, 12)
			d := strdist.LevenshteinRunes(x, y)
			for _, tau := range []int{d, d + 1, d + 3} {
				segs := EvenPartition(len(x), tau+1)
				found := false
				for i, sg := range segs {
					lo, hi := SubstringWindow(len(x), len(y), tau, i, sg, multiMatch)
					for q := lo; q <= hi && !found; q++ {
						if string(y[q:q+sg.Len]) == string(x[sg.Start:sg.Start+sg.Len]) {
							found = true
						}
					}
					if found {
						break
					}
				}
				if !found {
					t.Fatalf("Lemma 7 window (multiMatch=%v) missed pair %q/%q LD=%d tau=%d",
						multiMatch, string(x), string(y), d, tau)
				}
			}
		}
	}
}

func randStr(rng *rand.Rand, minLen, maxLen int) []rune {
	n := minLen + rng.Intn(maxLen-minLen+1)
	s := make([]rune, n)
	for i := range s {
		s[i] = rune('a' + rng.Intn(4))
	}
	return s
}

// corpusWithNearDuplicates builds a random corpus seeded with clusters of
// slightly-edited strings so joins have real matches.
func corpusWithNearDuplicates(rng *rand.Rand, n int) [][]rune {
	var out [][]rune
	for len(out) < n {
		base := randStr(rng, 3, 10)
		out = append(out, base)
		for k := 0; k < rng.Intn(3) && len(out) < n; k++ {
			c := append([]rune(nil), base...)
			switch rng.Intn(3) {
			case 0:
				c[rng.Intn(len(c))] = rune('a' + rng.Intn(4))
			case 1:
				p := rng.Intn(len(c) + 1)
				c = append(c[:p], append([]rune{rune('a' + rng.Intn(4))}, c[p:]...)...)
			case 2:
				if len(c) > 1 {
					p := rng.Intn(len(c))
					c = append(c[:p], c[p+1:]...)
				}
			}
			out = append(out, c)
		}
	}
	return out
}

func bruteSelfJoinNLD(strs [][]rune, t float64) map[[2]int]int {
	want := make(map[[2]int]int)
	for i := 0; i < len(strs); i++ {
		for j := i + 1; j < len(strs); j++ {
			d := strdist.LevenshteinRunes(strs[i], strs[j])
			if strdist.WithinNLD(d, len(strs[i]), len(strs[j]), t) {
				want[[2]int{i, j}] = d
			}
		}
	}
	return want
}

func pairKey(p Pair) [2]int {
	if p.A < p.B {
		return [2]int{p.A, p.B}
	}
	return [2]int{p.B, p.A}
}

func TestSelfJoinNLDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for _, multiMatch := range []bool{true, false} {
		for _, threshold := range []float64{0.025, 0.1, 0.225, 0.35} {
			for iter := 0; iter < 12; iter++ {
				strs := corpusWithNearDuplicates(rng, 60)
				want := bruteSelfJoinNLD(strs, threshold)
				got := SelfJoinNLD(strs, threshold, Options{MultiMatchAware: multiMatch})
				gotSet := make(map[[2]int]int, len(got))
				for _, p := range got {
					if _, dup := gotSet[pairKey(p)]; dup {
						t.Fatalf("duplicate pair %v", p)
					}
					gotSet[pairKey(p)] = p.LD
				}
				if len(gotSet) != len(want) {
					t.Fatalf("T=%v mm=%v: got %d pairs, want %d\nmissing/extra: %v",
						threshold, multiMatch, len(gotSet), len(want),
						diffPairs(want, gotSet, strs))
				}
				for k, d := range want {
					if gd, ok := gotSet[k]; !ok || gd != d {
						t.Fatalf("pair %v: got (%d,%v), want %d", k, gd, ok, d)
					}
				}
			}
		}
	}
}

func diffPairs(want, got map[[2]int]int, strs [][]rune) string {
	s := ""
	for k := range want {
		if _, ok := got[k]; !ok {
			s += fmt.Sprintf("missing %v (%q,%q) ", k, string(strs[k[0]]), string(strs[k[1]]))
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			s += fmt.Sprintf("extra %v ", k)
		}
	}
	return s
}

func TestSelfJoinLDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, tau := range []int{0, 1, 2, 3} {
		for iter := 0; iter < 10; iter++ {
			strs := corpusWithNearDuplicates(rng, 50)
			want := make(map[[2]int]int)
			for i := 0; i < len(strs); i++ {
				for j := i + 1; j < len(strs); j++ {
					if d := strdist.LevenshteinRunes(strs[i], strs[j]); d <= tau {
						want[[2]int{i, j}] = d
					}
				}
			}
			got := SelfJoinLD(strs, tau, DefaultOptions())
			if len(got) != len(want) {
				t.Fatalf("tau=%d: got %d pairs, want %d", tau, len(got), len(want))
			}
			for _, p := range got {
				if d, ok := want[pairKey(p)]; !ok || d != p.LD {
					t.Fatalf("tau=%d: wrong pair %v", tau, p)
				}
			}
		}
	}
}

func TestJoinNLDBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for _, threshold := range []float64{0.1, 0.25} {
		for iter := 0; iter < 10; iter++ {
			r := corpusWithNearDuplicates(rng, 40)
			p := corpusWithNearDuplicates(rng, 40)
			want := make(map[[2]int]int)
			for i := range r {
				for j := range p {
					d := strdist.LevenshteinRunes(r[i], p[j])
					if strdist.WithinNLD(d, len(r[i]), len(p[j]), threshold) {
						want[[2]int{i, j}] = d
					}
				}
			}
			got := JoinNLD(r, p, threshold, DefaultOptions())
			if len(got) != len(want) {
				t.Fatalf("T=%v: got %d pairs, want %d", threshold, len(got), len(want))
			}
			for _, pr := range got {
				if d, ok := want[[2]int{pr.A, pr.B}]; !ok || d != pr.LD {
					t.Fatalf("T=%v: wrong pair %+v", threshold, pr)
				}
			}
		}
	}
}

func TestMultiMatchAwareGeneratesFewerCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	strs := corpusWithNearDuplicates(rng, 400)
	var mmStats, shiftStats Stats
	SelfJoinNLD(strs, 0.2, Options{MultiMatchAware: true, Stats: &mmStats})
	SelfJoinNLD(strs, 0.2, Options{MultiMatchAware: false, Stats: &shiftStats})
	if mmStats.Verified != shiftStats.Verified {
		t.Fatalf("both selections must verify the same pairs: %d vs %d",
			mmStats.Verified, shiftStats.Verified)
	}
	if mmStats.Lookups > shiftStats.Lookups {
		t.Errorf("multi-match-aware should probe no more than shift window: %d vs %d",
			mmStats.Lookups, shiftStats.Lookups)
	}
}

func TestSelfJoinNLDIdenticalStrings(t *testing.T) {
	strs := [][]rune{[]rune("anna"), []rune("anna"), []rune("anna")}
	got := SelfJoinNLD(strs, 0.0, DefaultOptions())
	if len(got) != 3 {
		t.Fatalf("three identical strings must yield 3 pairs, got %d", len(got))
	}
	for _, p := range got {
		if p.LD != 0 {
			t.Fatalf("identical strings with LD %d", p.LD)
		}
	}
}

func TestSelfJoinNLDEmptyAndTiny(t *testing.T) {
	if got := SelfJoinNLD(nil, 0.1, DefaultOptions()); len(got) != 0 {
		t.Fatal("nil input must join to nothing")
	}
	strs := [][]rune{[]rune("a")}
	if got := SelfJoinNLD(strs, 0.5, DefaultOptions()); len(got) != 0 {
		t.Fatal("single string joins to nothing")
	}
	// Large threshold with very short strings exercises tau >= len.
	strs = [][]rune{[]rune("ab"), []rune("cd"), []rune("ab")}
	got := SelfJoinNLD(strs, 0.7, DefaultOptions())
	want := bruteSelfJoinNLD(strs, 0.7)
	if len(got) != len(want) {
		t.Fatalf("short-string join: got %d, want %d", len(got), len(want))
	}
}
