// Package passjoin implements Pass-Join (Li, Deng, Wang, Feng; PVLDB 2011),
// the partition-based string similarity join the paper adopts — via its
// distributed version MassJoin — for the similar-token candidate
// generation of Sec. III-D.
//
// The core insight is Lemma 7: if LD(x, y) <= U, partitioning x into U+1
// segments guarantees at least one segment is a substring of y. Pass-Join
// indexes the segments of one side and probes with selected substrings of
// the other, then verifies surviving candidates with a banded Levenshtein
// computation.
//
// Both a fixed-threshold LD join and the normalized NLD join required by
// TSJ are provided; the NLD join derives per-length-pair edit thresholds
// from Lemma 8 and restricts compatible lengths via Lemma 9.
package passjoin

// Segment describes one segment of an even partition: the start offset and
// length within the partitioned string.
type Segment struct {
	Start, Len int
}

// EvenPartition splits a string of length l into m segments whose lengths
// differ by at most one (the even-partition scheme of Sec. III-D, which
// minimizes the space of string chunks). The first m - l%m segments have
// length floor(l/m); the remaining l%m have length ceil(l/m). m must be
// >= 1; zero-length segments occur only when m > l.
func EvenPartition(l, m int) []Segment {
	segs := make([]Segment, m)
	base, rem := l/m, l%m
	pos := 0
	for i := 0; i < m; i++ {
		ln := base
		if i >= m-rem {
			ln++
		}
		segs[i] = Segment{Start: pos, Len: ln}
		pos += ln
	}
	return segs
}

// SubstringWindow returns the inclusive range [lo, hi] of start positions
// in a probe string of length lr at which a substring can match segment i
// (0-based) of an indexed string of length ls, under edit threshold tau.
//
// With multiMatch, the range is the multi-match-aware selection of
// Pass-Join (their Lemma 4): the intersection of the position-aware window
// |q - p_i| <= i and the length-aware window |q - (p_i + Δ)| <= tau - i,
// where Δ = lr - ls. Without it, the looser shift-based window
// |q - p_i| + |Δ - (q - p_i)| <= tau is used (the ablation baseline).
//
// An empty range is signalled by lo > hi.
func SubstringWindow(ls, lr, tau, i int, seg Segment, multiMatch bool) (lo, hi int) {
	delta := lr - ls
	p := seg.Start
	if multiMatch {
		lo = p - i
		if v := p + delta - (tau - i); v > lo {
			lo = v
		}
		hi = p + i
		if v := p + delta + (tau - i); v < hi {
			hi = v
		}
	} else {
		// Solve |u| + |Δ - u| <= tau for u = q - p. No solution exists
		// when |Δ| > tau (the length difference alone exceeds the budget).
		if delta > tau || -delta > tau {
			return 0, -1
		}
		if delta >= 0 {
			lo = p - (tau-delta)/2
			hi = p + delta + (tau-delta)/2
		} else {
			lo = p + delta - (tau+delta)/2
			hi = p + (tau+delta)/2
		}
	}
	if lo < 0 {
		lo = 0
	}
	if max := lr - seg.Len; hi > max {
		hi = max
	}
	return lo, hi
}
