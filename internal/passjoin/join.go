package passjoin

import (
	"sort"

	"repro/internal/strdist"
)

// Pair is one joined string pair: indices into the input slice(s) plus the
// exact Levenshtein distance established during verification.
type Pair struct {
	A, B int
	LD   int
}

// Options tunes the join.
type Options struct {
	// MultiMatchAware selects the tight substring window (Pass-Join
	// Lemma 4); when false the shift-based window is used. Both are
	// lossless; multi-match-aware generates fewer candidates.
	MultiMatchAware bool
	// Stats, when non-nil, accumulates candidate-generation counters.
	Stats *Stats
}

// Stats reports how much work candidate generation and verification did.
type Stats struct {
	Candidates int // candidate pairs before verification (after dedup)
	Verified   int // pairs that passed verification
	Lookups    int // segment-index probes
}

// DefaultOptions enables the multi-match-aware selection.
func DefaultOptions() Options { return Options{MultiMatchAware: true} }

// segIndex is an inverted index over the segments of a group of
// equal-length strings under one specific segment count.
type segIndex struct {
	segs []Segment
	// post[i] maps the chunk content of segment i to the ids holding it.
	post []map[string][]int32
}

func buildSegIndex(strs [][]rune, ids []int32, l, m int) *segIndex {
	idx := &segIndex{segs: EvenPartition(l, m), post: make([]map[string][]int32, m)}
	for i := range idx.post {
		idx.post[i] = make(map[string][]int32)
	}
	for k, id := range ids {
		s := strs[k]
		for i, sg := range idx.segs {
			chunk := string(s[sg.Start : sg.Start+sg.Len])
			idx.post[i][chunk] = append(idx.post[i][chunk], id)
		}
	}
	return idx
}

// lenGroups buckets string ids by rune length, ascending.
func lenGroups(strs [][]rune) (lens []int, groups map[int][]int32) {
	groups = make(map[int][]int32)
	for i, s := range strs {
		groups[len(s)] = append(groups[len(s)], int32(i))
	}
	for l := range groups {
		lens = append(lens, l)
	}
	sort.Ints(lens)
	return lens, groups
}

// SelfJoinNLD returns all unordered pairs (A < B) of strs with
// NLD(strs[A], strs[B]) <= t. It implements the self-join optimization of
// Sec. III-G.1: only the |x| <= |y| direction is indexed and probed, and
// per-(length, length) edit thresholds follow Lemma 8 with the length
// condition of Lemma 9.
func SelfJoinNLD(strs [][]rune, t float64, opt Options) []Pair {
	lens, groups := lenGroups(strs)
	// Cache of segment indexes keyed by (length, segment count).
	type key struct{ l, m int }
	cache := make(map[key]*segIndex)
	getIndex := func(l, m int) *segIndex {
		k := key{l, m}
		if idx, ok := cache[k]; ok {
			return idx
		}
		ids := groups[l]
		sub := make([][]rune, len(ids))
		for i, id := range ids {
			sub[i] = strs[id]
		}
		idx := buildSegIndex(sub, ids, l, m)
		cache[k] = idx
		return idx
	}

	var out []Pair
	seen := newDeduper(len(strs))
	for _, lr := range lens {
		minLs := strdist.MinLenWithin(t, lr)
		for _, y := range groups[lr] {
			ys := strs[y]
			seen.reset()
			for ls := minLs; ls <= lr; ls++ {
				if _, ok := groups[ls]; !ok {
					continue
				}
				tau := strdist.MaxLDWithin(t, ls, lr)
				if tau < 0 {
					continue
				}
				// m must be exactly tau+1 for Lemma 7's pigeonhole to
				// hold; zero-length segments (when tau+1 > ls) match the
				// empty substring and keep the guarantee.
				m := tau + 1
				idx := getIndex(ls, m)
				probeOne(ys, lr, ls, tau, idx, y, true, seen, strs, t, opt, &out)
			}
		}
	}
	sortPairs(out)
	return out
}

// JoinNLD returns all pairs (A indexes r, B indexes p) with
// NLD(r[A], p[B]) <= t. r is indexed; p probes.
func JoinNLD(r, p [][]rune, t float64, opt Options) []Pair {
	lens, groups := lenGroups(r)
	type key struct{ l, m int }
	cache := make(map[key]*segIndex)
	getIndex := func(l, m int) *segIndex {
		k := key{l, m}
		if idx, ok := cache[k]; ok {
			return idx
		}
		ids := groups[l]
		sub := make([][]rune, len(ids))
		for i, id := range ids {
			sub[i] = r[id]
		}
		idx := buildSegIndex(sub, ids, l, m)
		cache[k] = idx
		return idx
	}
	_ = lens

	var out []Pair
	seen := newDeduper(len(r))
	for y, ys := range p {
		lr := len(ys)
		minLs := strdist.MinLenWithin(t, lr)
		maxLs := strdist.MaxLenWithin(t, lr)
		seen.reset()
		for ls := minLs; ls <= maxLs; ls++ {
			if _, ok := groups[ls]; !ok {
				continue
			}
			tau := strdist.MaxLDWithin(t, ls, lr)
			if tau < 0 {
				continue
			}
			idx := getIndex(ls, tau+1)
			probeOne(ys, lr, ls, tau, idx, int32(y), false, seen, r, t, opt, &out)
		}
	}
	sortPairs(out)
	return out
}

// probeOne probes the segment index of indexed length ls with probe string
// ys, verifying and appending result pairs. In selfJoin mode, pairs of
// different lengths are generated exactly once (only the shorter side is
// indexed), so the id-order dedup applies only within equal-length groups.
func probeOne(ys []rune, lr, ls, tau int, idx *segIndex, probeID int32, selfJoin bool,
	seen *deduper, indexed [][]rune, t float64, opt Options, out *[]Pair) {
	for i, sg := range idx.segs {
		lo, hi := SubstringWindow(ls, lr, tau, i, sg, opt.MultiMatchAware)
		for q := lo; q <= hi; q++ {
			if opt.Stats != nil {
				opt.Stats.Lookups++
			}
			chunk := string(ys[q : q+sg.Len])
			for _, cand := range idx.post[i][chunk] {
				if selfJoin && ls == lr && cand >= probeID {
					continue
				}
				if !seen.mark(cand) {
					continue
				}
				if opt.Stats != nil {
					opt.Stats.Candidates++
				}
				d, ok := strdist.LevenshteinBounded(indexed[cand], ys, tau)
				if !ok || !strdist.WithinNLD(d, ls, lr, t) {
					continue
				}
				if opt.Stats != nil {
					opt.Stats.Verified++
				}
				*out = append(*out, Pair{A: int(cand), B: int(probeID), LD: d})
			}
		}
	}
}

// SelfJoinLD returns all unordered pairs with LD <= tau (the fixed-
// threshold Pass-Join; building block for LD-MassJoin).
func SelfJoinLD(strs [][]rune, tau int, opt Options) []Pair {
	if tau < 0 {
		return nil
	}
	lens, groups := lenGroups(strs)
	type key struct{ l, m int }
	cache := make(map[key]*segIndex)
	getIndex := func(l int) *segIndex {
		m := tau + 1
		k := key{l, m}
		if idx, ok := cache[k]; ok {
			return idx
		}
		ids := groups[l]
		sub := make([][]rune, len(ids))
		for i, id := range ids {
			sub[i] = strs[id]
		}
		idx := buildSegIndex(sub, ids, l, m)
		cache[k] = idx
		return idx
	}

	var out []Pair
	seen := newDeduper(len(strs))
	for _, lr := range lens {
		for _, y := range groups[lr] {
			ys := strs[y]
			seen.reset()
			for ls := lr - tau; ls <= lr; ls++ {
				if ls < 0 {
					continue
				}
				if _, ok := groups[ls]; !ok {
					continue
				}
				idx := getIndex(ls)
				probeOneLD(ys, lr, ls, tau, idx, y, true, seen, strs, opt, &out)
			}
		}
	}
	sortPairs(out)
	return out
}

func probeOneLD(ys []rune, lr, ls, tau int, idx *segIndex, probeID int32, selfJoin bool,
	seen *deduper, indexed [][]rune, opt Options, out *[]Pair) {
	for i, sg := range idx.segs {
		lo, hi := SubstringWindow(ls, lr, tau, i, sg, opt.MultiMatchAware)
		for q := lo; q <= hi; q++ {
			if opt.Stats != nil {
				opt.Stats.Lookups++
			}
			chunk := string(ys[q : q+sg.Len])
			for _, cand := range idx.post[i][chunk] {
				if selfJoin && ls == lr && cand >= probeID {
					continue
				}
				if !seen.mark(cand) {
					continue
				}
				if opt.Stats != nil {
					opt.Stats.Candidates++
				}
				d, ok := strdist.LevenshteinBounded(indexed[cand], ys, tau)
				if !ok {
					continue
				}
				if opt.Stats != nil {
					opt.Stats.Verified++
				}
				*out = append(*out, Pair{A: int(cand), B: int(probeID), LD: d})
			}
		}
	}
}

// deduper marks candidate ids once per probe using generation stamps, so
// resets are O(1).
type deduper struct {
	stamp []uint32
	gen   uint32
}

func newDeduper(n int) *deduper { return &deduper{stamp: make([]uint32, n), gen: 0} }

func (d *deduper) reset() { d.gen++ }

// mark returns true the first time id is seen in the current generation.
func (d *deduper) mark(id int32) bool {
	if d.stamp[id] == d.gen {
		return false
	}
	d.stamp[id] = d.gen
	return true
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}
