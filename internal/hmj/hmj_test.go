package hmj

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

// numMetric is a 1-D Euclidean metric for fast exhaustive testing.
func numMetric(a, b float64) float64 { return math.Abs(a - b) }

func TestSelfJoinNumericMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for iter := 0; iter < 8; iter++ {
		items := make([]float64, 300)
		for i := range items {
			items[i] = rng.Float64() * 100
		}
		threshold := 0.5 + rng.Float64()
		cfg := Config{NumCentroids: 5, PartitionSizeLimit: 20, Seed: int64(iter)}
		got, _ := SelfJoin(items, numMetric, threshold, cfg)
		want := make(map[[2]int]float64)
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if dd := numMetric(items[i], items[j]); dd <= threshold {
					want[[2]int{i, j}] = dd
				}
			}
		}
		gotSet := make(map[[2]int]float64)
		for _, p := range got {
			if _, dup := gotSet[[2]int{p.A, p.B}]; dup {
				t.Fatalf("duplicate pair %+v", p)
			}
			gotSet[[2]int{p.A, p.B}] = p.Dist
		}
		if len(gotSet) != len(want) {
			t.Fatalf("iter %d: got %d pairs, want %d", iter, len(gotSet), len(want))
		}
		for k, dd := range want {
			if g, ok := gotSet[k]; !ok || math.Abs(g-dd) > 1e-12 {
				t.Fatalf("iter %d: pair %v wrong: (%v,%v) want %v", iter, k, g, ok, dd)
			}
		}
	}
}

// TestSelfJoinNSLDMatchesBruteForce instantiates HMJ with the paper's NSLD
// metric over tokenized strings, as in the Fig. 7 comparison.
func TestSelfJoinNSLDMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	firsts := []string{"barak", "john", "mary", "chun"}
	lasts := []string{"obama", "smith", "huang"}
	var raw []string
	for len(raw) < 80 {
		name := firsts[rng.Intn(len(firsts))] + " " + lasts[rng.Intn(len(lasts))]
		raw = append(raw, name)
		if rng.Intn(2) == 0 {
			r := []rune(name)
			r[rng.Intn(len(r))] = rune('a' + rng.Intn(26))
			raw = append(raw, string(r))
		}
	}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	metric := func(a, b token.TokenizedString) float64 { return core.NSLD(a, b) }
	threshold := 0.15
	cfg := Config{NumCentroids: 4, PartitionSizeLimit: 10, Seed: 7}
	got, pipe := SelfJoin(c.Strings, metric, threshold, cfg)
	want := make(map[[2]int]struct{})
	for i := 0; i < len(c.Strings); i++ {
		for j := i + 1; j < len(c.Strings); j++ {
			if core.NSLD(c.Strings[i], c.Strings[j]) <= threshold {
				want[[2]int{i, j}] = struct{}{}
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d pairs, want %d", len(got), len(want))
	}
	for _, p := range got {
		if _, ok := want[[2]int{p.A, p.B}]; !ok {
			t.Fatalf("extra pair %+v", p)
		}
	}
	if pipe.TotalWork() <= 0 {
		t.Fatal("pipeline must record work")
	}
}

func TestSelfJoinDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	items := make([]float64, 200)
	for i := range items {
		items[i] = rng.Float64() * 50
	}
	cfg := Config{NumCentroids: 6, PartitionSizeLimit: 15, Seed: 42}
	a, _ := SelfJoin(items, numMetric, 0.8, cfg)
	b, _ := SelfJoin(items, numMetric, 0.8, cfg)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic result sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic pair at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSelfJoinRecursionOnDenseCluster(t *testing.T) {
	// All items nearly identical: forces recursive repartitioning to
	// degenerate and fall back to the nested loop.
	items := make([]float64, 600)
	for i := range items {
		items[i] = 10 + float64(i%3)*1e-6
	}
	cfg := Config{NumCentroids: 3, PartitionSizeLimit: 50, MaxDepth: 3, Seed: 1}
	got, _ := SelfJoin(items, numMetric, 1.0, cfg)
	wantPairs := len(items) * (len(items) - 1) / 2
	if len(got) != wantPairs {
		t.Fatalf("dense cluster: got %d pairs, want %d", len(got), wantPairs)
	}
}

func TestSelfJoinTinyInputs(t *testing.T) {
	if got, _ := SelfJoin(nil, numMetric, 1, Config{}); len(got) != 0 {
		t.Fatal("nil input must yield no pairs")
	}
	if got, _ := SelfJoin([]float64{1}, numMetric, 1, Config{}); len(got) != 0 {
		t.Fatal("single item must yield no pairs")
	}
	got, _ := SelfJoin([]float64{1, 1.5}, numMetric, 1, Config{})
	if len(got) != 1 || got[0].A != 0 || got[0].B != 1 {
		t.Fatalf("two items: %+v", got)
	}
}

func TestPivotFilterPrunes(t *testing.T) {
	// Two far-apart clusters inside a single partition: the pivot
	// windowing (sorted by centroid distance, break when the gap exceeds
	// the threshold) must skip the cross-cluster nested loop entirely.
	var items []float64
	for i := 0; i < 100; i++ {
		items = append(items, float64(i%10)*1e-3)      // cluster at 0
		items = append(items, 1000+float64(i%10)*1e-3) // cluster at 1000
	}
	var calls atomic.Int64
	counting := func(a, b float64) float64 {
		calls.Add(1)
		return numMetric(a, b)
	}
	// A single centroid forces one partition holding everything, so the
	// only pruning available is the pivot window.
	cfg := Config{NumCentroids: 1, PartitionSizeLimit: 1000, Seed: 3}
	got, _ := SelfJoin(items, counting, 0.1, cfg)
	want := 2 * (100 * 99 / 2)
	if len(got) != want {
		t.Fatalf("got %d pairs, want %d", len(got), want)
	}
	// Full nested loop would be C(200,2) = 19900 pair evaluations (plus
	// 200 centroid assignments). The window keeps it near 2*C(100,2).
	full := int64(len(items) * (len(items) - 1) / 2)
	if calls.Load() >= full {
		t.Fatalf("pivot filter saved nothing: %d distance calls >= %d", calls.Load(), full)
	}
}
