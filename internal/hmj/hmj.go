// Package hmj implements the Hybrid Metric Joiner of Sec. V-E: the paper's
// in-house baseline combining the most scalable ideas from ClusterJoin
// (Das Sarma, He, Chaudhuri; PVLDB 2014) and MR-MAPSS (Wang, Metwally,
// Parthasarathy; KDD 2013) for distributed similarity joins in general
// metric spaces.
//
// The algorithm:
//
//  1. Sample a set of centroids; every record is assigned to its nearest
//     centroid's partition (a Voronoi dissection of the metric space).
//  2. General filter: a record o is replicated into every partition j with
//     d(o, c_j) <= d(o, c_home) + 2T. By the triangle inequality every
//     pair within distance T then co-occurs in the home partition of each
//     of its members, so emitting a pair only at the smaller of the two
//     home partitions is exhaustive and duplicate-free (the symmetry
//     exploitation of MR-MAPSS).
//  3. Each partition is joined locally. Oversized partitions are
//     recursively repartitioned with sub-centroids; small ones use a
//     pivot-filtered nested loop (records sorted by distance to the
//     centroid; |d(a,c) - d(b,c)| > T prunes by the triangle inequality).
//
// It is exact for any metric — NSLD qualifies by Theorem 2 — but, as the
// paper's Fig. 7 shows, it behaves poorly on tokenized strings, which form
// dense clusters that defeat Voronoi partitioning.
package hmj

import (
	"math/rand"
	"sort"

	"repro/internal/mapreduce"
)

// Metric is a distance function; it must satisfy the metric axioms for the
// join to be exact.
type Metric[T any] func(a, b T) float64

// Config tunes the joiner.
type Config struct {
	// NumCentroids is the number of sampled top-level centroids
	// (default: max(2, n/2000)).
	NumCentroids int
	// PartitionSizeLimit is the largest partition joined by the local
	// nested loop; larger partitions repartition recursively
	// (default 512).
	PartitionSizeLimit int
	// MaxDepth bounds the recursion (default 4).
	MaxDepth int
	// SubCentroids is the fan-out of recursive repartitioning
	// (default 8).
	SubCentroids int
	// Seed makes centroid sampling deterministic.
	Seed int64
	// DistCost is the work-unit charge per distance evaluation (used by
	// the simulated cluster; default 1).
	DistCost float64
	// MapTasks / Parallelism forward to the engine.
	MapTasks    int
	Parallelism int
}

func (c Config) withDefaults(n int) Config {
	if c.NumCentroids <= 0 {
		c.NumCentroids = n / 2000
		if c.NumCentroids < 2 {
			c.NumCentroids = 2
		}
	}
	if c.PartitionSizeLimit <= 0 {
		c.PartitionSizeLimit = 512
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 4
	}
	if c.SubCentroids <= 0 {
		c.SubCentroids = 8
	}
	if c.DistCost <= 0 {
		c.DistCost = 1
	}
	return c
}

// Pair is one joined pair (A < B) with its exact distance.
type Pair struct {
	A, B int
	Dist float64
}

// rec is a record replicated into a partition.
type rec struct {
	id        int32
	home      int32   // id of the record's home partition
	pivotDist float64 // distance to this partition's centroid
}

// SelfJoin returns all unordered pairs of items within distance threshold
// under the metric d, plus the MapReduce pipeline statistics.
func SelfJoin[T any](items []T, d Metric[T], threshold float64, cfg Config) ([]Pair, *mapreduce.Pipeline) {
	cfg = cfg.withDefaults(len(items))
	pipe := &mapreduce.Pipeline{}
	if len(items) < 2 {
		return nil, pipe
	}

	// Deterministic centroid sample.
	rng := rand.New(rand.NewSource(cfg.Seed))
	centroidIDs := sampleIDs(rng, len(items), cfg.NumCentroids)
	centroids := make([]T, len(centroidIDs))
	for i, id := range centroidIDs {
		centroids[i] = items[id]
	}

	ids := make([]int32, len(items))
	for i := range ids {
		ids[i] = int32(i)
	}

	engCfg := mapreduce.Config{Name: "hmj-join", MapTasks: cfg.MapTasks, Parallelism: cfg.Parallelism}
	pairs, st := mapreduce.Run(engCfg, ids,
		func(id int32, ctx *mapreduce.MapCtx[int32, rec]) {
			// Distance to every centroid: the dissection step.
			dists := make([]float64, len(centroids))
			best := 0
			for j, c := range centroids {
				dists[j] = d(items[id], c)
				if dists[j] < dists[best] {
					best = j
				}
			}
			ctx.AddCost(float64(len(centroids)) * cfg.DistCost)
			// Home partition plus the 2T general-filter window.
			for j := range centroids {
				if j == best || dists[j] <= dists[best]+2*threshold {
					ctx.Emit(int32(j), rec{id: id, home: int32(best), pivotDist: dists[j]})
				}
			}
		},
		func(part int32, recs []rec, ctx *mapreduce.ReduceCtx[Pair]) {
			var cost float64
			// Seed derived from (Seed, part) only: deterministic and safe
			// under concurrent reducers.
			local := localJoin(recs, items, d, threshold, cfg, 0, cfg.Seed*1_000_003+int64(part), &cost)
			ctx.AddCost(cost * cfg.DistCost)
			for _, p := range local {
				// Emit each global pair exactly once: at the smaller of
				// the two members' home partitions.
				ha, hb := p.homeA, p.homeB
				if hb < ha {
					ha, hb = hb, ha
				}
				if part != ha {
					continue
				}
				ctx.Emit(Pair{A: int(p.a), B: int(p.b), Dist: p.dist})
			}
		},
	)
	pipe.Add(st)

	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs, pipe
}

// localPair carries home metadata so the reducer can apply the global
// dedup rule.
type localPair struct {
	a, b         int32
	homeA, homeB int32
	dist         float64
}

// localJoin finds all pairs within threshold among recs. Large inputs are
// recursively repartitioned by sub-centroids (with the same 2T window);
// small inputs use the pivot-filtered nested loop. cost accumulates
// distance evaluations.
func localJoin[T any](recs []rec, items []T, d Metric[T], threshold float64,
	cfg Config, depth int, seed int64, cost *float64) []localPair {
	if len(recs) < 2 {
		return nil
	}
	if len(recs) <= cfg.PartitionSizeLimit || depth >= cfg.MaxDepth {
		return pivotJoin(recs, items, d, threshold, cost)
	}

	// Recursive repartitioning with sub-centroids (MR-MAPSS style).
	rng := rand.New(rand.NewSource(seed))
	subIdx := sampleIDs(rng, len(recs), cfg.SubCentroids)
	subParts := make([][]rec, len(subIdx))
	dists := make([]float64, len(subIdx))
	for _, r := range recs {
		best := 0
		for j, si := range subIdx {
			dists[j] = d(items[r.id], items[recs[si].id])
			if dists[j] < dists[best] {
				best = j
			}
		}
		*cost += float64(len(subIdx))
		for j := range subIdx {
			if j == best || dists[j] <= dists[best]+2*threshold {
				nr := r
				nr.pivotDist = dists[j]
				subParts[j] = append(subParts[j], nr)
			}
		}
	}
	// If repartitioning failed to produce useful progress, fall back to
	// the nested loop. Two failure modes: (a) a subpartition swallowed
	// everything; (b) the 2T replication window blew the total up — on
	// dense clusters (the paper's tokenized strings!) most records land in
	// most subpartitions and recursing would multiply, not divide, the
	// work. This is exactly the load-imbalance pathology Sec. V-E blames
	// for HMJ's poor showing.
	total := 0
	maxPart := 0
	for _, sp := range subParts {
		total += len(sp)
		if len(sp) > maxPart {
			maxPart = len(sp)
		}
	}
	if maxPart >= len(recs) || total > 3*len(recs)/2 {
		return pivotJoin(recs, items, d, threshold, cost)
	}
	// Join each subpartition; de-duplicate across subpartitions (the 2T
	// replication produces repeats) with a local pair set.
	seen := make(map[uint64]struct{})
	var out []localPair
	for j, sp := range subParts {
		for _, p := range localJoin(sp, items, d, threshold, cfg, depth+1, seed+int64(j)+1, cost) {
			k := uint64(uint32(p.a))<<32 | uint64(uint32(p.b))
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, p)
		}
	}
	return out
}

// pivotJoin is the leaf nested loop: records sorted by distance to the
// partition centroid; the triangle inequality prunes pairs whose pivot
// distances differ by more than the threshold.
func pivotJoin[T any](recs []rec, items []T, d Metric[T], threshold float64, cost *float64) []localPair {
	sorted := append([]rec(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].pivotDist != sorted[j].pivotDist {
			return sorted[i].pivotDist < sorted[j].pivotDist
		}
		return sorted[i].id < sorted[j].id
	})
	var out []localPair
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j].pivotDist-sorted[i].pivotDist > threshold {
				break // sorted: no later j can qualify
			}
			a, b := sorted[i], sorted[j]
			if a.id == b.id {
				continue // the same record replicated twice cannot meet here
			}
			*cost++
			dist := d(items[a.id], items[b.id])
			if dist > threshold {
				continue
			}
			pa, pb := a, b
			if pa.id > pb.id {
				pa, pb = pb, pa
			}
			out = append(out, localPair{a: pa.id, b: pb.id, homeA: pa.home, homeB: pb.home, dist: dist})
		}
	}
	return out
}

// sampleIDs draws k distinct indices from [0, n) deterministically.
func sampleIDs(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	ids := perm[:k]
	sort.Ints(ids)
	return ids
}
