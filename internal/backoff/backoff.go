// Package backoff is the one exponential-backoff implementation shared
// by every retry loop in the tree: tsjserve's degraded-mode recovery
// loop, its periodic-snapshot loop, and the replication layer's
// per-follower reconnect/resend loops. Each had grown its own ad-hoc
// doubling before; centralizing it makes the cap, reset and jitter
// behavior uniform and testable in one place.
package backoff

import (
	"math/rand"
	"time"
)

// Policy describes an exponential backoff: delays start at Base and
// double per attempt up to Cap, with optional multiplicative jitter.
// The zero value is unusable; callers always set Base (and normally
// Cap). Policies are value types and safe to copy.
type Policy struct {
	// Base is the first delay. Required.
	Base time.Duration
	// Cap bounds the delay; 0 means 32×Base.
	Cap time.Duration
	// Jitter is the fraction of the delay randomized away, in [0, 1):
	// a computed delay d becomes uniform in [d·(1−Jitter), d]. Shaving
	// downward (rather than spreading around d) keeps Cap a hard upper
	// bound. 0 disables jitter (deterministic, used by tests and by the
	// loops whose period is user-visible).
	Jitter float64
}

// cap resolves the effective cap.
func (p Policy) capped() time.Duration {
	if p.Cap > 0 {
		return p.Cap
	}
	return 32 * p.Base
}

// Delay returns the backoff for the given zero-based attempt number:
// Base<<attempt, capped, jittered. Negative attempts count as 0.
func (p Policy) Delay(attempt int) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	d := p.Base
	max := p.capped()
	// Shift in steps so a large attempt number cannot overflow the
	// duration before the cap applies.
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if p.Jitter > 0 {
		d -= time.Duration(p.Jitter * rand.Float64() * float64(d))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// State is a stateful retry counter over a Policy: Next returns the
// delay for the current attempt and advances; Reset rewinds to Base
// after a success. Not safe for concurrent use — each retry loop owns
// its State.
type State struct {
	P       Policy
	attempt int
}

// Next returns the current attempt's delay and advances the counter.
func (s *State) Next() time.Duration {
	d := s.P.Delay(s.attempt)
	s.attempt++
	return d
}

// Reset rewinds to the first attempt; the caller's operation succeeded.
func (s *State) Reset() { s.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset (useful for logging "retry #n").
func (s *State) Attempt() int { return s.attempt }
