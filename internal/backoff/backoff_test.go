package backoff

import (
	"testing"
	"time"
)

// TestDelayDoublingAndCap: delays double from Base and clamp at Cap,
// deterministically with Jitter = 0.
func TestDelayDoublingAndCap(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Delay(i); got != w {
			t.Fatalf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Delay(-3); got != p.Base {
		t.Fatalf("Delay(negative) = %v, want Base", got)
	}
}

// TestDefaultCap: Cap = 0 means 32×Base.
func TestDefaultCap(t *testing.T) {
	p := Policy{Base: time.Second}
	if got := p.Delay(100); got != 32*time.Second {
		t.Fatalf("Delay(100) with default cap = %v, want 32s", got)
	}
}

// TestDelayOverflowSafety: absurd attempt numbers must not overflow
// past the cap into a negative or tiny duration.
func TestDelayOverflowSafety(t *testing.T) {
	p := Policy{Base: time.Hour, Cap: 24 * time.Hour}
	for _, attempt := range []int{62, 63, 64, 1 << 20} {
		if got := p.Delay(attempt); got != 24*time.Hour {
			t.Fatalf("Delay(%d) = %v, want cap", attempt, got)
		}
	}
}

// TestJitterBounds: jittered delays stay within [d·(1−Jitter), d] — the
// cap remains a hard upper bound, and jitter never goes negative.
func TestJitterBounds(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Jitter: 0.5}
	for attempt := 0; attempt < 8; attempt++ {
		exact := Policy{Base: p.Base, Cap: p.Cap}.Delay(attempt)
		lo := exact - time.Duration(p.Jitter*float64(exact))
		for trial := 0; trial < 200; trial++ {
			got := p.Delay(attempt)
			if got < lo || got > exact {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", attempt, got, lo, exact)
			}
		}
	}
}

// TestJitterVaries: with jitter on, delays are not all identical (the
// randomness is actually applied).
func TestJitterVaries(t *testing.T) {
	p := Policy{Base: time.Second, Cap: time.Minute, Jitter: 0.9}
	first := p.Delay(3)
	for trial := 0; trial < 100; trial++ {
		if p.Delay(3) != first {
			return
		}
	}
	t.Fatal("200 jittered delays were all identical")
}

// TestStateAdvanceAndReset: Next walks the schedule, Reset rewinds it.
func TestStateAdvanceAndReset(t *testing.T) {
	s := State{P: Policy{Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond}}
	got := []time.Duration{s.Next(), s.Next(), s.Next(), s.Next()}
	want := []time.Duration{10, 20, 40, 40}
	for i := range want {
		if got[i] != want[i]*time.Millisecond {
			t.Fatalf("Next #%d = %v, want %v", i, got[i], want[i]*time.Millisecond)
		}
	}
	if s.Attempt() != 4 {
		t.Fatalf("Attempt() = %d, want 4", s.Attempt())
	}
	s.Reset()
	if s.Attempt() != 0 {
		t.Fatalf("Attempt() after Reset = %d, want 0", s.Attempt())
	}
	if d := s.Next(); d != 10*time.Millisecond {
		t.Fatalf("Next after Reset = %v, want Base", d)
	}
}
