// Package core implements the paper's primary contribution: the Setwise
// Levenshtein Distance (SLD, Definition 3) and the Normalized Setwise
// Levenshtein Distance (NSLD, Definition 4) between tokenized strings,
// together with the greedy-token-aligning approximation (Sec. III-G.5) and
// the provably-safe candidate filters of Sec. III-E.
//
// SLD(x^t, y^t) is the minimum number of character-level edit operations on
// tokens — with free AddEmptyToken/RemoveEmptyToken set-level operations —
// that transform one token multiset into the other. As Sec. III-F shows,
// this equals the minimum-weight perfect matching of the bigraph whose
// sides are the two token multisets padded with empty tokens to equal size
// and whose edge weights are token Levenshtein distances. NSLD normalizes:
//
//	NSLD(x^t, y^t) = 2*SLD / (L(x^t) + L(y^t) + SLD)
//
// NSLD is a metric (Theorem 2) in [0, 1] (Lemma 5).
package core

import (
	"repro/internal/assignment"
	"repro/internal/strdist"
	"repro/internal/token"
)

// costMatrix builds the padded token bigraph of Sec. III-F: k = max(m, n)
// nodes per side, missing tokens are empty strings, and the (i, j) weight is
// LD(x^ti, y^tj). An absent token has LD equal to the other token's length.
//
// Time: O(L(x^t) * L(y^t)) as stated in the paper.
func costMatrix(x, y token.TokenizedString) [][]int {
	m, n := x.Count(), y.Count()
	k := m
	if n > k {
		k = n
	}
	cost := make([][]int, k)
	for i := 0; i < k; i++ {
		cost[i] = make([]int, k)
		for j := 0; j < k; j++ {
			switch {
			case i < m && j < n:
				cost[i][j] = strdist.LevenshteinRunes(x.TokenRunes(i), y.TokenRunes(j))
			case i < m:
				cost[i][j] = len(x.TokenRunes(i)) // delete whole token into ε
			case j < n:
				cost[i][j] = len(y.TokenRunes(j)) // grow ε into the token
			default:
				cost[i][j] = 0 // ε matched to ε
			}
		}
	}
	return cost
}

// SLD returns the exact Setwise Levenshtein Distance, solving the
// assignment problem with the Hungarian algorithm
// (O(L(x)L(y) + max(T(x),T(y))^3), Sec. III-F).
func SLD(x, y token.TokenizedString) int {
	if x.Count() == 0 {
		return y.AggregateLen()
	}
	if y.Count() == 0 {
		return x.AggregateLen()
	}
	_, total := assignment.Hungarian(costMatrix(x, y))
	return total
}

// SLDGreedy returns the greedy-token-aligning upper bound on SLD
// (Sec. III-G.5): edge weights are exact token LDs, but the matching picks
// the globally cheapest edge repeatedly instead of solving the assignment
// problem. SLDGreedy(x, y) >= SLD(x, y) always; equality holds whenever the
// greedy matching happens to be optimal.
func SLDGreedy(x, y token.TokenizedString) int {
	if x.Count() == 0 {
		return y.AggregateLen()
	}
	if y.Count() == 0 {
		return x.AggregateLen()
	}
	_, total := assignment.Greedy(costMatrix(x, y))
	return total
}

// NSLDFromSLD applies the Definition 4 normalization to a precomputed SLD.
func NSLDFromSLD(sld, aggLenX, aggLenY int) float64 {
	if sld == 0 {
		return 0
	}
	return 2 * float64(sld) / float64(aggLenX+aggLenY+sld)
}

// NSLD returns the exact Normalized Setwise Levenshtein Distance.
func NSLD(x, y token.TokenizedString) float64 {
	return NSLDFromSLD(SLD(x, y), x.AggregateLen(), y.AggregateLen())
}

// NSLDGreedy returns the greedy-token-aligning approximation of NSLD. It
// never underestimates NSLD, so using it for thresholded joins can only
// produce false negatives (precision stays 1.0, Sec. V-B.2).
func NSLDGreedy(x, y token.TokenizedString) float64 {
	return NSLDFromSLD(SLDGreedy(x, y), x.AggregateLen(), y.AggregateLen())
}

// WithinNSLD reports whether a pair with setwise distance sld and aggregate
// lengths la, lb satisfies NSLD <= t, using the same rearranged form as
// strdist.WithinNLD so every pipeline stage agrees on boundaries:
// 2*sld <= t*(la+lb+sld).
func WithinNSLD(sld, la, lb int, t float64) bool {
	return 2*float64(sld) <= t*float64(la+lb+sld)
}
