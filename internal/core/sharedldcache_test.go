package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/strdist"
	"repro/internal/token"
)

// TestSharedTokenLDCacheMatchesDirect: concurrent workers probing the
// shared cache at mixed budgets always receive answers consistent with a
// direct bounded computation.
func TestSharedTokenLDCacheMatchesDirect(t *testing.T) {
	toks := make([][]rune, 40)
	for i := range toks {
		toks[i] = []rune(fmt.Sprintf("token%03d", i*7%40))
	}
	c := NewSharedTokenLDCache(0)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var row []uint16
			for rep := 0; rep < 3; rep++ {
				for i := range toks {
					for j := range toks {
						max := (i + j + w + rep) % 7
						if max == 6 {
							max = -1 // unbounded probes mixed in
						}
						got := c.ld(token.TokenID(i), token.TokenID(j), toks[i], toks[j], max, &row)
						want := strdist.LevenshteinRunes(toks[i], toks[j])
						if max >= 0 && want > max {
							if got <= max {
								errs <- fmt.Sprintf("ld(%d,%d,max=%d) = %d, want > max (true %d)", i, j, max, got, want)
								return
							}
						} else if got != want {
							errs <- fmt.Sprintf("ld(%d,%d,max=%d) = %d, want %d", i, j, max, got, want)
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	if c.Hits() == 0 || c.Misses() == 0 {
		t.Fatalf("counters not populated: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.Len() == 0 {
		t.Fatal("cache stored nothing")
	}
}

// TestSharedTokenLDCacheUpgrade: a bound entry is upgraded by a deeper
// bound and finalized by an exact computation, never the reverse.
func TestSharedTokenLDCacheUpgrade(t *testing.T) {
	a, b := []rune("abcdefgh"), []rune("hgfedcba")
	true_ := strdist.LevenshteinRunes(a, b)
	c := NewSharedTokenLDCache(0)
	var row []uint16
	if d := c.ld(1, 2, a, b, 1, &row); d <= 1 {
		t.Fatalf("budget-1 probe returned %d, want > 1", d)
	}
	// A deeper budget must recompute (the stored fact LD > 1 is weaker).
	if d := c.ld(1, 2, a, b, true_, &row); d != true_ {
		t.Fatalf("budget-%d probe returned %d, want exact %d", true_, d, true_)
	}
	// Exact is now memoized: a low-budget probe answers from the entry.
	misses := c.Misses()
	if d := c.ld(1, 2, a, b, 1, &row); d != 2 {
		t.Fatalf("capped probe returned %d, want max+1 = 2", d)
	}
	if c.Misses() != misses {
		t.Fatal("capped probe after exact entry recomputed instead of hitting")
	}
}

// TestMoreInformative pins the entry-upgrade lattice.
func TestMoreInformative(t *testing.T) {
	cases := []struct {
		a, b int32
		want bool
	}{
		{5, 3, false},   // exact never replaced
		{5, -2, true},   // exact replaces bound
		{-3, -2, true},  // LD>2 replaces LD>1
		{-2, -3, false}, // shallower bound discarded
		{-2, 7, false},  // bound never replaces exact
	}
	for _, tc := range cases {
		if got := moreInformative(tc.a, tc.b); got != tc.want {
			t.Fatalf("moreInformative(%d, %d) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
