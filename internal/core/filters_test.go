package core

import (
	"math/rand"
	"testing"

	"repro/internal/token"
)

func TestHistogramLowerBoundNeverExceedsSLD(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 3000; i++ {
		x := randomTS(rng, 5, 6)
		y := randomTS(rng, 5, 6)
		lb := HistogramLowerBound(x.LengthHistogram(), y.LengthHistogram())
		sld := SLD(x, y)
		if lb > sld {
			t.Fatalf("histogram LB %d exceeds SLD %d for %v | %v", lb, sld, x, y)
		}
	}
}

func TestHistogramLowerBoundKnown(t *testing.T) {
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{4, 5}, []int{4, 5}, 0},
		{[]int{4, 5}, []int{4}, 5},    // one unmatched token of length 5
		{[]int{3}, []int{5}, 2},       // stretch 3 -> 5
		{nil, []int{2, 3}, 5},         // everything unmatched
		{[]int{1, 9}, []int{5, 5}, 8}, // sorted pairing: |1-5| + |9-5|
		{[]int{2, 2, 2}, []int{6}, 8}, // 6 pairs with one 2 (cost 4), two 2s dropped
	}
	for _, c := range cases {
		if got := HistogramLowerBound(c.a, c.b); got != c.want {
			t.Errorf("HistogramLowerBound(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := HistogramLowerBound(c.b, c.a); got != c.want {
			t.Errorf("HistogramLowerBound must be symmetric for %v, %v", c.a, c.b)
		}
	}
}

// TestFiltersAreSafe is the load-bearing guarantee: neither filter ever
// prunes a pair whose true NSLD is within the threshold.
func TestFiltersAreSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	thresholds := []float64{0.025, 0.1, 0.225, 0.5}
	pruneCount := 0
	for i := 0; i < 3000; i++ {
		x := randomTS(rng, 5, 6)
		y := randomTS(rng, 5, 6)
		sld := SLD(x, y)
		for _, T := range thresholds {
			within := WithinNSLD(sld, x.AggregateLen(), y.AggregateLen(), T)
			if LengthPrune(x.AggregateLen(), y.AggregateLen(), T) {
				pruneCount++
				if within {
					t.Fatalf("LengthPrune dropped a true pair: %v | %v at T=%v (NSLD=%v)",
						x, y, T, NSLD(x, y))
				}
			}
			if LowerBoundPrune(x, y, T) {
				pruneCount++
				if within {
					t.Fatalf("LowerBoundPrune dropped a true pair: %v | %v at T=%v (NSLD=%v)",
						x, y, T, NSLD(x, y))
				}
			}
		}
	}
	if pruneCount == 0 {
		t.Fatal("filters never fired; test is vacuous")
	}
}

// TestLowerBoundFilterIsUseful documents that the histogram filter prunes
// strictly more than the length filter on token-count-mismatched pairs.
func TestLowerBoundFilterIsUseful(t *testing.T) {
	// Same aggregate length (so LengthPrune passes) but incompatible
	// shapes: {8} vs {4,4} needs at least 8 edits by the histogram bound
	// wait: sorted pairing 0,4 vs 4,8 -> |0-4| + |4-8| = 8. Here: histA =
	// [8], histB = [4,4]: padded [0,8] vs [4,4] -> 4 + 4 = 8.
	x := ts("aaaaaaaa")
	y := ts("bbbb", "cccc")
	T := 0.2
	if LengthPrune(x.AggregateLen(), y.AggregateLen(), T) {
		t.Fatal("length filter should pass equal aggregate lengths")
	}
	if !LowerBoundPrune(x, y, T) {
		t.Fatal("histogram filter should prune shape-incompatible pair")
	}
}

func TestMatchedTokenBound(t *testing.T) {
	histA := []int{4, 5}
	histB := []int{4, 5}
	// Pretend the generator matched the two 4-length tokens with LD 1.
	lb := MatchedTokenBound(histA, histB, []int{4}, []int{4}, []int{1})
	// Remaining histograms [5] vs [5] add 0; total 1.
	if lb != 1 {
		t.Fatalf("MatchedTokenBound = %d, want 1", lb)
	}
	// Removing a length that is absent is ignored.
	lb = MatchedTokenBound(histA, histB, []int{9}, []int{9}, []int{2})
	if lb != 2 {
		t.Fatalf("MatchedTokenBound with absent removal = %d, want 2", lb)
	}
}

func TestLengthPruneBoundary(t *testing.T) {
	// T = 0.5, Lb = 10: prune iff La < 5.
	if !LengthPrune(4, 10, 0.5) {
		t.Error("La=4 must be pruned")
	}
	if LengthPrune(5, 10, 0.5) {
		t.Error("La=5 is exactly on the bound and must be kept")
	}
	if LengthPrune(0, 0, 0.5) {
		t.Error("two empty strings must never be pruned")
	}
	// Symmetric in argument order.
	if LengthPrune(10, 5, 0.5) != LengthPrune(5, 10, 0.5) {
		t.Error("LengthPrune must be symmetric")
	}
}

var _ = token.New // keep the import alive if the helper moves
