package core

import (
	"repro/internal/strdist"
	"repro/internal/token"
)

// DefaultTokenLDCacheEntries caps a TokenLDCache at ~24 MB of map
// storage; hot batch joins typically need far fewer distinct token pairs.
const DefaultTokenLDCacheEntries = 1 << 20

// TokenLDCache memoizes token-pair Levenshtein distances keyed by
// (TokenID, TokenID). Batch joins re-verify the same token pairs many
// times — hot postings put identical tokens in thousands of candidate
// pairs — so the memo turns repeat cost-matrix cells into a map probe.
//
// Entries record either the exact distance or, when a bounded computation
// gave up at budget b, the fact LD > b; a later probe with a larger
// budget recomputes and upgrades the entry. The cache is not safe for
// concurrent use: it belongs to a single Verifier (one per worker).
type TokenLDCache struct {
	// Hits and Misses count probes answered from / missing the memo.
	Hits, Misses int64

	m          map[uint64]int32
	maxEntries int
}

// NewTokenLDCache creates a cache capped at maxEntries entries
// (<= 0 means DefaultTokenLDCacheEntries). Once full, new pairs are
// computed but not remembered.
func NewTokenLDCache(maxEntries int) *TokenLDCache {
	if maxEntries <= 0 {
		maxEntries = DefaultTokenLDCacheEntries
	}
	return &TokenLDCache{m: make(map[uint64]int32), maxEntries: maxEntries}
}

// Len returns the number of memoized token pairs.
func (c *TokenLDCache) Len() int { return len(c.m) }

// ld returns the (budget-capped when max >= 0) distance between the two
// tokens, from the memo when possible. Entries encode an exact distance d
// as d >= 0 and the bounded fact "LD > b" as -(b+1).
func (c *TokenLDCache) ld(a, b token.TokenID, ar, br []rune, max int, row *[]uint16) int {
	if a > b {
		a, b = b, a
		ar, br = br, ar
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	e, hit := c.m[key]
	if hit {
		if e >= 0 {
			c.Hits++
			if max >= 0 && int(e) > max {
				return max + 1
			}
			return int(e)
		}
		if lb := int(-e) - 1; max >= 0 && lb >= max {
			c.Hits++ // LD > lb >= max: capped without recomputing
			return max + 1
		}
		// Known only as LD > lb with lb < max: recompute at the larger
		// budget and upgrade the entry below.
	}
	c.Misses++
	var d int
	var exact bool
	if max < 0 {
		d = strdist.LevenshteinRunesScratchU16(ar, br, row)
		exact = true
	} else {
		d, exact = strdist.LevenshteinBoundedScratchU16(ar, br, max, row)
	}
	if hit || len(c.m) < c.maxEntries {
		if exact {
			c.m[key] = int32(d)
		} else {
			c.m[key] = int32(-(max + 1)) // LD > max
		}
	}
	return d
}
