package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// TestBoundedEquivalenceSLD: for random token multisets and every budget
// around the true value, SLDBounded agrees with SLD whenever the true
// value is within budget and correctly reports exceeded otherwise.
func TestBoundedEquivalenceSLD(t *testing.T) {
	var v Verifier
	f := func(a, b genTS) bool {
		want := SLD(a.TS, b.TS)
		for max := -1; max <= want+2; max++ {
			got, ok := v.SLDBounded(a.TS, b.TS, max)
			if max < 0 || want <= max {
				if !ok || got != want {
					return false
				}
			} else if ok || got <= max {
				return false
			}
		}
		// The convenience form must agree with the engine.
		if got, ok := SLDBounded(a.TS, b.TS, want); !ok || got != want {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestBoundedEquivalenceVerify: Verifier.Verify reaches the same
// accept/reject decision as the exact pipeline (SLD + WithinNSLD) at
// random thresholds, reporting the exact SLD for accepted pairs, for both
// the Hungarian and greedy aligners.
func TestBoundedEquivalenceVerify(t *testing.T) {
	thresholds := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8}
	var exactV, greedyV Verifier
	greedyV.Greedy = true
	f := func(a, b genTS) bool {
		la, lb := a.TS.AggregateLen(), b.TS.AggregateLen()
		for _, th := range thresholds {
			wantSLD := SLD(a.TS, b.TS)
			wantIn := WithinNSLD(wantSLD, la, lb, th)
			sld, within, _ := exactV.Verify(a.TS, b.TS, th)
			if within != wantIn || (within && sld != wantSLD) {
				return false
			}
			wantG := SLDGreedy(a.TS, b.TS)
			wantGIn := WithinNSLD(wantG, la, lb, th)
			gsld, gwithin, _ := greedyV.Verify(a.TS, b.TS, th)
			if gwithin != wantGIn || (gwithin && gsld != wantG) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestBoundedEquivalenceCachedVerify: VerifyIDs with a token-LD cache
// produces the same decisions and distances as the uncached engine, with
// the cache actually hit on repeats.
func TestBoundedEquivalenceCachedVerify(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cached := Verifier{Cache: NewTokenLDCache(0)}
	var plain Verifier
	// A small token universe so repeated pairs hit the memo.
	universe := []string{"ab", "abc", "abd", "bc", "bcd", "cd", "dab", "abcd"}
	ids := make(map[string]token.TokenID)
	for i, s := range universe {
		ids[s] = token.TokenID(i)
	}
	mk := func() (token.TokenizedString, []token.TokenID) {
		n := 1 + r.Intn(4)
		toks := make([]string, n)
		for i := range toks {
			toks[i] = universe[r.Intn(len(universe))]
		}
		ts := token.New(toks)
		tids := make([]token.TokenID, ts.Count())
		for i, tok := range ts.Tokens {
			tids[i] = ids[tok]
		}
		return ts, tids
	}
	for iter := 0; iter < 500; iter++ {
		x, xIDs := mk()
		y, yIDs := mk()
		th := []float64{0.1, 0.3, 0.6}[r.Intn(3)]
		sld, within, _ := cached.VerifyIDs(x, y, xIDs, yIDs, th)
		wsld, wwithin, _ := plain.Verify(x, y, th)
		if within != wwithin || (within && sld != wsld) {
			t.Fatalf("iter=%d t=%.2f: cached (%d,%v) != plain (%d,%v) for %q vs %q",
				iter, th, sld, within, wsld, wwithin, x, y)
		}
	}
	if cached.Cache.Hits == 0 {
		t.Fatal("token-LD cache was never hit across 500 repeated-universe pairs")
	}
}

// TestMaxSLDWithinBoundary: the budget is exactly the WithinNSLD
// boundary — sld <= budget iff WithinNSLD(sld) — for a sweep of lengths
// and thresholds including exact rational boundary cases.
func TestMaxSLDWithinBoundary(t *testing.T) {
	for _, th := range []float64{0, 0.1, 0.15, 0.2, 1.0 / 3, 0.5, 0.9, 0.99} {
		for la := 0; la <= 40; la += 3 {
			for lb := 0; lb <= 40; lb += 4 {
				budget := MaxSLDWithin(th, la, lb)
				if budget < 0 {
					t.Fatalf("t=%.3f la=%d lb=%d: negative budget %d", th, la, lb, budget)
				}
				if !WithinNSLD(budget, la, lb, th) {
					t.Fatalf("t=%.3f la=%d lb=%d: budget %d itself not within", th, la, lb, budget)
				}
				if WithinNSLD(budget+1, la, lb, th) {
					t.Fatalf("t=%.3f la=%d lb=%d: budget %d not maximal", th, la, lb, budget)
				}
			}
		}
	}
}

// TestTokenLDCacheUpgrade: a bounded miss memoizes "LD > b"; a later
// probe with a larger budget recomputes and upgrades to the exact value,
// while a smaller budget is answered from the bound without recomputing.
func TestTokenLDCacheUpgrade(t *testing.T) {
	c := NewTokenLDCache(4)
	a, b := []rune("abcdef"), []rune("uvwxyz") // LD 6
	var row []uint16
	if d := c.ld(1, 2, a, b, 2, &row); d != 3 {
		t.Fatalf("budget 2: got %d, want capped 3", d)
	}
	misses := c.Misses
	if d := c.ld(2, 1, b, a, 1, &row); d != 2 || c.Misses != misses {
		t.Fatalf("budget 1 after bound 2: got %d (misses %d->%d), want capped 2 from memo",
			d, misses, c.Misses)
	}
	if d := c.ld(1, 2, a, b, 10, &row); d != 6 {
		t.Fatalf("budget 10: got %d, want exact 6", d)
	}
	hits := c.Hits
	if d := c.ld(1, 2, a, b, 10, &row); d != 6 || c.Hits != hits+1 {
		t.Fatalf("repeat exact: got %d (hits %d->%d), want 6 from memo", d, hits, c.Hits)
	}
	if d := c.ld(1, 2, a, b, 3, &row); d != 4 {
		t.Fatalf("exact 6 at budget 3: got %d, want capped 4", d)
	}
}
