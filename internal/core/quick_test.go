package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/token"
)

// genTS wraps TokenizedString with a quick.Generator so testing/quick can
// produce random token multisets directly.
type genTS struct {
	TS token.TokenizedString
}

// Generate implements quick.Generator: up to 4 tokens of 1-5 runes over a
// small alphabet (collision-heavy on purpose).
func (genTS) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(5)
	toks := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + r.Intn(5)
		b := make([]rune, l)
		for j := range b {
			b[j] = rune('a' + r.Intn(4))
		}
		toks = append(toks, string(b))
	}
	return reflect.ValueOf(genTS{token.New(toks)})
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(99))}
}

func TestQuickNSLDSymmetryAndRange(t *testing.T) {
	f := func(a, b genTS) bool {
		d1 := NSLD(a.TS, b.TS)
		d2 := NSLD(b.TS, a.TS)
		return d1 == d2 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickNSLDTriangle(t *testing.T) {
	f := func(a, b, c genTS) bool {
		return NSLD(a.TS, b.TS)+NSLD(b.TS, c.TS) >= NSLD(a.TS, c.TS)-1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSLDTriangleAndIdentity(t *testing.T) {
	f := func(a, b, c genTS) bool {
		if SLD(a.TS, a.TS) != 0 {
			return false
		}
		return SLD(a.TS, b.TS)+SLD(b.TS, c.TS) >= SLD(a.TS, c.TS)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickGreedyDominatesExact(t *testing.T) {
	f := func(a, b genTS) bool {
		return SLDGreedy(a.TS, b.TS) >= SLD(a.TS, b.TS)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramBoundSafe(t *testing.T) {
	f := func(a, b genTS) bool {
		lb := HistogramLowerBound(a.TS.LengthHistogram(), b.TS.LengthHistogram())
		return lb <= SLD(a.TS, b.TS)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickSLDLengthDeltaLowerBound(t *testing.T) {
	// Each character edit changes the aggregate length by at most one, so
	// SLD >= |L(x) - L(y)| (the sound half of Lemma 6).
	f := func(a, b genTS) bool {
		dl := a.TS.AggregateLen() - b.TS.AggregateLen()
		if dl < 0 {
			dl = -dl
		}
		return SLD(a.TS, b.TS) >= dl
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestQuickNSLDZeroIffEqualMultiset(t *testing.T) {
	f := func(a, b genTS) bool {
		return (NSLD(a.TS, b.TS) == 0) == a.TS.Equal(b.TS)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
