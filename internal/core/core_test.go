package core

import (
	"math/rand"
	"testing"

	"repro/internal/strdist"
	"repro/internal/token"
)

func ts(tokens ...string) token.TokenizedString { return token.New(tokens) }

func TestSLDPaperExamples(t *testing.T) {
	// Sec. II-D: x = {chan, kalan}, y = {chank, alan}, z = {alan}.
	x := ts("chan", "kalan")
	y := ts("chank", "alan")
	z := ts("alan")
	if got := SLD(x, y); got != 2 {
		t.Errorf("SLD(x,y) = %d, want 2", got)
	}
	if got := SLD(x, z); got != 5 {
		t.Errorf("SLD(x,z) = %d, want 5", got)
	}
	// NSLD(x,y) = 2*2/(9+9+2) = 0.2.
	if got := NSLD(x, y); got != 0.2 {
		t.Errorf("NSLD(x,y) = %v, want 0.2", got)
	}
}

func TestSLDEmptyCases(t *testing.T) {
	empty := ts()
	ab := ts("ab", "c")
	if got := SLD(empty, ab); got != 3 {
		t.Errorf("SLD(ε, {ab,c}) = %d, want 3 (grow both tokens)", got)
	}
	if got := SLD(ab, empty); got != 3 {
		t.Errorf("SLD({ab,c}, ε) = %d, want 3", got)
	}
	if got := SLD(empty, empty); got != 0 {
		t.Errorf("SLD(ε, ε) = %d, want 0", got)
	}
	// Lemma 5 extreme: NSLD(ε, y) = 1 for non-empty y.
	if got := NSLD(empty, ab); got != 1 {
		t.Errorf("NSLD(ε, y) = %v, want 1", got)
	}
}

func TestSLDTokenCountMismatch(t *testing.T) {
	// Dropping a token costs its full length via the ε padding.
	a := ts("alan")
	b := ts("alan", "chan")
	if got := SLD(a, b); got != 4 {
		t.Errorf("SLD = %d, want 4", got)
	}
	// Shuffles are free: multisets have no order.
	p := ts("john", "smith")
	q := ts("smith", "john")
	if got := SLD(p, q); got != 0 {
		t.Errorf("SLD of shuffled tokens = %d, want 0", got)
	}
}

func TestSLDPrefersBestAlignment(t *testing.T) {
	// The optimal matching is not the lexicographic pairing: sorted order
	// is {aaa, zzz} vs {aab, zzy}; identity alignment costs 1+1=2, the
	// crossed alignment would cost 3+3=6.
	x := ts("aaa", "zzz")
	y := ts("zzy", "aab")
	if got := SLD(x, y); got != 2 {
		t.Errorf("SLD = %d, want 2", got)
	}
}

// perturbTS applies 0-2 small edits (char substitution/insertion/deletion,
// token drop/duplicate) to a tokenized string, mimicking the adversarial
// edits of the motivating application.
func perturbTS(rng *rand.Rand, x token.TokenizedString) token.TokenizedString {
	toks := append([]string(nil), x.Tokens...)
	for e := rng.Intn(3); e > 0 && len(toks) > 0; e-- {
		i := rng.Intn(len(toks))
		r := []rune(toks[i])
		switch rng.Intn(5) {
		case 0: // substitute
			if len(r) > 0 {
				r[rng.Intn(len(r))] = rune('a' + rng.Intn(4))
			}
		case 1: // insert
			p := rng.Intn(len(r) + 1)
			r = append(r[:p], append([]rune{rune('a' + rng.Intn(4))}, r[p:]...)...)
		case 2: // delete char
			if len(r) > 1 {
				p := rng.Intn(len(r))
				r = append(r[:p], r[p+1:]...)
			}
		case 3: // drop token
			toks = append(toks[:i], toks[i+1:]...)
			continue
		case 4: // duplicate token
			toks = append(toks, string(r))
		}
		toks[i] = string(r)
	}
	return token.New(toks)
}

// randomTS builds a random tokenized string with up to maxTok tokens of up
// to maxLen chars over a tiny alphabet, so collisions are common.
func randomTS(rng *rand.Rand, maxTok, maxLen int) token.TokenizedString {
	n := rng.Intn(maxTok + 1)
	toks := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		b := make([]rune, l)
		for j := range b {
			b[j] = rune('a' + rng.Intn(4))
		}
		toks = append(toks, string(b))
	}
	return token.New(toks)
}

func TestNSLDMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 1500; i++ {
		x := randomTS(rng, 4, 5)
		y := randomTS(rng, 4, 5)
		z := randomTS(rng, 4, 5)
		// Identity.
		if d := NSLD(x, x); d != 0 {
			t.Fatalf("NSLD(x,x) = %v for %v", d, x)
		}
		// Symmetry.
		if NSLD(x, y) != NSLD(y, x) {
			t.Fatalf("NSLD asymmetric for %v, %v", x, y)
		}
		// Range (Lemma 5).
		if d := NSLD(x, y); d < 0 || d > 1 {
			t.Fatalf("NSLD out of range: %v", d)
		}
		// Triangle inequality (Theorem 2).
		if NSLD(x, y)+NSLD(y, z) < NSLD(x, z)-1e-12 {
			t.Fatalf("NSLD triangle violated: d(x,y)=%v d(y,z)=%v d(x,z)=%v for %v | %v | %v",
				NSLD(x, y), NSLD(y, z), NSLD(x, z), x, y, z)
		}
		// SLD triangle inequality (Lemma 4).
		if SLD(x, y)+SLD(y, z) < SLD(x, z) {
			t.Fatalf("SLD triangle violated for %v | %v | %v", x, y, z)
		}
	}
}

func TestNSLDIdentityOfIndiscernibles(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 800; i++ {
		x := randomTS(rng, 3, 4)
		y := randomTS(rng, 3, 4)
		if NSLD(x, y) == 0 && !x.Equal(y) {
			t.Fatalf("NSLD = 0 for distinct multisets %v, %v", x, y)
		}
	}
}

// TestLemma6LowerBound checks the half of Lemma 6 the TSJ length filter
// relies on: 1 - L(x)/L(y) <= NSLD(x, y) for L(x) <= L(y).
//
// Note: the paper's stated *upper* bound NSLD <= 2/(L(x)/L(y)+2) —
// equivalently SLD <= L(y) — does not hold for token multisets with
// mismatched shapes. Counterexample: x = {aaa, bbb}, y = {c, ddddd} has
// L(x) = L(y) = 6 but SLD = 8 (every bijection pays max(|xi|, |yj|) on both
// edges), so NSLD = 0.8 > 2/3. Tokens cannot merge or split under
// Definition 3, so the "at most L(y) edits" intuition from plain strings
// (Lemma 3) fails. No algorithm in the paper (or here) uses the upper bound
// for pruning, so correctness is unaffected; see DESIGN.md "Errata".
func TestLemma6LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		x := randomTS(rng, 4, 5)
		y := randomTS(rng, 4, 5)
		lx, ly := x.AggregateLen(), y.AggregateLen()
		if lx > ly {
			x, y = y, x
			lx, ly = ly, lx
		}
		if ly == 0 {
			continue
		}
		d := NSLD(x, y)
		lo := 1 - float64(lx)/float64(ly)
		if d < lo-1e-12 {
			t.Fatalf("Lemma 6 lower bound violated: d=%v < %v for %v | %v", d, lo, x, y)
		}
	}
}

// TestLemma6UpperBoundCounterexample pins down the erratum described above
// so it stays documented if anyone "fixes" the filter to use it.
func TestLemma6UpperBoundCounterexample(t *testing.T) {
	x := ts("aaa", "bbb")
	y := ts("c", "ddddd")
	if lx, ly := x.AggregateLen(), y.AggregateLen(); lx != 6 || ly != 6 {
		t.Fatalf("setup: lengths %d, %d", lx, ly)
	}
	if got := SLD(x, y); got != 8 {
		t.Fatalf("SLD = %d, want 8", got)
	}
	d := NSLD(x, y)
	hi := 2.0 / (1.0 + 2.0) // paper's claimed upper bound for L(x)=L(y)
	if d <= hi {
		t.Fatalf("counterexample no longer violates the claimed bound: d=%v <= %v", d, hi)
	}
}

func TestGreedyNeverUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 1500; i++ {
		x := randomTS(rng, 5, 5)
		y := randomTS(rng, 5, 5)
		exact, greedy := SLD(x, y), SLDGreedy(x, y)
		if greedy < exact {
			t.Fatalf("greedy %d < exact %d for %v | %v", greedy, exact, x, y)
		}
		if NSLDGreedy(x, y) < NSLD(x, y)-1e-12 {
			t.Fatalf("greedy NSLD underestimates for %v | %v", x, y)
		}
	}
}

// TestTheorem3 verifies the threshold carry-over that powers TSJ: whenever
// NSLD(x, y) <= T, some token pair has NLD <= T.
func TestTheorem3(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	thresholds := []float64{0.025, 0.1, 0.225, 0.4}
	checked := 0
	for i := 0; i < 4000; i++ {
		x := randomTS(rng, 4, 5)
		if x.Count() == 0 {
			continue
		}
		// Derive y from x by a small random perturbation so that pairs
		// within the thresholds actually occur.
		y := perturbTS(rng, x)
		if y.Count() == 0 {
			continue
		}
		sld := SLD(x, y)
		for _, T := range thresholds {
			if !WithinNSLD(sld, x.AggregateLen(), y.AggregateLen(), T) {
				continue
			}
			checked++
			found := false
			for i := 0; i < x.Count() && !found; i++ {
				for j := 0; j < y.Count() && !found; j++ {
					ld := strdist.LevenshteinRunes(x.TokenRunes(i), y.TokenRunes(j))
					if strdist.WithinNLD(ld, len(x.TokenRunes(i)), len(y.TokenRunes(j)), T) {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("Theorem 3 violated at T=%v for %v | %v (NSLD=%v)", T, x, y, NSLD(x, y))
			}
		}
	}
	if checked < 100 {
		t.Fatalf("too few qualifying pairs exercised: %d", checked)
	}
}

func TestWithinNSLDMatchesNSLD(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for i := 0; i < 1000; i++ {
		x := randomTS(rng, 4, 5)
		y := randomTS(rng, 4, 5)
		sld := SLD(x, y)
		for _, T := range []float64{0.05, 0.1, 0.2, 0.5} {
			got := WithinNSLD(sld, x.AggregateLen(), y.AggregateLen(), T)
			want := NSLD(x, y) <= T
			// The rearranged form must agree except possibly exactly at the
			// threshold where float rounding differs; detect real conflicts
			// by re-deriving from integers.
			if got != want {
				lhs := 2 * float64(sld)
				rhs := T * float64(x.AggregateLen()+y.AggregateLen()+sld)
				if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("WithinNSLD disagrees beyond rounding: sld=%d la=%d lb=%d T=%v",
						sld, x.AggregateLen(), y.AggregateLen(), T)
				}
			}
		}
	}
}
