package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/strdist"
	"repro/internal/token"
)

// sharedLDCacheStripes is the lock-stripe count of SharedTokenLDCache: a
// power of two comfortably above typical worker counts so writers rarely
// collide on a stripe.
const sharedLDCacheStripes = 64

// SharedTokenLDCache is the concurrent counterpart of TokenLDCache: one
// token-pair Levenshtein memo shared by every reduce worker of a batch
// join, so a hot token pair warms exactly once per join instead of once
// per pooled verifier. The map is striped by key hash with one mutex per
// stripe; distances are computed outside the lock, so a stripe is held
// only for the map probe/store.
//
// Entries use the TokenLDCache encoding: an exact distance d as d >= 0,
// the bounded fact "LD > b" as -(b+1). Concurrent writers can race to the
// same key; store keeps whichever entry carries more information (exact
// beats any bound, a larger bound beats a smaller one), so the cache's
// answers are independent of worker interleaving.
type SharedTokenLDCache struct {
	hits, misses atomic.Int64

	stripes [sharedLDCacheStripes]sharedLDStripe
	maxPer  int
}

type sharedLDStripe struct {
	mu sync.Mutex
	m  map[uint64]int32
}

// NewSharedTokenLDCache creates a shared cache capped at maxEntries
// entries across all stripes (<= 0 means DefaultTokenLDCacheEntries).
// Once a stripe fills its share, new pairs are computed but not
// remembered there.
func NewSharedTokenLDCache(maxEntries int) *SharedTokenLDCache {
	if maxEntries <= 0 {
		maxEntries = DefaultTokenLDCacheEntries
	}
	c := &SharedTokenLDCache{maxPer: (maxEntries + sharedLDCacheStripes - 1) / sharedLDCacheStripes}
	for i := range c.stripes {
		c.stripes[i].m = make(map[uint64]int32)
	}
	return c
}

// Hits and Misses snapshot the probe counters.
func (c *SharedTokenLDCache) Hits() int64   { return c.hits.Load() }
func (c *SharedTokenLDCache) Misses() int64 { return c.misses.Load() }

// Len returns the number of memoized token pairs across all stripes.
func (c *SharedTokenLDCache) Len() int {
	n := 0
	for i := range c.stripes {
		s := &c.stripes[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// stripeOf picks the stripe for a packed key (fibonacci hashing of the
// high and low halves keeps sequential TokenIDs from clustering).
func (c *SharedTokenLDCache) stripeOf(key uint64) *sharedLDStripe {
	h := key * 0x9e3779b97f4a7c15
	return &c.stripes[h>>(64-6)] // 2^6 stripes
}

// ld returns the (budget-capped when max >= 0) distance between the two
// tokens, consulting and updating the shared memo. row is the caller's
// Levenshtein scratch; the distance is computed outside any lock.
func (c *SharedTokenLDCache) ld(a, b token.TokenID, ar, br []rune, max int, row *[]uint16) int {
	if a > b {
		a, b = b, a
		ar, br = br, ar
	}
	key := uint64(uint32(a))<<32 | uint64(uint32(b))
	st := c.stripeOf(key)

	st.mu.Lock()
	e, hit := st.m[key]
	st.mu.Unlock()
	if hit {
		if e >= 0 {
			c.hits.Add(1)
			if max >= 0 && int(e) > max {
				return max + 1
			}
			return int(e)
		}
		if lb := int(-e) - 1; max >= 0 && lb >= max {
			c.hits.Add(1) // LD > lb >= max: capped without recomputing
			return max + 1
		}
		// Known only as LD > lb with lb < max: recompute at the larger
		// budget and upgrade the entry below.
	}
	c.misses.Add(1)

	var d int
	var exact bool
	if max < 0 {
		d = strdist.LevenshteinRunesScratchU16(ar, br, row)
		exact = true
	} else {
		d, exact = strdist.LevenshteinBoundedScratchU16(ar, br, max, row)
	}

	var entry int32
	if exact {
		entry = int32(d)
	} else {
		entry = int32(-(max + 1)) // LD > max
	}
	st.mu.Lock()
	cur, exists := st.m[key]
	switch {
	case !exists:
		if len(st.m) < c.maxPer {
			st.m[key] = entry
		}
	case moreInformative(entry, cur):
		st.m[key] = entry
	}
	st.mu.Unlock()
	return d
}

// moreInformative reports whether candidate entry a strictly improves on
// the stored entry b under the exact/bound encoding.
func moreInformative(a, b int32) bool {
	if b >= 0 {
		return false // exact is final
	}
	if a >= 0 {
		return true // exact replaces any bound
	}
	return a < b // deeper bound: -(b+1) decreases as b grows
}
