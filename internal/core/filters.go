package core

import (
	"sort"

	"repro/internal/token"
)

// LengthPrune implements the Sec. III-E.1 filter: by Lemma 6,
// NSLD(x, y) >= 1 - L(x)/L(y) for L(x) <= L(y), so a candidate pair whose
// aggregate lengths alone force the distance above t can be discarded
// before any token comparison. Returns true when the pair can be pruned.
func LengthPrune(aggLenA, aggLenB int, t float64) bool {
	if aggLenA > aggLenB {
		aggLenA, aggLenB = aggLenB, aggLenA
	}
	if aggLenB == 0 {
		return false // two empty strings: distance 0
	}
	// 1 - La/Lb > t  <=>  La < (1-t)*Lb. Evaluate in the multiplied form
	// to avoid division; strict inequality keeps boundary pairs.
	return float64(aggLenA) < (1-t)*float64(aggLenB)-1e-9
}

// HistogramLowerBound returns a provably-safe lower bound on SLD(x, y)
// computed from the token-length histograms alone (the Sec. III-E.2
// distance-lower-bound filter; the paper defers its construction to an
// extended version, so we document ours here).
//
// Derivation: SLD is the min-weight perfect matching of the padded token
// bigraph with weights LD(u, v) >= ||u| - |v||. Replacing every weight by
// that lower bound can only lower the matching weight, and the min-cost
// matching of the |length difference| costs over two padded length
// multisets is achieved by pairing the sorted sequences order-to-order
// (the L1 rearrangement inequality). Hence
//
//	SLD(x, y) >= Σ_i |sortedLensX[i] - sortedLensY[i]|
//
// with both histograms zero-padded to equal size.
func HistogramLowerBound(histA, histB []int) int {
	// Histograms arrive ascending (token.LengthHistogram sorts). Pad the
	// shorter with leading zeros: zeros are the smallest lengths, so the
	// zero-padded sequence remains sorted when zeros are prepended.
	la, lb := len(histA), len(histB)
	k := la
	if lb > k {
		k = lb
	}
	lb0 := k - lb // leading zeros for B
	la0 := k - la // leading zeros for A
	sum := 0
	for i := 0; i < k; i++ {
		var a, b int
		if i >= la0 {
			a = histA[i-la0]
		}
		if i >= lb0 {
			b = histB[i-lb0]
		}
		if a > b {
			sum += a - b
		} else {
			sum += b - a
		}
	}
	return sum
}

// LowerBoundPrune reports whether the pair can be pruned because the
// histogram lower bound already forces NSLD above t. Safe: it never prunes
// a pair with true NSLD <= t, because the bound never exceeds the true SLD
// and NSLD is monotone in SLD for fixed lengths.
func LowerBoundPrune(x, y token.TokenizedString, t float64) bool {
	lb := HistogramLowerBound(x.LengthHistogram(), y.LengthHistogram())
	return !WithinNSLD(lb, x.AggregateLen(), y.AggregateLen(), t)
}

// MatchedTokenBound tightens HistogramLowerBound with knowledge from the
// candidate-generation phase: matchedLDs holds exact Levenshtein distances
// for token pairs already aligned by the generator (one per aligned pair;
// the aligned tokens' lengths are removed from the histograms before the
// histogram bound is applied to the remainder). It returns a lower bound on
// SLD assuming those alignments are part of the optimal matching; TSJ uses
// it only as a heuristic scheduler hint, never to prune (the assumption may
// not hold in the optimal matching).
func MatchedTokenBound(histA, histB []int, matchedA, matchedB []int, matchedLDs []int) int {
	remA := removeLens(histA, matchedA)
	remB := removeLens(histB, matchedB)
	lb := HistogramLowerBound(remA, remB)
	for _, d := range matchedLDs {
		lb += d
	}
	return lb
}

// removeLens removes one occurrence of each length in rm from hist
// (both ascending); unmatched removals are ignored.
func removeLens(hist, rm []int) []int {
	out := make([]int, 0, len(hist))
	rmCopy := append([]int(nil), rm...)
	sort.Ints(rmCopy)
	i := 0
	for _, h := range hist {
		if i < len(rmCopy) && rmCopy[i] == h {
			i++
			continue
		}
		out = append(out, h)
	}
	return out
}
