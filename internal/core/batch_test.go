package core

import (
	"math/rand"
	"testing"

	"repro/internal/token"
)

// batchRandTS draws a collision-heavy token multiset like genTS, plus an
// occasional oversized or non-BMP token to exercise the scalar cell
// route inside the batch path.
func batchRandTS(rng *rand.Rand, spice bool) token.TokenizedString {
	n := rng.Intn(6)
	toks := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if spice && rng.Intn(12) == 0 {
			switch rng.Intn(3) {
			case 0: // beyond batchMaxTokenLen: scalar cell
				long := make([]rune, batchMaxTokenLen+1+rng.Intn(8))
				for j := range long {
					long[j] = rune('a' + rng.Intn(4))
				}
				toks = append(toks, string(long))
			case 1: // non-BMP rune: scalar cell
				toks = append(toks, "ab\U0001F600cd")
			default: // BMP but multi-byte
				toks = append(toks, "zürich✓")
			}
			continue
		}
		l := 1 + rng.Intn(7)
		b := make([]rune, l)
		for j := range b {
			b[j] = rune('a' + rng.Intn(4))
		}
		toks = append(toks, string(b))
	}
	return token.New(toks)
}

// TestSIMDEquivalenceVerifyBatch: VerifyBatch's verdict triples are
// identical to per-pair Verify across random corpora, thresholds, both
// aligners, and with the batch machinery forced off — the property the
// CI equivalence guard keeps un-skipped.
func TestSIMDEquivalenceVerifyBatch(t *testing.T) {
	t.Logf("batch kernel available: %v", BatchKernelAvailable())
	rng := rand.New(rand.NewSource(1234))
	thresholds := []float64{-0.1, 0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0, 2.5}
	var scalarV, batchV, greedyS, greedyB, offV Verifier
	greedyS.Greedy = true
	greedyB.Greedy = true
	offV.DisableBatch = true
	for iter := 0; iter < 250; iter++ {
		probe := batchRandTS(rng, true)
		nc := 1 + rng.Intn(24)
		ys := make([]*token.TokenizedString, nc)
		for c := range ys {
			ts := batchRandTS(rng, true)
			ys[c] = &ts
		}
		out := make([]BatchResult, nc)
		outG := make([]BatchResult, nc)
		outOff := make([]BatchResult, nc)
		for _, th := range thresholds {
			var ctr BatchCounters
			batchV.VerifyBatch(probe, ys, th, out, &ctr)
			greedyB.VerifyBatch(probe, ys, th, outG, nil)
			offV.VerifyBatch(probe, ys, th, outOff, nil)
			for c, y := range ys {
				sld, within, pruned := scalarV.Verify(probe, *y, th)
				want := BatchResult{sld, within, pruned}
				if out[c] != want {
					t.Fatalf("iter %d t=%.2f cand %d: batch %+v != scalar %+v (probe %v cand %v)",
						iter, th, c, out[c], want, probe.Tokens, y.Tokens)
				}
				if outOff[c] != want {
					t.Fatalf("iter %d t=%.2f cand %d: DisableBatch %+v != scalar %+v",
						iter, th, c, outOff[c], want)
				}
				gsld, gwithin, gpruned := greedyS.Verify(probe, *y, th)
				if wantG := (BatchResult{gsld, gwithin, gpruned}); outG[c] != wantG {
					t.Fatalf("iter %d t=%.2f cand %d: greedy batch %+v != greedy scalar %+v",
						iter, th, c, outG[c], wantG)
				}
			}
			if ctr.Lanes > int64(ctr.Kernels)*int64(BatchKernelWidth()) {
				t.Fatalf("counter incoherence: %d lanes over %d kernels", ctr.Lanes, ctr.Kernels)
			}
		}
	}
}

// TestSIMDEquivalenceStagedBatch drives the cross-probe staging API:
// many probes staged through one Verifier before a single flush, with
// verdicts checked against per-pair scalar Verify. This is the shape
// the stream reducer and batched AddAll run, where lanes mix cells
// from different probes; the CI equivalence guard keeps it un-skipped.
func TestSIMDEquivalenceStagedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	var sv Verifier
	for iter := 0; iter < 60; iter++ {
		var v Verifier
		th := []float64{0, 0.05, 0.1, 0.3, 0.5, 1.0}[rng.Intn(6)]
		np := 1 + rng.Intn(8)
		probes := make([]token.TokenizedString, np)
		cands := make([][]*token.TokenizedString, np)
		outs := make([][]BatchResult, np)
		for p := range probes {
			probes[p] = batchRandTS(rng, true)
			nc := 1 + rng.Intn(10)
			cands[p] = make([]*token.TokenizedString, nc)
			for c := range cands[p] {
				ts := batchRandTS(rng, true)
				cands[p][c] = &ts
			}
			outs[p] = make([]BatchResult, nc)
			v.StageBatch(probes[p], cands[p], th, outs[p])
		}
		var ctr BatchCounters
		v.FlushBatch(&ctr)
		for p := range probes {
			for c, y := range cands[p] {
				sld, within, pruned := sv.Verify(probes[p], *y, th)
				if want := (BatchResult{sld, within, pruned}); outs[p][c] != want {
					t.Fatalf("iter %d t=%.2f probe %d cand %d: staged %+v != scalar %+v (probe %v cand %v)",
						iter, th, p, c, outs[p][c], want, probes[p].Tokens, y.Tokens)
				}
			}
		}
		if ctr.Lanes > int64(ctr.Kernels)*int64(BatchKernelWidth()) {
			t.Fatalf("counter incoherence: %d lanes over %d kernels", ctr.Lanes, ctr.Kernels)
		}
	}
}

// TestBatchLaneFill pins the point of cross-probe staging: over a
// bench-shaped corpus the mean kernel lane fill must stay near Width —
// at least 14/16 of lanes occupied — because pools pack lanes from
// live cells across probes instead of sweeping per-probe remainders.
func TestBatchLaneFill(t *testing.T) {
	if !BatchKernelAvailable() {
		t.Skip("batch kernel unavailable; staging is bypassed")
	}
	rng := rand.New(rand.NewSource(99))
	var v Verifier
	outs := make([][]BatchResult, 0, 600)
	for p := 0; p < 600; p++ {
		probe := batchRandTS(rng, false)
		for probe.Count() == 0 {
			probe = batchRandTS(rng, false)
		}
		nc := 1 + rng.Intn(12)
		ys := make([]*token.TokenizedString, nc)
		for c := range ys {
			ts := batchRandTS(rng, false)
			ys[c] = &ts
		}
		out := make([]BatchResult, nc)
		outs = append(outs, out)
		v.StageBatch(probe, ys, 0.3, out)
	}
	var ctr BatchCounters
	v.FlushBatch(&ctr)
	if ctr.Kernels == 0 {
		t.Fatal("no kernel invocations over a 600-probe corpus")
	}
	fill := float64(ctr.Lanes) / (float64(ctr.Kernels) * float64(BatchKernelWidth()))
	t.Logf("lane fill: %d lanes / %d kernels = %.3f (width %d)", ctr.Lanes, ctr.Kernels, fill, BatchKernelWidth())
	if fill < 14.0/16.0 {
		t.Fatalf("lane fill %.3f below 14/16: staging is not refilling lanes", fill)
	}
}

// TestVerifyBatchDegenerateShapes covers the explicit fallbacks: empty
// candidate lists, single candidates (below batchMinCands), empty probe,
// and empty candidates.
func TestVerifyBatchDegenerateShapes(t *testing.T) {
	var v, sv Verifier
	empty := token.New(nil)
	one := token.New([]string{"alpha", "beta"})
	other := token.New([]string{"alpa", "betta"})

	v.VerifyBatch(one, nil, 0.3, nil, nil) // no candidates: no-op

	for _, tc := range []struct {
		name  string
		probe token.TokenizedString
		ys    []*token.TokenizedString
	}{
		{"single-candidate", one, []*token.TokenizedString{&other}},
		{"empty-probe", empty, []*token.TokenizedString{&one, &other}},
		{"empty-candidate", one, []*token.TokenizedString{&empty, &other, &empty}},
	} {
		out := make([]BatchResult, len(tc.ys))
		for _, th := range []float64{-1, 0, 0.4, 2.5} {
			v.VerifyBatch(tc.probe, tc.ys, th, out, nil)
			for c, y := range tc.ys {
				sld, within, pruned := sv.Verify(tc.probe, *y, th)
				if want := (BatchResult{sld, within, pruned}); out[c] != want {
					t.Fatalf("%s t=%.1f cand %d: %+v != %+v", tc.name, th, c, out[c], want)
				}
			}
		}
	}
}

// TestVerifyBatchZeroAlloc pins the steady state: a warmed Verifier
// batch-verifies without allocating.
func TestVerifyBatchZeroAlloc(t *testing.T) {
	if !BatchKernelAvailable() {
		// The scalar fallback is covered by the Verifier's own
		// zero-alloc pin; this test pins the batch machinery itself.
		t.Logf("kernel unavailable; exercising fallback path")
	}
	rng := rand.New(rand.NewSource(5))
	probe := batchRandTS(rng, false)
	for probe.Count() == 0 {
		probe = batchRandTS(rng, false)
	}
	ys := make([]*token.TokenizedString, 12)
	for c := range ys {
		ts := batchRandTS(rng, false)
		ys[c] = &ts
	}
	out := make([]BatchResult, len(ys))
	var v Verifier
	var ctr BatchCounters
	v.VerifyBatch(probe, ys, 0.3, out, &ctr) // warm scratch
	allocs := testing.AllocsPerRun(100, func() {
		v.VerifyBatch(probe, ys, 0.3, out, &ctr)
	})
	if allocs != 0 {
		t.Fatalf("VerifyBatch allocates %v/op in steady state, want 0", allocs)
	}
}
