package core

import (
	"repro/internal/strdist"
	"repro/internal/strdist/simd"
	"repro/internal/token"
)

// BatchKernelAvailable reports whether the vectorized batch kernel is
// live on this build and CPU (amd64 with AVX2, not built with
// -tags nosimd). When false, VerifyBatch transparently verifies pair by
// pair with the scalar engine.
func BatchKernelAvailable() bool { return simd.Available() }

// BatchResult is the verdict for one candidate of a batched
// verification — the same triple Verify returns.
type BatchResult struct {
	SLD    int
	Within bool
	Pruned bool
}

// BatchCounters observes the batched verification path. Callers pass
// one to VerifyBatch (nil is allowed) and fold it into their stats.
type BatchCounters struct {
	// Batched counts candidates verified through the batch machinery
	// (as opposed to the per-pair scalar fallback).
	Batched int64
	// Kernels counts vector-kernel invocations.
	Kernels int64
	// Lanes counts occupied kernel lanes summed over invocations; the
	// mean lanes-per-kernel (Lanes/Kernels, out of simd.Width) is the
	// batching efficiency.
	Lanes int64
	// ScalarCells counts token-pair cells inside the batch path that
	// fell back to the scalar DP (oversized or non-BMP tokens).
	ScalarCells int64
}

// Add folds o into b.
func (b *BatchCounters) Add(o BatchCounters) {
	b.Batched += o.Batched
	b.Kernels += o.Kernels
	b.Lanes += o.Lanes
	b.ScalarCells += o.ScalarCells
}

const (
	// batchMinCands is the smallest candidate list worth bucketing; a
	// single survivor verifies scalar.
	batchMinCands = 2
	// batchMaxTokenLen routes pathologically long tokens to the scalar
	// banded DP, which exploits the budget band the full-matrix kernel
	// forgoes; it also keeps every DP value far below uint16 saturation.
	batchMaxTokenLen = 64
	// batchMaxBudget keeps per-lane caps inside uint16 headroom
	// (caps+1 must not saturate); budgets this large only arise from
	// degenerate thresholds, which verify scalar.
	batchMaxBudget = 1<<15 - 2
	// batchTinyBudget routes candidates with budgets this small to the
	// scalar engine: its banded DP touches only ~2*budget+3 cells per row
	// and its row-minima abort fires within a couple of rows, which the
	// full-matrix kernel cannot beat no matter how full its lanes are.
	batchTinyBudget = 1
)

// batchEntry is one cost-matrix column cell source: candidate c's token
// j (of rune length lb, 0 for scalar-routed entries).
type batchEntry struct {
	c  int32
	j  int16
	lb int16
}

// batchGroup is one kernel lane group: sortedEnts[lo:hi] all share
// token length lb, their transposed runes live at blocks[blockOff:],
// and caps carries each lane's pair budget (padding lanes replicate the
// last occupied lane, keeping the kernel's all-lanes abort honest).
type batchGroup struct {
	lo, hi   int
	lb       int
	blockOff int
	maxCap   int
	caps     [simd.Width]uint16
}

// batchScratch is the reusable state of VerifyBatch; like the rest of
// the Verifier's scratch it reaches a zero-allocation steady state.
type batchScratch struct {
	budgets    []int
	done       []bool
	rowMin     []int
	rowSum     []int
	minTok     []int
	cellOff    []int
	probe      []uint16
	probeOff   []int
	kernelEnts []batchEntry
	sortedEnts []batchEntry
	scalarEnts []batchEntry
	blocks     []uint16
	cells      []uint16
	groups     []batchGroup
	krow       []uint16
	kout       [simd.Width]uint16
}

// growSlice returns a slice of length n backed by s when possible.
func growSlice[T int | bool | uint16 | batchEntry](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]T, n, c)
	copy(ns, s[:cap(s)])
	return ns
}

// narrowProbe caches the probe's tokens as uint16 runes (the kernel's
// input width), reporting false when any token is too long or carries
// runes outside the BMP — those probes verify scalar.
func (bs *batchScratch) narrowProbe(x token.TokenizedString) bool {
	bs.probe = bs.probe[:0]
	bs.probeOff = bs.probeOff[:0]
	for i := 0; i < x.Count(); i++ {
		r := x.TokenRunes(i)
		if len(r) == 0 || len(r) > batchMaxTokenLen {
			return false
		}
		bs.probeOff = append(bs.probeOff, len(bs.probe))
		for _, c := range r {
			if c < 0 || c >= 0x10000 {
				return false
			}
			bs.probe = append(bs.probe, uint16(c))
		}
	}
	bs.probeOff = append(bs.probeOff, len(bs.probe))
	return true
}

// kernelToken reports whether a candidate token can ride a kernel lane.
func kernelToken(r []rune) bool {
	if len(r) == 0 || len(r) > batchMaxTokenLen {
		return false
	}
	for _, c := range r {
		if c < 0 || c >= 0x10000 {
			return false
		}
	}
	return true
}

// VerifyBatch verifies one probe x against many candidates ys at
// threshold t, writing per-candidate verdicts into out (len(out) must
// equal len(ys)). Verdicts are identical to calling Verify per pair —
// property-tested by TestSIMDEquivalenceVerifyBatch — but the token-pair
// Levenshtein cells are computed a lane-width at a time: candidate
// tokens are bucketed by rune length, and each bucket sweeps all
// simd.Width lanes against the same probe token in one kernel
// invocation. The scalar path's pruning survives batching: every cell is
// capped at the pair budget + 1, per-row minima accumulate into the
// assignment lower bound, and a candidate is abandoned (Pruned) the
// moment the bound passes its budget, before the alignment runs.
//
// When the kernel is unavailable (BatchKernelAvailable false), the
// batch is too small, or the probe carries oversized/non-BMP tokens,
// every pair verifies through the scalar engine instead. ctr, when
// non-nil, accumulates batching counters either way.
func (v *Verifier) VerifyBatch(x token.TokenizedString, ys []*token.TokenizedString, t float64, out []BatchResult, ctr *BatchCounters) {
	if len(ys) == 0 {
		return
	}
	if t < 0 {
		for i := range out {
			out[i] = BatchResult{0, false, true}
		}
		return
	}
	if v.DisableBatch || !simd.Available() || len(ys) < batchMinCands || x.Count() == 0 {
		v.verifyBatchScalar(x, ys, t, out)
		return
	}
	if v.bs == nil {
		v.bs = &batchScratch{}
	}
	bs := v.bs
	if !bs.narrowProbe(x) {
		v.verifyBatchScalar(x, ys, t, out)
		return
	}

	n := len(ys)
	m := x.Count()
	lx := x.AggregateLen()
	if ctr != nil {
		ctr.Batched += int64(n)
	}

	// ---- Per-candidate budgets, trivial cases, cell bucketing -----------
	bs.budgets = growSlice(bs.budgets, n)
	bs.done = growSlice(bs.done, n)
	bs.rowMin = growSlice(bs.rowMin, n)
	bs.rowSum = growSlice(bs.rowSum, n)
	bs.minTok = growSlice(bs.minTok, n)
	bs.cellOff = growSlice(bs.cellOff, n)
	bs.kernelEnts = bs.kernelEnts[:0]
	bs.scalarEnts = bs.scalarEnts[:0]
	cellTotal := 0
	for c, y := range ys {
		bs.done[c] = false
		bs.rowSum[c] = 0
		b := MaxSLDWithin(t, lx, y.AggregateLen())
		bs.budgets[c] = b
		if y.Count() == 0 {
			out[c] = BatchResult{lx, lx <= b, false}
			bs.done[c] = true
			continue
		}
		if b > batchMaxBudget || b <= batchTinyBudget {
			sld, within, pruned := v.verify(x, *y, nil, nil, b)
			out[c] = BatchResult{sld, within, pruned}
			bs.done[c] = true
			continue
		}
		bs.cellOff[c] = cellTotal
		cellTotal += m * y.Count()
		minTok := int(^uint(0) >> 2)
		for j := 0; j < y.Count(); j++ {
			r := y.TokenRunes(j)
			if len(r) < minTok {
				minTok = len(r)
			}
			if kernelToken(r) {
				bs.kernelEnts = append(bs.kernelEnts, batchEntry{c: int32(c), j: int16(j), lb: int16(len(r))})
			} else {
				bs.scalarEnts = append(bs.scalarEnts, batchEntry{c: int32(c), j: int16(j)})
			}
		}
		bs.minTok[c] = minTok
	}
	bs.cells = growSlice(bs.cells, cellTotal)

	// ---- Length-sort the kernel cells and carve lane groups -------------
	// Counting sort by lb: tiny, stable, allocation-free.
	var count [batchMaxTokenLen + 1]int32
	for _, e := range bs.kernelEnts {
		count[e.lb]++
	}
	pos := int32(0)
	for lb := range count {
		c := count[lb]
		count[lb] = pos
		pos += c
	}
	bs.sortedEnts = growSlice(bs.sortedEnts, len(bs.kernelEnts))
	for _, e := range bs.kernelEnts {
		bs.sortedEnts[count[e.lb]] = e
		count[e.lb]++
	}

	bs.groups = bs.groups[:0]
	bs.blocks = bs.blocks[:0]
	for lo := 0; lo < len(bs.sortedEnts); {
		lb := int(bs.sortedEnts[lo].lb)
		hi := lo + 1
		for hi < len(bs.sortedEnts) && int(bs.sortedEnts[hi].lb) == lb && hi-lo < simd.Width {
			hi++
		}
		g := batchGroup{lo: lo, hi: hi, lb: lb, blockOff: len(bs.blocks)}
		base := g.blockOff
		bs.blocks = growSlice(bs.blocks, base+lb*simd.Width)
		for idx := lo; idx < hi; idx++ {
			e := bs.sortedEnts[idx]
			l := idx - lo
			for jj, rn := range ys[e.c].TokenRunes(int(e.j)) {
				bs.blocks[base+jj*simd.Width+l] = uint16(rn)
			}
			cp := bs.budgets[e.c]
			g.caps[l] = uint16(cp)
			if cp > g.maxCap {
				g.maxCap = cp
			}
		}
		// Pad unoccupied lanes by replicating the last occupied one so
		// the kernel's all-lanes abort only ever sees real data.
		last := hi - lo - 1
		for l := hi - lo; l < simd.Width; l++ {
			for jj := 0; jj < lb; jj++ {
				bs.blocks[base+jj*simd.Width+l] = bs.blocks[base+jj*simd.Width+last]
			}
			g.caps[l] = g.caps[last]
		}
		bs.groups = append(bs.groups, g)
		lo = hi
	}

	// ---- Row sweep: one kernel invocation per (probe token, group) ------
	// Mirrors buildCost row by row: cells capped at budget+1, per-row
	// minima accumulate the assignment lower bound, candidates die the
	// row the bound passes their budget (identical partial sums).
	const inf = int(^uint(0) >> 2)
	for i := 0; i < m; i++ {
		la := bs.probeOff[i+1] - bs.probeOff[i]
		probeTok := bs.probe[bs.probeOff[i]:bs.probeOff[i+1]]
		for c := range ys {
			if !bs.done[c] {
				bs.rowMin[c] = inf
			}
		}
		for gi := range bs.groups {
			g := &bs.groups[gi]
			allDone := true
			for idx := g.lo; idx < g.hi; idx++ {
				if !bs.done[bs.sortedEnts[idx].c] {
					allDone = false
					break
				}
			}
			if allDone {
				continue
			}
			d := la - g.lb
			if d < 0 {
				d = -d
			}
			if d > g.maxCap {
				// Every lane is length-pruned: LD >= |la-lb| > cap, so
				// each cell is its cap+1 without touching the kernel.
				for idx := g.lo; idx < g.hi; idx++ {
					e := bs.sortedEnts[idx]
					if bs.done[e.c] {
						continue
					}
					cell := bs.budgets[e.c] + 1
					bs.cells[bs.cellOff[e.c]+i*ys[e.c].Count()+int(e.j)] = uint16(cell)
					if cell < bs.rowMin[e.c] {
						bs.rowMin[e.c] = cell
					}
				}
				continue
			}
			simd.LevBatch16(probeTok, bs.blocks[g.blockOff:g.blockOff+g.lb*simd.Width], g.lb, &g.caps, &bs.krow, &bs.kout)
			if ctr != nil {
				ctr.Kernels++
				ctr.Lanes += int64(g.hi - g.lo)
			}
			for idx := g.lo; idx < g.hi; idx++ {
				e := bs.sortedEnts[idx]
				if bs.done[e.c] {
					continue
				}
				cell := int(bs.kout[idx-g.lo])
				bs.cells[bs.cellOff[e.c]+i*ys[e.c].Count()+int(e.j)] = uint16(cell)
				if cell < bs.rowMin[e.c] {
					bs.rowMin[e.c] = cell
				}
			}
		}
		if len(bs.scalarEnts) > 0 {
			xr := x.TokenRunes(i)
			for _, e := range bs.scalarEnts {
				if bs.done[e.c] {
					continue
				}
				d, _ := strdist.LevenshteinBoundedScratchU16(xr, ys[e.c].TokenRunes(int(e.j)), bs.budgets[e.c], &v.levRow)
				bs.cells[bs.cellOff[e.c]+i*ys[e.c].Count()+int(e.j)] = uint16(d)
				if d < bs.rowMin[e.c] {
					bs.rowMin[e.c] = d
				}
				if ctr != nil {
					ctr.ScalarCells++
				}
			}
		}
		for c, y := range ys {
			if bs.done[c] {
				continue
			}
			rm := bs.rowMin[c]
			if y.Count() < m {
				// ε columns: deleting probe token i costs la (capped).
				eps := la
				if cap1 := bs.budgets[c] + 1; eps > cap1 {
					eps = cap1
				}
				if eps < rm {
					rm = eps
				}
			}
			bs.rowSum[c] += rm
			if bs.rowSum[c] > bs.budgets[c] {
				out[c] = BatchResult{bs.rowSum[c], false, true}
				bs.done[c] = true
			}
		}
	}

	// ---- ε rows, matrix assembly, alignment -----------------------------
	for c, y := range ys {
		if bs.done[c] {
			continue
		}
		nc := y.Count()
		b := bs.budgets[c]
		cap1 := b + 1
		for i := m; i < nc; i++ {
			// Growing ε into candidate tokens: the row minimum is the
			// shortest token (capped), exactly buildCost's ε rows.
			rm := bs.minTok[c]
			if rm > cap1 {
				rm = cap1
			}
			bs.rowSum[c] += rm
			if bs.rowSum[c] > b {
				out[c] = BatchResult{bs.rowSum[c], false, true}
				bs.done[c] = true
				break
			}
		}
		if bs.done[c] {
			continue
		}
		k := m
		if nc > k {
			k = nc
		}
		if cap(v.cost) < k*k {
			v.cost = make([]int, k*k, 2*k*k)
		}
		v.cost = v.cost[:k*k]
		cells := bs.cells[bs.cellOff[c]:]
		for i := 0; i < k; i++ {
			row := v.cost[i*k : (i+1)*k]
			if i < m {
				for j := 0; j < nc; j++ {
					row[j] = int(cells[i*nc+j])
				}
				if nc < k {
					eps := bs.probeOff[i+1] - bs.probeOff[i]
					if eps > cap1 {
						eps = cap1
					}
					for j := nc; j < k; j++ {
						row[j] = eps
					}
				}
			} else {
				for j := 0; j < nc; j++ {
					e := len(y.TokenRunes(j))
					if e > cap1 {
						e = cap1
					}
					row[j] = e
				}
			}
		}
		var total int
		var ok, early bool
		if v.Greedy {
			total, ok, early = v.scratch.GreedyFlat(v.cost, k, b)
		} else {
			total, ok, early = v.scratch.HungarianFlat(v.cost, k, b)
		}
		out[c] = BatchResult{total, ok, !ok && early}
	}
}

// verifyBatchScalar is the per-pair fallback with verdict parity.
func (v *Verifier) verifyBatchScalar(x token.TokenizedString, ys []*token.TokenizedString, t float64, out []BatchResult) {
	for i, y := range ys {
		sld, within, pruned := v.Verify(x, *y, t)
		out[i] = BatchResult{sld, within, pruned}
	}
}
