package core

import (
	"repro/internal/strdist/simd"
	"repro/internal/token"
)

// BatchKernelAvailable reports whether the vectorized batch kernels are
// live on this build and CPU (amd64 with AVX2 or arm64 NEON, not built
// with -tags nosimd). When false, VerifyBatch transparently verifies
// pair by pair with the scalar engine.
func BatchKernelAvailable() bool { return simd.Available() }

// BatchKernelWidth is the lane count of one kernel invocation — the
// denominator of the lane-fill ratio Lanes/(Kernels*Width).
func BatchKernelWidth() int { return simd.Width }

// BatchResult is the verdict for one candidate of a batched
// verification — the same triple Verify returns.
type BatchResult struct {
	SLD    int
	Within bool
	Pruned bool
}

// BatchCounters observes the batched verification path. Callers pass
// one to VerifyBatch / FlushBatch (nil is allowed) and fold it into
// their stats.
type BatchCounters struct {
	// Batched counts candidates verified through the batch machinery
	// (as opposed to the per-pair scalar fallback).
	Batched int64
	// Kernels counts vector-kernel invocations.
	Kernels int64
	// Lanes counts occupied kernel lanes summed over invocations; the
	// mean lane fill (Lanes/Kernels, out of simd.Width) is the batching
	// efficiency the staging layer exists to maximize.
	Lanes int64
	// ScalarCells counts token-pair cells inside the batch path that
	// fell back to the scalar DP (oversized or non-BMP tokens, or
	// degenerate budgets).
	ScalarCells int64
}

// Add folds o into b.
func (b *BatchCounters) Add(o BatchCounters) {
	b.Batched += o.Batched
	b.Kernels += o.Kernels
	b.Lanes += o.Lanes
	b.ScalarCells += o.ScalarCells
}

const (
	// batchMinCands is the smallest candidate list worth batching for a
	// lone synchronous VerifyBatch; a single survivor verifies scalar.
	// Staged callers (StageBatch) have no such floor — a lone candidate
	// still shares lanes with other probes' candidates.
	batchMinCands = 2
	// batchMaxTokenLen routes pathologically long tokens to the scalar
	// engine; it also keeps every DP value far below uint16 saturation.
	batchMaxTokenLen = 64
	// batchMaxBudget keeps per-lane caps inside uint16 headroom
	// (caps+1 must not saturate); budgets this large only arise from
	// degenerate thresholds, which verify scalar.
	batchMaxBudget = 1<<15 - 2
	// batchBandedFactor routes a cell to the banded kernel when the
	// band sweep touches fewer cells than the full sweep: per row the
	// banded kernel computes at most 2*cap+1 cells against lb, so
	// banded wins exactly when 2*cap+1 < lb. With this routing the
	// tight thresholds (T <= 0.1) that previously verified scalar ride
	// the vector path profitably (BenchmarkVerifyBatch t=0.1).
	batchBandedFactor = 2
	// batchMaxStagedCells bounds the staged-cell arena; staging past it
	// forces a flush so an unbounded AddAll batch cannot hold the whole
	// corpus's DP cells in memory at once.
	batchMaxStagedCells = 1 << 20
	// batchBudgetCacheLen bounds the per-threshold budget memo: the SLD
	// budget depends only on t and la+lb, and aggregate-length sums
	// repeat heavily across a batch, so the boundary-snapping loops of
	// MaxSLDWithin run once per distinct sum. Larger sums (rare) compute
	// directly.
	batchBudgetCacheLen = 2048
)

// cellRef is one pending token-pair DP cell: row i of staged pair p's
// cost matrix, column j (candidate token j).
type cellRef struct {
	p    int32
	i, j int16
}

// lanePool accumulates cell jobs that can share one kernel invocation:
// same probe-token rune length la, same candidate-token rune length lb,
// same kernel (full or banded). Lanes freely mix cells from different
// probes and candidates — the cross-probe batching the lane-major pair
// layout of internal/strdist/simd exists for. Lane rune blocks are
// packed incrementally as cells arrive, so a flush only pads and fires
// the kernel.
type lanePool struct {
	la, lb  int
	banded  bool
	n       int // occupied lanes
	maxCap  int
	inDirty bool
	refs    [simd.Width]cellRef
	caps    [simd.Width]uint16
	ablock  []uint16 // la*Width probe runes, lane-major
	bblock  []uint16 // lb*Width candidate runes, lane-major
}

// stagedPair is one (probe, candidate) verification in flight: its DP
// cells trickle through lane pools row by row, and the row-sum pruning
// ledger advances each time a row's cells are all in. Rows are staged
// one at a time, so a pair that dies never occupies another lane — the
// lane-refill property: pools only ever hold live work.
type stagedPair struct {
	yRunes  [][]rune // candidate token runes, aligned with its Tokens
	out     *BatchResult
	tokBase int32 // first entry of this probe's token offsets in probeTokOff
	m       int32 // probe token count
	nc      int32 // candidate token count
	row     int32 // current probe-token row
	pending int32 // cells of the current row still in pools
	cellOff int32 // this pair's m*nc cell block in the cells arena
	budget  int32
	rowSum  int32
	curMin  int32 // running minimum of the current row's resolved cells
	minTok  int32 // shortest candidate token (epsilon-row cost source)
	done    bool
	inReady bool
}

// BatchStager is the batched-verification engine: it accumulates
// token-pair DP cells from staged (probe, candidate) verifications in
// per-shape lane pools, fires a kernel whenever a pool fills its
// simd.Width lanes, and advances each pair's pruning ledger row by row.
// Because pools pack lanes from whatever live cells arrive — across
// candidates and probes — dead candidates stop occupying lanes the row
// they die, and lane fill stays near Width even when most candidates
// prune early. One stager serves one Verifier and inherits its
// single-goroutine discipline.
type BatchStager struct {
	v     *Verifier
	pools []*lanePool // direct-indexed by (la, lb, banded)
	dirty []*lanePool // pools holding pending lanes
	pairs []stagedPair
	ready []int32
	live  int
	ctr   BatchCounters

	// Arenas, reused across epochs (reset when live returns to 0).
	probeRunes  []uint16
	probeTokOff []int32
	cells       []uint16

	// Per-threshold budget memo, keyed by la+lb (see batchBudgetCacheLen).
	budgetT     float64
	budgetCache []int32

	// Kernel scratch.
	krow []uint16
	kout [simd.Width]uint16
}

// growSlice returns a slice of length n backed by s when possible.
func growSlice[T int | int32 | bool | uint16](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	c := 2 * cap(s)
	if c < n {
		c = n
	}
	ns := make([]T, n, c)
	copy(ns, s[:cap(s)])
	return ns
}

func (v *Verifier) stagerInit() *BatchStager {
	if v.stager == nil {
		v.stager = &BatchStager{
			v:     v,
			pools: make([]*lanePool, batchMaxTokenLen*batchMaxTokenLen*2),
		}
	}
	return v.stager
}

// stageProbe narrows the probe's tokens into the rune arena, reporting
// false when any token is too long or carries runes outside the BMP —
// those probes verify scalar. On success it returns the index of the
// probe's first token-offset entry.
func (bs *BatchStager) stageProbe(x token.TokenizedString) (int32, bool) {
	base := len(bs.probeTokOff)
	runeBase := len(bs.probeRunes)
	for i := 0; i < x.Count(); i++ {
		r := x.TokenRunes(i)
		if len(r) == 0 || len(r) > batchMaxTokenLen {
			bs.probeTokOff = bs.probeTokOff[:base]
			bs.probeRunes = bs.probeRunes[:runeBase]
			return 0, false
		}
		bs.probeTokOff = append(bs.probeTokOff, int32(len(bs.probeRunes)))
		for _, c := range r {
			if c < 0 || c >= 0x10000 {
				bs.probeTokOff = bs.probeTokOff[:base]
				bs.probeRunes = bs.probeRunes[:runeBase]
				return 0, false
			}
			bs.probeRunes = append(bs.probeRunes, uint16(c))
		}
	}
	bs.probeTokOff = append(bs.probeTokOff, int32(len(bs.probeRunes)))
	return int32(base), true
}

// poolFor returns the lane pool for a cell shape; la and lb are both
// in [1, batchMaxTokenLen].
func (bs *BatchStager) poolFor(la, lb int, banded bool) *lanePool {
	idx := ((la-1)*batchMaxTokenLen + (lb - 1)) * 2
	if banded {
		idx++
	}
	pool := bs.pools[idx]
	if pool == nil {
		blocks := make([]uint16, (la+lb)*simd.Width)
		pool = &lanePool{
			la: la, lb: lb, banded: banded,
			ablock: blocks[: la*simd.Width : la*simd.Width],
			bblock: blocks[la*simd.Width:],
		}
		bs.pools[idx] = pool
	}
	return pool
}

// enqueueRow stages the current row of pair p: each cell is either
// resolved immediately (length-pruned: LD >= |la-lb| > budget, so the
// cell is budget+1 without any DP) or packed into a lane of its
// shape's pool. The pending count is pre-loaded with a +1 guard so
// eager pool flushes during the loop cannot see the row complete
// before every cell has been enqueued.
func (bs *BatchStager) enqueueRow(pi int32) {
	p := &bs.pairs[pi]
	i := p.row
	prOff := bs.probeTokOff[p.tokBase+i]
	la := int(bs.probeTokOff[p.tokBase+i+1] - prOff)
	pr := bs.probeRunes[prOff : int(prOff)+la]
	budget := p.budget
	cap1 := budget + 1
	cellBase := p.cellOff + i*p.nc
	nc := p.nc
	yRunes := p.yRunes
	p.pending = 1   // guard
	p.curMin = cap1 // every resolved cell is <= cap1, so this is the identity
	for j := int32(0); j < nc; j++ {
		cr := yRunes[j]
		lb := len(cr)
		d := la - lb
		if d < 0 {
			d = -d
		}
		if int32(d) > budget {
			bs.cells[cellBase+j] = uint16(cap1)
			continue
		}
		banded := batchBandedFactor*int(budget)+1 < lb
		pool := bs.poolFor(la, lb, banded)
		l := pool.n
		pool.refs[l] = cellRef{p: pi, i: int16(i), j: int16(j)}
		pool.caps[l] = uint16(budget)
		if int(budget) > pool.maxCap {
			pool.maxCap = int(budget)
		}
		ab, bb := pool.ablock, pool.bblock
		idx := l
		for _, r := range pr {
			ab[idx] = r
			idx += simd.Width
		}
		idx = l
		for _, r := range cr {
			bb[idx] = uint16(r)
			idx += simd.Width
		}
		pool.n++
		// p stays valid across the flush (bs.pairs is not appended to
		// here), and the +1 pending guard keeps the flush from
		// completing this row early.
		p.pending++
		if pool.n == simd.Width {
			bs.flushPool(pool)
		} else if !pool.inDirty {
			pool.inDirty = true
			bs.dirty = append(bs.dirty, pool)
		}
	}
	p.pending--
	if p.pending == 0 && !p.inReady {
		p.inReady = true
		bs.ready = append(bs.ready, pi)
	}
}

// flushPool fires one kernel invocation over the pool's packed lanes,
// writes each occupied lane's result into its pair's cell block, and
// queues pairs whose current row just completed. Unoccupied lanes keep
// whatever runes earlier flushes left behind; only their caps are
// zeroed, which is all the kernel contract requires — lanes are
// independent except for the all-dead abort, which a cap-0 stale lane
// can only tighten toward the occupied lanes' own death (see
// simd.LevBatch's padding note).
func (bs *BatchStager) flushPool(pool *lanePool) {
	n := pool.n
	if n == 0 {
		return
	}
	la, lb := pool.la, pool.lb
	for l := n; l < simd.Width; l++ {
		pool.caps[l] = 0
	}
	if pool.banded {
		band := pool.maxCap
		if band < 1 {
			band = 1
		}
		simd.LevBandedBatch(pool.ablock, la, pool.bblock, lb, band, &pool.caps, &bs.krow, &bs.kout)
	} else {
		simd.LevBatch(pool.ablock, la, pool.bblock, lb, &pool.caps, &bs.krow, &bs.kout)
	}
	bs.ctr.Kernels++
	bs.ctr.Lanes += int64(n)
	pool.n = 0
	pool.maxCap = 0
	for l := 0; l < n; l++ {
		ref := pool.refs[l]
		p := &bs.pairs[ref.p]
		p.pending--
		out := bs.kout[l]
		bs.cells[p.cellOff+int32(ref.i)*p.nc+int32(ref.j)] = out
		if int32(out) < p.curMin {
			p.curMin = int32(out)
		}
		if p.pending == 0 && !p.inReady {
			p.inReady = true
			bs.ready = append(bs.ready, ref.p)
		}
	}
}

// drainReady steps every pair whose current row has all cells in:
// fold the row into the pruning ledger, then either kill the pair,
// stage its next row, or run the final alignment. Stepping can fill
// pools to the brim again (enqueueRow eager-flushes), which can queue
// more ready pairs — the loop runs until quiescent.
func (bs *BatchStager) drainReady() {
	for len(bs.ready) > 0 {
		pi := bs.ready[len(bs.ready)-1]
		bs.ready = bs.ready[:len(bs.ready)-1]
		p := &bs.pairs[pi]
		p.inReady = false
		if p.done {
			continue
		}
		bs.finishRow(pi)
	}
}

// finishRow folds pair pi's just-completed row into the row-sum
// pruning ledger — exactly the scalar engine's buildCost accounting:
// the row minimum (including the epsilon column when the candidate has
// fewer tokens than the probe) is a lower bound on the row's
// assignment cost, and the pair dies the moment the partial sum
// exceeds its budget. The DP-cell part of the minimum was maintained
// incrementally as cells resolved (curMin), so the fold is O(1).
func (bs *BatchStager) finishRow(pi int32) {
	p := &bs.pairs[pi]
	i := p.row
	cap1 := p.budget + 1
	rowMin := p.curMin
	if p.nc < p.m {
		// ε columns: deleting probe token i costs la (capped).
		eps := bs.probeTokOff[p.tokBase+i+1] - bs.probeTokOff[p.tokBase+i]
		if eps > cap1 {
			eps = cap1
		}
		if eps < rowMin {
			rowMin = eps
		}
	}
	p.rowSum += rowMin
	if p.rowSum > p.budget {
		*p.out = BatchResult{int(p.rowSum), false, true}
		bs.retire(p)
		return
	}
	if p.row+1 < p.m {
		p.row++
		bs.enqueueRow(pi)
		return
	}
	bs.complete(pi)
}

// complete runs pair pi's endgame once every DP cell is in: ε rows for
// surplus candidate tokens, then the k×k cost-matrix assembly and the
// assignment, identical to the scalar engine's tail.
func (bs *BatchStager) complete(pi int32) {
	p := &bs.pairs[pi]
	v := bs.v
	yRunes := p.yRunes
	m, nc := int(p.m), int(p.nc)
	b := int(p.budget)
	cap1 := b + 1
	for i := m; i < nc; i++ {
		// Growing ε into candidate tokens: the row minimum is the
		// shortest token (capped), exactly buildCost's ε rows.
		rm := int(p.minTok)
		if rm > cap1 {
			rm = cap1
		}
		p.rowSum += int32(rm)
		if int(p.rowSum) > b {
			*p.out = BatchResult{int(p.rowSum), false, true}
			bs.retire(p)
			return
		}
	}
	k := m
	if nc > k {
		k = nc
	}
	if cap(v.cost) < k*k {
		v.cost = make([]int, k*k, 2*k*k)
	}
	v.cost = v.cost[:k*k]
	cells := bs.cells[p.cellOff:]
	for i := 0; i < k; i++ {
		row := v.cost[i*k : (i+1)*k]
		if i < m {
			for j := 0; j < nc; j++ {
				row[j] = int(cells[i*nc+j])
			}
			if nc < k {
				base := p.tokBase + int32(i)
				eps := int(bs.probeTokOff[base+1] - bs.probeTokOff[base])
				if eps > cap1 {
					eps = cap1
				}
				for j := nc; j < k; j++ {
					row[j] = eps
				}
			}
		} else {
			for j := 0; j < nc; j++ {
				e := len(yRunes[j])
				if e > cap1 {
					e = cap1
				}
				row[j] = e
			}
		}
	}
	var total int
	var ok, early bool
	if v.Greedy {
		total, ok, early = v.scratch.GreedyFlat(v.cost, k, b)
	} else {
		total, ok, early = v.scratch.HungarianFlat(v.cost, k, b)
	}
	*p.out = BatchResult{total, ok, !ok && early}
	bs.retire(p)
}

// retire marks a pair finished and resets the arenas once no staged
// work remains.
func (bs *BatchStager) retire(p *stagedPair) {
	p.done = true
	bs.live--
	if bs.live == 0 && len(bs.ready) == 0 {
		bs.pairs = bs.pairs[:0]
		bs.probeRunes = bs.probeRunes[:0]
		bs.probeTokOff = bs.probeTokOff[:0]
		bs.cells = bs.cells[:0]
	}
}

// budgetFor is MaxSLDWithin(t, la, lb) through a per-threshold memo:
// the budget depends only on t and la+lb, and length sums repeat
// heavily across a batch, so the threshold-boundary snapping runs once
// per distinct sum.
func (bs *BatchStager) budgetFor(t float64, sum int) int {
	if sum >= batchBudgetCacheLen {
		return MaxSLDWithin(t, sum, 0)
	}
	if bs.budgetT != t || len(bs.budgetCache) == 0 {
		bs.budgetCache = growSlice(bs.budgetCache, batchBudgetCacheLen)
		for i := range bs.budgetCache {
			bs.budgetCache[i] = -1
		}
		bs.budgetT = t
	}
	if b := bs.budgetCache[sum]; b >= 0 {
		return int(b)
	}
	b := MaxSLDWithin(t, sum, 0)
	bs.budgetCache[sum] = int32(b)
	return b
}

// stage registers probe x's candidates with the stager. Trivial and
// kernel-ineligible candidates resolve immediately through the scalar
// engine; the rest start their first row. The caller's out backing
// array must stay addressable until the next flush.
func (bs *BatchStager) stage(x token.TokenizedString, tokBase int32, ys []*token.TokenizedString, t float64, out []BatchResult) {
	v := bs.v
	m := x.Count()
	lx := x.AggregateLen()
	bs.ctr.Batched += int64(len(ys))
	for c, y := range ys {
		b := bs.budgetFor(t, lx+y.AggregateLen())
		yRunes := y.RuneSlices()
		nc := len(yRunes)
		if nc == 0 {
			out[c] = BatchResult{lx, lx <= b, false}
			continue
		}
		// Budget-0 pairs reduce to token equality scans; the scalar
		// engine's capped DP resolves those faster than lane staging.
		// Kernel eligibility reads the construction-time caches: the
		// BMP flag plus the ends of the sorted length histogram.
		scalar := b == 0 || b > batchMaxBudget || !y.BMPOnly()
		var minTok int32
		if !scalar {
			hist := y.LengthHistogram()
			if hist[nc-1] > batchMaxTokenLen {
				scalar = true
			} else {
				minTok = int32(hist[0])
			}
		}
		if scalar {
			sld, within, pruned := v.verify(x, *y, nil, nil, b)
			out[c] = BatchResult{sld, within, pruned}
			bs.ctr.ScalarCells += int64(m * nc)
			continue
		}
		need := len(bs.cells) + m*nc
		bs.cells = growSlice(bs.cells, need)
		pi := int32(len(bs.pairs))
		if cap(bs.pairs) > len(bs.pairs) {
			bs.pairs = bs.pairs[:pi+1]
		} else {
			bs.pairs = append(bs.pairs, stagedPair{})
		}
		p := &bs.pairs[pi]
		p.yRunes = yRunes
		p.out = &out[c]
		p.tokBase = tokBase
		p.m = int32(m)
		p.nc = int32(nc)
		p.row = 0
		p.pending = 0
		p.cellOff = int32(need - m*nc)
		p.budget = int32(b)
		p.rowSum = 0
		p.curMin = 0
		p.minTok = minTok
		p.done = false
		p.inReady = false
		bs.live++
		bs.enqueueRow(pi)
	}
	bs.drainReady()
}

// flush forces every staged pair to a verdict: fire pending pools in
// the order they dirtied (oldest pools have had the longest to fill),
// stepping completed rows after each shot — which refills pools with
// live follow-on rows and re-appends them to the dirty queue, so the
// sweep keeps firing until no staged work remains. Progress is
// guaranteed — every live pair either sits in the ready queue or holds
// at least one cell in some dirty pool.
func (bs *BatchStager) flush() {
	bs.drainReady()
	for i := 0; i < len(bs.dirty); i++ {
		pool := bs.dirty[i]
		// Clear the mark before firing: stepping rows below may push new
		// cells into this same pool, and those must re-queue it.
		pool.inDirty = false
		if pool.n == 0 {
			continue
		}
		bs.flushPool(pool)
		bs.drainReady()
	}
	bs.dirty = bs.dirty[:0]
}

// StageBatch stages probe x's candidates for batched verification
// without forcing a verdict: surviving token-pair cells pool in the
// stager's lanes alongside previously staged probes, and verdicts are
// written into out — some immediately, the rest by the time FlushBatch
// returns. The out backing array (and ys's tokenized strings) must
// stay addressable until then. Verdicts are identical to Verify pair
// by pair. When the kernel is unavailable or the probe is
// kernel-ineligible, every pair resolves scalar immediately.
func (v *Verifier) StageBatch(x token.TokenizedString, ys []*token.TokenizedString, t float64, out []BatchResult) {
	if len(ys) == 0 {
		return
	}
	if t < 0 {
		for i := range out {
			out[i] = BatchResult{0, false, true}
		}
		return
	}
	if v.DisableBatch || !simd.Available() || x.Count() == 0 {
		v.verifyBatchScalar(x, ys, t, out)
		return
	}
	bs := v.stagerInit()
	tokBase, ok := bs.stageProbe(x)
	if !ok {
		v.verifyBatchScalar(x, ys, t, out)
		return
	}
	bs.stage(x, tokBase, ys, t, out)
	if len(bs.cells) > batchMaxStagedCells {
		bs.flush()
	}
}

// FlushBatch drives every verdict staged by StageBatch to completion
// and folds the stager's counters into ctr (when non-nil).
func (v *Verifier) FlushBatch(ctr *BatchCounters) {
	if v.stager == nil {
		return
	}
	v.stager.flush()
	if ctr != nil {
		ctr.Add(v.stager.ctr)
	}
	v.stager.ctr = BatchCounters{}
}

// VerifyBatch verifies one probe x against many candidates ys at
// threshold t, writing per-candidate verdicts into out (len(out) must
// equal len(ys)). Verdicts are identical to calling Verify per pair —
// property-tested by TestSIMDEquivalenceVerifyBatch — but the
// token-pair Levenshtein cells are computed a lane-width at a time
// through the staging engine: cells pool by (probe-token length,
// candidate-token length, kernel) shape, cross-candidate and
// cross-probe, and each pair's rows stage lazily so candidates that
// die under the row-sum pruning bound stop occupying lanes. Cells
// whose budget is small against the candidate token (2*budget+1 < lb)
// ride the banded kernel, which sweeps only the diagonal band.
//
// When the kernel is unavailable (BatchKernelAvailable false), the
// batch is too small, or the probe carries oversized/non-BMP tokens,
// every pair verifies through the scalar engine instead. ctr, when
// non-nil, accumulates batching counters either way.
//
// VerifyBatch flushes the stager: any verdicts staged earlier through
// StageBatch are completed as a side effect.
func (v *Verifier) VerifyBatch(x token.TokenizedString, ys []*token.TokenizedString, t float64, out []BatchResult, ctr *BatchCounters) {
	if len(ys) == 0 {
		return
	}
	if t >= 0 && (v.DisableBatch || !simd.Available() || len(ys) < batchMinCands || x.Count() == 0) {
		v.verifyBatchScalar(x, ys, t, out)
		return
	}
	v.StageBatch(x, ys, t, out)
	v.FlushBatch(ctr)
}

// verifyBatchScalar is the per-pair fallback with verdict parity.
func (v *Verifier) verifyBatchScalar(x token.TokenizedString, ys []*token.TokenizedString, t float64, out []BatchResult) {
	for i, y := range ys {
		sld, within, pruned := v.Verify(x, *y, t)
		out[i] = BatchResult{sld, within, pruned}
	}
}
