package core

import (
	"sync"

	"repro/internal/assignment"
	"repro/internal/strdist"
	"repro/internal/token"
)

// MaxSLDWithin returns the SLD budget implied by the NSLD threshold: the
// largest sld a pair with aggregate lengths la, lb can have while still
// satisfying NSLD <= t. Rearranging WithinNSLD (2*sld <= t*(la+lb+sld))
// gives sld <= t*(la+lb)/(2-t); the float seed is then snapped to the
// exact WithinNSLD boundary so bounded and exact verification agree on
// every pair, including ones that land on the threshold.
func MaxSLDWithin(t float64, la, lb int) int {
	if t < 0 {
		return -1
	}
	if t >= 2 {
		// Degenerate: WithinNSLD holds for every sld; SLD never exceeds
		// la+lb (delete every token of one side, grow every token of the
		// other).
		return la + lb
	}
	b := int(t * float64(la+lb) / (2 - t))
	if b < 0 {
		b = 0
	}
	for WithinNSLD(b+1, la, lb, t) {
		b++
	}
	for b > 0 && !WithinNSLD(b, la, lb, t) {
		b--
	}
	return b
}

// Verifier is a reusable, threshold-aware verification engine for the
// Sec. III-F decision NSLD <= T. Instead of computing the exact, unbounded
// SLD for every surviving candidate, it derives an SLD budget from the
// threshold (MaxSLDWithin) and rejects a pair the moment any lower bound
// exceeds it: per-cell token distances run the banded Levenshtein capped
// at budget+1, matrix construction aborts when the sum of per-row minima
// (a valid assignment lower bound) exceeds the budget, and the alignment
// itself — Hungarian or greedy — terminates as soon as its growing
// partial-matching cost proves the total will.
//
// All scratch (the flattened cost matrix, Levenshtein DP row, Hungarian
// potentials and paths, greedy edge list) is owned by the Verifier and
// reused across calls, so a long-lived per-worker Verifier performs zero
// steady-state allocations. A Verifier is NOT safe for concurrent use;
// give each worker its own (the batch and stream layers keep theirs in
// sync.Pools; the zero value is ready to use).
//
// Exactness: for every pair, the bounded verdict equals the exact one
// (accept iff SLD <= budget, or greedy-SLD <= budget under Greedy), and
// an accepted pair's reported distance is the exact (greedy) SLD. The cap
// arguments: a capped cell costs budget+1, so any assignment using one
// already exceeds the budget; an accepted matching therefore uses only
// uncapped — exact — cells.
type Verifier struct {
	// Greedy switches the alignment to the greedy-token-aligning
	// approximation (Sec. III-G.5) instead of the exact Hungarian.
	Greedy bool
	// Cache optionally memoizes token-pair Levenshtein distances across
	// pairs; see TokenLDCache. Only consulted when the caller supplies
	// corpus token ids (VerifyIDs).
	Cache *TokenLDCache
	// Shared optionally points many Verifiers at one concurrent
	// token-LD memo (SharedTokenLDCache) so hot token pairs warm once
	// per join instead of once per worker. Cache wins when both are set.
	// Like Cache, it is only consulted under VerifyIDs.
	Shared *SharedTokenLDCache
	// DisableBatch forces VerifyBatch onto the per-pair scalar path even
	// when the vector kernel is available; the verdicts are identical
	// either way (see VerifyBatch).
	DisableBatch bool

	cost    []int    // flattened k x k cost matrix
	levRow  []uint16 // Levenshtein DP row (token lengths fit uint16)
	scratch assignment.Scratch
	stager  *BatchStager // batched-verification engine, lazily allocated
}

// Verify decides NSLD(x, y) <= t with the threshold-derived budget.
// Returns the setwise distance (exact — or the greedy upper bound under
// Greedy — whenever within is true), whether the pair is within the
// threshold, and whether it was rejected early (before the alignment
// completed) by the budget.
func (v *Verifier) Verify(x, y token.TokenizedString, t float64) (sld int, within, pruned bool) {
	if t < 0 {
		// No sld satisfies WithinNSLD; don't let MaxSLDWithin's -1 read
		// as "unbounded" in verify.
		return 0, false, true
	}
	return v.verify(x, y, nil, nil, MaxSLDWithin(t, x.AggregateLen(), y.AggregateLen()))
}

// VerifyIDs is Verify with corpus-stable token ids aligned to the token
// multisets (xIDs[i] identifies x's i-th token), enabling the token-LD
// cache: hot postings re-verify the same token pairs many times in a
// batch join, and the memo turns the repeat cells into a map probe.
func (v *Verifier) VerifyIDs(x, y token.TokenizedString, xIDs, yIDs []token.TokenID, t float64) (sld int, within, pruned bool) {
	if t < 0 {
		return 0, false, true
	}
	return v.verify(x, y, xIDs, yIDs, MaxSLDWithin(t, x.AggregateLen(), y.AggregateLen()))
}

// SLDBounded returns SLD(x, y) and true if it is at most max; otherwise
// it returns a value exceeding max and false. max < 0 computes the exact
// SLD unbounded (always true).
func (v *Verifier) SLDBounded(x, y token.TokenizedString, max int) (int, bool) {
	sld, ok, _ := v.verify(x, y, nil, nil, max)
	return sld, ok
}

// verify runs the budgeted pipeline: trivial sides, matrix construction
// with the row-minima abort, then the budget-aware alignment. max < 0
// means unbounded.
func (v *Verifier) verify(x, y token.TokenizedString, xIDs, yIDs []token.TokenID, max int) (sld int, within, pruned bool) {
	if x.Count() == 0 {
		d := y.AggregateLen()
		return d, max < 0 || d <= max, false
	}
	if y.Count() == 0 {
		d := x.AggregateLen()
		return d, max < 0 || d <= max, false
	}
	k, lower, ok := v.buildCost(x, y, xIDs, yIDs, max)
	if !ok {
		return lower, false, true
	}
	var total int
	var early bool
	if v.Greedy {
		total, ok, early = v.scratch.GreedyFlat(v.cost, k, max)
	} else {
		total, ok, early = v.scratch.HungarianFlat(v.cost, k, max)
	}
	return total, ok, !ok && early
}

// buildCost fills the flattened padded cost matrix of Sec. III-F
// (costMatrix) with budget-capped cells. While building it accumulates
// the sum of per-row minima — each row must be matched to some column, so
// the sum is a lower bound on any assignment — and aborts the moment that
// bound exceeds the budget, returning ok = false and the bound.
func (v *Verifier) buildCost(x, y token.TokenizedString, xIDs, yIDs []token.TokenID, max int) (k, lower int, ok bool) {
	m, n := x.Count(), y.Count()
	k = m
	if n > k {
		k = n
	}
	if cap(v.cost) < k*k {
		v.cost = make([]int, k*k, 2*k*k)
	}
	v.cost = v.cost[:k*k]
	cap1 := max + 1 // cell cap; any assignment using a capped cell busts the budget
	rowMinSum := 0
	for i := 0; i < k; i++ {
		rowMin := int(^uint(0) >> 2)
		row := v.cost[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			var c int
			switch {
			case i < m && j < n:
				c = v.tokenLD(x.TokenRunes(i), y.TokenRunes(j), xIDs, yIDs, i, j, max)
			case i < m:
				c = len(x.TokenRunes(i)) // delete whole token into ε
			case j < n:
				c = len(y.TokenRunes(j)) // grow ε into the token
			default:
				c = 0 // ε matched to ε
			}
			if max >= 0 && c > cap1 {
				c = cap1
			}
			row[j] = c
			if c < rowMin {
				rowMin = c
			}
		}
		rowMinSum += rowMin
		if max >= 0 && rowMinSum > max {
			return k, rowMinSum, false
		}
	}
	return k, rowMinSum, true
}

// tokenLD returns the (budget-capped when max >= 0) Levenshtein distance
// between tokens i of x and j of y, consulting the cache when ids are
// available.
func (v *Verifier) tokenLD(xr, yr []rune, xIDs, yIDs []token.TokenID, i, j, max int) int {
	if xIDs != nil && yIDs != nil {
		if v.Cache != nil {
			return v.Cache.ld(xIDs[i], yIDs[j], xr, yr, max, &v.levRow)
		}
		if v.Shared != nil {
			return v.Shared.ld(xIDs[i], yIDs[j], xr, yr, max, &v.levRow)
		}
	}
	if max < 0 {
		return strdist.LevenshteinRunesScratchU16(xr, yr, &v.levRow)
	}
	d, _ := strdist.LevenshteinBoundedScratchU16(xr, yr, max, &v.levRow)
	return d
}

// SLDBounded returns SLD(x, y) and true if it is at most max; otherwise a
// value exceeding max and false. This convenience form allocates a
// throwaway Verifier via an internal pool; hot paths should hold their
// own Verifier.
func SLDBounded(x, y token.TokenizedString, max int) (int, bool) {
	v := pkgVerifiers.Get().(*Verifier)
	v.Greedy = false
	d, ok := v.SLDBounded(x, y, max)
	pkgVerifiers.Put(v)
	return d, ok
}

var pkgVerifiers = sync.Pool{New: func() any { return &Verifier{} }}
