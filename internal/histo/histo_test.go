package histo

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestBucketRoundTrip: lowerBoundOf inverts bucketOf, buckets are
// monotone, and every value maps into a bucket whose bound is within the
// documented ~9% relative error below it.
func TestBucketRoundTrip(t *testing.T) {
	for i := 0; i < numBuckets; i++ {
		lb := lowerBoundOf(i)
		if got := bucketOf(lb); got != i {
			t.Fatalf("bucketOf(lowerBoundOf(%d)) = %d", i, got)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10000; trial++ {
		ns := rng.Int63()
		b := bucketOf(ns)
		lb := lowerBoundOf(b)
		if lb > ns {
			t.Fatalf("lower bound %d above value %d", lb, ns)
		}
		if ns >= 16 && float64(ns-lb) > 0.1251*float64(ns) {
			t.Fatalf("bucket error too large: value %d, bound %d", ns, lb)
		}
	}
	// Monotonicity across bucket boundaries.
	prev := int64(-1)
	for i := 0; i < numBuckets; i++ {
		lb := lowerBoundOf(i)
		if lb <= prev {
			t.Fatalf("bounds not strictly increasing at %d: %d <= %d", i, lb, prev)
		}
		prev = lb
	}
}

// TestQuantiles: known distribution, known quantiles (within bucket
// resolution).
func TestQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got > tc.want || float64(tc.want-got) > 0.13*float64(tc.want) {
			t.Fatalf("q%.2f = %v, want within ~13%% below %v", tc.q, got, tc.want)
		}
	}
	if m := h.Mean(); m < 400*time.Millisecond || m > 600*time.Millisecond {
		t.Fatalf("Mean = %v", m)
	}
}

// TestEmptyAndEdge: zero observations, zero and negative durations.
func TestEmptyAndEdge(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must read as zero")
	}
	h.Observe(0)
	h.Observe(-time.Second)
	if h.Count() != 2 || h.Quantile(0.5) != 0 {
		t.Fatalf("zero/negative handling: count=%d q50=%v", h.Count(), h.Quantile(0.5))
	}
}

// TestConcurrentObserve: racing writers and readers; total count must be
// exact afterwards (-race covers the memory model).
func TestConcurrentObserve(t *testing.T) {
	var h Histogram
	const writers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Quantile(0.95)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), writers*per)
	}
}
