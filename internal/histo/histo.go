// Package histo provides a lock-free latency histogram for hot serving
// paths: HDR-style geometric buckets over atomic counters, so Observe is
// a few arithmetic ops plus one atomic increment (no locks, no
// allocation), and quantile reads run concurrently with writers.
//
// Bucketing: durations are measured in nanoseconds and bucketed by
// (octave, 1/8-octave sub-bucket) — the top three bits after the leading
// bit of the value subdivide each power of two into 8 geometric steps,
// bounding the relative quantile error at 2^(1/8)-1 ≈ 9%. Octaves up to
// 2^62 cover every possible int64 duration, so nothing is ever clamped.
package histo

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	subBits    = 3
	subBuckets = 1 << subBits // 8 sub-buckets per octave
	// Buckets 0..subBuckets-1 are the linear range below 2^subBits;
	// octaves subBits..62 (the largest a positive int64 reaches) each
	// contribute subBuckets more.
	numBuckets = subBuckets + (63-subBits)*subBuckets
)

// Histogram is a fixed-footprint concurrent latency histogram. The zero
// value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf maps a non-negative nanosecond value to its bucket index.
func bucketOf(ns int64) int {
	v := uint64(ns)
	if v < subBuckets {
		// Values below 8ns land in the first octave's linear range.
		return int(v)
	}
	msb := bits.Len64(v) - 1 // position of the leading bit, >= subBits
	sub := (v >> (uint(msb) - subBits)) & (subBuckets - 1)
	return (msb-subBits+1)*subBuckets + int(sub)
}

// lowerBoundOf inverts bucketOf: the smallest nanosecond value mapping
// to bucket i (used as the quantile estimate).
func lowerBoundOf(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	octave := i/subBuckets - 1 + subBits
	sub := uint64(i % subBuckets)
	return int64(1<<uint(octave) | sub<<(uint(octave)-subBits))
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]): the
// lower bound of the bucket holding the q-th observation, at most ~9%
// below the true value. Concurrent Observes may or may not be counted.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	target := int64(q * float64(n))
	if target >= n {
		target = n - 1
	}
	var seen int64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > target {
			return time.Duration(lowerBoundOf(i))
		}
	}
	return time.Duration(lowerBoundOf(numBuckets - 1))
}
