package stream

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/token"
)

// Batched insertion with end-of-batch verification.
//
// Verification never reads the index — it only needs the candidate ids
// and the immutable tokenized strings behind them — so a batch insert
// does not have to force each element's verdicts before indexing the
// element. Instead, generation and indexing proceed element by element
// while every filter-surviving (probe, candidate) pair is STAGED on a
// verification engine: its token-pair DP cells pool in the engine's
// lane pools alongside cells from every other element of the batch,
// and one flush at the end of the batch drives all pending verdicts.
// That is the cross-probe half of the staging engine's design: lanes
// that a single probe's survivors could only part-fill are topped up
// by the next element's survivors, so kernel lane fill stays near the
// vector width even when individual candidate lists are short.
//
// Match semantics are unchanged — element i's matches are exactly what
// per-element Add would have returned (everything previously indexed
// plus earlier elements of the same batch), property-tested by
// TestSIMDEquivalenceAddAll and TestSIMDEquivalenceShardedAddAll.

// stagedChunk is one contiguous candidate chunk of one batch element
// whose verdicts are pending in a verification engine's stager until
// the end-of-batch flush. ids and res are exact-size allocations: the
// stager retains &res[i] verdict pointers, so the backing array must
// stay addressable (and never regrow) until the flush.
type stagedChunk struct {
	ids []int32
	res []core.BatchResult
}

// stagedElem collects one batch element's pending chunks plus the
// matches resolved immediately (empty-probe elements match the
// token-less strings with no verification at all).
type stagedElem struct {
	la      int
	chunks  []stagedChunk
	matches []Match
}

// stageChunk filters one ascending candidate chunk (tombstone mask,
// length prune, histogram lower bound — the same funnel as
// batchVerifier.verifyCands) and stages the survivors on the engine.
// Verdicts land in sc.res by the time the engine's FlushBatch returns.
func stageChunk(bv *batchVerifier, ts token.TokenizedString, strs []token.TokenizedString, dead []bool, cands []int32, t float64, sc *stagedChunk) {
	la := ts.AggregateLen()
	ids := make([]int32, 0, len(cands))
	ys := make([]*token.TokenizedString, 0, len(cands))
	for _, cand := range cands {
		if dead != nil && dead[cand] {
			continue
		}
		other := &strs[cand]
		if core.LengthPrune(la, other.AggregateLen(), t) {
			continue
		}
		if core.LowerBoundPrune(ts, *other, t) {
			continue
		}
		ids = append(ids, cand)
		ys = append(ys, other)
	}
	if len(ids) == 0 {
		return
	}
	res := make([]core.BatchResult, len(ids))
	bv.ver.StageBatch(ts, ys, t, res)
	sc.ids, sc.res = ids, res
}

// appendChunkMatches folds one flushed chunk's verdicts into a match
// list, returning the extended list and the budget-pruned count.
func appendChunkMatches(ms []Match, sc *stagedChunk, la int, strs []token.TokenizedString) ([]Match, int64) {
	var pruned int64
	for i, r := range sc.res {
		if r.Pruned {
			pruned++
		}
		if r.Within {
			ms = append(ms, Match{
				ID:   int(sc.ids[i]),
				SLD:  r.SLD,
				NSLD: core.NSLDFromSLD(r.SLD, la, strs[sc.ids[i]].AggregateLen()),
			})
		}
	}
	return ms, pruned
}

// AddAll adds a batch of raw strings, returning the first assigned id
// and, per element, the matches per-element Add would have returned
// (everything previously added plus earlier elements of the same
// batch, sorted by id). When the batch kernels are live the whole
// batch's verdicts are staged cross-probe and flushed once at the end;
// otherwise it degrades to per-element Add.
func (m *Matcher) AddAll(names []string) (int, [][]Match) {
	first := len(m.strings)
	out := make([][]Match, len(names))
	if len(names) < 2 || m.opt.DisableSIMD || m.opt.DisableBoundedVerify || !core.BatchKernelAvailable() {
		for i, s := range names {
			out[i] = m.Add(s)
		}
		return first, out
	}

	t := m.opt.Threshold
	elems := make([]stagedElem, len(names))
	for ei, s := range names {
		ts := m.opt.Tokenizer(s)
		id := int32(len(m.strings))
		probe := distinctProbe(ts)
		el := &elems[ei]
		if ts.Count() == 0 {
			for _, e := range m.emptyIDs {
				el.matches = append(el.matches, Match{ID: int(e)})
			}
			m.strings = append(m.strings, ts)
			m.seen = append(m.seen, 0)
			m.emptyIDs = append(m.emptyIDs, id)
			continue
		}
		el.la = ts.AggregateLen()
		cands := m.genCandidates(ts, probe)
		verifyStart := time.Now()
		var sc stagedChunk
		stageChunk(&m.bver, ts, m.strings, nil, cands, t, &sc)
		if len(sc.ids) > 0 {
			m.verified += int64(len(sc.ids))
			el.chunks = append(el.chunks, sc)
		}
		m.verifyWall += time.Since(verifyStart)
		m.strings = append(m.strings, ts)
		m.seen = append(m.seen, 0)
		m.ix.insert(probe, id)
	}

	flushStart := time.Now()
	m.bver.ver.FlushBatch(&m.batchCtr)
	m.verifyWall += time.Since(flushStart)

	for ei := range elems {
		el := &elems[ei]
		ms := el.matches
		for c := range el.chunks {
			var pruned int64
			ms, pruned = appendChunkMatches(ms, &el.chunks[c], el.la, m.strings)
			m.budgetPruned += pruned
		}
		sortMatches(ms)
		out[ei] = ms
	}
	return first, out
}

// canStageAddAll reports whether a batch insert can defer its verdicts
// to an end-of-batch flush through the cross-probe staging engine.
func (m *ShardedMatcher) canStageAddAll(n int) bool {
	return n >= 2 && !m.opt.DisableSIMD && !m.opt.DisableBoundedVerify && core.BatchKernelAvailable()
}

// addAllStaged runs one batch insert with end-of-batch verification:
// per element it generates candidates, stages the chunked survivors on
// per-slot verification engines through the worker pool, and indexes
// the element; one parallel flush then drives every pending verdict.
// Chunk c of every element lands on engine bvs[c], and the per-element
// barrier guarantees at most one in-flight job per engine — each
// engine is single-threaded scratch shared across the batch, which is
// exactly what lets lanes pool cells from many elements. The caller
// holds addMu.
func (m *ShardedMatcher) addAllStaged(toks []token.TokenizedString) [][]Match {
	slots := len(m.shards)
	bvs := make([]*batchVerifier, slots)
	for i := range bvs {
		bvs[i] = m.verPool.Get().(*batchVerifier)
	}
	elems := make([]stagedElem, len(toks))
	var staged int64
	var wg sync.WaitGroup
	for ei := range toks {
		ts := toks[ei]
		m.adds.Add(1)
		probe := distinctProbe(ts)
		el := &elems[ei]
		if ts.Count() == 0 {
			m.mu.RLock()
			el.matches = make([]Match, len(m.emptyIDs))
			for i, e := range m.emptyIDs {
				el.matches[i] = Match{ID: int(e)}
			}
			m.mu.RUnlock()
		} else {
			el.la = ts.AggregateLen()
			if cands := m.genCandidates(ts, probe); len(cands) > 0 {
				// Snapshot after generation: every candidate id reached
				// strings before any posting list, and dead is kept the
				// same length.
				m.mu.RLock()
				strs := m.strings
				dead := m.dead
				m.mu.RUnlock()
				verifyStart := time.Now()
				chunks := verifyChunkCount(len(cands), slots)
				if chunks < 1 {
					chunks = 1
				}
				el.chunks = make([]stagedChunk, chunks)
				wg.Add(chunks)
				for c := 0; c < chunks; c++ {
					lo := c * len(cands) / chunks
					hi := (c + 1) * len(cands) / chunks
					bv, sc, chunk := bvs[c], &el.chunks[c], cands[lo:hi]
					m.pool.submit(func() {
						defer wg.Done()
						stageChunk(bv, ts, strs, dead, chunk, m.opt.Threshold, sc)
					})
				}
				wg.Wait()
				for c := range el.chunks {
					staged += int64(len(el.chunks[c].ids))
				}
				m.verifyWall.Add(int64(time.Since(verifyStart)))
			}
		}

		// Index exactly like addTokenized: strings first, postings second,
		// so a concurrent Query that discovers id in a shard's postings is
		// guaranteed to find strings[id].
		m.mu.Lock()
		id := int32(len(m.strings))
		m.strings = append(m.strings, ts)
		m.dead = append(m.dead, false)
		if ts.Count() == 0 {
			m.emptyIDs = append(m.emptyIDs, id)
		}
		m.mu.Unlock()
		if ts.Count() > 0 {
			m.insertProbe(probe, id, nil, true)
		}
	}

	// ---- Flush: one parallel sweep drives every pending verdict ---------
	flushStart := time.Now()
	ctrs := make([]core.BatchCounters, slots)
	wg.Add(slots)
	for c := 0; c < slots; c++ {
		bv, ctr := bvs[c], &ctrs[c]
		m.pool.submit(func() {
			defer wg.Done()
			bv.ver.FlushBatch(ctr)
		})
	}
	wg.Wait()
	m.verifyWall.Add(int64(time.Since(flushStart)))
	var ctr core.BatchCounters
	for i := range ctrs {
		ctr.Add(ctrs[i])
		m.verPool.Put(bvs[i])
	}
	if staged > 0 {
		m.verified.Add(staged)
	}
	if ctr.Batched > 0 {
		m.batchedPairs.Add(ctr.Batched)
	}
	if ctr.Kernels > 0 {
		m.simdKernels.Add(ctr.Kernels)
		m.simdLanes.Add(ctr.Lanes)
	}
	if ctr.ScalarCells > 0 {
		m.batchScalarCells.Add(ctr.ScalarCells)
	}

	// ---- Assemble: chunks are contiguous ascending id runs, so chunk
	// order keeps each element's matches sorted by id. ------------------
	m.mu.RLock()
	strs := m.strings
	m.mu.RUnlock()
	out := make([][]Match, len(toks))
	var pruned int64
	for ei := range elems {
		el := &elems[ei]
		ms := el.matches
		for c := range el.chunks {
			var p int64
			ms, p = appendChunkMatches(ms, &el.chunks[c], el.la, strs)
			pruned += p
		}
		out[ei] = ms
	}
	if pruned > 0 {
		m.budgetPruned.Add(pruned)
	}
	return out
}
