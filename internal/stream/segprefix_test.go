package stream

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/namegen"
)

// TestSegmentPrefixEquivalenceStream: the sequential matcher returns
// identical match sets with the segment prefix filter on and off, at
// several thresholds, with the shared-token prefix filter both on and
// off — and the filter actually skips segment probes somewhere in the
// sweep.
func TestSegmentPrefixEquivalenceStream(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 55, NumNames: 220})
	prunedSomewhere := false
	for _, sharedOff := range []bool{false, true} {
		for _, th := range []float64{0.1, 0.2, 0.35} {
			plain, pst := streamAll(t, names, Options{
				Threshold: th, DisablePrefixFilter: sharedOff, DisableSegmentPrefixFilter: true,
			})
			filtered, fst := streamAll(t, names, Options{
				Threshold: th, DisablePrefixFilter: sharedOff,
			})
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("t=%.2f sharedOff=%v: segment-filtered match sets differ", th, sharedOff)
			}
			if pst.SegPrefixPruned != 0 {
				t.Fatalf("t=%.2f: SegPrefixPruned=%d with the filter disabled", th, pst.SegPrefixPruned)
			}
			if fst.SegPrefixPruned > 0 {
				prunedSomewhere = true
			}
			if fst.SegKeysProbed > pst.SegKeysProbed {
				t.Fatalf("t=%.2f sharedOff=%v: filtering increased segment probes (%d vs %d)",
					th, sharedOff, fst.SegKeysProbed, pst.SegKeysProbed)
			}
		}
	}
	if !prunedSomewhere {
		t.Fatal("SegPrefixPruned never populated across the sweep")
	}
}

// TestSegmentPrefixEquivalenceStreamMaxFreq: the filter composes with the
// max-token-frequency cutoff — the probe-side carve-out keeps probing
// tokens beyond the cutoff, and storage-side pruning is disabled, so the
// cutoff matcher's (approximate) match stream is unchanged.
func TestSegmentPrefixEquivalenceStreamMaxFreq(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 56, NumNames: 220})
	for _, maxFreq := range []int{2, 5, 20} {
		for _, th := range []float64{0.15, 0.25} {
			plain, _ := streamAll(t, names, Options{
				Threshold: th, MaxTokenFreq: maxFreq, DisableSegmentPrefixFilter: true,
			})
			filtered, _ := streamAll(t, names, Options{
				Threshold: th, MaxTokenFreq: maxFreq,
			})
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("M=%d t=%.2f: segment-filtered match sets differ under the cutoff", maxFreq, th)
			}
		}
	}
}

// TestSegmentPrefixEquivalenceStreamMaxFreqCarveOut targets the one
// M-shaped corner of the losslessness argument: a qualifying pair whose
// every shared token exceeds the cutoff is invisible to the exact path,
// and its similar-token witness hangs off a probe token that is more
// frequent than every prefix token — exactly the token the carve-out must
// keep probing. Without the carve-out the pair is silently lost.
func TestSegmentPrefixEquivalenceStreamMaxFreqCarveOut(t *testing.T) {
	u := "commontoken" + strings.Repeat("a", 19) // length 30
	v := "commontoken" + strings.Repeat("a", 18) + "b"
	var names []string
	// Make u frequent (well past M = 1).
	for i := 0; i < 10; i++ {
		names = append(names, fmt.Sprintf("%s filler%02d", u, i))
	}
	// ra/rb/rc reach frequency 2 before q arrives, so the M = 1 gate
	// rejects every shared token of the target pair.
	names = append(names, "ra rb rc zfiller")
	x := "ra rb rc " + v
	q := "ra rb rc " + u
	names = append(names, x)
	xID := len(names) - 1
	names = append(names, q) // q arrives last and must match x

	const th = 0.06
	opt := Options{Threshold: th, MaxTokenFreq: 1}
	plain, _ := streamAll(t, names, Options{Threshold: th, MaxTokenFreq: 1, DisableSegmentPrefixFilter: true})
	filtered, _ := streamAll(t, names, opt)
	if !reflect.DeepEqual(plain, filtered) {
		t.Fatalf("carve-out corner: match sets differ\nplain: %v\nfiltered: %v",
			plain[len(plain)-1], filtered[len(filtered)-1])
	}
	// The corner must actually have triggered: the unfiltered matcher
	// finds (x, q) through the u~v similar pair despite every shared
	// token sitting beyond the cutoff.
	found := false
	for _, mt := range plain[len(plain)-1] {
		if mt.ID == xID {
			found = true
		}
	}
	if !found {
		t.Fatalf("corner not exercised: %q did not match %q under the cutoff (matches %v)",
			q, x, plain[len(plain)-1])
	}
}

// TestSegmentPrefixEquivalenceSharded: the sharded matcher with the
// segment prefix filter agrees with the unfiltered sequential matcher at
// several shard counts and thresholds — per-shard segment storage and the
// globally-folded frequency order must reproduce the sequential
// decisions exactly.
func TestSegmentPrefixEquivalenceSharded(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 57, NumNames: 200})
	for _, th := range []float64{0.1, 0.2, 0.3} {
		want, _ := streamAll(t, names, Options{Threshold: th, DisableSegmentPrefixFilter: true})
		for _, shards := range []int{1, 3, 8} {
			m, err := NewShardedMatcher(Options{Threshold: th}, shards)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]Match, len(names))
			for i, n := range names {
				_, got[i] = m.Add(n)
			}
			st := m.Stats()
			m.Close()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("t=%.2f shards=%d: segment-filtered sharded match sets differ from unfiltered sequential",
					th, shards)
			}
			if st.SegKeysProbed == 0 {
				t.Fatalf("t=%.2f shards=%d: SegKeysProbed never populated", th, shards)
			}
		}
	}
}

// TestSegmentPrefixEquivalenceTies: adversarial frequency ties — every
// token appears the same number of times, so prefix membership (and with
// it segment storage and probing) rests entirely on the deterministic
// tie-break, which must agree between the sequential matcher and every
// shard count.
func TestSegmentPrefixEquivalenceTies(t *testing.T) {
	words := []string{
		"alpha", "bravo", "carol", "delta", "echos", "fotox",
		"golfy", "hotel", "india", "julie", "kilos", "limas",
	}
	var names []string
	n := len(words)
	for rot := 0; rot < 2; rot++ { // every token ends at the same frequency
		for i := 0; i < n; i++ {
			names = append(names, fmt.Sprintf("%s %s %s",
				words[i], words[(i+1+rot)%n], words[(i+3+rot)%n]))
		}
	}
	// Similar-token-only partners (each token one edit off).
	names = append(names, "alphq bravp carpl", "deltz echps fotpx")
	const th = 0.3
	want, _ := streamAll(t, names, Options{Threshold: th, DisableSegmentPrefixFilter: true})
	seq, _ := streamAll(t, names, Options{Threshold: th})
	if !reflect.DeepEqual(want, seq) {
		t.Fatal("tie-broken sequential segment-filtered matcher differs from unfiltered")
	}
	for _, shards := range []int{2, 5} {
		m, err := NewShardedMatcher(Options{Threshold: th}, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]Match, len(names))
		for i, nm := range names {
			_, got[i] = m.Add(nm)
		}
		m.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: tie-broken sharded segment-filtered matcher differs", shards)
		}
	}
}

// TestSegmentPrefixEquivalenceWarmLoad: a matcher warm-loaded from a
// persistent corpus prunes segment storage using the corpus's stored
// epoch-stamped order — a different (and possibly stale) order than the
// live-ingest path uses — and must still serve exactly the queries an
// unfiltered warm load serves.
func TestSegmentPrefixEquivalenceWarmLoad(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 58, NumNames: 180})
	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	for _, n := range names {
		if _, err := pc.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, th := range []float64{0.1, 0.2, 0.3} {
		plain, err := NewShardedFromCorpus(Options{Threshold: th, DisableSegmentPrefixFilter: true}, 3, pc)
		if err != nil {
			t.Fatal(err)
		}
		filtered, err := NewShardedFromCorpus(Options{Threshold: th}, 3, pc)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range names {
			want := plain.Query(n)
			got := filtered.Query(n)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("t=%.2f: warm-loaded segment-filtered query %q differs: %v vs %v", th, n, got, want)
			}
		}
		plain.Close()
		filtered.Close()
	}
}

// TestSegmentProbeZeroAlloc: the steady-state candidate probe — exact
// lookups plus the full similar-token segment probe — performs zero
// allocations once the per-worker scratch is warm.
func TestSegmentProbeZeroAlloc(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 59, NumNames: 500})
	m, err := NewMatcher(Options{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		m.Add(n)
	}
	probes := make([][]probeToken, 0, 50)
	for i := 0; i < 50; i++ {
		ts := m.opt.Tokenizer(names[i*7%len(names)])
		probe := distinctProbe(ts)
		freqs := make([]int32, len(probe))
		for j, p := range probe {
			freqs[j] = m.ix.freqOf(p.s)
		}
		var keys []int64
		markPrefix(probe, freqs, m.opt.Threshold, ts, &keys)
		probes = append(probes, probe)
	}
	var pc probeCounters
	var sink int64
	emit := func(cand int32) { sink += int64(cand) }
	probeAll := func() {
		for _, p := range probes {
			m.ix.candidates(p, m.scratch, &pc, emit)
		}
	}
	probeAll() // warm the scratch (visited growth, plan memo, hash arrays)
	if allocs := testing.AllocsPerRun(20, probeAll); allocs != 0 {
		t.Fatalf("steady-state probe allocates: %.1f allocs/op (want 0)", allocs)
	}
	if pc.segKeysProbed == 0 {
		t.Fatal("probe exercised no segment keys; the zero-alloc claim is vacuous")
	}
}
