package stream

import (
	"fmt"

	"repro/internal/corpus"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// NewShardedFromCorpus builds a concurrent matcher over a persistent
// corpus: the corpus's strings are bulk-loaded into the sharded index
// (index-only — warm loading never generates or verifies candidates, so
// a restart costs one linear pass over local state instead of re-serving
// the ingest traffic), ids are the corpus's StringIDs, and the matcher
// stays attached: every subsequent Add/AddAll first appends to the
// corpus WAL — durability precedes visibility — then indexes. Tombstoned
// corpus ids keep their slot in the id space but are neither indexed nor
// matchable.
//
// While a matcher is attached, route all writes through it; adding to
// the corpus directly would desynchronize the id spaces (the matcher
// detects the drift and fails the write rather than corrupt results).
func NewShardedFromCorpus(opt Options, shards int, pc *corpus.Corpus) (*ShardedMatcher, error) {
	m, err := NewShardedMatcher(opt, shards)
	if err != nil {
		return nil, err
	}
	v := pc.View()
	per := make([][]probeToken, len(m.shards))
	// Storage-side segment pruning on the warm path reuses the corpus's
	// epoch-stamped frequency order instead of live probe-time
	// frequencies: each string's prefix is the head of its stored
	// rank-sorted member list, exactly as the persistent batch join
	// slices it. Any fixed order is lossless here (the argument in
	// tokenIndex.insert never consults the order), so staleness against
	// the live-ingest order costs nothing but pruning power.
	var prefixSet map[string]struct{}
	markStorage := !opt.DisableSegmentPrefixFilter && opt.MaxTokenFreq <= 0 && !opt.ExactTokensOnly
	if markStorage {
		prefixSet = make(map[string]struct{})
	}
	for sid := range v.TC.Strings {
		ts := v.TC.Strings[sid]
		if !v.Alive[sid] {
			m.loadTombstone()
			continue
		}
		probe := distinctProbe(ts)
		if markStorage {
			ranked := v.Ranked[sid]
			p := prefilter.SegmentPrefixLen(opt.Threshold, ts.AggregateLen(), len(ranked))
			clear(prefixSet)
			for _, tid := range ranked[:p] {
				prefixSet[v.TC.Tokens[tid]] = struct{}{}
			}
			for i := range probe {
				_, in := prefixSet[probe[i].s]
				probe[i].nonPrefix = !in
			}
		}
		m.loadTokenized(ts, probe, per)
	}
	m.corpus = pc
	return m, nil
}

// loadTokenized appends one string to the index without matching it
// (warm-load path; the caller is single-threaded at construction time).
// probe is the string's distinct-token probe, already carrying any
// storage-side prefix marks; per is caller-owned per-shard grouping
// scratch, reused across strings so the restart path does not allocate
// per token.
func (m *ShardedMatcher) loadTokenized(ts token.TokenizedString, probe []probeToken, per [][]probeToken) {
	id := int32(len(m.strings))
	m.strings = append(m.strings, ts)
	m.dead = append(m.dead, false)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
		return
	}
	m.insertProbe(probe, id, per, false)
}

// loadTombstone reserves an id for a deleted corpus string: it occupies
// its slot (keeping matcher ids equal to corpus StringIDs) but is not
// indexed and never matches — not even as an empty string.
func (m *ShardedMatcher) loadTombstone() {
	m.strings = append(m.strings, token.TokenizedString{})
	m.dead = append(m.dead, true)
}

// Delete tombstones a string in the live index (it stops matching
// immediately) and, on a corpus-backed matcher, durably in the WAL.
// This is the delete path to use while a matcher is attached — deleting
// straight on the corpus would leave the live index serving the string
// until the next restart. Safe for concurrent use.
func (m *ShardedMatcher) Delete(id int) error {
	m.addMu.Lock()
	defer m.addMu.Unlock()
	m.mu.RLock()
	n := len(m.strings)
	m.mu.RUnlock()
	if id < 0 || id >= n {
		return fmt.Errorf("stream: delete of id %d: %w", id, corpus.ErrNotFound)
	}
	if m.corpus != nil {
		// The corpus rejects double deletes (with ErrNotFound), keeping
		// the two id spaces' tombstone sets identical.
		if err := m.corpus.Delete(token.StringID(id)); err != nil {
			return err
		}
	} else if m.isDead(id) {
		return fmt.Errorf("stream: delete of id %d: %w", id, corpus.ErrNotFound)
	}
	// Copy-on-write: concurrent queries hold snapshots of both slices.
	m.mu.Lock()
	dead := append([]bool(nil), m.dead...)
	dead[id] = true
	m.dead = dead
	if m.strings[id].Count() == 0 {
		empties := make([]int32, 0, len(m.emptyIDs))
		for _, e := range m.emptyIDs {
			if e != int32(id) {
				empties = append(empties, e)
			}
		}
		m.emptyIDs = empties
	}
	m.mu.Unlock()
	return nil
}

// isDead reports whether id is tombstoned.
func (m *ShardedMatcher) isDead(id int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dead[id]
}

// Corpus returns the attached persistent corpus (nil for a purely
// in-memory matcher).
func (m *ShardedMatcher) Corpus() *corpus.Corpus { return m.corpus }

// AddDurable is Add with the persistence error surfaced: the record is
// appended to the attached corpus's WAL (fsynced per its policy) before
// the string becomes visible to queries. On a persistence failure
// nothing is indexed and id is -1. Without an attached corpus it behaves
// exactly like Add.
func (m *ShardedMatcher) AddDurable(s string) (int, []Match, error) {
	ts := m.opt.Tokenizer(s)
	m.addMu.Lock()
	defer m.addMu.Unlock()
	if err := m.persist(ts); err != nil {
		return -1, nil, err
	}
	id, matches := m.addTokenized(ts)
	return id, matches, nil
}

// AddAllDurable is AddAll with the persistence error surfaced. The whole
// batch is appended to the WAL with one group-commit fsync before any
// element becomes visible; on failure nothing is indexed.
func (m *ShardedMatcher) AddAllDurable(names []string) (int, [][]Match, error) {
	toks := make([]token.TokenizedString, len(names))
	for i, s := range names {
		toks[i] = m.opt.Tokenizer(s)
	}
	matches := make([][]Match, len(names))
	m.addMu.Lock()
	defer m.addMu.Unlock()
	if m.corpus != nil {
		if err := m.checkAligned(); err != nil {
			return -1, nil, err
		}
		if _, err := m.corpus.AddTokenizedBatch(toks); err != nil {
			return -1, nil, err
		}
	}
	m.mu.RLock()
	first := len(m.strings)
	m.mu.RUnlock()
	for i, ts := range toks {
		_, matches[i] = m.addTokenized(ts)
	}
	return first, matches, nil
}

// persist appends one add record to the attached corpus (no-op when
// detached). The caller holds addMu.
func (m *ShardedMatcher) persist(ts token.TokenizedString) error {
	if m.corpus == nil {
		return nil
	}
	if err := m.checkAligned(); err != nil {
		return err
	}
	_, err := m.corpus.AddTokenized(ts)
	return err
}

// checkAligned verifies the corpus and matcher id spaces still agree
// (they drift only if a writer bypassed the matcher).
func (m *ShardedMatcher) checkAligned() error {
	m.mu.RLock()
	n := len(m.strings)
	m.mu.RUnlock()
	if cn := m.corpus.Len(); cn != n {
		return fmt.Errorf("stream: corpus id space (%d) out of step with matcher (%d); write through the matcher only", cn, n)
	}
	return nil
}
