package stream

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/corpus"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// NewShardedFromCorpus builds a concurrent matcher over a persistent
// corpus: the corpus's strings are bulk-loaded into the sharded index
// (index-only — warm loading never generates or verifies candidates, so
// a restart costs one linear pass over local state instead of re-serving
// the ingest traffic), ids are the corpus's StringIDs, and the matcher
// stays attached: every subsequent Add/AddAll first appends to the
// corpus WAL — durability precedes visibility — then indexes. Tombstoned
// corpus ids keep their slot in the id space but are neither indexed nor
// matchable.
//
// While a matcher is attached, route all writes through it; adding to
// the corpus directly would desynchronize the id spaces (the matcher
// detects the drift and fails the write rather than corrupt results).
func NewShardedFromCorpus(opt Options, shards int, pc *corpus.Corpus) (*ShardedMatcher, error) {
	m, err := NewShardedMatcher(opt, shards)
	if err != nil {
		return nil, err
	}
	v := pc.View()
	markStorage := !opt.DisableSegmentPrefixFilter && opt.MaxTokenFreq <= 0 && !opt.ExactTokensOnly
	if len(v.TC.Strings) >= parallelWarmLoadMin && len(m.shards) > 1 {
		m.warmLoadParallel(v, markStorage)
	} else {
		m.warmLoadSerial(v, markStorage)
	}
	m.corpus = pc
	return m, nil
}

// parallelWarmLoadMin is the corpus size at which the warm load switches
// from the serial single-pass to the parallel pipeline; below it the
// goroutine fan-out costs more than it saves. A variable so the
// equivalence test can force the parallel path on a small corpus.
var parallelWarmLoadMin = 2048

// markStorageProbe applies the storage-side segment-prefix marks to one
// string's probe. The warm path reuses the corpus's epoch-stamped
// frequency order instead of live probe-time frequencies: each string's
// prefix is the head of its stored rank-sorted member list, exactly as
// the persistent batch join slices it. Any fixed order is lossless here
// (the argument in tokenIndex.insert never consults the order), so
// staleness against the live-ingest order costs nothing but pruning
// power. prefixSet is caller-owned scratch.
func markStorageProbe(opt Options, v *corpus.View, sid int, probe []probeToken, prefixSet map[string]struct{}) {
	ranked := v.Ranked[sid]
	p := prefilter.SegmentPrefixLen(opt.Threshold, v.TC.Strings[sid].AggregateLen(), len(ranked))
	clear(prefixSet)
	for _, tid := range ranked[:p] {
		prefixSet[v.TC.Tokens[tid]] = struct{}{}
	}
	for i := range probe {
		_, in := prefixSet[probe[i].s]
		probe[i].nonPrefix = !in
	}
}

// warmLoadSerial is the single-pass warm load: headers, probe and
// insertion per string, in sid order.
func (m *ShardedMatcher) warmLoadSerial(v *corpus.View, markStorage bool) {
	per := make([][]probeToken, len(m.shards))
	var prefixSet map[string]struct{}
	if markStorage {
		prefixSet = make(map[string]struct{})
	}
	for sid := range v.TC.Strings {
		ts := v.TC.Strings[sid]
		if !v.Alive[sid] {
			m.loadTombstone()
			continue
		}
		probe := distinctProbe(ts)
		if markStorage {
			markStorageProbe(m.opt, v, sid, probe, prefixSet)
		}
		m.loadTokenized(ts, probe, per)
	}
}

// warmLoadParallel is the restart fast path for large corpora: the
// per-string work (rune decoding, probe extraction, prefix marking)
// runs chunked across GOMAXPROCS workers, and the index insertion runs
// one goroutine per shard — each walks every probe in ascending sid
// order and takes only the tokens hashing to its shard, so every
// posting list comes out in exactly the order the serial load would
// have produced and the resulting index is byte-identical. No locks:
// the matcher is still private to its constructor, each slice header is
// written before the fan-out, and each shard is touched by exactly one
// goroutine.
func (m *ShardedMatcher) warmLoadParallel(v *corpus.View, markStorage bool) {
	n := len(v.TC.Strings)
	// Phase 1 (serial, cheap): id-space headers. Appending one slot per
	// sid — tombstone or live — keeps matcher ids equal to corpus
	// StringIDs, so below id == sid.
	for sid := range v.TC.Strings {
		if !v.Alive[sid] {
			m.loadTombstone()
			continue
		}
		ts := v.TC.Strings[sid]
		id := int32(len(m.strings))
		m.strings = append(m.strings, ts)
		m.dead = append(m.dead, false)
		if ts.Count() == 0 {
			m.emptyIDs = append(m.emptyIDs, id)
		}
	}
	// Phase 2 (parallel over sid chunks): probes and prefix marks.
	// shardIDs caches shardOf per probe token so phase 3's per-shard
	// scans do not re-hash every token once per shard.
	probes := make([][]probeToken, n)
	shardIDs := make([][]int32, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var prefixSet map[string]struct{}
			if markStorage {
				prefixSet = make(map[string]struct{})
			}
			for sid := lo; sid < hi; sid++ {
				if !v.Alive[sid] || v.TC.Strings[sid].Count() == 0 {
					continue
				}
				probe := distinctProbe(v.TC.Strings[sid])
				if markStorage {
					markStorageProbe(m.opt, v, sid, probe, prefixSet)
				}
				sids := make([]int32, len(probe))
				for i := range probe {
					sids[i] = int32(shardOf(probe[i].s, len(m.shards)))
				}
				probes[sid] = probe
				shardIDs[sid] = sids
			}
		}(lo, hi)
	}
	wg.Wait()
	// Phase 3 (parallel over shards): insertion, ascending sid within
	// each shard.
	for si := range m.shards {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			sh := m.shards[si]
			var buf []probeToken
			for sid := 0; sid < n; sid++ {
				probe := probes[sid]
				if len(probe) == 0 {
					continue
				}
				buf = buf[:0]
				for i := range probe {
					if shardIDs[sid][i] == int32(si) {
						buf = append(buf, probe[i])
					}
				}
				if len(buf) > 0 {
					sh.ix.insert(buf, int32(sid))
				}
			}
		}(si)
	}
	wg.Wait()
}

// loadTokenized appends one string to the index without matching it
// (warm-load path; the caller is single-threaded at construction time).
// probe is the string's distinct-token probe, already carrying any
// storage-side prefix marks; per is caller-owned per-shard grouping
// scratch, reused across strings so the restart path does not allocate
// per token.
func (m *ShardedMatcher) loadTokenized(ts token.TokenizedString, probe []probeToken, per [][]probeToken) {
	id := int32(len(m.strings))
	m.strings = append(m.strings, ts)
	m.dead = append(m.dead, false)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
		return
	}
	m.insertProbe(probe, id, per, false)
}

// loadTombstone reserves an id for a deleted corpus string: it occupies
// its slot (keeping matcher ids equal to corpus StringIDs) but is not
// indexed and never matches — not even as an empty string.
func (m *ShardedMatcher) loadTombstone() {
	m.strings = append(m.strings, token.TokenizedString{})
	m.dead = append(m.dead, true)
}

// Delete tombstones a string in the live index (it stops matching
// immediately) and, on a corpus-backed matcher, durably in the WAL.
// This is the delete path to use while a matcher is attached — deleting
// straight on the corpus would leave the live index serving the string
// until the next restart. Safe for concurrent use.
func (m *ShardedMatcher) Delete(id int) error {
	m.addMu.Lock()
	defer m.addMu.Unlock()
	m.mu.RLock()
	n := len(m.strings)
	m.mu.RUnlock()
	if id < 0 || id >= n {
		return fmt.Errorf("stream: delete of id %d: %w", id, corpus.ErrNotFound)
	}
	if m.corpus != nil {
		// The corpus rejects double deletes (with ErrNotFound), keeping
		// the two id spaces' tombstone sets identical.
		if err := m.corpus.Delete(token.StringID(id)); err != nil {
			return err
		}
	} else if m.isDead(id) {
		return fmt.Errorf("stream: delete of id %d: %w", id, corpus.ErrNotFound)
	}
	// Copy-on-write: concurrent queries hold snapshots of both slices.
	m.mu.Lock()
	dead := append([]bool(nil), m.dead...)
	dead[id] = true
	m.dead = dead
	if m.strings[id].Count() == 0 {
		empties := make([]int32, 0, len(m.emptyIDs))
		for _, e := range m.emptyIDs {
			if e != int32(id) {
				empties = append(empties, e)
			}
		}
		m.emptyIDs = empties
	}
	m.mu.Unlock()
	m.deletesSinceSweep++
	m.maybeSweepTombstones()
	return nil
}

// sweepMinDeletes floors the amortized tombstone-sweep threshold: a
// sweep runs once max(sweepMinDeletes, Len/8) deletes have accumulated
// since the last one, so the per-delete amortized cost stays O(index/8)
// while short delete bursts never trigger full-index passes. A variable
// so tests can force sweeps on small corpora.
var sweepMinDeletes = 256

// maybeSweepTombstones compacts tombstoned ids out of the posting lists
// (and their orphaned tokens out of the segment index) once enough
// deletes have accumulated. Tombstoned entries are invisible to results
// either way — verification filters them against the dead mask — so the
// sweep is purely an occupancy reclaim: without it a churn-heavy corpus
// (delete-dominated workloads, a standby replaying years of churn)
// degrades every probe with postings full of ids that can never match.
// The caller holds addMu; shards are compacted one write-lock at a
// time, so queries interleave between shards but each shard flips
// atomically.
func (m *ShardedMatcher) maybeSweepTombstones() {
	m.mu.RLock()
	n := len(m.strings)
	dead := m.dead
	m.mu.RUnlock()
	threshold := n / 8
	if threshold < sweepMinDeletes {
		threshold = sweepMinDeletes
	}
	if m.deletesSinceSweep < threshold {
		return
	}
	m.deletesSinceSweep = 0
	m.sweeps.Add(1)
	// dead is a copy-on-write snapshot: Delete replaces the slice
	// wholesale (and no other Delete can run — the caller holds addMu),
	// so the reference stays frozen while shards compact against it.
	for _, sh := range m.shards {
		sh.mu.Lock()
		m.sweptEntries.Add(int64(sh.ix.sweepTombstones(dead)))
		sh.mu.Unlock()
	}
}

// ApplyShipped applies one replicated record — a payload shipped from a
// primary's corpus (see corpus.ShipFrom / corpus.BootstrapPayloads) —
// to this matcher: adds are persisted to the attached corpus first
// (durability precedes visibility, exactly like AddDurable) and then
// indexed WITHOUT matching — a standby serves queries, it does not
// generate match results for replicated arrivals — and deletes
// tombstone both layers. Applying the primary's committed record
// stream in order reproduces its id space, alive mask and LSN exactly.
func (m *ShardedMatcher) ApplyShipped(payload []byte) error {
	rec, err := corpus.DecodeRecord(payload)
	if err != nil {
		return err
	}
	if rec.Delete {
		return m.Delete(int(rec.SID))
	}
	ts := token.New(rec.Tokens)
	m.addMu.Lock()
	defer m.addMu.Unlock()
	if err := m.persist(ts); err != nil {
		return err
	}
	m.indexTokenized(ts)
	return nil
}

// indexTokenized appends one string to the live index without matching
// it — warm-load's loadTokenized, but with shard locking, for a matcher
// already serving queries. The probe is priced and prefix-marked like a
// live Add's so the standby's index keeps the same lazy segment-storage
// shape as the primary's. Caller holds addMu.
func (m *ShardedMatcher) indexTokenized(ts token.TokenizedString) {
	m.applied.Add(1)
	probe := distinctProbe(ts)
	m.markProbe(ts, probe)
	m.mu.Lock()
	id := int32(len(m.strings))
	m.strings = append(m.strings, ts)
	m.dead = append(m.dead, false)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
	}
	m.mu.Unlock()
	if ts.Count() == 0 {
		return
	}
	m.insertProbe(probe, id, nil, true)
}

// isDead reports whether id is tombstoned.
func (m *ShardedMatcher) isDead(id int) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.dead[id]
}

// Corpus returns the attached persistent corpus (nil for a purely
// in-memory matcher).
func (m *ShardedMatcher) Corpus() *corpus.Corpus { return m.corpus }

// AddDurable is Add with the persistence error surfaced: the record is
// appended to the attached corpus's WAL (fsynced per its policy) before
// the string becomes visible to queries. On a persistence failure
// nothing is indexed and id is -1. Without an attached corpus it behaves
// exactly like Add.
func (m *ShardedMatcher) AddDurable(s string) (int, []Match, error) {
	ts := m.opt.Tokenizer(s)
	m.addMu.Lock()
	defer m.addMu.Unlock()
	if err := m.persist(ts); err != nil {
		return -1, nil, err
	}
	id, matches := m.addTokenized(ts)
	return id, matches, nil
}

// AddAllDurable is AddAll with the persistence error surfaced. The whole
// batch is appended to the WAL with one group-commit fsync before any
// element becomes visible; on failure nothing is indexed.
func (m *ShardedMatcher) AddAllDurable(names []string) (int, [][]Match, error) {
	toks := make([]token.TokenizedString, len(names))
	for i, s := range names {
		toks[i] = m.opt.Tokenizer(s)
	}
	matches := make([][]Match, len(names))
	m.addMu.Lock()
	defer m.addMu.Unlock()
	if m.corpus != nil {
		if err := m.checkAligned(); err != nil {
			return -1, nil, err
		}
		if _, err := m.corpus.AddTokenizedBatch(toks); err != nil {
			return -1, nil, err
		}
	}
	m.mu.RLock()
	first := len(m.strings)
	m.mu.RUnlock()
	if m.canStageAddAll(len(toks)) {
		// Cross-probe staging: the whole batch's verdicts pool in shared
		// kernel lanes and flush once at the end (see addall.go).
		copy(matches, m.addAllStaged(toks))
	} else {
		for i, ts := range toks {
			_, matches[i] = m.addTokenized(ts)
		}
	}
	return first, matches, nil
}

// persist appends one add record to the attached corpus (no-op when
// detached). The caller holds addMu.
func (m *ShardedMatcher) persist(ts token.TokenizedString) error {
	if m.corpus == nil {
		return nil
	}
	if err := m.checkAligned(); err != nil {
		return err
	}
	_, err := m.corpus.AddTokenized(ts)
	return err
}

// checkAligned verifies the corpus and matcher id spaces still agree
// (they drift only if a writer bypassed the matcher).
func (m *ShardedMatcher) checkAligned() error {
	m.mu.RLock()
	n := len(m.strings)
	m.mu.RUnlock()
	if cn := m.corpus.Len(); cn != n {
		return fmt.Errorf("stream: corpus id space (%d) out of step with matcher (%d); write through the matcher only", cn, n)
	}
	return nil
}
