package stream

import (
	"sort"

	"repro/internal/core"
	"repro/internal/strdist"
	"repro/internal/token"
)

// probeToken is one distinct token of an arriving string, carried with its
// cached rune form so neither matching nor indexing re-decodes it.
type probeToken struct {
	s string
	r []rune
	// nonPrefix marks a token outside the string's threshold-derived
	// prefix (its MaxErrors(T, L)+1 rarest distinct tokens under the
	// frequency order — see markPrefix). The shared-token inverted-index
	// lookup skips such tokens when the prefix filter is on, the
	// segment-index probe skips them when the segment prefix filter is on
	// (subject to the freq > M carve-out below), and segment *storage*
	// skips them under the conditions in tokenIndex.insert. Always false
	// with both filters disabled.
	nonPrefix bool
	// freq (valid when hasFreq) is the document frequency observed by the
	// prefix-selection pre-pass. The exact lookup's max-frequency gate
	// uses this snapshot rather than re-reading the live counter: the
	// losslessness argument needs the ordering and the gate to agree on
	// one observation, and under concurrent writers a token could cross
	// the cutoff between the two reads. Frequencies only grow, so gating
	// on the snapshot is never stricter than the live gate. The segment
	// probe's freq > M carve-out judges the same snapshot for the same
	// reason.
	freq    int32
	hasFreq bool
}

// distinctProbe extracts the distinct tokens of ts. Tokens are stored
// sorted, so deduplication is a neighbor scan and the probe order is
// deterministic.
func distinctProbe(ts token.TokenizedString) []probeToken {
	probe := make([]probeToken, 0, ts.Count())
	for i, t := range ts.Tokens {
		if i > 0 && t == ts.Tokens[i-1] {
			continue
		}
		probe = append(probe, probeToken{s: t, r: ts.TokenRunes(i)})
	}
	return probe
}

// tokenIndex is one partition of the incremental generate-filter index:
// the shared-token inverted index plus the Pass-Join style segment index
// over the token space. The sequential Matcher owns a single partition
// holding every token; the ShardedMatcher owns N partitions, each holding
// the tokens that hash to it. The type itself is not goroutine-safe —
// callers serialize access (the ShardedMatcher guards each partition with
// a RWMutex).
type tokenIndex struct {
	threshold    float64
	maxFreq      int
	exactOnly    bool
	prefixFilter bool // exact-path prefix pruning (DisablePrefixFilter off)
	segFilter    bool // fuzzy-path prefix pruning (DisableSegmentPrefixFilter off)

	// tokenIDs interns distinct token strings to partition-local ids.
	tokenIDs   map[string]int32
	tokenRunes [][]rune
	// postings maps token id -> ids of strings containing it.
	postings [][]int32
	// freq tracks per-token document frequency.
	freq []int32
	// segIndexed marks token ids whose segments are present in
	// segBuckets. With storage-side pruning (see insert) a token is
	// segment-indexed lazily, the first time it lands inside some
	// string's prefix; without it, at intern time.
	segIndexed []bool

	// segBuckets is the similar-token index: (tokenLen ls, probeLen ly)
	// -> segment fingerprint -> token ids whose i-th segment under the
	// (ls, ly) partition hashes there. Replacing the old per-window
	// string-keyed map with 64-bit fingerprints keys makes both sides of
	// the index allocation-free: probes derive window fingerprints from a
	// rolling prefix-hash in O(1) per window instead of materializing a
	// substring per window. Fingerprint collisions are possible and
	// harmless: probeSimilar verifies the actual segment runes before
	// trusting a hit.
	segBuckets map[uint32]map[uint64][]int32

	// plans memoizes the per-(tokenLen, probeLen) partition geometry for
	// the insert side. Guarded by the caller's write lock like the rest
	// of the index; the probe side keeps its own memo in probeScratch so
	// concurrent readers never share it.
	plans planCache
}

func newTokenIndex(opt Options) *tokenIndex {
	return &tokenIndex{
		threshold:    opt.Threshold,
		maxFreq:      opt.MaxTokenFreq,
		exactOnly:    opt.ExactTokensOnly,
		prefixFilter: !opt.DisablePrefixFilter,
		segFilter:    !opt.DisableSegmentPrefixFilter,
		tokenIDs:     make(map[string]int32),
		segBuckets:   make(map[uint32]map[uint64][]int32),
		plans:        planCache{t: opt.Threshold},
	}
}

// tokens returns the number of distinct tokens interned in this partition.
func (ix *tokenIndex) tokens() int { return len(ix.tokenRunes) }

// freqOf returns the document frequency of a token in this partition
// (0 when the token has never been interned here). In the sharded matcher
// each token is interned only on its owning shard, so the owner's stripe
// holds the token's true global frequency.
func (ix *tokenIndex) freqOf(s string) int32 {
	if tid, ok := ix.tokenIDs[s]; ok {
		return ix.freq[tid]
	}
	return 0
}

// insert registers string id under every probe token, interning tokens on
// first sight.
//
// Storage-side segment pruning: with the segment prefix filter on and no
// max-frequency cutoff, a token's segments enter segBuckets only once the
// token appears inside some string's threshold-derived prefix
// (p.nonPrefix false) — tokens that only ever occur outside prefixes are
// never segment-indexed, which shrinks the segment index and the insert
// cost by exactly the non-prefix share of the token space. Lossless: a
// pair whose only witness is a similar (non-identical) token pair shares
// no token at all, so both strings' kept-distinct counts are within their
// SLD budgets and their prefixes are their entire distinct sets
// (prefilter.SegmentPrefixLen); any pair that does share a token is the
// exact path's responsibility, and the inverted index stores every token.
// The argument never uses the frequency order itself, so insert-time
// orders may drift arbitrarily (and the warm-load path may use the
// corpus's stored epoch-stamped order) without losing a pair. Under a
// finite max-frequency cutoff M storage pruning is disabled: a token
// shared by a qualifying pair can cross the cutoff between the index-side
// insert and the probe, stranding a pair whose segment witness was pruned
// at insert time.
func (ix *tokenIndex) insert(probe []probeToken, id int32) {
	storagePrune := ix.segFilter && ix.maxFreq <= 0 && !ix.exactOnly
	for pi := range probe {
		p := &probe[pi]
		tid, ok := ix.tokenIDs[p.s]
		if !ok {
			tid = int32(len(ix.tokenRunes))
			ix.tokenIDs[p.s] = tid
			ix.tokenRunes = append(ix.tokenRunes, p.r)
			ix.postings = append(ix.postings, nil)
			ix.freq = append(ix.freq, 0)
			ix.segIndexed = append(ix.segIndexed, false)
		}
		if !ix.exactOnly && !ix.segIndexed[tid] && !(storagePrune && p.nonPrefix) {
			ix.segIndexed[tid] = true
			ix.indexTokenSegments(tid, ix.tokenRunes[tid])
		}
		ix.postings[tid] = append(ix.postings[tid], id)
		ix.freq[tid]++
	}
}

// sweepTombstones compacts dead string ids out of every posting list,
// in place and order-preserving, and returns how many entries it
// removed. A token left with no postings is de-listed from the segment
// index (its fingerprints are dropped and segIndexed cleared, so a
// later re-appearance re-indexes it lazily); the token itself stays
// interned — ids are positional. Frequencies are deliberately NOT
// decremented: the max-frequency gate and the prefix orders judge
// insert-time observations, and rewriting history here would change
// match results under a finite MaxTokenFreq rather than just reclaim
// memory. The caller holds the shard write lock.
func (ix *tokenIndex) sweepTombstones(dead []bool) int {
	removed := 0
	emptied := false
	for tid := range ix.postings {
		ps := ix.postings[tid]
		if len(ps) == 0 {
			continue
		}
		kept := ps[:0]
		for _, id := range ps {
			if int(id) < len(dead) && dead[id] {
				removed++
				continue
			}
			kept = append(kept, id)
		}
		if len(kept) == 0 {
			ix.postings[tid] = nil
			if ix.segIndexed[tid] {
				ix.segIndexed[tid] = false
				emptied = true
			}
			continue
		}
		ix.postings[tid] = kept
	}
	if emptied {
		ix.dropEmptySegTokens()
	}
	return removed
}

// dropEmptySegTokens rewrites the segment index keeping only tokens
// that still have postings; called after a sweep emptied at least one
// segment-indexed token. Fingerprint lists are compacted in place and
// empty lists and bucket maps are deleted so churned token shapes do
// not accrete empty map entries.
func (ix *tokenIndex) dropEmptySegTokens() {
	for bkey, bk := range ix.segBuckets {
		for k, tids := range bk {
			kept := tids[:0]
			for _, tid := range tids {
				if len(ix.postings[tid]) > 0 {
					kept = append(kept, tid)
				}
			}
			if len(kept) == 0 {
				delete(bk, k)
				continue
			}
			bk[k] = kept
		}
		if len(bk) == 0 {
			delete(ix.segBuckets, bkey)
		}
	}
}

// indexTokenSegments registers a distinct token's segment fingerprints
// for every compatible probe length (the MassJoin index side).
func (ix *tokenIndex) indexTokenSegments(tid int32, r []rune) {
	l := len(r)
	if l >= maxSegLen {
		return // beyond the packed bucket-key range; never a real token
	}
	maxLy := strdist.MaxLenWithin(ix.threshold, l)
	if maxLy >= maxSegLen {
		maxLy = maxSegLen - 1
	}
	minLy := strdist.MinLenWithin(ix.threshold, l)
	for ly := minLy; ly <= maxLy; ly++ {
		pl := ix.plans.plan(l, ly)
		if pl.tau < 0 {
			continue
		}
		bkey := bucketKey(l, ly)
		bk := ix.segBuckets[bkey]
		if bk == nil {
			bk = make(map[uint64][]int32)
			ix.segBuckets[bkey] = bk
		}
		for i := range pl.segs {
			sp := &pl.segs[i]
			k := fpKey(hashSeg(r[sp.start:sp.start+sp.n]), i)
			bk[k] = append(bk[k], tid)
		}
	}
}

// probeCounters is the per-call candidate-generation funnel, accumulated
// by the matcher into its stats.
type probeCounters struct {
	// prefixPruned counts posting entries the exact-path prefix filter
	// skipped (candidates the unfiltered probe would have generated).
	prefixPruned int64
	// segPrefixPruned counts probe tokens whose segment probe was skipped
	// by the fuzzy-path prefix filter.
	segPrefixPruned int64
	// segKeysProbed counts segment-window fingerprint lookups.
	segKeysProbed int64
	// segTokensChecked counts distinct indexed tokens reaching the NLD
	// check (after dedup, self-exclusion, collision verification and the
	// max-frequency gate).
	segTokensChecked int64
	// segTokensSimilar counts checked tokens within the token NLD
	// threshold (their postings become candidates).
	segTokensSimilar int64
}

func (pc *probeCounters) add(o *probeCounters) {
	pc.prefixPruned += o.prefixPruned
	pc.segPrefixPruned += o.segPrefixPruned
	pc.segKeysProbed += o.segKeysProbed
	pc.segTokensChecked += o.segTokensChecked
	pc.segTokensSimilar += o.segTokensSimilar
}

// candidates feeds every indexed string id sharing a prefix token with
// the probe — or, unless exact-token matching is on, containing a token
// within the NLD threshold of a prefix token (see probeSimilar for the
// prefix restriction's losslessness) — to emit. The same id may be
// emitted more than once; callers deduplicate. sc is caller-owned probe
// scratch (one per worker); counters accumulate into pc.
func (ix *tokenIndex) candidates(probe []probeToken, sc *probeScratch, pc *probeCounters, emit func(int32)) {
	for pi := range probe {
		p := &probe[pi]
		// Shared-token candidates: prefix tokens only. Lossless — a pair
		// within the threshold that shares any token with the probe shares
		// one of its MaxErrors+1 rarest tokens (see markPrefix).
		selfTid := int32(-1)
		if tid, ok := ix.tokenIDs[p.s]; ok {
			selfTid = tid
			f := ix.freq[tid]
			if p.hasFreq {
				f = p.freq
			}
			if ix.maxFreq <= 0 || int(f) <= ix.maxFreq {
				if p.nonPrefix && ix.prefixFilter {
					pc.prefixPruned += int64(len(ix.postings[tid]))
				} else {
					for _, cand := range ix.postings[tid] {
						emit(cand)
					}
				}
			}
		}
		if ix.exactOnly {
			continue
		}
		// Similar-token candidates: probe the segment index with prefix
		// tokens only. Lossless (prefilter.SegmentPrefixLen): a qualifying
		// pair sharing any token is emitted by the exact path above, and a
		// qualifying pair sharing none has every distinct token inside its
		// prefix — except that under a finite max-frequency cutoff M a
		// pair whose shared tokens all exceed M is invisible to the exact
		// path, and its witness-carrying probe token is then at least as
		// frequent as a shared prefix token above M; the carve-out keeps
		// probing tokens beyond the cutoff so those pairs survive.
		if p.nonPrefix && ix.segFilter &&
			!(ix.maxFreq > 0 && p.hasFreq && int(p.freq) > ix.maxFreq) {
			pc.segPrefixPruned++
			continue
		}
		ix.probeSimilar(sc, pc, p.r, selfTid, emit)
	}
}

// probeSimilar finds indexed tokens with NLD <= T to the probe token and
// feeds their postings to emit. selfTid (-1 for none) is the probe
// token's own interned id, which is skipped — identical tokens belong to
// the exact shared-token path. The loop is allocation-free at steady
// state: window keys come from a rolling prefix-hash over the probe
// runes, dedup uses the scratch's epoch-stamped visited array, and the
// partition/window geometry is memoized per (ls, ly) in the scratch.
func (ix *tokenIndex) probeSimilar(sc *probeScratch, pc *probeCounters, r []rune, selfTid int32, emit func(int32)) {
	ly := len(r)
	if ly >= maxSegLen {
		return
	}
	minLs := strdist.MinLenWithin(ix.threshold, ly)
	maxLs := strdist.MaxLenWithin(ix.threshold, ly)
	if maxLs >= maxSegLen {
		maxLs = maxSegLen - 1
	}
	sc.begin(len(ix.tokenRunes))
	hashed := false
	for ls := minLs; ls <= maxLs; ls++ {
		// Bucket first: if no indexed token has length ls (for this probe
		// length), skip the partition geometry and the window walk
		// entirely.
		bk := ix.segBuckets[bucketKey(ls, ly)]
		if bk == nil {
			continue
		}
		pl := sc.plans.plan(ls, ly)
		if pl.tau < 0 {
			continue
		}
		if !hashed {
			sc.prepare(r)
			hashed = true
		}
		for i := range pl.segs {
			sp := &pl.segs[i]
			for q := sp.lo; q <= sp.hi; q++ {
				pc.segKeysProbed++
				tids := bk[fpKey(sc.windowHash(int(q), int(sp.n)), i)]
				for _, tid := range tids {
					if tid == selfTid || sc.visited[tid] == sc.epoch {
						continue
					}
					other := ix.tokenRunes[tid]
					// Collision verification: the fingerprint must really
					// be this token's i-th segment. A mismatch leaves the
					// token unvisited — a later window may hit it
					// genuinely.
					if !runesEqual(other[sp.start:sp.start+sp.n], r[q:q+sp.n]) {
						continue
					}
					sc.visited[tid] = sc.epoch
					if ix.maxFreq > 0 && int(ix.freq[tid]) > ix.maxFreq {
						continue
					}
					pc.segTokensChecked++
					if !ix.tokenNLDWithin(other, r, ls, ly, int(pl.tau), &sc.levRow) {
						continue
					}
					pc.segTokensSimilar++
					for _, cand := range ix.postings[tid] {
						emit(cand)
					}
				}
			}
		}
	}
}

// tokenNLDWithin verifies NLD(x, y) <= T with a banded Levenshtein
// computation over the caller's scratch row (cheap for short tokens).
func (ix *tokenIndex) tokenNLDWithin(x, y []rune, lx, ly, tau int, row *[]uint16) bool {
	d, ok := strdist.LevenshteinBoundedScratchU16(x, y, tau, row)
	if !ok {
		return false
	}
	return strdist.WithinNLD(d, lx, ly, ix.threshold)
}

// verifyOutcome reports what the verify stage did with one candidate
// pair, for the matcher stats.
type verifyOutcome struct {
	verified     bool // survived the filters and reached verification
	budgetPruned bool // rejected early by the threshold-derived SLD budget
}

// verifyPair runs the Sec. III-E filters and the SLD verification for one
// candidate pair, shared by the sequential and sharded matchers. v is the
// caller-owned verification engine (per worker), carrying all scratch so
// steady-state verification allocates nothing.
func verifyPair(v *core.Verifier, ts, other token.TokenizedString, cand int32, opt *Options) (Match, bool, verifyOutcome) {
	t := opt.Threshold
	if core.LengthPrune(ts.AggregateLen(), other.AggregateLen(), t) {
		return Match{}, false, verifyOutcome{}
	}
	if core.LowerBoundPrune(ts, other, t) {
		return Match{}, false, verifyOutcome{}
	}
	var sld int
	var within bool
	oc := verifyOutcome{verified: true}
	if opt.DisableBoundedVerify {
		if opt.Greedy {
			sld = core.SLDGreedy(ts, other)
		} else {
			sld = core.SLD(ts, other)
		}
		within = core.WithinNSLD(sld, ts.AggregateLen(), other.AggregateLen(), t)
	} else {
		sld, within, oc.budgetPruned = v.Verify(ts, other, t)
	}
	if !within {
		return Match{}, false, oc
	}
	return Match{
		ID:   int(cand),
		SLD:  sld,
		NSLD: core.NSLDFromSLD(sld, ts.AggregateLen(), other.AggregateLen()),
	}, true, oc
}

// sortMatches orders matches by id (the contract of Add and Query).
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}
