package stream

import (
	"sort"

	"repro/internal/core"
	"repro/internal/strdist"
	"repro/internal/token"
)

// probeToken is one distinct token of an arriving string, carried with its
// cached rune form so neither matching nor indexing re-decodes it.
type probeToken struct {
	s string
	r []rune
	// skipExact marks a token outside the arriving string's
	// threshold-derived prefix: the shared-token inverted-index lookup
	// skips it (lossless — see markPrefix), while the segment-index probe
	// and insertion still cover it. Always false with the prefix filter
	// disabled.
	skipExact bool
	// freq (valid when hasFreq) is the document frequency observed by the
	// prefix-selection pre-pass. The exact lookup's max-frequency gate
	// uses this snapshot rather than re-reading the live counter: the
	// losslessness argument needs the ordering and the gate to agree on
	// one observation, and under concurrent writers a token could cross
	// the cutoff between the two reads. Frequencies only grow, so gating
	// on the snapshot is never stricter than the live gate.
	freq    int32
	hasFreq bool
}

// distinctProbe extracts the distinct tokens of ts. Tokens are stored
// sorted, so deduplication is a neighbor scan and the probe order is
// deterministic.
func distinctProbe(ts token.TokenizedString) []probeToken {
	probe := make([]probeToken, 0, ts.Count())
	for i, t := range ts.Tokens {
		if i > 0 && t == ts.Tokens[i-1] {
			continue
		}
		probe = append(probe, probeToken{s: t, r: ts.TokenRunes(i)})
	}
	return probe
}

// tokenIndex is one partition of the incremental generate-filter index:
// the shared-token inverted index plus the Pass-Join style segment index
// over the token space. The sequential Matcher owns a single partition
// holding every token; the ShardedMatcher owns N partitions, each holding
// the tokens that hash to it. The type itself is not goroutine-safe —
// callers serialize access (the ShardedMatcher guards each partition with
// a RWMutex).
type tokenIndex struct {
	threshold float64
	maxFreq   int
	exactOnly bool

	// tokenIDs interns distinct token strings to partition-local ids.
	tokenIDs   map[string]int32
	tokenRunes [][]rune
	// postings maps token id -> ids of strings containing it.
	postings [][]int32
	// freq tracks per-token document frequency.
	freq []int32

	// segIndex maps (tokenLen, targetLen, segIdx, chunk) -> token ids,
	// mirroring the MassJoin candidate keys. Only index-side entries are
	// stored; probes generate substrings on the fly.
	segIndex map[segKey][]int32
}

type segKey struct {
	tokenLen, targetLen int16
	seg                 int16
	chunk               string
}

func newTokenIndex(opt Options) *tokenIndex {
	return &tokenIndex{
		threshold: opt.Threshold,
		maxFreq:   opt.MaxTokenFreq,
		exactOnly: opt.ExactTokensOnly,
		tokenIDs:  make(map[string]int32),
		segIndex:  make(map[segKey][]int32),
	}
}

// tokens returns the number of distinct tokens interned in this partition.
func (ix *tokenIndex) tokens() int { return len(ix.tokenRunes) }

// freqOf returns the document frequency of a token in this partition
// (0 when the token has never been interned here). In the sharded matcher
// each token is interned only on its owning shard, so the owner's stripe
// holds the token's true global frequency.
func (ix *tokenIndex) freqOf(s string) int32 {
	if tid, ok := ix.tokenIDs[s]; ok {
		return ix.freq[tid]
	}
	return 0
}

// insert registers string id under every probe token, interning tokens
// (and indexing their segments) on first sight.
func (ix *tokenIndex) insert(probe []probeToken, id int32) {
	for _, p := range probe {
		tid, ok := ix.tokenIDs[p.s]
		if !ok {
			tid = int32(len(ix.tokenRunes))
			ix.tokenIDs[p.s] = tid
			ix.tokenRunes = append(ix.tokenRunes, p.r)
			ix.postings = append(ix.postings, nil)
			ix.freq = append(ix.freq, 0)
			if !ix.exactOnly {
				ix.indexTokenSegments(tid, p.r)
			}
		}
		ix.postings[tid] = append(ix.postings[tid], id)
		ix.freq[tid]++
	}
}

// indexTokenSegments registers a new distinct token's segments for every
// compatible probe length (the MassJoin index side).
func (ix *tokenIndex) indexTokenSegments(tid int32, r []rune) {
	l := len(r)
	maxLy := strdist.MaxLenWithin(ix.threshold, l)
	minLy := strdist.MinLenWithin(ix.threshold, l)
	for ly := minLy; ly <= maxLy; ly++ {
		tau := strdist.MaxLDWithin(ix.threshold, l, ly)
		if tau < 0 {
			continue
		}
		for i, sg := range evenPartition(l, tau+1) {
			k := segKey{int16(l), int16(ly), int16(i), string(r[sg[0] : sg[0]+sg[1]])}
			ix.segIndex[k] = append(ix.segIndex[k], tid)
		}
	}
}

// candidates feeds every indexed string id sharing a prefix token with
// the probe — or, unless exact-token matching is on, containing a token
// within the NLD threshold of any probe token — to emit. The same id may
// be emitted more than once; callers deduplicate. The returned count is
// the number of posting entries the prefix filter skipped (candidates the
// unfiltered probe would have generated from non-prefix tokens).
func (ix *tokenIndex) candidates(probe []probeToken, emit func(int32)) (prefixPruned int64) {
	for _, p := range probe {
		// Shared-token candidates: prefix tokens only. Lossless — a pair
		// within the threshold that shares any token with the probe shares
		// one of its MaxErrors+1 rarest tokens (see markPrefix).
		selfTid := int32(-1)
		if tid, ok := ix.tokenIDs[p.s]; ok {
			selfTid = tid
			f := ix.freq[tid]
			if p.hasFreq {
				f = p.freq
			}
			if ix.maxFreq <= 0 || int(f) <= ix.maxFreq {
				if p.skipExact {
					prefixPruned += int64(len(ix.postings[tid]))
				} else {
					for _, cand := range ix.postings[tid] {
						emit(cand)
					}
				}
			}
		}
		// Similar-token candidates: probe the segment index for every
		// token — Theorem 3's similar-token responsibility cannot be
		// restricted to the prefix. The probe token's own interned id is
		// excluded: identical-token pairs are the exact path's job (its
		// prefix argument covers them even for skipExact tokens), and
		// re-emitting them here would both duplicate postings scans and
		// silently undo the prefix filter's pruning.
		if !ix.exactOnly {
			ix.probeSimilar(p.r, selfTid, emit)
		}
	}
	return prefixPruned
}

// probeSimilar finds indexed tokens with NLD <= T to the probe token and
// feeds their postings to emit. selfTid (-1 for none) is the probe
// token's own interned id, which is skipped — identical tokens belong to
// the exact shared-token path.
func (ix *tokenIndex) probeSimilar(r []rune, selfTid int32, emit func(int32)) {
	ly := len(r)
	minLs := strdist.MinLenWithin(ix.threshold, ly)
	maxLs := strdist.MaxLenWithin(ix.threshold, ly)
	checked := make(map[int32]struct{})
	for ls := minLs; ls <= maxLs; ls++ {
		tau := strdist.MaxLDWithin(ix.threshold, ls, ly)
		if tau < 0 {
			continue
		}
		for i, sg := range evenPartition(ls, tau+1) {
			lo, hi := substringWindow(ls, ly, tau, i, sg)
			for q := lo; q <= hi; q++ {
				k := segKey{int16(ls), int16(ly), int16(i), string(r[q : q+sg[1]])}
				for _, tid := range ix.segIndex[k] {
					if tid == selfTid {
						continue
					}
					if _, done := checked[tid]; done {
						continue
					}
					checked[tid] = struct{}{}
					if ix.maxFreq > 0 && int(ix.freq[tid]) > ix.maxFreq {
						continue
					}
					other := ix.tokenRunes[tid]
					if !ix.tokenNLDWithin(other, r, ls, ly, tau) {
						continue
					}
					for _, cand := range ix.postings[tid] {
						emit(cand)
					}
				}
			}
		}
	}
}

// tokenNLDWithin verifies NLD(x, y) <= T with a banded Levenshtein
// computation (cheap for short tokens).
func (ix *tokenIndex) tokenNLDWithin(x, y []rune, lx, ly, tau int) bool {
	d, ok := strdist.LevenshteinBounded(x, y, tau)
	if !ok {
		return false
	}
	return strdist.WithinNLD(d, lx, ly, ix.threshold)
}

// verifyOutcome reports what the verify stage did with one candidate
// pair, for the matcher stats.
type verifyOutcome struct {
	verified     bool // survived the filters and reached verification
	budgetPruned bool // rejected early by the threshold-derived SLD budget
}

// verifyPair runs the Sec. III-E filters and the SLD verification for one
// candidate pair, shared by the sequential and sharded matchers. v is the
// caller-owned verification engine (per worker), carrying all scratch so
// steady-state verification allocates nothing.
func verifyPair(v *core.Verifier, ts, other token.TokenizedString, cand int32, opt *Options) (Match, bool, verifyOutcome) {
	t := opt.Threshold
	if core.LengthPrune(ts.AggregateLen(), other.AggregateLen(), t) {
		return Match{}, false, verifyOutcome{}
	}
	if core.LowerBoundPrune(ts, other, t) {
		return Match{}, false, verifyOutcome{}
	}
	var sld int
	var within bool
	oc := verifyOutcome{verified: true}
	if opt.DisableBoundedVerify {
		if opt.Greedy {
			sld = core.SLDGreedy(ts, other)
		} else {
			sld = core.SLD(ts, other)
		}
		within = core.WithinNSLD(sld, ts.AggregateLen(), other.AggregateLen(), t)
	} else {
		sld, within, oc.budgetPruned = v.Verify(ts, other, t)
	}
	if !within {
		return Match{}, false, oc
	}
	return Match{
		ID:   int(cand),
		SLD:  sld,
		NSLD: core.NSLDFromSLD(sld, ts.AggregateLen(), other.AggregateLen()),
	}, true, oc
}

// sortMatches orders matches by id (the contract of Add and Query).
func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
}

// evenPartition mirrors passjoin.EvenPartition as [start, len] pairs
// (duplicated locally to keep this package's hot path allocation-free and
// dependency-light).
func evenPartition(l, parts int) [][2]int {
	segs := make([][2]int, parts)
	base, rem := l/parts, l%parts
	pos := 0
	for i := 0; i < parts; i++ {
		ln := base
		if i >= parts-rem {
			ln++
		}
		segs[i] = [2]int{pos, ln}
		pos += ln
	}
	return segs
}

// substringWindow mirrors passjoin.SubstringWindow (multi-match-aware).
func substringWindow(ls, lr, tau, i int, sg [2]int) (lo, hi int) {
	delta := lr - ls
	p := sg[0]
	lo = p - i
	if v := p + delta - (tau - i); v > lo {
		lo = v
	}
	hi = p + i
	if v := p + delta + (tau - i); v < hi {
		hi = v
	}
	if lo < 0 {
		lo = 0
	}
	if max := lr - sg[1]; hi > max {
		hi = max
	}
	return lo, hi
}
