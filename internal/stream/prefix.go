package stream

import (
	"slices"

	"repro/internal/prefilter"
	"repro/internal/token"
)

// markPrefix implements the streaming half of the threshold-aware prefix
// filters: it flags every probe token outside the arriving string's
// threshold-derived prefix so the shared-token inverted-index lookup
// (prefix filter) and the segment-index probe (segment prefix filter) can
// skip it. freqs[i] must hold the current document frequency of
// probe[i] (0 for never-seen tokens); in the sharded matcher these come
// from the per-shard frequency stripes, folded here into one global
// rarest-first order with the same deterministic tie-break as the batch
// engine (frequency ascending, then token ascending — probe is sorted by
// token string, so the probe index breaks frequency ties). keys is a
// caller-owned scratch buffer, reused so steady-state selection
// allocates nothing.
//
// Why one-sided probing is lossless for the shared-token path:
// index-side strings keep all their tokens in the inverted index, and
// the probe keeps its p = min(distinct, MaxErrors(T, L)+1) rarest
// tokens. For an indexed x with NSLD(q, x) <= T, every distinct token of
// q absent from x costs at least one edit, so
// |distinct(q) \ distinct(x)| <= SLD <= MaxErrors. If no prefix token of
// q occurred in x, the whole prefix would sit inside that difference —
// impossible for a full-length prefix (p = MaxErrors+1), and for a
// truncated one (p = distinct) the strings share no token at all, which
// the unfiltered shared-token probe would also miss. Under a finite
// max-frequency cutoff M the same argument applies to the kept tokens: a
// shared token with freq <= M outside the prefix forces every prefix
// token's frequency at most M, so the M-gate never hides the witnessing
// prefix token — provided the gate judges the same frequency observation
// the ordering used, which is why this pre-pass stamps its snapshot onto
// the probe (a concurrent writer could otherwise push a witness across
// the cutoff between selection and probing). Unlike the batch
// (two-sided) filter, no cross-insert order stability is needed: the
// argument holds for the snapshot frequencies, whatever earlier inserts
// saw.
//
// Why the same marks also bound the similar-token (segment) probe: a
// qualifying pair that shares any token is already emitted by the
// shared-token path above, and a qualifying pair that shares none has
// |distinct(q) \ distinct(x)| = |distinct(q)| <= SLD <= MaxErrors, so
// its prefix is untruncated — every distinct token, in particular every
// similar-witness carrier, is a prefix token (the exact bound is worked
// out in prefilter.SegmentPrefixLen). The one M-shaped corner: a pair
// whose every shared token sits beyond the cutoff is invisible to the
// exact path, and its fuzzy witness carrier u can then sit outside the
// prefix — but only with snapshot freq(u) >= freq(t*) > M for some
// shared prefix token t* (non-prefix tokens are at least as frequent as
// prefix ones). The segment probe therefore carves out tokens beyond the
// cutoff (see tokenIndex.candidates) and stays lossless under finite M.
func markPrefix(probe []probeToken, freqs []int32, t float64, ts token.TokenizedString, keys *[]int64) {
	// Stamp the snapshot onto the probe so the exact lookup's
	// max-frequency gate judges the same observation the ordering used
	// (see probeToken.freq).
	for i := range probe {
		probe[i].freq, probe[i].hasFreq = freqs[i], true
	}
	p := prefilter.PrefixLen(t, ts.AggregateLen(), len(probe))
	if p >= len(probe) {
		return // the prefix is the whole probe; nothing to skip
	}
	// Pack (freq, probe index) into one ordered key; sorting realizes the
	// global order with its tie-break, and the low half recovers the
	// index. slices.Sort keeps the hot path allocation-free.
	ks := (*keys)[:0]
	for i, f := range freqs {
		ks = append(ks, int64(f)<<32|int64(i))
	}
	*keys = ks
	slices.Sort(ks)
	for _, k := range ks[p:] {
		probe[k&0xffffffff].nonPrefix = true
	}
}
