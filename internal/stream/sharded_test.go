package stream

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/namegen"
)

// matchesEqual compares two match slices element-wise (both contracts
// promise id-sorted output).
func matchesEqual(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardedEquivalence is the property test of the satellite checklist:
// identical random corpora fed to the sequential Matcher and to
// ShardedMatchers of several shard counts must produce identical match
// sets at several thresholds, for both the exact and the approximate
// configurations.
func TestShardedEquivalence(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 41, NumNames: 300})
	for _, cfg := range []Options{
		{Threshold: 0.1},
		{Threshold: 0.2},
		{Threshold: 0.3, MaxTokenFreq: 5},
		{Threshold: 0.15, Greedy: true},
		{Threshold: 0.15, ExactTokensOnly: true},
	} {
		for _, shards := range []int{1, 3, 8} {
			t.Run(fmt.Sprintf("T=%v/M=%d/greedy=%v/exact=%v/shards=%d",
				cfg.Threshold, cfg.MaxTokenFreq, cfg.Greedy, cfg.ExactTokensOnly, shards),
				func(t *testing.T) {
					seq, err := NewMatcher(cfg)
					if err != nil {
						t.Fatal(err)
					}
					sh, err := NewShardedMatcher(cfg, shards)
					if err != nil {
						t.Fatal(err)
					}
					defer sh.Close()
					for i, n := range names {
						want := seq.Add(n)
						id, got := sh.Add(n)
						if id != i {
							t.Fatalf("name %d: sharded id = %d", i, id)
						}
						if !matchesEqual(want, got) {
							t.Fatalf("name %d %q: sequential %v != sharded %v", i, n, want, got)
						}
					}
					if sh.Len() != seq.Len() {
						t.Fatalf("Len: sharded %d != sequential %d", sh.Len(), seq.Len())
					}
				})
		}
	}
}

// TestShardedQueryMatchesSequential checks the read-only path against the
// sequential matcher on a built index.
func TestShardedQueryMatchesSequential(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 42, NumNames: 250})
	probes := namegen.Generate(namegen.Config{Seed: 43, NumNames: 60})
	const threshold = 0.2
	seq, _ := NewMatcher(Options{Threshold: threshold})
	sh, _ := NewShardedMatcher(Options{Threshold: threshold}, 4)
	defer sh.Close()
	for _, n := range names {
		seq.Add(n)
		sh.Add(n)
	}
	for _, p := range append(probes, names[:20]...) {
		want := seq.Query(p)
		got := sh.Query(p)
		if !matchesEqual(want, got) {
			t.Fatalf("query %q: sequential %v != sharded %v", p, want, got)
		}
	}
	if sh.Len() != len(names) {
		t.Fatalf("Query must not index: Len = %d, want %d", sh.Len(), len(names))
	}
}

// TestShardedAddAllEquivalence checks the batch path assigns dense ids and
// reproduces the serial match stream.
func TestShardedAddAllEquivalence(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 44, NumNames: 200})
	seq, _ := NewMatcher(Options{Threshold: 0.15})
	sh, _ := NewShardedMatcher(Options{Threshold: 0.15}, 5)
	defer sh.Close()
	_, seeded := sh.Add(names[0])
	if len(seeded) != 0 {
		t.Fatalf("first add matched: %v", seeded)
	}
	seq.Add(names[0])
	first, batch := sh.AddAll(names[1:])
	if first != 1 {
		t.Fatalf("batch first id = %d, want 1", first)
	}
	for i, n := range names[1:] {
		want := seq.Add(n)
		if !matchesEqual(want, batch[i]) {
			t.Fatalf("batch element %d %q: %v != %v", i, n, batch[i], want)
		}
	}
	if sh.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", sh.Len(), len(names))
	}
}

// TestShardedEmptyStrings mirrors the sequential empty-string semantics.
func TestShardedEmptyStrings(t *testing.T) {
	m, _ := NewShardedMatcher(Options{Threshold: 0.1}, 3)
	defer m.Close()
	if _, got := m.Add("..."); len(got) != 0 {
		t.Fatal("first empty string matches nothing")
	}
	if _, got := m.Add("---"); len(got) != 1 || got[0].ID != 0 || got[0].NSLD != 0 {
		t.Fatalf("second empty string must match the first: %v", got)
	}
	if got := m.Query("!!"); len(got) != 2 {
		t.Fatalf("empty query must match both empty strings: %v", got)
	}
	if _, got := m.Add("real name"); len(got) != 0 {
		t.Fatal("real name must not match empty strings")
	}
}

// TestShardedOptionValidation mirrors the sequential validation.
func TestShardedOptionValidation(t *testing.T) {
	if _, err := NewShardedMatcher(Options{Threshold: 1.0}, 2); err == nil {
		t.Fatal("threshold 1.0 must be rejected")
	}
	m, err := NewShardedMatcher(Options{Threshold: 0.1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Shards() < 1 {
		t.Fatalf("default shard count = %d", m.Shards())
	}
}

// TestShardedStressRace is the -race stress test of the acceptance
// criteria: >= 8 goroutines doing mixed Add/Query against one matcher.
// Every Add result must be consistent: matches only reference ids below
// the new id, and the matcher ends with exactly the added strings.
func TestShardedStressRace(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 45, NumNames: 400})
	m, err := NewShardedMatcher(Options{Threshold: 0.15}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	const writers, readers = 4, 6 // 10 goroutines of mixed traffic
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	perWriter := len(names) / writers
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, n := range names[w*perWriter : (w+1)*perWriter] {
				id, matches := m.Add(n)
				for _, mt := range matches {
					if mt.ID >= id {
						errs <- fmt.Errorf("add %d matched later id %d", id, mt.ID)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 200; i++ {
				n := names[rng.Intn(len(names))]
				matches := m.Query(n)
				// Any id a query can discover was fully indexed before the
				// query returned, so it is below the length observed after.
				upper := m.Len()
				for _, mt := range matches {
					if mt.ID >= upper {
						errs <- fmt.Errorf("query matched id %d beyond len %d", mt.ID, upper)
						return
					}
				}
				_ = m.Stats()
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := m.Len(); got != perWriter*writers {
		t.Fatalf("Len = %d, want %d", got, perWriter*writers)
	}
	// After the storm the index must still agree with a sequential rebuild.
	seq, _ := NewMatcher(Options{Threshold: 0.15})
	for _, n := range names[:perWriter*writers] {
		seq.Add(n)
	}
	probe := names[7]
	want := seq.Query(probe)
	got := m.Query(probe)
	if len(want) != len(got) {
		t.Fatalf("post-stress query: %d matches, sequential %d", len(got), len(want))
	}
}

// TestTombstoneSweepEquivalence: the amortized tombstone sweep is a
// pure occupancy reclaim — a matcher that sweeps aggressively must
// return byte-identical Add and Query results to one that never sweeps,
// through interleaved delete/re-add churn, while actually compacting
// dead posting entries.
func TestTombstoneSweepEquivalence(t *testing.T) {
	defer func(old int) { sweepMinDeletes = old }(sweepMinDeletes)
	names := namegen.Generate(namegen.Config{Seed: 91, NumNames: 160})
	probes := append(namegen.Generate(namegen.Config{Seed: 92, NumNames: 40}), names[:30]...)

	newMatcher := func(shards int) *ShardedMatcher {
		m, err := NewShardedMatcher(Options{Threshold: 0.2}, shards)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		return m
	}
	control := newMatcher(3)
	swept := newMatcher(3)

	// sweepMinDeletes is consulted at Delete time, so route every
	// operation through helpers that pin the control to never-sweep and
	// the subject to max(1, n/8)-delete sweeps.
	asControl := func(f func() error) error { sweepMinDeletes = 1 << 30; return f() }
	asSwept := func(f func() error) error { sweepMinDeletes = 1; return f() }

	step := func(op string, f func(m *ShardedMatcher) (int, []Match)) {
		wantID, want := f(control)
		gotID, got := f(swept)
		if gotID != wantID || !matchesEqual(want, got) {
			t.Fatalf("%s: swept (%d, %v) != control (%d, %v)", op, gotID, got, wantID, want)
		}
	}
	for _, n := range names {
		n := n
		step("add "+n, func(m *ShardedMatcher) (int, []Match) { return m.Add(n) })
	}
	// Delete-heavy churn: half the corpus dies, then part of it returns
	// under new ids (exercising lazy segment re-indexing of tokens the
	// sweep de-listed).
	for id := 0; id < len(names); id += 2 {
		if err := asControl(func() error { return control.Delete(id) }); err != nil {
			t.Fatal(err)
		}
		if err := asSwept(func() error { return swept.Delete(id) }); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range names[:30] {
		n := n
		step("re-add "+n, func(m *ShardedMatcher) (int, []Match) { return m.Add(n) })
	}
	for _, p := range probes {
		if want, got := control.Query(p), swept.Query(p); !matchesEqual(want, got) {
			t.Fatalf("query %q: swept %v != control %v", p, got, want)
		}
	}

	cs, ss := control.Stats(), swept.Stats()
	if cs.Sweeps != 0 {
		t.Fatalf("control swept %d times, want 0", cs.Sweeps)
	}
	if ss.Sweeps == 0 || ss.SweptEntries == 0 {
		t.Fatalf("subject never swept: %d sweeps, %d entries", ss.Sweeps, ss.SweptEntries)
	}
}
