package stream

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/namegen"
)

// TestSIMDEquivalenceStream: the sequential matcher returns
// byte-identical match sets with the vectorized batch path on and off,
// for both aligners, and the SIMD counters light up exactly when the
// kernel is live. This is the stream leg of the CI equivalence guard.
func TestSIMDEquivalenceStream(t *testing.T) {
	t.Logf("batch kernel available: %v", core.BatchKernelAvailable())
	names := namegen.Generate(namegen.Config{Seed: 43, NumNames: 220})
	for _, greedy := range []bool{false, true} {
		for _, th := range []float64{0.15, 0.3} {
			scalar, sst := streamAll(t, names, Options{
				Threshold: th, Greedy: greedy, DisableSIMD: true,
			})
			batched, bst := streamAll(t, names, Options{
				Threshold: th, Greedy: greedy,
			})
			if !reflect.DeepEqual(scalar, batched) {
				t.Fatalf("t=%.2f greedy=%v: batched match sets differ from scalar", th, greedy)
			}
			if sst.BatchedPairs != 0 || sst.SIMDKernels != 0 {
				t.Fatalf("t=%.2f greedy=%v: SIMD counters nonzero with DisableSIMD (%+v)",
					th, greedy, sst)
			}
			if bst.Verified != sst.Verified || bst.BudgetPruned != sst.BudgetPruned {
				t.Fatalf("t=%.2f greedy=%v: batching changed Verified/BudgetPruned (%d/%d vs %d/%d)",
					th, greedy, bst.Verified, bst.BudgetPruned, sst.Verified, sst.BudgetPruned)
			}
			if core.BatchKernelAvailable() {
				if bst.BatchedPairs == 0 || bst.SIMDKernels == 0 {
					t.Fatalf("t=%.2f greedy=%v: kernel live but SIMD counters idle (%+v)",
						th, greedy, bst)
				}
				if bst.SIMDLanes < bst.SIMDKernels || bst.SIMDLanes > 16*bst.SIMDKernels {
					t.Fatalf("t=%.2f greedy=%v: lane count %d incoherent for %d kernels",
						th, greedy, bst.SIMDLanes, bst.SIMDKernels)
				}
			} else if bst.BatchedPairs != 0 {
				t.Fatalf("t=%.2f greedy=%v: BatchedPairs=%d without a kernel",
					th, greedy, bst.BatchedPairs)
			}
		}
	}
}

// TestSIMDEquivalenceAddAll: batched insertion with end-of-batch
// verification (cross-probe staging, addall.go) returns per-element
// match sets identical to per-element scalar Add on both matcher
// implementations, across thresholds tight enough to ride the banded
// kernel and loose enough to ride the full one, with empty strings
// mixed in. This is the AddAll leg of the CI equivalence guard.
func TestSIMDEquivalenceAddAll(t *testing.T) {
	t.Logf("batch kernel available: %v", core.BatchKernelAvailable())
	names := namegen.Generate(namegen.Config{Seed: 45, NumNames: 200})
	// Splice in token-less strings so staged batches cover the
	// empty-probe path too.
	names[17], names[101], names[102] = "...", "--", "?!"
	for _, greedy := range []bool{false, true} {
		for _, th := range []float64{0.1, 0.3} {
			want, _ := streamAll(t, names, Options{
				Threshold: th, Greedy: greedy, DisableSIMD: true,
			})

			seq, err := NewMatcher(Options{Threshold: th, Greedy: greedy})
			if err != nil {
				t.Fatal(err)
			}
			// A leading single Add, then the rest in one staged batch:
			// the batch's lanes mix candidates of many probes.
			got := [][]Match{seq.Add(names[0])}
			first, rest := seq.AddAll(names[1:])
			if first != 1 {
				t.Fatalf("t=%.2f greedy=%v: sequential AddAll first = %d, want 1", th, greedy, first)
			}
			got = append(got, rest...)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("t=%.2f greedy=%v: sequential AddAll differs from scalar Add", th, greedy)
			}
			sst := seq.Stats()
			if core.BatchKernelAvailable() && sst.BatchedPairs == 0 {
				t.Fatalf("t=%.2f greedy=%v: kernel live but AddAll staged nothing (%+v)", th, greedy, sst)
			}

			for _, shards := range []int{1, 4} {
				sh, err := NewShardedMatcher(Options{Threshold: th, Greedy: greedy}, shards)
				if err != nil {
					t.Fatal(err)
				}
				firstSh, batch := sh.AddAll(names)
				st := sh.Stats()
				sh.Close()
				if firstSh != 0 {
					t.Fatalf("t=%.2f greedy=%v shards=%d: first = %d, want 0", th, greedy, shards, firstSh)
				}
				for i := range want {
					// Element-wise like TestShardedEquivalence: the sharded
					// empty-probe path returns an empty (not nil) slice.
					if !matchesEqual(want[i], batch[i]) {
						t.Fatalf("t=%.2f greedy=%v shards=%d element %d: sharded AddAll %v != scalar Add %v",
							th, greedy, shards, i, batch[i], want[i])
					}
				}
				if core.BatchKernelAvailable() {
					if st.BatchedPairs == 0 {
						t.Fatalf("t=%.2f greedy=%v shards=%d: kernel live but AddAll staged nothing (%+v)",
							th, greedy, shards, st)
					}
					if st.SIMDLanes < st.SIMDKernels || st.SIMDLanes > int64(core.BatchKernelWidth())*st.SIMDKernels {
						t.Fatalf("t=%.2f greedy=%v shards=%d: lane count %d incoherent for %d kernels",
							th, greedy, shards, st.SIMDLanes, st.SIMDKernels)
					}
				}
				if st.Verified != sst.Verified || st.BudgetPruned != sst.BudgetPruned {
					t.Fatalf("t=%.2f greedy=%v shards=%d: funnel counters drifted (%d/%d vs %d/%d)",
						th, greedy, shards, st.Verified, st.BudgetPruned, sst.Verified, sst.BudgetPruned)
				}
			}
		}
	}
}

// TestSIMDEquivalenceSharded: the sharded matcher agrees with the
// sequential scalar baseline at several shard counts with the batch path
// on, and its SIMD counters behave like the sequential ones.
func TestSIMDEquivalenceSharded(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 44, NumNames: 200})
	const th = 0.2
	want, _ := streamAll(t, names, Options{Threshold: th, DisableSIMD: true})
	for _, shards := range []int{1, 3, 8} {
		m, err := NewShardedMatcher(Options{Threshold: th}, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]Match, len(names))
		for i, n := range names {
			_, got[i] = m.Add(n)
		}
		st := m.Stats()
		m.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: batched sharded match sets differ from scalar sequential", shards)
		}
		if core.BatchKernelAvailable() {
			if st.BatchedPairs == 0 {
				t.Fatalf("shards=%d: kernel live but BatchedPairs=0", shards)
			}
			if st.SIMDLanes < st.SIMDKernels || st.SIMDLanes > 16*st.SIMDKernels {
				t.Fatalf("shards=%d: lane count %d incoherent for %d kernels",
					shards, st.SIMDLanes, st.SIMDKernels)
			}
		} else if st.BatchedPairs != 0 {
			t.Fatalf("shards=%d: BatchedPairs=%d without a kernel", shards, st.BatchedPairs)
		}
	}
}
