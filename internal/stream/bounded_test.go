package stream

import (
	"reflect"
	"testing"

	"repro/internal/namegen"
)

// streamAll adds every name to a fresh sequential matcher and returns the
// per-add match sets.
func streamAll(t *testing.T, names []string, opt Options) ([][]Match, MatcherStats) {
	t.Helper()
	m, err := NewMatcher(opt)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]Match, len(names))
	for i, n := range names {
		out[i] = m.Add(n)
	}
	return out, m.Stats()
}

// TestBoundedEquivalenceStream: the sequential matcher returns
// byte-identical match sets with bounded verification on and off, for
// both aligners, and populates BudgetPruned when on.
func TestBoundedEquivalenceStream(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 41, NumNames: 220})
	for _, greedy := range []bool{false, true} {
		for _, th := range []float64{0.15, 0.3} {
			exact, est := streamAll(t, names, Options{
				Threshold: th, Greedy: greedy, DisableBoundedVerify: true,
			})
			bounded, bst := streamAll(t, names, Options{
				Threshold: th, Greedy: greedy,
			})
			if !reflect.DeepEqual(exact, bounded) {
				t.Fatalf("t=%.2f greedy=%v: bounded match sets differ", th, greedy)
			}
			if est.BudgetPruned != 0 {
				t.Fatalf("t=%.2f greedy=%v: BudgetPruned=%d with bounding disabled",
					th, greedy, est.BudgetPruned)
			}
			if bst.BudgetPruned == 0 || bst.BudgetPruned > bst.Verified {
				t.Fatalf("t=%.2f greedy=%v: BudgetPruned=%d out of range (Verified=%d)",
					th, greedy, bst.BudgetPruned, bst.Verified)
			}
			if bst.Verified != est.Verified {
				t.Fatalf("t=%.2f greedy=%v: bounding changed Verified (%d vs %d)",
					th, greedy, bst.Verified, est.Verified)
			}
		}
	}
}

// TestBoundedEquivalenceSharded: the sharded matcher agrees with the
// sequential one under bounded verification at several shard counts, and
// its stats report the budget's work.
func TestBoundedEquivalenceSharded(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 42, NumNames: 200})
	const th = 0.2
	want, _ := streamAll(t, names, Options{Threshold: th})
	for _, shards := range []int{1, 3, 8} {
		m, err := NewShardedMatcher(Options{Threshold: th}, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]Match, len(names))
		for i, n := range names {
			_, got[i] = m.Add(n)
		}
		st := m.Stats()
		m.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: bounded sharded match sets differ from sequential", shards)
		}
		if st.BudgetPruned == 0 || st.BudgetPruned > st.Verified {
			t.Fatalf("shards=%d: BudgetPruned=%d out of range (Verified=%d)",
				shards, st.BudgetPruned, st.Verified)
		}
	}
}
