// Package stream provides an incremental NSLD matcher: tokenized strings
// arrive one at a time (account sign-ups, record inserts) and each
// arrival is matched against everything seen so far before being indexed
// itself. It is the online complement of the batch TSJ self-join — the
// same generate-filter-verify structure, maintained incrementally:
//
//   - a shared-token inverted index (token -> string ids) generates
//     candidates for the exact-token path;
//   - a Pass-Join style segment index over the token space generates
//     similar-token candidates (Theorem 3 carries the NSLD threshold down
//     to token NLD, exactly as in the batch join);
//   - candidates pass the Sec. III-E filters and are verified with exact
//     or greedy SLD.
//
// The matcher is exact under fuzzy matching + Hungarian alignment with
// unlimited token frequency: Add(i) returns precisely the earlier strings
// within the threshold of string i.
package stream

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/strdist"
	"repro/internal/token"
)

// Options configures the matcher.
type Options struct {
	// Threshold is the NSLD threshold T in [0, 1).
	Threshold float64
	// MaxTokenFreq is M: tokens seen in more than M strings stop
	// generating candidates (0 = unlimited). Matching remains exact for
	// pairs that also share a rarer token or a similar token.
	MaxTokenFreq int
	// Greedy switches verification to greedy-token-aligning.
	Greedy bool
	// ExactTokensOnly disables the similar-token path (the
	// exact-token-matching approximation).
	ExactTokensOnly bool
	// Tokenizer defaults to whitespace+punctuation.
	Tokenizer token.Tokenizer
}

// Match is one hit returned by Add.
type Match struct {
	// ID is the previously added string's sequence number.
	ID int
	// SLD/NSLD are the verified distances.
	SLD  int
	NSLD float64
}

// Matcher is the incremental joiner. Not safe for concurrent use.
type Matcher struct {
	opt     Options
	strings []token.TokenizedString

	// tokens interns distinct token strings.
	tokenIDs   map[string]int32
	tokenRunes [][]rune
	// postings maps token id -> ids of strings containing it.
	postings [][]int32
	// freq tracks per-token document frequency.
	freq []int32

	// segIndex maps (tokenLen, targetLen, segIdx, chunk) -> token ids,
	// mirroring the MassJoin candidate keys. Only index-side entries are
	// stored; probes generate substrings on the fly.
	segIndex map[segKey][]int32

	emptyIDs []int32 // token-less strings
	seen     []uint32
	gen      uint32
}

type segKey struct {
	tokenLen, targetLen int16
	seg                 int16
	chunk               string
}

// NewMatcher validates options and creates an empty matcher.
func NewMatcher(opt Options) (*Matcher, error) {
	if opt.Threshold < 0 || opt.Threshold >= 1 {
		return nil, errors.New("stream: threshold must be in [0, 1)")
	}
	if opt.Tokenizer == nil {
		opt.Tokenizer = token.WhitespaceAndPunct
	}
	return &Matcher{
		opt:      opt,
		tokenIDs: make(map[string]int32),
		segIndex: make(map[segKey][]int32),
	}, nil
}

// Len returns the number of indexed strings.
func (m *Matcher) Len() int { return len(m.strings) }

// Add matches a raw string against everything previously added, then
// indexes it, returning the matches sorted by id. The returned id of the
// new string is len-1 after the call.
func (m *Matcher) Add(s string) []Match {
	ts := m.opt.Tokenizer(s)
	id := int32(len(m.strings))

	matches := m.match(ts)

	// ---- Index the new string -------------------------------------------
	m.strings = append(m.strings, ts)
	m.seen = append(m.seen, 0)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
		return matches
	}
	distinct := make(map[string]struct{}, ts.Count())
	for _, t := range ts.Tokens {
		if _, dup := distinct[t]; dup {
			continue
		}
		distinct[t] = struct{}{}
		tid, ok := m.tokenIDs[t]
		if !ok {
			tid = int32(len(m.tokenRunes))
			m.tokenIDs[t] = tid
			r := []rune(t)
			m.tokenRunes = append(m.tokenRunes, r)
			m.postings = append(m.postings, nil)
			m.freq = append(m.freq, 0)
			if !m.opt.ExactTokensOnly {
				m.indexTokenSegments(tid, r)
			}
		}
		m.postings[tid] = append(m.postings[tid], id)
		m.freq[tid]++
	}
	return matches
}

// indexTokenSegments registers a new distinct token's segments for every
// compatible probe length (the MassJoin index side).
func (m *Matcher) indexTokenSegments(tid int32, r []rune) {
	l := len(r)
	maxLy := strdist.MaxLenWithin(m.opt.Threshold, l)
	minLy := strdist.MinLenWithin(m.opt.Threshold, l)
	for ly := minLy; ly <= maxLy; ly++ {
		tau := strdist.MaxLDWithin(m.opt.Threshold, l, ly)
		if tau < 0 {
			continue
		}
		for i, sg := range evenPartition(l, tau+1) {
			k := segKey{int16(l), int16(ly), int16(i), string(r[sg[0] : sg[0]+sg[1]])}
			m.segIndex[k] = append(m.segIndex[k], tid)
		}
	}
}

// match generates, filters and verifies candidates for ts against the
// current index.
func (m *Matcher) match(ts token.TokenizedString) []Match {
	m.gen++
	var out []Match
	if ts.Count() == 0 {
		for _, e := range m.emptyIDs {
			out = append(out, Match{ID: int(e)})
		}
		return out
	}

	consider := func(cand int32) {
		if m.seen[cand] == m.gen {
			return
		}
		m.seen[cand] = m.gen
		other := m.strings[cand]
		t := m.opt.Threshold
		if core.LengthPrune(ts.AggregateLen(), other.AggregateLen(), t) {
			return
		}
		if core.LowerBoundPrune(ts, other, t) {
			return
		}
		var sld int
		if m.opt.Greedy {
			sld = core.SLDGreedy(ts, other)
		} else {
			sld = core.SLD(ts, other)
		}
		if core.WithinNSLD(sld, ts.AggregateLen(), other.AggregateLen(), t) {
			out = append(out, Match{
				ID:   int(cand),
				SLD:  sld,
				NSLD: core.NSLDFromSLD(sld, ts.AggregateLen(), other.AggregateLen()),
			})
		}
	}

	distinct := make(map[string]struct{}, ts.Count())
	for _, t := range ts.Tokens {
		if _, dup := distinct[t]; dup {
			continue
		}
		distinct[t] = struct{}{}
		// Shared-token candidates.
		if tid, ok := m.tokenIDs[t]; ok {
			if m.opt.MaxTokenFreq <= 0 || int(m.freq[tid]) <= m.opt.MaxTokenFreq {
				for _, cand := range m.postings[tid] {
					consider(cand)
				}
			}
		}
		// Similar-token candidates: probe the segment index.
		if !m.opt.ExactTokensOnly {
			m.probeSimilar([]rune(t), consider)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// probeSimilar finds indexed tokens with NLD <= T to the probe token and
// feeds their postings to consider.
func (m *Matcher) probeSimilar(r []rune, consider func(int32)) {
	ly := len(r)
	minLs := strdist.MinLenWithin(m.opt.Threshold, ly)
	maxLs := strdist.MaxLenWithin(m.opt.Threshold, ly)
	checked := make(map[int32]struct{})
	for ls := minLs; ls <= maxLs; ls++ {
		tau := strdist.MaxLDWithin(m.opt.Threshold, ls, ly)
		if tau < 0 {
			continue
		}
		for i, sg := range evenPartition(ls, tau+1) {
			lo, hi := substringWindow(ls, ly, tau, i, sg)
			for q := lo; q <= hi; q++ {
				k := segKey{int16(ls), int16(ly), int16(i), string(r[q : q+sg[1]])}
				for _, tid := range m.segIndex[k] {
					if _, done := checked[tid]; done {
						continue
					}
					checked[tid] = struct{}{}
					if m.opt.MaxTokenFreq > 0 && int(m.freq[tid]) > m.opt.MaxTokenFreq {
						continue
					}
					other := m.tokenRunes[tid]
					if !m.tokenNLDWithin(other, r, ls, ly, tau) {
						continue
					}
					for _, cand := range m.postings[tid] {
						consider(cand)
					}
				}
			}
		}
	}
}

// tokenNLDWithin verifies NLD(x, y) <= T with a banded Levenshtein
// computation (cheap for short tokens).
func (m *Matcher) tokenNLDWithin(x, y []rune, lx, ly, tau int) bool {
	d, ok := strdist.LevenshteinBounded(x, y, tau)
	if !ok {
		return false
	}
	return strdist.WithinNLD(d, lx, ly, m.opt.Threshold)
}

// evenPartition mirrors passjoin.EvenPartition as [start, len] pairs
// (duplicated locally to keep this package's hot path allocation-free and
// dependency-light).
func evenPartition(l, parts int) [][2]int {
	segs := make([][2]int, parts)
	base, rem := l/parts, l%parts
	pos := 0
	for i := 0; i < parts; i++ {
		ln := base
		if i >= parts-rem {
			ln++
		}
		segs[i] = [2]int{pos, ln}
		pos += ln
	}
	return segs
}

// substringWindow mirrors passjoin.SubstringWindow (multi-match-aware).
func substringWindow(ls, lr, tau, i int, sg [2]int) (lo, hi int) {
	delta := lr - ls
	p := sg[0]
	lo = p - i
	if v := p + delta - (tau - i); v > lo {
		lo = v
	}
	hi = p + i
	if v := p + delta + (tau - i); v < hi {
		hi = v
	}
	if lo < 0 {
		lo = 0
	}
	if max := lr - sg[1]; hi > max {
		hi = max
	}
	return lo, hi
}
