// Package stream provides an incremental NSLD matcher: tokenized strings
// arrive one at a time (account sign-ups, record inserts) and each
// arrival is matched against everything seen so far before being indexed
// itself. It is the online complement of the batch TSJ self-join — the
// same generate-filter-verify structure, maintained incrementally:
//
//   - a shared-token inverted index (token -> string ids) generates
//     candidates for the exact-token path;
//   - a Pass-Join style segment index over the token space generates
//     similar-token candidates (Theorem 3 carries the NSLD threshold down
//     to token NLD, exactly as in the batch join);
//   - candidates pass the Sec. III-E filters and are verified with exact
//     or greedy SLD.
//
// The matcher is exact under fuzzy matching + Hungarian alignment with
// unlimited token frequency: Add(i) returns precisely the earlier strings
// within the threshold of string i.
//
// Two implementations share the index machinery (tokenIndex in index.go):
// Matcher is the single-threaded original; ShardedMatcher (sharded.go)
// partitions the index by token hash across N shards and serves
// concurrent Add/Query traffic through a persistent worker pool.
package stream

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/token"
)

// Options configures the matcher.
type Options struct {
	// Threshold is the NSLD threshold T in [0, 1).
	Threshold float64
	// MaxTokenFreq is M: tokens seen in more than M strings stop
	// generating candidates (0 = unlimited). Matching remains exact for
	// pairs that also share a rarer token or a similar token.
	MaxTokenFreq int
	// Greedy switches verification to greedy-token-aligning.
	Greedy bool
	// ExactTokensOnly disables the similar-token path (the
	// exact-token-matching approximation).
	ExactTokensOnly bool
	// DisableBoundedVerify switches off threshold-aware verification:
	// by default each surviving candidate is verified under the SLD
	// budget the threshold implies (core.Verifier) and abandoned as soon
	// as any lower bound exceeds it. Matches are identical either way;
	// disabling is for ablation and equivalence testing only.
	DisableBoundedVerify bool
	// DisablePrefixFilter switches off threshold-aware candidate pruning:
	// by default the shared-token inverted index is probed only with the
	// arriving string's threshold-derived prefix — its MaxErrors(T, L)+1
	// rarest distinct tokens under the current document frequencies —
	// which is lossless (see markPrefix). Matches are identical either
	// way; disabling is for ablation and equivalence testing only.
	DisablePrefixFilter bool
	// DisableSIMD switches off the vectorized batched verification path:
	// by default (on hardware and builds where core.BatchKernelAvailable)
	// each probe's filter-surviving candidates are verified as one batch
	// whose token-distance cells run a vector-lane-width at a time.
	// Matches are identical either way; disabling is for ablation,
	// equivalence testing, and ruling out kernel issues in the field.
	DisableSIMD bool
	// DisableSegmentPrefixFilter switches off threshold-aware pruning of
	// the similar-token path: by default the segment index is probed only
	// with the arriving string's threshold-derived prefix tokens (plus,
	// under a finite MaxTokenFreq, tokens beyond the cutoff), and — when
	// MaxTokenFreq is unlimited — only prefix tokens are segment-indexed
	// at all. Lossless (see markPrefix and prefilter.SegmentPrefixLen);
	// matches are identical either way, and disabling is for ablation
	// and equivalence testing only.
	DisableSegmentPrefixFilter bool
	// Tokenizer defaults to whitespace+punctuation.
	Tokenizer token.Tokenizer
}

// validate normalizes the options shared by both matcher implementations.
func (opt *Options) validate() error {
	if opt.Threshold < 0 || opt.Threshold >= 1 {
		return errors.New("stream: threshold must be in [0, 1)")
	}
	if opt.Tokenizer == nil {
		opt.Tokenizer = token.WhitespaceAndPunct
	}
	return nil
}

// Match is one hit returned by Add.
type Match struct {
	// ID is the previously added string's sequence number.
	ID int
	// SLD/NSLD are the verified distances.
	SLD  int
	NSLD float64
}

// MatcherStats is a snapshot of a sequential Matcher's verification
// counters.
type MatcherStats struct {
	// Strings is the number of indexed strings.
	Strings int
	// Verified counts candidate pairs reaching verification.
	Verified int64
	// BudgetPruned counts verifications rejected early by the
	// threshold-derived SLD budget (0 when DisableBoundedVerify).
	BudgetPruned int64
	// PrefixPruned counts posting entries the prefix filter skipped at
	// probe time — shared-token candidates the unfiltered probe would
	// have generated (0 when DisablePrefixFilter).
	PrefixPruned int64
	// SegPrefixPruned counts probe tokens whose segment-index probe was
	// skipped by the segment prefix filter (0 when
	// DisableSegmentPrefixFilter).
	SegPrefixPruned int64
	// SegKeysProbed / SegTokensChecked / SegTokensSimilar are the
	// similar-token probe funnel: segment-window fingerprint lookups,
	// distinct indexed tokens reaching the token-NLD check, and tokens
	// within the token threshold (whose postings became candidates).
	SegKeysProbed    int64
	SegTokensChecked int64
	SegTokensSimilar int64
	// BatchedPairs counts candidate pairs verified through the batched
	// vector path (0 when DisableSIMD, when bounded verification is off,
	// or when the kernel is unavailable on this hardware/build).
	BatchedPairs int64
	// SIMDKernels / SIMDLanes count vector-kernel invocations and the
	// occupied lanes they carried; SIMDLanes/SIMDKernels (out of 16) is
	// the lane-fill efficiency.
	SIMDKernels int64
	SIMDLanes   int64
	// BatchScalarCells counts token-pair cells inside the batched path
	// that fell back to the scalar DP (oversized or non-BMP tokens).
	BatchScalarCells int64
	// CandGenWall / VerifyWall accumulate the wall time spent generating
	// candidates (index probes, merge, dedup) and verifying them.
	CandGenWall time.Duration
	VerifyWall  time.Duration
}

// Matcher is the incremental joiner. Not safe for concurrent use; see
// ShardedMatcher for the concurrent variant.
type Matcher struct {
	opt     Options
	strings []token.TokenizedString
	ix      *tokenIndex
	bver    batchVerifier // reusable verification engine + batch scratch (single-threaded)
	scratch *probeScratch // reusable segment-probe scratch (single-threaded)

	emptyIDs []int32 // token-less strings
	seen     []uint32
	gen      uint32

	// candBuf / freqBuf / keyBuf are reused per call so candidate
	// collection and prefix selection stay allocation-free at steady
	// state.
	candBuf []int32
	freqBuf []int32
	keyBuf  []int64

	verified     int64
	budgetPruned int64
	batchCtr     core.BatchCounters
	probeCtr     probeCounters
	candGenWall  time.Duration
	verifyWall   time.Duration
}

// NewMatcher validates options and creates an empty matcher.
func NewMatcher(opt Options) (*Matcher, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	m := &Matcher{opt: opt, ix: newTokenIndex(opt), scratch: newProbeScratch(opt.Threshold)}
	m.bver.ver.Greedy = opt.Greedy
	m.bver.ver.DisableBatch = opt.DisableSIMD
	return m, nil
}

// Stats snapshots the matcher's verification counters.
func (m *Matcher) Stats() MatcherStats {
	return MatcherStats{
		Strings:          len(m.strings),
		Verified:         m.verified,
		BudgetPruned:     m.budgetPruned,
		PrefixPruned:     m.probeCtr.prefixPruned,
		SegPrefixPruned:  m.probeCtr.segPrefixPruned,
		SegKeysProbed:    m.probeCtr.segKeysProbed,
		SegTokensChecked: m.probeCtr.segTokensChecked,
		SegTokensSimilar: m.probeCtr.segTokensSimilar,
		BatchedPairs:     m.batchCtr.Batched,
		SIMDKernels:      m.batchCtr.Kernels,
		SIMDLanes:        m.batchCtr.Lanes,
		BatchScalarCells: m.batchCtr.ScalarCells,
		CandGenWall:      m.candGenWall,
		VerifyWall:       m.verifyWall,
	}
}

// Len returns the number of indexed strings.
func (m *Matcher) Len() int { return len(m.strings) }

// Add matches a raw string against everything previously added, then
// indexes it, returning the matches sorted by id. The returned id of the
// new string is len-1 after the call.
func (m *Matcher) Add(s string) []Match {
	ts := m.opt.Tokenizer(s)
	id := int32(len(m.strings))
	probe := distinctProbe(ts)

	matches := m.match(ts, probe)

	// ---- Index the new string -------------------------------------------
	m.strings = append(m.strings, ts)
	m.seen = append(m.seen, 0)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
		return matches
	}
	m.ix.insert(probe, id)
	return matches
}

// Query matches a raw string against everything previously added without
// indexing it. Like Add, it is not safe for concurrent use.
func (m *Matcher) Query(s string) []Match {
	ts := m.opt.Tokenizer(s)
	return m.match(ts, distinctProbe(ts))
}

// match generates, filters and verifies candidates for ts (with probe its
// distinct tokens) against the current index. Generation and verification
// are separate passes so their wall times are tracked independently.
func (m *Matcher) match(ts token.TokenizedString, probe []probeToken) []Match {
	var out []Match
	if ts.Count() == 0 {
		for _, e := range m.emptyIDs {
			out = append(out, Match{ID: int(e)})
		}
		return out
	}

	cands := m.genCandidates(ts, probe)

	// ---- Verify ---------------------------------------------------------
	verifyStart := time.Now()
	var verified, pruned int64
	out, verified, pruned = m.bver.verifyCands(ts, m.strings, nil, cands, &m.opt, &m.batchCtr, out)
	m.verified += verified
	m.budgetPruned += pruned
	m.verifyWall += time.Since(verifyStart)
	sortMatches(out)
	return out
}

// genCandidates probes the index with ts's (prefix-marked) distinct
// tokens and returns the deduplicated candidate ids. The returned
// slice is the matcher's reusable buffer: valid until the next call.
// The caller has ruled out the empty probe.
func (m *Matcher) genCandidates(ts token.TokenizedString, probe []probeToken) []int32 {
	m.gen++
	start := time.Now()
	defer func() { m.candGenWall += time.Since(start) }()

	// The prefix marks serve both filters, so they are computed when
	// either is on (probeToken.nonPrefix records the raw fact; the index
	// consults its own filter flags).
	if !m.opt.DisablePrefixFilter || !m.opt.DisableSegmentPrefixFilter {
		m.freqBuf = m.freqBuf[:0]
		for _, p := range probe {
			m.freqBuf = append(m.freqBuf, m.ix.freqOf(p.s))
		}
		markPrefix(probe, m.freqBuf, m.opt.Threshold, ts, &m.keyBuf)
	}
	m.candBuf = m.candBuf[:0]
	m.ix.candidates(probe, m.scratch, &m.probeCtr, func(cand int32) {
		if m.seen[cand] == m.gen {
			return
		}
		m.seen[cand] = m.gen
		m.candBuf = append(m.candBuf, cand)
	})
	return m.candBuf
}
