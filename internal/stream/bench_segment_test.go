package stream

// Segment-probe benchmarks: the similar-token candidate-generation path
// in isolation — steady-state probes of a fully built index, with the
// segment prefix filter on (the default) and off. CI runs these with
// -benchtime=1x as a smoke test; -benchmem documents the 0 allocs/op
// steady state of the fingerprinted probe loop.

import (
	"fmt"
	"testing"

	"repro/internal/namegen"
)

// segmentProbeBench builds a matcher over the bench corpus and
// pre-computes marked probes for a sample of its names, so the benchmark
// loop exercises exactly the candidates() probe path (exact lookups +
// segment probing) with warm per-worker scratch.
func segmentProbeBench(b *testing.B, th float64, disable bool) {
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 2000})
	m, err := NewMatcher(Options{Threshold: th, DisableSegmentPrefixFilter: disable})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range names {
		m.Add(n)
	}
	probes := make([][]probeToken, 0, 64)
	for i := 0; i < 64; i++ {
		ts := m.opt.Tokenizer(names[(i*31)%len(names)])
		probe := distinctProbe(ts)
		freqs := make([]int32, len(probe))
		for j, p := range probe {
			freqs[j] = m.ix.freqOf(p.s)
		}
		var keys []int64
		markPrefix(probe, freqs, th, ts, &keys)
		probes = append(probes, probe)
	}
	var pc probeCounters
	var emitted int64
	emit := func(int32) { emitted++ }
	// Warm the scratch (visited sizing, plan memo, hash arrays).
	for _, p := range probes {
		m.ix.candidates(p, m.scratch, &pc, emit)
	}
	pc, emitted = probeCounters{}, 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ix.candidates(probes[i%len(probes)], m.scratch, &pc, emit)
	}
	b.ReportMetric(float64(pc.segKeysProbed)/float64(b.N), "seg-keys/op")
	b.ReportMetric(float64(pc.segTokensChecked)/float64(b.N), "seg-checked/op")
	b.ReportMetric(float64(emitted)/float64(b.N), "emitted/op")
}

// BenchmarkSegmentProbePrefix measures the candidate probe with the
// segment prefix filter on (the default configuration). The acceptance
// contract: 0 allocs/op at steady state.
func BenchmarkSegmentProbePrefix(b *testing.B) {
	for _, th := range []float64{0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("T=%.2f", th), func(b *testing.B) {
			segmentProbeBench(b, th, false)
		})
	}
}

// BenchmarkSegmentProbeNoPrefix is the ablation: every probe token
// probes the segment index and every token is segment-indexed.
func BenchmarkSegmentProbeNoPrefix(b *testing.B) {
	for _, th := range []float64{0.05, 0.1, 0.2} {
		b.Run(fmt.Sprintf("T=%.2f", th), func(b *testing.B) {
			segmentProbeBench(b, th, true)
		})
	}
}
