package stream

import (
	"reflect"
	"testing"
	"time"
)

// TestShardedStatsMerge pins the aggregation used by the cluster
// coordinator: every counter sums, wall times sum, and the per-shard
// token balance concatenates.
func TestShardedStatsMerge(t *testing.T) {
	a := ShardedStats{
		Strings: 3, Shards: 2, Adds: 3, Applied: 1, Queries: 7, Verified: 11,
		BudgetPruned: 2, PrefixPruned: 4, SegPrefixPruned: 1,
		SegKeysProbed: 9, SegTokensChecked: 8, SegTokensSimilar: 5,
		BatchedPairs: 6, SIMDKernels: 2, SIMDLanes: 30, BatchScalarCells: 3,
		CandGenWall: 2 * time.Millisecond, VerifyWall: 3 * time.Millisecond,
		TokensPerShard: []int{4, 2}, Sweeps: 1, SweptEntries: 10,
	}
	b := ShardedStats{
		Strings: 2, Shards: 2, Adds: 2, Applied: 2, Queries: 1, Verified: 4,
		BudgetPruned: 1, PrefixPruned: 1, SegPrefixPruned: 2,
		SegKeysProbed: 3, SegTokensChecked: 2, SegTokensSimilar: 1,
		BatchedPairs: 2, SIMDKernels: 1, SIMDLanes: 12, BatchScalarCells: 1,
		CandGenWall: time.Millisecond, VerifyWall: time.Millisecond,
		TokensPerShard: []int{1, 5}, Sweeps: 2, SweptEntries: 4,
	}
	want := ShardedStats{
		Strings: 5, Shards: 4, Adds: 5, Applied: 3, Queries: 8, Verified: 15,
		BudgetPruned: 3, PrefixPruned: 5, SegPrefixPruned: 3,
		SegKeysProbed: 12, SegTokensChecked: 10, SegTokensSimilar: 6,
		BatchedPairs: 8, SIMDKernels: 3, SIMDLanes: 42, BatchScalarCells: 4,
		CandGenWall: 3 * time.Millisecond, VerifyWall: 4 * time.Millisecond,
		TokensPerShard: []int{4, 2, 1, 5}, Sweeps: 3, SweptEntries: 14,
	}
	got := a
	got.Merge(b)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Merge:\n got %+v\nwant %+v", got, want)
	}
	// Merging a zero snapshot is the identity.
	id := a
	id.Merge(ShardedStats{})
	if !reflect.DeepEqual(id, a) {
		t.Fatalf("Merge(zero) changed the snapshot:\n got %+v\nwant %+v", id, a)
	}
}
