package stream

import (
	"os"
	"testing"

	"repro/internal/corpus"
	"repro/internal/namegen"
	"repro/internal/token"
)

// TestRestartEquivalence is the warm-restart property test of the
// persistence acceptance criteria: kill a corpus-backed sharded matcher
// (gracefully and by crash), reopen the corpus — snapshot + WAL tail
// replay — rebuild the matcher from it, and every Query must return
// byte-identical results to a matcher that never restarted. A snapshot
// is taken mid-stream so the recovery path exercises snapshot + WAL
// tail, not just one of them.
func TestRestartEquivalence(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 71, NumNames: 220})
	probes := append(namegen.Generate(namegen.Config{Seed: 72, NumNames: 50}), names[:25]...)
	const threshold = 0.2

	for _, graceful := range []bool{true, false} {
		// Control: never restarted, never persisted.
		control, err := NewShardedMatcher(Options{Threshold: threshold}, 3)
		if err != nil {
			t.Fatal(err)
		}
		defer control.Close()

		dir := t.TempDir()
		pc, err := corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewShardedFromCorpus(Options{Threshold: threshold}, 4, pc)
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range names {
			wantID, want := control.Add(n)
			id, got, err := m.AddDurable(n)
			if err != nil {
				t.Fatal(err)
			}
			if id != wantID || !matchesEqual(want, got) {
				t.Fatalf("add %d %q: durable (%d, %v) != control (%d, %v)", i, n, id, got, wantID, want)
			}
			if i == len(names)/2 {
				if err := pc.Snapshot(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Kill. Graceful closes flush and release; the crash variant
		// abandons the handles (SyncEvery=1 made every record durable).
		m.Close()
		if graceful {
			if err := pc.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			// A real crash releases the flock with the process; the
			// in-process simulation must do it explicitly.
			pc.ReleaseLockForTest()
		}

		// Warm restart: snapshot + WAL replay, index-only rebuild.
		pc2, err := corpus.Open(dir, corpus.Options{})
		if err != nil {
			t.Fatal(err)
		}
		m2, err := NewShardedFromCorpus(Options{Threshold: threshold}, 2, pc2)
		if err != nil {
			t.Fatal(err)
		}
		if m2.Len() != control.Len() {
			t.Fatalf("graceful=%v: restarted Len = %d, want %d", graceful, m2.Len(), control.Len())
		}
		for _, p := range probes {
			want := control.Query(p)
			got := m2.Query(p)
			if !matchesEqual(want, got) {
				t.Fatalf("graceful=%v: query %q: restarted %v != control %v", graceful, p, got, want)
			}
		}
		// The restarted matcher keeps accepting durable writes that match
		// the control stream.
		extra := namegen.Generate(namegen.Config{Seed: 73, NumNames: 20})
		for _, n := range extra {
			wantID, want := control.Add(n)
			id, got, err := m2.AddDurable(n)
			if err != nil {
				t.Fatal(err)
			}
			if id != wantID || !matchesEqual(want, got) {
				t.Fatalf("graceful=%v: post-restart add %q diverged", graceful, n)
			}
		}
		m2.Close()
		pc2.Close()
	}
}

// TestRestartEquivalenceTornTail: a crash that tears the last WAL frame
// loses exactly that suffix — the reopened matcher behaves like the
// control matcher fed everything but the torn records.
func TestRestartEquivalenceTornTail(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 74, NumNames: 120})
	const threshold = 0.2

	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewShardedFromCorpus(Options{Threshold: threshold}, 3, pc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, _, err := m.AddDurable(n); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	// Crash: no corpus Close (the flock dies with the simulated process);
	// then the tail of the log is torn mid-frame.
	pc.ReleaseLockForTest()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var walFile string
	for _, e := range ents {
		if len(e.Name()) > 4 && e.Name()[:4] == "wal-" {
			walFile = dir + string(os.PathSeparator) + e.Name()
		}
	}
	fi, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	pc2, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	m2, err := NewShardedFromCorpus(Options{Threshold: threshold}, 3, pc2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != len(names)-1 {
		t.Fatalf("torn tail: Len = %d, want %d", m2.Len(), len(names)-1)
	}
	control, err := NewShardedMatcher(Options{Threshold: threshold}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer control.Close()
	for _, n := range names[:len(names)-1] {
		control.Add(n)
	}
	for _, p := range names[:30] {
		if want, got := control.Query(p), m2.Query(p); !matchesEqual(want, got) {
			t.Fatalf("torn tail query %q: %v != %v", p, got, want)
		}
	}
}

// TestCorpusBackedDeletes: tombstoned corpus ids keep their slot in the
// warm-loaded id space but never match, and a token-less live string
// still does.
func TestCorpusBackedDeletes(t *testing.T) {
	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewShardedFromCorpus(Options{Threshold: 0.2}, 2, pc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"john smith", "jon smith", "...", "ann lee"} {
		if _, _, err := m.AddDurable(n); err != nil {
			t.Fatal(err)
		}
	}
	m.Close()
	if err := pc.Delete(0); err != nil { // tombstone "john smith"
		t.Fatal(err)
	}
	pc.Close()

	pc2, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	m2, err := NewShardedFromCorpus(Options{Threshold: 0.2}, 2, pc2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (tombstone keeps its slot)", m2.Len())
	}
	got := m2.Query("jon smith")
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("query must match only the live variant: %v", got)
	}
	if got := m2.Query("---"); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("empty query must match the live empty string only: %v", got)
	}
}

// TestLiveDelete: ShardedMatcher.Delete tombstones a string in the live
// index immediately (no restart needed), durably when corpus-backed, and
// the restarted matcher agrees.
func TestLiveDelete(t *testing.T) {
	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewShardedFromCorpus(Options{Threshold: 0.2}, 2, pc)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"john smith", "jon smith", "...", "ann lee"} {
		if _, _, err := m.AddDurable(n); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Query("jon smith"); len(got) != 2 {
		t.Fatalf("pre-delete query: %v", got)
	}
	if err := m.Delete(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(0); err == nil {
		t.Fatal("double delete must fail")
	}
	if err := m.Delete(99); err == nil {
		t.Fatal("out-of-range delete must fail")
	}
	if got := m.Query("jon smith"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("live delete not effective: %v", got)
	}
	if err := m.Delete(2); err != nil { // the empty string
		t.Fatal(err)
	}
	if got := m.Query("---"); len(got) != 0 {
		t.Fatalf("deleted empty string still matches: %v", got)
	}
	m.Close()
	pc.Close()

	// The deletes were WAL-durable: a warm restart agrees exactly.
	pc2, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc2.Close()
	m2, err := NewShardedFromCorpus(Options{Threshold: 0.2}, 3, pc2)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Query("jon smith"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("restarted delete state differs: %v", got)
	}

	// Detached matchers delete in-memory only, with the same semantics.
	mm, err := NewShardedMatcher(Options{Threshold: 0.2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	mm.Add("john smith")
	mm.Add("jon smith")
	if err := mm.Delete(1); err != nil {
		t.Fatal(err)
	}
	if got := mm.Query("john smith"); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("in-memory delete: %v", got)
	}
}

// TestCorpusAlignmentGuard: writes that bypass the matcher are detected
// instead of silently corrupting the id space.
func TestCorpusAlignmentGuard(t *testing.T) {
	pc, err := corpus.Open(t.TempDir(), corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	m, err := NewShardedFromCorpus(Options{Threshold: 0.2}, 2, pc)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, _, err := m.AddDurable("a name"); err != nil {
		t.Fatal(err)
	}
	if _, err := pc.Add("bypassing writer"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.AddDurable("another name"); err == nil {
		t.Fatal("desynchronized corpus must fail the durable add")
	}
}

// TestParallelWarmLoadEquivalence: the parallel restart load (probe
// computation chunked across workers, insertion one goroutine per
// shard) must build an index indistinguishable from the serial
// single-pass load — same query answers, same per-shard token balance —
// including with tombstones and empty strings in the corpus, at any
// shard count.
func TestParallelWarmLoadEquivalence(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 81, NumNames: 240})
	probes := append(namegen.Generate(namegen.Config{Seed: 82, NumNames: 40}), names[:20]...)
	const threshold = 0.2

	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := pc.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pc.Add(""); err != nil { // empty string occupies a slot
		t.Fatal(err)
	}
	for _, id := range []int{3, 57, 120, 239} {
		if err := pc.Delete(token.StringID(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}

	defer func(old int) { parallelWarmLoadMin = old }(parallelWarmLoadMin)
	for _, shards := range []int{2, 4, 7} {
		// Serial reference load of the same corpus.
		parallelWarmLoadMin = 1 << 30
		pcSerial, err := corpus.Open(dir, corpus.Options{DisableSync: true})
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewShardedFromCorpus(Options{Threshold: threshold}, shards, pcSerial)
		if err != nil {
			t.Fatal(err)
		}
		pcSerial.Close()
		pcSerial.ReleaseLockForTest()

		// Parallel load, forced on despite the small corpus.
		parallelWarmLoadMin = 1
		pcPar, err := corpus.Open(dir, corpus.Options{DisableSync: true})
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewShardedFromCorpus(Options{Threshold: threshold}, shards, pcPar)
		if err != nil {
			t.Fatal(err)
		}

		if par.Len() != serial.Len() {
			t.Fatalf("shards=%d: parallel Len %d != serial %d", shards, par.Len(), serial.Len())
		}
		ss, ps := serial.Stats(), par.Stats()
		for i := range ss.TokensPerShard {
			if ss.TokensPerShard[i] != ps.TokensPerShard[i] {
				t.Fatalf("shards=%d: shard %d token count %d != serial %d",
					shards, i, ps.TokensPerShard[i], ss.TokensPerShard[i])
			}
		}
		for _, p := range probes {
			want := serial.Query(p)
			got := par.Query(p)
			if !matchesEqual(want, got) {
				t.Fatalf("shards=%d: query %q: parallel %v != serial %v", shards, p, got, want)
			}
		}
		// The parallel-loaded matcher keeps serving durable writes.
		if _, _, err := par.AddDurable("fresh after warm load"); err != nil {
			t.Fatal(err)
		}
		serial.Close()
		par.Close()
		pcPar.Close()
	}
}
