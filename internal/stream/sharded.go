package stream

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/token"
)

// ShardedMatcher is the concurrent incremental joiner: the inverted and
// segment indexes are partitioned across N shards by token hash (the
// MassJoin/PASS-JOIN partitioning carried over to the online path), and a
// persistent worker pool fans each arrival's candidate generation out to
// the shards and verifies the merged candidates in parallel.
//
// Semantics are exactly those of the sequential Matcher: driven serially,
// Add returns the identical match set (sorted by id) for any shard count.
// Concurrently, writers are serialized with each other — ids are assigned
// in arrival order — while Query (match-without-insert) runs lock-free
// against writers except for brief per-shard read locks, so mixed
// Add/Query traffic scales with shards.
//
// Close releases the worker pool; the matcher must not be used after.
type ShardedMatcher struct {
	opt    Options
	shards []*shard
	pool   *workerPool

	// corpus, when non-nil, is the durable backing store: Add/AddAll
	// append to its WAL before indexing (see NewShardedFromCorpus).
	corpus *corpus.Corpus

	// addMu serializes writers so ids are dense and match results are
	// deterministic; it is never held by pool workers.
	addMu sync.Mutex
	// deletesSinceSweep counts tombstones since the last posting sweep
	// (guarded by addMu); once it crosses the amortization threshold the
	// next delete pays for compacting dead ids out of every shard.
	deletesSinceSweep int
	// mu guards the strings, dead and emptyIDs slice headers. strings
	// elements are immutable once appended and dead/emptyIDs are replaced
	// copy-on-write by Delete, so readers may retain snapshots.
	mu       sync.RWMutex
	strings  []token.TokenizedString
	dead     []bool
	emptyIDs []int32

	// verPool lends one verification engine (scratch matrices, Hungarian
	// state) to each verifying worker, and scratchPool one segment-probe
	// scratch (visited stamps, rolling hashes, partition memo) to each
	// probing worker, so the hot path stays allocation-free without
	// sharing unsynchronized scratch.
	verPool     sync.Pool
	scratchPool sync.Pool

	adds             atomic.Int64
	applied          atomic.Int64
	queries          atomic.Int64
	verified         atomic.Int64
	budgetPruned     atomic.Int64
	batchedPairs     atomic.Int64
	simdKernels      atomic.Int64
	simdLanes        atomic.Int64
	batchScalarCells atomic.Int64
	prefixPruned     atomic.Int64
	segPrefixPruned  atomic.Int64
	segKeysProbed    atomic.Int64
	segTokensChecked atomic.Int64
	segTokensSimilar atomic.Int64
	candGenWall      atomic.Int64 // nanoseconds
	verifyWall       atomic.Int64 // nanoseconds
	sweeps           atomic.Int64
	sweptEntries     atomic.Int64
	closed           sync.Once
}

// shard is one index partition and its reader/writer guard.
type shard struct {
	mu sync.RWMutex
	ix *tokenIndex
}

// ShardedStats is a snapshot of a ShardedMatcher's state and traffic.
type ShardedStats struct {
	// Strings is the number of indexed strings.
	Strings int
	// Shards is the partition count.
	Shards int
	// Adds and Queries count the operations served so far. Applied
	// counts replicated records installed through ApplyShipped (a
	// standby's ingest traffic, which never generates matches).
	Adds, Applied, Queries int64
	// Verified counts candidate pairs that reached verification.
	Verified int64
	// BudgetPruned counts verifications rejected early by the
	// threshold-derived SLD budget (0 when DisableBoundedVerify).
	BudgetPruned int64
	// PrefixPruned counts posting entries the prefix filter skipped at
	// probe time — shared-token candidates the unfiltered probe would
	// have generated (0 when DisablePrefixFilter).
	PrefixPruned int64
	// SegPrefixPruned counts probe tokens whose segment-index probe was
	// skipped by the segment prefix filter (0 when
	// DisableSegmentPrefixFilter).
	SegPrefixPruned int64
	// SegKeysProbed / SegTokensChecked / SegTokensSimilar are the
	// similar-token probe funnel: segment-window fingerprint lookups,
	// distinct indexed tokens reaching the token-NLD check, and tokens
	// within the token threshold (whose postings became candidates).
	SegKeysProbed    int64
	SegTokensChecked int64
	SegTokensSimilar int64
	// BatchedPairs counts candidate pairs verified through the batched
	// vector path (0 when DisableSIMD, when bounded verification is off,
	// or when the kernel is unavailable on this hardware/build).
	BatchedPairs int64
	// SIMDKernels / SIMDLanes count vector-kernel invocations and the
	// occupied lanes they carried; SIMDLanes/SIMDKernels (out of 16) is
	// the lane-fill efficiency.
	SIMDKernels int64
	SIMDLanes   int64
	// BatchScalarCells counts token-pair cells inside the batched path
	// that fell back to the scalar DP (oversized or non-BMP tokens).
	BatchScalarCells int64
	// CandGenWall / VerifyWall accumulate the wall time spent generating
	// candidates (shard fan-out, merge, dedup) and verifying them.
	CandGenWall time.Duration
	VerifyWall  time.Duration
	// TokensPerShard is the distinct-token count of each partition — a
	// direct view of the hash partitioning's balance.
	TokensPerShard []int
	// Sweeps counts amortized tombstone sweeps; SweptEntries the dead
	// posting entries they compacted away.
	Sweeps       int64
	SweptEntries int64
}

// Merge folds another snapshot into this one — the aggregation a
// cluster coordinator performs over its workers' stats. Counters and
// wall times sum; Shards sums too (the cluster's total partition
// count); TokensPerShard concatenates in argument order so per-shard
// balance stays inspectable across workers.
func (s *ShardedStats) Merge(o ShardedStats) {
	s.Strings += o.Strings
	s.Shards += o.Shards
	s.Adds += o.Adds
	s.Applied += o.Applied
	s.Queries += o.Queries
	s.Verified += o.Verified
	s.BudgetPruned += o.BudgetPruned
	s.PrefixPruned += o.PrefixPruned
	s.SegPrefixPruned += o.SegPrefixPruned
	s.SegKeysProbed += o.SegKeysProbed
	s.SegTokensChecked += o.SegTokensChecked
	s.SegTokensSimilar += o.SegTokensSimilar
	s.BatchedPairs += o.BatchedPairs
	s.SIMDKernels += o.SIMDKernels
	s.SIMDLanes += o.SIMDLanes
	s.BatchScalarCells += o.BatchScalarCells
	s.CandGenWall += o.CandGenWall
	s.VerifyWall += o.VerifyWall
	s.TokensPerShard = append(s.TokensPerShard, o.TokensPerShard...)
	s.Sweeps += o.Sweeps
	s.SweptEntries += o.SweptEntries
}

// NewShardedMatcher creates an empty concurrent matcher with the given
// shard count (<= 0 means GOMAXPROCS). The worker pool holds one
// goroutine per shard, so the shard count is also the parallelism knob.
func NewShardedMatcher(opt Options, shards int) (*ShardedMatcher, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	m := &ShardedMatcher{
		opt:    opt,
		shards: make([]*shard, shards),
		pool:   newWorkerPool(shards),
	}
	m.verPool.New = func() any {
		return &batchVerifier{ver: core.Verifier{Greedy: opt.Greedy, DisableBatch: opt.DisableSIMD}}
	}
	m.scratchPool.New = func() any {
		return newProbeScratch(opt.Threshold)
	}
	for i := range m.shards {
		m.shards[i] = &shard{ix: newTokenIndex(opt)}
	}
	return m, nil
}

// Shards returns the partition count.
func (m *ShardedMatcher) Shards() int { return len(m.shards) }

// Len returns the number of indexed strings.
func (m *ShardedMatcher) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.strings)
}

// Stats snapshots the matcher.
func (m *ShardedMatcher) Stats() ShardedStats {
	st := ShardedStats{
		Shards:           len(m.shards),
		Adds:             m.adds.Load(),
		Applied:          m.applied.Load(),
		Queries:          m.queries.Load(),
		Verified:         m.verified.Load(),
		BudgetPruned:     m.budgetPruned.Load(),
		PrefixPruned:     m.prefixPruned.Load(),
		SegPrefixPruned:  m.segPrefixPruned.Load(),
		SegKeysProbed:    m.segKeysProbed.Load(),
		SegTokensChecked: m.segTokensChecked.Load(),
		SegTokensSimilar: m.segTokensSimilar.Load(),
		BatchedPairs:     m.batchedPairs.Load(),
		SIMDKernels:      m.simdKernels.Load(),
		SIMDLanes:        m.simdLanes.Load(),
		BatchScalarCells: m.batchScalarCells.Load(),
		CandGenWall:      time.Duration(m.candGenWall.Load()),
		VerifyWall:       time.Duration(m.verifyWall.Load()),
		TokensPerShard:   make([]int, len(m.shards)),
		Sweeps:           m.sweeps.Load(),
		SweptEntries:     m.sweptEntries.Load(),
	}
	m.mu.RLock()
	st.Strings = len(m.strings)
	m.mu.RUnlock()
	for i, sh := range m.shards {
		sh.mu.RLock()
		st.TokensPerShard[i] = sh.ix.tokens()
		sh.mu.RUnlock()
	}
	return st
}

// Close stops the worker pool. The matcher must not be used afterwards.
func (m *ShardedMatcher) Close() {
	m.closed.Do(m.pool.close)
}

// Add matches s against everything previously added, then indexes it,
// returning the new string's id and the matches sorted by id. Safe for
// concurrent use; concurrent Adds are serialized in arrival order. On a
// corpus-backed matcher the record is WAL-appended first; a persistence
// failure returns (-1, nil) — callers that need the error use AddDurable.
func (m *ShardedMatcher) Add(s string) (int, []Match) {
	id, matches, err := m.AddDurable(s)
	if err != nil {
		return -1, nil
	}
	return id, matches
}

// AddAll adds a batch atomically with respect to other writers: the batch
// occupies the dense id range [first, first+len(names)). Element i of the
// returned slice holds the matches of names[i] — including matches to
// earlier names of the same batch. On a corpus-backed matcher the whole
// batch is WAL-appended (one group-commit fsync) before any element is
// indexed; a persistence failure returns (-1, nil) — callers that need
// the error use AddAllDurable.
func (m *ShardedMatcher) AddAll(names []string) (first int, matches [][]Match) {
	first, matches, err := m.AddAllDurable(names)
	if err != nil {
		return -1, nil
	}
	return first, matches
}

// Query matches s against everything added so far without indexing it.
// Safe for concurrent use with Adds and other Queries; it observes every
// string whose Add completed before the call, and may observe a string
// being added concurrently.
func (m *ShardedMatcher) Query(s string) []Match {
	m.queries.Add(1)
	ts := m.opt.Tokenizer(s)
	return m.match(ts, distinctProbe(ts))
}

// addTokenized runs one insertion; the caller holds addMu.
func (m *ShardedMatcher) addTokenized(ts token.TokenizedString) (int, []Match) {
	m.adds.Add(1)
	probe := distinctProbe(ts)
	matches := m.match(ts, probe)

	// ---- Index the new string -------------------------------------------
	// Strings first, postings second: a concurrent Query that discovers id
	// in a shard's postings is then guaranteed to find strings[id].
	m.mu.Lock()
	id := int32(len(m.strings))
	m.strings = append(m.strings, ts)
	m.dead = append(m.dead, false)
	if ts.Count() == 0 {
		m.emptyIDs = append(m.emptyIDs, id)
	}
	m.mu.Unlock()
	if ts.Count() == 0 {
		return int(id), matches
	}
	m.insertProbe(probe, id, nil, true)
	return int(id), matches
}

// insertProbe registers id under the probe tokens on their owning
// shards, grouping the tokens so each shard is visited (and, with lock,
// write-locked) exactly once. per is optional caller-owned grouping
// scratch with one bucket per shard, reused across calls by the
// warm-load path; nil allocates locally. lock is false only while the
// matcher is still private to its constructor.
func (m *ShardedMatcher) insertProbe(probe []probeToken, id int32, per [][]probeToken, lock bool) {
	if len(m.shards) == 1 {
		sh := m.shards[0]
		if lock {
			sh.mu.Lock()
			defer sh.mu.Unlock()
		}
		sh.ix.insert(probe, id)
		return
	}
	if per == nil {
		per = make([][]probeToken, len(m.shards))
	}
	for _, p := range probe {
		si := shardOf(p.s, len(m.shards))
		per[si] = append(per[si], p)
	}
	for si, ps := range per {
		if len(ps) == 0 {
			continue
		}
		sh := m.shards[si]
		if lock {
			sh.mu.Lock()
		}
		sh.ix.insert(ps, id)
		if lock {
			sh.mu.Unlock()
		}
		per[si] = ps[:0]
	}
}

// match generates candidates on every shard through the worker pool,
// merges and deduplicates them, and verifies in parallel. probe holds
// ts's distinct tokens (computed once by the caller, who may reuse it for
// indexing). Matches are returned sorted by id.
func (m *ShardedMatcher) match(ts token.TokenizedString, probe []probeToken) []Match {
	if ts.Count() == 0 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		out := make([]Match, len(m.emptyIDs))
		for i, e := range m.emptyIDs {
			out[i] = Match{ID: int(e)}
		}
		return out
	}

	cands := m.genCandidates(ts, probe)
	if len(cands) == 0 {
		return nil
	}

	// Snapshot the strings (and the tombstone mask) after generation:
	// every candidate id was appended to strings before it reached any
	// posting list, and dead always has the same length.
	m.mu.RLock()
	strs := m.strings
	dead := m.dead
	m.mu.RUnlock()

	// ---- Verify ----------------------------------------------------------
	// Candidates are ascending and chunks are contiguous, so concatenating
	// per-chunk results in chunk order keeps the output sorted by id.
	verifyStart := time.Now()
	defer func() { m.verifyWall.Add(int64(time.Since(verifyStart))) }()
	chunks := verifyChunkCount(len(cands), len(m.shards))
	if chunks <= 1 {
		return m.verifyChunk(ts, strs, dead, cands)
	}
	var wg sync.WaitGroup
	parts := make([][]Match, chunks)
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo := c * len(cands) / chunks
		hi := (c + 1) * len(cands) / chunks
		part, chunk := &parts[c], cands[lo:hi]
		m.pool.submit(func() {
			defer wg.Done()
			*part = m.verifyChunk(ts, strs, dead, chunk)
		})
	}
	wg.Wait()
	var out []Match
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// verifyChunkCount splits n ascending candidates into at most shards
// verification chunks of at least minPerChunk candidates each.
func verifyChunkCount(n, shards int) int {
	const minPerChunk = 16
	chunks := n / minPerChunk
	if chunks > shards {
		chunks = shards
	}
	return chunks
}

// genCandidates fans the (prefix-marked) probe out to every shard,
// merges, deduplicates and sorts the resulting candidate ids, and folds
// the probe counters into the matcher's stats. The caller has ruled out
// the empty probe.
func (m *ShardedMatcher) genCandidates(ts token.TokenizedString, probe []probeToken) []int32 {
	// ---- Generate: fan out to the shards --------------------------------
	genStart := time.Now()
	defer func() { m.candGenWall.Add(int64(time.Since(genStart))) }()
	m.markProbe(ts, probe)

	// Every shard then resolves the (prefix-marked) probe: exact-token
	// lookups miss on non-owner shards, and the segment index must be
	// probed everywhere because a similar token may live on any shard. A
	// single shard skips the pool round-trip.
	var wg sync.WaitGroup
	var cands []int32
	var pctr probeCounters
	if len(m.shards) == 1 {
		sh := m.shards[0]
		sc := m.scratchPool.Get().(*probeScratch)
		sh.mu.RLock()
		sh.ix.candidates(probe, sc, &pctr, func(cand int32) { cands = append(cands, cand) })
		sh.mu.RUnlock()
		m.scratchPool.Put(sc)
	} else {
		perShard := make([][]int32, len(m.shards))
		perCtr := make([]probeCounters, len(m.shards))
		wg.Add(len(m.shards))
		for i := range m.shards {
			sh, out, ctr := m.shards[i], &perShard[i], &perCtr[i]
			m.pool.submit(func() {
				defer wg.Done()
				var local []int32
				sc := m.scratchPool.Get().(*probeScratch)
				sh.mu.RLock()
				sh.ix.candidates(probe, sc, ctr, func(cand int32) { local = append(local, cand) })
				sh.mu.RUnlock()
				m.scratchPool.Put(sc)
				*out = local
			})
		}
		wg.Wait()
		total := 0
		for _, r := range perShard {
			total += len(r)
		}
		cands = make([]int32, 0, total)
		for _, r := range perShard {
			cands = append(cands, r...)
		}
		for i := range perCtr {
			pctr.add(&perCtr[i])
		}
		// segPrefixPruned is a per-probe-token count and every shard skips
		// the same pruned tokens; count them once, not once per shard.
		pctr.segPrefixPruned = perCtr[0].segPrefixPruned
	}
	if pctr.prefixPruned > 0 {
		m.prefixPruned.Add(pctr.prefixPruned)
	}
	if pctr.segPrefixPruned > 0 {
		m.segPrefixPruned.Add(pctr.segPrefixPruned)
	}
	if pctr.segKeysProbed > 0 {
		m.segKeysProbed.Add(pctr.segKeysProbed)
	}
	if pctr.segTokensChecked > 0 {
		m.segTokensChecked.Add(pctr.segTokensChecked)
	}
	if pctr.segTokensSimilar > 0 {
		m.segTokensSimilar.Add(pctr.segTokensSimilar)
	}

	// ---- Merge and deduplicate ------------------------------------------
	if len(cands) == 0 {
		return nil
	}
	slices.Sort(cands)
	cands = slices.Compact(cands)
	return cands
}

// markProbe prices the probe against the live per-shard frequencies and
// flags the tokens the prefix filters may skip at lookup and storage
// time. The prefix filter folds the per-shard frequency stripes into
// the one global rarest-first order: each probe token's true document
// frequency lives on its owning shard (tokens intern only where they
// hash), so one read-locked visit per owning shard prices the whole
// probe, and markPrefix flags the tokens the exact lookup may skip.
// No-op when both filters are disabled.
func (m *ShardedMatcher) markProbe(ts token.TokenizedString, probe []probeToken) {
	if m.opt.DisablePrefixFilter && m.opt.DisableSegmentPrefixFilter {
		return
	}
	freqs := make([]int32, len(probe))
	if len(m.shards) == 1 {
		sh := m.shards[0]
		sh.mu.RLock()
		for i, p := range probe {
			freqs[i] = sh.ix.freqOf(p.s)
		}
		sh.mu.RUnlock()
	} else {
		byShard := make([][]int, len(m.shards))
		for i, p := range probe {
			si := shardOf(p.s, len(m.shards))
			byShard[si] = append(byShard[si], i)
		}
		for si, idxs := range byShard {
			if len(idxs) == 0 {
				continue
			}
			sh := m.shards[si]
			sh.mu.RLock()
			for _, i := range idxs {
				freqs[i] = sh.ix.freqOf(probe[i].s)
			}
			sh.mu.RUnlock()
		}
	}
	// keys is per-call: Query runs concurrently, so the scratch
	// cannot live on the matcher without defeating its lock-freedom.
	var keys []int64
	markPrefix(probe, freqs, m.opt.Threshold, ts, &keys)
}

// verifyChunk filters and verifies one ascending run of candidate ids
// with a pooled batch-verification engine: the chunk's filter survivors
// go through one batched verify against the shared probe, and the stats
// counters touch the atomics once per chunk, not once per pair.
// Tombstoned ids (dead) are skipped — their posting entries linger until
// a restart.
func (m *ShardedMatcher) verifyChunk(ts token.TokenizedString, strs []token.TokenizedString, dead []bool, cands []int32) []Match {
	bv := m.verPool.Get().(*batchVerifier)
	var ctr core.BatchCounters
	out, verified, budgetPruned := bv.verifyCands(ts, strs, dead, cands, &m.opt, &ctr, nil)
	m.verPool.Put(bv)
	if verified > 0 {
		m.verified.Add(verified)
	}
	if budgetPruned > 0 {
		m.budgetPruned.Add(budgetPruned)
	}
	if ctr.Batched > 0 {
		m.batchedPairs.Add(ctr.Batched)
	}
	if ctr.Kernels > 0 {
		m.simdKernels.Add(ctr.Kernels)
		m.simdLanes.Add(ctr.Lanes)
	}
	if ctr.ScalarCells > 0 {
		m.batchScalarCells.Add(ctr.ScalarCells)
	}
	return out
}

// shardOf assigns a token to a shard by FNV-1a hash.
func shardOf(s string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return int(h % uint32(n))
}

// workerPool is a fixed set of persistent goroutines executing submitted
// closures; it exists so per-operation fan-out does not pay goroutine
// startup on the hot path.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(f func()) { p.jobs <- f }

func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
