package stream

import (
	"repro/internal/core"
	"repro/internal/token"
)

// batchVerifier couples a verification engine with the candidate-group
// scratch of the batched verify path: all of one probe's
// filter-surviving candidates are handed to core.Verifier.VerifyBatch in
// one call, which buckets their tokens by length and sweeps the
// Levenshtein cells a vector-lane-width at a time (falling back to the
// scalar engine, with identical verdicts, when the kernel is
// unavailable or batching is disabled). Like the Verifier it wraps, a
// batchVerifier is single-threaded scratch: one per worker.
type batchVerifier struct {
	ver core.Verifier
	ids []int32
	ys  []*token.TokenizedString
	res []core.BatchResult
}

// verifyCands filters one probe's candidates (the Sec. III-E length and
// lower-bound prunes, plus the optional tombstone mask) and verifies the
// survivors against ts, appending matches to out in candidate order.
// Returns the extended slice plus the verified and budget-pruned counts
// for the caller's stats; kernel-level counters accumulate into ctr.
// Match sets are identical to per-pair verification.
func (b *batchVerifier) verifyCands(ts token.TokenizedString, strs []token.TokenizedString, dead []bool, cands []int32, opt *Options, ctr *core.BatchCounters, out []Match) ([]Match, int64, int64) {
	if opt.DisableBoundedVerify {
		// Exact unbounded verification has no batch form (the kernel is
		// budget-capped by construction); keep the per-pair pipeline.
		var verified, pruned int64
		for _, cand := range cands {
			if dead != nil && dead[cand] {
				continue
			}
			mt, ok, oc := verifyPair(&b.ver, ts, strs[cand], cand, opt)
			if oc.verified {
				verified++
			}
			if oc.budgetPruned {
				pruned++
			}
			if ok {
				out = append(out, mt)
			}
		}
		return out, verified, pruned
	}

	t := opt.Threshold
	la := ts.AggregateLen()
	b.ids = b.ids[:0]
	b.ys = b.ys[:0]
	for _, cand := range cands {
		if dead != nil && dead[cand] {
			continue
		}
		other := &strs[cand]
		if core.LengthPrune(la, other.AggregateLen(), t) {
			continue
		}
		if core.LowerBoundPrune(ts, *other, t) {
			continue
		}
		b.ids = append(b.ids, cand)
		b.ys = append(b.ys, other)
	}
	if len(b.ids) == 0 {
		return out, 0, 0
	}
	if cap(b.res) < len(b.ids) {
		b.res = make([]core.BatchResult, len(b.ids), 2*len(b.ids))
	}
	b.res = b.res[:len(b.ids)]
	b.ver.VerifyBatch(ts, b.ys, t, b.res, ctr)
	var pruned int64
	for i, r := range b.res {
		if r.Pruned {
			pruned++
		}
		if r.Within {
			out = append(out, Match{
				ID:   int(b.ids[i]),
				SLD:  r.SLD,
				NSLD: core.NSLDFromSLD(r.SLD, la, b.ys[i].AggregateLen()),
			})
		}
	}
	return out, int64(len(b.ids)), pruned
}
