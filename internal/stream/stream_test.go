package stream

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/namegen"
	"repro/internal/token"
)

// bruteMatches computes the expected matches of names[i] against
// names[:i].
func bruteMatches(names []string, i int, t float64) map[int]int {
	tok := token.WhitespaceAndPunct
	want := make(map[int]int)
	ti := tok(names[i])
	for j := 0; j < i; j++ {
		tj := tok(names[j])
		sld := core.SLD(ti, tj)
		if core.WithinNSLD(sld, ti.AggregateLen(), tj.AggregateLen(), t) {
			want[j] = sld
		}
	}
	return want
}

func TestMatcherExactAgainstBruteForce(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 31, NumNames: 250})
	const threshold = 0.15
	m, err := NewMatcher(Options{Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		got := m.Add(n)
		want := bruteMatches(names, i, threshold)
		if len(got) != len(want) {
			t.Fatalf("name %d %q: got %d matches, want %d (%v vs %v)",
				i, n, len(got), len(want), got, want)
		}
		for _, g := range got {
			if sld, ok := want[g.ID]; !ok || sld != g.SLD {
				t.Fatalf("name %d: wrong match %+v (want SLD %d, present %v)", i, g, sld, ok)
			}
		}
	}
	if m.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", m.Len(), len(names))
	}
}

func TestMatcherCatchesAdversarialEdits(t *testing.T) {
	m, err := NewMatcher(Options{Threshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Add("barak obama"); len(got) != 0 {
		t.Fatalf("first add must match nothing: %v", got)
	}
	// Token edit, no shared token with the original surname.
	if got := m.Add("barak obamma"); len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("edited name must match the original: %v", got)
	}
	// Fully edited: every token changed by one character. It matches the
	// singly-edited variant (SLD 1, NSLD 2/24) but not the original
	// (SLD 2, NSLD 4/24 ≈ 0.167 > 0.12) — no token is shared with either,
	// so only the similar-token path can find it.
	if got := m.Add("barrak obamma"); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("doubly edited name must match the close variant: %v", got)
	}
	if got := m.Add("john smith"); len(got) != 0 {
		t.Fatalf("unrelated name must match nothing: %v", got)
	}
}

func TestMatcherExactTokensOnlyIsSubset(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 32, NumNames: 200})
	full, _ := NewMatcher(Options{Threshold: 0.15})
	cheap, _ := NewMatcher(Options{Threshold: 0.15, ExactTokensOnly: true})
	for _, n := range names {
		fm := full.Add(n)
		cm := cheap.Add(n)
		fset := make(map[int]bool, len(fm))
		for _, g := range fm {
			fset[g.ID] = true
		}
		for _, g := range cm {
			if !fset[g.ID] {
				t.Fatalf("exact-tokens-only invented match %+v for %q", g, n)
			}
		}
	}
}

func TestMatcherGreedyNeverFalsePositive(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 33, NumNames: 200})
	const threshold = 0.2
	m, _ := NewMatcher(Options{Threshold: threshold, Greedy: true})
	tok := token.WhitespaceAndPunct
	for i, n := range names {
		for _, g := range m.Add(n) {
			exact := core.SLD(tok(names[i]), tok(names[g.ID]))
			ti, tj := tok(names[i]), tok(names[g.ID])
			if !core.WithinNSLD(exact, ti.AggregateLen(), tj.AggregateLen(), threshold) {
				t.Fatalf("greedy matcher emitted false positive %q ~ %q", n, names[g.ID])
			}
		}
	}
}

func TestMatcherEmptyStrings(t *testing.T) {
	m, _ := NewMatcher(Options{Threshold: 0.1})
	if got := m.Add("..."); len(got) != 0 {
		t.Fatal("first empty string matches nothing")
	}
	if got := m.Add("---"); len(got) != 1 || got[0].ID != 0 || got[0].NSLD != 0 {
		t.Fatalf("second empty string must match the first: %v", got)
	}
	if got := m.Add("real name"); len(got) != 0 {
		t.Fatal("real name must not match empty strings")
	}
}

func TestMatcherMaxTokenFreq(t *testing.T) {
	m, _ := NewMatcher(Options{Threshold: 0.3, MaxTokenFreq: 2, ExactTokensOnly: true})
	m.Add("john a")
	m.Add("john b")
	m.Add("john c") // freq(john) now exceeds 2 after this add
	got := m.Add("john d")
	if len(got) != 0 {
		t.Fatalf("hot token must stop generating candidates: %v", got)
	}
}

func TestMatcherOptionValidation(t *testing.T) {
	if _, err := NewMatcher(Options{Threshold: 1.0}); err == nil {
		t.Fatal("threshold 1.0 must be rejected")
	}
	if _, err := NewMatcher(Options{Threshold: -0.1}); err == nil {
		t.Fatal("negative threshold must be rejected")
	}
}

func TestMatcherDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	var names []string
	base := "alpha beta gamma"
	names = append(names, base)
	for i := 0; i < 20; i++ {
		r := []rune(base)
		r[rng.Intn(len(r))] = 'x'
		names = append(names, string(r))
	}
	m, _ := NewMatcher(Options{Threshold: 0.2})
	for _, n := range names {
		got := m.Add(n)
		for i := 1; i < len(got); i++ {
			if got[i].ID <= got[i-1].ID {
				t.Fatal("matches must be sorted by id")
			}
		}
	}
}
