package stream

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/namegen"
)

// TestPrefixEquivalenceStream: the sequential matcher returns identical
// match sets with the prefix filter on and off, at several thresholds,
// under both token-matching modes, and the filter actually skips posting
// entries.
func TestPrefixEquivalenceStream(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 51, NumNames: 220})
	prunedSomewhere := false
	for _, exactOnly := range []bool{false, true} {
		for _, th := range []float64{0.1, 0.2, 0.35} {
			plain, pst := streamAll(t, names, Options{
				Threshold: th, ExactTokensOnly: exactOnly, DisablePrefixFilter: true,
			})
			filtered, fst := streamAll(t, names, Options{
				Threshold: th, ExactTokensOnly: exactOnly,
			})
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("t=%.2f exactOnly=%v: prefix-filtered match sets differ", th, exactOnly)
			}
			if pst.PrefixPruned != 0 {
				t.Fatalf("t=%.2f: PrefixPruned=%d with the filter disabled", th, pst.PrefixPruned)
			}
			if fst.PrefixPruned > 0 {
				prunedSomewhere = true
			}
			if fst.Verified > pst.Verified {
				t.Fatalf("t=%.2f exactOnly=%v: filtering increased verifications (%d vs %d)",
					th, exactOnly, fst.Verified, pst.Verified)
			}
		}
	}
	// Lax thresholds can legitimately cover the whole probe (the prefix is
	// the full distinct set); the tight end of the sweep must prune.
	if !prunedSomewhere {
		t.Fatal("PrefixPruned never populated across the sweep")
	}
}

// TestPrefixEquivalenceStreamMaxFreq: the filter composes with the
// max-token-frequency cutoff — prefix selection over the live frequencies
// never hides a pair the unfiltered cutoff matcher would report.
func TestPrefixEquivalenceStreamMaxFreq(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 52, NumNames: 220})
	for _, maxFreq := range []int{2, 5, 20} {
		plain, _ := streamAll(t, names, Options{
			Threshold: 0.25, MaxTokenFreq: maxFreq, DisablePrefixFilter: true,
		})
		filtered, _ := streamAll(t, names, Options{
			Threshold: 0.25, MaxTokenFreq: maxFreq,
		})
		if !reflect.DeepEqual(plain, filtered) {
			t.Fatalf("M=%d: prefix-filtered match sets differ under the cutoff", maxFreq)
		}
	}
}

// TestPrefixEquivalenceSharded: the sharded matcher with the prefix
// filter agrees with the sequential unfiltered matcher at several shard
// counts — the per-shard frequency stripes must fold into the same global
// order the sequential matcher sees.
func TestPrefixEquivalenceSharded(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 53, NumNames: 200})
	for _, th := range []float64{0.1, 0.2, 0.3} {
		want, _ := streamAll(t, names, Options{Threshold: th, DisablePrefixFilter: true})
		for _, shards := range []int{1, 3, 8} {
			m, err := NewShardedMatcher(Options{Threshold: th}, shards)
			if err != nil {
				t.Fatal(err)
			}
			got := make([][]Match, len(names))
			for i, n := range names {
				_, got[i] = m.Add(n)
			}
			st := m.Stats()
			m.Close()
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("t=%.2f shards=%d: prefix-filtered sharded match sets differ from unfiltered sequential",
					th, shards)
			}
			// The tight end of the sweep must prune (lax thresholds can
			// legitimately keep the whole probe as the prefix).
			if th <= 0.1 && st.PrefixPruned == 0 {
				t.Fatalf("t=%.2f shards=%d: PrefixPruned never populated", th, shards)
			}
		}
	}
}

// TestPrefixEquivalenceShardedTies: adversarial frequency ties — every
// token appears the same number of times, so prefix selection rests
// entirely on the deterministic tie-break, which must agree between the
// sequential matcher and every shard count (the stripes report the same
// frequencies, and token order breaks the ties identically).
func TestPrefixEquivalenceShardedTies(t *testing.T) {
	words := []string{
		"alpha", "bravo", "carol", "delta", "echos", "fotox",
		"golfy", "hotel", "india", "julie", "kilos", "limas",
	}
	var names []string
	n := len(words)
	for rot := 0; rot < 2; rot++ { // every token ends at the same frequency
		for i := 0; i < n; i++ {
			names = append(names, fmt.Sprintf("%s %s %s",
				words[i], words[(i+1+rot)%n], words[(i+3+rot)%n]))
		}
	}
	const th = 0.3
	want, _ := streamAll(t, names, Options{Threshold: th, DisablePrefixFilter: true})
	seq, _ := streamAll(t, names, Options{Threshold: th})
	if !reflect.DeepEqual(want, seq) {
		t.Fatal("tie-broken sequential prefix matcher differs from unfiltered")
	}
	for _, shards := range []int{2, 5} {
		m, err := NewShardedMatcher(Options{Threshold: th}, shards)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]Match, len(names))
		for i, nm := range names {
			_, got[i] = m.Add(nm)
		}
		m.Close()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("shards=%d: tie-broken sharded prefix matcher differs", shards)
		}
	}
}

// TestPrefixWallTimeCounters: the candidate-generation and verify wall
// clocks accumulate on both matcher implementations.
func TestPrefixWallTimeCounters(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 54, NumNames: 120})
	_, st := streamAll(t, names, Options{Threshold: 0.2})
	if st.CandGenWall <= 0 || st.VerifyWall <= 0 {
		t.Fatalf("sequential wall counters not populated: gen=%v verify=%v",
			st.CandGenWall, st.VerifyWall)
	}
	m, err := NewShardedMatcher(Options{Threshold: 0.2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		m.Add(n)
	}
	sst := m.Stats()
	m.Close()
	if sst.CandGenWall <= 0 || sst.VerifyWall <= 0 {
		t.Fatalf("sharded wall counters not populated: gen=%v verify=%v",
			sst.CandGenWall, sst.VerifyWall)
	}
}
