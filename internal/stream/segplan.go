package stream

import (
	"repro/internal/strdist"
)

// maxSegLen bounds the token/probe lengths the segment index covers; the
// bucket key packs both lengths into one uint32. Tokens at or beyond it
// (64Ki runes) are outside any realistic workload and simply skip the
// similar-token path.
const maxSegLen = 1 << 16

// bucketKey packs (tokenLen, probeLen) into the segBuckets key.
func bucketKey(ls, ly int) uint32 {
	return uint32(ls)<<16 | uint32(ly)
}

// segHashBase is the polynomial base of the segment fingerprints (the
// FNV-64 prime; any large odd constant works — collisions are verified
// against the actual runes before use).
const segHashBase = 0x100000001b3

// hashSeg fingerprints one explicit segment (the index side): the
// polynomial Σ r[k]·base^(n-1-k) over uint64 wraparound arithmetic,
// matching probeScratch.windowHash.
func hashSeg(r []rune) uint64 {
	var h uint64
	for _, c := range r {
		h = h*segHashBase + uint64(c)
	}
	return h
}

// fpKey folds the segment ordinal into a content fingerprint so equal
// chunks indexed under different segment positions occupy distinct keys.
func fpKey(h uint64, seg int) uint64 {
	return (h ^ uint64(seg)*0x9e3779b97f4a7c15) * 0xff51afd7ed558ccd
}

// runesEqual reports a == b for equal-length slices (the caller
// guarantees the lengths match).
func runesEqual(a, b []rune) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// segSpan is one segment of the even partition of an ls-length token for
// probes of length ly: its start/length in the token, and the window
// [lo, hi] of substring starts in the probe that the multi-match-aware
// PASS-JOIN bound allows for it.
type segSpan struct {
	start, n int32
	lo, hi   int32
}

// segPlan is the memoized geometry for one (ls, ly) pair: the token NLD
// budget tau (-1 when the pair of lengths cannot satisfy the threshold)
// and the tau+1 segment spans with their probe windows.
type segPlan struct {
	tau  int32
	segs []segSpan
}

// planCache memoizes segPlans per packed (ls, ly). The insert side keeps
// one inside the (write-locked) tokenIndex; each probe worker keeps its
// own inside its probeScratch, so plans are computed O(distinct length
// pairs) times per owner and the steady-state hot path never allocates.
type planCache struct {
	t float64
	m map[uint32]*segPlan
}

var negPlan = &segPlan{tau: -1}

func (pc *planCache) plan(ls, ly int) *segPlan {
	key := bucketKey(ls, ly)
	if pl, ok := pc.m[key]; ok {
		return pl
	}
	if pc.m == nil {
		pc.m = make(map[uint32]*segPlan)
	}
	tau := strdist.MaxLDWithin(pc.t, ls, ly)
	if tau < 0 {
		pc.m[key] = negPlan
		return negPlan
	}
	pl := &segPlan{tau: int32(tau), segs: make([]segSpan, tau+1)}
	base, rem := ls/(tau+1), ls%(tau+1)
	pos := 0
	for i := 0; i <= tau; i++ {
		n := base
		if i >= tau+1-rem {
			n++
		}
		lo, hi := substringWindow(ls, ly, tau, i, pos, n)
		pl.segs[i] = segSpan{start: int32(pos), n: int32(n), lo: int32(lo), hi: int32(hi)}
		pos += n
	}
	pc.m[key] = pl
	return pl
}

// substringWindow mirrors passjoin.SubstringWindow (multi-match-aware):
// the start positions in an lr-length probe that segment i (at position p,
// length n, of an ls-length token) can match under tau edits. An empty
// window yields lo > hi.
func substringWindow(ls, lr, tau, i, p, n int) (lo, hi int) {
	delta := lr - ls
	lo = p - i
	if v := p + delta - (tau - i); v > lo {
		lo = v
	}
	hi = p + i
	if v := p + delta + (tau - i); v < hi {
		hi = v
	}
	if lo < 0 {
		lo = 0
	}
	if max := lr - n; hi > max {
		hi = max
	}
	return lo, hi
}

// probeScratch is the per-worker scratch of the similar-token probe: the
// epoch-stamped visited array replacing the old per-token `checked` map,
// the rolling prefix-hash arrays replacing per-window substring
// materialization, the memoized partition geometry, and the bounded-LD DP
// row. One scratch serves any number of partitions (the sharded matcher
// pools them across shards); none of its state is retained between probe
// tokens except by design (epoch, memo, capacities).
type probeScratch struct {
	visited []uint32 // visited[tid] == epoch: token already checked
	epoch   uint32
	hash    []uint64 // hash[j] = polynomial hash of r[:j]
	pow     []uint64 // pow[j] = segHashBase^j
	plans   planCache
	levRow  []uint16
}

func newProbeScratch(threshold float64) *probeScratch {
	return &probeScratch{plans: planCache{t: threshold}}
}

// begin opens a probe-token epoch over a partition with n interned
// tokens: grows the visited array as the partition grows and advances the
// epoch, zeroing only on uint32 wraparound.
func (sc *probeScratch) begin(n int) {
	if len(sc.visited) < n {
		if cap(sc.visited) >= n {
			grown := sc.visited[:n]
			for i := len(sc.visited); i < n; i++ {
				grown[i] = 0
			}
			sc.visited = grown
		} else {
			grown := make([]uint32, n, 2*n)
			copy(grown, sc.visited)
			sc.visited = grown
		}
	}
	sc.epoch++
	if sc.epoch == 0 { // wrapped: stale stamps could alias the new epoch
		clear(sc.visited)
		sc.epoch = 1
	}
}

// prepare fills the prefix-hash and power arrays for the probe runes,
// after which any window fingerprint is O(1) via windowHash.
func (sc *probeScratch) prepare(r []rune) {
	n := len(r) + 1
	if cap(sc.hash) < n {
		sc.hash = make([]uint64, n, 2*n)
		sc.pow = make([]uint64, n, 2*n)
	}
	sc.hash = sc.hash[:n]
	sc.pow = sc.pow[:n]
	sc.pow[0] = 1
	for j, c := range r {
		sc.hash[j+1] = sc.hash[j]*segHashBase + uint64(c)
		sc.pow[j+1] = sc.pow[j] * segHashBase
	}
}

// windowHash returns the fingerprint of r[q : q+n] from the prepared
// prefix hashes: H[q+n] − H[q]·base^n (uint64 wraparound), identical to
// hashSeg over the same runes.
func (sc *probeScratch) windowHash(q, n int) uint64 {
	return sc.hash[q+n] - sc.hash[q]*sc.pow[n]
}
