// Package distrib is the scale-out layer of tsjserve: a coordinator
// that owns an epoch-stamped token-hash partition map over a fleet of
// worker nodes (each one a corpus-backed tsjserve, optionally with its
// own PR 8 standby chain), routes writes to the owning worker,
// scatter-gathers queries across all workers, and drives the
// distributed join phases through the internal/mapreduce seam with
// workers as the executors.
//
// The coordinator serves the same /add, /query, /join and /delete wire
// contract a single tsjserve node does — clients do not care whether
// they talk to one node or a cluster — plus /cluster (membership and
// partition map), /cluster/selfjoin (the distributed corpus-wide join),
// /cluster/rebalance (the versioned-map rebalance stub) and an
// aggregated cluster-wide /stats.
//
// Identity: the coordinator assigns global ids in arrival order —
// exactly the sequence numbers a single node would have assigned — and
// keeps the global↔(shard, local id) translation. Equivalence with a
// single node is therefore byte-level on the result sets, which is what
// the cluster equivalence tests assert.
package distrib

import (
	"time"

	"repro/internal/core"
	"repro/internal/stream"
)

// EpochHeader is the request header a routing-aware client stamps with
// the partition-map epoch it last saw. The coordinator answers 409 with
// the current map when the epoch is stale, so a client that cached the
// map (or a secondary router) detects repartitioning instead of acting
// on dead routing state.
const EpochHeader = "X-TSJ-Cluster-Epoch"

// Match is the wire form of one match (identical to tsjserve's).
type Match struct {
	ID   int     `json:"id"`
	SLD  int     `json:"sld"`
	NSLD float64 `json:"nsld"`
}

// AddRequest / AddResponse are POST /add.
type AddRequest struct {
	Name string `json:"name"`
}
type AddResponse struct {
	ID      int     `json:"id"`
	Matches []Match `json:"matches"`
}

// QueryRequest / QueryResponse are POST /query. MissingShards is only
// present on a coordinator answering a ?partial=true query that lost
// shards: it lists the partition indices whose workers did not answer
// within the deadline, so the caller knows exactly how incomplete the
// result set may be.
type QueryRequest struct {
	Name string `json:"name"`
}
type QueryResponse struct {
	Matches       []Match `json:"matches"`
	MissingShards []int   `json:"missing_shards,omitempty"`
}

// JoinRequest / JoinResponse are POST /join (atomic batch add).
type JoinRequest struct {
	Names []string `json:"names"`
}
type JoinResult struct {
	ID      int     `json:"id"`
	Matches []Match `json:"matches"`
}
type JoinResponse struct {
	First   int          `json:"first"`
	Results []JoinResult `json:"results"`
}

// DeleteRequest / DeleteResponse are POST /delete. ID is a pointer so a
// missing field is distinguishable from id 0.
type DeleteRequest struct {
	ID *int `json:"id"`
}
type DeleteResponse struct {
	Deleted int `json:"deleted"`
}

// JoinConfig carries the join pipeline configuration on the distributed
// self-join and probe-join wire: every worker must run the phases under
// the same knobs or the merged result set is not the single-node one.
type JoinConfig struct {
	Threshold    float64 `json:"threshold"`
	MaxTokenFreq int     `json:"max_token_freq,omitempty"`
	ExactTokens  bool    `json:"exact_tokens,omitempty"`
	Greedy       bool    `json:"greedy,omitempty"`
}

// SelfJoinRequest is POST /cluster/selfjoin on the coordinator and
// /cluster/selfjoin on a worker (local shard self-join).
type SelfJoinRequest struct {
	JoinConfig
}

// ProbeJoinRequest is POST /cluster/probe on a worker: a bipartite join
// of the posted probe token multisets against the worker's live corpus
// (tsj.JoinCorpus — the corpus side reuses stored filter state). Tokens
// travel the wire already tokenized so no per-node tokenizer drift can
// split the cluster's notion of a string.
type ProbeJoinRequest struct {
	JoinConfig
	Probes [][]string `json:"probes"`
}

// Pair is one joined pair on the wire. For a worker /cluster/selfjoin
// both ids are worker-local; for /cluster/probe A is worker-local and B
// indexes the posted probes; for the coordinator /cluster/selfjoin both
// are global ids with A < B.
type Pair struct {
	A    int     `json:"a"`
	B    int     `json:"b"`
	SLD  int     `json:"sld"`
	NSLD float64 `json:"nsld"`
}

// PairsResponse carries a pair set.
type PairsResponse struct {
	Pairs []Pair `json:"pairs"`
}

// StringsResponse is GET /cluster/strings on a worker: the live corpus
// as (local id, sorted token multiset) rows, the probe-side feed of the
// distributed join's cross-shard phase.
type StringsResponse struct {
	IDs    []int      `json:"ids"`
	Tokens [][]string `json:"tokens"`
}

// WorkerStats is the funnel-counter subset of a worker's /stats body —
// the fields the coordinator folds into the cluster-wide aggregate. Its
// json tags are the single source of truth for those field names:
// tsjserve embeds it in its /stats response, so the producer and the
// aggregating consumer cannot drift.
type WorkerStats struct {
	Strings      int   `json:"strings"`
	Shards       int   `json:"shards"`
	Adds         int64 `json:"adds"`
	Queries      int64 `json:"queries"`
	Verified     int64 `json:"verified"`
	BudgetPruned int64 `json:"budget_pruned"`
	PrefixPruned int64 `json:"prefix_pruned"`
	// Segment-probe funnel: probe tokens skipped by the segment prefix
	// filter, window fingerprint lookups, tokens reaching the token-NLD
	// check, and tokens within the token threshold.
	SegPrefixPruned  int64 `json:"seg_prefix_pruned"`
	SegKeysProbed    int64 `json:"seg_keys_probed"`
	SegTokensChecked int64 `json:"seg_tokens_checked"`
	SegTokensSimilar int64 `json:"seg_tokens_similar"`
	// Batched-verification funnel: pairs through the vector path, kernel
	// invocations, occupied lanes, scalar-fallback cells.
	BatchedPairs     int64 `json:"batched_pairs"`
	SIMDKernels      int64 `json:"simd_kernels"`
	SIMDLanes        int64 `json:"simd_lanes"`
	BatchScalarCells int64 `json:"batch_scalar_cells"`
	// SIMDWidth is this node's kernel lane width (16 on AVX2, 8 on NEON,
	// 0 without a live kernel); LaneFillPct is the mean occupied-lane
	// percentage SIMDLanes/(SIMDKernels*SIMDWidth)*100 — the batching
	// efficiency the cross-probe staging layer exists to maximize. Both
	// are derived at snapshot time, never folded.
	SIMDWidth   int     `json:"simd_width"`
	LaneFillPct float64 `json:"lane_fill_pct"`
	// Wall times in milliseconds so dashboards need no duration parsing.
	CandGenWallMs  float64 `json:"cand_gen_wall_ms"`
	VerifyWallMs   float64 `json:"verify_wall_ms"`
	TokensPerShard []int   `json:"tokens_per_shard"`
}

// FromShardedStats converts a matcher snapshot to the wire form,
// deriving the lane-fill efficiency of the batched verify path.
func FromShardedStats(st stream.ShardedStats) WorkerStats {
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	width := 0
	if core.BatchKernelAvailable() {
		width = core.BatchKernelWidth()
	}
	fill := 0.0
	if st.SIMDKernels > 0 && width > 0 {
		fill = 100 * float64(st.SIMDLanes) / (float64(st.SIMDKernels) * float64(width))
	}
	return WorkerStats{
		SIMDWidth: width, LaneFillPct: fill,
		Strings: st.Strings, Shards: st.Shards,
		Adds: st.Adds, Queries: st.Queries, Verified: st.Verified,
		BudgetPruned: st.BudgetPruned, PrefixPruned: st.PrefixPruned,
		SegPrefixPruned: st.SegPrefixPruned, SegKeysProbed: st.SegKeysProbed,
		SegTokensChecked: st.SegTokensChecked, SegTokensSimilar: st.SegTokensSimilar,
		BatchedPairs: st.BatchedPairs, SIMDKernels: st.SIMDKernels,
		SIMDLanes: st.SIMDLanes, BatchScalarCells: st.BatchScalarCells,
		CandGenWallMs: ms(st.CandGenWall), VerifyWallMs: ms(st.VerifyWall),
		TokensPerShard: st.TokensPerShard,
	}
}

// Sharded converts the wire form back to a matcher-stats value so
// remote snapshots can fold through stream.ShardedStats.Merge.
func (ws WorkerStats) Sharded() stream.ShardedStats {
	dur := func(msf float64) time.Duration { return time.Duration(msf * float64(time.Millisecond)) }
	return stream.ShardedStats{
		Strings: ws.Strings, Shards: ws.Shards,
		Adds: ws.Adds, Queries: ws.Queries, Verified: ws.Verified,
		BudgetPruned: ws.BudgetPruned, PrefixPruned: ws.PrefixPruned,
		SegPrefixPruned: ws.SegPrefixPruned, SegKeysProbed: ws.SegKeysProbed,
		SegTokensChecked: ws.SegTokensChecked, SegTokensSimilar: ws.SegTokensSimilar,
		BatchedPairs: ws.BatchedPairs, SIMDKernels: ws.SIMDKernels,
		SIMDLanes: ws.SIMDLanes, BatchScalarCells: ws.BatchScalarCells,
		CandGenWall: dur(ws.CandGenWallMs), VerifyWall: dur(ws.VerifyWallMs),
		TokensPerShard: ws.TokensPerShard,
	}
}

// ShardStatus is one partition's row in GET /cluster.
type ShardStatus struct {
	// Worker is the active (writable) node; Standbys its failover chain
	// in promotion order.
	Worker   string   `json:"worker"`
	Standbys []string `json:"standbys,omitempty"`
	// Alive reflects the heartbeat: false after FailAfter consecutive
	// missed heartbeats (the shard is then a promotion candidate).
	Alive bool `json:"alive"`
	// Moving marks a shard mid-rebalance: the map stub rejects writes
	// for it until the move completes (full rebalance is a follow-up).
	Moving bool `json:"moving"`
	// Strings is the number of global ids routed to this shard.
	Strings int `json:"strings"`
	// Failovers counts standby promotions the coordinator performed.
	Failovers int `json:"failovers"`
}

// ClusterStatus is GET /cluster: the epoch-stamped membership view.
type ClusterStatus struct {
	Epoch   uint64        `json:"epoch"`
	Strings int           `json:"strings"`
	Live    int           `json:"live"`
	Shards  []ShardStatus `json:"shards"`
}

// StaleEpochResponse is the 409 body for a stale EpochHeader: the error
// plus the current map so the client refreshes in one round trip.
type StaleEpochResponse struct {
	Error   string        `json:"error"`
	Cluster ClusterStatus `json:"cluster"`
}

// ClusterStats is the coordinator's aggregated GET /stats body.
type ClusterStats struct {
	Epoch   uint64 `json:"epoch"`
	Strings int    `json:"strings"`
	Live    int    `json:"live"`
	// Cluster is the fold of every reachable worker's funnel counters
	// (stream.ShardedStats.Merge over the wire snapshots).
	Cluster WorkerStats          `json:"cluster"`
	Workers []ClusterWorkerStats `json:"workers"`
}

// ClusterWorkerStats is one worker's row in the aggregated /stats.
type ClusterWorkerStats struct {
	Worker string       `json:"worker"`
	Alive  bool         `json:"alive"`
	Stats  *WorkerStats `json:"stats,omitempty"`
	Error  string       `json:"error,omitempty"`
}
