package distrib

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/httpx"
)

// scatterQuery fans one /query out to every shard (except exclude, or
// -1 for all) under the per-shard deadline, with a hedged retry chain
// per shard: each attempt re-reads the partition map and walks the
// shard's current chain — active worker first, then its warm standbys —
// so a mid-query failover (or a promoted standby) answers later
// attempts, and a merely slow primary is hedged by a replica that holds
// the same acknowledged history. Shards that never answer are returned
// in missing (ascending); the caller decides the partial-result policy.
//
// Results are local-id match lists indexed by shard; translation to
// global ids is the caller's (toGlobal), because only the coordinator
// tables can do it consistently.
func (co *Coordinator) scatterQuery(ctx context.Context, name string, exclude int) ([][]Match, []int) {
	co.mu.RLock()
	n := len(co.pm.Shards)
	co.mu.RUnlock()
	results := make([][]Match, n)
	var (
		missMu  sync.Mutex
		missing []int
		wg      sync.WaitGroup
	)
	for i := 0; i < n; i++ {
		if i == exclude {
			continue
		}
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			ms, err := co.queryShard(ctx, shard, name)
			if err != nil {
				co.opt.Logf("distrib: query on shard %d failed: %v", shard, err)
				missMu.Lock()
				missing = append(missing, shard)
				missMu.Unlock()
				return
			}
			results[shard] = ms
		}(i)
	}
	wg.Wait()
	sort.Ints(missing)
	return results, missing
}

// queryShard runs one shard's leg of the scatter: deadline-bounded,
// retry-with-backoff, hedging across the shard's chain.
func (co *Coordinator) queryShard(ctx context.Context, shard int, name string) ([]Match, error) {
	ctx, cancel := context.WithTimeout(ctx, co.opt.QueryTimeout)
	defer cancel()
	var resp QueryResponse
	var last error
	err := httpx.Retry(ctx, co.opt.Retry, func() error {
		co.mu.RLock()
		sh := co.pm.Shards[shard]
		chain := append([]string{sh.Worker}, sh.Standbys...)
		co.mu.RUnlock()
		for _, base := range chain {
			last = httpx.PostJSON(ctx, co.client, base+"/query", QueryRequest{Name: name}, &resp,
				perAttemptTimeout(ctx, co.opt.Retry), maxBodyBytes)
			if last == nil {
				return nil
			}
			if httpx.IsStatus(last, http.StatusServiceUnavailable) {
				// A syncing standby (or resetting engine) said "not me,
				// yet" — fall through to the next chain member.
				continue
			}
			if _, definitive := httpx.Status(last); definitive {
				// A non-503 worker answer (e.g. 400) will not improve with
				// retries.
				return nil
			}
		}
		return last
	}, func(attempt int, d time.Duration, err error) {
		co.opt.Logf("distrib: query on shard %d failed (retry %d in %v): %v", shard, attempt, d, err)
	})
	if err != nil {
		if last != nil {
			return nil, last
		}
		return nil, err
	}
	if last != nil {
		return nil, last
	}
	return resp.Matches, nil
}

// perAttemptTimeout slices the remaining deadline so at least a couple
// of hedged attempts fit inside the shard deadline: one attempt may use
// at most half of what is left (and never less than the retry base).
func perAttemptTimeout(ctx context.Context, pol backoff.Policy) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0 // ctx only
	}
	slice := time.Until(dl) / 2
	if slice < pol.Base {
		slice = pol.Base
	}
	return slice
}
