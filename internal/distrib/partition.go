package distrib

import (
	"errors"
	"hash/fnv"
	"strings"

	"repro/internal/token"
)

// Shard is one partition of the cluster: an active worker URL plus its
// ordered standby chain. Moving marks the shard mid-rebalance (writes
// rejected by the stub policy until the move completes).
type Shard struct {
	Worker   string
	Standbys []string
	Moving   bool
}

// Map is the epoch-stamped partition map. The epoch advances on every
// membership change — a standby promotion repointing a shard, a
// rebalance marking one moving — exactly like the corpus's token-order
// epoch: any cached copy is verifiable against the current one, so
// stale routing is detectable (EpochHeader) instead of silently wrong.
//
// Maps are value types; the coordinator hands out copies under its lock
// and never mutates a copy a reader might hold.
type Map struct {
	Epoch  uint64
	Shards []Shard
}

// ParseWorkers builds the initial map from the -workers flag syntax:
// comma-separated shard specs, each "primary|standby1|standby2...".
func ParseWorkers(spec string) (Map, error) {
	var m Map
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			if spec == "" {
				break
			}
			return Map{}, errors.New("distrib: empty shard spec in -workers (stray comma?)")
		}
		chain := strings.Split(part, "|")
		for i := range chain {
			chain[i] = strings.TrimRight(strings.TrimSpace(chain[i]), "/")
			if chain[i] == "" {
				return Map{}, errors.New("distrib: empty worker URL in " + part)
			}
		}
		m.Shards = append(m.Shards, Shard{Worker: chain[0], Standbys: chain[1:]})
	}
	if len(m.Shards) == 0 {
		return Map{}, errors.New("distrib: no workers configured")
	}
	return m, nil
}

// clone deep-copies the map so callers outside the coordinator lock can
// hold it.
func (m Map) clone() Map {
	out := Map{Epoch: m.Epoch, Shards: make([]Shard, len(m.Shards))}
	for i, sh := range m.Shards {
		out.Shards[i] = Shard{
			Worker:   sh.Worker,
			Standbys: append([]string(nil), sh.Standbys...),
			Moving:   sh.Moving,
		}
	}
	return out
}

// OwnerOf routes a name to its owning shard by token hash: the name's
// sorted token multiset is hashed (FNV-1a over NUL-joined tokens), so
// the route is a pure function of the string's tokenized identity —
// token-order-insensitive, tokenizer-stable, and independent of the
// map epoch as long as the shard count is fixed (rebalance, which
// changes counts, is the versioned follow-up). Token-less names hash
// their raw bytes so they still spread.
func (m Map) OwnerOf(name string, tok token.Tokenizer) int {
	ts := tok(name)
	h := fnv.New32a()
	if len(ts.Tokens) == 0 {
		h.Write([]byte(name))
	} else {
		for _, t := range ts.Tokens {
			h.Write([]byte(t))
			h.Write([]byte{0})
		}
	}
	return int(h.Sum32() % uint32(len(m.Shards)))
}
