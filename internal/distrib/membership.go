package distrib

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/httpx"
)

// Run is the coordinator's membership loop: every Heartbeat it probes
// each shard's active worker (/healthz — pure liveness, so a degraded
// worker serving reads is not failed over), and after FailAfter
// consecutive misses promotes the shard's first promotable standby and
// repoints the partition map at it (epoch bump). It blocks until ctx
// ends.
func (co *Coordinator) Run(ctx context.Context) {
	t := time.NewTicker(co.opt.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			co.CheckNow(ctx)
		}
	}
}

// CheckNow performs one heartbeat round synchronously (the loop body of
// Run; exported so tests and operators can force a round without
// waiting out the interval).
func (co *Coordinator) CheckNow(ctx context.Context) {
	pm := co.mapView()
	for i, sh := range pm.Shards {
		up := co.probe(ctx, sh.Worker)
		co.mu.Lock()
		if up {
			co.fails[i] = 0
			co.alive[i] = true
			co.mu.Unlock()
			continue
		}
		co.fails[i]++
		fails := co.fails[i]
		dead := fails >= co.opt.FailAfter
		if dead {
			co.alive[i] = false
		}
		co.mu.Unlock()
		co.opt.Logf("distrib: shard %d worker %s missed heartbeat (%d/%d)", i, sh.Worker, fails, co.opt.FailAfter)
		if dead {
			co.failover(ctx, i)
		}
	}
}

// probe is one liveness check against a worker's /healthz.
func (co *Coordinator) probe(ctx context.Context, base string) bool {
	ctx, cancel := context.WithTimeout(ctx, co.opt.Heartbeat)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := co.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// failover promotes the dead shard's first promotable standby: POST
// /promote seals the standby's applier and flips it into a writable
// primary (the PR 8 path), then the partition map is repointed at it —
// the old worker is demoted into the back of the chain in case it comes
// back — and the epoch bumps so every cached map is detectably stale.
// A standby that refuses (still syncing: its state is a partial
// bootstrap) is skipped; with no promotable standby the shard stays
// dead and /readyz reports it.
func (co *Coordinator) failover(ctx context.Context, shard int) {
	co.mu.RLock()
	sh := co.pm.Shards[shard]
	standbys := append([]string(nil), sh.Standbys...)
	oldWorker := sh.Worker
	co.mu.RUnlock()
	for k, sb := range standbys {
		if err := co.promote(ctx, sb); err != nil {
			co.opt.Logf("distrib: shard %d standby %s refused promotion: %v", shard, sb, err)
			continue
		}
		co.mu.Lock()
		// Re-check under the lock: another path may have repointed the
		// shard while we were promoting.
		if co.pm.Shards[shard].Worker != oldWorker {
			co.mu.Unlock()
			return
		}
		rest := append([]string(nil), standbys[:k]...)
		rest = append(rest, standbys[k+1:]...)
		rest = append(rest, oldWorker) // demoted; may rejoin as a standby
		co.pm.Shards[shard].Worker = sb
		co.pm.Shards[shard].Standbys = rest
		co.pm.Epoch++
		co.alive[shard] = true
		co.fails[shard] = 0
		co.failovers[shard]++
		epoch := co.pm.Epoch
		co.mu.Unlock()
		co.opt.Logf("distrib: shard %d failed over %s -> %s (epoch %d)", shard, oldWorker, sb, epoch)
		return
	}
	co.opt.Logf("distrib: shard %d has no promotable standby; shard is down", shard)
}

// promote drives one standby's POST /promote.
func (co *Coordinator) promote(ctx context.Context, base string) error {
	ctx, cancel := context.WithTimeout(ctx, co.opt.WriteTimeout)
	defer cancel()
	var resp struct {
		Role string `json:"role"`
		LSN  uint64 `json:"lsn"`
	}
	if err := httpx.PostJSON(ctx, co.client, base+"/promote", struct{}{}, &resp, co.opt.WriteTimeout, 1<<16); err != nil {
		return err
	}
	if resp.Role != "primary" {
		return fmt.Errorf("promote: %s reports role %q", base, resp.Role)
	}
	return nil
}
