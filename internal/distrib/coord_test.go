package distrib_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/distrib"
	"repro/internal/token"
)

// stubWorker is a scriptable worker node for failure-path tests.
type stubWorker struct {
	ts  *httptest.Server
	mux *http.ServeMux
}

func newStubWorker(t *testing.T) *stubWorker {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &stubWorker{ts: ts, mux: mux}
}

// answers wires the default happy-path handlers: /query returns no
// matches, /add assigns sequential local ids, /healthz is up.
func (s *stubWorker) answers() *stubWorker {
	next := 0
	s.mux.HandleFunc("/add", func(w http.ResponseWriter, r *http.Request) {
		id := next
		next++
		json.NewEncoder(w).Encode(distrib.AddResponse{ID: id, Matches: []distrib.Match{}})
	})
	s.mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(distrib.QueryResponse{Matches: []distrib.Match{}})
	})
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

func fastOptions() distrib.Options {
	return distrib.Options{
		QueryTimeout: 300 * time.Millisecond,
		WriteTimeout: 500 * time.Millisecond,
		Retry:        backoff.Policy{Base: 10 * time.Millisecond, Cap: 30 * time.Millisecond},
		Heartbeat:    50 * time.Millisecond,
		FailAfter:    2,
	}
}

func coordServer(t *testing.T, pm distrib.Map, opt distrib.Options) (*distrib.Coordinator, *httptest.Server) {
	t.Helper()
	co := distrib.New(pm, opt)
	cs := httptest.NewServer(co.Handler())
	t.Cleanup(cs.Close)
	return co, cs
}

func TestParseWorkers(t *testing.T) {
	for _, tc := range []struct {
		spec    string
		shards  int
		wantErr bool
		check   func(t *testing.T, m distrib.Map)
	}{
		{spec: "http://a:1", shards: 1},
		{spec: "http://a:1,http://b:2,http://c:3", shards: 3},
		{
			spec: "http://a:1|http://a2:1|http://a3:1,http://b:2/", shards: 2,
			check: func(t *testing.T, m distrib.Map) {
				if len(m.Shards[0].Standbys) != 2 || m.Shards[0].Standbys[0] != "http://a2:1" {
					t.Fatalf("standbys = %v", m.Shards[0].Standbys)
				}
				if m.Shards[1].Worker != "http://b:2" {
					t.Fatalf("trailing slash not trimmed: %q", m.Shards[1].Worker)
				}
			},
		},
		{spec: "", wantErr: true},
		{spec: "http://a:1,,http://b:2", wantErr: true},
		{spec: "|http://a:1", wantErr: true},
	} {
		m, err := distrib.ParseWorkers(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("ParseWorkers(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseWorkers(%q): %v", tc.spec, err)
		}
		if len(m.Shards) != tc.shards {
			t.Fatalf("ParseWorkers(%q): %d shards, want %d", tc.spec, len(m.Shards), tc.shards)
		}
		if tc.check != nil {
			tc.check(t, m)
		}
	}
}

func TestOwnerOfIsTokenOrderInsensitive(t *testing.T) {
	m := distrib.Map{Shards: make([]distrib.Shard, 5)}
	for _, tc := range [][2]string{
		{"john h smith", "smith, john H"},
		{"maria de la cruz", "DE LA cruz maria"},
	} {
		a := m.OwnerOf(tc[0], token.WhitespaceAndPunct)
		b := m.OwnerOf(tc[1], token.WhitespaceAndPunct)
		if a != b {
			t.Fatalf("OwnerOf(%q)=%d but OwnerOf(%q)=%d: routing must follow the token multiset", tc[0], a, tc[1], b)
		}
		if a < 0 || a >= 5 {
			t.Fatalf("owner %d out of range", a)
		}
	}
	// Token-less names still route deterministically.
	if o := m.OwnerOf("...", token.WhitespaceAndPunct); o < 0 || o >= 5 {
		t.Fatalf("token-less owner %d out of range", o)
	}
}

// TestCoordinatorEndpointErrors is the table-driven contract for every
// coordinator endpoint's request validation.
func TestCoordinatorEndpointErrors(t *testing.T) {
	w0 := newStubWorker(t).answers()
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: w0.ts.URL}}}, fastOptions())

	for _, tc := range []struct {
		name     string
		method   string
		path     string
		body     string
		header   map[string]string
		wantCode int
		wantBody string
	}{
		{name: "add GET", method: http.MethodGet, path: "/add", wantCode: http.StatusMethodNotAllowed},
		{name: "add bad json", method: http.MethodPost, path: "/add", body: "{", wantCode: http.StatusBadRequest},
		{name: "add unknown field", method: http.MethodPost, path: "/add", body: `{"nom":"x"}`, wantCode: http.StatusBadRequest},
		{name: "query GET", method: http.MethodGet, path: "/query", wantCode: http.StatusMethodNotAllowed},
		{name: "delete missing id", method: http.MethodPost, path: "/delete", body: `{}`, wantCode: http.StatusBadRequest, wantBody: "missing id"},
		{name: "delete unknown id", method: http.MethodPost, path: "/delete", body: `{"id":7}`, wantCode: http.StatusBadRequest, wantBody: "no string with id 7"},
		{name: "cluster POST", method: http.MethodPost, path: "/cluster", wantCode: http.StatusMethodNotAllowed},
		{name: "stats POST", method: http.MethodPost, path: "/stats", wantCode: http.StatusMethodNotAllowed},
		{name: "rebalance missing shard", method: http.MethodPost, path: "/cluster/rebalance", body: `{}`, wantCode: http.StatusBadRequest},
		{name: "rebalance bad shard", method: http.MethodPost, path: "/cluster/rebalance", body: `{"shard":9}`, wantCode: http.StatusBadRequest},
		{name: "selfjoin bad threshold", method: http.MethodPost, path: "/cluster/selfjoin", body: `{"threshold":1.5}`, wantCode: http.StatusBadRequest},
		{name: "bad epoch header", method: http.MethodPost, path: "/query", body: `{"name":"x"}`, header: map[string]string{distrib.EpochHeader: "zebra"}, wantCode: http.StatusBadRequest},
		{name: "healthz", method: http.MethodGet, path: "/healthz", wantCode: http.StatusOK},
		{name: "readyz", method: http.MethodGet, path: "/readyz", wantCode: http.StatusOK},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, cs.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range tc.header {
				req.Header.Set(k, v)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var buf strings.Builder
			if _, err := fmt.Fprint(&buf, readBody(t, resp)); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.wantCode, buf.String())
			}
			if tc.wantBody != "" && !strings.Contains(buf.String(), tc.wantBody) {
				t.Fatalf("body %q missing %q", buf.String(), tc.wantBody)
			}
		})
	}
}

func readBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestCoordinatorStaleEpoch: a stamped request with a stale epoch gets
// 409 plus the current map; restamping with the refreshed epoch
// succeeds.
func TestCoordinatorStaleEpoch(t *testing.T) {
	w0 := newStubWorker(t).answers()
	co, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: w0.ts.URL}}}, fastOptions())

	// Bump the epoch once via the rebalance stub (mark + settle = +2).
	var stRebal distrib.ClusterStatus
	mustPost(t, cs.URL+"/cluster/rebalance", map[string]any{"shard": 0}, &stRebal)
	mustPost(t, cs.URL+"/cluster/rebalance", map[string]any{"shard": 0, "done": true}, &stRebal)
	if stRebal.Epoch != 2 {
		t.Fatalf("epoch after rebalance mark+settle = %d, want 2", stRebal.Epoch)
	}

	do := func(epoch string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodPost, cs.URL+"/query", strings.NewReader(`{"name":"x"}`))
		req.Header.Set(distrib.EpochHeader, epoch)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		resp.Body.Close()
		return resp, body
	}

	resp, body := do("0")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch: status %d, want 409 (%s)", resp.StatusCode, body)
	}
	var stale distrib.StaleEpochResponse
	if err := json.Unmarshal([]byte(body), &stale); err != nil {
		t.Fatalf("409 body is not a StaleEpochResponse: %v (%s)", err, body)
	}
	if stale.Cluster.Epoch != 2 || len(stale.Cluster.Shards) != 1 {
		t.Fatalf("409 carries cluster %+v, want epoch 2 with the shard map", stale.Cluster)
	}

	// One round trip refreshed the client: the carried epoch now works.
	resp, body = do(fmt.Sprint(stale.Cluster.Epoch))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refreshed epoch: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	if got := co.Status().Epoch; got != 2 {
		t.Fatalf("Status().Epoch = %d, want 2", got)
	}
}

// TestCoordinatorQueryPartialFailure: with a dead worker the default
// query fails closed (503 naming the missing shards) and ?partial=true
// returns the survivors plus missing_shards.
func TestCoordinatorQueryPartialFailure(t *testing.T) {
	up := newStubWorker(t).answers()
	down := newStubWorker(t)
	down.ts.Close() // connection refused from the start
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: up.ts.URL}, {Worker: down.ts.URL}}}, fastOptions())

	code, body := postRaw(t, cs.URL+"/query", distrib.QueryRequest{Name: "jane doe"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("fail-closed query: status %d, want 503 (%s)", code, body)
	}
	var failClosed struct {
		Error         string `json:"error"`
		MissingShards []int  `json:"missing_shards"`
	}
	if err := json.Unmarshal(body, &failClosed); err != nil {
		t.Fatalf("503 body: %v (%s)", err, body)
	}
	if len(failClosed.MissingShards) != 1 || failClosed.MissingShards[0] != 1 {
		t.Fatalf("missing_shards = %v, want [1]", failClosed.MissingShards)
	}

	code, body = postRaw(t, cs.URL+"/query?partial=true", distrib.QueryRequest{Name: "jane doe"})
	if code != http.StatusOK {
		t.Fatalf("partial query: status %d, want 200 (%s)", code, body)
	}
	var qr distrib.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.MissingShards) != 1 || qr.MissingShards[0] != 1 {
		t.Fatalf("partial missing_shards = %v, want [1]", qr.MissingShards)
	}
	if qr.Matches == nil {
		t.Fatalf("partial matches must be [] on the wire, got null")
	}
}

// TestCoordinatorQuerySlowWorker: a worker that answers after the
// per-shard deadline counts as missing, not as a hang.
func TestCoordinatorQuerySlowWorker(t *testing.T) {
	up := newStubWorker(t).answers()
	slow := newStubWorker(t)
	slow.mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: up.ts.URL}, {Worker: slow.ts.URL}}}, fastOptions())

	start := time.Now()
	code, body := postRaw(t, cs.URL+"/query?partial=true", distrib.QueryRequest{Name: "jane doe"})
	if code != http.StatusOK {
		t.Fatalf("status %d (%s)", code, body)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("query took %v: the slow worker leaked past the per-shard deadline", elapsed)
	}
	var qr distrib.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.MissingShards) != 1 || qr.MissingShards[0] != 1 {
		t.Fatalf("missing_shards = %v, want [1]", qr.MissingShards)
	}
}

// TestCoordinatorRebalanceRejectsWrites: a moving shard rejects writes
// (503) until the move settles, and every transition bumps the epoch.
func TestCoordinatorRebalanceRejectsWrites(t *testing.T) {
	w0 := newStubWorker(t).answers()
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: w0.ts.URL}}}, fastOptions())

	mustPost(t, cs.URL+"/cluster/rebalance", map[string]any{"shard": 0}, nil)
	code, body := postRaw(t, cs.URL+"/add", distrib.AddRequest{Name: "jane doe"})
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "rebalancing") {
		t.Fatalf("write to moving shard: status %d (%s), want 503 rebalancing", code, body)
	}

	mustPost(t, cs.URL+"/cluster/rebalance", map[string]any{"shard": 0, "done": true}, nil)
	var ar distrib.AddResponse
	mustPost(t, cs.URL+"/add", distrib.AddRequest{Name: "jane doe"}, &ar)
	if ar.ID != 0 {
		t.Fatalf("first add after settle got id %d, want 0", ar.ID)
	}

	var st distrib.ClusterStatus
	resp, err := http.Get(cs.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Epoch != 2 || st.Shards[0].Moving {
		t.Fatalf("cluster after settle: %+v, want epoch 2, not moving", st)
	}
}

// TestCoordinatorDetectsOutOfBandWrites: a worker whose local id stream
// disagrees with the coordinator's table is a corrupted routing state,
// surfaced as 502 — never silently re-mapped.
func TestCoordinatorDetectsOutOfBandWrites(t *testing.T) {
	rogue := newStubWorker(t)
	rogue.mux.HandleFunc("/add", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(distrib.AddResponse{ID: 5, Matches: []distrib.Match{}})
	})
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: rogue.ts.URL}}}, fastOptions())

	code, body := postRaw(t, cs.URL+"/add", distrib.AddRequest{Name: "jane doe"})
	if code != http.StatusBadGateway || !strings.Contains(string(body), "out-of-band") {
		t.Fatalf("status %d (%s), want 502 out-of-band", code, body)
	}
}

// TestCoordinatorQueryDropsUnregisteredMatch: a query racing an
// in-flight add can see a worker match whose global id is not assigned
// yet. That match is dropped (the query serializes before the add), NOT
// treated as out-of-band corruption; registered matches still answer.
func TestCoordinatorQueryDropsUnregisteredMatch(t *testing.T) {
	w := newStubWorker(t)
	next := 0
	w.mux.HandleFunc("/add", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(distrib.AddResponse{ID: next, Matches: []distrib.Match{}})
		next++
	})
	w.mux.HandleFunc("/query", func(rw http.ResponseWriter, r *http.Request) {
		json.NewEncoder(rw).Encode(distrib.QueryResponse{Matches: []distrib.Match{
			{ID: 0, SLD: 1, NSLD: 0.05},
			{ID: 7, SLD: 2, NSLD: 0.09}, // committed by a racing add, not yet registered
		}})
	})
	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: w.ts.URL}}}, fastOptions())

	mustPost(t, cs.URL+"/add", distrib.AddRequest{Name: "jane doe"}, nil)
	var qr distrib.QueryResponse
	code, body := postRaw(t, cs.URL+"/query", distrib.QueryRequest{Name: "jane d"})
	if code != http.StatusOK {
		t.Fatalf("query status %d (%s), want 200", code, body)
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Matches) != 1 || qr.Matches[0].ID != 0 {
		t.Fatalf("matches %+v, want only registered global id 0", qr.Matches)
	}
}

// TestCoordinatorFailover: heartbeats detect the dead worker, the first
// promotable standby is promoted (a syncing one is skipped), the map is
// repointed with the old primary demoted to the chain tail, and the
// epoch bumps.
func TestCoordinatorFailover(t *testing.T) {
	dead := newStubWorker(t)
	dead.ts.Close()

	syncing := newStubWorker(t)
	syncing.mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "standby is still syncing", http.StatusServiceUnavailable)
	})

	promoted := 0
	ready := newStubWorker(t).answers()
	ready.mux.HandleFunc("/promote", func(w http.ResponseWriter, r *http.Request) {
		promoted++
		json.NewEncoder(w).Encode(map[string]any{"role": "primary", "lsn": 42})
	})

	opt := fastOptions()
	co, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{
		Worker:   dead.ts.URL,
		Standbys: []string{syncing.ts.URL, ready.ts.URL},
	}}}, opt)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < opt.FailAfter; i++ {
		co.CheckNow(ctx)
	}

	st := co.Status()
	sh := st.Shards[0]
	if sh.Worker != ready.ts.URL {
		t.Fatalf("worker = %s, want promoted standby %s", sh.Worker, ready.ts.URL)
	}
	if len(sh.Standbys) != 2 || sh.Standbys[0] != syncing.ts.URL || sh.Standbys[1] != dead.ts.URL {
		t.Fatalf("standbys = %v, want [syncing, demoted old primary]", sh.Standbys)
	}
	if !sh.Alive || sh.Failovers != 1 || st.Epoch != 1 {
		t.Fatalf("post-failover status: %+v epoch %d, want alive, 1 failover, epoch 1", sh, st.Epoch)
	}
	if promoted != 1 {
		t.Fatalf("promote called %d times, want 1", promoted)
	}

	// The shard serves again through the promoted worker.
	var qr distrib.QueryResponse
	mustPost(t, cs.URL+"/query", distrib.QueryRequest{Name: "jane doe"}, &qr)

	// A second round keeps the now-healthy shard untouched.
	co.CheckNow(ctx)
	if st := co.Status(); st.Epoch != 1 || st.Shards[0].Failovers != 1 {
		t.Fatalf("healthy shard churned: %+v", st)
	}
}

// TestCoordinatorReadyzReportsDeadShard: /readyz flips to 503 while a
// shard has no live worker and no promotable standby.
func TestCoordinatorReadyzReportsDeadShard(t *testing.T) {
	dead := newStubWorker(t)
	dead.ts.Close()
	opt := fastOptions()
	co, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{{Worker: dead.ts.URL}}}, opt)

	ctx := context.Background()
	for i := 0; i < opt.FailAfter; i++ {
		co.CheckNow(ctx)
	}
	resp, err := http.Get(cs.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with a dead shard: status %d, want 503", resp.StatusCode)
	}
}

// TestCoordinatorStatsAggregates: /stats folds every reachable worker's
// funnel and reports per-worker rows, marking unreachable workers.
func TestCoordinatorStatsAggregates(t *testing.T) {
	w0 := newStubWorker(t)
	w0.mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(distrib.WorkerStats{Strings: 3, Shards: 2, Adds: 3, Queries: 7, TokensPerShard: []int{4, 2}})
	})
	w1 := newStubWorker(t)
	w1.mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(distrib.WorkerStats{Strings: 2, Shards: 2, Adds: 2, Queries: 1, TokensPerShard: []int{1, 5}})
	})
	down := newStubWorker(t)
	down.ts.Close()

	_, cs := coordServer(t, distrib.Map{Shards: []distrib.Shard{
		{Worker: w0.ts.URL}, {Worker: w1.ts.URL}, {Worker: down.ts.URL},
	}}, fastOptions())

	resp, err := http.Get(cs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st distrib.ClusterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Strings != 5 || st.Cluster.Shards != 4 || st.Cluster.Adds != 5 || st.Cluster.Queries != 8 {
		t.Fatalf("aggregate = %+v, want strings 5, shards 4, adds 5, queries 8", st.Cluster)
	}
	if len(st.Cluster.TokensPerShard) != 4 {
		t.Fatalf("aggregate tokens_per_shard = %v, want 4 entries", st.Cluster.TokensPerShard)
	}
	if len(st.Workers) != 3 {
		t.Fatalf("%d worker rows, want 3", len(st.Workers))
	}
	if !st.Workers[0].Alive || !st.Workers[1].Alive || st.Workers[2].Alive {
		t.Fatalf("alive flags = %v %v %v, want true true false", st.Workers[0].Alive, st.Workers[1].Alive, st.Workers[2].Alive)
	}
	if st.Workers[2].Error == "" {
		t.Fatalf("unreachable worker row carries no error")
	}
}
