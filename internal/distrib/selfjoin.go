package distrib

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/mapreduce"
)

// handleSelfJoin is POST /cluster/selfjoin on the coordinator: the
// corpus-wide similarity join over every shard's live strings, returned
// as global-id pairs (A < B) — the cluster's version of a single node's
// SelfJoin over the union corpus.
func (co *Coordinator) handleSelfJoin(w http.ResponseWriter, r *http.Request) {
	var req SelfJoinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !req.validate(w) {
		return
	}
	co.mu.RLock()
	n := len(co.pm.Shards)
	co.mu.RUnlock()
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(n+1)*co.opt.WriteTimeout)
	defer cancel()
	pairs, err := co.DistributedSelfJoin(ctx, req.JoinConfig)
	if err != nil {
		routeError(w, "selfjoin", err)
		return
	}
	if pairs == nil {
		pairs = []Pair{}
	}
	writeJSON(w, PairsResponse{Pairs: pairs})
}

// shardStrings is one shard's live corpus snapshot (phase 0 output).
type shardStrings struct {
	shard int
	resp  StringsResponse
}

// sjTask is one phase-1 unit of work: j < 0 is shard i's local
// self-join; otherwise shard i's strings probed against shard j's
// stored corpus (the bipartite cross-shard leg).
type sjTask struct {
	i, j int
}

// DistributedSelfJoin runs the corpus-wide join by driving the paper's
// two phases through the internal/mapreduce seam with workers as the
// executors:
//
//   - Phase 0 (Job 1 analog — signature/statistics gathering): a map
//     task per shard fetches that worker's live strings as token
//     multisets (GET /cluster/strings), the probe-side feed for the
//     cross-shard legs.
//   - Phase 1 (Job 2 analog — candidate generation + verification): a
//     map task per (i, j) pair executes the join RPC on the worker —
//     the local self-join for i == j (POST /cluster/selfjoin) and the
//     bipartite probe join for i < j (shard i's strings POSTed to shard
//     j's /cluster/probe, which runs tsj.JoinCorpus against its stored
//     filter state) — then translates worker-local pair ids to global
//     ids through the coordinator's tables and emits each pair keyed by
//     its normalized (A, B) so the reduce phase deduplicates.
//
// The decomposition is exact: the join predicate is pairwise, every
// global pair lives on exactly one (i, j) task, and each worker runs
// the identical pipeline config. The result is sorted by (A, B).
func (co *Coordinator) DistributedSelfJoin(ctx context.Context, cfg JoinConfig) ([]Pair, error) {
	co.mu.RLock()
	n := len(co.pm.Shards)
	gs := make([][]int, n)
	for i := range co.g {
		gs[i] = append([]int(nil), co.g[i]...)
	}
	co.mu.RUnlock()
	if n == 0 {
		return nil, nil
	}

	// The engine has no error channel: map tasks record the first RPC or
	// translation failure here and later tasks short-circuit.
	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return firstErr != nil
	}

	mrcfg := func(name string) mapreduce.Config {
		return mapreduce.Config{Name: name, MapTasks: co.opt.MapTasks, Parallelism: co.opt.Parallelism}
	}

	// ---- Phase 0: gather every shard's live strings ----------------------
	shards := make([]int, n)
	for i := range shards {
		shards[i] = i
	}
	gathered, _ := mapreduce.Run(mrcfg("distrib-selfjoin-gather"), shards,
		func(shard int, mc *mapreduce.MapCtx[int, StringsResponse]) {
			if failed() {
				return
			}
			var resp StringsResponse
			if err := co.hedgedPost(ctx, shard, "/cluster/strings", nil, &resp); err != nil {
				fail(fmt.Errorf("shard %d strings: %w", shard, err))
				return
			}
			if len(resp.IDs) != len(resp.Tokens) {
				fail(fmt.Errorf("shard %d strings: %d ids vs %d token rows", shard, len(resp.IDs), len(resp.Tokens)))
				return
			}
			// Trim rows the id snapshot does not cover: a concurrent add
			// may have committed on the worker after the snapshot was
			// taken. The join serializes before those adds.
			keep := 0
			for k, id := range resp.IDs {
				if id >= 0 && id < len(gs[shard]) {
					resp.IDs[keep], resp.Tokens[keep] = id, resp.Tokens[k]
					keep++
				}
			}
			resp.IDs, resp.Tokens = resp.IDs[:keep], resp.Tokens[:keep]
			mc.Emit(shard, resp)
		},
		func(shard int, vals []StringsResponse, rc *mapreduce.ReduceCtx[shardStrings]) {
			rc.Emit(shardStrings{shard: shard, resp: vals[0]})
		})
	if failed() {
		return nil, firstErr
	}
	strs := make([]StringsResponse, n)
	for _, g := range gathered {
		strs[g.shard] = g.resp
	}

	// ---- Phase 1: local self-joins + cross-shard probe joins -------------
	// toGlobalPair translates a worker-local id through the snapshot. An
	// id past the snapshot belongs to a concurrently-added string; pairs
	// touching one are dropped — the join serializes before that add (the
	// gather trim handles the probe side, this handles the stored side,
	// which keeps indexing new strings while the join runs).
	toGlobalPair := func(shard, local int) (int, bool) {
		if local < 0 || local >= len(gs[shard]) {
			return 0, false
		}
		return gs[shard][local], true
	}

	var tasks []sjTask
	for i := 0; i < n; i++ {
		tasks = append(tasks, sjTask{i: i, j: -1})
		for j := i + 1; j < n; j++ {
			tasks = append(tasks, sjTask{i: i, j: j})
		}
	}
	pairs, _ := mapreduce.Run(mrcfg("distrib-selfjoin-join"), tasks,
		func(t sjTask, mc *mapreduce.MapCtx[uint64, Pair]) {
			if failed() {
				return
			}
			emit := func(a, b int, p Pair) {
				if a > b {
					a, b = b, a
				}
				mc.Emit(uint64(uint32(a))<<32|uint64(uint32(b)), Pair{A: a, B: b, SLD: p.SLD, NSLD: p.NSLD})
			}
			if t.j < 0 {
				// Local leg: shard i's self-join over its stored state.
				var resp PairsResponse
				if err := co.hedgedPost(ctx, t.i, "/cluster/selfjoin", SelfJoinRequest{JoinConfig: cfg}, &resp); err != nil {
					fail(fmt.Errorf("shard %d selfjoin: %w", t.i, err))
					return
				}
				for _, p := range resp.Pairs {
					a, aok := toGlobalPair(t.i, p.A)
					b, bok := toGlobalPair(t.i, p.B)
					if aok && bok {
						emit(a, b, p)
					}
				}
				return
			}
			// Cross leg: shard i's strings probe shard j's stored corpus.
			// p.A is shard-j local, p.B indexes the posted probes — i.e.
			// the row of shard i's live snapshot.
			if len(strs[t.i].IDs) == 0 {
				return
			}
			var resp PairsResponse
			err := co.hedgedPost(ctx, t.j, "/cluster/probe",
				ProbeJoinRequest{JoinConfig: cfg, Probes: strs[t.i].Tokens}, &resp)
			if err != nil {
				fail(fmt.Errorf("shard %d probe from shard %d: %w", t.j, t.i, err))
				return
			}
			for _, p := range resp.Pairs {
				if p.B < 0 || p.B >= len(strs[t.i].IDs) {
					fail(fmt.Errorf("shard %d probe join returned probe index %d of %d", t.j, p.B, len(strs[t.i].IDs)))
					return
				}
				a, aok := toGlobalPair(t.j, p.A)
				b, bok := toGlobalPair(t.i, strs[t.i].IDs[p.B])
				if aok && bok {
					emit(a, b, p)
				}
			}
		},
		func(_ uint64, vals []Pair, rc *mapreduce.ReduceCtx[Pair]) {
			rc.Emit(vals[0])
		})
	if failed() {
		return nil, firstErr
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	return pairs, nil
}

// hedgedPost runs one worker RPC with the scatter discipline: bounded
// by WriteTimeout, retry-with-backoff, each attempt walking the shard's
// current chain (a 503 member falls through to the next; a non-503
// worker answer is definitive). in == nil sends a GET.
func (co *Coordinator) hedgedPost(ctx context.Context, shard int, path string, in, out any) error {
	ctx, cancel := context.WithTimeout(ctx, co.opt.WriteTimeout)
	defer cancel()
	var last error
	err := httpx.Retry(ctx, co.opt.Retry, func() error {
		co.mu.RLock()
		sh := co.pm.Shards[shard]
		chain := append([]string{sh.Worker}, sh.Standbys...)
		co.mu.RUnlock()
		for _, base := range chain {
			if in == nil {
				last = httpx.GetJSON(ctx, co.client, base+path, out, co.opt.WriteTimeout, maxBodyBytes)
			} else {
				last = httpx.PostJSON(ctx, co.client, base+path, in, out, co.opt.WriteTimeout, maxBodyBytes)
			}
			if last == nil {
				return nil
			}
			if httpx.IsStatus(last, http.StatusServiceUnavailable) {
				continue
			}
			if _, definitive := httpx.Status(last); definitive {
				return nil
			}
		}
		return last
	}, func(attempt int, d time.Duration, err error) {
		co.opt.Logf("distrib: %s on shard %d failed (retry %d in %v): %v", path, shard, attempt, d, err)
	})
	if err != nil {
		if last != nil {
			return last
		}
		return err
	}
	return last
}
