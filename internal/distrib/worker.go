package distrib

import (
	"fmt"
	"net/http"

	tsjoin "repro"
	"repro/internal/token"
)

// WorkerExt serves the worker-side endpoints of the distributed join —
// the executor surface the coordinator drives through the mapreduce
// seam. tsjserve mounts it on its mux when running durable; the
// endpoints are corpus-backed because the distributed join reuses each
// shard's stored filter state (tsj.SelfJoinCorpus / tsj.JoinCorpus)
// rather than rebuilding per call.
type WorkerExt struct {
	C *tsjoin.Corpus
}

// Register mounts the worker cluster endpoints on mux.
func (we WorkerExt) Register(mux *http.ServeMux) {
	mux.HandleFunc("/cluster/strings", we.ServeStrings)
	mux.HandleFunc("/cluster/probe", we.ServeProbe)
	mux.HandleFunc("/cluster/selfjoin", we.ServeSelfJoin)
}

// options maps the wire config onto the join options — the one place
// the translation lives, so every worker runs the phases identically.
func (c JoinConfig) options() tsjoin.Options {
	opts := tsjoin.Options{
		Threshold:    c.Threshold,
		MaxTokenFreq: c.MaxTokenFreq,
	}
	if c.ExactTokens {
		opts.Matching = tsjoin.ExactTokenMatching
	}
	if c.Greedy {
		opts.Aligning = tsjoin.GreedyAligning
	}
	return opts
}

func (c JoinConfig) validate(w http.ResponseWriter) bool {
	if c.Threshold < 0 || c.Threshold >= 1 {
		http.Error(w, "bad request: threshold must be in [0, 1)", http.StatusBadRequest)
		return false
	}
	return true
}

// ServeStrings is GET /cluster/strings: the live corpus as local-id +
// token-multiset rows.
func (we WorkerExt) ServeStrings(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	ids, toks := we.C.LiveTokens()
	if ids == nil {
		ids = []int{}
	}
	if toks == nil {
		toks = [][]string{}
	}
	writeJSON(w, StringsResponse{IDs: ids, Tokens: toks})
}

// ServeProbe is POST /cluster/probe: the bipartite join of the posted
// probe token multisets against the live corpus (Job 1/Job 2 run here,
// on the worker, over its stored order and postings).
func (we WorkerExt) ServeProbe(w http.ResponseWriter, r *http.Request) {
	var req ProbeJoinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !req.validate(w) {
		return
	}
	probes := make([]tsjoin.TokenizedString, len(req.Probes))
	for i, toks := range req.Probes {
		probes[i] = token.New(toks)
	}
	pairs, _, err := we.C.JoinTokenized(probes, req.options())
	if err != nil {
		http.Error(w, "probe join: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, PairsResponse{Pairs: toWirePairs(pairs)})
}

// ServeSelfJoin is POST /cluster/selfjoin: this shard's local
// self-join over its stored filter state.
func (we WorkerExt) ServeSelfJoin(w http.ResponseWriter, r *http.Request) {
	var req SelfJoinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !req.validate(w) {
		return
	}
	pairs, err := we.C.SelfJoin(req.options())
	if err != nil {
		http.Error(w, "self-join: "+err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, PairsResponse{Pairs: toWirePairs(pairs)})
}

func toWirePairs(pairs []tsjoin.Pair) []Pair {
	out := make([]Pair, len(pairs))
	for i, p := range pairs {
		out[i] = Pair{A: p.A, B: p.B, SLD: p.SLD, NSLD: p.NSLD}
	}
	return out
}

// WorkerMux is the minimal worker-node surface the coordinator drives:
// /add, /query, /join, /delete (the single-node wire contract),
// /healthz, /stats (the WorkerStats funnel subset) and the WorkerExt
// cluster endpoints. It exists as the in-process worker for the cluster
// tests — the wire-contract reference — while cmd/tsjserve serves the
// production version of the same contract with instrumentation,
// degraded-mode gating and replication wiring on top.
func WorkerMux(m *tsjoin.ConcurrentMatcher, c *tsjoin.Corpus) http.Handler {
	mux := http.NewServeMux()
	if c != nil {
		WorkerExt{C: c}.Register(mux)
	}
	mux.HandleFunc("/add", func(w http.ResponseWriter, r *http.Request) {
		var req AddRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		id, matches, err := m.AddDurable(req.Name)
		if err != nil {
			http.Error(w, "persistence failure: "+err.Error(), http.StatusInternalServerError)
			return
		}
		writeJSON(w, AddResponse{ID: id, Matches: toWireMatches(matches)})
	})
	mux.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		var req QueryRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, QueryResponse{Matches: toWireMatches(m.Query(req.Name))})
	})
	mux.HandleFunc("/join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		first, matches, err := m.AddAllDurable(req.Names)
		if err != nil {
			http.Error(w, "persistence failure: "+err.Error(), http.StatusInternalServerError)
			return
		}
		results := make([]JoinResult, len(matches))
		for i, ms := range matches {
			results[i] = JoinResult{ID: first + i, Matches: toWireMatches(ms)}
		}
		writeJSON(w, JoinResponse{First: first, Results: results})
	})
	mux.HandleFunc("/delete", func(w http.ResponseWriter, r *http.Request) {
		var req DeleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if req.ID == nil {
			http.Error(w, "bad request: missing id", http.StatusBadRequest)
			return
		}
		if err := m.Delete(*req.ID); err != nil {
			http.Error(w, "delete: "+err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, DeleteResponse{Deleted: *req.ID})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, FromShardedStats(m.Stats()))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func toWireMatches(ms []tsjoin.Match) []Match {
	out := make([]Match, len(ms))
	for i, m := range ms {
		out[i] = Match{ID: m.ID, SLD: m.SLD, NSLD: m.NSLD}
	}
	return out
}
