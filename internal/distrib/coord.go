package distrib

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/httpx"
	"repro/internal/token"
)

// maxBodyBytes bounds coordinator request bodies (mirrors tsjserve).
const maxBodyBytes = 4 << 20

// Options configures a Coordinator. The zero value works for tests;
// production callers set the timeouts to their SLOs.
type Options struct {
	// Tokenizer must match the workers' (it decides routing and the
	// probe tokens of the distributed join). Default whitespace+punct.
	Tokenizer token.Tokenizer
	// QueryTimeout is the per-shard scatter deadline: a worker that has
	// not answered within it makes the shard "missing" for that query.
	// Default 2s.
	QueryTimeout time.Duration
	// WriteTimeout bounds one routed write (including its retries).
	// Default 5s.
	WriteTimeout time.Duration
	// Retry paces the hedged per-shard retry chain. Default 25ms..250ms.
	Retry backoff.Policy
	// Heartbeat is the membership probe interval; FailAfter the number
	// of consecutive missed probes before the coordinator declares the
	// worker dead and promotes a standby. Defaults 1s / 3.
	Heartbeat time.Duration
	FailAfter int
	// MapTasks / Parallelism tune the mapreduce jobs that drive the
	// distributed join phases (0 = engine defaults).
	MapTasks    int
	Parallelism int
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Logf sinks coordinator logs; nil discards.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Tokenizer == nil {
		o.Tokenizer = token.WhitespaceAndPunct
	}
	if o.QueryTimeout <= 0 {
		o.QueryTimeout = 2 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 5 * time.Second
	}
	if o.Retry.Base <= 0 {
		o.Retry = backoff.Policy{Base: 25 * time.Millisecond, Cap: 250 * time.Millisecond}
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 3
	}
	if o.Client == nil {
		o.Client = httpx.NewClient(2 * time.Second)
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// loc is one global id's placement.
type loc struct {
	shard int32
	local int32
}

// Coordinator owns the partition map, the global id table, and the
// scatter/routing logic. It serves the single-node wire contract over
// the cluster; see the package comment.
type Coordinator struct {
	opt    Options
	client *http.Client

	// mu guards the partition map, the id tables and the membership
	// state. Handlers read under RLock; heartbeat failover and the
	// id-assigning writes take the write lock only for the table update
	// itself (network calls happen outside it).
	mu        sync.RWMutex
	pm        Map
	locs      []loc   // global id -> placement
	g         [][]int // shard -> local id -> global id
	live      int     // live (undeleted) global ids
	alive     []bool  // per shard: heartbeat verdict
	fails     []int   // per shard: consecutive missed heartbeats
	failovers []int   // per shard: promotions performed

	// writeMu serializes the id-assigning endpoints (/add, /join,
	// /delete): global ids are arrival sequence numbers, exactly like a
	// single node's, which is what makes cluster results byte-identical
	// to single-node results.
	writeMu sync.Mutex
}

// New builds a coordinator over an initial partition map.
func New(pm Map, opt Options) *Coordinator {
	opt = opt.withDefaults()
	n := len(pm.Shards)
	co := &Coordinator{
		opt:       opt,
		client:    opt.Client,
		pm:        pm.clone(),
		g:         make([][]int, n),
		alive:     make([]bool, n),
		fails:     make([]int, n),
		failovers: make([]int, n),
	}
	for i := range co.alive {
		co.alive[i] = true // innocent until a heartbeat says otherwise
	}
	return co
}

// mapView returns a copy of the current partition map.
func (co *Coordinator) mapView() Map {
	co.mu.RLock()
	defer co.mu.RUnlock()
	return co.pm.clone()
}

// Status snapshots the membership/partition view (GET /cluster).
func (co *Coordinator) Status() ClusterStatus {
	co.mu.RLock()
	defer co.mu.RUnlock()
	st := ClusterStatus{Epoch: co.pm.Epoch, Strings: len(co.locs), Live: co.live}
	for i, sh := range co.pm.Shards {
		st.Shards = append(st.Shards, ShardStatus{
			Worker:    sh.Worker,
			Standbys:  append([]string(nil), sh.Standbys...),
			Alive:     co.alive[i],
			Moving:    sh.Moving,
			Strings:   len(co.g[i]),
			Failovers: co.failovers[i],
		})
	}
	return st
}

// Handler builds the coordinator's route table.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/add", co.epochChecked(co.handleAdd))
	mux.HandleFunc("/query", co.epochChecked(co.handleQuery))
	mux.HandleFunc("/join", co.epochChecked(co.handleJoin))
	mux.HandleFunc("/delete", co.epochChecked(co.handleDelete))
	mux.HandleFunc("/cluster", co.handleCluster)
	mux.HandleFunc("/cluster/selfjoin", co.handleSelfJoin)
	mux.HandleFunc("/cluster/rebalance", co.handleRebalance)
	mux.HandleFunc("/stats", co.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", co.handleReady)
	return mux
}

// epochChecked rejects requests stamped with a stale partition-map
// epoch: 409 plus the current map, so one round trip refreshes the
// caller. Requests without the header are trusted (the coordinator
// itself routes them against the live map).
func (co *Coordinator) epochChecked(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if hdr := r.Header.Get(EpochHeader); hdr != "" {
			want, err := strconv.ParseUint(hdr, 10, 64)
			if err != nil {
				http.Error(w, "bad "+EpochHeader+" header", http.StatusBadRequest)
				return
			}
			if cur := co.mapView().Epoch; want != cur {
				writeJSONStatus(w, http.StatusConflict, StaleEpochResponse{
					Error:   fmt.Sprintf("stale partition map: epoch %d, cluster at %d", want, cur),
					Cluster: co.Status(),
				})
				return
			}
		}
		h(w, r)
	}
}

func (co *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, co.Status())
}

func (co *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	co.mu.RLock()
	var dead []int
	for i, ok := range co.alive {
		if !ok {
			dead = append(dead, i)
		}
	}
	co.mu.RUnlock()
	if len(dead) > 0 {
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("not ready: shards %v have no live worker", dead), http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleRebalance is the versioned rebalance stub: it marks a shard
// moving (done=false) or settled (done=true) and bumps the epoch, so
// writes to the shard are rejected for the duration and every cached
// map is detectably stale. The actual data move is the named follow-up;
// the map plumbing it needs is already here.
func (co *Coordinator) handleRebalance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Shard *int `json:"shard"`
		Done  bool `json:"done"`
	}
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Shard == nil {
		http.Error(w, "bad request: missing shard", http.StatusBadRequest)
		return
	}
	co.mu.Lock()
	if *req.Shard < 0 || *req.Shard >= len(co.pm.Shards) {
		co.mu.Unlock()
		http.Error(w, "bad request: no such shard", http.StatusBadRequest)
		return
	}
	co.pm.Shards[*req.Shard].Moving = !req.Done
	co.pm.Epoch++
	co.mu.Unlock()
	co.opt.Logf("distrib: shard %d moving=%v (epoch %d)", *req.Shard, !req.Done, co.mapView().Epoch)
	writeJSON(w, co.Status())
}

// ---- Routed writes -------------------------------------------------------

// routeError maps a routing failure onto the client response: worker
// rejections pass through with their status, transport failures are
// 502, deadline exhaustion 503 (retryable).
func routeError(w http.ResponseWriter, what string, err error) {
	if se, ok := httpx.Status(err); ok {
		// The owning worker answered: its verdict (400 double delete, 503
		// degraded, ...) is the cluster's verdict.
		if se.Code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, what+": "+se.Body, se.Code)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, what+": worker did not answer in time: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	http.Error(w, what+": "+err.Error(), http.StatusBadGateway)
}

// postWorker POSTs to the shard's active worker with retry-with-backoff
// until ctx ends. Writes never fall back to standbys (they are
// read-only); the URL is re-read from the map each attempt so a
// mid-write failover heals the retry loop.
func (co *Coordinator) postWorker(ctx context.Context, shard int, path string, in, out any) error {
	var last error
	err := httpx.Retry(ctx, co.opt.Retry, func() error {
		co.mu.RLock()
		url := co.pm.Shards[shard].Worker + path
		co.mu.RUnlock()
		last = httpx.PostJSON(ctx, co.client, url, in, out, co.opt.QueryTimeout, maxBodyBytes)
		if se, ok := httpx.Status(last); ok && se.Code != http.StatusServiceUnavailable {
			// A definitive worker answer (2xx handled above; 4xx/5xx other
			// than 503) is not retryable: surface it.
			return nil
		}
		return last
	}, func(attempt int, d time.Duration, err error) {
		co.opt.Logf("distrib: %s on shard %d failed (retry %d in %v): %v", path, shard, attempt, d, err)
	})
	if err != nil {
		if last != nil {
			return last
		}
		return err
	}
	return last
}

// addOne routes one /add: owner-shard add plus a scatter query of every
// other shard, merged into the single-node response. Caller holds
// writeMu.
func (co *Coordinator) addOne(ctx context.Context, name string) (int, []Match, int, error) {
	pm := co.mapView()
	owner := pm.OwnerOf(name, co.opt.Tokenizer)
	if pm.Shards[owner].Moving {
		return 0, nil, http.StatusServiceUnavailable,
			fmt.Errorf("shard %d is rebalancing: writes to it are rejected until the move completes", owner)
	}
	var resp AddResponse
	if err := co.postWorker(ctx, owner, "/add", AddRequest{Name: name}, &resp); err != nil {
		return 0, nil, 0, err
	}

	// Register the global id. The local id must be the next one we have
	// seen from this shard — anything else means a write bypassed the
	// coordinator and the translation table is no longer authoritative.
	co.mu.Lock()
	if resp.ID != len(co.g[owner]) {
		co.mu.Unlock()
		return 0, nil, http.StatusBadGateway,
			fmt.Errorf("shard %d assigned local id %d, expected %d: out-of-band writes detected", owner, resp.ID, len(co.g[owner]))
	}
	gid := len(co.locs)
	co.locs = append(co.locs, loc{shard: int32(owner), local: int32(resp.ID)})
	co.g[owner] = append(co.g[owner], gid)
	co.live++
	co.mu.Unlock()

	merged, missing, err := co.mergeScatter(ctx, name, owner, resp.Matches)
	if err != nil {
		return 0, nil, 0, err
	}
	if len(missing) > 0 {
		// The string IS indexed (the owner committed it); the match list
		// would be incomplete, and /add has no partial mode. Fail closed.
		return 0, nil, http.StatusServiceUnavailable,
			fmt.Errorf("shards %v did not answer: matches would be incomplete (string %d is indexed)", missing, gid)
	}
	return gid, merged, 0, nil
}

// mergeScatter queries every shard but owner, translates all local
// match ids (owner's included) to global ids and merges them in global
// id order — the single-node order.
func (co *Coordinator) mergeScatter(ctx context.Context, name string, owner int, ownerMatches []Match) ([]Match, []int, error) {
	results, missing := co.scatterQuery(ctx, name, owner)
	if owner >= 0 {
		results[owner] = ownerMatches
	}
	merged, err := co.toGlobal(results)
	if err != nil {
		return nil, nil, err
	}
	return merged, missing, nil
}

// toGlobal translates per-shard local matches to global ids and sorts.
// A local id past the end of the translation table is NOT an error: a
// concurrent /add may have committed on the worker before its response
// (and global id) reached the coordinator, and a racing query can
// legitimately see that string. Dropping the match serializes the query
// before the in-flight add — the answer a single node could also have
// given. Genuine out-of-band writes are still caught authoritatively on
// the write path (addOne's next-id check).
func (co *Coordinator) toGlobal(perShard [][]Match) ([]Match, error) {
	co.mu.RLock()
	defer co.mu.RUnlock()
	var out []Match
	for shard, ms := range perShard {
		for _, m := range ms {
			if m.ID < 0 {
				return nil, fmt.Errorf("shard %d matched negative local id %d", shard, m.ID)
			}
			if m.ID >= len(co.g[shard]) {
				continue
			}
			out = append(out, Match{ID: co.g[shard][m.ID], SLD: m.SLD, NSLD: m.NSLD})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

func (co *Coordinator) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req AddRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	ctx, cancel := context.WithTimeout(r.Context(), co.opt.WriteTimeout)
	defer cancel()
	gid, matches, code, err := co.addOne(ctx, req.Name)
	if err != nil {
		if code != 0 {
			if code == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			http.Error(w, "add: "+err.Error(), code)
			return
		}
		routeError(w, "add", err)
		return
	}
	writeJSON(w, AddResponse{ID: gid, Matches: emptyNotNull(matches)})
}

func (co *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req JoinRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	ctx, cancel := context.WithTimeout(r.Context(), time.Duration(len(req.Names)+1)*co.opt.WriteTimeout)
	defer cancel()
	first := -1
	results := make([]JoinResult, 0, len(req.Names))
	for _, name := range req.Names {
		gid, matches, code, err := co.addOne(ctx, name)
		if err != nil {
			// Like a single node's failed batch, earlier members stay
			// indexed; report where it broke.
			what := fmt.Sprintf("join: name %d of %d", len(results), len(req.Names))
			if code != 0 {
				if code == http.StatusServiceUnavailable {
					w.Header().Set("Retry-After", "1")
				}
				http.Error(w, what+": "+err.Error(), code)
				return
			}
			routeError(w, what, err)
			return
		}
		if first < 0 {
			first = gid
		}
		results = append(results, JoinResult{ID: gid, Matches: emptyNotNull(matches)})
	}
	writeJSON(w, JoinResponse{First: first, Results: results})
}

func (co *Coordinator) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == nil {
		http.Error(w, "bad request: missing id", http.StatusBadRequest)
		return
	}
	co.writeMu.Lock()
	defer co.writeMu.Unlock()
	co.mu.RLock()
	var l loc
	known := *req.ID >= 0 && *req.ID < len(co.locs)
	if known {
		l = co.locs[*req.ID]
	}
	moving := known && co.pm.Shards[l.shard].Moving
	co.mu.RUnlock()
	if !known {
		http.Error(w, fmt.Sprintf("delete: no string with id %d", *req.ID), http.StatusBadRequest)
		return
	}
	if moving {
		w.Header().Set("Retry-After", "1")
		http.Error(w, fmt.Sprintf("delete: shard %d is rebalancing", l.shard), http.StatusServiceUnavailable)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.opt.WriteTimeout)
	defer cancel()
	local := int(l.local)
	var resp DeleteResponse
	if err := co.postWorker(ctx, int(l.shard), "/delete", DeleteRequest{ID: &local}, &resp); err != nil {
		routeError(w, "delete", err)
		return
	}
	co.mu.Lock()
	co.live--
	co.mu.Unlock()
	writeJSON(w, DeleteResponse{Deleted: *req.ID})
}

// ---- Scatter-gather query ------------------------------------------------

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	partial := r.URL.Query().Get("partial") == "true"
	ctx, cancel := context.WithTimeout(r.Context(), co.opt.QueryTimeout+time.Second)
	defer cancel()
	results, missing := co.scatterQuery(ctx, req.Name, -1)
	if len(missing) > 0 && !partial {
		// Fail closed: an incomplete match set is silently wrong for the
		// screening use case. ?partial=true opts into degraded answers.
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, struct {
			Error         string `json:"error"`
			MissingShards []int  `json:"missing_shards"`
		}{fmt.Sprintf("shards %v did not answer within the deadline (use ?partial=true for partial results)", missing), missing})
		return
	}
	merged, err := co.toGlobal(results)
	if err != nil {
		http.Error(w, "query: "+err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, QueryResponse{Matches: emptyNotNull(merged), MissingShards: missing})
}

// ---- Aggregated stats ----------------------------------------------------

func (co *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	pm := co.mapView()
	ctx, cancel := context.WithTimeout(r.Context(), co.opt.QueryTimeout)
	defer cancel()
	rows := make([]ClusterWorkerStats, len(pm.Shards))
	var wg sync.WaitGroup
	for i, sh := range pm.Shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			var ws WorkerStats
			if err := httpx.GetJSON(ctx, co.client, url+"/stats", &ws, co.opt.QueryTimeout, maxBodyBytes); err != nil {
				rows[i] = ClusterWorkerStats{Worker: url, Error: err.Error()}
				return
			}
			rows[i] = ClusterWorkerStats{Worker: url, Alive: true, Stats: &ws}
		}(i, sh.Worker)
	}
	wg.Wait()
	// Fold the reachable workers' funnels into one cluster-wide view —
	// the remote-shard counterpart of the in-process shard merge.
	var agg WorkerStats
	total := agg.Sharded()
	for _, row := range rows {
		if row.Stats != nil {
			total.Merge(row.Stats.Sharded())
		}
	}
	st := co.Status()
	writeJSON(w, ClusterStats{
		Epoch:   st.Epoch,
		Strings: st.Strings,
		Live:    st.Live,
		Cluster: FromShardedStats(total),
		Workers: rows,
	})
}

// ---- JSON plumbing -------------------------------------------------------

// decodeJSON parses a POSTed JSON body (mirrors tsjserve's decode).
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			http.Error(w, "request body too large", http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// emptyNotNull keeps "matches": [] instead of null on the wire, exactly
// like a single node's JSON.
func emptyNotNull(ms []Match) []Match {
	if ms == nil {
		return []Match{}
	}
	return ms
}
