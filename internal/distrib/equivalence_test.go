package distrib_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	tsjoin "repro"
	"repro/internal/backoff"
	"repro/internal/distrib"
	"repro/internal/namegen"
	"repro/internal/token"
)

// testWorker is one in-process corpus-backed worker node.
type testWorker struct {
	ts *httptest.Server
}

func newTestWorker(t *testing.T, mopts tsjoin.MatcherOptions) *testWorker {
	t.Helper()
	c, err := tsjoin.OpenCorpus(t.TempDir(), tsjoin.CorpusOptions{DisableSync: true})
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	m, err := tsjoin.NewConcurrentMatcherFromCorpus(c, tsjoin.ConcurrentMatcherOptions{MatcherOptions: mopts, Shards: 2})
	if err != nil {
		t.Fatalf("matcher: %v", err)
	}
	ts := httptest.NewServer(distrib.WorkerMux(m, c))
	t.Cleanup(func() {
		ts.Close()
		m.Close()
		c.Close()
	})
	return &testWorker{ts: ts}
}

// newTestCluster builds n workers plus a coordinator serving them.
func newTestCluster(t *testing.T, n int, mopts tsjoin.MatcherOptions, opt distrib.Options) (*distrib.Coordinator, *httptest.Server, []*testWorker) {
	t.Helper()
	workers := make([]*testWorker, n)
	pm := distrib.Map{}
	for i := range workers {
		workers[i] = newTestWorker(t, mopts)
		pm.Shards = append(pm.Shards, distrib.Shard{Worker: workers[i].ts.URL})
	}
	co := distrib.New(pm, opt)
	cs := httptest.NewServer(co.Handler())
	t.Cleanup(cs.Close)
	return co, cs, workers
}

func postRaw(t *testing.T, url string, in any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func mustPost(t *testing.T, url string, in, out any) {
	t.Helper()
	code, body := postRaw(t, url, in)
	if code != http.StatusOK {
		t.Fatalf("POST %s: status %d: %s", url, code, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v (%s)", url, err, body)
		}
	}
}

func wireMatches(ms []tsjoin.Match) []distrib.Match {
	out := make([]distrib.Match, 0, len(ms))
	for _, m := range ms {
		out = append(out, distrib.Match{ID: m.ID, SLD: m.SLD, NSLD: m.NSLD})
	}
	return out
}

func wirePairs(ps []tsjoin.Pair) []distrib.Pair {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
	out := make([]distrib.Pair, 0, len(ps))
	for _, p := range ps {
		out = append(out, distrib.Pair{A: p.A, B: p.B, SLD: p.SLD, NSLD: p.NSLD})
	}
	return out
}

// assertSameJSON asserts the cluster's raw response bytes are exactly
// the single-node wire encoding of want — the byte-level equivalence
// the subsystem promises.
func assertSameJSON(t *testing.T, what string, got []byte, want any) {
	t.Helper()
	exp, err := json.Marshal(want)
	if err != nil {
		t.Fatalf("marshal want: %v", err)
	}
	if !bytes.Equal(bytes.TrimSpace(got), exp) {
		t.Fatalf("%s diverged from single node:\n  cluster: %s\n  single:  %s", what, bytes.TrimSpace(got), exp)
	}
}

// TestClusterEquivalence is the distributed-vs-single-node property:
// the same add/join/delete/query traffic driven through a 3-worker
// cluster and through one single-node engine must produce byte-identical
// responses — global ids are arrival sequence numbers, matches merge in
// global id order — and the distributed self-join must equal the
// single-node SelfJoin over the union corpus. Run across two thresholds
// and an exact-token ablation.
func TestClusterEquivalence(t *testing.T) {
	all := namegen.Generate(namegen.Config{Seed: 91, NumNames: 150})
	seq, batch, probes := all[:100], all[100:120], all[120:]

	for _, th := range []float64{0.15, 0.3} {
		th := th
		t.Run(fmt.Sprintf("th=%.2f", th), func(t *testing.T) {
			mopts := tsjoin.MatcherOptions{Threshold: th}
			_, cs, _ := newTestCluster(t, 3, mopts, distrib.Options{
				QueryTimeout: 10 * time.Second,
				WriteTimeout: 20 * time.Second,
			})

			// Single-node reference over its own durable corpus.
			rc, err := tsjoin.OpenCorpus(t.TempDir(), tsjoin.CorpusOptions{DisableSync: true})
			if err != nil {
				t.Fatalf("ref corpus: %v", err)
			}
			rm, err := tsjoin.NewConcurrentMatcherFromCorpus(rc, tsjoin.ConcurrentMatcherOptions{MatcherOptions: mopts, Shards: 3})
			if err != nil {
				t.Fatalf("ref matcher: %v", err)
			}
			defer func() {
				rm.Close()
				rc.Close()
			}()

			anyMatch := false

			// Sequential adds.
			for i, name := range seq {
				code, body := postRaw(t, cs.URL+"/add", distrib.AddRequest{Name: name})
				if code != http.StatusOK {
					t.Fatalf("add %d: status %d: %s", i, code, body)
				}
				id, ms, err := rm.AddDurable(name)
				if err != nil {
					t.Fatalf("ref add %d: %v", i, err)
				}
				anyMatch = anyMatch || len(ms) > 0
				assertSameJSON(t, fmt.Sprintf("add %q", name), body,
					distrib.AddResponse{ID: id, Matches: wireMatches(ms)})
			}

			// One atomic batch via /join.
			code, body := postRaw(t, cs.URL+"/join", distrib.JoinRequest{Names: batch})
			if code != http.StatusOK {
				t.Fatalf("join: status %d: %s", code, body)
			}
			first, mss, err := rm.AddAllDurable(batch)
			if err != nil {
				t.Fatalf("ref join: %v", err)
			}
			wantJoin := distrib.JoinResponse{First: first}
			for i, ms := range mss {
				anyMatch = anyMatch || len(ms) > 0
				wantJoin.Results = append(wantJoin.Results, distrib.JoinResult{ID: first + i, Matches: wireMatches(ms)})
			}
			assertSameJSON(t, "join batch", body, wantJoin)

			// Deletes (including a double delete, which must 400 like a
			// single node).
			for _, id := range []int{2, 41, 77, 103} {
				id := id
				code, body := postRaw(t, cs.URL+"/delete", distrib.DeleteRequest{ID: &id})
				if err := rm.Delete(id); err != nil {
					t.Fatalf("ref delete %d: %v", id, err)
				}
				if code != http.StatusOK {
					t.Fatalf("delete %d: status %d: %s", id, code, body)
				}
				assertSameJSON(t, fmt.Sprintf("delete %d", id), body, distrib.DeleteResponse{Deleted: id})
			}
			dup := 41
			if code, _ := postRaw(t, cs.URL+"/delete", distrib.DeleteRequest{ID: &dup}); code != http.StatusBadRequest {
				t.Fatalf("double delete: status %d, want 400", code)
			}
			if err := rm.Delete(dup); err == nil {
				t.Fatalf("ref double delete unexpectedly succeeded")
			}

			// Scatter-gather queries: indexed names and unseen ones.
			qnames := append(append([]string{}, seq[3], seq[55], batch[7]), probes...)
			for _, name := range qnames {
				code, body := postRaw(t, cs.URL+"/query", distrib.QueryRequest{Name: name})
				if code != http.StatusOK {
					t.Fatalf("query %q: status %d: %s", name, code, body)
				}
				ms := rm.Query(name)
				anyMatch = anyMatch || len(ms) > 0
				assertSameJSON(t, fmt.Sprintf("query %q", name), body,
					distrib.QueryResponse{Matches: wireMatches(ms)})
			}
			if !anyMatch {
				t.Fatalf("degenerate workload: no operation produced matches, equivalence not exercised")
			}

			// Distributed self-join vs the single-node SelfJoin over the
			// union corpus, exact and under the exact-token ablation.
			for _, cfg := range []distrib.JoinConfig{
				{Threshold: th},
				{Threshold: th, ExactTokens: true, Greedy: true},
			} {
				var got distrib.PairsResponse
				mustPost(t, cs.URL+"/cluster/selfjoin", distrib.SelfJoinRequest{JoinConfig: cfg}, &got)
				ropts := tsjoin.Options{Threshold: cfg.Threshold, MaxTokenFreq: cfg.MaxTokenFreq}
				if cfg.ExactTokens {
					ropts.Matching = tsjoin.ExactTokenMatching
				}
				if cfg.Greedy {
					ropts.Aligning = tsjoin.GreedyAligning
				}
				want, err := rc.SelfJoin(ropts)
				if err != nil {
					t.Fatalf("ref selfjoin: %v", err)
				}
				wp := wirePairs(want)
				if len(wp) == 0 {
					t.Fatalf("degenerate workload: single-node self-join empty at th=%.2f", cfg.Threshold)
				}
				gb, _ := json.Marshal(got.Pairs)
				wb, _ := json.Marshal(wp)
				if !bytes.Equal(gb, wb) {
					t.Fatalf("distributed self-join diverged (cfg %+v):\n  cluster: %s\n  single:  %s", cfg, gb, wb)
				}
			}
		})
	}
}

// TestClusterEquivalenceAfterFailover re-runs the query equivalence
// after a worker dies and its standby chain answers: hedged scatter
// legs walk to the standby and the merged result set stays the
// single-node one.
func TestClusterEquivalenceAfterFailover(t *testing.T) {
	mopts := tsjoin.MatcherOptions{Threshold: 0.3}

	// Shard 0 gets a warm twin in its standby chain from the start;
	// writes never touch it, so we replay shard 0's slice of the traffic
	// into it by hand below (same names, same order → same local ids).
	primary0 := newTestWorker(t, mopts)
	twin := newTestWorker(t, mopts)
	worker1 := newTestWorker(t, mopts)
	pm := distrib.Map{Shards: []distrib.Shard{
		{Worker: primary0.ts.URL, Standbys: []string{twin.ts.URL}},
		{Worker: worker1.ts.URL},
	}}
	co := distrib.New(pm, distrib.Options{
		QueryTimeout: 5 * time.Second,
		WriteTimeout: 10 * time.Second,
		Retry:        backoff.Policy{Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
	})
	cs := httptest.NewServer(co.Handler())
	t.Cleanup(cs.Close)

	rc, err := tsjoin.OpenCorpus(t.TempDir(), tsjoin.CorpusOptions{DisableSync: true})
	if err != nil {
		t.Fatalf("ref corpus: %v", err)
	}
	rm, err := tsjoin.NewConcurrentMatcherFromCorpus(rc, tsjoin.ConcurrentMatcherOptions{MatcherOptions: mopts, Shards: 2})
	if err != nil {
		t.Fatalf("ref matcher: %v", err)
	}
	defer func() {
		rm.Close()
		rc.Close()
	}()

	names := namegen.Generate(namegen.Config{Seed: 17, NumNames: 60})
	var shard0Names []string
	for _, name := range names[:50] {
		mustPost(t, cs.URL+"/add", distrib.AddRequest{Name: name}, nil)
		if _, _, err := rm.AddDurable(name); err != nil {
			t.Fatalf("ref add: %v", err)
		}
		if pm.OwnerOf(name, token.WhitespaceAndPunct) == 0 {
			shard0Names = append(shard0Names, name)
		}
	}
	if len(shard0Names) == 0 {
		t.Fatalf("degenerate routing: no name landed on shard 0")
	}

	// Warm the twin with shard 0's slice in arrival order (local ids
	// 0..k, exactly the dead primary's), then kill the primary: hedged
	// scatter legs must walk to the twin.
	mustPost(t, twin.ts.URL+"/join", distrib.JoinRequest{Names: shard0Names}, nil)
	primary0.ts.Close()

	anyMatch := false
	for _, name := range names[50:] {
		code, body := postRaw(t, cs.URL+"/query", distrib.QueryRequest{Name: name})
		if code != http.StatusOK {
			t.Fatalf("query %q after worker death: status %d: %s", name, code, body)
		}
		ms := rm.Query(name)
		anyMatch = anyMatch || len(ms) > 0
		assertSameJSON(t, fmt.Sprintf("query %q", name), body, distrib.QueryResponse{Matches: wireMatches(ms)})
	}
	if !anyMatch {
		t.Fatalf("degenerate workload: no query matched, failover equivalence not exercised")
	}
}
