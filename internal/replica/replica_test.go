package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/corpus"
)

// memEngine is a pure in-memory Applier: each payload is one LSN unit,
// exactly the corpus's accounting, so protocol tests need no disk.
type memEngine struct {
	mu      sync.Mutex
	applied [][]byte
	sealErr error
}

func (e *memEngine) LSN() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return uint64(len(e.applied))
}

func (e *memEngine) Apply(p []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.applied = append(e.applied, append([]byte(nil), p...))
	return nil
}

func (e *memEngine) Seal() error { return e.sealErr }

func (e *memEngine) payloads() [][]byte {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([][]byte, len(e.applied))
	copy(out, e.applied)
	return out
}

// testPayloads builds n distinct fake record payloads.
func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{0x01, byte(i), byte(i >> 8)}
	}
	return out
}

// postApply drives ServeApply directly with a recorder.
func postApply(t *testing.T, s *Standby, req applyRequest) (applyResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	r := httptest.NewRequest(http.MethodPost, "/replication/apply", bytes.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeApply(w, r)
	var resp applyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad apply response (%d): %q", w.Code, w.Body.String())
	}
	return resp, w.Code
}

func newMemStandby(t *testing.T) (*Standby, *memEngine) {
	t.Helper()
	eng := &memEngine{}
	reset := func() (Applier, error) {
		eng = &memEngine{}
		return eng, nil
	}
	s := NewStandby(eng, reset, StandbyOptions{Primary: "http://unused", Advertise: "http://unused"})
	return s, eng
}

func TestServeApplyGapAndOverlap(t *testing.T) {
	s, eng := newMemStandby(t)
	p := testPayloads(5)

	// Clean batch.
	resp, code := postApply(t, s, applyRequest{From: 0, Frames: makeFrames(p[:2])})
	if code != http.StatusOK || resp.LSN != 2 {
		t.Fatalf("clean batch: code=%d lsn=%d", code, resp.LSN)
	}

	// Gap: a batch starting beyond our LSN must be rejected untouched,
	// answering where we actually are.
	resp, code = postApply(t, s, applyRequest{From: 4, Frames: makeFrames(p[4:])})
	if code != http.StatusOK || resp.LSN != 2 {
		t.Fatalf("gap batch: code=%d lsn=%d", code, resp.LSN)
	}
	if st := s.Status(); st.GapRejects != 1 {
		t.Fatalf("gap rejects = %d, want 1", st.GapRejects)
	}

	// Retry after a lost ack: the batch overlaps what we already applied;
	// the overlap must be skipped, not re-applied.
	resp, _ = postApply(t, s, applyRequest{From: 0, Frames: makeFrames(p[:4])})
	if resp.LSN != 4 {
		t.Fatalf("overlap batch: lsn=%d, want 4", resp.LSN)
	}
	got := eng.payloads()
	if len(got) != 4 {
		t.Fatalf("applied %d records, want 4 (duplicates not suppressed)", len(got))
	}
	for i, b := range got {
		if !bytes.Equal(b, p[i]) {
			t.Fatalf("record %d = %v, want %v", i, b, p[i])
		}
	}

	// A corrupted frame must be rejected before touching the engine.
	bad := makeFrames(p[4:])
	bad[0].CRC ^= 1
	resp, code = postApply(t, s, applyRequest{From: 4, Frames: bad})
	if code != http.StatusInternalServerError || resp.LSN != 4 {
		t.Fatalf("corrupt frame: code=%d lsn=%d", code, resp.LSN)
	}

	// Heartbeat: no frames, counts, refreshes contact.
	resp, _ = postApply(t, s, applyRequest{From: 4})
	if resp.LSN != 4 {
		t.Fatalf("heartbeat lsn=%d", resp.LSN)
	}
	if st := s.Status(); st.Heartbeats != 1 || !st.Registered {
		t.Fatalf("after heartbeat: %+v", st)
	}

	// Method rejection.
	w := httptest.NewRecorder()
	s.ServeApply(w, httptest.NewRequest(http.MethodGet, "/replication/apply", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET apply: code=%d", w.Code)
	}
}

func TestServeApplyResyncAndPromote(t *testing.T) {
	s, _ := newMemStandby(t)
	p := testPayloads(4)

	// Seed some pre-resync state the wipe must discard.
	postApply(t, s, applyRequest{From: 0, Frames: makeFrames(testPayloads(2))})

	// First bootstrap chunk: wipe, then apply from offset 0.
	resp, _ := postApply(t, s, applyRequest{From: 0, Resync: true, SyncTo: 4, Frames: makeFrames(p[:2])})
	if resp.LSN != 2 {
		t.Fatalf("resync chunk: lsn=%d, want 2", resp.LSN)
	}
	if st := s.Status(); !st.Syncing || st.SyncTarget != 4 || st.Resyncs != 1 {
		t.Fatalf("mid-bootstrap status: %+v", st)
	}

	// Promotion mid-bootstrap must be refused: the state is a partial
	// re-seed, not any prefix of the primary's history.
	if err := s.Promote(); !errors.Is(err, ErrSyncing) {
		t.Fatalf("promote mid-sync: %v, want ErrSyncing", err)
	}

	// Final chunk reaches the target; syncing clears.
	resp, _ = postApply(t, s, applyRequest{From: 2, SyncTo: 4, Frames: makeFrames(p[2:])})
	if resp.LSN != 4 {
		t.Fatalf("final chunk: lsn=%d", resp.LSN)
	}
	if st := s.Status(); st.Syncing {
		t.Fatalf("still syncing after reaching target: %+v", st)
	}

	if err := s.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if err := s.Promote(); err != nil {
		t.Fatalf("second promote not idempotent: %v", err)
	}
	if !s.Sealed() {
		t.Fatal("not sealed after promote")
	}

	// Replication traffic after promotion is answered Sealed so the old
	// primary stops shipping; nothing is applied.
	resp, code := postApply(t, s, applyRequest{From: 4, Frames: makeFrames(testPayloads(1))})
	if code != http.StatusOK || !resp.Sealed || resp.LSN != 4 {
		t.Fatalf("post-seal apply: code=%d resp=%+v", code, resp)
	}
}

func TestResyncMarkerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	eng := &memEngine{}
	reset := func() (Applier, error) {
		eng = &memEngine{}
		return eng, nil
	}
	opts := StandbyOptions{Primary: "http://unused", Advertise: "http://unused", StateDir: dir}
	s := NewStandby(eng, reset, opts)
	p := testPayloads(6)

	// A bootstrap starts (wipe + first chunk) but never finishes: the
	// marker must be on disk.
	resp, _ := postApply(t, s, applyRequest{From: 0, Resync: true, SyncTo: 6, Frames: makeFrames(p[:4])})
	if resp.LSN != 4 || !resp.Syncing {
		t.Fatalf("mid-bootstrap ack: %+v", resp)
	}
	if _, err := os.Stat(filepath.Join(dir, "RESYNC")); err != nil {
		t.Fatalf("marker not written: %v", err)
	}

	// "Crash": a fresh Standby over the same state dir must know its
	// engine holds a partial bootstrap, report Syncing, and refuse
	// promotion and real-history batches.
	s2 := NewStandby(&memEngine{applied: testPayloads(4)}, reset, opts)
	if st := s2.Status(); !st.Syncing {
		t.Fatalf("restarted standby not syncing: %+v", st)
	}
	if err := s2.Promote(); !errors.Is(err, ErrSyncing) {
		t.Fatalf("promote of partial bootstrap: %v, want ErrSyncing", err)
	}
	resp, _ = postApply(t, s2, applyRequest{From: 4, Frames: makeFrames(p[4:])})
	if !resp.Syncing {
		t.Fatalf("real-history batch accepted mid-resync: %+v", resp)
	}

	// A fresh, completed re-seed clears the marker and the state.
	resp, _ = postApply(t, s2, applyRequest{From: 0, Resync: true, SyncTo: 6, Frames: makeFrames(p[:4])})
	if resp.LSN != 4 || !resp.Syncing {
		t.Fatalf("re-seed first chunk: %+v", resp)
	}
	resp, _ = postApply(t, s2, applyRequest{From: 4, SyncTo: 6, Frames: makeFrames(p[4:])})
	if resp.LSN != 6 || resp.Syncing {
		t.Fatalf("re-seed final chunk: %+v", resp)
	}
	if _, err := os.Stat(filepath.Join(dir, "RESYNC")); !os.IsNotExist(err) {
		t.Fatalf("marker not cleared: %v", err)
	}
	if err := s2.Promote(); err != nil {
		t.Fatalf("promote after re-seed: %v", err)
	}
}

func TestPromoteSealFailureIsRetryable(t *testing.T) {
	eng := &memEngine{sealErr: errors.New("disk full")}
	s := NewStandby(eng, func() (Applier, error) { return eng, nil },
		StandbyOptions{Primary: "http://unused", Advertise: "http://unused"})
	if err := s.Promote(); err == nil {
		t.Fatal("promote with failing seal succeeded")
	}
	if s.Sealed() {
		t.Fatal("sealed after failed promote")
	}
	eng.sealErr = nil
	if err := s.Promote(); err != nil {
		t.Fatalf("retried promote: %v", err)
	}
}

// fastPrimaryOptions keeps a unit-test pair snappy.
func fastPrimaryOptions() PrimaryOptions {
	return PrimaryOptions{
		BatchRecords: 4,
		Heartbeat:    10 * time.Millisecond,
		Backoff:      backoff.Policy{Base: time.Millisecond, Cap: 20 * time.Millisecond, Jitter: 0.25},
	}
}

// standbyServer exposes a Standby's apply endpoint over httptest.
func standbyServer(t *testing.T, s *Standby) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/replication/apply", s.ServeApply)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPrimaryStreamsHeartbeatsAndSeals(t *testing.T) {
	c, err := corpus.Open(t.TempDir(), corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	defer c.Close()
	for _, s := range []string{"alpha beta", "beta gamma", "gamma delta", "delta epsilon", "epsilon zeta"} {
		if _, err := c.Add(s); err != nil {
			t.Fatalf("add: %v", err)
		}
	}

	stby, eng := newMemStandby(t)
	srv := standbyServer(t, stby)

	prim := NewPrimary(c, fastPrimaryOptions())
	defer prim.Close()
	if err := prim.Register(srv.URL, 0); err != nil {
		t.Fatalf("register: %v", err)
	}

	waitFor(t, "initial catch-up", func() bool { return stby.LSN() == c.LSN() })
	if got := len(eng.payloads()); got != 5 {
		t.Fatalf("standby applied %d records, want 5", got)
	}

	// Live tail: new commits ship promptly via the notify channel.
	if _, err := c.Add("zeta eta"); err != nil {
		t.Fatalf("add: %v", err)
	}
	if err := c.Delete(0); err != nil {
		t.Fatalf("delete: %v", err)
	}
	waitFor(t, "live tail", func() bool { return stby.LSN() == c.LSN() })

	// Idle: heartbeats flow and the follower reports zero lag.
	waitFor(t, "heartbeats", func() bool { return stby.Status().Heartbeats >= 2 })
	st := prim.Status()
	if len(st.Followers) != 1 {
		t.Fatalf("followers = %d", len(st.Followers))
	}
	f := st.Followers[0]
	if f.State != "streaming" || f.LagRecords != 0 || f.AckedLSN != c.LSN() {
		t.Fatalf("follower status: %+v", f)
	}

	// Promotion seals the standby; the next primary round trip sees it
	// and the ship loop stops.
	if err := stby.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	waitFor(t, "primary observes seal", func() bool {
		fs := prim.Status().Followers
		return len(fs) == 1 && fs[0].State == "sealed"
	})
}

func TestPrimaryBootstrapsBehindFollower(t *testing.T) {
	c, err := corpus.Open(t.TempDir(), corpus.Options{DisableSync: true, ShipBufferRecords: 4})
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	defer c.Close()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa"}
	for _, s := range words {
		if _, err := c.Add(s + " suffix"); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	if err := c.Delete(1); err != nil {
		t.Fatalf("delete: %v", err)
	}
	// LSN 11 with only the last 4 records retained: a fresh follower
	// cannot be served from the ring and must be bootstrapped.

	stby, _ := newMemStandby(t)
	srv := standbyServer(t, stby)

	prim := NewPrimary(c, fastPrimaryOptions())
	defer prim.Close()
	if err := prim.Register(srv.URL, 0); err != nil {
		t.Fatalf("register: %v", err)
	}

	waitFor(t, "bootstrap catch-up", func() bool { return stby.LSN() == c.LSN() })
	st := stby.Status()
	if st.Resyncs < 1 {
		t.Fatalf("no resync recorded: %+v", st)
	}
	if st.Syncing {
		t.Fatalf("still syncing after catch-up: %+v", st)
	}
	// The bootstrap stream re-creates the full LSN history: one payload
	// per LSN unit (tombstones contribute their add and their delete).
	// The resync wiped the engine, so everything applied since the
	// standby started is bootstrap records.
	if got, want := st.AppliedRecords, int64(c.LSN()); got != want {
		t.Fatalf("bootstrap applied %d records, want %d", got, want)
	}
	if fs := prim.Status().Followers; len(fs) != 1 || fs[0].Resyncs < 1 {
		t.Fatalf("primary resync accounting: %+v", fs)
	}

	// After the bootstrap the follower tails incrementally.
	if _, err := c.Add("lambda suffix"); err != nil {
		t.Fatalf("add: %v", err)
	}
	waitFor(t, "post-bootstrap tail", func() bool { return stby.LSN() == c.LSN() })
}

func TestServeRegisterValidation(t *testing.T) {
	c, err := corpus.Open(t.TempDir(), corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatalf("open corpus: %v", err)
	}
	defer c.Close()
	prim := NewPrimary(c, fastPrimaryOptions())

	w := httptest.NewRecorder()
	prim.ServeRegister(w, httptest.NewRequest(http.MethodGet, "/replication/register", nil))
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET register: %d", w.Code)
	}

	w = httptest.NewRecorder()
	prim.ServeRegister(w, httptest.NewRequest(http.MethodPost, "/replication/register", bytes.NewReader([]byte(`{}`))))
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty advertise: %d", w.Code)
	}

	prim.Close()
	body, _ := json.Marshal(registerRequest{Advertise: "http://gone", LSN: 0})
	w = httptest.NewRecorder()
	prim.ServeRegister(w, httptest.NewRequest(http.MethodPost, "/replication/register", bytes.NewReader(body)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("register after close: %d", w.Code)
	}
}
