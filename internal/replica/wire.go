// Package replica is WAL-shipping replication for the durable corpus:
// a primary-side shipper streams committed, CRC-framed WAL records over
// HTTP to N warm standbys, each of which applies them through the same
// corpus mutation path a restart replays through, so a standby is at
// all times a query-serving replica whose logical state — and therefore
// whose join results — match the primary's acknowledged history.
//
// # Offset space and gap detection
//
// Replication runs on the corpus's logical sequence numbers (LSN =
// total committed mutations; see corpus.LSN): the primary ships batches
// tagged with the LSN they start at, and the standby applies a batch
// only where it meets the standby's own LSN. A batch starting beyond it
// is a gap and is rejected; a batch starting at or below it has its
// already-applied prefix skipped (the retry-after-lost-ack case: the
// primary re-sends records the standby applied but whose ack was
// dropped by the network — skipping the overlap is what makes "no
// duplicated records" a property of the protocol rather than of lucky
// timing). Either way the standby answers with its authoritative LSN
// and the primary simply resumes from there.
//
// # Bootstrap
//
// A follower the ship ring cannot serve (fresh, far behind, or diverged
// — e.g. an old primary rejoining) is re-seeded: the standby wipes its
// engine and the primary streams corpus.BootstrapPayloads in chunks,
// which replays to the identical logical state and LSN. While the
// bootstrap is in flight the standby reports "syncing" (it serves
// whatever it has, but is not promotable and not ready).
//
// # Failure handling
//
// Every request carries a per-frame CRC (recomputed end to end, not
// trusted from disk), connect and per-request timeouts, and per-
// follower retry with exponential backoff and jitter (internal/
// backoff). The standby re-registers with the primary whenever
// heartbeats stop, so either side can die and the pair re-converges;
// the replication torture sweep in this package fails every round trip
// of a reference run in turn to prove it.
//
// Promote seals a caught-up standby: the applier rejects further
// replication traffic, the corpus is fsynced, and the caller flips the
// node's role to writable primary.
package replica

import (
	"hash/crc32"
	"time"
)

// Source is the primary-side replication feed, satisfied by the durable
// corpus (and by tsjoin.Corpus, which embeds it).
type Source interface {
	// LSN is the committed logical sequence number.
	LSN() uint64
	// ShipFrom reads committed payloads starting at an LSN; empty means
	// caught up, corpus.ErrShipBehind/ErrShipAhead mean "bootstrap me".
	ShipFrom(from uint64, maxRecords, maxBytes int) ([][]byte, error)
	// ShipNotify returns a channel closed at the next commit.
	ShipNotify() <-chan struct{}
	// BootstrapPayloads synthesizes the full-state stream and its LSN.
	BootstrapPayloads() ([][]byte, uint64)
}

// Applier is the standby-side engine: the corpus-backed matcher that
// installs replicated records and can be sealed at promotion.
type Applier interface {
	// LSN is the engine's committed logical sequence number.
	LSN() uint64
	// Apply installs one replicated payload (add or delete), durably.
	Apply(payload []byte) error
	// Seal flushes the engine to stable storage; called by Promote.
	Seal() error
}

// castagnoli frames every shipped payload; same polynomial as the WAL,
// but recomputed here — the wire does not trust what disk framing the
// record once had.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// wireFrame is one shipped record: payload plus its CRC32-C.
// encoding/json base64s the payload.
type wireFrame struct {
	Payload []byte `json:"p"`
	CRC     uint32 `json:"c"`
}

func makeFrames(payloads [][]byte) []wireFrame {
	out := make([]wireFrame, len(payloads))
	for i, p := range payloads {
		out[i] = wireFrame{Payload: p, CRC: crc32.Checksum(p, castagnoli)}
	}
	return out
}

// registerRequest is the standby's "start shipping to me" handshake:
// POST {primary}/replication/register.
type registerRequest struct {
	// Advertise is the base URL the primary ships to.
	Advertise string `json:"advertise"`
	// LSN is where the standby wants the stream to start.
	LSN uint64 `json:"lsn"`
	// Syncing reports that LSN is an offset into a partial bootstrap
	// (the standby restarted mid-resync), NOT into the primary's real
	// history: the primary must re-seed from scratch, whatever the
	// number says. The two offset spaces coincide only when a bootstrap
	// completes.
	Syncing bool `json:"syncing,omitempty"`
}

type registerResponse struct {
	OK  bool   `json:"ok"`
	LSN uint64 `json:"lsn"` // primary's LSN, for lag display
}

// applyRequest is one shipped batch: POST {standby}/replication/apply.
// Empty Frames is a heartbeat. Resync tells the standby to wipe and
// treat the batch as the start of a bootstrap whose end is SyncTo.
type applyRequest struct {
	From   uint64      `json:"from"`
	Resync bool        `json:"resync,omitempty"`
	SyncTo uint64      `json:"sync_to,omitempty"`
	Frames []wireFrame `json:"frames,omitempty"`
}

// applyResponse always carries the standby's authoritative LSN — after
// a gap rejection, a partial apply, or a clean batch alike, the primary
// resumes from exactly this offset. Syncing qualifies which offset
// space that LSN lives in: while true it indexes the bootstrap stream,
// not real history, and the primary must keep (re-)seeding rather than
// serve ring records at it. Sealed tells an old primary to stop
// shipping: the standby was promoted.
type applyResponse struct {
	LSN     uint64 `json:"lsn"`
	Syncing bool   `json:"syncing,omitempty"`
	Sealed  bool   `json:"sealed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Defaults shared by both ends.
const (
	defaultBatchRecords   = 256
	defaultBatchBytes     = 1 << 20
	defaultHeartbeat      = 2 * time.Second
	defaultRequestTimeout = 10 * time.Second
	defaultConnectTimeout = 5 * time.Second
	// maxApplyBody bounds a decoded apply request on the standby; a
	// batch is at most BatchRecords × maxWALPayload-ish, but in practice
	// far below this.
	maxApplyBody = 64 << 20
)
