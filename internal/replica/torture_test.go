// Replication torture harness: a primary and a warm standby — each a
// real durable corpus with a query-serving sharded matcher on top —
// replicate a scripted add/delete/batch workload while a network fault
// is injected at every primary round trip of a reference run in turn.
// The flavors mirror the distinct failure points of one shipped frame:
//
//   - drop: the connection dies before the batch reaches the standby;
//   - torn: the standby applied the batch but the ack is cut mid-body
//     (the retry-duplicate case gap detection must absorb);
//   - delay: the ack stalls past the client deadline — lost-ack again,
//     reached through the timeout path;
//   - standby-crash: the batch arrives and the standby's disk dies mid-
//     apply (simulated power cut in its iofault injector); the harness
//     restarts it from its own directory and it must re-join;
//   - primary-crash: the primary process dies mid-ship (sticky network
//     crash); the harness reopens its corpus — empty ship ring — and
//     the standby must re-register and re-converge.
//
// After every faulted run the pair must re-converge to the identical
// logical corpus — same id space, same tombstone mask, same content; no
// duplicated, lost, or resurrected records — and promoting the caught-
// up standby must yield a primary whose self-join results and query
// answers are identical to the original's.
package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/corpus"
	"repro/internal/iofault"
	"repro/internal/namegen"
	"repro/internal/stream"
	"repro/internal/tsj"
)

// Small timings so a full sweep stays fast under -race; every wait that
// matters polls with a generous deadline instead of trusting these.
const (
	tortHeartbeat   = 20 * time.Millisecond
	tortRegister    = 60 * time.Millisecond
	tortReqTimeout  = 150 * time.Millisecond
	tortDelayStall  = 600 * time.Millisecond
	tortBatch       = 4
	tortShipRing    = 8
	tortConvergence = 20 * time.Second
)

func tortBackoff() backoff.Policy {
	return backoff.Policy{Base: 2 * time.Millisecond, Cap: 50 * time.Millisecond, Jitter: 0.25}
}

func tortStreamOptions() stream.Options {
	return stream.Options{Threshold: 0.25}
}

// gateHandler is an atomically swappable http.Handler: swap blocks
// until in-flight requests drain, so a "restarted" node never races its
// predecessor's handlers.
type gateHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (g *gateHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if g.h == nil {
		http.Error(w, "node down", http.StatusServiceUnavailable)
		return
	}
	g.h.ServeHTTP(w, r)
}

func (g *gateHandler) swap(h http.Handler) {
	g.mu.Lock()
	g.h = h
	g.mu.Unlock()
}

// repNode is one harness node: a durable corpus behind an iofault
// injector with a warm sharded matcher serving it.
type repNode struct {
	dir string

	mu sync.Mutex
	fs *iofault.Injector
	c  *corpus.Corpus
	m  *stream.ShardedMatcher
}

func openNode(t *testing.T, dir string) *repNode {
	t.Helper()
	n := &repNode{dir: dir}
	if err := n.open(); err != nil {
		t.Fatalf("open node %s: %v", dir, err)
	}
	return n
}

// open (re)builds the corpus and matcher from the node's directory with
// a fresh, disarmed disk injector.
func (n *repNode) open() error {
	fs := iofault.NewInjector(iofault.OS, iofault.Disarmed())
	c, err := corpus.Open(n.dir, corpus.Options{SyncEvery: 1, FS: fs, ShipBufferRecords: tortShipRing})
	if err != nil {
		return err
	}
	m, err := stream.NewShardedFromCorpus(tortStreamOptions(), 2, c)
	if err != nil {
		c.Close()
		return err
	}
	n.mu.Lock()
	n.fs, n.c, n.m = fs, c, m
	n.mu.Unlock()
	return nil
}

func (n *repNode) corpus() *corpus.Corpus {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.c
}

func (n *repNode) matcher() *stream.ShardedMatcher {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.m
}

func (n *repNode) injector() *iofault.Injector {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.fs
}

// crash abandons the node's handles as a dying process would: no flush,
// no close, just the advisory lock released so a reopen can proceed.
func (n *repNode) crash() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.m.Close()
	n.c.ReleaseLockForTest()
}

// shutdown closes the node cleanly (end-of-iteration teardown).
func (n *repNode) shutdown() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.m.Close()
	n.c.Close()
}

// nodeEngine adapts a repNode to the Applier interface, reading the
// node's current handles on every call so restarts and resync swaps
// stay transparent.
type nodeEngine struct{ n *repNode }

func (e nodeEngine) LSN() uint64 { return e.n.corpus().LSN() }

func (e nodeEngine) Apply(p []byte) error { return e.n.matcher().ApplyShipped(p) }

func (e nodeEngine) Seal() error { return e.n.corpus().Sync() }

// harness wires a primary node and a standby node through swappable
// HTTP fronts, with the primary's outbound traffic running through a
// network injector.
type harness struct {
	t *testing.T

	prim    *repNode
	primSrv *httptest.Server
	primG   *gateHandler
	shipper *Primary
	net     *iofault.NetInjector

	stby       *repNode
	stbySrv    *httptest.Server
	stbyG      *gateHandler
	applier    *Standby
	stbyCancel context.CancelFunc

	ctx    context.Context
	cancel context.CancelFunc
}

func newHarness(t *testing.T, plan iofault.NetPlan) *harness {
	t.Helper()
	h := &harness{t: t}
	h.ctx, h.cancel = context.WithCancel(context.Background())

	h.primG = &gateHandler{}
	h.primSrv = httptest.NewServer(h.primG)
	h.stbyG = &gateHandler{}
	h.stbySrv = httptest.NewServer(h.stbyG)

	h.prim = openNode(t, t.TempDir())
	h.stby = openNode(t, t.TempDir())

	h.net = iofault.NewNetInjector(h.primSrv.Client().Transport, plan)
	h.startShipper()
	h.startApplier()
	return h
}

// startShipper builds a Primary over the primary node's current corpus
// and installs its register endpoint.
func (h *harness) startShipper() {
	h.shipper = NewPrimary(h.prim.corpus(), PrimaryOptions{
		BatchRecords:   tortBatch,
		Heartbeat:      tortHeartbeat,
		RequestTimeout: tortReqTimeout,
		Backoff:        tortBackoff(),
		Client:         &http.Client{Transport: h.net},
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/replication/register", h.shipper.ServeRegister)
	h.primG.swap(mux)
}

// startApplier builds a Standby over the standby node's current corpus
// and starts its registration watchdog.
func (h *harness) startApplier() {
	reset := func() (Applier, error) {
		n := h.stby
		n.mu.Lock()
		defer n.mu.Unlock()
		n.m.Close()
		n.c.Close()
		if err := os.RemoveAll(n.dir); err != nil {
			return nil, err
		}
		if err := os.MkdirAll(n.dir, 0o755); err != nil {
			return nil, err
		}
		fs := iofault.NewInjector(iofault.OS, iofault.Disarmed())
		c, err := corpus.Open(n.dir, corpus.Options{SyncEvery: 1, FS: fs, ShipBufferRecords: tortShipRing})
		if err != nil {
			return nil, err
		}
		m, err := stream.NewShardedFromCorpus(tortStreamOptions(), 2, c)
		if err != nil {
			c.Close()
			return nil, err
		}
		n.fs, n.c, n.m = fs, c, m
		return nodeEngine{n}, nil
	}
	h.applier = NewStandby(nodeEngine{h.stby}, reset, StandbyOptions{
		Primary:          h.primSrv.URL,
		Advertise:        h.stbySrv.URL,
		RegisterInterval: tortRegister,
		RequestTimeout:   tortReqTimeout,
		Backoff:          tortBackoff(),
		StateDir:         h.stby.dir,
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/replication/apply", h.applier.ServeApply)
	h.stbyG.swap(mux)
	ctx, cancel := context.WithCancel(h.ctx)
	h.stbyCancel = cancel
	go h.applier.Run(ctx)
}

// restartStandby simulates the standby process dying and coming back on
// the same directory and URL: only fsynced records survive, and the new
// process re-registers at its replayed LSN.
func (h *harness) restartStandby() {
	h.t.Helper()
	h.stbyCancel()
	h.stbyG.swap(nil) // drain in-flight applies, then refuse
	h.stby.crash()
	if err := h.stby.open(); err != nil {
		h.t.Fatalf("reopen standby: %v", err)
	}
	h.startApplier()
}

// restartPrimary simulates the primary process dying mid-ship and
// coming back on the same directory and URL: its corpus replays, its
// ship ring restarts empty (head = LSN), and it has no memory of any
// follower — the standby's watchdog must find it again.
func (h *harness) restartPrimary() {
	h.t.Helper()
	h.primG.swap(nil)
	h.shipper.Close()
	h.prim.crash()
	if err := h.prim.open(); err != nil {
		h.t.Fatalf("reopen primary: %v", err)
	}
	h.net.SetPlan(iofault.NetDisarmed()) // the restarted process's connections work again
	h.startShipper()
}

func (h *harness) teardown() {
	h.cancel()
	h.shipper.Close()
	h.prim.shutdown()
	h.stby.shutdown()
	h.primSrv.Close()
	h.stbySrv.Close()
}

// healFaults is the convergence babysitter: it turns fired crash faults
// into the matching process restarts, exactly once each.
func (h *harness) healFaults(standbyCrashed, primaryCrashed *bool) {
	if !*standbyCrashed && h.stby.injector().Crashed() {
		*standbyCrashed = true
		h.restartStandby()
	}
	if !*primaryCrashed && h.net.Crashed() {
		*primaryCrashed = true
		h.restartPrimary()
	}
}

// workload drives the scripted mutation sequence against the primary's
// matcher (the production write path: WAL append, then index). The
// standby joins mid-script, after enough history that its registration
// cannot be served from the 8-record ship ring and must bootstrap.
func (h *harness) workload(names []string) {
	h.t.Helper()
	add := func(s string) {
		if _, _, err := h.prim.matcher().AddDurable(s); err != nil {
			h.t.Fatalf("primary add: %v", err)
		}
	}
	del := func(id int) {
		if err := h.prim.matcher().Delete(id); err != nil {
			h.t.Fatalf("primary delete %d: %v", id, err)
		}
	}
	for _, s := range names[:10] {
		add(s)
	}
	// LSN 10, ring holds [2, 10): the standby's register at 0 forces a
	// bootstrap under whatever fault is armed.
	if err := h.shipper.Register(h.stbySrv.URL, h.applier.LSN()); err != nil {
		h.t.Fatalf("register standby: %v", err)
	}
	for _, s := range names[10:16] {
		add(s)
	}
	del(3)
	del(11)
	if _, _, err := h.prim.matcher().AddAllDurable(names[16:22]); err != nil {
		h.t.Fatalf("primary batch add: %v", err)
	}
	del(0)
	for _, s := range names[22:26] {
		add(s)
	}
	del(5)
	if _, _, err := h.prim.matcher().AddAllDurable(names[26:30]); err != nil {
		h.t.Fatalf("primary batch add: %v", err)
	}
	// LSN 34: 30 adds + 4 deletes.
}

// converge waits until the standby has caught the primary exactly —
// equal LSNs, no resync in flight — restarting crashed processes along
// the way.
func (h *harness) converge(standbyCrashed, primaryCrashed *bool) {
	h.t.Helper()
	deadline := time.Now().Add(tortConvergence)
	for time.Now().Before(deadline) {
		h.healFaults(standbyCrashed, primaryCrashed)
		st := h.applier.Status()
		if !st.Syncing && st.LSN == h.prim.corpus().LSN() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("pair did not converge: standby=%+v primary lsn=%d followers=%+v",
		h.applier.Status(), h.prim.corpus().LSN(), h.shipper.Status().Followers)
}

// logicalModel extracts the comparable logical state of a corpus: id
// space, tombstone mask, live token content.
type logicalModel struct {
	strs  []string
	alive []bool
}

func logicalOf(c *corpus.Corpus) *logicalModel {
	v := c.View()
	n := v.TC.NumStrings()
	m := &logicalModel{strs: make([]string, n), alive: make([]bool, n)}
	for i := 0; i < n; i++ {
		m.alive[i] = v.Alive[i]
		if v.Alive[i] {
			m.strs[i] = strings.Join(v.TC.Strings[i].Tokens, "\x00")
		}
	}
	return m
}

func logicalEqual(a, b *logicalModel) error {
	if len(a.strs) != len(b.strs) {
		return fmt.Errorf("id space: %d vs %d strings", len(a.strs), len(b.strs))
	}
	for i := range a.strs {
		if a.alive[i] != b.alive[i] {
			return fmt.Errorf("id %d: alive %v vs %v", i, a.alive[i], b.alive[i])
		}
		if a.alive[i] && a.strs[i] != b.strs[i] {
			return fmt.Errorf("id %d: content %q vs %q", i, a.strs[i], b.strs[i])
		}
	}
	return nil
}

// joinPairs renders a corpus self-join canonically for comparison.
func joinPairs(t *testing.T, c *corpus.Corpus) []string {
	t.Helper()
	opts := tsj.DefaultOptions()
	opts.Threshold = 0.25
	res, _, err := tsj.SelfJoinCorpus(c, opts)
	if err != nil {
		t.Fatalf("SelfJoinCorpus: %v", err)
	}
	ps := make([]string, len(res))
	for i, r := range res {
		ps[i] = fmt.Sprintf("%d-%d-%d", r.A, r.B, r.SLD)
	}
	sort.Strings(ps)
	return ps
}

func matchesString(ms []stream.Match) string {
	parts := make([]string, len(ms))
	for i, m := range ms {
		parts[i] = fmt.Sprintf("%d:%d:%.6f", m.ID, m.SLD, m.NSLD)
	}
	return strings.Join(parts, ",")
}

// checkEquivalence asserts the replicated pair is indistinguishable:
// logical state, self-join results, and live query answers.
func (h *harness) checkEquivalence(probes []string) {
	h.t.Helper()
	if err := logicalEqual(logicalOf(h.prim.corpus()), logicalOf(h.stby.corpus())); err != nil {
		h.t.Fatalf("replicated state diverged: %v", err)
	}
	pj := joinPairs(h.t, h.prim.corpus())
	sj := joinPairs(h.t, h.stby.corpus())
	if strings.Join(pj, "|") != strings.Join(sj, "|") {
		h.t.Fatalf("join results diverged:\nprimary: %v\nstandby: %v", pj, sj)
	}
	for _, q := range probes {
		p := matchesString(h.prim.matcher().Query(q))
		s := matchesString(h.stby.matcher().Query(q))
		if p != s {
			h.t.Fatalf("query %q diverged:\nprimary: %s\nstandby: %s", q, p, s)
		}
	}
}

// tortureNames is the deterministic workload corpus (30 names used by
// the script; similar enough under T=0.25 that joins are non-trivial).
func tortureNames() []string {
	return namegen.Generate(namegen.Config{Seed: 7, NumNames: 30})
}

// netFlavor is one network-fault shape swept across every trip index.
type netFlavor struct {
	name string
	plan func(h *harness, i int64) iofault.NetPlan
}

var netFlavors = []netFlavor{
	{"drop", func(h *harness, i int64) iofault.NetPlan {
		return iofault.NetPlan{FailAt: i, Kind: iofault.NetDrop}
	}},
	{"torn", func(h *harness, i int64) iofault.NetPlan {
		return iofault.NetPlan{FailAt: i, Kind: iofault.NetTorn}
	}},
	{"delay", func(h *harness, i int64) iofault.NetPlan {
		return iofault.NetPlan{FailAt: i, Kind: iofault.NetDelay, Stall: tortDelayStall}
	}},
	{"standby-crash", func(h *harness, i int64) iofault.NetPlan {
		// The batch is delivered and the standby's disk dies on the
		// second filesystem operation of the apply: a mid-apply power
		// cut. Only fsynced records survive its restart.
		return iofault.NetPlan{FailAt: i, Kind: iofault.NetTorn, OnFault: func() {
			h.stby.injector().SetPlan(iofault.Plan{FailAt: 1, Crash: true})
		}}
	}},
	{"primary-crash", func(h *harness, i int64) iofault.NetPlan {
		return iofault.NetPlan{FailAt: i, Kind: iofault.NetCrash}
	}},
}

// tortureOne runs the full scripted replication once with the given
// plan and asserts convergence and equivalence. Returns the primary's
// round-trip count (the sweep bound on the reference run).
func tortureOne(t *testing.T, mkPlan func(h *harness) iofault.NetPlan) int64 {
	t.Helper()
	var h *harness
	h = newHarness(t, iofault.NetDisarmed())
	defer h.teardown()
	if mkPlan != nil {
		h.net.SetPlan(mkPlan(h))
	}

	names := tortureNames()
	h.workload(names)

	var standbyCrashed, primaryCrashed bool
	h.converge(&standbyCrashed, &primaryCrashed)
	// One last heal pass: a crash fault that fired after the final
	// workload record was acked leaves the pair converged but a process
	// notionally dead; restart it and re-converge so the equivalence
	// checks run against live nodes.
	h.healFaults(&standbyCrashed, &primaryCrashed)
	h.converge(&standbyCrashed, &primaryCrashed)

	probes := append(append([]string(nil), names[:4]...), names[16:20]...)
	h.checkEquivalence(probes)

	// Promotion of the caught-up standby must seal it against further
	// replication and leave its engine serving byte-identical results.
	if err := h.applier.Promote(); err != nil {
		t.Fatalf("promote converged standby: %v", err)
	}
	h.checkEquivalence(probes)
	return h.net.Trips()
}

// TestReplicationTortureSweep fails every primary round trip of a
// reference run in turn, across all five fault flavors.
func TestReplicationTortureSweep(t *testing.T) {
	if testing.Short() && testing.Verbose() {
		t.Log("short mode: sweeping with a coarser stride")
	}
	trips := tortureOne(t, nil)
	if trips < 8 {
		t.Fatalf("reference run made only %d round trips; workload too small for a meaningful sweep", trips)
	}
	t.Logf("reference run: %d primary round trips", trips)

	// Round trips after the reference count are timing noise
	// (heartbeats); the sweep covers the deterministic core. Short mode
	// strides coarser but still touches every flavor at several indices.
	stride := int64(1)
	if testing.Short() {
		stride = trips/6 + 1
	}
	for _, fl := range netFlavors {
		for i := int64(0); i < trips; i += stride {
			i := i
			t.Run(fmt.Sprintf("%s/trip%02d", fl.name, i), func(t *testing.T) {
				got := tortureOne(t, func(h *harness) iofault.NetPlan { return fl.plan(h, i) })
				if got <= i {
					// The faulted run finished in fewer trips than the
					// fault index (timing variance): the fault never
					// fired, which the equivalence checks already proved
					// harmless. Nothing more to assert.
					t.Logf("fault index %d beyond this run's %d trips (never fired)", i, got)
				}
			})
		}
	}
}

// TestPromotionEquivalence is the failover drill: replicate, kill the
// primary for good, promote the standby, and verify the promoted node
// is a fully writable primary with byte-identical query results.
func TestPromotionEquivalence(t *testing.T) {
	h := newHarness(t, iofault.NetDisarmed())
	defer h.teardown()

	names := tortureNames()
	h.workload(names)
	var sc, pc bool
	h.converge(&sc, &pc)

	// Freeze the primary's answers, then kill it.
	wantJoin := joinPairs(t, h.prim.corpus())
	probes := names[:6]
	wantQueries := make([]string, len(probes))
	for i, q := range probes {
		wantQueries[i] = matchesString(h.prim.matcher().Query(q))
	}
	h.primG.swap(nil)
	h.shipper.Close()

	if err := h.applier.Promote(); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !h.applier.Sealed() {
		t.Fatal("standby not sealed after promote")
	}

	gotJoin := joinPairs(t, h.stby.corpus())
	if strings.Join(wantJoin, "|") != strings.Join(gotJoin, "|") {
		t.Fatalf("promoted join diverged:\nwant %v\ngot  %v", wantJoin, gotJoin)
	}
	for i, q := range probes {
		if got := matchesString(h.stby.matcher().Query(q)); got != wantQueries[i] {
			t.Fatalf("promoted query %q diverged:\nwant %s\ngot  %s", q, wantQueries[i], got)
		}
	}

	// The promoted node is writable: a durable add lands in its WAL with
	// the next dense id, and it can seed its own followers.
	wantID := h.stby.corpus().Len()
	id, _, err := h.stby.matcher().AddDurable("promoted write probe")
	if err != nil {
		t.Fatalf("write on promoted node: %v", err)
	}
	if id != wantID {
		t.Fatalf("promoted write id = %d, want %d", id, wantID)
	}
	if _, lsn := h.stby.corpus().BootstrapPayloads(); lsn != h.stby.corpus().LSN() {
		t.Fatalf("promoted node cannot seed followers: bootstrap lsn %d vs %d", lsn, h.stby.corpus().LSN())
	}

	// A straggler batch from a zombie primary is refused with Sealed.
	resp, _ := postApply(t, h.applier, applyRequest{From: h.applier.LSN(), Frames: makeFrames(testPayloads(1))})
	if !resp.Sealed {
		t.Fatalf("zombie apply after promotion not refused: %+v", resp)
	}
}

// TestReplicationRestartEquivalence reopens a converged standby's
// directory cold (no replication traffic) and checks it replays to the
// identical state — the "warm standby is just a restartable corpus"
// property every crash flavor above leans on.
func TestReplicationRestartEquivalence(t *testing.T) {
	h := newHarness(t, iofault.NetDisarmed())
	defer h.teardown()
	h.workload(tortureNames())
	var sc, pc bool
	h.converge(&sc, &pc)

	want := logicalOf(h.stby.corpus())
	wantLSN := h.stby.corpus().LSN()
	h.stbyCancel()
	h.stbyG.swap(nil)
	h.stby.shutdown()

	c, err := corpus.Open(h.stby.dir, corpus.Options{SyncEvery: 1})
	if err != nil {
		t.Fatalf("cold reopen: %v", err)
	}
	if err := logicalEqual(want, logicalOf(c)); err != nil {
		t.Fatalf("cold reopen diverged: %v", err)
	}
	if c.LSN() != wantLSN {
		t.Fatalf("cold reopen lsn %d, want %d", c.LSN(), wantLSN)
	}
	// Reopen the node so teardown's shutdown has live handles.
	c.Close()
	if err := h.stby.open(); err != nil {
		t.Fatalf("reopen node: %v", err)
	}
}
