package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/httpx"
)

// ErrSyncing rejects promotion of a standby mid-bootstrap: its state is
// a partial wipe-and-reseed, not any prefix of the primary's history.
var ErrSyncing = errors.New("replica: standby is mid-resync and cannot be promoted")

// ErrSealed rejects replication traffic after promotion.
var ErrSealed = errors.New("replica: standby is sealed (promoted)")

// StandbyOptions configures the applier side.
type StandbyOptions struct {
	// Primary is the primary's base URL; Advertise is this node's base
	// URL as the primary should dial it. Both required.
	Primary   string
	Advertise string
	// RegisterInterval is the watchdog period: when no primary contact
	// (apply or heartbeat) lands for this long, the standby re-registers
	// (default 3× the primary's default heartbeat).
	RegisterInterval time.Duration
	// StateDir, when set, persists the mid-resync state as a RESYNC
	// marker file there (normally the data directory): a standby that
	// crashes while a bootstrap is streaming in replays a PARTIAL
	// bootstrap from disk, whose LSN indexes the bootstrap stream, not
	// the primary's real history. The marker makes the restarted
	// standby report Syncing at registration so the primary re-seeds it
	// instead of misreading that LSN against the ship ring. Empty skips
	// the marker (a crash-free in-memory standby doesn't need it).
	StateDir string
	// RequestTimeout bounds one register round trip (default 10s);
	// ConnectTimeout bounds dialing (default 5s, Client nil only).
	RequestTimeout time.Duration
	ConnectTimeout time.Duration
	// Backoff paces register retries. Zero Base means the default
	// {250ms base, 15s cap, 0.25 jitter}.
	Backoff backoff.Policy
	// Client overrides the HTTP client (tests inject fault transports).
	Client *http.Client
	// Logf receives replication events; nil discards.
	Logf func(format string, args ...any)
}

func (o *StandbyOptions) fill() {
	if o.RegisterInterval <= 0 {
		o.RegisterInterval = 3 * defaultHeartbeat
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = defaultRequestTimeout
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = defaultConnectTimeout
	}
	if o.Backoff.Base <= 0 {
		o.Backoff = backoff.Policy{Base: 250 * time.Millisecond, Cap: 15 * time.Second, Jitter: 0.25}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Standby receives the shipped stream into an Applier, gap-checks every
// batch against the engine's own LSN, re-registers with the primary
// when heartbeats stop, and seals at Promote. Safe for concurrent use;
// applies are serialized.
type Standby struct {
	opt    StandbyOptions
	client *http.Client
	// reset wipes the engine for a bootstrap and returns the fresh one
	// (the caller swaps its serving handles inside this function).
	reset func() (Applier, error)

	mu          sync.Mutex
	eng         Applier
	sealed      bool
	syncing     bool
	syncTarget  uint64
	registered  bool
	lastContact time.Time
	applied     int64
	resyncs     int64
	heartbeats  int64
	gapRejects  int64
	regFails    int64
	lastErr     string
}

// StandbyStatus is the standby's externally visible state.
type StandbyStatus struct {
	Primary   string `json:"primary"`
	Advertise string `json:"advertise"`
	LSN       uint64 `json:"lsn"`
	// Registered reports a successful register or primary contact;
	// Syncing a bootstrap in flight; Sealed a completed promotion.
	Registered bool `json:"registered"`
	Syncing    bool `json:"syncing"`
	Sealed     bool `json:"sealed"`
	// SyncTarget is the bootstrap's end LSN while Syncing.
	SyncTarget uint64 `json:"sync_target,omitempty"`
	// LastContactAgoMs is milliseconds since the primary last reached
	// us (-1 for never).
	LastContactAgoMs int64 `json:"last_contact_ago_ms"`
	// AppliedRecords counts replicated records installed; Resyncs
	// bootstrap wipes; Heartbeats idle pings; GapRejects batches
	// rejected for starting beyond our LSN; RegisterFails failed
	// registration attempts.
	AppliedRecords int64  `json:"applied_records"`
	Resyncs        int64  `json:"resyncs"`
	Heartbeats     int64  `json:"heartbeats"`
	GapRejects     int64  `json:"gap_rejects"`
	RegisterFails  int64  `json:"register_fails"`
	LastError      string `json:"last_error,omitempty"`
}

// NewStandby wraps an engine. reset is called (under the standby lock)
// when the primary orders a bootstrap: it must wipe the engine's
// storage, swap the caller's serving handles to a fresh empty engine,
// and return it.
func NewStandby(eng Applier, reset func() (Applier, error), opt StandbyOptions) *Standby {
	opt.fill()
	client := opt.Client
	if client == nil {
		client = httpx.NewClient(opt.ConnectTimeout)
	}
	s := &Standby{opt: opt, client: client, reset: reset, eng: eng}
	if opt.StateDir != "" {
		if _, err := os.Stat(s.markerPath()); err == nil {
			// A previous process died mid-bootstrap: the engine replayed
			// a partial re-seed whose LSN is bootstrap-space. Stay in
			// syncing (with an unreachable target) until the primary
			// re-seeds us properly.
			s.syncing = true
			s.syncTarget = ^uint64(0)
			s.opt.Logf("replica: RESYNC marker found; engine state is a partial bootstrap, awaiting re-seed")
		}
	}
	return s
}

func (s *Standby) markerPath() string { return filepath.Join(s.opt.StateDir, "RESYNC") }

// writeMarker durably flags the on-disk state as a partial bootstrap.
func (s *Standby) writeMarker() error {
	if s.opt.StateDir == "" {
		return nil
	}
	return os.WriteFile(s.markerPath(), []byte("mid-resync\n"), 0o644)
}

// clearMarker un-flags it once the bootstrap reaches its target. A
// failed remove leaves the marker: the worst case is a redundant
// re-seed after the next restart, never a misread offset.
func (s *Standby) clearMarker() {
	if s.opt.StateDir == "" {
		return
	}
	if err := os.Remove(s.markerPath()); err != nil && !os.IsNotExist(err) {
		s.opt.Logf("replica: clearing RESYNC marker: %v", err)
	}
}

// Run is the registration watchdog: it registers with the primary, then
// re-registers whenever contact goes quiet (a restarted primary has no
// memory of its followers — re-registering is how the pair finds each
// other again). Blocks until ctx ends or the standby is sealed.
func (s *Standby) Run(ctx context.Context) {
	bo := backoff.State{P: s.opt.Backoff}
	for ctx.Err() == nil {
		s.mu.Lock()
		sealed := s.sealed
		stale := !s.registered || time.Since(s.lastContact) > s.opt.RegisterInterval
		s.mu.Unlock()
		if sealed {
			return
		}
		wait := s.opt.RegisterInterval / 4
		if wait <= 0 {
			wait = time.Millisecond
		}
		if stale {
			if err := s.register(ctx); err != nil {
				s.mu.Lock()
				s.registered = false
				s.regFails++
				s.lastErr = err.Error()
				s.mu.Unlock()
				wait = bo.Next()
				s.opt.Logf("replica: register with %s failed (retry in %v): %v", s.opt.Primary, wait, err)
			} else {
				bo.Reset()
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(wait):
		}
	}
}

// register performs one registration round trip.
func (s *Standby) register(ctx context.Context) error {
	s.mu.Lock()
	hello := registerRequest{Advertise: s.opt.Advertise, LSN: s.eng.LSN(), Syncing: s.syncing}
	s.mu.Unlock()
	var rr registerResponse
	if err := httpx.PostJSON(ctx, s.client, s.opt.Primary+"/replication/register", hello, &rr, s.opt.RequestTimeout, 1<<16); err != nil {
		return fmt.Errorf("replica: register with %s: %w", s.opt.Primary, err)
	}
	if !rr.OK {
		return fmt.Errorf("replica: register with %s: primary answered ok=false", s.opt.Primary)
	}
	s.mu.Lock()
	s.registered = true
	s.lastContact = time.Now()
	s.lastErr = ""
	s.mu.Unlock()
	s.opt.Logf("replica: registered with %s (primary at lsn %d, standby at %d)", s.opt.Primary, rr.LSN, s.LSN())
	return nil
}

// ServeApply is the HTTP handler for POST /replication/apply: the
// shipped-batch ingest point, including heartbeats and bootstrap
// chunks. Batches are gap-checked against the engine's LSN; the
// already-applied overlap of a retried batch is skipped (see the
// package comment), and the response always carries the authoritative
// LSN the primary must resume from.
func (s *Standby) ServeApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req applyRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxApplyBody)).Decode(&req); err != nil {
		http.Error(w, "bad apply request", http.StatusBadRequest)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastContact = time.Now()
	s.registered = true
	if s.sealed {
		writeJSON(w, http.StatusOK, applyResponse{LSN: s.eng.LSN(), Sealed: true})
		return
	}
	switch {
	case req.Resync:
		eng, err := s.reset()
		if err != nil {
			s.lastErr = err.Error()
			writeJSON(w, http.StatusInternalServerError, applyResponse{LSN: s.eng.LSN(), Syncing: s.syncing, Error: err.Error()})
			return
		}
		s.eng = eng
		s.syncing = true
		s.syncTarget = req.SyncTo
		s.resyncs++
		if err := s.writeMarker(); err != nil {
			// The wipe happened but the marker didn't land; stay syncing
			// and fail the chunk so the primary's retry re-orders the
			// resync (re-wipe and marker retry).
			s.lastErr = err.Error()
			writeJSON(w, http.StatusInternalServerError, applyResponse{LSN: s.eng.LSN(), Syncing: true, Error: err.Error()})
			return
		}
		s.opt.Logf("replica: resync ordered by primary (target lsn %d)", req.SyncTo)
	case s.syncing && req.SyncTo == 0 && len(req.Frames) > 0:
		// Mid-bootstrap, a real-history batch (no SyncTo): our LSN is a
		// bootstrap-space offset; applying ring records at it would
		// interleave the two histories. Refuse and report Syncing so
		// the shipper re-seeds instead.
		s.gapRejects++
		writeJSON(w, http.StatusOK, applyResponse{LSN: s.eng.LSN(), Syncing: true})
		return
	case !s.syncing && req.SyncTo != 0:
		// A stale bootstrap chunk from a superseded resync: our LSN is
		// real-space now. Refuse; the shipper re-classifies.
		s.gapRejects++
		writeJSON(w, http.StatusOK, applyResponse{LSN: s.eng.LSN()})
		return
	}
	lsn := s.eng.LSN()
	if req.From > lsn {
		// Gap: records between our LSN and the batch are missing. Reject
		// and report where we actually are.
		s.gapRejects++
		writeJSON(w, http.StatusOK, applyResponse{LSN: lsn, Syncing: s.syncing})
		return
	}
	skip := lsn - req.From // duplicate prefix of a retried batch
	for i, fr := range req.Frames {
		if uint64(i) < skip {
			continue
		}
		if crc32.Checksum(fr.Payload, castagnoli) != fr.CRC {
			s.lastErr = "frame crc mismatch"
			writeJSON(w, http.StatusInternalServerError, applyResponse{LSN: s.eng.LSN(), Syncing: s.syncing, Error: "frame crc mismatch"})
			return
		}
		if err := s.eng.Apply(fr.Payload); err != nil {
			// A partial apply is fine: the applied prefix advanced our
			// LSN, and the primary resumes from it after the error.
			s.lastErr = err.Error()
			writeJSON(w, http.StatusInternalServerError, applyResponse{LSN: s.eng.LSN(), Syncing: s.syncing, Error: err.Error()})
			return
		}
		s.applied++
	}
	if len(req.Frames) == 0 && !req.Resync {
		s.heartbeats++
	}
	if s.syncing && s.eng.LSN() >= s.syncTarget {
		s.syncing = false
		s.clearMarker()
		s.opt.Logf("replica: resync complete at lsn %d", s.eng.LSN())
	}
	writeJSON(w, http.StatusOK, applyResponse{LSN: s.eng.LSN(), Syncing: s.syncing})
}

// Promote seals the standby: replication traffic is rejected from here
// on (old primaries shipping to us are told to stop), the engine is
// fsynced, and the caller may flip the node to writable primary. It is
// an error while a bootstrap is in flight (ErrSyncing) and fails —
// leaving the standby unsealed and retryable — if the engine cannot be
// flushed (e.g. a degraded corpus).
func (s *Standby) Promote() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed {
		return nil
	}
	if s.syncing {
		return ErrSyncing
	}
	if err := s.eng.Seal(); err != nil {
		return fmt.Errorf("replica: sealing engine at promote: %w", err)
	}
	s.sealed = true
	s.opt.Logf("replica: promoted at lsn %d", s.eng.LSN())
	return nil
}

// Sealed reports whether Promote completed.
func (s *Standby) Sealed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sealed
}

// LSN returns the engine's committed offset.
func (s *Standby) LSN() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.LSN()
}

// Ready reports whether the standby is a serving replica in good
// standing: registered, not mid-bootstrap, not sealed, and in recent
// contact with the primary (within 2× the register interval).
func (s *Standby) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.sealed && !s.syncing && s.registered &&
		!s.lastContact.IsZero() && time.Since(s.lastContact) <= 2*s.opt.RegisterInterval
}

// Status snapshots the standby.
func (s *Standby) Status() StandbyStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	ago := int64(-1)
	if !s.lastContact.IsZero() {
		ago = time.Since(s.lastContact).Milliseconds()
	}
	st := StandbyStatus{
		Primary:          s.opt.Primary,
		Advertise:        s.opt.Advertise,
		LSN:              s.eng.LSN(),
		Registered:       s.registered,
		Syncing:          s.syncing,
		Sealed:           s.sealed,
		LastContactAgoMs: ago,
		AppliedRecords:   s.applied,
		Resyncs:          s.resyncs,
		Heartbeats:       s.heartbeats,
		GapRejects:       s.gapRejects,
		RegisterFails:    s.regFails,
		LastError:        s.lastErr,
	}
	if s.syncing {
		st.SyncTarget = s.syncTarget
	}
	return st
}

// writeJSON renders one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
