package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/httpx"
)

// PrimaryOptions configures the shipper side.
type PrimaryOptions struct {
	// BatchRecords / BatchBytes bound one apply request (defaults 256 /
	// 1 MiB). Bootstrap streams chunk at BatchRecords too.
	BatchRecords int
	BatchBytes   int
	// Heartbeat is how often a caught-up follower is pinged so it can
	// tell "primary idle" from "primary dead" (default 2s).
	Heartbeat time.Duration
	// RequestTimeout bounds one apply/heartbeat round trip — the stream
	// timeout (default 10s). ConnectTimeout bounds dialing (default 5s;
	// only used when Client is nil).
	RequestTimeout time.Duration
	ConnectTimeout time.Duration
	// Backoff paces per-follower retries after a failed round trip.
	// Zero Base means the default {250ms base, 15s cap, 0.25 jitter}.
	Backoff backoff.Policy
	// Client overrides the HTTP client (tests inject a fault-injecting
	// transport); RequestTimeout still applies per request.
	Client *http.Client
	// Logf receives replication events; nil discards.
	Logf func(format string, args ...any)
}

func (o *PrimaryOptions) fill() {
	if o.BatchRecords <= 0 {
		o.BatchRecords = defaultBatchRecords
	}
	if o.BatchBytes <= 0 {
		o.BatchBytes = defaultBatchBytes
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = defaultHeartbeat
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = defaultRequestTimeout
	}
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = defaultConnectTimeout
	}
	if o.Backoff.Base <= 0 {
		o.Backoff = backoff.Policy{Base: 250 * time.Millisecond, Cap: 15 * time.Second, Jitter: 0.25}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
}

// Primary ships the committed record stream of a Source to every
// registered follower, each on its own goroutine with its own cursor,
// retry state and lag accounting. Safe for concurrent use.
type Primary struct {
	src    Source
	opt    PrimaryOptions
	client *http.Client

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu        sync.Mutex
	followers map[string]*follower
	closed    bool
}

// follower is one registered standby's shipping state.
type follower struct {
	url    string
	cancel context.CancelFunc

	mu         sync.Mutex
	state      string // streaming | resync | retrying | sealed
	acked      uint64
	lastAck    time.Time
	retries    int64
	resyncs    int64
	shipped    int64
	heartbeats int64
	lastErr    string
}

func (f *follower) set(fn func(*follower)) {
	f.mu.Lock()
	fn(f)
	f.mu.Unlock()
}

// FollowerStatus is one follower's externally visible state.
type FollowerStatus struct {
	URL   string `json:"url"`
	State string `json:"state"`
	// AckedLSN is the follower's last acknowledged offset; LagRecords
	// is the primary's LSN minus it — the records the follower would
	// lose if promoted this instant.
	AckedLSN   uint64 `json:"acked_lsn"`
	LagRecords uint64 `json:"lag_records"`
	// LastAckAgoMs is milliseconds since the last acknowledged round
	// trip (-1 before the first).
	LastAckAgoMs int64 `json:"last_ack_ago_ms"`
	// Retries counts failed round trips; Resyncs counts bootstrap
	// re-seeds; ShippedRecords counts records acknowledged; Heartbeats
	// counts idle pings.
	Retries        int64  `json:"retries"`
	Resyncs        int64  `json:"resyncs"`
	ShippedRecords int64  `json:"shipped_records"`
	Heartbeats     int64  `json:"heartbeats"`
	LastError      string `json:"last_error,omitempty"`
}

// PrimaryStatus is the shipper's externally visible state.
type PrimaryStatus struct {
	LSN       uint64           `json:"lsn"`
	Followers []FollowerStatus `json:"followers"`
}

// NewPrimary creates a shipper over src. Followers attach via Register
// (normally through ServeRegister); Close stops every ship loop.
func NewPrimary(src Source, opt PrimaryOptions) *Primary {
	opt.fill()
	client := opt.Client
	if client == nil {
		client = httpx.NewClient(opt.ConnectTimeout)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Primary{
		src:       src,
		opt:       opt,
		client:    client,
		ctx:       ctx,
		cancel:    cancel,
		followers: make(map[string]*follower),
	}
}

// Register attaches (or re-attaches) the follower advertising the given
// base URL, shipping from its reported LSN. A re-registration replaces
// the previous ship loop — the standby watchdog re-registers whenever
// heartbeats stop, so this is the reconnect path too.
func (p *Primary) Register(advertise string, lsn uint64) error {
	return p.register(advertise, lsn, false)
}

// register is Register plus the syncing flag: a follower that restarted
// mid-bootstrap reports an LSN in bootstrap space, which must never be
// used against the real-history ring — it is re-seeded from scratch.
func (p *Primary) register(advertise string, lsn uint64, syncing bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("replica: primary closed")
	}
	if old := p.followers[advertise]; old != nil {
		old.cancel()
	}
	ctx, cancel := context.WithCancel(p.ctx)
	f := &follower{url: advertise, cancel: cancel, state: "streaming", acked: lsn}
	p.followers[advertise] = f
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		p.shipLoop(ctx, f, lsn, syncing)
	}()
	p.opt.Logf("replica: follower %s registered at lsn %d (syncing=%v)", advertise, lsn, syncing)
	return nil
}

// ServeRegister is the HTTP handler for POST /replication/register.
func (p *Primary) ServeRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil || req.Advertise == "" {
		http.Error(w, "bad register request", http.StatusBadRequest)
		return
	}
	if err := p.register(req.Advertise, req.LSN, req.Syncing); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(registerResponse{OK: true, LSN: p.src.LSN()})
}

// Status snapshots the shipper and every follower, sorted by URL.
func (p *Primary) Status() PrimaryStatus {
	lsn := p.src.LSN()
	p.mu.Lock()
	fs := make([]*follower, 0, len(p.followers))
	for _, f := range p.followers {
		fs = append(fs, f)
	}
	p.mu.Unlock()
	st := PrimaryStatus{LSN: lsn, Followers: make([]FollowerStatus, 0, len(fs))}
	for _, f := range fs {
		f.mu.Lock()
		lag := uint64(0)
		if lsn > f.acked {
			lag = lsn - f.acked
		}
		ago := int64(-1)
		if !f.lastAck.IsZero() {
			ago = time.Since(f.lastAck).Milliseconds()
		}
		st.Followers = append(st.Followers, FollowerStatus{
			URL:            f.url,
			State:          f.state,
			AckedLSN:       f.acked,
			LagRecords:     lag,
			LastAckAgoMs:   ago,
			Retries:        f.retries,
			Resyncs:        f.resyncs,
			ShippedRecords: f.shipped,
			Heartbeats:     f.heartbeats,
			LastError:      f.lastErr,
		})
		f.mu.Unlock()
	}
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].URL < st.Followers[j].URL })
	return st
}

// Close stops every ship loop and waits for them.
func (p *Primary) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cancel()
	p.wg.Wait()
}

// shipLoop drives one follower: stream from the ring, bootstrap when
// the ring cannot serve the cursor, heartbeat when caught up. The
// follower's authoritative LSN (from every response) is the only cursor
// — the loop never assumes a send "worked" beyond what was acked — and
// any ack flagged Syncing sends the loop back to bootstrap: a syncing
// standby's LSN is a bootstrap-space offset the ring must not serve.
func (p *Primary) shipLoop(ctx context.Context, f *follower, next uint64, syncing bool) {
	if syncing {
		n, ok := p.bootstrap(ctx, f)
		if !ok {
			return
		}
		next = n
	}
	for ctx.Err() == nil {
		payloads, err := p.src.ShipFrom(next, p.opt.BatchRecords, p.opt.BatchBytes)
		if err != nil {
			// Behind the ring or diverged: re-seed via bootstrap.
			n, ok := p.bootstrap(ctx, f)
			if !ok {
				return
			}
			next = n
			continue
		}
		if len(payloads) == 0 {
			// Caught up. Grab the notify channel, then re-check — a commit
			// between ShipFrom and ShipNotify would otherwise be slept on.
			ch := p.src.ShipNotify()
			if p.src.LSN() != next {
				continue
			}
			select {
			case <-ctx.Done():
				return
			case <-ch:
				continue
			case <-time.After(p.opt.Heartbeat):
			}
			resp, ok := p.send(ctx, f, applyRequest{From: next})
			if !ok {
				return
			}
			if resp.Sealed {
				p.sealFollower(f)
				return
			}
			if resp.Syncing {
				n, ok := p.bootstrap(ctx, f)
				if !ok {
					return
				}
				next = n
				continue
			}
			f.set(func(f *follower) { f.heartbeats++; f.acked = resp.LSN; f.lastAck = time.Now() })
			next = resp.LSN
			continue
		}
		resp, ok := p.send(ctx, f, applyRequest{From: next, Frames: makeFrames(payloads)})
		if !ok {
			return
		}
		if resp.Sealed {
			p.sealFollower(f)
			return
		}
		if resp.Syncing {
			n, ok := p.bootstrap(ctx, f)
			if !ok {
				return
			}
			next = n
			continue
		}
		// resp.LSN is authoritative: a clean apply lands at
		// next+len(payloads); a duplicate-suppressed retry or a standby
		// restart lands elsewhere and the loop resumes from there (the
		// ring — or a bootstrap — serves whatever gap remains).
		if resp.LSN > next {
			f.set(func(f *follower) { f.shipped += int64(len(payloads)); f.state = "streaming" })
		}
		f.set(func(f *follower) { f.acked = resp.LSN; f.lastAck = time.Now() })
		next = resp.LSN
	}
}

// bootstrap re-seeds a follower: wipe, then stream the synthesized
// full-state payloads in chunks. The chunk cursor lives entirely in
// bootstrap space — the offset into the synthesized stream — and is
// never handed to the outer (real-history) loop except as the full
// target LSN of a COMPLETED bootstrap, where the two spaces coincide.
// Any ack that is not a coherent bootstrap continuation (the standby
// was wiped, restarted, or reset by another shipper underneath us)
// restarts the re-seed from scratch, which is always sound: the first
// chunk's Resync order wipes whatever state the standby holds. Returns
// the LSN to resume tailing at, or ok=false when the loop should exit
// (cancelled or follower sealed).
func (p *Primary) bootstrap(ctx context.Context, f *follower) (uint64, bool) {
	for ctx.Err() == nil {
		f.set(func(f *follower) { f.state = "resync"; f.resyncs++ })
		boot, lsn := p.src.BootstrapPayloads()
		p.opt.Logf("replica: bootstrapping follower %s (%d records to lsn %d)", f.url, len(boot), lsn)
		off := 0
		restart := false
		for !restart {
			end := off + p.opt.BatchRecords
			if end > len(boot) {
				end = len(boot)
			}
			req := applyRequest{From: uint64(off), SyncTo: lsn, Frames: makeFrames(boot[off:end])}
			if off == 0 {
				req.Resync = true
			}
			resp, ok := p.send(ctx, f, req)
			if !ok {
				return 0, false
			}
			if resp.Sealed {
				p.sealFollower(f)
				return 0, false
			}
			f.set(func(f *follower) { f.acked = resp.LSN; f.lastAck = time.Now(); f.shipped += int64(end - off) })
			switch {
			case resp.LSN == uint64(end):
				off = end
				if off >= len(boot) {
					f.set(func(f *follower) { f.state = "streaming" })
					return lsn, true
				}
			case resp.LSN > uint64(off) && resp.LSN < uint64(end):
				// The duplicate-suppressed part of a retried chunk: the
				// standby already held a prefix. Continue from its offset.
				off = int(resp.LSN)
			default:
				restart = true
			}
		}
		p.opt.Logf("replica: bootstrap of %s incoherent at chunk %d; re-seeding from scratch", f.url, off)
	}
	return 0, false
}

// sealFollower records that the standby was promoted and stops shipping
// to it.
func (p *Primary) sealFollower(f *follower) {
	f.set(func(f *follower) { f.state = "sealed" })
	p.opt.Logf("replica: follower %s sealed (promoted); stopping shipment", f.url)
}

// send posts one apply request, retrying transport errors and non-200
// responses with exponential backoff until it succeeds or ctx ends
// (httpx.Retry drives the loop; the per-attempt hook keeps the
// follower's retry accounting). ok=false only on cancellation.
func (p *Primary) send(ctx context.Context, f *follower, req applyRequest) (applyResponse, bool) {
	var resp applyResponse
	err := httpx.Retry(ctx, p.opt.Backoff,
		func() error {
			var err error
			resp, err = p.post(ctx, f.url, req)
			return err
		},
		func(attempt int, d time.Duration, err error) {
			f.set(func(f *follower) { f.retries++; f.state = "retrying"; f.lastErr = err.Error() })
			p.opt.Logf("replica: ship to %s failed (retry %d in %v): %v", f.url, attempt, d, err)
		})
	if err != nil {
		return applyResponse{}, false
	}
	return resp, true
}

// post performs one apply round trip under the request timeout. A torn
// response read is an error like any other: the standby may have
// applied the batch but the ack was lost — the retry is safe because
// its overlap is duplicate-suppressed on the standby.
func (p *Primary) post(ctx context.Context, base string, req applyRequest) (applyResponse, error) {
	var ar applyResponse
	if err := httpx.PostJSON(ctx, p.client, base+"/replication/apply", req, &ar, p.opt.RequestTimeout, 1<<20); err != nil {
		return applyResponse{}, fmt.Errorf("replica: apply to %s: %w", base, err)
	}
	return ar, nil
}
