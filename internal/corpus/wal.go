package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/iofault"
	"repro/internal/token"
)

// The write-ahead log is a sequence of CRC-framed records appended after a
// fixed header. Each frame is
//
//	[payloadLen uint32 LE][crc32c(payload) uint32 LE][payload]
//
// and the payload is one logical mutation:
//
//	op 0x01 (add):    varint tokenCount, then tokenCount × (varint len, bytes)
//	op 0x02 (delete): varint StringID
//
// Add records carry the tokenized form, not the raw string, so replay is
// independent of the tokenizer the writing process used. String ids are
// implicit: the i-th add record after the snapshot base receives id
// base+i, which replay reproduces exactly because the log is appended
// under the corpus mutex.
//
// Recovery contract: a torn tail — a frame cut short by a crash, or one
// whose CRC does not match — ends the log. Everything before it is
// applied; the file is truncated back to the last good frame so new
// appends start from a clean boundary. A corrupt frame in the middle
// (valid frames after a bad one) is indistinguishable from a torn tail
// and is handled the same way: replay stops at the first bad frame.

const (
	walMagic = "TSJWAL1\n"

	opAdd    byte = 0x01
	opDelete byte = 0x02

	// maxWALPayload bounds a single record; a frame announcing more is
	// treated as corruption rather than an allocation request.
	maxWALPayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walWriter appends CRC-framed records to an open log file with batched
// fsync: records are durable after every flushEvery appends, on Sync, and
// on Close. flushEvery = 1 (the default) is write-through.
type walWriter struct {
	f   iofault.File
	buf []byte // frame assembly scratch
	// offset is the validated length of the log: every byte below it is a
	// complete frame. Failed appends truncate back to it so the on-disk
	// prefix always equals the sequence of records the caller applied.
	offset     int64
	pending    int // appends since the last fsync
	flushEvery int
	noSync     bool
	records    int64
	bytes      int64
	// broken seals the writer: no append or sync may touch the fd again.
	// It is set when a rollback failed (the log may hold a frame that was
	// never applied) or when an fsync failed (post-fsyncgate, the kernel
	// may have dropped the dirty pages and cleared the error, so a retry
	// could report success without durability — the generation must be
	// abandoned, not retried). The corpus surfaces a sealed writer as
	// ErrDegraded and heals by rotating to a fresh generation.
	broken error
}

// newWALWriter opens (creating if needed) the generation's log for append,
// writing the header on a fresh file. offset is the validated length of
// the existing log (from replay); the file is truncated there so appends
// never interleave with a torn tail.
func newWALWriter(fs iofault.FS, path string, offset int64, flushEvery int, noSync bool) (*walWriter, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if offset == 0 {
		offset = int64(len(walMagic))
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if flushEvery <= 0 {
		flushEvery = 1
	}
	return &walWriter{f: f, offset: offset, flushEvery: flushEvery, noSync: noSync}, nil
}

// walMark is a point the log can be rolled back to: the state before an
// operation's appends (see rollback).
type walMark struct {
	offset  int64
	records int64
	bytes   int64
	pending int
}

// mark captures the current append point.
func (w *walWriter) mark() walMark {
	return walMark{offset: w.offset, records: w.records, bytes: w.bytes, pending: w.pending}
}

// rollback truncates the log back to a mark, discarding frames appended
// since. Callers use it when an operation fails after some of its frames
// were written, so the log never holds records the in-memory state did
// not apply (a replay would otherwise resurrect them and shift every
// later id). It must run even when the tracked offset is unchanged: a
// partial frame write advances the OS file position past garbage bytes
// without advancing w.offset, and only the truncate+seek below realigns
// the physical append point with the validated prefix. If the truncate
// itself fails the writer is marked broken and every subsequent append
// fails.
func (w *walWriter) rollback(m walMark) {
	if err := w.f.Truncate(m.offset); err != nil {
		w.broken = fmt.Errorf("corpus: wal rollback failed, log may hold unapplied records: %w", err)
		return
	}
	if _, err := w.f.Seek(m.offset, io.SeekStart); err != nil {
		w.broken = fmt.Errorf("corpus: wal rollback seek failed: %w", err)
		return
	}
	w.offset, w.records, w.bytes, w.pending = m.offset, m.records, m.bytes, m.pending
}

// append frames and writes one payload, fsyncing per the batching policy.
func (w *walWriter) append(payload []byte) error {
	if err := w.appendDeferred(payload); err != nil {
		return err
	}
	if w.pending >= w.flushEvery {
		return w.sync()
	}
	return nil
}

// appendDeferred frames and writes one payload without consulting the
// fsync policy — group-commit callers batch several records and call sync
// once. A partial write is rolled back so the validated prefix stays
// intact.
func (w *walWriter) appendDeferred(payload []byte) error {
	if w.broken != nil {
		return w.broken
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	if _, err := w.f.Write(w.buf); err != nil {
		w.rollback(walMark{offset: w.offset, records: w.records, bytes: w.bytes, pending: w.pending})
		return err
	}
	w.offset += int64(len(w.buf))
	w.records++
	w.bytes += int64(len(w.buf))
	w.pending++
	return nil
}

// sync flushes pending appends to stable storage. An fsync failure
// seals the writer: retrying fsync on the same fd is unsound
// (post-fsyncgate kernels may drop the dirty pages and report the next
// fsync clean without having written them), so the generation is
// abandoned and the corpus must heal by rotating to a fresh one.
func (w *walWriter) sync() error {
	if w.broken != nil {
		return w.broken
	}
	if w.pending == 0 {
		return nil
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			w.broken = fmt.Errorf("corpus: wal fsync failed, generation sealed: %w", err)
			return err
		}
	}
	w.pending = 0
	return nil
}

// close syncs and releases the file.
func (w *walWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// walRecord is one decoded log record.
type walRecord struct {
	op     byte
	tokens []string       // opAdd
	sid    token.StringID // opDelete
}

// encodeAdd renders an add record into buf (reused across calls).
func encodeAdd(buf []byte, ts token.TokenizedString) []byte {
	buf = append(buf[:0], opAdd)
	buf = binary.AppendUvarint(buf, uint64(len(ts.Tokens)))
	for _, t := range ts.Tokens {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
	}
	return buf
}

// encodeDelete renders a delete record into buf.
func encodeDelete(buf []byte, sid token.StringID) []byte {
	buf = append(buf[:0], opDelete)
	buf = binary.AppendUvarint(buf, uint64(sid))
	return buf
}

// decodeRecord parses one payload. Errors mean corruption (a CRC
// collision or a writer bug); callers treat them like a bad frame.
func decodeRecord(payload []byte) (walRecord, error) {
	if len(payload) == 0 {
		return walRecord{}, errors.New("empty payload")
	}
	op, rest := payload[0], payload[1:]
	switch op {
	case opAdd:
		n, k := binary.Uvarint(rest)
		if k <= 0 {
			return walRecord{}, errors.New("bad token count")
		}
		rest = rest[k:]
		// Every token costs at least one byte, so a count beyond the
		// remaining payload is corruption that happened to pass the CRC —
		// reject it before sizing any allocation by it.
		if n > uint64(len(rest)) {
			return walRecord{}, errors.New("token count exceeds payload")
		}
		toks := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			l, k := binary.Uvarint(rest)
			if k <= 0 || uint64(len(rest[k:])) < l {
				return walRecord{}, errors.New("bad token length")
			}
			toks = append(toks, string(rest[k:k+int(l)]))
			rest = rest[k+int(l):]
		}
		if len(rest) != 0 {
			return walRecord{}, errors.New("trailing bytes in add record")
		}
		return walRecord{op: opAdd, tokens: toks}, nil
	case opDelete:
		sid, k := binary.Uvarint(rest)
		if k <= 0 || len(rest) != k {
			return walRecord{}, errors.New("bad delete record")
		}
		return walRecord{op: opDelete, sid: token.StringID(sid)}, nil
	default:
		return walRecord{}, fmt.Errorf("unknown op 0x%02x", op)
	}
}

// replayWAL streams the log at path, invoking apply for every valid
// record, and returns the byte offset just past the last good frame (the
// append point for the writer). A missing file replays as empty. The
// first torn or corrupt frame ends the replay silently — that is the
// recovery contract, not an error — with clean = false so callers can
// reject damage where it must not occur (a non-final generation, whose
// successors would otherwise replay onto a shifted id space).
func replayWAL(fs iofault.FS, path string, apply func(walRecord) error) (offset int64, records int64, clean bool, err error) {
	f, err := fs.Open(path)
	if os.IsNotExist(err) {
		return 0, 0, true, nil
	}
	if err != nil {
		return 0, 0, false, err
	}
	defer f.Close()

	r := bufio.NewReaderSize(f, 1<<20)
	head := make([]byte, len(walMagic))
	if _, err := io.ReadFull(r, head); err != nil {
		// Shorter than the header: a crash while creating the fresh log,
		// before any record could exist. Recreating it loses nothing.
		return 0, 0, true, nil
	}
	if string(head) != walMagic {
		// A full-length header that doesn't match is bit rot or a foreign
		// file — not a crash artifact (the header is written before any
		// record). Treating it as empty would silently discard, and then
		// physically truncate, every record behind it; fail loudly
		// instead.
		return 0, 0, false, fmt.Errorf("corpus: %s is not a wal (bad header)", path)
	}
	offset = int64(len(walMagic))

	var frame [8]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			// A zero-byte read at a frame boundary is the clean end of the
			// log; anything else is a torn length/crc header.
			return offset, records, err == io.EOF, nil
		}
		n := binary.LittleEndian.Uint32(frame[:4])
		want := binary.LittleEndian.Uint32(frame[4:])
		if n > maxWALPayload {
			return offset, records, false, nil
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return offset, records, false, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != want {
			return offset, records, false, nil // corrupt frame
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return offset, records, false, nil // undecodable despite CRC: stop here
		}
		if err := apply(rec); err != nil {
			return 0, 0, false, err
		}
		offset += 8 + int64(n)
		records++
	}
}
