package corpus

import (
	"errors"
	"testing"
	"time"

	"repro/internal/namegen"
	"repro/internal/token"
)

// applyPayloads routes shipped payloads through the public mutation
// surface, exactly as a standby applier does.
func applyPayloads(t *testing.T, c *Corpus, payloads [][]byte) {
	t.Helper()
	for _, p := range payloads {
		rec, err := DecodeRecord(p)
		if err != nil {
			t.Fatalf("decode shipped payload: %v", err)
		}
		if rec.Delete {
			if err := c.Delete(rec.SID); err != nil {
				t.Fatalf("apply shipped delete %d: %v", rec.SID, err)
			}
		} else {
			if _, err := c.AddTokenized(token.New(rec.Tokens)); err != nil {
				t.Fatalf("apply shipped add: %v", err)
			}
		}
	}
}

// TestLSNDerivation: the LSN counts every committed mutation, and —
// being derived from logical state — survives restart, snapshot and
// compaction unchanged.
func TestLSNDerivation(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{DisableSync: true})
	names := namegen.Generate(namegen.Config{Seed: 11, NumNames: 20})
	var want uint64
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
		want++
		if got := c.LSN(); got != want {
			t.Fatalf("LSN after add = %d, want %d", got, want)
		}
	}
	for sid := 0; sid < 5; sid++ {
		if err := c.Delete(token.StringID(sid)); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if got := c.LSN(); got != want {
		t.Fatalf("LSN after deletes = %d, want %d", got, want)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := c.LSN(); got != want {
		t.Fatalf("LSN after snapshot = %d, want %d", got, want)
	}
	if err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := c.LSN(); got != want {
		t.Fatalf("LSN after compact = %d, want %d", got, want)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, Options{DisableSync: true})
	defer c2.Close()
	if got := c2.LSN(); got != want {
		t.Fatalf("LSN after reopen = %d, want %d", got, want)
	}
}

// TestShipFromWindow: the ring serves exactly the retained tail,
// reports older offsets as ErrShipBehind and future ones as
// ErrShipAhead, and a follower applying from a served offset converges
// to the identical logical state.
func TestShipFromWindow(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{DisableSync: true, ShipBufferRecords: 4})
	defer c.Close()
	names := namegen.Generate(namegen.Config{Seed: 3, NumNames: 10})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	lsn := c.LSN()
	if _, err := c.ShipFrom(0, 100, 0); !errors.Is(err, ErrShipBehind) {
		t.Fatalf("ShipFrom(0) with evicted head: err = %v, want ErrShipBehind", err)
	}
	if _, err := c.ShipFrom(lsn+1, 100, 0); !errors.Is(err, ErrShipAhead) {
		t.Fatalf("ShipFrom(lsn+1): err = %v, want ErrShipAhead", err)
	}
	got, err := c.ShipFrom(lsn, 100, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("ShipFrom(lsn) = %d records, %v; want caught-up", len(got), err)
	}
	got, err = c.ShipFrom(lsn-4, 100, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("ShipFrom(lsn-4) = %d records, %v; want the 4 retained", len(got), err)
	}
	// maxRecords pagination: two pages cover the window.
	page, err := c.ShipFrom(lsn-4, 3, 0)
	if err != nil || len(page) != 3 {
		t.Fatalf("paged ShipFrom = %d records, %v; want 3", len(page), err)
	}

	// A follower synced up to lsn-4 (seeded via bootstrap from a corpus
	// at that point would be equivalent; here replay the first 6 adds)
	// converges by applying the window.
	f := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer f.Close()
	for _, n := range names[:6] {
		if _, err := f.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if f.LSN() != lsn-4 {
		t.Fatalf("follower seed LSN = %d, want %d", f.LSN(), lsn-4)
	}
	applyPayloads(t, f, got)
	if f.LSN() != c.LSN() {
		t.Fatalf("follower LSN = %d, want %d", f.LSN(), c.LSN())
	}
	if !statesEqual(logicalState(f), logicalState(c)) {
		t.Fatal("follower state diverged after applying shipped window")
	}
}

// TestShipBatchAndDeleteRecords: group-committed batch adds and deletes
// each land in the ring as individual records, in apply order.
func TestShipBatchAndDeleteRecords(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer c.Close()
	tss := []token.TokenizedString{
		token.New([]string{"a", "b"}),
		token.New([]string{"b", "c"}),
		token.New([]string{"c", "d"}),
	}
	if _, err := c.AddTokenizedBatch(tss); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(1); err != nil {
		t.Fatal(err)
	}
	got, err := c.ShipFrom(0, 100, 0)
	if err != nil || len(got) != 4 {
		t.Fatalf("ShipFrom(0) = %d records, %v; want 4", len(got), err)
	}
	f := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer f.Close()
	applyPayloads(t, f, got)
	if !statesEqual(logicalState(f), logicalState(c)) {
		t.Fatal("batch+delete replication diverged")
	}
}

// TestShipNotify: the notify channel is closed by the next commit.
func TestShipNotify(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer c.Close()
	ch := c.ShipNotify()
	select {
	case <-ch:
		t.Fatal("notify fired before any commit")
	default:
	}
	if _, err := c.Add("hello world"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("notify did not fire on commit")
	}
}

// TestBootstrapEquivalence: the synthesized bootstrap stream, applied to
// an empty corpus, reproduces the logical state AND the LSN — including
// tombstones, whose content snapshots do not retain — and the follower
// can then tail incrementally from that LSN.
func TestBootstrapEquivalence(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{DisableSync: true})
	defer c.Close()
	names := namegen.Generate(namegen.Config{Seed: 5, NumNames: 30})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, sid := range []int{2, 7, 29, 11} {
		if err := c.Delete(token.StringID(sid)); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot + reopen first, so the bootstrap is synthesized from a
	// state whose tombstone content is genuinely gone.
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}

	boot, lsn := c.BootstrapPayloads()
	if lsn != c.LSN() {
		t.Fatalf("bootstrap LSN = %d, corpus LSN = %d", lsn, c.LSN())
	}
	f := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer f.Close()
	applyPayloads(t, f, boot)
	if f.LSN() != lsn {
		t.Fatalf("follower LSN after bootstrap = %d, want %d", f.LSN(), lsn)
	}
	if !statesEqual(logicalState(f), logicalState(c)) {
		t.Fatal("bootstrap did not reproduce logical state")
	}

	// Incremental tail from the bootstrap point.
	if _, err := c.Add("fresh arrival after bootstrap"); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(0); err != nil {
		t.Fatal(err)
	}
	tail, err := c.ShipFrom(lsn, 100, 0)
	if err != nil || len(tail) != 2 {
		t.Fatalf("tail ShipFrom = %d records, %v; want 2", len(tail), err)
	}
	applyPayloads(t, f, tail)
	if !statesEqual(logicalState(f), logicalState(c)) {
		t.Fatal("incremental tail after bootstrap diverged")
	}
}
