package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/iofault"
	"repro/internal/namegen"
	"repro/internal/token"
)

// mustOpen opens a corpus or fails the test.
func mustOpen(t *testing.T, dir string, opt Options) *Corpus {
	t.Helper()
	c, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// logicalState flattens the corpus to comparable content: per id, the
// canonical token string (empty for tombstones) plus the alive flag.
func logicalState(c *Corpus) []string {
	v := c.View()
	out := make([]string, len(v.Alive))
	for i := range v.Alive {
		if v.Alive[i] {
			out[i] = v.TC.Strings[i].Key()
		} else {
			out[i] = "\x00dead"
		}
	}
	return out
}

func statesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAddDeleteReopen: the WAL alone (no snapshot) reproduces the exact
// logical state across a graceful close and across a crash (no Close).
func TestAddDeleteReopen(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 7, NumNames: 60})
	for _, graceful := range []bool{true, false} {
		dir := t.TempDir()
		c := mustOpen(t, dir, Options{})
		for i, n := range names {
			id, err := c.Add(n)
			if err != nil {
				t.Fatal(err)
			}
			if int(id) != i {
				t.Fatalf("Add id = %d, want %d", id, i)
			}
		}
		if err := c.Delete(3); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(41); err != nil {
			t.Fatal(err)
		}
		if err := c.Delete(3); err == nil {
			t.Fatal("double delete must fail")
		}
		want := logicalState(c)
		wantLive := c.Live()
		if graceful {
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			// A real crash releases the flock with the process; the
			// in-process simulation must do it explicitly.
			c.ReleaseLockForTest()
		}
		// Crash case: the file was fsynced per record (SyncEvery=1), so
		// abandoning the handle loses nothing.
		r := mustOpen(t, dir, Options{})
		defer r.Close()
		if !statesEqual(logicalState(r), want) {
			t.Fatalf("graceful=%v: reopened state differs", graceful)
		}
		if r.Live() != wantLive || r.Len() != len(names) {
			t.Fatalf("graceful=%v: Live=%d Len=%d, want %d/%d", graceful, r.Live(), r.Len(), wantLive, len(names))
		}
		if st := r.Stats(); st.WALReplayed != int64(len(names)+2) {
			t.Fatalf("graceful=%v: WALReplayed = %d, want %d", graceful, st.WALReplayed, len(names)+2)
		}
	}
}

// TestSnapshotAndWALTail: state = snapshot + WAL tail replay; Compact
// prunes older generations and preserves state.
func TestSnapshotAndWALTail(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 8, NumNames: 80})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names[:50] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(10); err != nil {
		t.Fatal(err)
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Generation; got != 1 {
		t.Fatalf("generation after snapshot = %d", got)
	}
	// Tail records land in the new WAL generation.
	for _, n := range names[50:] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(60); err != nil {
		t.Fatal(err)
	}
	want := logicalState(c)
	c.Close()

	r := mustOpen(t, dir, Options{})
	if !statesEqual(logicalState(r), want) {
		t.Fatal("snapshot+tail reopen differs")
	}
	// Only the tail should have been replayed.
	if st := r.Stats(); st.WALReplayed != int64(len(names)-50+1) {
		t.Fatalf("WALReplayed = %d, want %d", st.WALReplayed, len(names)-50+1)
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	// Compact retains the newest prior generation as a corruption
	// fallback: two snapshots, two logs, nothing older.
	snaps, _ := listGens(iofault.OS, dir, snapPrefix, snapSuffix)
	wals, _ := listGens(iofault.OS, dir, walPrefix, walSuffix)
	if len(snaps) != 2 || len(wals) != 2 {
		t.Fatalf("after compact: %d snapshots, %d wals (want 2 + 2)", len(snaps), len(wals))
	}
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	snaps, _ = listGens(iofault.OS, dir, snapPrefix, snapSuffix)
	wals, _ = listGens(iofault.OS, dir, walPrefix, walSuffix)
	if len(snaps) != 2 || len(wals) != 2 {
		t.Fatalf("after second compact: %d snapshots, %d wals (want 2 + 2)", len(snaps), len(wals))
	}
	want2 := logicalState(r)
	r.Close()
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if !statesEqual(logicalState(r2), want2) {
		t.Fatal("post-compact reopen differs")
	}
	// Compaction sheds tombstone content but preserves the id space.
	if r2.Len() != len(names) || r2.Live() != len(names)-2 {
		t.Fatalf("post-compact Len=%d Live=%d", r2.Len(), r2.Live())
	}
}

// corruptFile flips a byte in the middle of path.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptSnapshotFallsBack: a snapshot with a flipped byte fails its
// CRC; Open falls back to the previous generation AND replays the newer
// generation's WAL on top, so even records acknowledged after the
// corrupt snapshot survive.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 9, NumNames: 30})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names[:20] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Acknowledged after the snapshot: these live only in wal-1 and must
	// not be lost when snap-1 rots.
	for _, n := range names[20:] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(25); err != nil {
		t.Fatal(err)
	}
	want := logicalState(c)
	c.Close()

	corruptFile(t, snapPath(dir, 1))
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if !statesEqual(logicalState(r), want) {
		t.Fatal("fallback reopen lost acknowledged records")
	}
	// The full chain was replayed: wal-0 (20 adds) + wal-1 (10 adds + 1
	// delete), and appends continue on the newest generation.
	if st := r.Stats(); st.Generation != 1 || st.WALReplayed != int64(len(names)+1) {
		t.Fatalf("fallback recovery: generation %d, replayed %d", st.Generation, st.WALReplayed)
	}
}

// TestCorruptSnapshotAfterCompact: Compact retains one prior generation,
// so a rotted newest snapshot still recovers everything via the retained
// snapshot plus both WAL generations.
func TestCorruptSnapshotAfterCompact(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 12, NumNames: 40})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names[:15] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Compact(); err != nil { // gen 1
		t.Fatal(err)
	}
	for _, n := range names[15:30] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Compact(); err != nil { // gen 2, retains gen 1
		t.Fatal(err)
	}
	for _, n := range names[30:] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	want := logicalState(c)
	c.Close()

	corruptFile(t, snapPath(dir, 2))
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if !statesEqual(logicalState(r), want) {
		t.Fatal("compacted fallback lost acknowledged records")
	}
}

// TestCompactDropsCorruptFallback: after recovering from a corrupt
// newest snapshot, Compact must retain the *valid* older snapshot as the
// fallback (and remove the known-corrupt one) — so a second corruption
// still recovers everything.
func TestCompactDropsCorruptFallback(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 14, NumNames: 30})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names[:10] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil { // snap-1 (stays valid)
		t.Fatal(err)
	}
	for _, n := range names[10:20] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil { // snap-2 (will rot)
		t.Fatal(err)
	}
	c.Close()
	corruptFile(t, snapPath(dir, 2))

	r := mustOpen(t, dir, Options{}) // falls back to snap-1, replays wal-1+wal-2
	for _, n := range names[20:] {
		if _, err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	want := logicalState(r)
	if err := r.Compact(); err != nil { // snap-3; fallback must be snap-1, not corrupt snap-2
		t.Fatal(err)
	}
	r.Close()
	if _, err := os.Stat(snapPath(dir, 2)); !os.IsNotExist(err) {
		t.Fatal("compact retained the known-corrupt snapshot")
	}
	if _, err := os.Stat(snapPath(dir, 1)); err != nil {
		t.Fatal("compact removed the valid fallback snapshot")
	}
	// Second corruption: the fresh snapshot rots too; the retained valid
	// generation plus the WAL chain still reconstruct everything.
	corruptFile(t, snapPath(dir, 3))
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if !statesEqual(logicalState(r2), want) {
		t.Fatal("double-corruption recovery lost records")
	}
}

// TestDirtyFlag: Dirty tracks whether the newest snapshot is stale —
// set by adds, deletes and WAL replay, cleared by Snapshot/Compact (the
// periodic-checkpoint skip in tsjserve relies on it).
func TestDirtyFlag(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if c.Stats().Dirty {
		t.Fatal("fresh empty corpus must not be dirty")
	}
	if _, err := c.Add("a name"); err != nil {
		t.Fatal(err)
	}
	if !c.Stats().Dirty {
		t.Fatal("add must mark dirty")
	}
	if err := c.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Dirty {
		t.Fatal("snapshot must clear dirty")
	}
	if err := c.Delete(0); err != nil {
		t.Fatal(err)
	}
	if !c.Stats().Dirty {
		t.Fatal("delete must mark dirty")
	}
	c.Close()
	// Replayed records mean the newest snapshot is stale too.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if !r.Stats().Dirty {
		t.Fatal("replayed WAL records must mark dirty")
	}
}

// TestAllSnapshotsCorruptFailsLoudly: when every snapshot is corrupt and
// the WAL chain cannot start at generation zero, Open must error rather
// than present total data loss as a clean start.
func TestAllSnapshotsCorruptFailsLoudly(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 13, NumNames: 20})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Compact(); err != nil { // gen 1: wal-0 is removed later
		t.Fatal(err)
	}
	if err := c.Compact(); err != nil { // gen 2: wal-0 gone, snaps {1, 2}
		t.Fatal(err)
	}
	c.Close()
	corruptFile(t, snapPath(dir, 1))
	corruptFile(t, snapPath(dir, 2))
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open must fail when no snapshot is loadable and the wal chain is incomplete")
	}
}

// TestRerankPolicy: the slack policy re-ranks as the corpus grows, every
// re-rank leaves the order consistent (rank is a permutation; every live
// string's ranked list is sorted by it), and joins of any kind never
// happen here — only Add drives rebuilds.
func TestRerankPolicy(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 10, NumNames: 600})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{DisableSync: true})
	defer c.Close()
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.OrderRebuilds == 0 {
		t.Fatal("600 adds should have triggered at least one re-rank")
	}
	if st.Epoch == 0 {
		t.Fatal("epoch must advance with re-ranks")
	}
	v := c.View()
	seen := make(map[int32]bool, len(v.Rank))
	for _, r := range v.Rank {
		if r < 0 || int(r) >= len(v.Rank) || seen[r] {
			t.Fatalf("rank is not a permutation: %v", r)
		}
		seen[r] = true
	}
	for sid, list := range v.Ranked {
		if !v.Alive[sid] {
			continue
		}
		for i := 1; i < len(list); i++ {
			if v.Rank[list[i-1]] >= v.Rank[list[i]] {
				t.Fatalf("ranked[%d] not sorted by rank", sid)
			}
		}
	}

	// Disabled slack: no rebuild ever, order still a valid total order.
	c2 := mustOpen(t, t.TempDir(), Options{DisableSync: true, RerankSlack: -1})
	defer c2.Close()
	for _, n := range names {
		if _, err := c2.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if got := c2.Stats().OrderRebuilds; got != 0 {
		t.Fatalf("RerankSlack<0 rebuilt %d times", got)
	}
}

// TestViewIsolation: a captured view is untouched by later adds, deletes
// and re-ranks.
func TestViewIsolation(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 11, NumNames: 120})
	c := mustOpen(t, t.TempDir(), Options{DisableSync: true})
	defer c.Close()
	for _, n := range names[:40] {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	v := c.View()
	nStr, nTok := len(v.Alive), len(v.TC.Tokens)
	rank0 := v.Rank
	ranked0 := append([]token.TokenID(nil), v.Ranked[5]...)
	if err := c.Delete(5); err != nil {
		t.Fatal(err)
	}
	for _, n := range names[40:] { // enough churn to force re-ranks
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if len(v.Alive) != nStr || len(v.TC.Tokens) != nTok {
		t.Fatal("view grew after capture")
	}
	if !v.Alive[5] {
		t.Fatal("later delete leaked into the view")
	}
	for i := range ranked0 {
		if v.Ranked[5][i] != ranked0[i] {
			t.Fatal("later re-rank disturbed the view's ranked list")
		}
	}
	// The view's rank array and ranked lists agree with each other even
	// though the corpus has re-ranked since.
	for sid := 0; sid < nStr; sid++ {
		list := v.Ranked[sid]
		for i := 1; i < len(list); i++ {
			if rank0[list[i-1]] >= rank0[list[i]] {
				t.Fatalf("view ranked[%d] inconsistent with view rank", sid)
			}
		}
	}
}

// TestEmptyAndDuplicateStrings: token-less strings and exact duplicates
// are first-class corpus citizens.
func TestEmptyAndDuplicateStrings(t *testing.T) {
	c := mustOpen(t, t.TempDir(), Options{})
	id0, err := c.Add("...")
	if err != nil || id0 != 0 {
		t.Fatalf("empty add: %v %v", id0, err)
	}
	if _, err := c.Add("barak obama"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Add("barak obama"); err != nil {
		t.Fatal(err)
	}
	want := logicalState(c)
	c.Close()
	r := mustOpen(t, c.dir, Options{})
	defer r.Close()
	if !statesEqual(logicalState(r), want) {
		t.Fatal("reopen differs")
	}
	if r.View().TC.Strings[0].Count() != 0 {
		t.Fatal("empty string not preserved")
	}
}

// TestStaleTempCleanup: a leftover snapshot temp file from a crashed
// Snapshot call is removed at Open and never mistaken for a snapshot.
func TestStaleTempCleanup(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if _, err := c.Add("a b"); err != nil {
		t.Fatal(err)
	}
	c.Close()
	tmp := filepath.Join(dir, "snap-zzz.tmp")
	if err := os.WriteFile(tmp, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("stale temp file survived Open")
	}
}
