// Torture harness for the durability layer: a scripted
// add/delete/batch/snapshot/compact workload runs with a fault injected
// at every filesystem-operation index in turn — an I/O error, a torn
// (short) write on a full disk, and a simulated power cut — and after
// each faulted run the corpus is reopened and checked against a model
// of exactly the acknowledged mutations.
//
// The sweep leans on a determinism property: operations before the
// fault index are identical to the fault-free reference run (the
// injector is the only source of divergence), so counting the
// reference run's ops gives the exact sweep bound and every index is
// guaranteed to be reached.
//
// Invariants asserted after every reopen:
//
//   - every acknowledged mutation survives, with unshifted ids;
//   - nothing rolled back resurrects (for the errno/short-write
//     flavors the reopened state must equal the model exactly);
//   - a crash may additionally persist at most the one in-flight,
//     unacknowledged operation (a WAL frame written but whose fsync —
//     and therefore whose rollback — died with the process), and
//     nothing else;
//   - the reopened corpus is healthy: not degraded, and its write path
//     accepts a probe append;
//   - join results replay equivalently: a corpus rebuilt from the model
//     joins identically to the reopened one.
//
// This file is an external test package so it can import internal/tsj
// (which itself imports corpus) for the join-equivalence check.
package corpus_test

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"syscall"
	"testing"

	"repro/internal/corpus"
	"repro/internal/iofault"
	"repro/internal/namegen"
	"repro/internal/token"
	"repro/internal/tsj"
)

// opStep is one scripted workload operation.
type opStep struct {
	kind  byte // 'a' add, 'b' batch add, 'd' delete, 's' snapshot, 'c' compact
	name  string
	batch []string
	sid   int
}

func buildScript(names []string) []opStep {
	var s []opStep
	for i := 0; i < 8; i++ {
		s = append(s, opStep{kind: 'a', name: names[i]})
	}
	s = append(s,
		opStep{kind: 'd', sid: 2},
		opStep{kind: 'd', sid: 5},
		opStep{kind: 's'},
		opStep{kind: 'b', batch: names[8:12]},
		opStep{kind: 'd', sid: 7},
		opStep{kind: 'c'},
	)
	for i := 12; i < 15; i++ {
		s = append(s, opStep{kind: 'a', name: names[i]})
	}
	s = append(s, opStep{kind: 'd', sid: 0}, opStep{kind: 's'})
	for i := 15; i < 18; i++ {
		s = append(s, opStep{kind: 'a', name: names[i]})
	}
	return s
}

// model tracks the acknowledged logical state: strs[sid] is the
// tokenized content (tokens joined by NUL), alive the tombstone mask.
// Content is retained for tombstones so a reference corpus can rebuild
// the identical id space.
type model struct {
	strs  []string
	alive []bool
}

func normalize(name string) string {
	return strings.Join(token.WhitespaceAndPunct(name).Tokens, "\x00")
}

func (m *model) add(name string) {
	m.strs = append(m.strs, normalize(name))
	m.alive = append(m.alive, true)
}

func (m *model) clone() *model {
	return &model{
		strs:  append([]string(nil), m.strs...),
		alive: append([]bool(nil), m.alive...),
	}
}

func (m *model) liveCount() int {
	n := 0
	for _, a := range m.alive {
		if a {
			n++
		}
	}
	return n
}

// logical extracts the comparable logical state of an opened corpus.
func logical(c *corpus.Corpus) *model {
	v := c.View()
	n := v.TC.NumStrings()
	m := &model{strs: make([]string, n), alive: make([]bool, n)}
	for i := 0; i < n; i++ {
		m.alive[i] = v.Alive[i]
		if v.Alive[i] {
			m.strs[i] = strings.Join(v.TC.Strings[i].Tokens, "\x00")
		}
	}
	return m
}

// stateEqual compares id space, tombstone mask, and live content.
func stateEqual(a, b *model) bool {
	if len(a.strs) != len(b.strs) {
		return false
	}
	for i := range a.strs {
		if a.alive[i] != b.alive[i] {
			return false
		}
		if a.alive[i] && a.strs[i] != b.strs[i] {
			return false
		}
	}
	return true
}

// runWorkload drives the script against c, applying each step to the
// model only when the corpus acknowledged it, and returns the index of
// the first failed step (-1 if none). Acknowledged ids must equal the
// model's next id — an in-process id shift is a harness-stopping bug.
func runWorkload(t *testing.T, c *corpus.Corpus, steps []opStep, m *model) int {
	t.Helper()
	firstFail := -1
	for si, st := range steps {
		var err error
		switch st.kind {
		case 'a':
			var id token.StringID
			id, err = c.Add(st.name)
			if err == nil {
				if int(id) != len(m.strs) {
					t.Fatalf("step %d: acknowledged id %d, model expects %d", si, id, len(m.strs))
				}
				m.add(st.name)
			}
		case 'b':
			tss := make([]token.TokenizedString, len(st.batch))
			for i, s := range st.batch {
				tss[i] = c.Tokenizer()(s)
			}
			var first token.StringID
			first, err = c.AddTokenizedBatch(tss)
			if err == nil {
				if int(first) != len(m.strs) {
					t.Fatalf("step %d: acknowledged batch base %d, model expects %d", si, first, len(m.strs))
				}
				for _, s := range st.batch {
					m.add(s)
				}
			}
		case 'd':
			err = c.Delete(token.StringID(st.sid))
			if err == nil {
				m.alive[st.sid] = false
			}
		case 's':
			err = c.Snapshot()
		case 'c':
			err = c.Compact()
		}
		if err != nil && firstFail == -1 {
			firstFail = si
		}
	}
	return firstFail
}

// crashCandidates enumerates the states a crash is allowed to leave
// behind: the acknowledged model, plus the model with (a prefix of) the
// one in-flight operation applied — a WAL frame can be fully written
// and then the fsync, and with it the rollback, dies with the process.
func crashCandidates(m *model, steps []opStep, firstFail int) []*model {
	out := []*model{m}
	if firstFail < 0 {
		return out
	}
	switch st := steps[firstFail]; st.kind {
	case 'a':
		alt := m.clone()
		alt.add(st.name)
		out = append(out, alt)
	case 'b':
		for j := 1; j <= len(st.batch); j++ {
			alt := m.clone()
			for _, nm := range st.batch[:j] {
				alt.add(nm)
			}
			out = append(out, alt)
		}
	case 'd':
		if st.sid < len(m.alive) && m.alive[st.sid] {
			alt := m.clone()
			alt.alive[st.sid] = false
			out = append(out, alt)
		}
	}
	return out
}

// joinPairs runs the corpus self-join and renders the result pairs in a
// canonical order.
func joinPairs(t *testing.T, c *corpus.Corpus) []string {
	t.Helper()
	opts := tsj.DefaultOptions()
	opts.Threshold = 0.25
	res, _, err := tsj.SelfJoinCorpus(c, opts)
	if err != nil {
		t.Fatalf("SelfJoinCorpus: %v", err)
	}
	ps := make([]string, len(res))
	for i, r := range res {
		ps[i] = fmt.Sprintf("%d-%d-%d", r.A, r.B, r.SLD)
	}
	sort.Strings(ps)
	return ps
}

// buildReference reconstructs a fresh corpus whose logical state is
// exactly the model (same id space, same tombstones).
func buildReference(t *testing.T, m *model) *corpus.Corpus {
	t.Helper()
	c, err := corpus.Open(t.TempDir(), corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatalf("open reference: %v", err)
	}
	for i, s := range m.strs {
		id, err := c.AddTokenized(token.New(strings.Split(s, "\x00")))
		if err != nil || int(id) != i {
			t.Fatalf("reference add %d: id=%d err=%v", i, id, err)
		}
	}
	for i, alive := range m.alive {
		if !alive {
			if err := c.Delete(token.StringID(i)); err != nil {
				t.Fatalf("reference delete %d: %v", i, err)
			}
		}
	}
	return c
}

// tortureFlavor is one fault shape swept across every op index.
type tortureFlavor struct {
	name  string
	crash bool
	plan  func(i int64) iofault.Plan
}

var tortureFlavors = []tortureFlavor{
	{"eio", false, func(i int64) iofault.Plan {
		return iofault.Plan{FailAt: i}
	}},
	{"enospc-short-write", false, func(i int64) iofault.Plan {
		return iofault.Plan{FailAt: i, Err: syscall.ENOSPC, ShortWrite: 3}
	}},
	{"crash", true, func(i int64) iofault.Plan {
		return iofault.Plan{FailAt: i, Crash: true}
	}},
}

func TestTortureOpSweep(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 21, NumNames: 18})
	steps := buildScript(names)

	// Fault-free reference run: counts the op stream (the sweep bound)
	// and validates the model tracking itself round-trips.
	refDir := t.TempDir()
	counter := iofault.NewInjector(iofault.OS, iofault.Disarmed())
	c, err := corpus.Open(refDir, corpus.Options{FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	ref := &model{}
	if ff := runWorkload(t, c, steps, ref); ff != -1 {
		t.Fatalf("fault-free run failed at step %d", ff)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	total := counter.Ops()
	if total < 20 {
		t.Fatalf("suspiciously few ops in reference run: %d", total)
	}
	c2, err := corpus.Open(refDir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := logical(c2); !stateEqual(got, ref) {
		t.Fatalf("fault-free reopen diverges from model: got %d strings (%d live), want %d (%d live)",
			len(got.strs), got.liveCount(), len(ref.strs), ref.liveCount())
	}
	refPairs := joinPairs(t, c2)
	if len(refPairs) == 0 {
		t.Fatal("reference workload joins to zero pairs; the equivalence check would be vacuous")
	}
	c2.Close()

	stride := int64(1)
	if testing.Short() {
		stride = 4
	}
	for _, fl := range tortureFlavors {
		fl := fl
		t.Run(fl.name, func(t *testing.T) {
			for i := int64(0); i < total; i += stride {
				tortureOne(t, steps, fl, i)
			}
		})
	}
}

// tortureOne runs the workload with one fault at op index i, reopens,
// and asserts the invariants.
func tortureOne(t *testing.T, steps []opStep, fl tortureFlavor, i int64) {
	t.Helper()
	dir := t.TempDir()
	inj := iofault.NewInjector(iofault.OS, fl.plan(i))
	m := &model{}
	firstFail := -1
	c, err := corpus.Open(dir, corpus.Options{FS: inj})
	if err == nil {
		firstFail = runWorkload(t, c, steps, m)
		c.Close() // may fail under the injected fault; artifacts are the point
	}
	if inj.Faults() != 1 {
		t.Errorf("[%s@%d] fault fired %d times, want exactly 1 (ops seen: %d)",
			fl.name, i, inj.Faults(), inj.Ops())
		return
	}

	// Reopen over the real filesystem: the next process after the fault.
	c2, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Errorf("[%s@%d] reopen after fault failed: %v", fl.name, i, err)
		return
	}
	defer c2.Close()

	got := logical(c2)
	cands := []*model{m}
	if fl.crash {
		cands = crashCandidates(m, steps, firstFail)
	}
	var match *model
	for _, cand := range cands {
		if stateEqual(got, cand) {
			match = cand
			break
		}
	}
	if match == nil {
		t.Errorf("[%s@%d] reopened state matches none of %d allowed states: got %d strings (%d live), acked model has %d (%d live); first failed step %d",
			fl.name, i, len(cands), len(got.strs), got.liveCount(), len(m.strs), m.liveCount(), firstFail)
		return
	}
	if derr := c2.Degraded(); derr != nil {
		t.Errorf("[%s@%d] reopened corpus is degraded: %v", fl.name, i, derr)
	}

	// Join replay-equivalence on a diagonal of the sweep (it dominates
	// the runtime): a corpus rebuilt from the matched state must join
	// identically to the reopened one.
	if i%7 == 0 && match.liveCount() > 1 {
		refC := buildReference(t, match)
		want := joinPairs(t, refC)
		refC.Close()
		gotPairs := joinPairs(t, c2)
		if strings.Join(gotPairs, " ") != strings.Join(want, " ") {
			t.Errorf("[%s@%d] join results diverge after reopen: got %v, want %v",
				fl.name, i, gotPairs, want)
		}
	}

	// The write path must be fully healthy after recovery.
	if id, err := c2.Add("post fault probe"); err != nil {
		t.Errorf("[%s@%d] probe append after reopen failed: %v", fl.name, i, err)
	} else if int(id) != len(match.strs) {
		t.Errorf("[%s@%d] probe append got id %d, want %d (id space shifted)",
			fl.name, i, id, len(match.strs))
	}
}

// TestDegradedSealAndRecover exercises the fsyncgate contract end to
// end at the corpus level: a failed WAL fsync seals the generation,
// mutations fail fast with ErrDegraded without touching the sealed fd,
// reads keep serving, and Recover heals by rotating to a fresh
// generation — after which the id space continues unshifted and a
// restart sees every acknowledged record.
func TestDegradedSealAndRecover(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 22, NumNames: 5})
	dir := t.TempDir()
	inj := iofault.NewInjector(iofault.OS, iofault.Disarmed())
	c, err := corpus.Open(dir, corpus.Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Add(names[i]); err != nil {
			t.Fatal(err)
		}
	}

	inj.SetPlan(iofault.Plan{FailAt: 0, Only: iofault.OpSync})
	if _, err := c.Add(names[3]); !errors.Is(err, corpus.ErrDegraded) {
		t.Fatalf("add through failing fsync: err = %v, want ErrDegraded", err)
	}
	if c.Degraded() == nil {
		t.Fatal("Degraded() = nil after fsync failure")
	}
	if !c.Stats().Degraded {
		t.Fatal("Stats().Degraded = false after fsync failure")
	}
	faultsAfterSeal := inj.Faults()
	if _, err := c.Add(names[4]); !errors.Is(err, corpus.ErrDegraded) {
		t.Fatalf("add on sealed corpus: err = %v, want ErrDegraded", err)
	}
	if inj.Faults() != faultsAfterSeal || inj.Crashed() {
		t.Fatal("sealed corpus touched the filesystem on a failed-fast add")
	}
	if v := c.View(); v.Live != 3 {
		t.Fatalf("degraded read path: Live = %d, want 3", v.Live)
	}

	// The one-shot plan is exhausted; Recover rotates to a fresh
	// generation through new descriptors and clears the seal.
	if err := c.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := c.Degraded(); err != nil {
		t.Fatalf("Degraded() = %v after successful Recover", err)
	}
	id, err := c.Add(names[3])
	if err != nil {
		t.Fatalf("add after recovery: %v", err)
	}
	if id != 3 {
		t.Fatalf("post-recovery id = %d, want 3 (the rolled-back add must not occupy an id)", id)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	c2, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Live() != 4 || c2.Len() != 4 {
		t.Fatalf("after restart: live=%d len=%d, want 4/4", c2.Live(), c2.Len())
	}
}

// TestBitRotMidChainFailsLoudly: damage that replay cannot prove is a
// crash artifact — a corrupt frame in a non-final WAL generation, with
// the covering snapshot also rotted — must fail Open loudly rather
// than silently replaying a shifted id space.
func TestBitRotMidChainFailsLoudly(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 23, NumNames: 8})
	dir := t.TempDir()
	c, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Add(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Snapshot(); err != nil { // folds wal-0 into snap-1, opens wal-1
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		if _, err := c.Add(names[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Rot the snapshot (CRC will reject it, forcing the fallback to the
	// full WAL chain) and a byte inside wal-0's first frame (mid-chain
	// damage: wal-1 exists after it).
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	flip := func(name string, off int64) {
		path := dir + string(os.PathSeparator) + name
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off += int64(len(raw))
		}
		raw[off] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range ents {
		switch {
		case strings.HasSuffix(e.Name(), ".tsj"):
			flip(e.Name(), -10)
		case strings.Contains(e.Name(), "wal-") && strings.Contains(e.Name(), "0000000000000000"):
			flip(e.Name(), 12) // inside the first frame
		}
	}

	if _, err := corpus.Open(dir, corpus.Options{}); err == nil {
		t.Fatal("Open succeeded over mid-chain bit rot; acknowledged records were silently dropped")
	}
}
