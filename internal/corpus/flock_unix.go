//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package corpus

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/LOCK, so a second
// process opening the same -data directory fails loudly instead of
// interleaving WAL appends with the owner (single-writer was previously
// by convention only). The lock is advisory and process-scoped: it dies
// with the process, so a crash never wedges the directory.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(dir+string(os.PathSeparator)+lockFileName, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("corpus: %s is locked by another process (flock: %w)", dir, err)
	}
	return f, nil
}

// unlockDir releases the advisory lock (nil-safe; errors are ignored —
// the lock dies with the descriptor regardless).
func unlockDir(f *os.File) {
	if f == nil {
		return
	}
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
	f.Close()
}
