// Package corpus implements the durable, mutable corpus behind the
// persistent join and serving paths: it owns the tokenized strings, the
// global rarest-first token-frequency order, the per-string rank-sorted
// member lists from which threshold-aware prefixes are sliced, and the
// inverted postings — and it persists all logical state through a
// versioned binary snapshot plus a CRC-framed, fsync-batched write-ahead
// log, so a process restart recovers the exact corpus (and any index
// derived from it) without re-ingesting anything.
//
// # Incremental prefix maintenance
//
// The batch prefix filter (internal/prefilter) needs one fixed total
// order over the token space and, per string, the head of its distinct
// tokens under that order. Rebuilding that order per join is what
// prefilter.NewIndex does; this package maintains it incrementally
// instead, with epoch-stamped orders:
//
//   - Within an epoch the order is frozen. New tokens are appended at the
//     tail (treated as most common), so the order stays a fixed total
//     order no matter how frequencies drift. Every string added during
//     the epoch stores its distinct tokens sorted by the frozen order, so
//     a join at any threshold T just slices the first PrefixLen(T, L, d)
//     entries — no global sort, no per-string sort, zero order rebuilds.
//   - Frequencies drift as strings arrive. Drift never breaks
//     correctness: the prefilter's losslessness argument needs only some
//     fixed total order shared by all strings, not a frequency-sorted
//     one (the stored lists are "stale-but-wider" in the sense that any
//     threshold's prefix is a slice of the full stored list — see
//     TestPrefixEquivalenceStaleCorpusOrder for the property test).
//     Drift only erodes pruning power: a once-rare token that became hot
//     keeps its early rank and drags long posting lists into prefixes.
//   - A slack bound decides when eroded is too eroded: a token counts as
//     drifted once its live document frequency exceeds twice its
//     frequency at the last re-rank (plus a small base), and newborn
//     tokens count immediately (they sit mis-ranked at the tail). When
//     drifted tokens exceed RerankSlack of the token space, one re-rank
//     re-sorts the order and every live string's member list, stamps a
//     new epoch, and resets the drift accounting. The policy is
//     performance-only; any schedule (including never) preserves exact
//     join results.
//
// All order-bearing state is replaced copy-on-write at a re-rank, so
// views captured by concurrent joins stay internally consistent.
package corpus

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/iofault"
	"repro/internal/token"
)

// driftSlackBase keeps low-frequency tokens from counting as drifted on
// their first few occurrences: a token drifts when
// freq > 2*frozenFreq + driftSlackBase.
const driftSlackBase = 8

// defaultRerankSlack is the drifted-token fraction that triggers a
// re-rank when Options.RerankSlack is zero.
const defaultRerankSlack = 0.125

// Options configures a persistent corpus.
type Options struct {
	// Tokenizer maps raw strings to token multisets for Add. The WAL
	// stores tokenized forms, so replay never consults it; it only has to
	// stay fixed for as long as the caller wants new and old strings
	// tokenized the same way. Defaults to whitespace+punctuation.
	Tokenizer token.Tokenizer
	// SyncEvery batches WAL fsyncs: the log is forced to stable storage
	// every SyncEvery records (and always on Sync, Snapshot and Close).
	// 1 (the default) is write-through — every Add returns durable.
	// Larger values trade the tail of the log for throughput.
	SyncEvery int
	// DisableSync skips fsync entirely (tests and benchmarks on throwaway
	// data; a crash may lose anything after the last OS writeback).
	DisableSync bool
	// RerankSlack is the fraction of the token space that may drift
	// before the frequency order is re-ranked (see the package comment).
	// 0 means the default (0.125); negative disables re-ranking, freezing
	// the order of the first epoch forever (results are unaffected;
	// pruning power degrades).
	RerankSlack float64
	// FS is the filesystem seam every durability path runs over; nil
	// means the real OS filesystem. Fault-injection tests install an
	// iofault.Injector here to fail a chosen write, fsync, rename or
	// dir-fsync and exercise the recovery paths.
	FS iofault.FS
	// ShipBufferRecords bounds the in-memory replication ship log (see
	// LSN, ShipFrom): the ring retains up to this many recent committed
	// records for streaming to followers; a follower that falls off the
	// ring is bootstrapped instead. 0 means the default (1024).
	ShipBufferRecords int
}

// Corpus is the durable corpus. All methods are safe for concurrent use;
// mutations are serialized, and View captures a consistent point-in-time
// read view that later mutations never disturb.
type Corpus struct {
	mu  sync.RWMutex
	dir string
	opt Options
	fs  iofault.FS

	// ---- logical state --------------------------------------------------
	strings []token.TokenizedString
	alive   []bool
	live    int

	tokens     []string
	tokenRunes [][]rune
	tokenID    map[string]token.TokenID
	// freq is the live document frequency over alive strings (deletes
	// decrement). postings may retain tombstoned StringIDs until the next
	// process restart from a compacted snapshot; readers filter by alive.
	freq     []int32
	postings [][]token.StringID

	// lexMembers[s] holds s's distinct TokenIDs in lexicographic token
	// order (the Members invariant of token.NewCorpusView).
	lexMembers [][]token.TokenID

	// ---- epoch-stamped frequency order ----------------------------------
	// rank maps token -> position in the frozen rarest-first order; the
	// array is replaced wholesale at a re-rank (copy-on-write), and new
	// tokens append nextRank at the tail. ranked[s] is s's distinct
	// tokens sorted by frozen rank ascending — the full "widest prefix"
	// from which every threshold's prefix is sliced; entries are replaced
	// copy-on-write at a re-rank.
	rank       []int32
	nextRank   int32
	ranked     [][]token.TokenID
	frozenFreq []int32
	drifted    []bool
	driftCount int
	epoch      uint64
	reranks    int64

	// ---- persistence ----------------------------------------------------
	gen         uint64
	wal         *walWriter
	walReplayed int64
	snapshots   int64
	closed      bool
	encBuf      []byte
	// degraded, when non-nil, is the storage failure that sealed the
	// write path: a failed WAL fsync or rollback (the generation can no
	// longer be trusted to persist what it acknowledges) or a failed
	// directory fsync after a rotation. Reads keep working from memory;
	// mutations fail fast with ErrDegraded until Recover (or Snapshot)
	// rotates to a fresh generation end-to-end.
	degraded error
	// dirty is set by every applied mutation (including replayed ones)
	// and cleared by a snapshot: when false, the newest snapshot already
	// holds the exact state, so periodic checkpoints can skip.
	dirty bool
	// corruptSnaps are snapshot generations that failed their CRC at
	// Open; Compact removes them and never retains one as the fallback.
	corruptSnaps map[uint64]bool
	// lock is the advisory flock on the data directory, held from Open to
	// Close so a second process fails loudly instead of corrupting the
	// WAL (nil on platforms without flock).
	lock *os.File
	// ship is the replication ship log (see ship.go); nil only while Open
	// replays the WAL, so recovered records are never re-buffered.
	ship *shipLog

	joinsServed atomic.Int64
}

// Stats is a snapshot of the corpus's state and persistence counters.
type Stats struct {
	// Strings is the total id space (including tombstones); Live counts
	// non-deleted strings; Tokens the distinct token space.
	Strings, Live, Tombstones, Tokens int
	// Epoch identifies the current frozen frequency order;
	// OrderRebuilds counts lifetime re-ranks (persisted across
	// restarts). Joins never bump either — that is the reusable-asset
	// guarantee the acceptance test asserts.
	Epoch         uint64
	OrderRebuilds int64
	// DriftedTokens is the current drift-accounting level (re-rank fires
	// when it passes the slack bound).
	DriftedTokens int
	// Generation is the current snapshot/WAL generation. WALReplayed
	// counts records recovered at Open; WALRecords/WALBytes count appends
	// by this process; Snapshots counts snapshots written by this
	// process.
	Generation  uint64
	WALReplayed int64
	WALRecords  int64
	WALBytes    int64
	Snapshots   int64
	// Dirty reports whether any mutation (including replayed WAL records)
	// has been applied since the newest snapshot — false means a
	// checkpoint would write an identical snapshot and can be skipped.
	Dirty bool
	// Degraded reports whether the write path is sealed after a storage
	// failure (see Corpus.Degraded).
	Degraded bool
	// JoinsServed counts SelfJoinCorpus calls answered from the stored
	// order.
	JoinsServed int64
}

// Open loads (or initializes) the corpus persisted in dir: the newest
// valid snapshot is loaded, its WAL generation replayed — a torn or
// corrupt WAL tail is detected by CRC and cleanly ignored — and the log
// reopened for appends.
func Open(dir string, opt Options) (*Corpus, error) {
	if opt.Tokenizer == nil {
		opt.Tokenizer = token.WhitespaceAndPunct
	}
	if opt.SyncEvery <= 0 {
		opt.SyncEvery = 1
	}
	if opt.RerankSlack == 0 {
		opt.RerankSlack = defaultRerankSlack
	}
	fs := opt.FS
	if fs == nil {
		fs = iofault.OS
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	opened := false
	defer func() {
		if !opened {
			unlockDir(lock)
		}
	}()
	c := &Corpus{
		dir:          dir,
		opt:          opt,
		fs:           fs,
		tokenID:      make(map[string]token.TokenID),
		corruptSnaps: make(map[uint64]bool),
		lock:         lock,
	}
	removeStaleTemp(fs, dir)

	// Newest valid snapshot wins; a corrupt one falls back a generation
	// (Compact retains one prior generation precisely for this). If
	// snapshots exist but none decodes, fail loudly — opening an empty
	// corpus over a directory that demonstrably held data would present
	// total data loss as a clean start.
	snaps, err := listGens(fs, dir, snapPrefix, snapSuffix)
	if err != nil {
		return nil, err
	}
	loaded := false
	for i := len(snaps) - 1; i >= 0; i-- {
		st, err := readSnapshot(fs, snapPath(dir, snaps[i]))
		if err != nil {
			c.corruptSnaps[snaps[i]] = true
			continue
		}
		c.applySnapshot(st)
		loaded = true
		break
	}

	// Replay every WAL generation from the loaded snapshot's onward, in
	// order — after a fallback (snapshot g corrupt, g-1 loaded) the
	// records acknowledged under generation g live in wal-g and must not
	// be dropped; with no loadable snapshot at all, an intact chain from
	// wal-0 still reconstructs everything. Generations must be
	// consecutive, and only the final one may end in a torn/corrupt tail:
	// damage in an earlier generation would silently shift every later
	// record's id. When snapshots exist but none decodes and the chain
	// cannot start at zero, fail loudly — opening an empty corpus over a
	// directory that demonstrably held data would present total data loss
	// as a clean start.
	walGens, err := listGens(fs, dir, walPrefix, walSuffix)
	if err != nil {
		return nil, err
	}
	if !loaded && len(snaps) > 0 && len(walGens) == 0 {
		return nil, fmt.Errorf("corpus: none of the %d snapshots in %s is loadable and no wal remains; refusing to open empty", len(snaps), dir)
	}
	apply := func(rec walRecord) error {
		switch rec.op {
		case opAdd:
			c.applyAdd(token.New(rec.tokens))
		case opDelete:
			return c.applyDelete(rec.sid)
		}
		return nil
	}
	var offset int64
	expected := c.gen
	for gi, g := range walGens {
		if g < c.gen {
			continue // folded into the loaded snapshot
		}
		if g != expected {
			return nil, fmt.Errorf("corpus: wal generation %d missing (found %d)", expected, g)
		}
		off, records, clean, err := replayWAL(fs, walPath(dir, g), apply)
		if err != nil {
			return nil, err
		}
		if !clean && gi != len(walGens)-1 {
			return nil, fmt.Errorf("corpus: wal generation %d is damaged mid-chain; later generations cannot be replayed safely", g)
		}
		c.walReplayed += records
		offset = off
		c.gen = g
		expected = g + 1
	}

	c.wal, err = newWALWriter(fs, walPath(dir, c.gen), offset, opt.SyncEvery, opt.DisableSync)
	if err != nil {
		return nil, err
	}
	if err := c.syncDir(); err != nil {
		c.wal.close()
		return nil, err
	}
	// The ship log starts at the post-recovery LSN: replayed records are
	// not buffered (a follower behind a restarted primary bootstraps).
	c.ship = newShipLog(opt.ShipBufferRecords)
	c.ship.head = c.lsnLocked()
	opened = true
	return c, nil
}

// removeStaleTemp clears half-written snapshot temp files from a crashed
// Snapshot call.
func removeStaleTemp(fs iofault.FS, dir string) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if len(name) > 4 && name[:5] == "snap-" && name[len(name)-4:] == ".tmp" {
			fs.Remove(dir + string(os.PathSeparator) + name)
		}
	}
}

// applySnapshot installs a decoded snapshot as the corpus state and
// rebuilds the derived structures (intern map, rune cache, live
// frequencies, postings, member lists) in one linear pass.
func (c *Corpus) applySnapshot(st *snapState) {
	c.gen = st.gen
	c.epoch = st.epoch
	c.reranks = st.reranks
	c.tokens = st.tokens
	c.rank = st.rank
	c.frozenFreq = st.frozen
	c.nextRank = 0
	for _, r := range c.rank {
		if r >= c.nextRank {
			c.nextRank = r + 1
		}
	}
	n := len(c.tokens)
	c.tokenRunes = make([][]rune, n)
	c.tokenID = make(map[string]token.TokenID, n)
	for id, t := range c.tokens {
		c.tokenRunes[id] = []rune(t)
		c.tokenID[t] = token.TokenID(id)
	}
	c.freq = make([]int32, n)
	c.postings = make([][]token.StringID, n)
	c.drifted = make([]bool, n)

	c.strings = make([]token.TokenizedString, len(st.strs))
	c.alive = st.alive
	c.lexMembers = make([][]token.TokenID, len(st.strs))
	c.ranked = make([][]token.TokenID, len(st.strs))
	var toks []string
	for sid, ids := range st.strs {
		if !st.alive[sid] {
			continue
		}
		c.live++
		toks = toks[:0]
		for _, tid := range ids {
			toks = append(toks, c.tokens[tid])
		}
		c.strings[sid] = token.New(toks)
		lex := distinctIDs(ids)
		c.lexMembers[sid] = lex
		for _, tid := range lex {
			c.freq[tid]++
			c.postings[tid] = append(c.postings[tid], token.StringID(sid))
		}
		c.ranked[sid] = c.rankSort(lex)
	}
	// Drift restarts from the loaded frozen frequencies.
	for tid := range c.freq {
		if c.freq[tid] > 2*c.frozenFreq[tid]+driftSlackBase {
			c.drifted[tid] = true
			c.driftCount++
		}
	}
}

// distinctIDs collapses a sorted-by-token multiset id list (duplicates
// adjacent, because equal tokens are adjacent in TokenizedString order)
// into the distinct list, preserving order.
func distinctIDs(ids []token.TokenID) []token.TokenID {
	out := make([]token.TokenID, 0, len(ids))
	for i, id := range ids {
		if i > 0 && id == ids[i-1] {
			continue
		}
		out = append(out, id)
	}
	return out
}

// rankSort returns a fresh copy of ids sorted by the current frozen rank.
func (c *Corpus) rankSort(ids []token.TokenID) []token.TokenID {
	out := append([]token.TokenID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return c.rank[out[i]] < c.rank[out[j]] })
	return out
}

// intern returns the TokenID for t, interning it (with a tail rank in the
// frozen order) on first sight.
func (c *Corpus) intern(t string) token.TokenID {
	if tid, ok := c.tokenID[t]; ok {
		return tid
	}
	tid := token.TokenID(len(c.tokens))
	c.tokenID[t] = tid
	c.tokens = append(c.tokens, t)
	c.tokenRunes = append(c.tokenRunes, []rune(t))
	c.freq = append(c.freq, 0)
	c.postings = append(c.postings, nil)
	c.frozenFreq = append(c.frozenFreq, 0)
	c.rank = append(c.rank, c.nextRank)
	c.nextRank++
	// Newborn tokens sit mis-ranked at the tail (they are rare, the tail
	// is the common end), so they count toward the re-rank slack
	// immediately.
	c.drifted = append(c.drifted, true)
	c.driftCount++
	return tid
}

// applyAdd installs one tokenized string (already WAL-durable or being
// replayed) and returns its id.
func (c *Corpus) applyAdd(ts token.TokenizedString) token.StringID {
	sid := token.StringID(len(c.strings))
	c.strings = append(c.strings, ts)
	c.alive = append(c.alive, true)
	c.live++

	lex := make([]token.TokenID, 0, ts.Count())
	for i, t := range ts.Tokens {
		if i > 0 && t == ts.Tokens[i-1] {
			continue
		}
		lex = append(lex, c.intern(t))
	}
	c.lexMembers = append(c.lexMembers, lex)
	for _, tid := range lex {
		c.postings[tid] = append(c.postings[tid], sid)
		c.freq[tid]++
		if !c.drifted[tid] && c.freq[tid] > 2*c.frozenFreq[tid]+driftSlackBase {
			c.drifted[tid] = true
			c.driftCount++
		}
	}
	c.ranked = append(c.ranked, c.rankSort(lex))
	c.dirty = true
	c.maybeRerank()
	return sid
}

// ErrNotFound marks a delete of an id that does not exist or is already
// tombstoned — a caller error, as opposed to a persistence failure.
var ErrNotFound = errors.New("unknown or already-deleted id")

// ErrDegraded marks the corpus's degraded mode: a storage failure sealed
// the write path, so mutations fail fast while reads keep serving from
// memory. Recover (or Snapshot) heals by rotating to a fresh generation;
// errors.Is(err, ErrDegraded) identifies the condition.
var ErrDegraded = errors.New("corpus degraded: write path sealed")

// degradedErr renders the current degraded state as an ErrDegraded-
// wrapped error. Caller holds at least the read lock; c.degraded != nil.
func (c *Corpus) degradedErr() error {
	return fmt.Errorf("%w: %v", ErrDegraded, c.degraded)
}

// noteWAL post-processes a failed WAL operation: if it left the writer
// sealed (fsync failed, or a rollback could not restore the validated
// prefix), the corpus enters degraded mode and the error is tagged with
// ErrDegraded. A clean per-op failure — the append failed but rollback
// restored the log — passes through untagged; the corpus stays healthy.
func (c *Corpus) noteWAL(err error) error {
	if err == nil {
		return nil
	}
	if c.wal.broken != nil {
		c.degraded = c.wal.broken
		return fmt.Errorf("%w: %v", ErrDegraded, err)
	}
	return err
}

// applyDelete tombstones a string. Its content, member lists and posting
// entries are retained (point-in-time views may still hold them; readers
// filter by alive) — a restart from a compacted snapshot sheds them.
func (c *Corpus) applyDelete(sid token.StringID) error {
	if int(sid) >= len(c.strings) || sid < 0 {
		return fmt.Errorf("corpus: delete of id %d: %w", sid, ErrNotFound)
	}
	if !c.alive[sid] {
		return fmt.Errorf("corpus: delete of id %d: %w", sid, ErrNotFound)
	}
	c.alive[sid] = false
	c.live--
	for _, tid := range c.lexMembers[sid] {
		c.freq[tid]--
	}
	c.dirty = true
	return nil
}

// maybeRerank applies the slack policy (see the package comment).
func (c *Corpus) maybeRerank() {
	if c.opt.RerankSlack < 0 {
		return
	}
	threshold := int(c.opt.RerankSlack * float64(len(c.tokens)))
	if threshold < 64 {
		threshold = 64
	}
	if c.driftCount <= threshold {
		return
	}
	c.rerank()
}

// rerank rebuilds the rarest-first order from the live frequencies and
// re-sorts every live string's member list under it, stamping a new
// epoch. Everything it touches is replaced copy-on-write so concurrent
// views stay consistent.
func (c *Corpus) rerank() {
	order := make([]token.TokenID, len(c.tokens))
	for i := range order {
		order[i] = token.TokenID(i)
	}
	sort.Slice(order, func(i, j int) bool {
		fi, fj := c.freq[order[i]], c.freq[order[j]]
		if fi != fj {
			return fi < fj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, len(c.tokens))
	for r, tid := range order {
		rank[tid] = int32(r)
	}
	c.rank = rank
	c.nextRank = int32(len(order))
	for sid := range c.ranked {
		if !c.alive[sid] {
			continue
		}
		c.ranked[sid] = c.rankSort(c.lexMembers[sid])
	}
	c.frozenFreq = append([]int32(nil), c.freq...)
	c.drifted = make([]bool, len(c.tokens))
	c.driftCount = 0
	c.epoch++
	c.reranks++
}

// Add tokenizes s, appends it to the WAL and installs it, returning its
// id. With SyncEvery = 1 the record is durable when Add returns.
func (c *Corpus) Add(s string) (token.StringID, error) {
	return c.AddTokenized(c.opt.Tokenizer(s))
}

// AddTokenized is Add for a pre-tokenized string.
func (c *Corpus) AddTokenized(ts token.TokenizedString) (token.StringID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, errors.New("corpus: closed")
	}
	if c.degraded != nil {
		return -1, c.degradedErr()
	}
	m := c.wal.mark()
	c.encBuf = encodeAdd(c.encBuf, ts)
	if err := c.wal.append(c.encBuf); err != nil {
		// Discard any frame the failed append left behind: the string was
		// never applied, so a replay must not see it (it would shift every
		// later id).
		c.wal.rollback(m)
		return -1, c.noteWAL(err)
	}
	sid := c.applyAdd(ts)
	c.shipAppend(c.encBuf)
	return sid, nil
}

// AddTokenizedBatch appends a batch with one group-commit fsync and
// installs every string, returning the first id (the batch occupies the
// dense range [first, first+len(tss))).
func (c *Corpus) AddTokenizedBatch(tss []token.TokenizedString) (token.StringID, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, errors.New("corpus: closed")
	}
	if c.degraded != nil {
		return -1, c.degradedErr()
	}
	first := token.StringID(len(c.strings))
	m := c.wal.mark()
	for _, ts := range tss {
		c.encBuf = encodeAdd(c.encBuf, ts)
		if err := c.wal.appendDeferred(c.encBuf); err != nil {
			c.wal.rollback(m) // none of the batch was applied
			return -1, c.noteWAL(err)
		}
	}
	if err := c.wal.sync(); err != nil {
		c.wal.rollback(m)
		return -1, c.noteWAL(err)
	}
	for _, ts := range tss {
		c.applyAdd(ts)
		c.encBuf = encodeAdd(c.encBuf, ts)
		c.shipAppend(c.encBuf)
	}
	return first, nil
}

// Delete tombstones a string: it stops participating in joins, queries
// and future snapshots. Deleting an unknown or already-deleted id is an
// error (and is never logged).
func (c *Corpus) Delete(sid token.StringID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("corpus: closed")
	}
	if c.degraded != nil {
		return c.degradedErr()
	}
	if int(sid) >= len(c.strings) || sid < 0 || !c.alive[sid] {
		return fmt.Errorf("corpus: delete of id %d: %w", sid, ErrNotFound)
	}
	m := c.wal.mark()
	c.encBuf = encodeDelete(c.encBuf, sid)
	if err := c.wal.append(c.encBuf); err != nil {
		c.wal.rollback(m)
		return c.noteWAL(err)
	}
	if err := c.applyDelete(sid); err != nil {
		return err
	}
	c.shipAppend(c.encBuf)
	return nil
}

// Sync forces any batched WAL appends to stable storage.
func (c *Corpus) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("corpus: closed")
	}
	if c.degraded != nil {
		return c.degradedErr()
	}
	return c.noteWAL(c.wal.sync())
}

// Degraded reports the degraded state: nil while healthy, otherwise an
// ErrDegraded-wrapped error naming the storage failure that sealed the
// write path. Read paths (View, Stats, Len, ...) are unaffected by
// degradation — they serve from memory.
func (c *Corpus) Degraded() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.degraded == nil {
		return nil
	}
	return c.degradedErr()
}

// Recover attempts to heal a degraded corpus by rotating to a fresh
// generation: the in-memory state — exactly the acknowledged mutations —
// is written as a new snapshot through new file descriptors, a fresh WAL
// is started, and only when the whole rotation (including the directory
// fsync) succeeds is the degraded flag cleared. Retrying the failed
// fsync on the old descriptors would be unsound (the kernel may have
// dropped the dirty pages and would report a hollow success), which is
// why healing always goes through a full rotation. On a healthy corpus
// Recover is a no-op.
func (c *Corpus) Recover() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return errors.New("corpus: closed")
	}
	if c.degraded == nil {
		return nil
	}
	return c.snapshotLocked()
}

// Snapshot persists the current state as a new generation: the snapshot
// file is written atomically, a fresh WAL is started, and subsequent
// appends go to the new generation. Older generations remain on disk
// until Compact.
func (c *Corpus) Snapshot() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

func (c *Corpus) snapshotLocked() error {
	if c.closed {
		return errors.New("corpus: closed")
	}
	// Flush batched appends so the snapshot captures them — unless the
	// writer is already sealed: the in-memory state holds exactly the
	// acknowledged mutations, and the rotation below persists it through
	// fresh descriptors, which is the only sound way to heal.
	if c.degraded == nil {
		if err := c.wal.sync(); err != nil {
			return c.noteWAL(err)
		}
	}
	gen := c.gen + 1
	tmp, err := c.writeSnapshotTemp(gen)
	if err != nil {
		return err
	}
	// The new generation's WAL is created BEFORE the snapshot is renamed
	// into place. The reverse order has an unrecoverable interleaving: a
	// visible snap-g whose wal-g could not be created (and whose removal
	// also failed) shadows every later append to wal-(g-1) — the next
	// Open loads snap-g and skips the older log, silently dropping
	// acknowledged records. With this order the failure artifacts are an
	// invisible temp file or an empty wal-g, and an orphan empty wal-g
	// replays as a no-op on top of a clean predecessor chain.
	w, err := newWALWriter(c.fs, walPath(c.dir, gen), 0, c.opt.SyncEvery, c.opt.DisableSync)
	if err != nil {
		c.fs.Remove(tmp)
		return err
	}
	if err := c.fs.Rename(tmp, snapPath(c.dir, gen)); err != nil {
		w.close()
		c.fs.Remove(tmp)
		c.fs.Remove(walPath(c.dir, gen)) // best-effort; harmless if it stays
		return err
	}
	old := c.wal
	c.wal = w
	c.gen = gen
	c.snapshots++
	c.dirty = false
	old.close()
	if err := c.syncDir(); err != nil {
		// The rename may not be durable: a crash now could resurface the
		// previous generation. The in-memory swap already happened, so
		// appends target the new WAL — seal the corpus until a later
		// rotation (Recover) fsyncs the directory successfully.
		c.degraded = fmt.Errorf("corpus: snapshot dir fsync failed: %w", err)
		return c.degradedErr()
	}
	c.degraded = nil
	return nil
}

// Compact snapshots and then removes older generations, retaining the
// newest prior *valid* generation as a corruption fallback: if the
// fresh snapshot ever fails its CRC, Open falls back to the retained
// one and replays the WAL chain from it, losing nothing. Snapshots that
// already failed their CRC at Open are never retained (keeping a
// known-corrupt file as the "fallback" would void the guarantee) and
// are removed here. Disk usage is bounded to two snapshots plus their
// logs (transiently more while a corrupt span is being healed).
func (c *Corpus) Compact() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.snapshotLocked(); err != nil {
		return err
	}
	// The fallback generation: newest prior snapshot not known corrupt.
	// With no valid prior snapshot the fallback is generation 0 — the
	// WAL-only full chain — so every log is retained until a valid prior
	// snapshot exists (the next Compact prunes them).
	snaps, err := listGens(c.fs, c.dir, snapPrefix, snapSuffix)
	if err != nil {
		return err
	}
	var keep uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		if g := snaps[i]; g < c.gen && !c.corruptSnaps[g] {
			keep = g
			break
		}
	}
	for _, g := range snaps {
		if g < keep || (g < c.gen && c.corruptSnaps[g]) {
			if err := c.fs.Remove(snapPath(c.dir, g)); err != nil {
				return err
			}
			delete(c.corruptSnaps, g)
		}
	}
	walGens, err := listGens(c.fs, c.dir, walPrefix, walSuffix)
	if err != nil {
		return err
	}
	for _, g := range walGens {
		if g < keep {
			if err := c.fs.Remove(walPath(c.dir, g)); err != nil {
				return err
			}
		}
	}
	return c.syncDir()
}

// Close flushes the WAL and releases the log file. The corpus must not
// be used afterwards.
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	err := c.wal.close()
	unlockDir(c.lock)
	c.lock = nil
	return err
}

// ReleaseLockForTest force-releases the advisory directory lock without
// flushing or closing anything, simulating the owning process dying (a
// real crash releases flock with the process, but an in-process
// crash-recovery test abandons the handle, which would otherwise keep
// the directory locked). For crash-recovery tests only — after calling
// it, the corpus must not be written again.
func (c *Corpus) ReleaseLockForTest() {
	c.mu.Lock()
	defer c.mu.Unlock()
	unlockDir(c.lock)
	c.lock = nil
}

// Len returns the total id space (including tombstones).
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.strings)
}

// Live returns the number of non-deleted strings.
func (c *Corpus) Live() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.live
}

// Tokenizer returns the tokenizer Add uses.
func (c *Corpus) Tokenizer() token.Tokenizer { return c.opt.Tokenizer }

// NoteJoin records one join served from the stored order (called by the
// batch joiner).
func (c *Corpus) NoteJoin() { c.joinsServed.Add(1) }

// Stats snapshots the corpus counters.
func (c *Corpus) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := Stats{
		Strings:       len(c.strings),
		Live:          c.live,
		Tombstones:    len(c.strings) - c.live,
		Tokens:        len(c.tokens),
		Epoch:         c.epoch,
		OrderRebuilds: c.reranks,
		DriftedTokens: c.driftCount,
		Generation:    c.gen,
		WALReplayed:   c.walReplayed,
		Snapshots:     c.snapshots,
		Dirty:         c.dirty,
		Degraded:      c.degraded != nil,
		JoinsServed:   c.joinsServed.Load(),
	}
	if c.wal != nil {
		st.WALRecords = c.wal.records
		st.WALBytes = c.wal.bytes
	}
	return st
}

// View is a consistent point-in-time read view of the corpus: the token
// space as a token.Corpus, the alive mask, the frozen order and the
// rank-sorted member lists it stamps, and the inverted postings. Later
// Adds, Deletes and re-ranks never disturb a captured view (order-bearing
// state is replaced copy-on-write; everything else is append-only), so
// long-running joins read it lock-free.
type View struct {
	TC    *token.Corpus
	Alive []bool
	Live  int
	// Rank, Ranked are the epoch-stamped order: Rank maps token -> frozen
	// rarest-first rank; Ranked[s] is s's distinct tokens sorted by it
	// (nil for tombstones added before the capture's epoch re-ranks).
	Rank   []int32
	Ranked [][]token.TokenID
	// Postings maps token -> StringIDs; entries may reference tombstoned
	// or post-capture ids, so readers must filter by the Alive mask (and
	// bound ids to its length).
	Postings [][]token.StringID
	Epoch    uint64
}

// View captures a read view.
func (c *Corpus) View() *View {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := len(c.strings)
	nt := len(c.tokens)
	alive := append([]bool(nil), c.alive...)
	freq := append([]int32(nil), c.freq...)
	posts := make([][]token.StringID, nt)
	copy(posts, c.postings)
	ranked := make([][]token.TokenID, n)
	copy(ranked, c.ranked)
	tc := token.NewCorpusView(
		c.strings[:n:n],
		c.tokens[:nt:nt],
		c.tokenRunes[:nt:nt],
		freq,
		c.lexMembers[:n:n],
	)
	return &View{
		TC:       tc,
		Alive:    alive,
		Live:     c.live,
		Rank:     c.rank,
		Ranked:   ranked,
		Postings: posts,
		Epoch:    c.epoch,
	}
}
