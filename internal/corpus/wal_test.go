package corpus

import (
	"os"
	"testing"

	"repro/internal/namegen"
	"repro/internal/token"
)

// walFileSize returns the current size of the generation-g log.
func walFileSize(t *testing.T, dir string, gen uint64) int64 {
	t.Helper()
	fi, err := os.Stat(walPath(dir, gen))
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// corrupt flips one byte at offset in the generation-g log.
func corrupt(t *testing.T, dir string, gen uint64, offset int64) {
	t.Helper()
	f, err := os.OpenFile(walPath(dir, gen), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], offset); err != nil {
		t.Fatal(err)
	}
}

// TestWALTruncatedTail: a frame cut mid-payload (a crash during the last
// write) is detected and ignored; every record before it survives, and
// the log keeps accepting appends afterwards.
func TestWALTruncatedTail(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 20, NumNames: 25})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	sizeBefore := walFileSize(t, dir, 0)
	c.Close()

	// Cut the last frame short by a few bytes.
	if err := os.Truncate(walPath(dir, 0), sizeBefore-3); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, Options{})
	if got := r.Stats().WALReplayed; got != int64(len(names)-1) {
		t.Fatalf("WALReplayed = %d, want %d (torn tail dropped)", got, len(names)-1)
	}
	if r.Len() != len(names)-1 {
		t.Fatalf("Len = %d, want %d", r.Len(), len(names)-1)
	}
	// The torn bytes were truncated away; new appends start cleanly.
	if _, err := r.Add("replacement name"); err != nil {
		t.Fatal(err)
	}
	want := logicalState(r)
	r.Close()
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if !statesEqual(logicalState(r2), want) {
		t.Fatal("post-recovery append did not survive a reopen")
	}
}

// TestWALCorruptTailCRC: a bit flip in the last frame's payload fails the
// CRC; the frame (and only that frame) is dropped.
func TestWALCorruptTailCRC(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 21, NumNames: 25})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	size := walFileSize(t, dir, 0)
	c.Close()

	corrupt(t, dir, 0, size-2) // inside the last frame's payload
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := r.Stats().WALReplayed; got != int64(len(names)-1) {
		t.Fatalf("WALReplayed = %d, want %d (corrupt tail dropped)", got, len(names)-1)
	}
	if r.Len() != len(names)-1 {
		t.Fatalf("Len = %d, want %d", r.Len(), len(names)-1)
	}
}

// TestWALCorruptMiddle: corruption in an interior frame ends the replay
// there — the prefix before it is recovered, nothing after it is
// half-applied, and the log is truncated back so later appends produce a
// consistent file.
func TestWALCorruptMiddle(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	var offsets []int64
	for _, n := range []string{"alpha one", "beta two", "gamma three", "delta four"} {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, walFileSize(t, dir, 0))
	}
	c.Close()

	// Flip a byte inside the third record's frame.
	corrupt(t, dir, 0, offsets[1]+9)
	r := mustOpen(t, dir, Options{})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (replay stops at first bad frame)", r.Len())
	}
	if got := walFileSize(t, dir, 0); got != offsets[1] {
		t.Fatalf("log not truncated to last good frame: %d, want %d", got, offsets[1])
	}
	if _, err := r.Add("epsilon five"); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2 := mustOpen(t, dir, Options{})
	defer r2.Close()
	if r2.Len() != 3 {
		t.Fatalf("post-recovery Len = %d, want 3", r2.Len())
	}
}

// TestWALBadHeaderFailsLoudly: a full-length header that is not ours is
// bit rot (or a foreign file), not a crash artifact — Open must error
// rather than silently discard and truncate every record behind it. A
// header cut short by a crash during log creation, by contrast, is a
// clean empty log.
func TestWALBadHeaderFailsLoudly(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 24, NumNames: 10})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	corrupt(t, dir, 0, 2) // inside the magic
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open must fail on a corrupt wal header")
	}

	// Crash-during-creation: header cut short, no records possible.
	dir2 := t.TempDir()
	c2 := mustOpen(t, dir2, Options{})
	c2.Close()
	if err := os.Truncate(walPath(dir2, 0), 3); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir2, Options{})
	defer r.Close()
	if r.Len() != 0 {
		t.Fatalf("Len = %d after truncated-header recovery", r.Len())
	}
	if _, err := r.Add("fresh start"); err != nil {
		t.Fatal(err)
	}
}

// TestWALRollback: frames appended after a mark are discarded by
// rollback — the mechanism that keeps a failed Add/batch from leaving
// unapplied records in the log (which a replay would resurrect, shifting
// every later id).
func TestWALRollback(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if _, err := c.Add("kept one"); err != nil {
		t.Fatal(err)
	}
	// Simulate the failure path by hand on the writer: append two frames,
	// roll them back, append a different one.
	m := c.wal.mark()
	if err := c.wal.appendDeferred(encodeAdd(nil, c.opt.Tokenizer("phantom a"))); err != nil {
		t.Fatal(err)
	}
	if err := c.wal.appendDeferred(encodeAdd(nil, c.opt.Tokenizer("phantom b"))); err != nil {
		t.Fatal(err)
	}
	c.wal.rollback(m)
	if _, err := c.Add("kept two"); err != nil {
		t.Fatal(err)
	}
	c.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (phantom frames must not replay)", r.Len())
	}
	if got := r.View().TC.Strings[1].Key(); got != "kept\x1ftwo" {
		t.Fatalf("id 1 = %q after rollback", got)
	}
}

// TestDecodeRecordBoundsCounts: a record whose token count exceeds the
// payload (corruption that passed the CRC) must fail decoding rather
// than size an allocation by the bogus count.
func TestDecodeRecordBoundsCounts(t *testing.T) {
	payload := []byte{opAdd, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // count ~2^49
	if _, err := decodeRecord(payload); err == nil {
		t.Fatal("absurd token count must fail decoding")
	}
}

// TestWALSyncBatching: SyncEvery > 1 defers fsync but Sync/Close force
// it; records written under batching all survive a reopen after Close.
func TestWALSyncBatching(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 22, NumNames: 17})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{SyncEvery: 8})
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	want := logicalState(c)
	c.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if !statesEqual(logicalState(r), want) {
		t.Fatal("batched-sync reopen differs")
	}
}

// TestWALBatchGroupCommit: AddTokenizedBatch assigns a dense id range and
// survives a reopen with one group-commit sync.
func TestWALBatchGroupCommit(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 23, NumNames: 40})
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{})
	if _, err := c.Add(names[0]); err != nil {
		t.Fatal(err)
	}
	tok := c.opt.Tokenizer
	batch := make([]token.TokenizedString, len(names)-1)
	for i, n := range names[1:] {
		batch[i] = tok(n)
	}
	first, err := c.AddTokenizedBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("batch first = %d, want 1", first)
	}
	want := logicalState(c)
	c.Close()
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if !statesEqual(logicalState(r), want) {
		t.Fatal("batch reopen differs")
	}
	if r.Len() != len(names) {
		t.Fatalf("Len = %d, want %d", r.Len(), len(names))
	}
}
