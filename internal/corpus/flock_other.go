//go:build !(linux || darwin || freebsd || netbsd || openbsd || dragonfly)

package corpus

import "os"

// lockDir is a no-op on platforms without flock(2) in the stdlib syscall
// package (windows, solaris, aix, ...); single-writer per -data directory
// remains by convention there.
func lockDir(dir string) (*os.File, error) { return nil, nil }

func unlockDir(f *os.File) {}
