package corpus

import (
	"testing"

	"repro/internal/namegen"
)

// benchNames generates the benchmark corpus once per size.
func benchNames(n int) []string {
	return namegen.Generate(namegen.Config{Seed: 99, NumNames: n})
}

// BenchmarkCorpusAdd measures the durable add path: WAL encode + append
// (fsync disabled so the disk does not dominate) + incremental index and
// order maintenance.
func BenchmarkCorpusAdd(b *testing.B) {
	names := benchNames(2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := Open(b.TempDir(), Options{DisableSync: true})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, n := range names {
			if _, err := c.Add(n); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(names)), "adds/op")
}

// BenchmarkSnapshotLoad measures Open on a fully snapshotted corpus (no
// WAL tail): decode + derived-state rebuild.
func BenchmarkSnapshotLoad(b *testing.B) {
	names := benchNames(2000)
	dir := b.TempDir()
	c, err := Open(dir, Options{DisableSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			b.Fatal(err)
		}
	}
	if err := c.Compact(); err != nil {
		b.Fatal(err)
	}
	c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{DisableSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != len(names) {
			b.Fatalf("Len = %d", r.Len())
		}
		b.StopTimer()
		r.Close()
		b.StartTimer()
	}
}

// BenchmarkWALReplay measures Open on a WAL-only corpus (no snapshot):
// frame decode + CRC + full state reconstruction, the worst-case
// recovery path.
func BenchmarkWALReplay(b *testing.B) {
	names := benchNames(2000)
	dir := b.TempDir()
	c, err := Open(dir, Options{DisableSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range names {
		if _, err := c.Add(n); err != nil {
			b.Fatal(err)
		}
	}
	c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := Open(dir, Options{DisableSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Len() != len(names) {
			b.Fatalf("Len = %d", r.Len())
		}
		b.StopTimer()
		r.Close()
		b.StartTimer()
	}
}
