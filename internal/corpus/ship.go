package corpus

import (
	"errors"

	"repro/internal/token"
)

// Replication ship log.
//
// The corpus is its own replication feed: every committed mutation —
// acknowledged to the caller after its WAL append — is also retained,
// in its WAL payload encoding, in a bounded in-memory ring so a
// primary-side shipper can stream it to followers. Offsets are logical
// sequence numbers (LSNs): the LSN of a corpus is the total number of
// mutations ever applied to it, adds plus deletes. Because string ids
// are dense and never reused and deletes only ever tombstone a live
// string, the LSN is derivable from logical state alone —
//
//	LSN = len(strings) + tombstones
//
// — which makes it stable across snapshots, compaction and restarts
// without any change to the on-disk formats: two corpora with equal
// logical state agree on their LSN by construction.
//
// The ring holds the tail of the committed record stream. A follower
// whose offset fell off the head (or a fresh follower with an empty
// directory) is served a bootstrap instead: BootstrapPayloads
// synthesizes a payload stream that replays — through the very same
// applier as streamed records — to the identical logical state AND
// the identical LSN (each tombstoned id contributes one add and one
// delete, exactly as it did historically on the primary).
//
// Records replayed from the WAL at Open are not buffered: the ring
// starts at the corpus's post-recovery LSN, so a follower that is
// behind a freshly restarted primary resyncs via bootstrap. That is
// the honest choice — buffering a replay of unbounded size would
// either blow memory or silently cover only part of the gap.

// defaultShipBuffer is the ship-log depth when Options.ShipBufferRecords
// is zero: deep enough to ride out brief follower stalls and transient
// network faults without forcing a full resync.
const defaultShipBuffer = 1024

// maxShipBytes bounds the ring's payload memory regardless of record
// count; oversized tails evict from the head like overlong ones.
const maxShipBytes = 8 << 20

// ErrShipBehind reports a ShipFrom offset older than the ship log's
// head: the records were evicted (or folded into a snapshot before this
// process started), so the follower must be bootstrapped.
var ErrShipBehind = errors.New("corpus: ship offset predates the ship log; follower needs a bootstrap")

// ErrShipAhead reports a ShipFrom offset beyond the committed LSN: the
// follower claims records this corpus never produced (a diverged
// follower, e.g. an old primary), and must be bootstrapped onto this
// corpus's history.
var ErrShipAhead = errors.New("corpus: ship offset is beyond the committed log; follower has diverged")

// shipLog is the bounded ring of committed payloads. Guarded by the
// corpus mutex (appends happen under the write lock the mutation
// already holds; readers take the read lock).
type shipLog struct {
	head       uint64 // LSN of entries[0]
	entries    [][]byte
	bytes      int
	maxRecords int
	// notify is closed and replaced whenever a record is appended, so
	// shippers can block on commit instead of polling.
	notify chan struct{}
}

func newShipLog(maxRecords int) *shipLog {
	if maxRecords <= 0 {
		maxRecords = defaultShipBuffer
	}
	return &shipLog{maxRecords: maxRecords, notify: make(chan struct{})}
}

// lsnLocked computes the logical sequence number; caller holds c.mu.
func (c *Corpus) lsnLocked() uint64 {
	tombstones := len(c.strings) - c.live
	return uint64(len(c.strings) + tombstones)
}

// LSN returns the corpus's logical sequence number: the total count of
// committed mutations (adds plus deletes) over its whole history.
func (c *Corpus) LSN() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.lsnLocked()
}

// shipAppend retains one committed payload in the ship ring (copying it
// — callers reuse their encode buffers) and wakes blocked shippers.
// Caller holds c.mu and has already applied the mutation, so the ring's
// tail LSN is the current lsnLocked(). No-op before Open completes
// (WAL replay must not be buffered).
func (c *Corpus) shipAppend(payload []byte) {
	s := c.ship
	if s == nil {
		return
	}
	s.entries = append(s.entries, append([]byte(nil), payload...))
	s.bytes += len(payload)
	for len(s.entries) > s.maxRecords || s.bytes > maxShipBytes {
		s.bytes -= len(s.entries[0])
		s.entries[0] = nil
		s.entries = s.entries[1:]
		s.head++
	}
	close(s.notify)
	s.notify = make(chan struct{})
}

// ShipNotify returns a channel that is closed when the next mutation
// commits. Shippers that drained ShipFrom grab the channel, re-check
// the LSN, and block on it instead of polling.
func (c *Corpus) ShipNotify() <-chan struct{} {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ship.notify
}

// ShipFrom reads committed payloads starting at LSN from, up to
// maxRecords records and (approximately) maxBytes payload bytes; at
// least one record is returned when any is available regardless of the
// byte budget. An empty result with a nil error means the follower is
// caught up. ErrShipBehind / ErrShipAhead mean the offset cannot be
// served incrementally and the follower needs a bootstrap. The returned
// slices are shared with the ring and must not be modified.
func (c *Corpus) ShipFrom(from uint64, maxRecords, maxBytes int) ([][]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s := c.ship
	lsn := c.lsnLocked()
	if from > lsn {
		return nil, ErrShipAhead
	}
	if from == lsn {
		return nil, nil
	}
	if from < s.head {
		return nil, ErrShipBehind
	}
	if maxRecords <= 0 {
		maxRecords = defaultShipBuffer
	}
	out := make([][]byte, 0, maxRecords)
	bytes := 0
	for i := int(from - s.head); i < len(s.entries) && len(out) < maxRecords; i++ {
		if len(out) > 0 && maxBytes > 0 && bytes+len(s.entries[i]) > maxBytes {
			break
		}
		out = append(out, s.entries[i])
		bytes += len(s.entries[i])
	}
	return out, nil
}

// Record is one decoded replication payload: an add carrying the
// tokenized form, or a delete carrying the StringID to tombstone.
type Record struct {
	Delete bool
	Tokens []string       // add records
	SID    token.StringID // delete records
}

// DecodeRecord parses a shipped payload (the WAL record encoding).
// Standby appliers use it to route a payload to the matching mutation;
// an error means corruption and the batch must be rejected.
func DecodeRecord(payload []byte) (Record, error) {
	rec, err := decodeRecord(payload)
	if err != nil {
		return Record{}, err
	}
	return Record{Delete: rec.op == opDelete, Tokens: rec.tokens, SID: rec.sid}, nil
}

// BootstrapPayloads synthesizes a full-state record stream: applied in
// order to an empty corpus, it reproduces this corpus's logical state
// and — because every tombstoned id contributes one add and one delete,
// exactly as it did historically — its exact LSN, which is returned.
// Tombstones are emitted as an empty-string add immediately followed by
// its delete (tombstone content is not retained, and logical state does
// not include it).
func (c *Corpus) BootstrapPayloads() ([][]byte, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tombstones := len(c.strings) - c.live
	out := make([][]byte, 0, len(c.strings)+tombstones)
	var buf []byte
	for sid := range c.strings {
		if c.alive[sid] {
			buf = encodeAdd(buf, c.strings[sid])
			out = append(out, append([]byte(nil), buf...))
			continue
		}
		buf = encodeAdd(buf, token.TokenizedString{})
		out = append(out, append([]byte(nil), buf...))
		buf = encodeDelete(buf, token.StringID(sid))
		out = append(out, append([]byte(nil), buf...))
	}
	return out, c.lsnLocked()
}
