package corpus

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/iofault"
	"repro/internal/token"
)

// Snapshot format (version 1). All integers little-endian; varints are
// unsigned LEB128 (encoding/binary Uvarint). The whole file is covered by
// a trailing CRC-32C, so a half-written snapshot is never loaded — Open
// falls back to the previous generation.
//
//	magic   "TSJSNAP1"                      8 bytes
//	version uint32                          = 1
//	gen     uint64                          generation number (matches file name)
//	epoch   uint64                          frequency-order epoch
//	reranks uint64                          lifetime order-rebuild count
//	tokens  varint count, then per token:   varint len, bytes   (TokenID order)
//	rank    per token: varint               frozen rarest-first rank
//	frozen  per token: varint               document frequency at the last re-rank
//	strings varint count, then per string:
//	        flag byte (1 = alive, 0 = tombstone)
//	        if alive: varint tokenCount, then tokenCount × varint TokenID
//	        (the multiset in TokenizedString order; tombstones store nothing)
//	crc32c  uint32 over everything above
//
// Derived state — distinct-member lists, rank-sorted member lists, the
// inverted postings, live frequencies — is rebuilt at load time from the
// logical state above. It is cheap (one linear pass) and rebuilding it
// keeps the on-disk format small and free of redundancy that could
// disagree with itself.

const (
	snapMagic   = "TSJSNAP1"
	snapVersion = 1
)

// snapPrefix/walPrefix name generation files: snap-%016x.tsj pairs with
// wal-%016x.log. A snapshot at generation g is the state with every record
// of wal generations < g applied; wal-g holds mutations since.
const (
	snapPrefix = "snap-"
	snapSuffix = ".tsj"
	walPrefix  = "wal-"
	walSuffix  = ".log"
	// lockFileName is the advisory-flock target guarding the directory
	// against a second concurrent process (see lockDir).
	lockFileName = "LOCK"
)

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, gen, snapSuffix))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", walPrefix, gen, walSuffix))
}

// parseGen extracts the generation from a snapshot or wal file name, or
// ok = false for unrelated files.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 16, 64)
	return g, err == nil
}

// listGens returns the generations present in dir for the given
// prefix/suffix, ascending.
func listGens(fs iofault.FS, dir, prefix, suffix string) ([]uint64, error) {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range ents {
		if g, ok := parseGen(e.Name(), prefix, suffix); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// crcWriter hashes everything written through it.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, castagnoli, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) uvarint(v uint64) error {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	_, err := cw.Write(b[:n])
	return err
}

func (cw *crcWriter) u32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

func (cw *crcWriter) u64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := cw.Write(b[:])
	return err
}

// writeSnapshotTemp serializes the corpus state (caller holds the
// corpus lock) into a fully fsynced, closed temp file and returns its
// path. The caller renames it into place: keeping the rename out of
// this function lets snapshotLocked order it against the new
// generation's WAL creation so that no failure interleaving can leave
// an orphan snapshot shadowing later appends to the old generation. On
// error the temp file is removed (best-effort; an unrenamed temp is
// invisible to Open and swept by removeStaleTemp at the next start).
func (c *Corpus) writeSnapshotTemp(gen uint64) (path string, err error) {
	tmp, err := c.fs.CreateTemp(c.dir, "snap-*.tmp")
	if err != nil {
		return "", err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			c.fs.Remove(tmp.Name())
		}
	}()

	cw := &crcWriter{w: bufio.NewWriterSize(tmp, 1<<20)}
	if _, err = io.WriteString(cw, snapMagic); err != nil {
		return "", err
	}
	if err = cw.u32(snapVersion); err != nil {
		return "", err
	}
	for _, v := range []uint64{gen, c.epoch, uint64(c.reranks)} {
		if err = cw.u64(v); err != nil {
			return "", err
		}
	}
	if err = cw.uvarint(uint64(len(c.tokens))); err != nil {
		return "", err
	}
	for _, t := range c.tokens {
		if err = cw.uvarint(uint64(len(t))); err != nil {
			return "", err
		}
		if _, err = io.WriteString(cw, t); err != nil {
			return "", err
		}
	}
	for _, r := range c.rank {
		if err = cw.uvarint(uint64(r)); err != nil {
			return "", err
		}
	}
	for _, f := range c.frozenFreq {
		if err = cw.uvarint(uint64(f)); err != nil {
			return "", err
		}
	}
	if err = cw.uvarint(uint64(len(c.strings))); err != nil {
		return "", err
	}
	idBuf := make([]token.TokenID, 0, 16)
	for sid := range c.strings {
		if !c.alive[sid] {
			if _, err = cw.Write([]byte{0}); err != nil {
				return "", err
			}
			continue
		}
		if _, err = cw.Write([]byte{1}); err != nil {
			return "", err
		}
		ts := &c.strings[sid]
		idBuf = c.multisetIDs(ts, sid, idBuf[:0])
		if err = cw.uvarint(uint64(len(idBuf))); err != nil {
			return "", err
		}
		for _, tid := range idBuf {
			if err = cw.uvarint(uint64(tid)); err != nil {
				return "", err
			}
		}
	}
	crc := cw.crc
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	if _, err = cw.w.Write(tail[:]); err != nil {
		return "", err
	}
	if err = cw.w.Flush(); err != nil {
		return "", err
	}
	if !c.opt.DisableSync {
		if err = tmp.Sync(); err != nil {
			return "", err
		}
	}
	if err = tmp.Close(); err != nil {
		return "", err
	}
	return tmp.Name(), nil
}

// multisetIDs maps a string's token multiset (sorted, with duplicates)
// onto TokenIDs using the distinct member list: tokens and the distinct
// token space are both lexicographically ordered within the string, so
// the distinct index advances exactly when the token changes.
func (c *Corpus) multisetIDs(ts *token.TokenizedString, sid int, buf []token.TokenID) []token.TokenID {
	mem := c.lexMembers[sid]
	di := 0
	for i, t := range ts.Tokens {
		if i > 0 && t != ts.Tokens[i-1] {
			di++
		}
		buf = append(buf, mem[di])
	}
	return buf
}

// syncDir fsyncs the data directory so renames and creations are durable.
func (c *Corpus) syncDir() error {
	if c.opt.DisableSync {
		return nil
	}
	return c.fs.SyncDir(c.dir)
}

// snapState is the decoded logical content of a snapshot file.
type snapState struct {
	gen     uint64
	epoch   uint64
	reranks int64
	tokens  []string
	rank    []int32
	frozen  []int32
	// strs[i] is nil for tombstones, else the multiset of TokenIDs.
	strs  [][]token.TokenID
	alive []bool
}

// readSnapshot loads and CRC-verifies one snapshot file.
func readSnapshot(fs iofault.FS, path string) (*snapState, error) {
	raw, err := fs.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < len(snapMagic)+4+3*8+4 || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("corpus: bad snapshot header")
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, errors.New("corpus: snapshot crc mismatch")
	}
	p := body[len(snapMagic):]
	if v := binary.LittleEndian.Uint32(p); v != snapVersion {
		return nil, fmt.Errorf("corpus: unsupported snapshot version %d", v)
	}
	p = p[4:]
	st := &snapState{}
	st.gen = binary.LittleEndian.Uint64(p)
	st.epoch = binary.LittleEndian.Uint64(p[8:])
	st.reranks = int64(binary.LittleEndian.Uint64(p[16:]))
	p = p[24:]

	uv := func() (uint64, error) {
		v, k := binary.Uvarint(p)
		if k <= 0 {
			return 0, errors.New("corpus: truncated snapshot varint")
		}
		p = p[k:]
		return v, nil
	}

	// Counts are bounded by the remaining bytes (every element costs at
	// least one byte) before they size an allocation: a corrupt count
	// that slipped past the CRC must fail decoding, not abort the
	// process with an absurd make().
	nTok, err := uv()
	if err != nil {
		return nil, err
	}
	if nTok > uint64(len(p)) {
		return nil, errors.New("corpus: snapshot token count exceeds payload")
	}
	st.tokens = make([]string, nTok)
	for i := range st.tokens {
		l, err := uv()
		if err != nil {
			return nil, err
		}
		if uint64(len(p)) < l {
			return nil, errors.New("corpus: truncated snapshot token")
		}
		st.tokens[i] = string(p[:l])
		p = p[l:]
	}
	st.rank = make([]int32, nTok)
	for i := range st.rank {
		v, err := uv()
		if err != nil {
			return nil, err
		}
		st.rank[i] = int32(v)
	}
	st.frozen = make([]int32, nTok)
	for i := range st.frozen {
		v, err := uv()
		if err != nil {
			return nil, err
		}
		st.frozen[i] = int32(v)
	}
	nStr, err := uv()
	if err != nil {
		return nil, err
	}
	if nStr > uint64(len(p)) {
		return nil, errors.New("corpus: snapshot string count exceeds payload")
	}
	st.strs = make([][]token.TokenID, nStr)
	st.alive = make([]bool, nStr)
	for i := range st.strs {
		if len(p) == 0 {
			return nil, errors.New("corpus: truncated snapshot string")
		}
		flag := p[0]
		p = p[1:]
		if flag == 0 {
			continue
		}
		st.alive[i] = true
		cnt, err := uv()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(len(p)) {
			return nil, errors.New("corpus: snapshot member count exceeds payload")
		}
		ids := make([]token.TokenID, cnt)
		for j := range ids {
			v, err := uv()
			if err != nil {
				return nil, err
			}
			if v >= nTok {
				return nil, errors.New("corpus: snapshot token id out of range")
			}
			ids[j] = token.TokenID(v)
		}
		st.strs[i] = ids
	}
	if len(p) != 0 {
		return nil, errors.New("corpus: trailing bytes in snapshot")
	}
	return st, nil
}
