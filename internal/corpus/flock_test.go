//go:build linux || darwin || freebsd || netbsd || openbsd || dragonfly

package corpus

import (
	"strings"
	"testing"
)

// TestDirLocking: a second Open of the same data directory fails loudly
// while the first holds it, and succeeds again once the owner closes —
// including when the first owner exited through an error-free Close after
// real writes.
func TestDirLocking(t *testing.T) {
	dir := t.TempDir()
	c1 := mustOpen(t, dir, Options{DisableSync: true})
	if _, err := c1.Add("alpha beta"); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(dir, Options{DisableSync: true}); err == nil {
		t.Fatal("second Open of a locked data dir succeeded")
	} else if !strings.Contains(err.Error(), "locked") {
		t.Fatalf("second Open failed with an unrelated error: %v", err)
	}

	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}
	c2 := mustOpen(t, dir, Options{DisableSync: true})
	if c2.Live() != 1 {
		t.Fatalf("reopened corpus lost data: live=%d", c2.Live())
	}
	// Double Close stays idempotent with the lock release in the path.
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDirLockingFailedOpenReleases: an Open that fails after taking the
// lock (here: a broken WAL chain) releases it, so a later valid Open is
// not wedged.
func TestDirLockingFailedOpenReleases(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir, Options{DisableSync: true})
	if _, err := c.Add("alpha beta"); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the WAL header so Open fails loudly.
	corrupt(t, dir, 0, 2)
	if _, err := Open(dir, Options{DisableSync: true}); err == nil {
		t.Fatal("Open over a corrupt WAL header succeeded")
	}
	// The failed Open must not leave the directory locked.
	if _, err := lockDir(dir); err != nil {
		t.Fatalf("lock still held after failed Open: %v", err)
	}
}
