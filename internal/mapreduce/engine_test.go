package mapreduce

import (
	"sort"
	"strings"
	"testing"
)

func TestWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog",
		"the quick dog",
	}
	type count struct {
		word string
		n    int
	}
	out, st := Run(Config{Name: "wordcount"}, docs,
		func(doc string, ctx *MapCtx[string, int]) {
			for _, w := range strings.Fields(doc) {
				ctx.Emit(w, 1)
			}
		},
		func(word string, ones []int, ctx *ReduceCtx[count]) {
			ctx.Emit(count{word, len(ones)})
		},
	)
	got := make(map[string]int)
	for _, c := range out {
		got[c.word] = c.n
	}
	want := map[string]int{"the": 3, "quick": 2, "brown": 1, "fox": 1, "lazy": 1, "dog": 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for w, n := range want {
		if got[w] != n {
			t.Errorf("count[%q] = %d, want %d", w, got[w], n)
		}
	}
	if st.MapRecordsIn != 3 {
		t.Errorf("MapRecordsIn = %d, want 3", st.MapRecordsIn)
	}
	if st.MapRecordsOut != 10 {
		t.Errorf("MapRecordsOut = %d, want 10", st.MapRecordsOut)
	}
	if st.ReduceKeys != 6 {
		t.Errorf("ReduceKeys = %d, want 6", st.ReduceKeys)
	}
	if st.OutRecords != 6 {
		t.Errorf("OutRecords = %d, want 6", st.OutRecords)
	}
}

func TestEmptyInput(t *testing.T) {
	out, st := Run(Config{}, nil,
		func(x int, ctx *MapCtx[int, int]) { ctx.Emit(x, x) },
		func(k int, vs []int, ctx *ReduceCtx[int]) { ctx.Emit(k) },
	)
	if len(out) != 0 || st.MapRecordsIn != 0 || st.ReduceKeys != 0 {
		t.Fatalf("empty input produced %v, %+v", out, st)
	}
}

func TestDeterministicAcrossParallelism(t *testing.T) {
	input := make([]int, 1000)
	for i := range input {
		input[i] = i
	}
	run := func(par int) []int {
		out, _ := Run(Config{Parallelism: par, MapTasks: 7}, input,
			func(x int, ctx *MapCtx[int, int]) { ctx.Emit(x%13, x) },
			func(k int, vs []int, ctx *ReduceCtx[int]) {
				sum := 0
				for _, v := range vs {
					sum += v
				}
				ctx.Emit(sum)
			},
		)
		sort.Ints(out)
		return out
	}
	a, b := run(1), run(8)
	if len(a) != len(b) {
		t.Fatalf("different sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestCostAccounting(t *testing.T) {
	input := []int{1, 2, 3, 4}
	_, st := Run(Config{MapTasks: 2}, input,
		func(x int, ctx *MapCtx[string, int]) {
			ctx.Emit("k", x)
			ctx.AddCost(10)
		},
		func(k string, vs []int, ctx *ReduceCtx[int]) {
			ctx.AddCost(100)
			ctx.Emit(len(vs))
		},
	)
	// Map: per record 1 (input) + 1 (emit) + 10 (AddCost) = 12; 4 records.
	if st.MapWork != 48 {
		t.Errorf("MapWork = %v, want 48", st.MapWork)
	}
	// Reduce: single key: 4 values + 1 output + 100 = 105.
	if st.ReduceWork != 105 {
		t.Errorf("ReduceWork = %v, want 105", st.ReduceWork)
	}
	if len(st.MapTaskCosts) != 2 {
		t.Errorf("MapTaskCosts = %v, want 2 splits", st.MapTaskCosts)
	}
	if st.MaxReduceTask() != 105 {
		t.Errorf("MaxReduceTask = %v, want 105", st.MaxReduceTask())
	}
}

func TestSplitRanges(t *testing.T) {
	cases := []struct {
		n, k int
		want [][2]int
	}{
		{0, 4, nil},
		{3, 1, [][2]int{{0, 3}}},
		{5, 2, [][2]int{{0, 3}, {3, 5}}},
		{4, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
	}
	for _, c := range cases {
		got := splitRanges(c.n, c.k)
		if len(got) != len(c.want) {
			t.Errorf("splitRanges(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("splitRanges(%d,%d)[%d] = %v, want %v", c.n, c.k, i, got[i], c.want[i])
			}
		}
	}
}
