package mapreduce

import (
	"container/heap"
	"sort"
)

// Cluster models the paper's evaluation substrate: a shared-nothing
// MapReduce deployment with a configurable machine count (the paper sweeps
// 100–1,000 machines of 0.5 CPU / 1 GB each). Given the measured task costs
// of a job pipeline it computes a deterministic simulated wall-clock via
// Longest-Processing-Time-first scheduling, the textbook 4/3-approximation
// for makespan on identical machines.
//
// The model reproduces the two effects the paper's scalability figures
// hinge on:
//
//   - fixed per-job overhead (scheduling, worker instantiation) that does
//     not shrink with machines — the reason speedup saturates at 3.8x for
//     10x machines in Fig. 1;
//   - task skew (a handful of hot reduce keys) that caps the reduce phase
//     at the largest single task — the load-imbalance contrast between the
//     two dedup strategies of Sec. III-G.3 and between TSJ and HMJ.
type Cluster struct {
	// Machines is the number of simulated workers available to every
	// phase (the paper uses equal mapper and reducer counts).
	Machines int
	// PerJobOverheadSec is charged once per MapReduce job.
	PerJobOverheadSec float64
	// MapSecPerUnit converts map work units to seconds.
	MapSecPerUnit float64
	// ReduceSecPerUnit converts reduce work units to seconds.
	ReduceSecPerUnit float64
	// ShuffleSecPerRecord models the network/sort cost per shuffled
	// record; the shuffle bandwidth scales with machines.
	ShuffleSecPerRecord float64
	// TaskStartupSec is charged per scheduled task (map split or reduce
	// key); the paper attributes the grouping-on-one-string advantage to
	// exactly this term ("the overhead of instantiating MapReduce
	// workers"), which makes millions of tiny pair-keyed reduce tasks
	// (grouping-on-both-strings) more expensive than fewer, larger
	// string-keyed ones. 1 ms reflects the paper's heavyweight workers on
	// 0.5-CPU machines.
	TaskStartupSec float64
}

// DefaultCluster mirrors the paper's setup: modest per-machine throughput
// (0.5 CPU) and non-trivial job scheduling overheads.
func DefaultCluster(machines int) Cluster {
	return Cluster{
		Machines:            machines,
		PerJobOverheadSec:   30,
		MapSecPerUnit:       20e-6,
		ReduceSecPerUnit:    20e-6,
		ShuffleSecPerRecord: 5e-6,
		TaskStartupSec:      1e-3,
	}
}

// JobSeconds returns the simulated wall-clock of one job on the cluster.
func (c Cluster) JobSeconds(s *Stats) float64 {
	m := c.Machines
	if m < 1 {
		m = 1
	}
	mapSecs := make([]float64, len(s.MapTaskCosts))
	for i, w := range s.MapTaskCosts {
		mapSecs[i] = w*c.MapSecPerUnit + c.TaskStartupSec
	}
	redSecs := make([]float64, len(s.ReduceTaskCosts))
	for i, w := range s.ReduceTaskCosts {
		redSecs[i] = w*c.ReduceSecPerUnit + c.TaskStartupSec
	}
	shuffle := float64(s.ShuffleRecords) * c.ShuffleSecPerRecord / float64(m)
	return c.PerJobOverheadSec + Makespan(mapSecs, m) + shuffle + Makespan(redSecs, m)
}

// PipelineSeconds returns the simulated wall-clock of a sequential job
// pipeline (MapReduce jobs in a pipeline are serialized on materialized
// intermediate data, as in the paper's implementation).
func (c Cluster) PipelineSeconds(p *Pipeline) float64 {
	var t float64
	for _, j := range p.Jobs {
		t += c.JobSeconds(j)
	}
	return t
}

// machineHeap is a min-heap over machine loads for LPT scheduling.
type machineHeap []float64

func (h machineHeap) Len() int            { return len(h) }
func (h machineHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h machineHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *machineHeap) Push(x interface{}) { *h = append(*h, x.(float64)) }
func (h *machineHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Makespan schedules task durations onto m identical machines with the
// Longest-Processing-Time-first greedy rule and returns the finishing time
// of the busiest machine. It is deterministic for a given task multiset.
func Makespan(tasks []float64, m int) float64 {
	if len(tasks) == 0 {
		return 0
	}
	if m <= 1 {
		var sum float64
		for _, t := range tasks {
			sum += t
		}
		return sum
	}
	sorted := append([]float64(nil), tasks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if m >= len(sorted) {
		return sorted[0]
	}
	h := make(machineHeap, m)
	heap.Init(&h)
	for _, t := range sorted {
		h[0] += t
		heap.Fix(&h, 0)
	}
	max := h[0]
	for _, l := range h {
		if l > max {
			max = l
		}
	}
	return max
}
