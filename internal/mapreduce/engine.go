// Package mapreduce is the paper's Sec. III-A substrate: an in-process
// MapReduce engine with the map/shuffle/reduce contract
//
//	map    : <key1, value1>   -> [<key2, value2>]
//	reduce : <key2, [value2]> -> [value3]
//
// executed by goroutine worker pools, plus a simulated-cluster cost model
// (cluster.go) that converts per-task work measurements into the wall-clock
// a shared-nothing cluster of m machines would need. The engine is the
// execution layer for MassJoin, the TSJ pipeline and the HMJ baseline.
//
// The paper ran on 1,000 physical machines; we cannot. Every job therefore
// records fine-grained task costs (map work per split, reduce work per key,
// records shuffled), and the Cluster model schedules those tasks onto m
// simulated machines. See DESIGN.md §3 for the substitution argument.
package mapreduce

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Config controls one MapReduce job execution.
type Config struct {
	// Name identifies the job in stats output.
	Name string
	// MapTasks is the number of input splits (paper: mappers). Defaults
	// to 4*GOMAXPROCS, mimicking many small splits on a real cluster.
	MapTasks int
	// Parallelism caps concurrently running worker goroutines. Defaults
	// to GOMAXPROCS.
	Parallelism int
}

func (c Config) withDefaults(inputLen int) Config {
	if c.MapTasks <= 0 {
		c.MapTasks = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MapTasks > inputLen {
		c.MapTasks = inputLen
	}
	if c.MapTasks == 0 {
		c.MapTasks = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	return c
}

// MapCtx is handed to map functions: Emit produces an intermediate
// <key2, value2> record; AddCost charges extra work units beyond the
// default per-record accounting (used by CPU-heavy mappers such as HMJ's
// centroid assignment).
type MapCtx[K comparable, V any] struct {
	emit func(K, V)
	cost float64
}

// Emit outputs an intermediate key/value pair.
func (c *MapCtx[K, V]) Emit(k K, v V) { c.emit(k, v) }

// AddCost charges additional work units to the current map task.
func (c *MapCtx[K, V]) AddCost(units float64) { c.cost += units }

// ReduceCtx is handed to reduce functions: Emit produces an output record;
// AddCost charges extra work units to the current key's task (used by
// verification reducers whose cost is dominated by distance computations,
// not record counts).
type ReduceCtx[O any] struct {
	emit func(O)
	cost float64
}

// Emit outputs a final record.
func (c *ReduceCtx[O]) Emit(o O) { c.emit(o) }

// AddCost charges additional work units to the current reduce task.
func (c *ReduceCtx[O]) AddCost(units float64) { c.cost += units }

// Mapper transforms one input record into intermediate key/value pairs.
type Mapper[I any, K comparable, V any] func(item I, ctx *MapCtx[K, V])

// Reducer folds all values that share a key into output records.
type Reducer[K comparable, V any, O any] func(key K, values []V, ctx *ReduceCtx[O])

// Run executes one MapReduce job over the input and returns the outputs
// (in unspecified order) together with the job's task-cost statistics.
//
// Default cost accounting mirrors the dominant terms on a real cluster:
// each map task is charged 1 unit per input record plus 1 per emitted
// record; each reduce key is charged 1 unit per grouped value plus 1 per
// emitted output. AddCost layers algorithm-specific work on top.
func Run[I any, K comparable, V any, O any](
	cfg Config,
	input []I,
	mapFn Mapper[I, K, V],
	reduceFn Reducer[K, V, O],
) ([]O, *Stats) {
	cfg = cfg.withDefaults(len(input))
	st := &Stats{Name: cfg.Name}
	start := time.Now()
	defer func() {
		st.WallTime = time.Since(start)
		st.ReduceWall = st.WallTime - st.MapWall
	}()

	// ---- Map phase ------------------------------------------------------
	type kv struct {
		k K
		v V
	}
	splits := splitRanges(len(input), cfg.MapTasks)
	mapOut := make([][]kv, len(splits))
	mapCosts := make([]float64, len(splits))

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallelism)
	for si, sp := range splits {
		wg.Add(1)
		go func(si int, lo, hi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var buf []kv
			ctx := &MapCtx[K, V]{}
			cost := 0.0
			for i := lo; i < hi; i++ {
				ctx.cost = 0
				ctx.emit = func(k K, v V) { buf = append(buf, kv{k, v}) }
				before := len(buf)
				mapFn(input[i], ctx)
				cost += 1 + float64(len(buf)-before) + ctx.cost
			}
			mapOut[si] = buf
			mapCosts[si] = cost
		}(si, sp[0], sp[1])
	}
	wg.Wait()

	st.MapTaskCosts = mapCosts
	st.MapRecordsIn = int64(len(input))
	for _, b := range mapOut {
		st.MapRecordsOut += int64(len(b))
	}
	st.ShuffleRecords = st.MapRecordsOut

	// ---- Shuffle: group by key ------------------------------------------
	groups := make(map[K][]V)
	for _, b := range mapOut {
		for _, p := range b {
			groups[p.k] = append(groups[p.k], p.v)
		}
	}
	// Release map output early.
	mapOut = nil
	st.ReduceKeys = int64(len(groups))
	// The map-side wall covers mapping plus the shuffle grouping — the
	// record-stream handling; what remains of the job is reduce compute.
	st.MapWall = time.Since(start)

	// ---- Reduce phase ----------------------------------------------------
	// Keys are processed by a worker pool; outputs and per-key costs are
	// collected per worker and concatenated afterwards.
	type keyGroup struct {
		k  K
		vs []V
	}
	kgs := make([]keyGroup, 0, len(groups))
	for k, vs := range groups {
		kgs = append(kgs, keyGroup{k, vs})
	}
	groups = nil

	nw := cfg.Parallelism
	outs := make([][]O, nw)
	costs := make([][]float64, nw)
	var next int64
	var mu sync.Mutex
	takeBatch := func(n int) (int, int) {
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= len(kgs) {
			return 0, 0
		}
		hi := lo + n
		if hi > len(kgs) {
			hi = len(kgs)
		}
		next = int64(hi)
		return lo, hi
	}
	wg = sync.WaitGroup{}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := &ReduceCtx[O]{}
			for {
				lo, hi := takeBatch(64)
				if lo == hi {
					return
				}
				for i := lo; i < hi; i++ {
					ctx.cost = 0
					n0 := len(outs[w])
					ctx.emit = func(o O) { outs[w] = append(outs[w], o) }
					reduceFn(kgs[i].k, kgs[i].vs, ctx)
					c := float64(len(kgs[i].vs)) + float64(len(outs[w])-n0) + ctx.cost
					costs[w] = append(costs[w], c)
				}
			}
		}(w)
	}
	wg.Wait()

	var result []O
	for w := 0; w < nw; w++ {
		result = append(result, outs[w]...)
		st.ReduceTaskCosts = append(st.ReduceTaskCosts, costs[w]...)
		for _, c := range costs[w] {
			st.ReduceWork += c
		}
	}
	st.OutRecords = int64(len(result))
	for _, c := range mapCosts {
		st.MapWork += c
	}
	// Deterministic stats regardless of scheduling.
	sort.Float64s(st.ReduceTaskCosts)
	return result, st
}

// splitRanges partitions [0, n) into at most k contiguous ranges of
// near-equal size.
func splitRanges(n, k int) [][2]int {
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	if n == 0 {
		return nil
	}
	out := make([][2]int, 0, k)
	base, rem := n/k, n%k
	lo := 0
	for i := 0; i < k; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, [2]int{lo, lo + size})
		lo += size
	}
	return out
}
