package mapreduce

import (
	"math"
	"testing"
)

func TestMakespanBasics(t *testing.T) {
	if got := Makespan(nil, 10); got != 0 {
		t.Errorf("empty makespan = %v", got)
	}
	if got := Makespan([]float64{3, 1, 2}, 1); got != 6 {
		t.Errorf("single machine = %v, want 6", got)
	}
	// More machines than tasks: bounded by the largest task.
	if got := Makespan([]float64{3, 1, 2}, 10); got != 3 {
		t.Errorf("over-provisioned = %v, want 3", got)
	}
	// LPT on {5,4,3,3,3} with 2 machines: 5+3 vs 4+3+... LPT: m1=5, m2=4,
	// m2=4+3=7, m1=5+3=8, m2=7+3=10 -> wait: after 5,4: loads 5,4; next 3 ->
	// machine with 4 (7); next 3 -> machine with 5 (8); next 3 -> machine
	// with 7 (10). Makespan 10? Optimal is 9 (5+4 vs 3+3+3). LPT gives 9:
	// tasks sorted 5,4,3,3,3: m1=5, m2=4, m2=7, m1=8, m2=10? No: third 3
	// goes to min load which is m1(8) vs m2(7): m2 -> 10. Hmm LPT yields 10
	// here; verify against the implementation rather than optimal.
	got := Makespan([]float64{3, 3, 5, 4, 3}, 2)
	if got != 9 && got != 10 {
		t.Errorf("LPT makespan = %v, want 9 or 10", got)
	}
	// Lower bounds always hold.
	tasks := []float64{5, 4, 3, 3, 3}
	sum := 18.0
	for _, m := range []int{1, 2, 3, 4} {
		ms := Makespan(tasks, m)
		if ms < sum/float64(m)-1e-9 {
			t.Errorf("makespan %v below perfect-parallelism bound %v (m=%d)", ms, sum/float64(m), m)
		}
		if ms < 5 {
			t.Errorf("makespan %v below straggler bound 5 (m=%d)", ms, m)
		}
	}
}

func TestMakespanMonotoneInMachines(t *testing.T) {
	tasks := make([]float64, 500)
	for i := range tasks {
		tasks[i] = float64(1 + i%17)
	}
	prev := math.Inf(1)
	for _, m := range []int{1, 2, 4, 8, 100, 1000} {
		ms := Makespan(tasks, m)
		if ms > prev+1e-9 {
			t.Fatalf("makespan increased with more machines: %v -> %v at m=%d", prev, ms, m)
		}
		prev = ms
	}
}

func TestJobSecondsSpeedupSaturates(t *testing.T) {
	// A job with many small reduce tasks and some fixed overhead must show
	// sublinear speedup, the Fig. 1 phenomenon.
	st := &Stats{
		Name:           "j",
		ShuffleRecords: 1_000_000,
	}
	for i := 0; i < 200; i++ {
		st.MapTaskCosts = append(st.MapTaskCosts, 500_000)
	}
	for i := 0; i < 100_000; i++ {
		st.ReduceTaskCosts = append(st.ReduceTaskCosts, float64(100+i%200))
	}
	c100 := DefaultCluster(100)
	c1000 := DefaultCluster(1000)
	t100 := c100.JobSeconds(st)
	t1000 := c1000.JobSeconds(st)
	if t1000 >= t100 {
		t.Fatalf("more machines must not be slower: %v vs %v", t100, t1000)
	}
	speedup := t100 / t1000
	if speedup >= 10 {
		t.Fatalf("speedup %v must be sublinear due to per-job overhead", speedup)
	}
	if speedup < 1.2 {
		t.Fatalf("speedup %v suspiciously flat", speedup)
	}
}

func TestPipelineSecondsAdds(t *testing.T) {
	a := &Stats{MapTaskCosts: []float64{100}, ReduceTaskCosts: []float64{50}}
	b := &Stats{MapTaskCosts: []float64{200}, ReduceTaskCosts: []float64{25}}
	var p Pipeline
	p.Add(a)
	p.Add(b)
	c := DefaultCluster(10)
	if got, want := c.PipelineSeconds(&p), c.JobSeconds(a)+c.JobSeconds(b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("pipeline = %v, want %v", got, want)
	}
	if p.TotalWork() != 375 {
		t.Fatalf("TotalWork = %v, want 375", p.TotalWork())
	}
}

func TestSkewDominatesMakespan(t *testing.T) {
	// One huge task among many small ones: adding machines cannot beat the
	// straggler — the HMJ load-imbalance story.
	tasks := []float64{10_000}
	for i := 0; i < 1000; i++ {
		tasks = append(tasks, 1)
	}
	if got := Makespan(tasks, 1000); got < 10_000 {
		t.Fatalf("straggler bound violated: %v", got)
	}
}
