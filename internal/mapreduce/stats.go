package mapreduce

import (
	"fmt"
	"strings"
	"time"
)

// Stats captures the per-task work measurements of one MapReduce job.
// Work is measured in abstract units (≈ records touched, plus any
// AddCost charges); the Cluster model converts units into simulated
// seconds.
type Stats struct {
	Name string

	MapRecordsIn   int64
	MapRecordsOut  int64
	ShuffleRecords int64
	ReduceKeys     int64
	OutRecords     int64

	// MapTaskCosts has one entry per input split.
	MapTaskCosts []float64
	// ReduceTaskCosts has one entry per reduce key (sorted ascending).
	// Keys are the paper's scheduling granularity: "the grouping-on-one-
	// string mechanism instantiates a worker for each string".
	ReduceTaskCosts []float64

	MapWork    float64
	ReduceWork float64

	// WallTime is the real in-process duration of the job (not the
	// simulated-cluster time), measured by Run. MapWall covers the map
	// phase plus the shuffle grouping (the record-stream handling);
	// ReduceWall is the remainder — the reduce-function compute.
	WallTime   time.Duration
	MapWall    time.Duration
	ReduceWall time.Duration
}

// TotalWork returns all work units charged to the job. When the aggregate
// fields were not populated (hand-built Stats), it falls back to summing
// the task-cost arrays.
func (s *Stats) TotalWork() float64 {
	if s.MapWork != 0 || s.ReduceWork != 0 {
		return s.MapWork + s.ReduceWork
	}
	var w float64
	for _, c := range s.MapTaskCosts {
		w += c
	}
	for _, c := range s.ReduceTaskCosts {
		w += c
	}
	return w
}

// MaxReduceTask returns the largest single reduce-key cost — the straggler
// lower bound for the reduce phase.
func (s *Stats) MaxReduceTask() float64 {
	if len(s.ReduceTaskCosts) == 0 {
		return 0
	}
	return s.ReduceTaskCosts[len(s.ReduceTaskCosts)-1]
}

// String formats a one-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf("%s: in=%d shuffled=%d keys=%d out=%d work=%.0f(map %.0f/reduce %.0f) maxkey=%.0f",
		s.Name, s.MapRecordsIn, s.ShuffleRecords, s.ReduceKeys, s.OutRecords,
		s.TotalWork(), s.MapWork, s.ReduceWork, s.MaxReduceTask())
}

// Pipeline accumulates the Stats of a multi-job pipeline, in job order.
type Pipeline struct {
	Jobs []*Stats
}

// Add appends a job's stats.
func (p *Pipeline) Add(s *Stats) { p.Jobs = append(p.Jobs, s) }

// Merge appends all jobs of another pipeline.
func (p *Pipeline) Merge(o *Pipeline) { p.Jobs = append(p.Jobs, o.Jobs...) }

// TotalWork sums work units across all jobs.
func (p *Pipeline) TotalWork() float64 {
	var w float64
	for _, j := range p.Jobs {
		w += j.TotalWork()
	}
	return w
}

// WallTimeOf sums the wall time of the jobs whose name contains substr
// (e.g. "dedup-verify" isolates the TSJ dedup+verify job).
func (p *Pipeline) WallTimeOf(substr string) time.Duration {
	var d time.Duration
	for _, j := range p.Jobs {
		if strings.Contains(j.Name, substr) {
			d += j.WallTime
		}
	}
	return d
}

// MapWallOf / ReduceWallOf are WallTimeOf restricted to one phase: the
// TSJ verify stage, for example, is ReduceWallOf("dedup-verify") — the
// reduce compute of the fused dedup+filter+verify job — while the
// candidate stream's cost is the generation jobs plus
// MapWallOf("dedup-verify"), the dedup shuffle.
func (p *Pipeline) MapWallOf(substr string) time.Duration {
	var d time.Duration
	for _, j := range p.Jobs {
		if strings.Contains(j.Name, substr) {
			d += j.MapWall
		}
	}
	return d
}

func (p *Pipeline) ReduceWallOf(substr string) time.Duration {
	var d time.Duration
	for _, j := range p.Jobs {
		if strings.Contains(j.Name, substr) {
			d += j.ReduceWall
		}
	}
	return d
}

// TotalShuffled sums shuffled records across all jobs.
func (p *Pipeline) TotalShuffled() int64 {
	var n int64
	for _, j := range p.Jobs {
		n += j.ShuffleRecords
	}
	return n
}
