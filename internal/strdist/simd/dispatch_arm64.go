//go:build arm64 && !nosimd

package simd

// Available reports whether the batched kernels run vectorized. NEON
// (ASIMD) is architectural on arm64 — every core Go targets has it —
// so no runtime detection is needed.
func Available() bool { return true }

//go:noescape
func levBatchNEON(a *uint16, la int, b *uint16, lb int, caps *uint16, row *uint16, out *uint16)

func levBatch(a []uint16, la int, b []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	levBatchNEON(&a[0], la, &b[0], lb, &caps[0], &row[0], &out[0])
}

// The banded kernel has no NEON port yet; the portable kernel still
// wins over the full sweep for band << lb by touching a fraction of
// the cells, and produces the same bytes by construction.
func levBandedBatch(a []uint16, la int, b []uint16, lb int, band int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	levBandedBatchGeneric(a, la, b, lb, band, caps, row, out)
}
