package simd

// u16Inf is the out-of-band sentinel of the banded kernel — the same
// value strdist.LevenshteinBoundedScratchU16 uses, chosen so a cell can
// grow past it by the token length without wrapping uint16.
const u16Inf = 1 << 15

// levBatchGeneric is the portable reference kernel: the exact
// lane-for-lane computation of the assembly kernels, including the
// all-lanes row-minima abort and the caps[l]+1 clamp, so the assembly
// and every fallback configuration produce identical bytes. It is the
// dispatch target on architectures without an assembly kernel and
// under -tags nosimd, and the oracle the equivalence tests and fuzzers
// compare against. Both sides are lane-major: a[i*Width+l] is rune i
// of lane l's probe token, b[j*Width+l] rune j of its candidate.
func levBatchGeneric(a []uint16, la int, b []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	// row[j*Width+l] = D[i-1][j] for lane l.
	for j := 0; j <= lb; j++ {
		v := satU16(j)
		for l := 0; l < Width; l++ {
			row[j*Width+l] = v
		}
	}
	var prev, left, rowMin [Width]uint16
	for i := 1; i <= la; i++ {
		iv := satU16(i)
		for l := 0; l < Width; l++ {
			prev[l] = row[l] // D[i-1][0]
			row[l] = iv      // D[i][0]
			left[l] = iv
			rowMin[l] = iv
		}
		for j := 1; j <= lb; j++ {
			for l := 0; l < Width; l++ {
				cur := row[j*Width+l] // D[i-1][j]
				var cost uint16 = 1
				if b[(j-1)*Width+l] == a[(i-1)*Width+l] {
					cost = 0
				}
				best := addSat(prev[l], cost)
				if d := addSat(cur, 1); d < best {
					best = d
				}
				if d := addSat(left[l], 1); d < best {
					best = d
				}
				row[j*Width+l] = best
				if best < rowMin[l] {
					rowMin[l] = best
				}
				prev[l] = cur
				left[l] = best
			}
		}
		if allLanesDead(&rowMin, caps) {
			for l := 0; l < Width; l++ {
				out[l] = addSat(caps[l], 1)
			}
			return
		}
	}
	for l := 0; l < Width; l++ {
		d := row[lb*Width+l]
		if c1 := addSat(caps[l], 1); d > c1 {
			d = c1
		}
		out[l] = d
	}
}

// levBandedBatchGeneric is the portable banded kernel: per row i only
// the band lo..hi (|i-j| <= band) is computed, with the out-of-band
// boundary discipline of strdist.LevenshteinBoundedScratchU16 — cells
// beyond column band initialize to u16Inf, the cell left of the band
// start is overwritten with the sentinel once it falls out of band,
// and the stale cell at the band's right edge is the previous row's
// sentinel by construction. See LevBandedBatch for the contract and
// its preconditions (band >= caps[l], |la-lb| <= band per lane).
func levBandedBatchGeneric(a []uint16, la int, b []uint16, lb int, band int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	for j := 0; j <= lb; j++ {
		v := uint16(u16Inf)
		if j <= band {
			v = satU16(j)
		}
		for l := 0; l < Width; l++ {
			row[j*Width+l] = v
		}
	}
	var prev, left, rowMin [Width]uint16
	for i := 1; i <= la; i++ {
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > lb {
			hi = lb
		}
		// prev holds D[i-1][lo-1] (always valid: column lo-1 was inside
		// row i-1's band, or is its column 0). The boundary cell left of
		// the band start is column 0 (a real value, i) while |i-0| is
		// still within the band, the u16Inf sentinel once it has moved
		// past — i > band, NOT lo > 1: at i == band+1 the band still
		// starts at column 1 but column 0 has just fallen out of it.
		if i > band {
			base := (lo - 1) * Width
			for l := 0; l < Width; l++ {
				prev[l] = row[base+l]
				row[base+l] = u16Inf
				left[l] = u16Inf
				rowMin[l] = u16Inf
			}
		} else {
			iv := satU16(i)
			for l := 0; l < Width; l++ {
				prev[l] = row[l] // D[i-1][0] = i-1
				row[l] = iv
				left[l] = iv
				rowMin[l] = u16Inf
			}
		}
		for j := lo; j <= hi; j++ {
			for l := 0; l < Width; l++ {
				cur := row[j*Width+l] // D[i-1][j]; u16Inf beyond row i-1's band
				var cost uint16 = 1
				if b[(j-1)*Width+l] == a[(i-1)*Width+l] {
					cost = 0
				}
				best := addSat(prev[l], cost)
				if d := addSat(cur, 1); d < best {
					best = d
				}
				if d := addSat(left[l], 1); d < best {
					best = d
				}
				row[j*Width+l] = best
				if best < rowMin[l] {
					rowMin[l] = best
				}
				prev[l] = cur
				left[l] = best
			}
		}
		if allLanesDead(&rowMin, caps) {
			for l := 0; l < Width; l++ {
				out[l] = addSat(caps[l], 1)
			}
			return
		}
	}
	for l := 0; l < Width; l++ {
		d := row[lb*Width+l]
		if c1 := addSat(caps[l], 1); d > c1 {
			d = c1
		}
		out[l] = d
	}
}

// allLanesDead reports whether every lane's row minimum exceeds its
// cap — the abort condition both kernels share.
func allLanesDead(rowMin, caps *[Width]uint16) bool {
	for l := 0; l < Width; l++ {
		if rowMin[l] <= caps[l] {
			return false
		}
	}
	return true
}

// addSat is the saturating uint16 addition the vector kernels perform
// with VPADDUSW; under the documented preconditions saturation is
// unreachable, so architectures whose assembly uses plain adds (NEON)
// stay bit-identical.
func addSat(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	if s > 0xFFFF {
		return 0xFFFF
	}
	return uint16(s)
}

// satU16 narrows a non-negative int with uint16 saturation.
func satU16(v int) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}
