package simd

// levBatch16Generic is the portable reference kernel: the exact
// lane-for-lane computation of the AVX2 kernel, including the
// all-lanes row-minima abort and the caps[l]+1 clamp, so the assembly
// and every fallback configuration produce identical bytes. It is the
// dispatch target on non-amd64 architectures and under -tags nosimd,
// and the oracle the equivalence tests and fuzzers compare against.
func levBatch16Generic(probe []uint16, cand []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	la := len(probe)
	// row[j*Width+l] = D[i-1][j] for lane l.
	for j := 0; j <= lb; j++ {
		v := satU16(j)
		for l := 0; l < Width; l++ {
			row[j*Width+l] = v
		}
	}
	var prev, left, rowMin [Width]uint16
	for i := 1; i <= la; i++ {
		ai := probe[i-1]
		iv := satU16(i)
		for l := 0; l < Width; l++ {
			prev[l] = row[l] // D[i-1][0]
			row[l] = iv      // D[i][0]
			left[l] = iv
			rowMin[l] = iv
		}
		for j := 1; j <= lb; j++ {
			for l := 0; l < Width; l++ {
				cur := row[j*Width+l] // D[i-1][j]
				var cost uint16 = 1
				if cand[(j-1)*Width+l] == ai {
					cost = 0
				}
				best := addSat(prev[l], cost)
				if d := addSat(cur, 1); d < best {
					best = d
				}
				if d := addSat(left[l], 1); d < best {
					best = d
				}
				row[j*Width+l] = best
				if best < rowMin[l] {
					rowMin[l] = best
				}
				prev[l] = cur
				left[l] = best
			}
		}
		allDead := true
		for l := 0; l < Width; l++ {
			if rowMin[l] <= caps[l] {
				allDead = false
				break
			}
		}
		if allDead {
			for l := 0; l < Width; l++ {
				out[l] = addSat(caps[l], 1)
			}
			return
		}
	}
	for l := 0; l < Width; l++ {
		d := row[lb*Width+l]
		if c1 := addSat(caps[l], 1); d > c1 {
			d = c1
		}
		out[l] = d
	}
}

// addSat is the saturating uint16 addition the vector kernel performs
// with VPADDUSW.
func addSat(a, b uint16) uint16 {
	s := uint32(a) + uint32(b)
	if s > 0xFFFF {
		return 0xFFFF
	}
	return uint16(s)
}

// satU16 narrows a non-negative int with uint16 saturation.
func satU16(v int) uint16 {
	if v > 0xFFFF {
		return 0xFFFF
	}
	return uint16(v)
}
