//go:build !arm64

package simd

// Width is the number of DP lanes one kernel invocation sweeps: 16
// uint16 lanes of one 256-bit AVX2 register on amd64, and the same
// shape for the portable kernels so every amd64 build (simd or nosimd)
// batches identically.
const Width = 16
