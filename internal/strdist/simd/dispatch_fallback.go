//go:build (!amd64 && !arm64) || nosimd

package simd

// Available reports whether the batched kernels run vectorized: never
// in this configuration (no assembly kernel for the architecture, or
// an explicit -tags nosimd build). The portable kernels below are
// bit-identical to the assembly, so callers may still batch — it is a
// throughput question, not a correctness one — but routing heuristics
// that only pay off vectorized should consult this.
func Available() bool { return false }

func levBatch(a []uint16, la int, b []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	levBatchGeneric(a, la, b, lb, caps, row, out)
}

func levBandedBatch(a []uint16, la int, b []uint16, lb int, band int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	levBandedBatchGeneric(a, la, b, lb, band, caps, row, out)
}
