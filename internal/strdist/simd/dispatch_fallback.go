//go:build !amd64 || nosimd

package simd

// Available reports whether the vectorized batch kernel is live. This
// build (non-amd64, or -tags nosimd) always runs the portable kernel.
func Available() bool { return false }

func levBatch16(probe []uint16, cand []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	levBatch16Generic(probe, cand, lb, caps, row, out)
}
