//go:build arm64 && !nosimd

#include "textflag.h"

// levBatchNEON is the arm64 port of levBatchAVX2: 8 independent
// Levenshtein dynamic programs in the uint16 lanes of one 128-bit NEON
// register, both sides lane-major (a[i*8+l] = rune i of lane l's probe
// token, b[j*8+l] = rune j of its candidate), all lanes sharing the
// rune lengths (la, lb). Same recurrence, same all-lanes row-minima
// abort, same min(LD, cap+1) clamp — bit-identical to levBatchGeneric
// at Width 8 (TestSIMDEquivalenceKernel runs on this path under qemu,
// see TestNEONKernelLive).
//
// Two translation notes versus the AVX2 kernel:
//
//   - Adds are plain VADD, not saturating: under the documented
//     preconditions (la+lb < 32768, caps < 1<<15-1, token runes
//     BMP-narrowed) no DP cell exceeds la+lb < 32768 and caps+1 never
//     wraps, so saturation is unreachable and plain adds are
//     bit-identical (addSat in generic.go documents the same argument).
//   - The substitution cost and the lane-death test use only
//     commutative identities: cost = (eqmask == 0) & 1 via a second
//     VCMEQ against zero (no AND-NOT on this assembler), and lane
//     alive iff umax(rowMin, caps) == caps (no unsigned-greater
//     compare), with the 128-bit alive mask collapsed through the two
//     64-bit halves (no horizontal-min instruction).
//
// Register map:
//
//	V1  probe runes, row i          V10 i (row number, broadcast)
//	V2  prev = D[i-1][j-1]          V12 caps
//	V3  left = D[i][j-1]            V13 caps+1
//	V4  row minimum                 V14 ones (each lane = 1)
//	V5  cur  = D[i-1][j]            V15 zero
//	V6  candidate runes, column j
//	V7  cost / best scratch         V8, V9 del / ins scratch
//
//	R0 a (advances 16 bytes/row)    R7  row cell pointer
//	R1 la (counts down)             R8  column counter
//	R2 b                            R9  candidate rune pointer
//	R3 lb                           R10, R11 abort-mask halves
//	R5 row base    R6 out
//
// func levBatchNEON(a *uint16, la int, b *uint16, lb int, caps *uint16, row *uint16, out *uint16)
TEXT ·levBatchNEON(SB), NOSPLIT, $0-56
	MOVD a+0(FP), R0
	MOVD la+8(FP), R1
	MOVD b+16(FP), R2
	MOVD lb+24(FP), R3
	MOVD caps+32(FP), R4
	MOVD row+40(FP), R5
	MOVD out+48(FP), R6

	VMOVI $0, V15.B16
	VLD1  (R4), [V12.H8]
	VCMEQ V14.H8, V14.H8, V14.H8
	VUSHR $15, V14.H8, V14.H8   // each lane = 1
	VADD  V14.H8, V12.H8, V13.H8 // caps+1

	// row[j] = broadcast(j) for j = 0..lb.
	VMOVI $0, V0.B16
	MOVD  R5, R7
	ADD   $1, R3, R8            // lb+1 cells

initrow:
	VST1.P [V0.H8], 16(R7)
	VADD   V14.H8, V0.H8, V0.H8
	SUB    $1, R8, R8
	CBNZ   R8, initrow

	VMOVI $0, V10.B16           // i (incremented at loop head)

rowloop:
	VLD1.P 16(R0), [V1.H8]      // probe runes, lane-major row i

	VLD1 (R5), [V2.H8]          // prev = D[i-1][0]
	VADD V14.H8, V10.H8, V10.H8 // i
	VST1 [V10.H8], (R5)         // D[i][0] = i
	VMOV V10.B16, V3.B16        // left
	VMOV V10.B16, V4.B16        // rowMin (column 0 participates)

	MOVD R2, R9                 // candidate runes, column 1
	MOVD R5, R7                 // cell pointer: D[.][j] at 16(R7)
	MOVD R3, R8

colloop:
	ADD    $16, R7, R7
	VLD1   (R7), [V5.H8]        // cur = D[i-1][j]
	VLD1.P 16(R9), [V6.H8]
	VCMEQ  V6.H8, V1.H8, V7.H8  // 0xFFFF where runes equal
	VCMEQ  V7.H8, V15.H8, V7.H8 // 0xFFFF where runes differ
	VAND   V7.B16, V14.B16, V7.B16 // cost = 1 - equal
	VADD   V7.H8, V2.H8, V7.H8  // sub = prev + cost
	VADD   V14.H8, V5.H8, V8.H8 // del = cur + 1
	VADD   V14.H8, V3.H8, V9.H8 // ins = left + 1
	VUMIN  V8.H8, V7.H8, V7.H8
	VUMIN  V9.H8, V7.H8, V7.H8  // best
	VST1   [V7.H8], (R7)
	VUMIN  V7.H8, V4.H8, V4.H8
	VMOV   V5.B16, V2.B16       // prev = cur
	VMOV   V7.B16, V3.B16       // left = best
	SUB    $1, R8, R8
	CBNZ   R8, colloop

	// All lanes dead? alive iff umax(rowMin, caps) == caps.
	VUMAX V4.H8, V12.H8, V7.H8
	VCMEQ V7.H8, V12.H8, V7.H8  // 0xFFFF iff lane alive
	VMOV  V7.D[0], R10
	VMOV  V7.D[1], R11
	ORR   R11, R10, R10
	CBZ   R10, abort

	SUB  $1, R1, R1
	CBNZ R1, rowloop

	// out = min(D[la][lb], caps+1)
	LSL  $4, R3, R8
	ADD  R8, R5, R7
	VLD1 (R7), [V0.H8]
	VUMIN V13.H8, V0.H8, V0.H8
	VST1 [V0.H8], (R6)
	RET

abort:
	VST1 [V13.H8], (R6)
	RET
