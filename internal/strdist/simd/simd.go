// Package simd provides vectorized batched inner loops for the banded
// Levenshtein verification stage. One kernel invocation sweeps Width
// independent dynamic programs — Width (probe token, candidate token)
// PAIRS whose sides all share the rune lengths (la, lb) — through
// uint16 DP rows laid out lane-major, the layout the uint16 scratch
// rows of internal/strdist were shaped for. Both sides are lane-major
// (a[i*Width+l] is rune i of lane l's probe-side token), so the lanes
// of one invocation are free to mix tokens from different probes:
// that is what lets internal/core pool surviving cells across
// candidates AND probes until a full lane group accumulates.
//
// Two kernels share the layout:
//
//   - LevBatch sweeps the full la x lb matrix per lane — the right
//     shape when the per-lane cap is of the same order as the token
//     lengths, where the band would cover most of the matrix anyway.
//   - LevBandedBatch sweeps only the 2*band+1 diagonal band per row,
//     with the out-of-band sentinel discipline of
//     strdist.LevenshteinBoundedScratchU16; under a tight cap
//     (band << lb) it touches a small fraction of the cells and makes
//     tight thresholds profitable on the vector path too.
//
// Per architecture: amd64 runs AVX2 assembly for both kernels (16
// lanes), selected at init via CPUID feature detection; arm64 runs a
// NEON LevBatch (8 lanes) with the banded variant on the portable
// kernel; every other configuration — other architectures, or any
// build with `-tags nosimd` — runs the portable generic kernels, which
// are bit-identical by construction and property-tested against both
// the assembly and the scalar DP (TestSIMDEquivalenceKernel,
// TestSIMDEquivalenceBandedKernel, FuzzLevenshteinSIMDEquivalence).
package simd

// LevBatch computes, for every lane l in [0, Width),
//
//	out[l] = min(LD(a lane l, b lane l), caps[l]+1)
//
// where a and b are lane-major transposed rune matrices of Width
// probe-side tokens of rune length la and Width candidate-side tokens
// of rune length lb (a[i*Width+l] is rune i of lane l's probe token,
// b[j*Width+l] rune j of its candidate token). A result
// out[l] <= caps[l] is the exact Levenshtein distance; out[l] ==
// caps[l]+1 means only LD > caps[l] (the kernel may abort a row early
// once every lane's row minimum exceeds its cap — the same row-minima
// lower bound the scalar banded DP aborts on).
//
// row is caller-owned scratch, grown as needed and retained across
// calls so steady-state invocations allocate nothing.
//
// Preconditions (the caller enforces them; internal/core routes
// violating cells to the scalar DP): la >= 1, lb >= 1, every rune
// narrowed injectively from the BMP, la+lb < 32768 and every cap below
// 1<<15-1 so no DP cell or cap+1 saturates uint16 arithmetic. Unused
// lanes may carry arbitrary rune data — lanes are fully independent
// except for the all-lanes abort — but their caps must still sit below
// 1<<15-1; out values in unused lanes are unspecified. (The abort can
// only fire once EVERY lane's row minimum exceeds its cap, so a stale
// lane can delay it, never force it while an occupied lane is alive;
// occupied lanes receive min(LD, cap+1) regardless.)
func LevBatch(a []uint16, la int, b []uint16, lb int, caps *[Width]uint16, row *[]uint16, out *[Width]uint16) {
	growKernelRow(row, lb)
	levBatch(a, la, b, lb, caps, *row, out)
}

// LevBandedBatch is LevBatch computing only the diagonal band
// |i-j| <= band of each lane's DP matrix, with cells outside the band
// pinned to the u16Inf sentinel exactly like
// strdist.LevenshteinBoundedScratchU16. The banded sweep overestimates
// any distance that exceeds band and is exact for distances within it,
// so under the additional preconditions
//
//	band >= 1, caps[l] <= band and |la-lb| <= band for every lane
//
// the output contract is identical to LevBatch: out[l] =
// min(LD, caps[l]+1) bit for bit (any edit path of cost <= caps[l] <=
// band stays within the band, so in-band values are exact wherever the
// verdict can depend on them). Per row it touches at most 2*band+1
// cells per lane instead of lb, which is what makes tight budgets
// (band << lb) profitable on the vector path.
func LevBandedBatch(a []uint16, la int, b []uint16, lb int, band int, caps *[Width]uint16, row *[]uint16, out *[Width]uint16) {
	growKernelRow(row, lb)
	levBandedBatch(a, la, b, lb, band, caps, *row, out)
}

// growKernelRow sizes the shared DP scratch to Width*(lb+1) cells.
func growKernelRow(row *[]uint16, lb int) {
	need := Width * (lb + 1)
	if cap(*row) < need {
		c := cap(*row) * 2
		if c < need {
			c = need
		}
		*row = make([]uint16, need, c)
	}
	*row = (*row)[:need]
}
