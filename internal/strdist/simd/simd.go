// Package simd provides vectorized batched inner loops for the banded
// Levenshtein verification stage. One kernel invocation sweeps Width
// independent dynamic programs — the same probe token against Width
// candidate tokens of equal length — through uint16 DP rows laid out
// lane-major, the layout the uint16 scratch rows of internal/strdist
// were shaped for.
//
// The AVX2 kernel (lev_amd64.s) is selected at init via CPUID feature
// detection and gated behind `amd64 && !nosimd` build tags; every other
// configuration — other architectures, or any build with `-tags nosimd`
// — runs the portable generic kernel, which is bit-identical by
// construction and property-tested against both the assembly and the
// scalar DP (TestSIMDEquivalenceKernel, FuzzLevenshteinSIMDEquivalence).
package simd

// Width is the number of DP lanes one kernel invocation sweeps: 16
// uint16 lanes of one 256-bit vector register.
const Width = 16

// LevBatch16 computes, for every lane l in [0, Width),
//
//	out[l] = min(LD(probe, cand lane l), caps[l]+1)
//
// where cand is the lane-major transposed rune matrix of Width candidate
// tokens that all have rune length lb (cand[j*Width+l] is rune j of lane
// l) and probe is one token's runes narrowed to uint16. A result
// out[l] <= caps[l] is the exact Levenshtein distance; out[l] ==
// caps[l]+1 means only LD > caps[l] (the kernel may abort a row early
// once every lane's row minimum exceeds its cap — the same row-minima
// lower bound the scalar banded DP aborts on).
//
// row is caller-owned scratch, grown as needed and retained across
// calls so steady-state invocations allocate nothing.
//
// Preconditions (the caller enforces them; internal/core routes
// violating cells to the scalar DP): len(probe) >= 1, lb >= 1, every
// rune of probe and cand below 0x10000 and narrowed injectively, and
// len(probe)+lb < 32768 so no DP cell saturates uint16 arithmetic.
// Unused lanes must be padded by replicating an occupied lane (runes
// and cap) so the all-lanes abort sees only real data.
func LevBatch16(probe []uint16, cand []uint16, lb int, caps *[Width]uint16, row *[]uint16, out *[Width]uint16) {
	need := Width * (lb + 1)
	if cap(*row) < need {
		c := cap(*row) * 2
		if c < need {
			c = need
		}
		*row = make([]uint16, need, c)
	}
	*row = (*row)[:need]
	levBatch16(probe, cand, lb, caps, *row, out)
}
