//go:build arm64

package simd

// Width is the number of DP lanes one kernel invocation sweeps: 8
// uint16 lanes of one 128-bit NEON register. The portable kernels use
// the same lane count so -tags nosimd batches identically on arm64.
const Width = 8
