package simd

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/strdist"
)

// randToken draws a token of exactly n runes from a small alphabet so
// rune collisions (and therefore interesting DP structure) are common.
func randToken(rng *rand.Rand, n int, alphabet []rune) []rune {
	r := make([]rune, n)
	for i := range r {
		r[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return r
}

// lanePair is one (probe token, candidate token, cap) triple occupying
// a kernel lane.
type lanePair struct {
	probe, cand []rune
	cap         int
}

// buildPairLanes transposes pairs (probes of rune length la, candidates
// of rune length lb) into the two lane-major kernel blocks, replicating
// the last pair into unused lanes, and returns the caps vector. Lanes
// carry distinct probes — the cross-probe shape the pair layout exists
// for.
func buildPairLanes(pairs []lanePair, la, lb int) (a, b []uint16, capv [Width]uint16) {
	a = make([]uint16, la*Width)
	b = make([]uint16, lb*Width)
	for l := 0; l < Width; l++ {
		src := l
		if src >= len(pairs) {
			src = len(pairs) - 1
		}
		for i := 0; i < la; i++ {
			a[i*Width+l] = uint16(pairs[src].probe[i])
		}
		for j := 0; j < lb; j++ {
			b[j*Width+l] = uint16(pairs[src].cand[j])
		}
		capv[l] = uint16(pairs[src].cap)
	}
	return a, b, capv
}

// expect is the scalar contract: min(LD, cap+1).
func expect(probe, cand []rune, cap int) int {
	d := strdist.LevenshteinRunes(probe, cand)
	if d > cap {
		return cap + 1
	}
	return d
}

func growTestRow(row *[]uint16, lb int) []uint16 {
	need := Width * (lb + 1)
	if cap(*row) < need {
		*row = make([]uint16, need)
	}
	*row = (*row)[:need]
	return *row
}

// randPairs draws nc lane pairs with per-lane distinct probes of rune
// length la and candidates of length lb.
func randPairs(rng *rand.Rand, nc, la, lb, maxCap int, alphabet []rune) []lanePair {
	pairs := make([]lanePair, nc)
	for c := range pairs {
		pairs[c] = lanePair{
			probe: randToken(rng, la, alphabet),
			cand:  randToken(rng, lb, alphabet),
			cap:   rng.Intn(maxCap),
		}
	}
	return pairs
}

// TestSIMDEquivalenceKernel drives the dispatched full kernel (the
// assembly when available, the portable kernel otherwise) and the
// generic reference across random lane groups — every lane its own
// (probe, candidate) pair — and asserts both agree with the scalar DP
// on every lane. This is the family the CI equivalence guard requires
// to run un-skipped.
func TestSIMDEquivalenceKernel(t *testing.T) {
	t.Logf("assembly kernel available: %v (width %d)", Available(), Width)
	rng := rand.New(rand.NewSource(42))
	alphabet := []rune("abcdeé✓") // multi-byte but BMP runes included
	var row, row2 []uint16
	for iter := 0; iter < 2000; iter++ {
		la := 1 + rng.Intn(16)
		lb := 1 + rng.Intn(16)
		nc := 1 + rng.Intn(Width)
		pairs := randPairs(rng, nc, la, lb, 20, alphabet)
		a, b, capv := buildPairLanes(pairs, la, lb)
		var out, out2 [Width]uint16
		LevBatch(a, la, b, lb, &capv, &row, &out)
		levBatchGeneric(a, la, b, lb, &capv, growTestRow(&row2, lb), &out2)
		for l := 0; l < nc; l++ {
			want := expect(pairs[l].probe, pairs[l].cand, pairs[l].cap)
			if int(out[l]) != want {
				t.Fatalf("iter %d lane %d: dispatched kernel %d, want %d (cap %d, probe %q, cand %q)",
					iter, l, out[l], want, pairs[l].cap, string(pairs[l].probe), string(pairs[l].cand))
			}
			if out2[l] != out[l] {
				t.Fatalf("iter %d lane %d: generic %d != dispatched %d", iter, l, out2[l], out[l])
			}
		}
	}
}

// TestSIMDEquivalenceBandedKernel does the same for the banded kernel
// under its preconditions (caps <= band, |la-lb| <= band) and
// additionally asserts the banded output matches the full kernel's
// bit for bit: both compute exactly min(LD, cap+1) per lane, so the
// band restriction must be unobservable in the results.
func TestSIMDEquivalenceBandedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	alphabet := []rune("abcdeé✓")
	var row, row2, row3 []uint16
	for iter := 0; iter < 2000; iter++ {
		band := 1 + rng.Intn(6)
		la := 1 + rng.Intn(16)
		lb := la - band + rng.Intn(2*band+1)
		if lb < 1 {
			lb = 1
		}
		if lb > 16 {
			lb = 16
		}
		nc := 1 + rng.Intn(Width)
		pairs := randPairs(rng, nc, la, lb, band+1, alphabet)
		a, b, capv := buildPairLanes(pairs, la, lb)
		var out, out2, outFull [Width]uint16
		LevBandedBatch(a, la, b, lb, band, &capv, &row, &out)
		levBandedBatchGeneric(a, la, b, lb, band, &capv, growTestRow(&row2, lb), &out2)
		LevBatch(a, la, b, lb, &capv, &row3, &outFull)
		for l := 0; l < nc; l++ {
			want := expect(pairs[l].probe, pairs[l].cand, pairs[l].cap)
			if int(out[l]) != want {
				t.Fatalf("iter %d lane %d: banded kernel %d, want %d (band %d, cap %d, probe %q, cand %q)",
					iter, l, out[l], want, band, pairs[l].cap, string(pairs[l].probe), string(pairs[l].cand))
			}
			if out2[l] != out[l] {
				t.Fatalf("iter %d lane %d: banded generic %d != dispatched %d", iter, l, out2[l], out[l])
			}
			if outFull[l] != out[l] {
				t.Fatalf("iter %d lane %d: full kernel %d != banded %d", iter, l, outFull[l], out[l])
			}
		}
	}
}

// TestSIMDEquivalenceAbortParity forces the early-abort path (tiny
// caps, distant strings) on the dispatched and generic kernels — full
// and banded — and checks they agree lane-for-lane.
func TestSIMDEquivalenceAbortParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("xy")
	distant := []rune("qrstuvwz")
	var row, row2 []uint16
	for iter := 0; iter < 500; iter++ {
		la := 4 + rng.Intn(12)
		lb := 4 + rng.Intn(12)
		nc := 1 + rng.Intn(Width)
		pairs := make([]lanePair, nc)
		for c := range pairs {
			pairs[c] = lanePair{
				probe: randToken(rng, la, alphabet),
				cand:  randToken(rng, lb, distant),
				cap:   rng.Intn(3), // almost always dead
			}
		}
		a, b, capv := buildPairLanes(pairs, la, lb)
		var out, out2 [Width]uint16
		LevBatch(a, la, b, lb, &capv, &row, &out)
		levBatchGeneric(a, la, b, lb, &capv, growTestRow(&row2, lb), &out2)
		if out != out2 {
			t.Fatalf("iter %d: dispatched %v != generic %v", iter, out, out2)
		}
		for l := 0; l < nc; l++ {
			want := expect(pairs[l].probe, pairs[l].cand, pairs[l].cap)
			if int(out[l]) != want {
				t.Fatalf("iter %d lane %d: got %d want %d", iter, l, out[l], want)
			}
		}
		// Banded variant over the same pairs where its preconditions hold.
		band := 1
		for _, p := range pairs {
			if p.cap > band {
				band = p.cap
			}
		}
		if la-lb <= band && lb-la <= band {
			var outB, outB2 [Width]uint16
			LevBandedBatch(a, la, b, lb, band, &capv, &row, &outB)
			levBandedBatchGeneric(a, la, b, lb, band, &capv, growTestRow(&row2, lb), &outB2)
			if outB != outB2 || outB != out {
				t.Fatalf("iter %d: banded dispatched %v, banded generic %v, full %v — all must agree",
					iter, outB, outB2, out)
			}
		}
	}
}

// TestNEONKernelLive proves the NEON assembly actually executes — the
// arm64 CI leg greps its PASS line, so a qemu setup that silently
// degrades to compile-only fails the build. On arm64 without -tags
// nosimd the dispatched path must be the assembly (Available() is
// unconditional there), and it must agree with the generic reference
// on a fixed group; on other architectures the test skips.
func TestNEONKernelLive(t *testing.T) {
	if runtime.GOARCH != "arm64" {
		t.Skipf("GOARCH %s: NEON kernel not applicable", runtime.GOARCH)
	}
	if !Available() {
		t.Fatal("arm64 build without nosimd must report the NEON kernel available")
	}
	pairs := []lanePair{
		{probe: []rune("kernel"), cand: []rune("colonel"), cap: 5},
		{probe: []rune("neonzz"), cand: []rune("xeonzzz"), cap: 2},
		{probe: []rune("vector"), cand: []rune("victors"), cap: 1},
		{probe: []rune("abcdef"), cand: []rune("ghijklm"), cap: 2},
	}
	a, b, capv := buildPairLanes(pairs, 6, 7)
	var row, row2 []uint16
	var out, out2 [Width]uint16
	LevBatch(a, 6, b, 7, &capv, &row, &out)
	levBatchGeneric(a, 6, b, 7, &capv, growTestRow(&row2, 7), &out2)
	if out != out2 {
		t.Fatalf("NEON kernel %v != generic %v", out, out2)
	}
	for l, p := range pairs {
		if want := expect(p.probe, p.cand, p.cap); int(out[l]) != want {
			t.Fatalf("lane %d: NEON kernel %d, want %d", l, out[l], want)
		}
	}
}

// TestLevBatchZeroAlloc pins the steady state: a reused row means no
// allocations per kernel invocation, full and banded.
func TestLevBatchZeroAlloc(t *testing.T) {
	pairs := []lanePair{
		{probe: []rune("kernel"), cand: []rune("colonel"), cap: 5},
		{probe: []rune("kernal"), cand: []rune("colonel"), cap: 5},
		{probe: []rune("kernel"), cand: []rune("kernels"), cap: 5},
	}
	a, b, capv := buildPairLanes(pairs, 6, 7)
	var row []uint16
	var out [Width]uint16
	LevBatch(a, 6, b, 7, &capv, &row, &out) // warm the row
	allocs := testing.AllocsPerRun(100, func() {
		LevBatch(a, 6, b, 7, &capv, &row, &out)
	})
	if allocs != 0 {
		t.Fatalf("LevBatch allocates %v/op in steady state, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		LevBandedBatch(a, 6, b, 7, 5, &capv, &row, &out)
	})
	if allocs != 0 {
		t.Fatalf("LevBandedBatch allocates %v/op in steady state, want 0", allocs)
	}
}
