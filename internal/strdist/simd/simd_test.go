package simd

import (
	"math/rand"
	"testing"

	"repro/internal/strdist"
)

// randToken draws a token of exactly n runes from a small alphabet so
// rune collisions (and therefore interesting DP structure) are common.
func randToken(rng *rand.Rand, n int, alphabet []rune) []rune {
	r := make([]rune, n)
	for i := range r {
		r[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return r
}

func narrow(rs []rune) []uint16 {
	u := make([]uint16, len(rs))
	for i, r := range rs {
		u[i] = uint16(r)
	}
	return u
}

// buildLanes transposes cands (each of rune length lb) into the
// lane-major kernel layout, replicating the last candidate into unused
// lanes, and returns the matching caps vector.
func buildLanes(cands [][]rune, lb int, caps []int) ([]uint16, [Width]uint16) {
	block := make([]uint16, lb*Width)
	var capv [Width]uint16
	for l := 0; l < Width; l++ {
		src := l
		if src >= len(cands) {
			src = len(cands) - 1
		}
		for j := 0; j < lb; j++ {
			block[j*Width+l] = uint16(cands[src][j])
		}
		capv[l] = uint16(caps[src])
	}
	return block, capv
}

// expect is the scalar contract: min(LD, cap+1).
func expect(probe, cand []rune, cap int) int {
	d := strdist.LevenshteinRunes(probe, cand)
	if d > cap {
		return cap + 1
	}
	return d
}

// TestSIMDEquivalenceKernel drives the dispatched kernel (the AVX2
// assembly when available, the portable kernel otherwise) and the
// generic reference across random same-length candidate groups and
// asserts both agree with the scalar DP on every lane. This is the
// family the CI equivalence guard requires to run un-skipped.
func TestSIMDEquivalenceKernel(t *testing.T) {
	t.Logf("assembly kernel available: %v", Available())
	rng := rand.New(rand.NewSource(42))
	alphabet := []rune("abcdeé✓") // multi-byte but BMP runes included
	var row, row2 []uint16
	for iter := 0; iter < 2000; iter++ {
		la := 1 + rng.Intn(16)
		lb := 1 + rng.Intn(16)
		probe := randToken(rng, la, alphabet)
		nc := 1 + rng.Intn(Width)
		cands := make([][]rune, nc)
		caps := make([]int, nc)
		for c := range cands {
			cands[c] = randToken(rng, lb, alphabet)
			caps[c] = rng.Intn(20)
		}
		block, capv := buildLanes(cands, lb, caps)
		var out, out2 [Width]uint16
		LevBatch16(narrow(probe), block, lb, &capv, &row, &out)
		levBatch16Generic(narrow(probe), block, lb, &capv, growTestRow(&row2, lb), &out2)
		for l := 0; l < nc; l++ {
			want := expect(probe, cands[l], caps[l])
			if int(out[l]) != want && !abortConsistent(out[l], capv[l], want) {
				t.Fatalf("iter %d lane %d: dispatched kernel %d, want %d (cap %d, probe %q, cand %q)",
					iter, l, out[l], want, caps[l], string(probe), string(cands[l]))
			}
			if out2[l] != out[l] {
				t.Fatalf("iter %d lane %d: generic %d != dispatched %d", iter, l, out2[l], out[l])
			}
		}
	}
}

// abortConsistent accepts the one place kernel output may differ from
// min(LD, cap+1) pointwise: never — the all-lanes abort only fires when
// every lane's distance exceeds its cap, in which case cap+1 is exactly
// min(LD, cap+1). Kept as an explicit assertion of that reasoning.
func abortConsistent(got, cap uint16, want int) bool { return false }

func growTestRow(row *[]uint16, lb int) []uint16 {
	need := Width * (lb + 1)
	if cap(*row) < need {
		*row = make([]uint16, need)
	}
	*row = (*row)[:need]
	return *row
}

// TestSIMDEquivalenceAbortParity forces the early-abort path (tiny caps,
// distant strings) on both kernels and checks they agree cell-for-cell.
func TestSIMDEquivalenceAbortParity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("xy")
	distant := []rune("qrstuvwz")
	var row, row2 []uint16
	for iter := 0; iter < 500; iter++ {
		la := 4 + rng.Intn(12)
		lb := 4 + rng.Intn(12)
		probe := randToken(rng, la, alphabet)
		nc := 1 + rng.Intn(Width)
		cands := make([][]rune, nc)
		caps := make([]int, nc)
		for c := range cands {
			cands[c] = randToken(rng, lb, distant)
			caps[c] = rng.Intn(3) // almost always dead
		}
		block, capv := buildLanes(cands, lb, caps)
		var out, out2 [Width]uint16
		LevBatch16(narrow(probe), block, lb, &capv, &row, &out)
		levBatch16Generic(narrow(probe), block, lb, &capv, growTestRow(&row2, lb), &out2)
		if out != out2 {
			t.Fatalf("iter %d: dispatched %v != generic %v", iter, out, out2)
		}
		for l := 0; l < nc; l++ {
			want := expect(probe, cands[l], caps[l])
			if int(out[l]) != want {
				t.Fatalf("iter %d lane %d: got %d want %d", iter, l, out[l], want)
			}
		}
	}
}

// TestLevBatch16ZeroAlloc pins the steady state: a reused row means no
// allocations per kernel invocation.
func TestLevBatch16ZeroAlloc(t *testing.T) {
	probe := narrow([]rune("kernel"))
	cands := [][]rune{[]rune("colonel"), []rune("colonel"), []rune("kernels"), []rune("colonel")}
	block, capv := buildLanes(cands, 7, []int{5, 5, 5, 5})
	var row []uint16
	var out [Width]uint16
	LevBatch16(probe, block, 7, &capv, &row, &out) // warm the row
	allocs := testing.AllocsPerRun(100, func() {
		LevBatch16(probe, block, 7, &capv, &row, &out)
	})
	if allocs != 0 {
		t.Fatalf("LevBatch16 allocates %v/op in steady state, want 0", allocs)
	}
}
