//go:build amd64 && !nosimd

#include "textflag.h"

// levBatch16AVX2 sweeps 16 independent Levenshtein dynamic programs in
// the word lanes of the 256-bit registers: one probe token (broadcast
// per row) against 16 candidate tokens of equal rune length lb, stored
// lane-major (cand[j*16+l] = rune j of lane l). The DP row is the
// uint16 layout of strdist.LevenshteinBoundedScratchU16, widened to 16
// lanes: row[j] is a 16-lane vector holding D[i][j] per candidate.
//
// Per cell (identical to the scalar recurrence):
//
//	best = min(prev + cost, cur + 1, left + 1)
//
// with saturating adds (VPADDUSW) so no lane ever wraps. After each row
// the per-lane row minimum — a lower bound on the final distance, since
// any edit path crosses every row — is compared against the per-lane
// caps; once every lane's bound exceeds its cap the kernel aborts and
// reports caps+1 everywhere, mirroring the scalar banded DP's
// row-minima abort. Results are clamped to caps+1, so out <= cap is
// exact and out == cap+1 encodes LD > cap.
//
// Register map:
//
//	Y1  ai (probe rune, broadcast)   Y10 i (row number, broadcast)
//	Y2  prev = D[i-1][j-1]           Y12 caps
//	Y3  left = D[i][j-1]             Y13 caps+1
//	Y4  row minimum                  Y14 all-ones words (constant 1)
//	Y5  cur  = D[i-1][j]             Y15 zero
//	Y6  candidate runes, column j
//	Y7  cost / best scratch          Y8, Y9 del / ins scratch
//
// func levBatch16AVX2(probe *uint16, la int, cand *uint16, lb int, caps *uint16, row *uint16, out *uint16)
TEXT ·levBatch16AVX2(SB), NOSPLIT, $0-56
	MOVQ probe+0(FP), SI
	MOVQ la+8(FP), AX
	MOVQ cand+16(FP), DI
	MOVQ lb+24(FP), BX
	MOVQ caps+32(FP), DX
	MOVQ row+40(FP), R8
	MOVQ out+48(FP), R9

	VPXOR    Y15, Y15, Y15
	VMOVDQU  (DX), Y12
	VPCMPEQW Y14, Y14, Y14
	VPSRLW   $15, Y14, Y14      // each word lane = 1
	VPADDUSW Y14, Y12, Y13      // caps+1

	// row[j] = broadcast(j) for j = 0..lb.
	VPXOR Y0, Y0, Y0
	MOVQ  R8, R10
	MOVQ  BX, CX
	INCQ  CX

initrow:
	VMOVDQU  Y0, (R10)
	VPADDUSW Y14, Y0, Y0
	ADDQ     $32, R10
	DECQ     CX
	JNZ      initrow

	MOVQ  $0, R11               // i-1
	VPXOR Y10, Y10, Y10         // i (incremented at loop head)

rowloop:
	VPBROADCASTW (SI)(R11*2), Y1

	VMOVDQU  (R8), Y2           // prev = D[i-1][0]
	VPADDUSW Y14, Y10, Y10      // i
	VMOVDQU  Y10, (R8)          // D[i][0] = i
	VMOVDQA  Y10, Y3            // left
	VMOVDQA  Y10, Y4            // rowMin (column 0 participates)

	MOVQ DI, R12                // candidate runes, column 1
	MOVQ R8, R10                // cell pointer: D[.][j] at 32(R10)
	MOVQ BX, CX

colloop:
	VMOVDQU  32(R10), Y5        // cur = D[i-1][j]
	VMOVDQU  (R12), Y6
	VPCMPEQW Y6, Y1, Y7         // 0xFFFF where runes equal
	VPANDN   Y14, Y7, Y7        // cost = 1 - equal
	VPADDUSW Y7, Y2, Y7         // sub = prev + cost
	VPADDUSW Y14, Y5, Y8        // del = cur + 1
	VPADDUSW Y14, Y3, Y9        // ins = left + 1
	VPMINUW  Y8, Y7, Y7
	VPMINUW  Y9, Y7, Y7         // best
	VMOVDQU  Y7, 32(R10)
	VPMINUW  Y7, Y4, Y4
	VMOVDQA  Y5, Y2             // prev = cur
	VMOVDQA  Y7, Y3             // left = best
	ADDQ     $32, R10
	ADDQ     $32, R12
	DECQ     CX
	JNZ      colloop

	// All lanes dead (rowMin > cap everywhere)?
	VPSUBUSW  Y12, Y4, Y4       // max(rowMin - caps, 0): nonzero iff dead
	VPCMPEQW  Y15, Y4, Y4       // 0xFFFF iff lane alive
	VPMOVMSKB Y4, R13
	TESTL     R13, R13
	JZ        abort

	INCQ R11
	CMPQ R11, AX
	JLT  rowloop

	// out = min(D[la][lb], caps+1)
	MOVQ    BX, CX
	SHLQ    $5, CX
	VMOVDQU (R8)(CX*1), Y0
	VPMINUW Y13, Y0, Y0
	VMOVDQU Y0, (R9)
	VZEROUPPER
	RET

abort:
	VMOVDQU Y13, (R9)
	VZEROUPPER
	RET
