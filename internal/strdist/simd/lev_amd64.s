//go:build amd64 && !nosimd

#include "textflag.h"

// levBatchAVX2 sweeps 16 independent Levenshtein dynamic programs in
// the word lanes of the 256-bit registers: 16 (probe token, candidate
// token) pairs whose sides share the rune lengths (la, lb), both sides
// stored lane-major (a[i*16+l] = rune i of lane l's probe token,
// b[j*16+l] = rune j of its candidate). The DP row is the uint16
// layout of strdist.LevenshteinBoundedScratchU16, widened to 16 lanes:
// row[j] is a 16-lane vector holding D[i][j] per pair.
//
// Per cell (identical to the scalar recurrence):
//
//	best = min(prev + cost, cur + 1, left + 1)
//
// with saturating adds (VPADDUSW) so no lane ever wraps. After each row
// the per-lane row minimum — a lower bound on the final distance, since
// any edit path crosses every row — is compared against the per-lane
// caps; once every lane's bound exceeds its cap the kernel aborts and
// reports caps+1 everywhere, mirroring the scalar banded DP's
// row-minima abort. Results are clamped to caps+1, so out <= cap is
// exact and out == cap+1 encodes LD > cap.
//
// Register map:
//
//	Y1  probe runes, row i          Y10 i (row number, broadcast)
//	Y2  prev = D[i-1][j-1]          Y12 caps
//	Y3  left = D[i][j-1]            Y13 caps+1
//	Y4  row minimum                 Y14 all-ones words (constant 1)
//	Y5  cur  = D[i-1][j]            Y15 zero
//	Y6  candidate runes, column j
//	Y7  cost / best scratch         Y8, Y9 del / ins scratch
//
// func levBatchAVX2(a *uint16, la int, b *uint16, lb int, caps *uint16, row *uint16, out *uint16)
TEXT ·levBatchAVX2(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ la+8(FP), AX
	MOVQ b+16(FP), DI
	MOVQ lb+24(FP), BX
	MOVQ caps+32(FP), DX
	MOVQ row+40(FP), R8
	MOVQ out+48(FP), R9

	VPXOR    Y15, Y15, Y15
	VMOVDQU  (DX), Y12
	VPCMPEQW Y14, Y14, Y14
	VPSRLW   $15, Y14, Y14      // each word lane = 1
	VPADDUSW Y14, Y12, Y13      // caps+1

	// row[j] = broadcast(j) for j = 0..lb.
	VPXOR Y0, Y0, Y0
	MOVQ  R8, R10
	MOVQ  BX, CX
	INCQ  CX

initrow:
	VMOVDQU  Y0, (R10)
	VPADDUSW Y14, Y0, Y0
	ADDQ     $32, R10
	DECQ     CX
	JNZ      initrow

	VPXOR Y10, Y10, Y10         // i (incremented at loop head)

rowloop:
	VMOVDQU (SI), Y1            // probe runes, lane-major row i
	ADDQ    $32, SI

	VMOVDQU  (R8), Y2           // prev = D[i-1][0]
	VPADDUSW Y14, Y10, Y10      // i
	VMOVDQU  Y10, (R8)          // D[i][0] = i
	VMOVDQA  Y10, Y3            // left
	VMOVDQA  Y10, Y4            // rowMin (column 0 participates)

	MOVQ DI, R12                // candidate runes, column 1
	MOVQ R8, R10                // cell pointer: D[.][j] at 32(R10)
	MOVQ BX, CX

colloop:
	VMOVDQU  32(R10), Y5        // cur = D[i-1][j]
	VMOVDQU  (R12), Y6
	VPCMPEQW Y6, Y1, Y7         // 0xFFFF where runes equal
	VPANDN   Y14, Y7, Y7        // cost = 1 - equal
	VPADDUSW Y7, Y2, Y7         // sub = prev + cost
	VPADDUSW Y14, Y5, Y8        // del = cur + 1
	VPADDUSW Y14, Y3, Y9        // ins = left + 1
	VPMINUW  Y8, Y7, Y7
	VPMINUW  Y9, Y7, Y7         // best
	VMOVDQU  Y7, 32(R10)
	VPMINUW  Y7, Y4, Y4
	VMOVDQA  Y5, Y2             // prev = cur
	VMOVDQA  Y7, Y3             // left = best
	ADDQ     $32, R10
	ADDQ     $32, R12
	DECQ     CX
	JNZ      colloop

	// All lanes dead (rowMin > cap everywhere)?
	VPSUBUSW  Y12, Y4, Y4       // max(rowMin - caps, 0): nonzero iff dead
	VPCMPEQW  Y15, Y4, Y4       // 0xFFFF iff lane alive
	VPMOVMSKB Y4, R13
	TESTL     R13, R13
	JZ        abort

	DECQ AX
	JNZ  rowloop

	// out = min(D[la][lb], caps+1)
	MOVQ    BX, CX
	SHLQ    $5, CX
	VMOVDQU (R8)(CX*1), Y0
	VPMINUW Y13, Y0, Y0
	VMOVDQU Y0, (R9)
	VZEROUPPER
	RET

abort:
	VMOVDQU Y13, (R9)
	VZEROUPPER
	RET

// levBandedBatchAVX2 is levBatchAVX2 restricted to the diagonal band
// |i-j| <= band of every lane's DP matrix, with the out-of-band
// sentinel discipline of strdist.LevenshteinBoundedScratchU16 (and of
// levBandedBatchGeneric, its bit-identical reference): row cells beyond
// column band initialize to the u16Inf sentinel (1<<15), the cell left
// of the band start is overwritten with the sentinel once column lo-1
// falls out of the band (i > band — at i == band+1 the band still
// starts at column 1 but column 0 has just left it), and the stale
// cell at the band's right edge is the previous row's sentinel by
// construction (no row ever wrote that far right). Per row only
// hi-lo+1 <= 2*band+1 column cells are touched, which is the whole
// point: under a tight cap the full matrix is almost entirely dead
// band exterior.
//
// Preconditions on top of levBatchAVX2's: band >= 1, caps[l] <= band
// and |la-lb| <= band for every lane (see LevBandedBatch).
//
// Register map: as levBatchAVX2, plus
//
//	Y11 u16Inf sentinel, broadcast
//	R14 band    R11 i    R15 lo    DX hi-lo+1 (caps pointer is dead after the prologue)
//
// func levBandedBatchAVX2(a *uint16, la int, b *uint16, lb int, band int, caps *uint16, row *uint16, out *uint16)
TEXT ·levBandedBatchAVX2(SB), NOSPLIT, $0-64
	MOVQ a+0(FP), SI
	MOVQ la+8(FP), AX
	MOVQ b+16(FP), DI
	MOVQ lb+24(FP), BX
	MOVQ band+32(FP), R14
	MOVQ caps+40(FP), DX
	MOVQ row+48(FP), R8
	MOVQ out+56(FP), R9

	VPXOR    Y15, Y15, Y15
	VMOVDQU  (DX), Y12
	VPCMPEQW Y14, Y14, Y14
	VPSRLW   $15, Y14, Y14      // each word lane = 1
	VPADDUSW Y14, Y12, Y13      // caps+1
	VPSLLW   $15, Y14, Y11      // u16Inf = 1<<15 per lane

	// row[j] = broadcast(j) for j = 0..min(band, lb); u16Inf beyond.
	VPXOR Y0, Y0, Y0
	MOVQ  R8, R10
	MOVQ  BX, CX
	INCQ  CX                    // lb+1 cells total
	MOVQ  R14, R13
	INCQ  R13                   // band+1 in-band init cells
	CMPQ  R13, CX
	CMOVQGT CX, R13             // R13 = min(band+1, lb+1)
	SUBQ  R13, CX               // CX = sentinel cells

initband:
	VMOVDQU  Y0, (R10)
	VPADDUSW Y14, Y0, Y0
	ADDQ     $32, R10
	DECQ     R13
	JNZ      initband
	TESTQ    CX, CX
	JZ       initdone

initinf:
	VMOVDQU Y11, (R10)
	ADDQ    $32, R10
	DECQ    CX
	JNZ     initinf

initdone:
	VPXOR Y10, Y10, Y10         // i vector (incremented at loop head)
	MOVQ  $0, R11               // i (incremented at loop head)

browloop:
	INCQ     R11
	VPADDUSW Y14, Y10, Y10      // broadcast i
	VMOVDQU  (SI), Y1           // probe runes, lane-major row i
	ADDQ     $32, SI

	// lo = max(1, i-band), hi = min(lb, i+band).
	MOVQ R11, R15
	SUBQ R14, R15               // i - band
	MOVQ $1, CX
	CMPQ R15, CX
	CMOVQLT CX, R15             // lo
	MOVQ R11, DX
	ADDQ R14, DX                // i + band
	CMPQ DX, BX
	CMOVQGT BX, DX              // hi
	SUBQ R15, DX
	INCQ DX                     // hi - lo + 1 column cells (>= 1)

	// Boundary cell at column lo-1: prev = D[i-1][lo-1] (always valid),
	// then the cell becomes the sentinel once out of band (i > band),
	// else column 0 stays real: D[i][0] = i.
	MOVQ R15, R10
	DECQ R10
	SHLQ $5, R10
	ADDQ R8, R10                // &row[lo-1]
	VMOVDQU (R10), Y2           // prev = D[i-1][lo-1]
	CMPQ R11, R14
	JGT  bsentinel
	VMOVDQU Y10, (R10)          // D[i][0] = i
	VMOVDQA Y10, Y3             // left = i
	JMP  bboundone

bsentinel:
	VMOVDQU Y11, (R10)          // out-of-band boundary = u16Inf
	VMOVDQA Y11, Y3             // left = u16Inf

bboundone:
	VMOVDQA Y11, Y4             // rowMin = u16Inf (in-band cells only)

	// Cell pointer at column lo (32(R10) after the boundary), candidate
	// pointer at column lo's runes.
	MOVQ R15, R12
	DECQ R12
	SHLQ $5, R12
	ADDQ DI, R12                // &b[(lo-1)*16]
	MOVQ DX, CX

bcolloop:
	VMOVDQU  32(R10), Y5        // cur = D[i-1][j] (u16Inf past row i-1's band)
	VMOVDQU  (R12), Y6
	VPCMPEQW Y6, Y1, Y7         // 0xFFFF where runes equal
	VPANDN   Y14, Y7, Y7        // cost = 1 - equal
	VPADDUSW Y7, Y2, Y7         // sub = prev + cost
	VPADDUSW Y14, Y5, Y8        // del = cur + 1
	VPADDUSW Y14, Y3, Y9        // ins = left + 1
	VPMINUW  Y8, Y7, Y7
	VPMINUW  Y9, Y7, Y7         // best
	VMOVDQU  Y7, 32(R10)
	VPMINUW  Y7, Y4, Y4
	VMOVDQA  Y5, Y2             // prev = cur
	VMOVDQA  Y7, Y3             // left = best
	ADDQ     $32, R10
	ADDQ     $32, R12
	DECQ     CX
	JNZ      bcolloop

	// All lanes dead (rowMin > cap everywhere)?
	VPSUBUSW  Y12, Y4, Y4
	VPCMPEQW  Y15, Y4, Y4
	VPMOVMSKB Y4, R13
	TESTL     R13, R13
	JZ        babort

	CMPQ R11, AX
	JLT  browloop

	// out = min(D[la][lb], caps+1)
	MOVQ    BX, CX
	SHLQ    $5, CX
	VMOVDQU (R8)(CX*1), Y0
	VPMINUW Y13, Y0, Y0
	VMOVDQU Y0, (R9)
	VZEROUPPER
	RET

babort:
	VMOVDQU Y13, (R9)
	VZEROUPPER
	RET
