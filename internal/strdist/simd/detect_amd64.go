//go:build amd64 && !nosimd

package simd

// cpuid and xgetbv are implemented in cpuid_amd64.s. The detection is
// self-contained (no golang.org/x/sys/cpu dependency): CPUID leaf 7
// advertises AVX2, and XGETBV confirms the OS actually saves the YMM
// register state across context switches — both checks are required
// before executing VEX-encoded instructions.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 || ecx1&cpuidAVX == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be set by the OS.
	xeax, _ := xgetbv()
	if xeax&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const cpuidAVX2 = 1 << 5
	return ebx7&cpuidAVX2 != 0
}
