//go:build amd64 && !nosimd

package simd

// Available reports whether the batched kernels run vectorized on this
// CPU. On amd64 both kernels require AVX2 (detected once at init via
// CPUID); without it every call falls back to the portable kernels,
// which produce identical bytes.
func Available() bool { return hasAVX2 }

//go:noescape
func levBatchAVX2(a *uint16, la int, b *uint16, lb int, caps *uint16, row *uint16, out *uint16)

//go:noescape
func levBandedBatchAVX2(a *uint16, la int, b *uint16, lb int, band int, caps *uint16, row *uint16, out *uint16)

func levBatch(a []uint16, la int, b []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	if !hasAVX2 {
		levBatchGeneric(a, la, b, lb, caps, row, out)
		return
	}
	levBatchAVX2(&a[0], la, &b[0], lb, &caps[0], &row[0], &out[0])
}

func levBandedBatch(a []uint16, la int, b []uint16, lb int, band int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	if !hasAVX2 {
		levBandedBatchGeneric(a, la, b, lb, band, caps, row, out)
		return
	}
	levBandedBatchAVX2(&a[0], la, &b[0], lb, band, &caps[0], &row[0], &out[0])
}
