//go:build amd64 && !nosimd

package simd

// Available reports whether the vectorized batch kernel is live: AVX2
// detected at init and the build not forced scalar with -tags nosimd.
func Available() bool { return hasAVX2 }

// levBatch16AVX2 is the assembly kernel (lev_amd64.s). See LevBatch16
// for the contract; row must hold Width*(lb+1) uint16s.
//
//go:noescape
func levBatch16AVX2(probe *uint16, la int, cand *uint16, lb int, caps *uint16, row *uint16, out *uint16)

func levBatch16(probe []uint16, cand []uint16, lb int, caps *[Width]uint16, row []uint16, out *[Width]uint16) {
	if !hasAVX2 {
		levBatch16Generic(probe, cand, lb, caps, row, out)
		return
	}
	levBatch16AVX2(&probe[0], len(probe), &cand[0], lb, &caps[0], &row[0], &out[0])
}
