package simd

import (
	"testing"

	"repro/internal/strdist"
)

// sanitizeLanes turns arbitrary fuzz strings into a kernel-legal lane
// group: BMP-only runes, equal candidate lengths (by repeating b's
// runes cyclically with a per-lane mutation), bounded sizes.
func sanitizeLanes(a, b string, capSeed uint16) (probe []rune, cands [][]rune, caps []int, ok bool) {
	probe = keepBMP([]rune(a), 32)
	base := keepBMP([]rune(b), 32)
	if len(probe) == 0 || len(base) == 0 {
		return nil, nil, nil, false
	}
	cands = make([][]rune, Width)
	caps = make([]int, Width)
	for l := 0; l < Width; l++ {
		c := make([]rune, len(base))
		copy(c, base)
		// Deterministic per-lane mutation keeps lanes distinct without
		// changing the length.
		c[l%len(c)] = rune('a' + l)
		cands[l] = c
		caps[l] = int((capSeed + uint16(l)*3) % 48)
	}
	return probe, cands, caps, true
}

func keepBMP(rs []rune, max int) []rune {
	out := rs[:0]
	for _, r := range rs {
		if r >= 0 && r < 0x10000 {
			out = append(out, r)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// FuzzLevenshteinSIMDEquivalence asserts the dispatched kernel (AVX2
// assembly where available) and the portable reference both equal the
// scalar DP, lane for lane, on arbitrary rune pairs and caps. The
// checked-in seeds double as a regression corpus in plain `go test`.
func FuzzLevenshteinSIMDEquivalence(f *testing.F) {
	f.Add("barak obama", "obama barack", uint16(3))
	f.Add("kernel", "colonel", uint16(0))
	f.Add("aaaa", "aaab", uint16(1))
	f.Add("é✓ürich", "zurich", uint16(5))
	f.Add("x", "y", uint16(40))
	f.Add("mississippi", "mississippi", uint16(2))
	f.Fuzz(func(t *testing.T, a, b string, capSeed uint16) {
		probe, cands, caps, ok := sanitizeLanes(a, b, capSeed)
		if !ok {
			return
		}
		lb := len(cands[0])
		block, capv := buildLanes(cands, lb, caps)
		var row, row2 []uint16
		var out, out2 [Width]uint16
		LevBatch16(narrow(probe), block, lb, &capv, &row, &out)
		levBatch16Generic(narrow(probe), block, lb, &capv, growTestRow(&row2, lb), &out2)
		if out != out2 {
			t.Fatalf("dispatched %v != generic %v (probe %q base %q)", out, out2, a, b)
		}
		for l := 0; l < Width; l++ {
			d := strdist.LevenshteinRunes(probe, cands[l])
			want := d
			if want > caps[l] {
				want = caps[l] + 1
			}
			if int(out[l]) != want {
				t.Fatalf("lane %d: kernel %d, want min(LD=%d, cap=%d + 1) (probe %q cand %q)",
					l, out[l], d, caps[l], string(probe), string(cands[l]))
			}
		}
	})
}
