package simd

import (
	"testing"

	"repro/internal/strdist"
)

// sanitizePairs turns arbitrary fuzz strings into a kernel-legal lane
// group: BMP-only runes, shared side lengths (by cyclic per-lane
// mutation of both the probe and candidate base strings, so lanes hold
// genuinely distinct pairs — the cross-probe shape), bounded sizes.
func sanitizePairs(a, b string, capSeed uint16) (pairs []lanePair, la, lb int, ok bool) {
	pa := keepBMP([]rune(a), 32)
	pb := keepBMP([]rune(b), 32)
	if len(pa) == 0 || len(pb) == 0 {
		return nil, 0, 0, false
	}
	pairs = make([]lanePair, Width)
	for l := 0; l < Width; l++ {
		p := make([]rune, len(pa))
		copy(p, pa)
		p[l%len(p)] = rune('b' + l)
		c := make([]rune, len(pb))
		copy(c, pb)
		// Deterministic per-lane mutation keeps lanes distinct without
		// changing the lengths.
		c[l%len(c)] = rune('a' + l)
		pairs[l] = lanePair{probe: p, cand: c, cap: int((capSeed + uint16(l)*3) % 48)}
	}
	return pairs, len(pa), len(pb), true
}

func keepBMP(rs []rune, max int) []rune {
	out := rs[:0]
	for _, r := range rs {
		if r >= 0 && r < 0x10000 {
			out = append(out, r)
		}
	}
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// FuzzLevenshteinSIMDEquivalence asserts the dispatched kernels (the
// assembly where available) and the portable references all equal the
// scalar DP, lane for lane, on arbitrary rune pairs and caps — the
// full kernel always, the banded kernel whenever its preconditions
// (caps <= band, |la-lb| <= band) can be met, in which case the two
// kernels must also agree with each other bit for bit. The checked-in
// seeds double as a regression corpus in plain `go test`; the last
// three are refill-heavy shapes (most lanes dead almost immediately,
// a few alive) that stress the staging layer's lane-compaction seeds
// and the all-lanes abort boundary.
func FuzzLevenshteinSIMDEquivalence(f *testing.F) {
	f.Add("barak obama", "obama barack", uint16(3))
	f.Add("kernel", "colonel", uint16(0))
	f.Add("aaaa", "aaab", uint16(1))
	f.Add("é✓ürich", "zurich", uint16(5))
	f.Add("x", "y", uint16(40))
	f.Add("mississippi", "mississippi", uint16(2))
	f.Add("qqqqqqqqqqqq", "zzzzzzzzzzzz", uint16(46)) // caps cycle through 0 on some lanes
	f.Add("abcdefghijkl", "mnopqrstuvwx", uint16(45)) // all-distant, tiny caps: abort rows
	f.Add("aaaaaaaaaaaaaaaa", "aaaaaaaaaaaaaaab", uint16(47))
	f.Fuzz(func(t *testing.T, a, b string, capSeed uint16) {
		pairs, la, lb, ok := sanitizePairs(a, b, capSeed)
		if !ok {
			return
		}
		ab, bb, capv := buildPairLanes(pairs, la, lb)
		var row, row2 []uint16
		var out, out2 [Width]uint16
		LevBatch(ab, la, bb, lb, &capv, &row, &out)
		levBatchGeneric(ab, la, bb, lb, &capv, growTestRow(&row2, lb), &out2)
		if out != out2 {
			t.Fatalf("dispatched %v != generic %v (probe %q base %q)", out, out2, a, b)
		}
		for l := 0; l < Width; l++ {
			d := strdist.LevenshteinRunes(pairs[l].probe, pairs[l].cand)
			want := d
			if want > pairs[l].cap {
				want = pairs[l].cap + 1
			}
			if int(out[l]) != want {
				t.Fatalf("lane %d: kernel %d, want min(LD=%d, cap=%d + 1) (probe %q cand %q)",
					l, out[l], d, pairs[l].cap, string(pairs[l].probe), string(pairs[l].cand))
			}
		}
		// Banded kernel under its preconditions: band covers every cap
		// and the length gap. Must match the full kernel exactly.
		band := 1
		for _, p := range pairs {
			if p.cap > band {
				band = p.cap
			}
		}
		if la-lb > band || lb-la > band {
			return
		}
		var outB, outB2 [Width]uint16
		LevBandedBatch(ab, la, bb, lb, band, &capv, &row, &outB)
		levBandedBatchGeneric(ab, la, bb, lb, band, &capv, growTestRow(&row2, lb), &outB2)
		if outB != outB2 {
			t.Fatalf("banded dispatched %v != banded generic %v (probe %q base %q band %d)",
				outB, outB2, a, b, band)
		}
		if outB != out {
			t.Fatalf("banded %v != full %v (probe %q base %q band %d)", outB, out, a, b, band)
		}
	})
}
