package strdist

// NLD returns the Normalized Levenshtein Distance of Definition 2:
//
//	NLD(x, y) = 2*LD(x, y) / (|x| + |y| + LD(x, y))
//
// NLD is a metric (Theorem 1, after Li & Liu 2007) and ranges over [0, 1]
// (Lemma 2). NLD("", "") is defined as 0.
func NLD(a, b string) float64 {
	return NLDRunes([]rune(a), []rune(b))
}

// NLDRunes is NLD on pre-decoded rune slices.
func NLDRunes(a, b []rune) float64 {
	d := LevenshteinRunes(a, b)
	return NLDFromLD(d, len(a), len(b))
}

// NLDFromLD computes NLD given an already-computed LD and the two string
// lengths. It is the single place the Definition 2 formula lives, so every
// caller normalizes identically.
func NLDFromLD(ld, lenA, lenB int) float64 {
	if ld == 0 {
		return 0
	}
	return 2 * float64(ld) / float64(lenA+lenB+ld)
}

// WithinNLD reports whether a pair with Levenshtein distance ld and lengths
// lenA, lenB satisfies NLD <= t. The comparison is carried out on the
// rearranged integer-weighted form 2*ld <= t*(lenA+lenB+ld) so that all
// join, filter and verification code paths agree on boundary cases.
func WithinNLD(ld, lenA, lenB int, t float64) bool {
	return 2*float64(ld) <= t*float64(lenA+lenB+ld)
}

// WithinNLDRunes reports whether NLD(a, b) <= t, computing the Levenshtein
// distance with a band bounded by MaxLDWithin so dissimilar pairs exit
// early.
func WithinNLDRunes(a, b []rune, t float64) bool {
	max := MaxLDWithin(t, len(a), len(b))
	ld, ok := LevenshteinBounded(a, b, max)
	if !ok {
		return false
	}
	return WithinNLD(ld, len(a), len(b), t)
}
