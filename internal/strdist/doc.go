// Package strdist implements the character-level string distances the paper
// builds on: the Levenshtein Distance (LD, Definition 1) and the Normalized
// Levenshtein Distance (NLD, Definition 2, after Li & Liu 2007), together
// with the length/threshold bounds of Lemmas 3, 8, 9 and 10 that drive the
// PassJoin/MassJoin candidate generation and the TSJ filters.
//
// All distances operate on Unicode code points (runes), not bytes, so names
// in any script are compared the way the paper's tokenizer intends. Hot paths
// accept pre-converted []rune values to avoid repeated decoding.
package strdist
