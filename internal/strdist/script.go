package strdist

// EditOp is one character-level edit operation of Definition 1.
type EditOp struct {
	// Kind is one of Match, Substitute, Insert, Delete.
	Kind OpKind
	// PosA is the rune position in the source string (for Match,
	// Substitute, Delete); PosB in the target (for Match, Substitute,
	// Insert).
	PosA, PosB int
	// From/To are the runes involved (zero value when not applicable).
	From, To rune
}

// OpKind enumerates edit operation kinds.
type OpKind int8

const (
	// Match consumes one equal rune from both strings at zero cost.
	Match OpKind = iota
	// Substitute rewrites one rune.
	Substitute
	// Insert adds the target rune missing from the source.
	Insert
	// Delete removes a source rune absent from the target.
	Delete
)

func (k OpKind) String() string {
	switch k {
	case Match:
		return "match"
	case Substitute:
		return "substitute"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	}
	return "unknown"
}

// EditScript returns a minimum-length sequence of edit operations
// transforming a into b, together with its cost (= LD(a, b)). Matches are
// included so the script is a full alignment; filtering them out leaves
// exactly LD(a, b) operations. Useful for explaining to a human reviewer
// *why* two names were linked.
//
// The script is deterministic: on ties the traceback prefers Match/
// Substitute over Delete over Insert.
func EditScript(a, b string) ([]EditOp, int) {
	ra, rb := []rune(a), []rune(b)
	n, m := len(ra), len(rb)
	// Full DP matrix (script extraction needs the traceback).
	dp := make([][]int32, n+1)
	for i := range dp {
		dp[i] = make([]int32, m+1)
		dp[i][0] = int32(i)
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = int32(j)
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := int32(1)
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			best := dp[i-1][j-1] + cost
			if d := dp[i-1][j] + 1; d < best {
				best = d
			}
			if d := dp[i][j-1] + 1; d < best {
				best = d
			}
			dp[i][j] = best
		}
	}
	// Traceback.
	var rev []EditOp
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && ra[i-1] == rb[j-1] && dp[i][j] == dp[i-1][j-1]:
			rev = append(rev, EditOp{Kind: Match, PosA: i - 1, PosB: j - 1, From: ra[i-1], To: rb[j-1]})
			i--
			j--
		case i > 0 && j > 0 && dp[i][j] == dp[i-1][j-1]+1:
			rev = append(rev, EditOp{Kind: Substitute, PosA: i - 1, PosB: j - 1, From: ra[i-1], To: rb[j-1]})
			i--
			j--
		case i > 0 && dp[i][j] == dp[i-1][j]+1:
			rev = append(rev, EditOp{Kind: Delete, PosA: i - 1, PosB: j, From: ra[i-1]})
			i--
		default:
			rev = append(rev, EditOp{Kind: Insert, PosA: i, PosB: j - 1, To: rb[j-1]})
			j--
		}
	}
	// Reverse in place.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, int(dp[n][m])
}

// ApplyScript replays a script produced by EditScript(a, b) onto a,
// returning b. It exists to let tests and callers validate scripts.
func ApplyScript(a string, script []EditOp) string {
	out := make([]rune, 0, len(a))
	for _, op := range script {
		switch op.Kind {
		case Match:
			out = append(out, op.From)
		case Substitute, Insert:
			out = append(out, op.To)
		case Delete:
			// consumed, nothing emitted
		}
	}
	return string(out)
}

// ScriptCost counts the non-Match operations (= the edit distance the
// script realizes).
func ScriptCost(script []EditOp) int {
	n := 0
	for _, op := range script {
		if op.Kind != Match {
			n++
		}
	}
	return n
}
