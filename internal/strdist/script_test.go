package strdist

import (
	"math/rand"
	"testing"
)

func TestEditScriptKnown(t *testing.T) {
	script, cost := EditScript("kitten", "sitting")
	if cost != 3 {
		t.Fatalf("cost = %d, want 3", cost)
	}
	if got := ApplyScript("kitten", script); got != "sitting" {
		t.Fatalf("ApplyScript = %q, want sitting", got)
	}
	if ScriptCost(script) != 3 {
		t.Fatalf("ScriptCost = %d, want 3", ScriptCost(script))
	}
}

func TestEditScriptEmptyCases(t *testing.T) {
	script, cost := EditScript("", "abc")
	if cost != 3 || len(script) != 3 {
		t.Fatalf("insert-only script: cost=%d len=%d", cost, len(script))
	}
	for _, op := range script {
		if op.Kind != Insert {
			t.Fatalf("expected inserts only, got %v", op.Kind)
		}
	}
	script, cost = EditScript("abc", "")
	if cost != 3 {
		t.Fatalf("delete-only cost = %d", cost)
	}
	if got := ApplyScript("abc", script); got != "" {
		t.Fatalf("ApplyScript = %q, want empty", got)
	}
	script, cost = EditScript("", "")
	if cost != 0 || len(script) != 0 {
		t.Fatal("empty-to-empty must be a no-op")
	}
}

func TestEditScriptIdentity(t *testing.T) {
	script, cost := EditScript("same", "same")
	if cost != 0 {
		t.Fatalf("cost = %d", cost)
	}
	for _, op := range script {
		if op.Kind != Match {
			t.Fatalf("identity script contains %v", op.Kind)
		}
	}
}

// TestEditScriptRandomRoundTrip: the script always replays a into b, its
// cost always equals the Levenshtein distance, and positions are sane.
func TestEditScriptRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for i := 0; i < 3000; i++ {
		a, b := string(randomRunes(rng, 12)), string(randomRunes(rng, 12))
		script, cost := EditScript(a, b)
		if want := Levenshtein(a, b); cost != want {
			t.Fatalf("EditScript cost %d != LD %d for %q -> %q", cost, want, a, b)
		}
		if ScriptCost(script) != cost {
			t.Fatalf("ScriptCost mismatch for %q -> %q", a, b)
		}
		if got := ApplyScript(a, script); got != b {
			t.Fatalf("replay produced %q, want %q (from %q)", got, b, a)
		}
	}
}

func TestEditScriptUnicode(t *testing.T) {
	script, cost := EditScript("日本語", "日本")
	if cost != 1 {
		t.Fatalf("cost = %d, want 1 (rune-level)", cost)
	}
	if got := ApplyScript("日本語", script); got != "日本" {
		t.Fatalf("replay = %q", got)
	}
}

func TestOpKindString(t *testing.T) {
	for k, want := range map[OpKind]string{
		Match: "match", Substitute: "substitute", Insert: "insert", Delete: "delete",
	} {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
