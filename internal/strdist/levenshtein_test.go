package strdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refLevenshtein is an independent full-matrix reference implementation used
// to validate the optimized two-row and banded variants.
func refLevenshtein(a, b []rune) int {
	n, m := len(a), len(b)
	dp := make([][]int, n+1)
	for i := range dp {
		dp[i] = make([]int, m+1)
		dp[i][0] = i
	}
	for j := 0; j <= m; j++ {
		dp[0][j] = j
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := dp[i-1][j-1] + cost
			if d := dp[i][j-1] + 1; d < best {
				best = d
			}
			if d := dp[i-1][j] + 1; d < best {
				best = d
			}
			dp[i][j] = best
		}
	}
	return dp[n][m]
}

func TestLevenshteinKnownValues(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Thomson", "Thompson", 1}, // paper Sec. II-C example
		{"Alex", "Alexa", 1},       // paper Sec. II-C example
		{"chan", "chank", 1},       // paper Sec. II-D example
		{"kalan", "alan", 1},       // paper Sec. II-D example
		{"gumbo", "gambol", 2},
		{"日本語", "日本", 1}, // rune-level, not byte-level
		{"héllo", "hello", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// randomRunes draws a short string over a small alphabet so that random
// pairs collide often enough to exercise interesting distances.
func randomRunes(rng *rand.Rand, maxLen int) []rune {
	n := rng.Intn(maxLen + 1)
	s := make([]rune, n)
	for i := range s {
		s[i] = rune('a' + rng.Intn(5))
	}
	return s
}

func TestLevenshteinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomRunes(rng, 12), randomRunes(rng, 12)
		want := refLevenshtein(a, b)
		if got := LevenshteinRunes(a, b); got != want {
			t.Fatalf("LevenshteinRunes(%q, %q) = %d, want %d", string(a), string(b), got, want)
		}
	}
}

func TestLevenshteinBoundedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		a, b := randomRunes(rng, 14), randomRunes(rng, 14)
		want := refLevenshtein(a, b)
		max := rng.Intn(8) - 1 // includes -1
		got, ok := LevenshteinBounded(a, b, max)
		if want <= max {
			if !ok || got != want {
				t.Fatalf("LevenshteinBounded(%q, %q, %d) = (%d,%v), want (%d,true)",
					string(a), string(b), max, got, ok, want)
			}
		} else if ok {
			t.Fatalf("LevenshteinBounded(%q, %q, %d) reported ok for true distance %d",
				string(a), string(b), max, want)
		}
	}
}

func TestLevenshteinBoundedZeroMax(t *testing.T) {
	if d, ok := LevenshteinBounded([]rune("abc"), []rune("abc"), 0); !ok || d != 0 {
		t.Fatalf("equal strings with max=0: got (%d,%v)", d, ok)
	}
	if _, ok := LevenshteinBounded([]rune("abc"), []rune("abd"), 0); ok {
		t.Fatal("distinct strings must fail max=0")
	}
}

func TestLevenshteinMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Symmetry and identity.
	symm := func(a, b string) bool {
		ra, rb := []rune(a), []rune(b)
		if LevenshteinRunes(ra, ra) != 0 {
			return false
		}
		return LevenshteinRunes(ra, rb) == LevenshteinRunes(rb, ra)
	}
	if err := quick.Check(symm, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Triangle inequality (dedicated loop; needs three values).
	for i := 0; i < 1000; i++ {
		a, b, c := randomRunes(rng, 10), randomRunes(rng, 10), randomRunes(rng, 10)
		ab := LevenshteinRunes(a, b)
		bc := LevenshteinRunes(b, c)
		ac := LevenshteinRunes(a, c)
		if ab+bc < ac {
			t.Fatalf("triangle violated: LD(%q,%q)=%d + LD(%q,%q)=%d < LD(%q,%q)=%d",
				string(a), string(b), ab, string(b), string(c), bc, string(a), string(c), ac)
		}
	}
}
