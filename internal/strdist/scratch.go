package strdist

// growRow returns a slice of length n backed by row's storage when it is
// large enough, reallocating (amortized, power-of-two) otherwise. The
// scratch-threaded DP variants below use it so that a reused row reaches a
// steady state with zero allocations.
func growRow[T int | uint16](row []T, n int) []T {
	if cap(row) >= n {
		return row[:n]
	}
	c := cap(row) * 2
	if c < n {
		c = n
	}
	if c < 16 {
		c = 16
	}
	return make([]T, n, c)
}

// LevenshteinRunesScratch is LevenshteinRunes with a caller-owned DP row:
// *row is grown as needed and retained across calls, so a hot loop that
// reuses the same scratch performs no allocations in steady state.
func LevenshteinRunesScratch(a, b []rune, row *[]int) int {
	// Keep the row as short as possible.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	r := growRow(*row, len(b)+1)
	*row = r
	for j := range r {
		r[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := r[0] // row[i-1][0]
		r[0] = i
		for j := 1; j <= len(b); j++ {
			cur := r[j] // row[i-1][j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost            // substitution / match
			if d := r[j-1] + 1; d < best { // insertion
				best = d
			}
			if d := cur + 1; d < best { // deletion
				best = d
			}
			prev = cur
			r[j] = best
		}
	}
	return r[len(b)]
}

// u16Inf is the "outside the band" sentinel of the uint16 DP rows. The
// rows are only used when the shorter input fits below u16Limit, so a
// cell can grow past the sentinel by at most len(b) < u16Limit without
// wrapping uint16 (u16Inf + u16Limit < 65536).
const (
	u16Inf   = 1 << 15
	u16Limit = 1<<15 - 1
)

// LevenshteinRunesScratchU16 is LevenshteinRunesScratch with a uint16 DP
// row: token lengths fit comfortably in uint16, and halving the row's
// element size keeps the whole hot-loop row in fewer cache lines. Inputs
// whose longer side reaches u16Limit runes (cell values scale with the
// longer input, so uint16 would wrap) fall back to the []int path with a
// throwaway row — unreachable for token workloads.
func LevenshteinRunesScratchU16(a, b []rune, row *[]uint16) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) >= u16Limit {
		var tmp []int
		return LevenshteinRunesScratch(a, b, &tmp)
	}
	r := growRow(*row, len(b)+1)
	*row = r
	for j := range r {
		r[j] = uint16(j)
	}
	for i := 1; i <= len(a); i++ {
		prev := r[0] // row[i-1][0]
		r[0] = uint16(i)
		for j := 1; j <= len(b); j++ {
			cur := r[j] // row[i-1][j]
			cost := uint16(1)
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost            // substitution / match
			if d := r[j-1] + 1; d < best { // insertion
				best = d
			}
			if d := cur + 1; d < best { // deletion
				best = d
			}
			prev = cur
			r[j] = best
		}
	}
	return int(r[len(b)])
}

// LevenshteinBoundedScratchU16 is LevenshteinBoundedScratch with a uint16
// DP row (see LevenshteinRunesScratchU16 for the width rationale and the
// overflow guard). Semantics are identical: it returns LD(a, b) if it is
// at most max, reporting whether it was; when the distance exceeds max it
// returns max+1, false.
func LevenshteinBoundedScratchU16(a, b []rune, max int, row *[]uint16) (int, bool) {
	if max < 0 {
		return max + 1, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// Length difference alone is a lower bound on LD.
	if len(b)-len(a) > max {
		return max + 1, false
	}
	if len(a) == 0 {
		return len(b), true
	}
	if len(b) >= u16Limit || max >= u16Limit {
		var tmp []int
		return LevenshteinBoundedScratch(a, b, max, &tmp)
	}
	m := uint16(max)
	r := growRow(*row, len(b)+1)
	*row = r
	for j := 0; j <= len(b) && j <= max; j++ {
		r[j] = uint16(j)
	}
	for j := max + 1; j <= len(b); j++ {
		r[j] = u16Inf
	}
	for i := 1; i <= len(a); i++ {
		lo := i - max
		if lo < 1 {
			lo = 1
		}
		hi := i + max
		if hi > len(b) {
			hi = len(b)
		}
		// prev holds row[i-1][lo-1]; the cell left of the band start.
		prev := uint16(u16Inf)
		if lo-1 >= 0 && lo-1 >= i-1-max {
			prev = r[lo-1]
		}
		if lo == 1 {
			prev = uint16(i - 1) // column 0 of the previous row
		}
		if i-max-1 >= 0 {
			// Column lo-1 is outside the band for row i.
			r[lo-1] = u16Inf
		} else {
			r[0] = uint16(i)
		}
		rowMin := uint16(u16Inf)
		for j := lo; j <= hi; j++ {
			cur := r[j] // row[i-1][j] (u16Inf when outside previous band)
			cost := uint16(1)
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := r[j-1] + 1; d < best {
				best = d
			}
			if d := cur + 1; d < best {
				best = d
			}
			prev = cur
			r[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > m {
			return max + 1, false
		}
	}
	if d := r[len(b)]; d <= m {
		return int(d), true
	}
	return max + 1, false
}

// LevenshteinBoundedScratch is LevenshteinBounded with a caller-owned DP
// row (see LevenshteinRunesScratch). It returns LD(a, b) if it is at most
// max, reporting whether it was; when the distance exceeds max it returns
// max+1, false.
func LevenshteinBoundedScratch(a, b []rune, max int, row *[]int) (int, bool) {
	if max < 0 {
		return max + 1, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// Length difference alone is a lower bound on LD.
	if len(b)-len(a) > max {
		return max + 1, false
	}
	if len(a) == 0 {
		return len(b), true
	}
	// r[j] = edit distance between a[:i] and b[:j], within the band
	// |j - i| <= max. Cells outside the band are conceptually +inf.
	const inf = int(^uint(0) >> 2)
	r := growRow(*row, len(b)+1)
	*row = r
	for j := 0; j <= len(b) && j <= max; j++ {
		r[j] = j
	}
	for j := max + 1; j <= len(b); j++ {
		r[j] = inf
	}
	for i := 1; i <= len(a); i++ {
		lo := i - max
		if lo < 1 {
			lo = 1
		}
		hi := i + max
		if hi > len(b) {
			hi = len(b)
		}
		// prev holds row[i-1][lo-1]; the cell left of the band start.
		prev := inf
		if lo-1 >= 0 && lo-1 >= i-1-max {
			prev = r[lo-1]
		}
		if lo == 1 {
			prev = i - 1 // column 0 of the previous row
		}
		if i-max-1 >= 0 {
			// Column lo-1 is outside the band for row i.
			r[lo-1] = inf
		} else {
			r[0] = i
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cur := r[j] // row[i-1][j] (inf when outside previous band)
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := r[j-1] + 1; d < best {
				best = d
			}
			if d := cur + 1; d < best {
				best = d
			}
			prev = cur
			r[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > max {
			return max + 1, false
		}
	}
	if d := r[len(b)]; d <= max {
		return d, true
	}
	return max + 1, false
}
