package strdist

import "math"

// boundEps guards the float->int floor/ceil conversions in the lemma bounds
// below so that exact rational boundary cases (e.g. T = 0.1 with length 20)
// never round in the pruning direction. All bounds are therefore
// conservative: they can only admit a candidate the exact predicate would
// reject, never the reverse, which keeps the generate-filter-verify pipeline
// lossless.
const boundEps = 1e-9

// floorBound computes floor(v) robustly against float noise just below an
// integer value.
func floorBound(v float64) int {
	return int(math.Floor(v + boundEps))
}

// ceilBound computes ceil(v) robustly against float noise just above an
// integer value.
func ceilBound(v float64) int {
	return int(math.Ceil(v - boundEps))
}

// MaxLDWithin returns the largest Levenshtein distance a pair of strings
// with the given lengths can have while still satisfying NLD <= t. It is
// the tight form of Lemma 8: from Definition 2, NLD <= t is equivalent to
// LD <= t*(|x|+|y|)/(2-t).
//
// Lemma 8's two stated cases are relaxations of this bound (substituting
// |x| <= |y| or |x| <= LD+|y|); using the tight form yields strictly fewer
// candidates while remaining lossless.
func MaxLDWithin(t float64, lenA, lenB int) int {
	if t >= 2 {
		// Degenerate: every pair qualifies; LD is at most max(|x|,|y|).
		if lenA > lenB {
			return lenA
		}
		return lenB
	}
	if t < 0 {
		return -1
	}
	return floorBound(t * float64(lenA+lenB) / (2 - t))
}

// MaxLDWithinLonger is the literal first case of Lemma 8: assuming
// |x| <= |y| = lenLonger, any pair with NLD <= t has
// LD <= floor(2*t*|y|/(2-t)). The TSJ candidate generator uses it when only
// the longer length is known.
func MaxLDWithinLonger(t float64, lenLonger int) int {
	if t >= 2 {
		return lenLonger
	}
	if t < 0 {
		return -1
	}
	return floorBound(2 * t * float64(lenLonger) / (2 - t))
}

// MinLenWithin is Lemma 9: for a pair with NLD <= t and |x| <= |y|, the
// shorter length satisfies |x| >= ceil((1-t)*|y|). Pairs whose shorter
// string is below this bound can be pruned without verification (the
// length-condition of Sec. III-D).
func MinLenWithin(t float64, lenLonger int) int {
	if t >= 1 {
		return 0
	}
	m := ceilBound((1 - t) * float64(lenLonger))
	if m < 0 {
		m = 0
	}
	return m
}

// MaxLenWithin is the dual of Lemma 9: for a pair with NLD <= t and
// |x| <= |y|, the longer length satisfies |y| <= floor(|x|/(1-t)). The
// PassJoin probe enumeration uses it to bound the compatible length range.
func MaxLenWithin(t float64, lenShorter int) int {
	if t >= 1 {
		return math.MaxInt32
	}
	return floorBound(float64(lenShorter) / (1 - t))
}

// MinLDExceed is Lemma 10: for a pair with NLD > t, a lower bound on the
// Levenshtein distance. With lenOther = |y| and |x| <= |y| the bound is
// LD > floor(t*|y|/(2-t)); with |x| > |y| it is LD > floor(2*t*|y|/(2-t)).
// The TSJ distance-lower-bound filter charges at least MinLDExceed+1 edits
// to every unmatched token pair known to have NLD > t.
func MinLDExceed(t float64, lenY int, xLongerThanY bool) int {
	if t <= 0 {
		return 0
	}
	if t >= 2 {
		return math.MaxInt32
	}
	if xLongerThanY {
		return floorBound(2*t*float64(lenY)/(2-t)) + 1
	}
	return floorBound(t*float64(lenY)/(2-t)) + 1
}

// NLDLowerBound is the left half of Lemma 3: for |x| <= |y|,
// NLD(x, y) >= 1 - |x|/|y|. It lets callers prune on lengths alone.
func NLDLowerBound(lenA, lenB int) float64 {
	if lenA > lenB {
		lenA, lenB = lenB, lenA
	}
	if lenB == 0 {
		return 0
	}
	return 1 - float64(lenA)/float64(lenB)
}

// NLDUpperBound is the right half of Lemma 3: for |x| <= |y|,
// NLD(x, y) <= 2 / (|x|/|y| + 2).
func NLDUpperBound(lenA, lenB int) float64 {
	if lenA > lenB {
		lenA, lenB = lenB, lenA
	}
	if lenB == 0 {
		return 0
	}
	return 2 / (float64(lenA)/float64(lenB) + 2)
}
