package strdist

// Levenshtein returns LD(a, b): the minimum number of character-level edit
// operations (insertion, deletion, substitution; Definition 1 in the paper)
// that transform a into b. It is a metric (Lemma 1).
func Levenshtein(a, b string) int {
	return LevenshteinRunes([]rune(a), []rune(b))
}

// LevenshteinRunes is Levenshtein on pre-decoded rune slices.
//
// The implementation is the classic two-row dynamic program over the
// (len(a)+1) x (len(b)+1) edit matrix, O(len(a)*len(b)) time and
// O(min(len(a),len(b))) space.
func LevenshteinRunes(a, b []rune) int {
	// Keep the row as short as possible.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		for j := 1; j <= len(b); j++ {
			cur := row[j] // row[i-1][j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost              // substitution / match
			if d := row[j-1] + 1; d < best { // insertion
				best = d
			}
			if d := cur + 1; d < best { // deletion
				best = d
			}
			prev = cur
			row[j] = best
		}
	}
	return row[len(b)]
}

// LevenshteinBounded returns LD(a, b) if it is at most max, and reports
// whether it was. When the distance exceeds max it returns max+1, false.
// A negative max always reports false.
//
// The implementation is the standard banded (Ukkonen) dynamic program that
// only fills the diagonal band of half-width max, O(max*min(len(a),len(b)))
// time. This is the verifier used by PassJoin, MassJoin and the TSJ
// filters, where max is derived from the NLD threshold via Lemma 8.
func LevenshteinBounded(a, b []rune, max int) (int, bool) {
	if max < 0 {
		return max + 1, false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	// Length difference alone is a lower bound on LD.
	if len(b)-len(a) > max {
		return max + 1, false
	}
	if len(a) == 0 {
		return len(b), true
	}
	// row[j] = edit distance between a[:i] and b[:j], within the band
	// |j - i| <= max. Cells outside the band are conceptually +inf.
	const inf = int(^uint(0) >> 2)
	row := make([]int, len(b)+1)
	for j := 0; j <= len(b) && j <= max; j++ {
		row[j] = j
	}
	for j := max + 1; j <= len(b); j++ {
		row[j] = inf
	}
	for i := 1; i <= len(a); i++ {
		lo := i - max
		if lo < 1 {
			lo = 1
		}
		hi := i + max
		if hi > len(b) {
			hi = len(b)
		}
		// prev holds row[i-1][lo-1]; the cell left of the band start.
		prev := inf
		if lo-1 >= 0 && lo-1 >= i-1-max {
			prev = row[lo-1]
		}
		if lo == 1 {
			prev = i - 1 // column 0 of the previous row
		}
		if i-max-1 >= 0 {
			// Column lo-1 is outside the band for row i.
			row[lo-1] = inf
		} else {
			row[0] = i
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cur := row[j] // row[i-1][j] (inf when outside previous band)
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost
			if d := row[j-1] + 1; d < best {
				best = d
			}
			if d := cur + 1; d < best {
				best = d
			}
			prev = cur
			row[j] = best
			if best < rowMin {
				rowMin = best
			}
		}
		if rowMin > max {
			return max + 1, false
		}
	}
	if d := row[len(b)]; d <= max {
		return d, true
	}
	return max + 1, false
}
