package strdist

// Levenshtein returns LD(a, b): the minimum number of character-level edit
// operations (insertion, deletion, substitution; Definition 1 in the paper)
// that transform a into b. It is a metric (Lemma 1).
func Levenshtein(a, b string) int {
	return LevenshteinRunes([]rune(a), []rune(b))
}

// LevenshteinRunes is Levenshtein on pre-decoded rune slices.
//
// The implementation is the classic two-row dynamic program over the
// (len(a)+1) x (len(b)+1) edit matrix, O(len(a)*len(b)) time and
// O(min(len(a),len(b))) space. Allocation-free callers thread their own DP
// row through LevenshteinRunesScratch.
func LevenshteinRunes(a, b []rune) int {
	var row []int
	return LevenshteinRunesScratch(a, b, &row)
}

// LevenshteinBounded returns LD(a, b) if it is at most max, and reports
// whether it was. When the distance exceeds max it returns max+1, false.
// A negative max always reports false.
//
// The implementation is the standard banded (Ukkonen) dynamic program that
// only fills the diagonal band of half-width max, O(max*min(len(a),len(b)))
// time. This is the verifier used by PassJoin, MassJoin and the TSJ
// filters, where max is derived from the NLD threshold via Lemma 8.
// Allocation-free callers thread their own DP row through
// LevenshteinBoundedScratch.
func LevenshteinBounded(a, b []rune, max int) (int, bool) {
	var row []int
	return LevenshteinBoundedScratch(a, b, max, &row)
}
