package strdist

import (
	"math/rand"
	"testing"
)

// randToken draws a short token over a deliberately tiny alphabet so
// random pairs land at every interesting distance, including 0.
func randToken(rng *rand.Rand, maxLen int) []rune {
	n := rng.Intn(maxLen + 1)
	r := make([]rune, n)
	for i := range r {
		r[i] = rune('a' + rng.Intn(4))
	}
	return r
}

// TestU16RowEquivalence: the uint16-row DP variants agree exactly with
// the []int-row variants — same distance, same within-bound verdict — on
// randomized token pairs across the full range of bounds, including
// max = 0 and bounds far beyond the true distance.
func TestU16RowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	var rowI []int
	var rowU []uint16
	for trial := 0; trial < 5000; trial++ {
		a := randToken(rng, 14)
		b := randToken(rng, 14)
		wantExact := LevenshteinRunesScratch(a, b, &rowI)
		if got := LevenshteinRunesScratchU16(a, b, &rowU); got != wantExact {
			t.Fatalf("unbounded: %q vs %q: u16=%d int=%d", string(a), string(b), got, wantExact)
		}
		for max := 0; max <= wantExact+3; max++ {
			wd, wok := LevenshteinBoundedScratch(a, b, max, &rowI)
			gd, gok := LevenshteinBoundedScratchU16(a, b, max, &rowU)
			if wd != gd || wok != gok {
				t.Fatalf("bounded max=%d: %q vs %q: u16=(%d,%v) int=(%d,%v)",
					max, string(a), string(b), gd, gok, wd, wok)
			}
		}
	}
}

// TestU16RowOverflowFallback: inputs whose longer side exceeds the
// uint16 range take the []int fallback and stay exact (the cell values
// scale with the longer input, so the guard must test it, not the
// shorter one).
func TestU16RowOverflowFallback(t *testing.T) {
	a := make([]rune, 70000)
	for i := range a {
		a[i] = 'x'
	}
	b := []rune("abcdefghij")
	var rowU []uint16
	if got := LevenshteinRunesScratchU16(a, b, &rowU); got != 70000 {
		t.Fatalf("long-side overflow: got %d, want 70000", got)
	}
	var rowI []int
	if gd, _ := LevenshteinBoundedScratchU16(a, b, 70001, &rowU); gd != 70000 {
		wd, _ := LevenshteinBoundedScratch(a, b, 70001, &rowI)
		t.Fatalf("bounded long-side: got %d, int rows say %d", gd, wd)
	}
}

// TestU16RowEquivalenceLong exercises the band/inf handling on longer,
// highly dissimilar inputs where most of the row sits at the sentinel.
func TestU16RowEquivalenceLong(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var rowI []int
	var rowU []uint16
	for trial := 0; trial < 200; trial++ {
		a := randToken(rng, 120)
		b := randToken(rng, 120)
		for _, max := range []int{0, 1, 2, 5, 17, 60, 300} {
			wd, wok := LevenshteinBoundedScratch(a, b, max, &rowI)
			gd, gok := LevenshteinBoundedScratchU16(a, b, max, &rowU)
			if wd != gd || wok != gok {
				t.Fatalf("bounded max=%d len(a)=%d len(b)=%d: u16=(%d,%v) int=(%d,%v)",
					max, len(a), len(b), gd, gok, wd, wok)
			}
		}
	}
}
