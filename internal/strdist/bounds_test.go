package strdist

import (
	"math/rand"
	"testing"
)

func TestNLDKnownValues(t *testing.T) {
	// Paper Sec. II-C: NLD("Thomson","Thompson") = 2*1/(7+8+1) = 1/8,
	// NLD("Alex","Alexa") = 2*1/(4+5+1) = 1/5.
	if got, want := NLD("Thomson", "Thompson"), 0.125; got != want {
		t.Errorf("NLD(Thomson, Thompson) = %v, want %v", got, want)
	}
	if got, want := NLD("Alex", "Alexa"), 0.2; got != want {
		t.Errorf("NLD(Alex, Alexa) = %v, want %v", got, want)
	}
	if got := NLD("", ""); got != 0 {
		t.Errorf("NLD of empty strings = %v, want 0", got)
	}
	// Completely disjoint single chars: LD=1, NLD = 2/(1+1+1) = 2/3.
	if got, want := NLD("a", "b"), 2.0/3.0; got != want {
		t.Errorf("NLD(a, b) = %v, want %v", got, want)
	}
	// Empty vs non-empty is always the maximum distance 1 (Lemma 2 extreme).
	if got := NLD("", "abc"); got != 1 {
		t.Errorf("NLD(\"\", abc) = %v, want 1", got)
	}
}

func TestNLDRangeAndLemma3(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		a, b := randomRunes(rng, 12), randomRunes(rng, 12)
		d := NLDRunes(a, b)
		if d < 0 || d > 1 {
			t.Fatalf("NLD(%q,%q) = %v out of [0,1]", string(a), string(b), d)
		}
		lo := NLDLowerBound(len(a), len(b))
		if d < lo-1e-12 {
			t.Fatalf("Lemma 3 lower bound violated: NLD(%q,%q)=%v < %v", string(a), string(b), d, lo)
		}
		if len(a) > 0 && len(b) > 0 {
			hi := NLDUpperBound(len(a), len(b))
			if d > hi+1e-12 {
				t.Fatalf("Lemma 3 upper bound violated: NLD(%q,%q)=%v > %v", string(a), string(b), d, hi)
			}
		}
	}
}

func TestNLDTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		a, b, c := randomRunes(rng, 10), randomRunes(rng, 10), randomRunes(rng, 10)
		ab, bc, ac := NLDRunes(a, b), NLDRunes(b, c), NLDRunes(a, c)
		if ab+bc < ac-1e-12 {
			t.Fatalf("NLD triangle violated: %v + %v < %v for %q %q %q",
				ab, bc, ac, string(a), string(b), string(c))
		}
	}
}

// TestMaxLDWithinIsTightAndSound checks Lemma 8 style bounds: every pair
// within NLD t has LD <= MaxLDWithin, and the bound is achievable (there is
// no smaller universally-correct bound for the rearranged inequality).
func TestMaxLDWithinIsTightAndSound(t *testing.T) {
	thresholds := []float64{0.025, 0.05, 0.1, 0.15, 0.2, 0.225, 0.5}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		a, b := randomRunes(rng, 12), randomRunes(rng, 12)
		d := LevenshteinRunes(a, b)
		for _, th := range thresholds {
			if WithinNLD(d, len(a), len(b), th) {
				if max := MaxLDWithin(th, len(a), len(b)); d > max {
					t.Fatalf("MaxLDWithin(%v, %d, %d) = %d but admissible pair has LD %d",
						th, len(a), len(b), max, d)
				}
				if max := MaxLDWithinLonger(th, maxInt(len(a), len(b))); d > max {
					t.Fatalf("MaxLDWithinLonger(%v, %d) = %d but admissible pair has LD %d",
						th, maxInt(len(a), len(b)), max, d)
				}
			}
		}
	}
	// Exact rational boundary: T = 0.1, |x| = |y| = 19: LD <= 0.1*38/1.9 = 2.
	if got := MaxLDWithin(0.1, 19, 19); got != 2 {
		t.Errorf("MaxLDWithin(0.1,19,19) = %d, want 2", got)
	}
	// Paper's Lemma 8 first case: floor(2*T*|y|/(2-T)).
	if got := MaxLDWithinLonger(0.1, 19); got != 2 {
		t.Errorf("MaxLDWithinLonger(0.1,19) = %d, want 2", got)
	}
}

func TestMinLenWithinLemma9(t *testing.T) {
	thresholds := []float64{0.025, 0.1, 0.225, 0.4}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		a, b := randomRunes(rng, 12), randomRunes(rng, 12)
		if len(a) > len(b) {
			a, b = b, a
		}
		d := LevenshteinRunes(a, b)
		for _, th := range thresholds {
			if WithinNLD(d, len(a), len(b), th) {
				if min := MinLenWithin(th, len(b)); len(a) < min {
					t.Fatalf("Lemma 9 violated: |x|=%d < MinLenWithin(%v,%d)=%d for pair %q,%q",
						len(a), th, len(b), min, string(a), string(b))
				}
				if max := MaxLenWithin(th, len(a)); len(b) > max {
					t.Fatalf("MaxLenWithin inconsistent: |y|=%d > %d", len(b), max)
				}
			}
		}
	}
	// ceil((1-0.1)*10) = 9.
	if got := MinLenWithin(0.1, 10); got != 9 {
		t.Errorf("MinLenWithin(0.1,10) = %d, want 9", got)
	}
}

func TestMinLDExceedLemma10(t *testing.T) {
	thresholds := []float64{0.025, 0.1, 0.225, 0.4}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 3000; i++ {
		x, y := randomRunes(rng, 12), randomRunes(rng, 12)
		d := LevenshteinRunes(x, y)
		for _, th := range thresholds {
			if !WithinNLD(d, len(x), len(y), th) {
				// Lemma 10: LD must be at least MinLDExceed.
				if lb := MinLDExceed(th, len(y), len(x) > len(y)); d < lb {
					t.Fatalf("Lemma 10 violated: LD(%q,%q)=%d < %d (t=%v)",
						string(x), string(y), d, lb, th)
				}
			}
		}
	}
}

func TestWithinNLDConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		a, b := randomRunes(rng, 12), randomRunes(rng, 12)
		for _, th := range []float64{0.05, 0.1, 0.2} {
			want := NLDRunes(a, b) <= th+1e-12
			got := WithinNLDRunes(a, b, th)
			// The two predicates may only disagree within float wobble of
			// the threshold itself; verify via the exact integer form.
			d := LevenshteinRunes(a, b)
			exact := WithinNLD(d, len(a), len(b), th)
			if got != exact {
				t.Fatalf("WithinNLDRunes(%q,%q,%v)=%v disagrees with exact form %v (NLD=%v, want~%v)",
					string(a), string(b), th, got, exact, NLDRunes(a, b), want)
			}
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
