package strdist

import "testing"

// clampRunes bounds a fuzz string to max runes so each execution stays
// fast; content is untouched (the U16 path must handle any rune,
// including astral-plane ones, by construction).
func clampRunes(s string, max int) []rune {
	r := []rune(s)
	if len(r) > max {
		r = r[:max]
	}
	return r
}

// FuzzLevenshteinBoundedU16 cross-checks the banded uint16 verifier
// core — the DP the batch kernel's scalar spill path and the bounded
// verifier both run per token pair — against the exact full-matrix
// oracle on arbitrary rune pairs and budgets: within budget the bounded
// distance must equal the exact one, over budget it must report
// (max+1, false), and the reused scratch row must not leak state
// between calls. The checked-in seeds double as a regression corpus in
// plain `go test`; CI additionally runs a bounded `-fuzz` exploration.
func FuzzLevenshteinBoundedU16(f *testing.F) {
	f.Add("barak obama", "obama barack", uint16(3))
	f.Add("kernel", "colonel", uint16(0))
	f.Add("", "nonempty", uint16(4))
	f.Add("é✓ürich", "z\U0001F600rich", uint16(5))
	f.Add("aaaaaaaaaaaaaaaa", "ab", uint16(2))
	f.Add("mississippi", "mississippi", uint16(65535))
	f.Fuzz(func(t *testing.T, a, b string, maxSeed uint16) {
		ar := clampRunes(a, 48)
		br := clampRunes(b, 48)
		max := int(maxSeed % 96)
		if maxSeed%97 == 0 {
			max = int(maxSeed) // exercise the wide-budget int fallback
		}
		exact := LevenshteinRunes(ar, br)

		var row []uint16
		d, ok := LevenshteinBoundedScratchU16(ar, br, max, &row)
		if exact <= max {
			if !ok || d != exact {
				t.Fatalf("U16(%q, %q, %d) = (%d, %v), want (%d, true)", a, b, max, d, ok, exact)
			}
		} else if ok || d != max+1 {
			t.Fatalf("U16(%q, %q, %d) = (%d, %v), want (%d, false); exact %d", a, b, max, d, ok, max+1, exact)
		}

		// The scratch row is reused dirty across pairs in production;
		// a second call over the same row must agree with the first.
		d2, ok2 := LevenshteinBoundedScratchU16(ar, br, max, &row)
		if d2 != d || ok2 != ok {
			t.Fatalf("dirty-row rerun (%d, %v) != first (%d, %v) on (%q, %q, %d)", d2, ok2, d, ok, a, b, max)
		}

		// The int-row variant and the allocating wrapper share the
		// contract; all three must agree verdict for verdict.
		var irow []int
		di, oki := LevenshteinBoundedScratch(ar, br, max, &irow)
		db, okb := LevenshteinBounded(ar, br, max)
		if di != d || oki != ok || db != d || okb != ok {
			t.Fatalf("bounded variants disagree on (%q, %q, %d): u16 (%d, %v), int (%d, %v), alloc (%d, %v)",
				a, b, max, d, ok, di, oki, db, okb)
		}
	})
}
