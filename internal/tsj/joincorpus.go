package tsj

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/mapreduce"
	"repro/internal/massjoin"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// JoinCorpus performs the bipartite NSLD join of a probe set against the
// live strings of a persistent corpus, reusing the corpus's stored
// filter state for its side of the join instead of rebuilding any of it
// (the bipartite counterpart of SelfJoinCorpus):
//
//   - the corpus side's token document frequencies are read from the
//     corpus; the probe side's are counted in one pass over the probes
//     (so the MaxTokenFreq cutoff sees exactly the combined frequencies
//     a from-scratch Join would compute);
//   - the combined prefix order extends the corpus's epoch-stamped
//     rarest-first order with probe-only tokens at its tail — any fixed
//     total order is lossless (prefilter.NewIndexFromRanked), so the
//     stored order serves unchanged and only the probes' member lists
//     are rank-sorted;
//   - the similar-token expansion walks the corpus's stored inverted
//     postings for the corpus side (prefix-restricted postings are
//     re-derived only when the segment prefix filter is on, as in
//     SelfJoinCorpus).
//
// Results are exactly Join's over (live corpus strings, probes):
// Result.A is a corpus StringID, Result.B indexes probes. Tombstoned
// corpus strings neither generate nor receive.
func JoinCorpus(pc *corpus.Corpus, probes []token.TokenizedString, opts Options) ([]Result, *Stats, error) {
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, nil, errors.New("tsj: threshold must be in [0, 1)")
	}
	v := pc.View()
	pc.NoteJoin()
	cc := v.TC
	n := cc.NumStrings()
	nt := cc.NumTokens()
	nr := token.StringID(n)
	st := &Stats{}

	// ---- Combined view ---------------------------------------------------
	// Corpus strings keep their ids and token ids; probes occupy
	// [n, n+m) with probe-only tokens interned at the tail of the token
	// space. Probe member lists iterate the sorted token multiset, so the
	// lexicographic-member-order invariant of NewCorpusView holds.
	m := len(probes)
	strs := make([]token.TokenizedString, n+m)
	copy(strs, cc.Strings)
	copy(strs[n:], probes)
	tokens := append(make([]string, 0, nt), cc.Tokens...)
	tokenRunes := append(make([][]rune, 0, nt), cc.TokenRunes...)
	freq := append(make([]int32, 0, nt), cc.Freq...)
	members := make([][]token.TokenID, n+m)
	copy(members, cc.Members)
	extra := make(map[string]token.TokenID)
	for i := range probes {
		ts := &strs[n+i]
		mem := make([]token.TokenID, 0, ts.Count())
		for j, tok := range ts.Tokens {
			if j > 0 && tok == ts.Tokens[j-1] {
				continue
			}
			id, ok := cc.TokenIDOf(tok)
			if !ok {
				id, ok = extra[tok]
				if !ok {
					id = token.TokenID(len(tokens))
					extra[tok] = id
					tokens = append(tokens, tok)
					tokenRunes = append(tokenRunes, []rune(tok))
					freq = append(freq, 0)
				}
			}
			mem = append(mem, id)
			freq[id]++
		}
		members[n+i] = mem
	}
	c := token.NewCorpusView(strs, tokens, tokenRunes, freq, members)

	ver := newVerifier(c, opts)
	engCfg := func(name string) mapreduce.Config {
		return mapreduce.Config{Name: name, MapTasks: opts.MapTasks, Parallelism: opts.Parallelism}
	}

	// Token cutoff over the combined frequencies (corpus live + probe) —
	// the stored equivalent of Join's Job 0.
	dropped := make([]bool, len(tokens))
	if opts.MaxTokenFreq > 0 {
		for tid, f := range freq {
			if int(f) > opts.MaxTokenFreq {
				dropped[tid] = true
				st.DroppedTokens++
			}
		}
	}
	st.KeptTokens = len(tokens) - st.DroppedTokens

	// Live ids: alive corpus strings plus every probe.
	alive := make([]bool, n+m)
	copy(alive, v.Alive)
	for i := n; i < n+m; i++ {
		alive[i] = true
	}
	sids := make([]token.StringID, 0, v.Live+m)
	for i := range alive {
		if alive[i] {
			sids = append(sids, token.StringID(i))
		}
	}

	// Preamble: token-less strings pair across the sides at NSLD 0.
	var results []Result
	var emptyR, emptyP []token.StringID
	for _, sid := range sids {
		if len(members[sid]) == 0 {
			if sid < nr {
				emptyR = append(emptyR, sid)
			} else {
				emptyP = append(emptyP, sid)
			}
		}
	}
	for _, a := range emptyR {
		for _, b := range emptyP {
			results = append(results, Result{A: a, B: b})
			st.EmptyStringPairs++
		}
	}

	// ---- Job 1: shared-token candidates from the stored order ------------
	wantShared, wantSeg := prefixFilterWants(opts)
	var pf, pfSeg *prefilter.Index
	if wantShared || wantSeg {
		// Extend the stored rank with tail ranks for probe-only tokens
		// (first-appearance order — deterministic for a given probe set).
		rank := make([]int32, len(tokens))
		next := int32(0)
		for tid, r := range v.Rank {
			rank[tid] = r
			if r >= next {
				next = r + 1
			}
		}
		for tid := nt; tid < len(tokens); tid++ {
			rank[tid] = next
			next++
		}
		ranked := make([][]token.TokenID, n+m)
		copy(ranked, v.Ranked)
		for i := n; i < n+m; i++ {
			rl := append([]token.TokenID(nil), members[i]...)
			sort.Slice(rl, func(a, b int) bool { return rank[rl[a]] < rank[rl[b]] })
			ranked[i] = rl
		}
		ix := prefilter.NewIndexFromRanked(c, dropped, rank, ranked, alive, opts.Threshold)
		if wantShared {
			pf = ix
		}
		if wantSeg {
			pfSeg = ix
		}
	}
	var prefixPruned atomic.Int64
	sharedCands, st1 := mapreduce.Run(engCfg("tsj-joincorpus-shared-token"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, token.StringID]) {
			if pf != nil {
				for _, tid := range pf.Prefix(sid) {
					ctx.Emit(tid, sid)
				}
				return
			}
			for _, tid := range c.Members[sid] {
				if !dropped[tid] {
					ctx.Emit(tid, sid)
				}
			}
		},
		func(tid token.TokenID, vals []token.StringID, ctx *mapreduce.ReduceCtx[uint64]) {
			var left, right []token.StringID
			for _, val := range vals {
				if val < nr {
					left = append(left, val)
				} else {
					right = append(right, val)
				}
			}
			sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
			sort.Slice(right, func(i, j int) bool { return right[i] < right[j] })
			var pruned int64
			for _, a := range left {
				for _, b := range right {
					if pf != nil {
						emit, prn := pf.Admit(tid, a, b)
						if !emit {
							if prn {
								pruned++
							}
							continue
						}
					}
					ctx.Emit(pairKey(a, b))
				}
			}
			if pruned > 0 {
				prefixPruned.Add(pruned)
			}
			ctx.AddCost(float64(len(left)) * float64(len(right)) * 0.05)
		},
	)
	st.Pipeline.Add(st1)
	st.SharedTokenCandidates = int64(len(sharedCands))
	st.PrefixPruned = prefixPruned.Load()
	candidates := sharedCands

	// ---- Jobs 2a+2b: similar-token candidates over stored postings ------
	if opts.Matching == FuzzyTokenMatching {
		similar := similarTokenCandidatesCorpusProbe(c, nr, dropped, v.Postings, alive, pfSeg, opts, st)
		candidates = append(candidates, similar...)
	}

	// ---- Job 3: de-duplicate + filter + verify ---------------------------
	// Every candidate is cross-side with the corpus id low, so verify
	// orientation matches Join's (id-ascending) and Result.A is always
	// the corpus side.
	verified := dedupVerify(candidates, ver, opts, engCfg, st)

	results = append(results, verified...)
	for i := range results {
		results[i].B -= nr // probe side re-based to a probes index
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].A != results[j].A {
			return results[i].A < results[j].A
		}
		return results[i].B < results[j].B
	})
	return results, st, nil
}

// similarTokenCandidatesCorpusProbe is the bipartite counterpart of
// similarTokenCandidatesPostings: the corpus-side token space joins the
// probe-side token space with the bipartite MassJoin, and similar token
// pairs expand through the corpus's STORED inverted postings on the
// corpus side (built fresh only for the probes). Stored posting entries
// may reference tombstoned or post-capture ids, so the expansion bounds
// them to the capture's id space and filters by the alive mask. With the
// segment prefix filter on, both sides' postings are instead re-derived
// from prefix membership, exactly as in the self-join (the losslessness
// argument is similarTokenCandidatesPostings's, with Job 1's bipartite
// reducers owning every shared-kept-token pair).
func similarTokenCandidatesCorpusProbe(c *token.Corpus, nr token.StringID, dropped []bool,
	corpusPostings [][]token.StringID, alive []bool, pfSeg *prefilter.Index, opts Options, st *Stats) []uint64 {
	total := c.NumTokens()
	// skipCorpus filters stored corpus-side posting entries: ids at or
	// past the capture boundary (post-capture appends) and tombstones.
	skipCorpus := func(sid token.StringID) bool {
		return sid >= nr || !alive[sid]
	}
	postR := make([][]token.StringID, total)
	postP := make([][]token.StringID, total)
	if pfSeg != nil {
		var pruned int64
		for sid := range c.Members {
			s := token.StringID(sid)
			if !alive[sid] {
				continue
			}
			pref := pfSeg.Prefix(s)
			pruned += int64(pfSeg.Distinct(s) - len(pref))
			for _, tid := range pref {
				if s < nr {
					postR[tid] = append(postR[tid], s)
				} else {
					postP[tid] = append(postP[tid], s)
				}
			}
		}
		st.SegPrefixPruned = pruned
	} else {
		for tid := 0; tid < len(corpusPostings) && tid < total; tid++ {
			postR[tid] = corpusPostings[tid]
		}
		for sid := int(nr); sid < len(c.Members); sid++ {
			for _, tid := range c.Members[sid] {
				postP[tid] = append(postP[tid], token.StringID(sid))
			}
		}
	}

	// Token spaces per side (kept tokens with postings on that side). A
	// stored corpus-side list whose entries are all dead only costs NLD
	// work — its expansions are filtered out below.
	var rIdx, pIdx []token.TokenID
	var rRunes, pRunes [][]rune
	for tid := 0; tid < total; tid++ {
		if dropped[tid] {
			continue
		}
		if len(postR[tid]) > 0 {
			rIdx = append(rIdx, token.TokenID(tid))
			rRunes = append(rRunes, c.TokenRunes[tid])
		}
		if len(postP[tid]) > 0 {
			pIdx = append(pIdx, token.TokenID(tid))
			pRunes = append(pRunes, c.TokenRunes[tid])
		}
	}

	mjCfg := massjoin.Config{
		MultiMatchAware: opts.MultiMatchAware,
		MapTasks:        opts.MapTasks,
		Parallelism:     opts.Parallelism,
		NamePrefix:      "tsj-joincorpus-similar-token",
	}
	pairs, pipe := massjoin.JoinNLD(rRunes, pRunes, opts.Threshold, mjCfg)
	st.Pipeline.Merge(pipe)
	st.SimilarTokenPairs = int64(len(pairs))

	// Combiner: collapse duplicate candidates at expansion time (see the
	// self-join counterpart for the rationale).
	seen := make(map[uint64]struct{})
	var cands []uint64
	var raw int64
	for _, p := range pairs {
		ta, tb := rIdx[p.A], pIdx[p.B]
		if ta == tb {
			// The identical token on both sides: covered by Job 1.
			continue
		}
		for _, sa := range postR[ta] {
			if skipCorpus(sa) {
				continue
			}
			for _, sb := range postP[tb] {
				raw++
				k := pairKey(sa, sb)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				cands = append(cands, k)
			}
		}
	}
	st.SimilarTokenCandidates = raw
	return cands
}
