package tsj

import (
	"reflect"
	"testing"

	"repro/internal/namegen"
	"repro/internal/token"
)

// TestBoundedEquivalenceSelfJoin: the batch self-join produces identical
// result sets with bounded verification on (with and without the
// token-LD cache) and off, at several thresholds under both aligners.
func TestBoundedEquivalenceSelfJoin(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 21, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, th := range []float64{0.1, 0.25, 0.4} {
		for _, al := range []Aligning{HungarianAligning, GreedyAligning} {
			opts := DefaultOptions()
			opts.Threshold = th
			opts.Aligning = al

			opts.DisableBoundedVerify = true
			exact, _, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}

			opts.DisableBoundedVerify = false
			bounded, bst, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exact, bounded) {
				t.Fatalf("t=%.2f %v: bounded results differ (%d vs %d pairs)",
					th, al, len(bounded), len(exact))
			}
			if bst.BudgetPruned == 0 {
				t.Fatalf("t=%.2f %v: BudgetPruned not populated (verified=%d)",
					th, al, bst.Verified)
			}

			opts.DisableTokenLDCache = true
			nocache, nst, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisableTokenLDCache = false
			if !reflect.DeepEqual(exact, nocache) {
				t.Fatalf("t=%.2f %v: cache-less bounded results differ", th, al)
			}
			if nst.BudgetPruned != bst.BudgetPruned {
				t.Fatalf("t=%.2f %v: cache changed BudgetPruned (%d vs %d)",
					th, al, nst.BudgetPruned, bst.BudgetPruned)
			}
		}
	}
}

// TestBoundedEquivalenceBipartiteJoin is the bipartite counterpart.
func TestBoundedEquivalenceBipartiteJoin(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 22, NumNames: 240})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	boundary := 120
	for _, th := range []float64{0.15, 0.3} {
		opts := DefaultOptions()
		opts.Threshold = th

		opts.DisableBoundedVerify = true
		exact, _, err := Join(c, boundary, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DisableBoundedVerify = false
		bounded, bst, err := Join(c, boundary, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(exact, bounded) {
			t.Fatalf("t=%.2f: bounded bipartite results differ (%d vs %d pairs)",
				th, len(bounded), len(exact))
		}
		if bst.BudgetPruned == 0 {
			t.Fatalf("t=%.2f: BudgetPruned not populated", th)
		}
	}
}

// TestBudgetPrunedAccounting: budget-pruned pairs stay inside the
// Verified count (they reached verification), the dedup arithmetic still
// balances, and disabling bounded verification zeroes the counter.
func TestBudgetPrunedAccounting(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 23, NumNames: 250})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	opts := DefaultOptions()
	opts.Threshold = 0.2

	_, st, err := SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetPruned == 0 || st.BudgetPruned > st.Verified {
		t.Fatalf("BudgetPruned=%d out of range (Verified=%d)", st.BudgetPruned, st.Verified)
	}
	if st.DedupedCandidates != st.LengthPruned+st.LBPruned+st.Verified {
		t.Fatalf("dedup arithmetic broken: %d != %d+%d+%d",
			st.DedupedCandidates, st.LengthPruned, st.LBPruned, st.Verified)
	}

	opts.DisableBoundedVerify = true
	_, st, err = SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetPruned != 0 {
		t.Fatalf("BudgetPruned=%d with bounded verification disabled", st.BudgetPruned)
	}
}
