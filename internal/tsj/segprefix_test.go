package tsj

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/namegen"
	"repro/internal/token"
)

// TestSegmentPrefixEquivalenceSelfJoin: the batch self-join returns
// identical result sets with the segment prefix filter on and off, at
// several thresholds, under both aligners and with the shared-token
// prefix filter both on and off — and the filter actually shrinks the
// similar-token candidate stream.
func TestSegmentPrefixEquivalenceSelfJoin(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 41, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	prunedSomewhere := false
	shrankSomewhere := false
	for _, th := range []float64{0.1, 0.25, 0.4} {
		for _, al := range []Aligning{HungarianAligning, GreedyAligning} {
			for _, sharedOff := range []bool{false, true} {
				opts := DefaultOptions()
				opts.Threshold = th
				opts.Aligning = al
				opts.DisablePrefixFilter = sharedOff

				opts.DisableSegmentPrefixFilter = true
				plain, pst, err := SelfJoin(c, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.DisableSegmentPrefixFilter = false
				filtered, fst, err := SelfJoin(c, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, filtered) {
					t.Fatalf("t=%.2f %v sharedOff=%v: segment-filtered results differ (%d vs %d pairs)",
						th, al, sharedOff, len(filtered), len(plain))
				}
				if pst.SegPrefixPruned != 0 {
					t.Fatalf("t=%.2f: SegPrefixPruned=%d with the filter disabled", th, pst.SegPrefixPruned)
				}
				if fst.SegPrefixPruned > 0 {
					prunedSomewhere = true
				}
				if fst.SimilarTokenCandidates < pst.SimilarTokenCandidates {
					shrankSomewhere = true
				}
				if fst.SimilarTokenCandidates > pst.SimilarTokenCandidates {
					t.Fatalf("t=%.2f %v: filtering grew similar-token candidates (%d vs %d)",
						th, al, fst.SimilarTokenCandidates, pst.SimilarTokenCandidates)
				}
			}
		}
	}
	if !prunedSomewhere {
		t.Fatal("SegPrefixPruned never populated across the sweep")
	}
	if !shrankSomewhere {
		t.Fatal("the segment prefix filter never shrank the similar-token candidate stream")
	}
}

// TestSegmentPrefixEquivalenceBipartite is the bipartite counterpart:
// both dedup strategies, three thresholds, cross-side postings restricted
// on both sides.
func TestSegmentPrefixEquivalenceBipartite(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 42, NumNames: 240})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	boundary := 120
	for _, th := range []float64{0.1, 0.2, 0.35} {
		for _, dd := range []Dedup{GroupOnOneString, GroupOnBothStrings} {
			opts := DefaultOptions()
			opts.Threshold = th
			opts.Dedup = dd

			opts.DisableSegmentPrefixFilter = true
			plain, pst, err := Join(c, boundary, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisableSegmentPrefixFilter = false
			filtered, fst, err := Join(c, boundary, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("t=%.2f %v: segment-filtered bipartite results differ (%d vs %d pairs)",
					th, dd, len(filtered), len(plain))
			}
			if fst.SimilarTokenCandidates > pst.SimilarTokenCandidates {
				t.Fatalf("t=%.2f %v: filtering grew similar-token candidates (%d vs %d)",
					th, dd, fst.SimilarTokenCandidates, pst.SimilarTokenCandidates)
			}
		}
	}
}

// TestSegmentPrefixEquivalenceMaxFreqCutoff: the filter composes with the
// high-frequency-token cutoff M — the similar-token join requires both
// witness tokens kept, and a pair with no shared kept token has both
// prefixes untruncated over kept tokens, so the (approximate) result set
// under a finite M is unchanged.
func TestSegmentPrefixEquivalenceMaxFreqCutoff(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 43, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, maxFreq := range []int{3, 10, 50} {
		for _, th := range []float64{0.15, 0.25, 0.35} {
			opts := DefaultOptions()
			opts.Threshold = th
			opts.MaxTokenFreq = maxFreq

			opts.DisableSegmentPrefixFilter = true
			plain, _, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisableSegmentPrefixFilter = false
			filtered, _, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("M=%d t=%.2f: segment-filtered results differ under the cutoff (%d vs %d pairs)",
					maxFreq, th, len(filtered), len(plain))
			}
		}
	}
}

// TestSegmentPrefixEquivalenceFrequencyTies: adversarial corpus where
// every token has the same document frequency, so prefix membership — and
// with it the similar-token postings — is decided entirely by the
// deterministic tie-break. The join must stay exact and reproducible.
func TestSegmentPrefixEquivalenceFrequencyTies(t *testing.T) {
	words := []string{
		"alpha", "bravo", "carol", "delta", "echos", "fotox",
		"golfy", "hotel", "india", "julie", "kilos", "limas",
	}
	var names []string
	n := len(words)
	for i := 0; i < n; i++ {
		names = append(names, words[i]+" "+words[(i+1)%n]+" "+words[(i+2)%n])
	}
	// Near-duplicates reachable only through similar (non-identical)
	// tokens exercise the pruned path under pure tie-breaking.
	names = append(names, "alpho bravx carot", "deltq echoz fotoy")
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, th := range []float64{0.15, 0.3, 0.45} {
		opts := DefaultOptions()
		opts.Threshold = th

		opts.DisableSegmentPrefixFilter = true
		plain, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DisableSegmentPrefixFilter = false
		a, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, a) {
			t.Fatalf("t=%.2f: tie-broken segment-filtered join differs from unfiltered", th)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("t=%.2f: tie-broken segment-filtered join not reproducible", th)
		}
	}
}

// TestSegmentPrefixEquivalenceCorpus: the persistent-corpus join — whose
// prefixes are sliced from the stored epoch-stamped order, arbitrarily
// stale relative to live frequencies, with deletes in play — returns
// identical results with the segment prefix filter on and off.
func TestSegmentPrefixEquivalenceCorpus(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 44, NumNames: 260})
	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{DisableSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	for _, n := range names {
		if _, err := pc.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []token.StringID{3, 77, 130} {
		if err := pc.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for _, th := range []float64{0.1, 0.2, 0.35} {
		opts := DefaultOptions()
		opts.Threshold = th

		opts.DisableSegmentPrefixFilter = true
		plain, _, err := SelfJoinCorpus(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DisableSegmentPrefixFilter = false
		filtered, _, err := SelfJoinCorpus(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, filtered) {
			t.Fatalf("t=%.2f: segment-filtered corpus join differs (%d vs %d pairs)",
				th, len(filtered), len(plain))
		}
	}
}
