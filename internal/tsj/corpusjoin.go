package tsj

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/corpus"
	"repro/internal/mapreduce"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// SelfJoinCorpus performs the NSLD self-join of a persistent corpus,
// reusing its stored filter state instead of rebuilding any of it:
//
//   - token document frequencies are read from the corpus (no
//     token-frequency job);
//   - the global rarest-first order and the per-string rank-sorted member
//     lists come from the corpus's epoch-stamped incremental maintenance,
//     and the threshold's prefixes are sliced from them
//     (prefilter.NewIndexFromRanked) — no global sort, no per-string
//     sort;
//   - the similar-token expansion walks the corpus's inverted postings.
//
// Consequently repeated joins at different thresholds on one opened
// corpus perform zero frequency-order rebuilds (corpus
// Stats.OrderRebuilds is untouched by joins — only Adds can re-rank),
// which is the property TestSelfJoinCorpusZeroRebuilds asserts.
//
// Results are exactly SelfJoin's over the live (non-deleted) strings,
// with the corpus's StringIDs: the prefix filter is lossless under any
// fixed total order (see prefilter.NewIndexFromRanked), so even a
// maximally stale stored order — frequencies drifted arbitrarily far
// since the last re-rank — changes nothing but pruning power
// (TestPrefixEquivalenceStaleCorpusOrder is the property test).
func SelfJoinCorpus(pc *corpus.Corpus, opts Options) ([]Result, *Stats, error) {
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, nil, errors.New("tsj: threshold must be in [0, 1)")
	}
	v := pc.View()
	pc.NoteJoin()
	c := v.TC
	st := &Stats{}
	ver := newVerifier(c, opts)
	engCfg := func(name string) mapreduce.Config {
		return mapreduce.Config{Name: name, MapTasks: opts.MapTasks, Parallelism: opts.Parallelism}
	}

	// Live string ids only: tombstones neither generate nor receive.
	sids := make([]token.StringID, 0, v.Live)
	for i := range v.Alive {
		if v.Alive[i] {
			sids = append(sids, token.StringID(i))
		}
	}

	// Token cutoff from the corpus's maintained live frequencies — the
	// stored equivalent of Job 0.
	var dropped []bool
	if c.NumTokens() > 0 {
		dropped = make([]bool, c.NumTokens())
	}
	if opts.MaxTokenFreq > 0 {
		for tid, f := range c.Freq {
			if int(f) > opts.MaxTokenFreq {
				dropped[tid] = true
				st.DroppedTokens++
			}
		}
	}
	st.KeptTokens = c.NumTokens() - st.DroppedTokens

	// Preamble: pairs of live token-less strings (NSLD 0).
	var results []Result
	var empties []token.StringID
	for _, sid := range sids {
		if len(c.Members[sid]) == 0 {
			empties = append(empties, sid)
		}
	}
	for i := 0; i < len(empties); i++ {
		for j := i + 1; j < len(empties); j++ {
			results = append(results, Result{A: empties[i], B: empties[j]})
			st.EmptyStringPairs++
		}
	}

	// ---- Job 1: shared-token candidates from stored prefixes ------------
	// As in SelfJoin, one prefix index serves both Job 1 and Job 2's
	// segment prefix restriction (prefixFilterWants) — here sliced from
	// the corpus's stored epoch-stamped order with zero sorts.
	wantShared, wantSeg := prefixFilterWants(opts)
	var pf, pfSeg *prefilter.Index
	if wantShared || wantSeg {
		ix := prefilter.NewIndexFromRanked(c, dropped, v.Rank, v.Ranked, v.Alive, opts.Threshold)
		if wantShared {
			pf = ix
		}
		if wantSeg {
			pfSeg = ix
		}
	}
	var prefixPruned atomic.Int64
	sharedCands, st1 := mapreduce.Run(engCfg("tsj-corpus-shared-token"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, token.StringID]) {
			if pf != nil {
				for _, tid := range pf.Prefix(sid) {
					ctx.Emit(tid, sid)
				}
				return
			}
			for _, tid := range c.Members[sid] {
				if !dropped[tid] {
					ctx.Emit(tid, sid)
				}
			}
		},
		func(tid token.TokenID, vals []token.StringID, ctx *mapreduce.ReduceCtx[uint64]) {
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			var pruned int64
			for i := 0; i < len(vals); i++ {
				for j := i + 1; j < len(vals); j++ {
					if pf != nil {
						emit, prn := pf.Admit(tid, vals[i], vals[j])
						if !emit {
							if prn {
								pruned++
							}
							continue
						}
					}
					ctx.Emit(pairKey(vals[i], vals[j]))
				}
			}
			if pruned > 0 {
				prefixPruned.Add(pruned)
			}
			n := float64(len(vals))
			ctx.AddCost(n * n * 0.05)
		},
	)
	st.Pipeline.Add(st1)
	st.SharedTokenCandidates = int64(len(sharedCands))
	st.PrefixPruned = prefixPruned.Load()
	candidates := sharedCands

	// ---- Jobs 2a+2b: similar-token candidates over stored postings ------
	if opts.Matching == FuzzyTokenMatching {
		similar := similarTokenCandidatesPostings(c, dropped, v.Postings, v.Alive, pfSeg, opts, st)
		candidates = append(candidates, similar...)
	}

	// ---- Job 3: de-duplicate + filter + verify ---------------------------
	verified := dedupVerify(candidates, ver, opts, engCfg, st)

	results = append(results, verified...)
	sort.Slice(results, func(i, j int) bool {
		if results[i].A != results[j].A {
			return results[i].A < results[j].A
		}
		return results[i].B < results[j].B
	})
	return results, st, nil
}
