package tsj

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/corpus"
	"repro/internal/namegen"
	"repro/internal/token"
)

// joinCorpusReference computes the expected JoinCorpus result the slow
// way: a from-scratch combined corpus of (live corpus strings, probes)
// run through the per-call bipartite Join, with reference ids mapped
// back into corpus StringIDs / probe indices.
func joinCorpusReference(t *testing.T, pc *corpus.Corpus, probes []token.TokenizedString, opts Options) []Result {
	t.Helper()
	v := pc.View()
	var live []token.TokenizedString
	var liveIDs []token.StringID
	for sid, ok := range v.Alive {
		if ok {
			live = append(live, v.TC.Strings[sid])
			liveIDs = append(liveIDs, token.StringID(sid))
		}
	}
	combined := token.BuildCorpusFromTokenized(append(append([]token.TokenizedString(nil), live...), probes...))
	want, _, err := Join(combined, len(live), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		return nil
	}
	mapped := make([]Result, len(want))
	for i, r := range want {
		mapped[i] = Result{
			A:    liveIDs[r.A],
			B:    r.B - token.StringID(len(live)),
			SLD:  r.SLD,
			NSLD: r.NSLD,
		}
	}
	sort.Slice(mapped, func(i, j int) bool {
		if mapped[i].A != mapped[j].A {
			return mapped[i].A < mapped[j].A
		}
		return mapped[i].B < mapped[j].B
	})
	return mapped
}

// TestJoinCorpusEquivalence is the acceptance property of the
// corpus-backed bipartite join: probing an opened corpus — including one
// with tombstones — returns byte-identical results to the per-call Join
// over (live corpus strings, probes), across thresholds, matching modes
// and the frequency cutoff, while reusing the stored order (zero
// rebuilds) and postings.
func TestJoinCorpusEquivalence(t *testing.T) {
	all := namegen.Generate(namegen.Config{Seed: 71, NumNames: 380})
	names, probeNames := all[:260], all[260:] // one pool, so cross-set similarity exists
	probes := make([]token.TokenizedString, len(probeNames))
	for i, s := range probeNames {
		probes[i] = token.WhitespaceAndPunct(s)
	}
	pc := openSeeded(t, names, corpus.Options{})
	for _, sid := range []int{0, 3, 99, 200, 259} {
		if err := pc.Delete(token.StringID(sid)); err != nil {
			t.Fatal(err)
		}
	}
	before := pc.Stats()

	nonEmpty := false
	for _, th := range []float64{0.1, 0.3} {
		for _, mt := range []Matching{FuzzyTokenMatching, ExactTokenMatching} {
			for _, maxFreq := range []int{0, 8} {
				opts := DefaultOptions()
				opts.Threshold = th
				opts.Matching = mt
				opts.MaxTokenFreq = maxFreq
				want := joinCorpusReference(t, pc, probes, opts)
				got, gst, err := JoinCorpus(pc, probes, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("t=%.2f %v M=%d: corpus-backed join differs (%d vs %d pairs)",
						th, mt, maxFreq, len(got), len(want))
				}
				if len(got) > 0 {
					nonEmpty = true
					if gst.SharedTokenCandidates == 0 {
						t.Fatalf("t=%.2f %v: no shared-token candidates generated", th, mt)
					}
				}
			}
		}
	}
	if !nonEmpty {
		t.Fatal("every configuration joined to zero pairs; pick better seeds")
	}
	after := pc.Stats()
	if after.OrderRebuilds != before.OrderRebuilds {
		t.Fatalf("probing rebuilt the frequency order: %d -> %d",
			before.OrderRebuilds, after.OrderRebuilds)
	}
	if after.Epoch != before.Epoch {
		t.Fatalf("probing advanced the epoch: %d -> %d", before.Epoch, after.Epoch)
	}
}

// TestJoinCorpusEquivalenceAblations: the filter ablation grid (prefix
// off, segment prefix off, both off) and both de-duplication strategies
// all reproduce the reference result — the stored-state reuse composes
// with every pipeline configuration, not just the default.
func TestJoinCorpusEquivalenceAblations(t *testing.T) {
	all := namegen.Generate(namegen.Config{Seed: 73, NumNames: 310})
	names, probeNames := all[:220], all[220:] // one pool, so cross-set similarity exists
	probes := make([]token.TokenizedString, len(probeNames))
	for i, s := range probeNames {
		probes[i] = token.WhitespaceAndPunct(s)
	}
	pc := openSeeded(t, names, corpus.Options{})
	for _, sid := range []int{5, 50, 219} {
		if err := pc.Delete(token.StringID(sid)); err != nil {
			t.Fatal(err)
		}
	}

	base := DefaultOptions()
	base.Threshold = 0.25
	want := joinCorpusReference(t, pc, probes, base)
	if len(want) == 0 {
		t.Fatal("reference join produced no pairs; pick better seeds")
	}
	for _, cfg := range []struct {
		name            string
		noPrefix, noSeg bool
		dedup           Dedup
	}{
		{"default", false, false, GroupOnOneString},
		{"group-both", false, false, GroupOnBothStrings},
		{"no-prefix", true, false, GroupOnOneString},
		{"no-segment", false, true, GroupOnOneString},
		{"no-filters", true, true, GroupOnBothStrings},
	} {
		opts := base
		opts.DisablePrefixFilter = cfg.noPrefix
		opts.DisableSegmentPrefixFilter = cfg.noSeg
		opts.Dedup = cfg.dedup
		got, _, err := JoinCorpus(pc, probes, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: corpus-backed join differs (%d vs %d pairs)", cfg.name, len(got), len(want))
		}
	}
}

// TestJoinCorpusStaleOrder: a corpus whose stored rarest-first order is
// maximally stale (re-ranking disabled) still probes exactly — the
// extended order (stale corpus order + probe-only tokens at the tail) is
// a fixed total order, which is all prefix losslessness needs.
func TestJoinCorpusStaleOrder(t *testing.T) {
	all := namegen.Generate(namegen.Config{Seed: 75, NumNames: 340})
	names, probeNames := all[:240], all[240:] // one pool, so cross-set similarity exists
	probes := make([]token.TokenizedString, len(probeNames))
	for i, s := range probeNames {
		probes[i] = token.WhitespaceAndPunct(s)
	}
	pc := openSeeded(t, names, corpus.Options{RerankSlack: -1})
	if got := pc.Stats().OrderRebuilds; got != 0 {
		t.Fatalf("slack<0: %d re-ranks", got)
	}
	nonEmpty := false
	for _, th := range []float64{0.15, 0.35} {
		opts := DefaultOptions()
		opts.Threshold = th
		want := joinCorpusReference(t, pc, probes, opts)
		got, _, err := JoinCorpus(pc, probes, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("t=%.2f: stale-order probe join differs (%d vs %d pairs)", th, len(got), len(want))
		}
		nonEmpty = nonEmpty || len(got) > 0
	}
	if !nonEmpty {
		t.Fatal("stale-order probes joined to zero pairs at every threshold; pick better seeds")
	}
}

// TestJoinCorpusEmptySides: empty probe sets, empty corpora, and
// token-less strings on either side behave exactly like Join's empty
// preamble.
func TestJoinCorpusEmptySides(t *testing.T) {
	opts := DefaultOptions()

	pc := openSeeded(t, []string{"alpha beta", "..."}, corpus.Options{})
	res, _, err := JoinCorpus(pc, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty probe set joined to %d pairs", len(res))
	}

	empty := openSeeded(t, nil, corpus.Options{})
	res, _, err = JoinCorpus(empty, []token.TokenizedString{token.WhitespaceAndPunct("alpha")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty corpus joined to %d pairs", len(res))
	}

	// Token-less on both sides pair at NSLD 0; the tombstoned token-less
	// corpus string must not.
	pc2 := openSeeded(t, []string{"---", "..."}, corpus.Options{})
	if err := pc2.Delete(1); err != nil {
		t.Fatal(err)
	}
	res, _, err = JoinCorpus(pc2, []token.TokenizedString{token.WhitespaceAndPunct("!!!")}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].A != 0 || res[0].B != 0 || res[0].NSLD != 0 {
		t.Fatalf("token-less pairing: %v", res)
	}
}
