package tsj

import (
	"reflect"
	"testing"

	"repro/internal/corpus"
	"repro/internal/namegen"
	"repro/internal/token"
)

// openSeeded opens a persistent corpus in a temp dir and adds names.
func openSeeded(t *testing.T, names []string, opt corpus.Options) *corpus.Corpus {
	t.Helper()
	opt.DisableSync = true
	pc, err := corpus.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	for _, n := range names {
		if _, err := pc.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return pc
}

// TestPrefixEquivalenceStaleCorpusOrder is the staleness property test of
// the incremental prefix maintenance: a corpus whose frequency order is
// maximally stale (re-ranking disabled, so the order froze at the very
// first epoch while document frequencies kept drifting for hundreds of
// adds) must join exactly like the unfiltered per-call pipeline, at every
// threshold and under both matching modes. This is the "stale-but-wider
// prefixes never drop a similar pair" guarantee: prefixes sliced from a
// stale order are still exact heads under one fixed total order, which is
// all the prefilter's losslessness needs.
func TestPrefixEquivalenceStaleCorpusOrder(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 61, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, slack := range []float64{-1, 0} { // never re-rank vs default policy
		pc := openSeeded(t, names, corpus.Options{RerankSlack: slack})
		if slack < 0 {
			if got := pc.Stats().OrderRebuilds; got != 0 {
				t.Fatalf("slack<0: %d re-ranks", got)
			}
		}
		for _, th := range []float64{0.1, 0.25, 0.4} {
			for _, mt := range []Matching{FuzzyTokenMatching, ExactTokenMatching} {
				opts := DefaultOptions()
				opts.Threshold = th
				opts.Matching = mt
				opts.MaxTokenFreq = 0

				opts.DisablePrefixFilter = true
				plain, _, err := SelfJoin(c, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.DisablePrefixFilter = false
				got, gst, err := SelfJoinCorpus(pc, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, got) {
					t.Fatalf("slack=%v t=%.2f %v: stale-order corpus join differs (%d vs %d pairs)",
						slack, th, mt, len(got), len(plain))
				}
				if gst.SharedTokenCandidates == 0 && len(plain) > 0 {
					t.Fatalf("slack=%v t=%.2f: no shared-token candidates generated", slack, th)
				}
			}
		}
	}
}

// TestPrefixEquivalenceCorpusMaxFreqCutoff: the stored-order prefixes
// compose with the high-frequency cutoff M exactly like the per-call
// pipeline (prefixes over kept tokens only).
func TestPrefixEquivalenceCorpusMaxFreqCutoff(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 62, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	pc := openSeeded(t, names, corpus.Options{})
	for _, maxFreq := range []int{3, 10, 50} {
		opts := DefaultOptions()
		opts.Threshold = 0.25
		opts.MaxTokenFreq = maxFreq
		want, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SelfJoinCorpus(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("M=%d: corpus join differs under the cutoff (%d vs %d pairs)",
				maxFreq, len(got), len(want))
		}
	}
}

// TestSelfJoinCorpusZeroRebuilds is the reusable-asset acceptance
// property: joins at several thresholds on one opened corpus perform zero
// frequency-order rebuilds — the corpus's OrderRebuilds counter is
// untouched by joining (only Adds may re-rank) while every join still
// returns the exact result set.
func TestSelfJoinCorpusZeroRebuilds(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 63, NumNames: 400})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	pc := openSeeded(t, names, corpus.Options{})
	before := pc.Stats()
	if before.OrderRebuilds == 0 {
		t.Fatal("seeding 400 names should have re-ranked at least once (policy sanity)")
	}
	for _, th := range []float64{0.1, 0.3} {
		opts := DefaultOptions()
		opts.Threshold = th
		opts.MaxTokenFreq = 0
		want, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := SelfJoinCorpus(pc, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("t=%.2f: corpus join differs (%d vs %d pairs)", th, len(got), len(want))
		}
	}
	after := pc.Stats()
	if after.OrderRebuilds != before.OrderRebuilds {
		t.Fatalf("joins rebuilt the frequency order: %d -> %d",
			before.OrderRebuilds, after.OrderRebuilds)
	}
	if after.Epoch != before.Epoch {
		t.Fatalf("joins advanced the epoch: %d -> %d", before.Epoch, after.Epoch)
	}
	if after.JoinsServed != before.JoinsServed+2 {
		t.Fatalf("JoinsServed = %d, want %d", after.JoinsServed, before.JoinsServed+2)
	}
}

// TestSelfJoinCorpusDeletes: tombstoned strings vanish from the join —
// the result set equals the full join restricted to live pairs, ids
// preserved.
func TestSelfJoinCorpusDeletes(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 64, NumNames: 250})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	pc := openSeeded(t, names, corpus.Options{})
	deleted := map[token.StringID]bool{}
	for _, sid := range []token.StringID{0, 7, 100, 101, 249} {
		if err := pc.Delete(sid); err != nil {
			t.Fatal(err)
		}
		deleted[sid] = true
	}
	opts := DefaultOptions()
	opts.Threshold = 0.25
	opts.MaxTokenFreq = 0 // unlimited, so live-restriction is exact
	full, _, err := SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	var want []Result
	for _, r := range full {
		if !deleted[r.A] && !deleted[r.B] {
			want = append(want, r)
		}
	}
	got, _, err := SelfJoinCorpus(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("test corpus produced no surviving pairs; pick better seeds")
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("deleted-aware join differs (%d vs %d pairs)", len(got), len(want))
	}
}

// TestSelfJoinCorpusAcrossRestart: a reopened corpus (snapshot + WAL
// replay) joins identically to the never-closed one.
func TestSelfJoinCorpusAcrossRestart(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 65, NumNames: 200})
	dir := t.TempDir()
	pc, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range names {
		if _, err := pc.Add(n); err != nil {
			t.Fatal(err)
		}
		if i == len(names)/2 {
			if err := pc.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	opts := DefaultOptions()
	opts.Threshold = 0.2
	opts.MaxTokenFreq = 0
	want, _, err := SelfJoinCorpus(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	pc.Close()

	r, err := corpus.Open(dir, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _, err := SelfJoinCorpus(r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("restarted corpus join differs (%d vs %d pairs)", len(got), len(want))
	}
}

// TestSelfJoinCorpusEmpty: joining an empty corpus is a no-op, and
// token-less strings pair up exactly as in the per-call pipeline.
func TestSelfJoinCorpusEmpty(t *testing.T) {
	pc := openSeeded(t, nil, corpus.Options{})
	opts := DefaultOptions()
	res, _, err := SelfJoinCorpus(pc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("empty corpus joined to %d pairs", len(res))
	}

	pc2 := openSeeded(t, []string{"...", "---", "real name"}, corpus.Options{})
	res, _, err = SelfJoinCorpus(pc2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].A != 0 || res[0].B != 1 {
		t.Fatalf("token-less pairing: %v", res)
	}
}
