package tsj

import (
	"reflect"
	"testing"

	"repro/internal/namegen"
	"repro/internal/token"
)

// TestPrefixEquivalenceSelfJoin: the batch self-join returns identical
// result sets (same pairs, same SLDs) with the prefix filter on and off,
// at several thresholds, under both matching modes and both aligners —
// and the filter actually shrinks the candidate stream.
func TestPrefixEquivalenceSelfJoin(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 31, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	prunedSomewhere := false
	for _, th := range []float64{0.1, 0.25, 0.4} {
		for _, mt := range []Matching{FuzzyTokenMatching, ExactTokenMatching} {
			for _, al := range []Aligning{HungarianAligning, GreedyAligning} {
				opts := DefaultOptions()
				opts.Threshold = th
				opts.Matching = mt
				opts.Aligning = al

				opts.DisablePrefixFilter = true
				plain, pst, err := SelfJoin(c, opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.DisablePrefixFilter = false
				filtered, fst, err := SelfJoin(c, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(plain, filtered) {
					t.Fatalf("t=%.2f %v %v: prefix-filtered results differ (%d vs %d pairs)",
						th, mt, al, len(filtered), len(plain))
				}
				if pst.PrefixPruned != 0 {
					t.Fatalf("t=%.2f: PrefixPruned=%d with the filter disabled", th, pst.PrefixPruned)
				}
				if fst.SharedTokenCandidates >= pst.SharedTokenCandidates {
					t.Fatalf("t=%.2f %v %v: filter did not shrink shared-token candidates (%d vs %d)",
						th, mt, al, fst.SharedTokenCandidates, pst.SharedTokenCandidates)
				}
				if fst.PrefixPruned > 0 {
					prunedSomewhere = true
				}
			}
		}
	}
	if !prunedSomewhere {
		t.Fatal("PrefixPruned never populated across the sweep")
	}
}

// TestPrefixEquivalenceBipartiteJoin is the bipartite counterpart: both
// dedup strategies, three thresholds.
func TestPrefixEquivalenceBipartiteJoin(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 32, NumNames: 240})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	boundary := 120
	for _, th := range []float64{0.1, 0.2, 0.35} {
		for _, dd := range []Dedup{GroupOnOneString, GroupOnBothStrings} {
			opts := DefaultOptions()
			opts.Threshold = th
			opts.Dedup = dd

			opts.DisablePrefixFilter = true
			plain, pst, err := Join(c, boundary, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.DisablePrefixFilter = false
			filtered, fst, err := Join(c, boundary, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, filtered) {
				t.Fatalf("t=%.2f %v: prefix-filtered bipartite results differ (%d vs %d pairs)",
					th, dd, len(filtered), len(plain))
			}
			if fst.SharedTokenCandidates >= pst.SharedTokenCandidates {
				t.Fatalf("t=%.2f %v: filter did not shrink candidates (%d vs %d)",
					th, dd, fst.SharedTokenCandidates, pst.SharedTokenCandidates)
			}
		}
	}
}

// TestPrefixEquivalenceMaxFreqCutoff: the filter composes with the
// high-frequency-token cutoff M — prefixes are computed over kept tokens
// only, so the (approximate) result set under a finite M is unchanged.
func TestPrefixEquivalenceMaxFreqCutoff(t *testing.T) {
	names := namegen.Generate(namegen.Config{Seed: 33, NumNames: 300})
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, maxFreq := range []int{3, 10, 50} {
		opts := DefaultOptions()
		opts.Threshold = 0.25
		opts.MaxTokenFreq = maxFreq

		opts.DisablePrefixFilter = true
		plain, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DisablePrefixFilter = false
		filtered, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, filtered) {
			t.Fatalf("M=%d: prefix-filtered results differ under the cutoff (%d vs %d pairs)",
				maxFreq, len(filtered), len(plain))
		}
	}
}

// TestPrefixEquivalenceFrequencyTies: adversarial corpus where every
// token has the same document frequency, so the global order is decided
// entirely by the deterministic TokenID tie-break. The join must stay
// exact and reproducible.
func TestPrefixEquivalenceFrequencyTies(t *testing.T) {
	// Each token appears exactly twice, across rotated neighbors, so all
	// document frequencies tie at 2 and prefix selection is pure
	// tie-breaking.
	words := []string{
		"alpha", "bravo", "carol", "delta", "echos", "fotox",
		"golfy", "hotel", "india", "julie", "kilos", "limas",
	}
	var names []string
	n := len(words)
	for i := 0; i < n; i++ {
		names = append(names, words[i]+" "+words[(i+1)%n]+" "+words[(i+2)%n])
		// near-duplicates one edit away, sharing the same tokens
	}
	names = append(names, "alpha bravo carol x", "delta echos fotox y")
	c := token.BuildCorpus(names, token.WhitespaceAndPunct)
	for _, th := range []float64{0.15, 0.3, 0.45} {
		opts := DefaultOptions()
		opts.Threshold = th

		opts.DisablePrefixFilter = true
		plain, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.DisablePrefixFilter = false
		a, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := SelfJoin(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, a) {
			t.Fatalf("t=%.2f: tie-broken prefix join differs from unfiltered", th)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("t=%.2f: tie-broken prefix join not reproducible", th)
		}
	}
}
