package tsj

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/massjoin"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// SelfJoin performs the NSLD self-join of a corpus: it returns every
// unordered pair (A < B) of tokenized strings with NSLD <= opts.Threshold
// that the configured strategies discover, plus full pipeline statistics.
//
// With FuzzyTokenMatching, Hungarian alignment and unlimited MaxTokenFreq
// the join is exact (Theorem 3 guarantees candidate completeness; the
// filters are lossless). The approximations only ever lose recall —
// precision is always 1.0 because every emitted pair was verified.
func SelfJoin(c *token.Corpus, opts Options) ([]Result, *Stats, error) {
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, nil, errors.New("tsj: threshold must be in [0, 1)")
	}
	st := &Stats{}
	ver := newVerifier(c, opts)
	engCfg := func(name string) mapreduce.Config {
		return mapreduce.Config{Name: name, MapTasks: opts.MapTasks, Parallelism: opts.Parallelism}
	}

	// All string ids, the universal job input.
	sids := make([]token.StringID, c.NumStrings())
	for i := range sids {
		sids[i] = token.StringID(i)
	}

	// ---- Job 0: token document frequencies (Sec. III-G.2) ---------------
	// Computes freq(token) = #strings containing it and marks tokens above
	// the cutoff M as dropped.
	type tokenFreq struct {
		id   token.TokenID
		freq int
	}
	freqs, st0 := mapreduce.Run(engCfg("tsj-token-freq"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, struct{}]) {
			for _, tid := range c.Members[sid] {
				ctx.Emit(tid, struct{}{})
			}
		},
		func(tid token.TokenID, vals []struct{}, ctx *mapreduce.ReduceCtx[tokenFreq]) {
			ctx.Emit(tokenFreq{tid, len(vals)})
		},
	)
	st.Pipeline.Add(st0)

	dropped := make([]bool, c.NumTokens())
	maxFreq := opts.MaxTokenFreq
	for _, tf := range freqs {
		if maxFreq > 0 && tf.freq > maxFreq {
			dropped[tf.id] = true
			st.DroppedTokens++
		}
	}
	st.KeptTokens = c.NumTokens() - st.DroppedTokens

	// Preamble: token-less strings. They share no token with anything, but
	// pairs of them have NSLD 0 and belong in an exact result set.
	var results []Result
	var empties []token.StringID
	for _, sid := range sids {
		if len(c.Members[sid]) == 0 {
			empties = append(empties, sid)
		}
	}
	for i := 0; i < len(empties); i++ {
		for j := i + 1; j < len(empties); j++ {
			results = append(results, Result{A: empties[i], B: empties[j]})
			st.EmptyStringPairs++
		}
	}

	// ---- Job 1: shared-token candidate generation (Sec. III-C) ----------
	// map: r^t_s -> [<r^ti_s, r^t_s>]; reduce on token z: all pairs.
	//
	// With the prefix filter (default), the map ships only each string's
	// threshold-derived prefix — its MaxErrors(T, L)+1 rarest kept tokens
	// under the global frequency order — and the reducer emits a pair only
	// from its first common prefix token, after the positional and length
	// filters prove the pair can still satisfy NSLD <= T. Lossless: see
	// the prefilter package for the argument.
	// The prefix index serves both filters: Job 1's first-common-token
	// rule and Job 2's segment prefix restriction (prefixFilterWants).
	wantShared, wantSeg := prefixFilterWants(opts)
	var pf, pfSeg *prefilter.Index
	if wantShared || wantSeg {
		ix := prefilter.NewIndex(c, dropped, opts.Threshold)
		if wantShared {
			pf = ix
		}
		if wantSeg {
			pfSeg = ix
		}
	}
	var prefixPruned atomic.Int64
	sharedCands, st1 := mapreduce.Run(engCfg("tsj-shared-token"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, token.StringID]) {
			if pf != nil {
				for _, tid := range pf.Prefix(sid) {
					ctx.Emit(tid, sid)
				}
				return
			}
			for _, tid := range c.Members[sid] {
				if !dropped[tid] {
					ctx.Emit(tid, sid)
				}
			}
		},
		func(tid token.TokenID, vals []token.StringID, ctx *mapreduce.ReduceCtx[uint64]) {
			sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
			var pruned int64
			for i := 0; i < len(vals); i++ {
				for j := i + 1; j < len(vals); j++ {
					if pf != nil {
						emit, prn := pf.Admit(tid, vals[i], vals[j])
						if !emit {
							if prn {
								pruned++
							}
							continue
						}
					}
					ctx.Emit(pairKey(vals[i], vals[j]))
				}
			}
			if pruned > 0 {
				prefixPruned.Add(pruned)
			}
			// Quadratic pair enumeration beyond the default linear charge.
			n := float64(len(vals))
			ctx.AddCost(n * n * 0.05)
		},
	)
	st.Pipeline.Add(st1)
	st.SharedTokenCandidates = int64(len(sharedCands))
	st.PrefixPruned = prefixPruned.Load()
	candidates := sharedCands

	// ---- Jobs 2a+2b: similar-token candidates (Sec. III-D) --------------
	if opts.Matching == FuzzyTokenMatching {
		similar := similarTokenCandidates(c, dropped, pfSeg, opts, st)
		candidates = append(candidates, similar...)
	}

	// ---- Job 3: de-duplicate + filter + verify (Sec. III-E/F/G.3) -------
	verified := dedupVerify(candidates, ver, opts, engCfg, st)

	results = append(results, verified...)
	sort.Slice(results, func(i, j int) bool {
		if results[i].A != results[j].A {
			return results[i].A < results[j].A
		}
		return results[i].B < results[j].B
	})
	return results, st, nil
}

// dedupVerify runs the final de-duplicate + filter + verify job on a raw
// candidate list and folds the verifier counters into st. Shared by the
// per-call SelfJoin/Join pipelines and the persistent-corpus join.
func dedupVerify(candidates []uint64, ver *verifier, opts Options,
	engCfg func(string) mapreduce.Config, st *Stats) []Result {
	var verified []Result
	var st3 *mapreduce.Stats
	switch opts.Dedup {
	case GroupOnBothStrings:
		// One reducer instance per candidate pair: the shuffle key is the
		// pair itself, so duplicates collapse into one group.
		verified, st3 = mapreduce.Run(engCfg("tsj-dedup-verify-bothstrings"), candidates,
			func(cand uint64, ctx *mapreduce.MapCtx[uint64, struct{}]) {
				ctx.Emit(cand, struct{}{})
			},
			func(k uint64, vals []struct{}, ctx *mapreduce.ReduceCtx[Result]) {
				a, b := unpackPair(k)
				pv := ver.get()
				ver.verifyPair(a, b, pv, ctx)
				ver.put(pv)
			},
		)
	default: // GroupOnOneString
		// One reducer instance per string: the key side of each pair is
		// chosen by the hash-parity rule; the reducer de-duplicates its
		// partner list with a hash set and verifies each partner.
		verified, st3 = mapreduce.Run(engCfg("tsj-dedup-verify-onestring"), candidates,
			func(cand uint64, ctx *mapreduce.MapCtx[token.StringID, token.StringID]) {
				a, b := unpackPair(cand)
				k, v := groupKey(a, b)
				ctx.Emit(k, v)
			},
			func(k token.StringID, partners []token.StringID, ctx *mapreduce.ReduceCtx[Result]) {
				seen := make(map[token.StringID]struct{}, len(partners))
				pv := ver.get()
				if ver.batch {
					// Batched path: dedup first, then verify the whole
					// partner list (one shared probe) in lane-width groups.
					pv.partners = pv.partners[:0]
					for _, p := range partners {
						if _, dup := seen[p]; dup {
							continue
						}
						seen[p] = struct{}{}
						pv.partners = append(pv.partners, p)
					}
					ver.verifyPartners(k, pv.partners, pv, ctx)
				} else {
					for _, p := range partners {
						if _, dup := seen[p]; dup {
							continue
						}
						seen[p] = struct{}{}
						a, b := normPair(k, p)
						ver.verifyPair(a, b, pv, ctx)
					}
				}
				ver.put(pv)
			},
		)
	}
	// Flush the cross-key staged verdicts before the counters are read;
	// their results were deferred past the reducers' emit windows.
	verified = append(verified, ver.drain()...)
	st.Pipeline.Add(st3)
	st.DedupedCandidates = int64(st3.ReduceKeys)
	if opts.Dedup == GroupOnOneString {
		// Keys are strings, not pairs; count deduped pairs from the
		// verifier instead.
		st.DedupedCandidates = ver.lengthPruned.Load() + ver.lbPruned.Load() + ver.verified.Load()
	}

	st.LengthPruned = ver.lengthPruned.Load()
	st.LBPruned = ver.lbPruned.Load()
	st.Verified = ver.verified.Load()
	st.BudgetPruned = ver.budgetPruned.Load()
	st.Results = ver.results.Load() + st.EmptyStringPairs
	st.BatchedPairs = ver.batchedPairs.Load()
	st.SIMDKernels = ver.simdKernels.Load()
	st.SIMDLanes = ver.simdLanes.Load()
	st.BatchScalarCells = ver.batchScalarCells.Load()
	return verified
}

// similarTokenCandidates runs the token-space NLD join (MassJoin) and
// expands each similar token pair through the postings lists into
// candidate string pairs (Sec. III-D). The expansion is fused into the
// next job's map phase: its cost is exactly the number of candidate
// records produced, which the dedup job's map accounting charges.
func similarTokenCandidates(c *token.Corpus, dropped []bool, pfSeg *prefilter.Index, opts Options, st *Stats) []uint64 {
	return similarTokenCandidatesPostings(c, dropped, nil, nil, pfSeg, opts, st)
}

// similarTokenCandidatesPostings is similarTokenCandidates with
// externally maintained postings (the persistent corpus's inverted
// index) and an alive mask for tombstoned strings. postings == nil
// rebuilds them from the member lists; alive == nil means every string
// is live. Externally maintained posting lists may contain tombstoned
// ids and ids minted after the caller's view was captured — both are
// filtered here.
//
// pfSeg, when non-nil, applies the segment prefix filter: the postings
// are rebuilt over prefix membership only — postings[t] lists the
// strings whose threshold-derived prefix contains t — which restricts
// both the token-space NLD join (tokens in no prefix drop out of the
// joined space) and the expansion. Lossless: a qualifying pair whose
// only witness is a similar token pair shares no kept token, so both
// strings' kept-distinct counts are within their SLD budgets and their
// prefixes are their entire kept-distinct sets
// (prefilter.SegmentPrefixLen) — both witness carriers are prefix
// members. Pairs that do share a kept token are Job 1's responsibility.
func similarTokenCandidatesPostings(c *token.Corpus, dropped []bool,
	postings [][]token.StringID, alive []bool, pfSeg *prefilter.Index, opts Options, st *Stats) []uint64 {
	if pfSeg != nil {
		pp := make([][]token.StringID, c.NumTokens())
		var pruned int64
		for sid := range c.Members {
			s := token.StringID(sid)
			if alive != nil && (sid >= len(alive) || !alive[sid]) {
				continue
			}
			pref := pfSeg.Prefix(s)
			pruned += int64(pfSeg.Distinct(s) - len(pref))
			for _, tid := range pref {
				pp[tid] = append(pp[tid], s)
			}
		}
		st.SegPrefixPruned = pruned
		postings = pp
	}
	// Compact the kept token space for the join. Tokens whose live
	// document frequency reached zero (every containing string deleted)
	// cannot produce candidates — and, under the segment prefix filter,
	// tokens in no prefix cannot either; skipping both keeps the NLD join
	// off dead token space.
	keptIdx := make([]token.TokenID, 0, c.NumTokens())
	keptRunes := make([][]rune, 0, c.NumTokens())
	for tid := 0; tid < c.NumTokens(); tid++ {
		if !dropped[tid] && c.Freq[tid] > 0 {
			if pfSeg != nil && len(postings[tid]) == 0 {
				continue
			}
			keptIdx = append(keptIdx, token.TokenID(tid))
			keptRunes = append(keptRunes, c.TokenRunes[tid])
		}
	}

	mjCfg := massjoin.Config{
		MultiMatchAware: opts.MultiMatchAware,
		MapTasks:        opts.MapTasks,
		Parallelism:     opts.Parallelism,
		NamePrefix:      "tsj-similar-token",
	}
	pairs, pipe := massjoin.SelfJoinNLD(keptRunes, opts.Threshold, mjCfg)
	st.Pipeline.Merge(pipe)
	st.SimilarTokenPairs = int64(len(pairs))

	if postings == nil {
		// Postings: token -> string ids containing it (inverted Members).
		postings = make([][]token.StringID, c.NumTokens())
		for sid, mem := range c.Members {
			for _, tid := range mem {
				postings[tid] = append(postings[tid], token.StringID(sid))
			}
		}
	}
	skip := func(sid token.StringID) bool {
		return alive != nil && (int(sid) >= len(alive) || !alive[sid])
	}

	// Combiner: collapse duplicate candidates at expansion time (the
	// standard MapReduce combiner optimization). The dedup job still runs
	// — hot postings overlap heavily, and pre-collapsing keeps the
	// shuffled record count proportional to the distinct pair count.
	seen := make(map[uint64]struct{})
	var cands []uint64
	var raw int64
	for _, p := range pairs {
		ta, tb := keptIdx[p.A], keptIdx[p.B]
		for _, sa := range postings[ta] {
			if skip(sa) {
				continue
			}
			for _, sb := range postings[tb] {
				if sa == sb || skip(sb) {
					continue
				}
				a, b := normPair(sa, sb)
				raw++
				k := pairKey(a, b)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				cands = append(cands, k)
			}
		}
	}
	st.SimilarTokenCandidates = raw
	return cands
}
