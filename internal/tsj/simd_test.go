package tsj

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestSIMDEquivalenceJoin: self-joins and bipartite joins return
// byte-identical sorted result slices with the vectorized batch path on
// and off, across aligners and dedup strategies, and the SIMD counters
// light up exactly when the kernel is live. This is the join leg of the
// CI equivalence guard.
func TestSIMDEquivalenceJoin(t *testing.T) {
	t.Logf("batch kernel available: %v", core.BatchKernelAvailable())
	rng := rand.New(rand.NewSource(314))
	for _, threshold := range []float64{0.1, 0.25} {
		for _, align := range []Aligning{HungarianAligning, GreedyAligning} {
			for _, dedup := range []Dedup{GroupOnOneString, GroupOnBothStrings} {
				c := nameCorpus(rng, 120)
				base := Options{Threshold: threshold, Aligning: align, Dedup: dedup}
				off := base
				off.DisableSIMD = true

				got, gst, err := SelfJoin(c, base)
				if err != nil {
					t.Fatal(err)
				}
				want, wst, err := SelfJoin(c, off)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("t=%.2f %v %v: batched self-join differs from scalar (%d vs %d results)",
						threshold, align, dedup, len(got), len(want))
				}
				if wst.BatchedPairs != 0 || wst.SIMDKernels != 0 {
					t.Fatalf("t=%.2f %v %v: SIMD counters nonzero with DisableSIMD", threshold, align, dedup)
				}
				if gst.Verified != wst.Verified || gst.BudgetPruned != wst.BudgetPruned ||
					gst.LengthPruned != wst.LengthPruned || gst.LBPruned != wst.LBPruned {
					t.Fatalf("t=%.2f %v %v: batching changed the verify funnel (%+v vs %+v)",
						threshold, align, dedup, gst, wst)
				}
				switch {
				case !core.BatchKernelAvailable() || dedup == GroupOnBothStrings:
					// Per-pair reducers (and kernel-less builds) never batch.
					if gst.BatchedPairs != 0 {
						t.Fatalf("t=%.2f %v %v: BatchedPairs=%d on a per-pair path",
							threshold, align, dedup, gst.BatchedPairs)
					}
				default:
					if gst.BatchedPairs == 0 {
						t.Fatalf("t=%.2f %v %v: kernel live but BatchedPairs=0", threshold, align, dedup)
					}
					if gst.SIMDLanes < gst.SIMDKernels || gst.SIMDLanes > 16*gst.SIMDKernels {
						t.Fatalf("t=%.2f %v %v: lane count %d incoherent for %d kernels",
							threshold, align, dedup, gst.SIMDLanes, gst.SIMDKernels)
					}
				}
			}
		}
	}

	// Bipartite join leg.
	rc := nameCorpus(rng, 60)
	pc := nameCorpus(rng, 60)
	rNames := make([]string, rc.NumStrings())
	for i, s := range rc.Strings {
		rNames[i] = s.String()
	}
	pNames := make([]string, pc.NumStrings())
	for i, s := range pc.Strings {
		pNames[i] = s.String()
	}
	c, nr := buildBipartite(rNames, pNames)
	base := Options{Threshold: 0.2}
	off := base
	off.DisableSIMD = true
	got, gst, err := Join(c, nr, base)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Join(c, nr, off)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("bipartite: batched join differs from scalar (%d vs %d results)", len(got), len(want))
	}
	if core.BatchKernelAvailable() && gst.BatchedPairs == 0 {
		t.Fatal("bipartite: kernel live but BatchedPairs=0")
	}
}
