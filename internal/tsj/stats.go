package tsj

import (
	"fmt"

	"repro/internal/mapreduce"
)

// Stats reports what every stage of a TSJ join did, plus the per-job task
// costs consumed by the simulated cluster.
type Stats struct {
	Pipeline mapreduce.Pipeline

	// DroppedTokens is the number of distinct tokens above the
	// MaxTokenFreq cutoff M.
	DroppedTokens int
	// KeptTokens is the distinct token-space size after the cutoff.
	KeptTokens int

	// SharedTokenCandidates / SimilarTokenCandidates count raw candidate
	// pairs emitted by each generation strategy (before dedup).
	SharedTokenCandidates  int64
	SimilarTokenCandidates int64
	// PrefixPruned counts candidate pairs the prefix filter discarded at
	// posting-list probe time: pairs whose first common prefix token's
	// reducer proved — from positions and aggregate lengths alone — that
	// NSLD must exceed the threshold (always 0 with DisablePrefixFilter).
	PrefixPruned int64
	// SegPrefixPruned counts posting entries (token, string) the segment
	// prefix filter excluded from the similar-token expansion — non-prefix
	// tokens that neither entered the token-space NLD join nor expanded
	// into candidates (always 0 with DisableSegmentPrefixFilter).
	SegPrefixPruned int64
	// SimilarTokenPairs is the number of similar (non-identical) token
	// pairs found by the token-space NLD join.
	SimilarTokenPairs int64
	// DedupedCandidates counts distinct candidate pairs reaching the
	// filter/verify stage.
	DedupedCandidates int64
	// LengthPruned / LBPruned count candidates discarded by each filter.
	LengthPruned int64
	LBPruned     int64
	// Verified counts candidate pairs reaching the verification stage
	// (SLD computations started).
	Verified int64
	// BudgetPruned counts verifications the threshold-derived SLD budget
	// rejected early — before or inside the alignment — rather than by a
	// completed SLD computation (always 0 with DisableBoundedVerify).
	BudgetPruned int64
	// Results counts emitted similar pairs.
	Results int64
	// EmptyStringPairs counts pairs of token-less strings (NSLD = 0)
	// emitted by the preamble.
	EmptyStringPairs int64
	// BatchedPairs counts candidate pairs verified through the batched
	// vector path (always 0 with DisableSIMD, DisableBoundedVerify, or
	// when the kernel is unavailable on this hardware/build).
	BatchedPairs int64
	// SIMDKernels / SIMDLanes count vector-kernel invocations and the
	// occupied lanes they carried; SIMDLanes/SIMDKernels (out of 16) is
	// the lane-fill efficiency.
	SIMDKernels int64
	SIMDLanes   int64
	// BatchScalarCells counts token-pair cells inside the batched path
	// that fell back to the scalar DP (oversized or non-BMP tokens).
	BatchScalarCells int64
}

// String renders a multi-line summary.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"tokens kept=%d dropped=%d | candidates shared=%d similar=%d (token pairs=%d) deduped=%d | pruned prefix=%d seg-prefix=%d len=%d lb=%d budget=%d | verified=%d (batched=%d kernels=%d lanes=%d) results=%d",
		s.KeptTokens, s.DroppedTokens, s.SharedTokenCandidates, s.SimilarTokenCandidates,
		s.SimilarTokenPairs, s.DedupedCandidates, s.PrefixPruned, s.SegPrefixPruned, s.LengthPruned, s.LBPruned, s.BudgetPruned, s.Verified, s.BatchedPairs, s.SIMDKernels, s.SIMDLanes, s.Results)
}
