// Package tsj implements the Tokenized-String Joiner of Sec. III: a
// MapReduce generate-filter-verify framework for NSLD self-joins and joins
// of tokenized-string corpora.
//
// The pipeline stages map one-to-one onto the paper's:
//
//  1. token-frequency job — computes document frequencies and drops
//     high-frequency tokens (Sec. III-G.2, parameter M);
//  2. shared-token candidate generation (Sec. III-C);
//  3. similar-token candidate generation (Sec. III-D) — an NLD-join of the
//     token space via MassJoin, then a postings expansion from similar
//     token pairs to candidate string pairs (skipped entirely under the
//     exact-token-matching approximation of Sec. III-G.4);
//  4. de-duplication using either grouping strategy of Sec. III-G.3, fused
//     with filtering (Sec. III-E: length filter and histogram
//     distance-lower-bound filter) and final verification (Sec. III-F:
//     exact SLD by Hungarian matching, or the greedy-token-aligning
//     approximation of Sec. III-G.5).
//
// Every job reports task-cost statistics so the simulated cluster can
// reproduce the paper's scalability figures.
package tsj

import (
	"repro/internal/token"
)

// Matching selects the candidate-generation strategy.
type Matching int

const (
	// FuzzyTokenMatching generates both shared-token and similar-token
	// candidates; with unlimited M it is exact (Theorem 3).
	FuzzyTokenMatching Matching = iota
	// ExactTokenMatching generates only shared-token candidates
	// (Sec. III-G.4). Precision stays 1.0; recall may drop.
	ExactTokenMatching
)

func (m Matching) String() string {
	switch m {
	case FuzzyTokenMatching:
		return "fuzzy-token-matching"
	case ExactTokenMatching:
		return "exact-token-matching"
	}
	return "unknown"
}

// Aligning selects the verification alignment algorithm.
type Aligning int

const (
	// HungarianAligning computes the exact SLD (min-weight perfect
	// matching).
	HungarianAligning Aligning = iota
	// GreedyAligning uses the greedy-token-aligning approximation
	// (Sec. III-G.5); it can only overestimate SLD, so precision stays
	// 1.0.
	GreedyAligning
)

func (a Aligning) String() string {
	switch a {
	case HungarianAligning:
		return "hungarian"
	case GreedyAligning:
		return "greedy-token-aligning"
	}
	return "unknown"
}

// Dedup selects the candidate de-duplication strategy of Sec. III-G.3.
type Dedup int

const (
	// GroupOnOneString keys candidates by one of the two strings (chosen
	// by the hash-parity rule) and verifies all of a string's partners in
	// one reducer: few large tasks.
	GroupOnOneString Dedup = iota
	// GroupOnBothStrings keys candidates by the pair: many tiny tasks
	// with better load balancing but more worker instantiations.
	GroupOnBothStrings
)

func (d Dedup) String() string {
	switch d {
	case GroupOnOneString:
		return "grouping-on-one-string"
	case GroupOnBothStrings:
		return "grouping-on-both-strings"
	}
	return "unknown"
}

// Options configures a TSJ join. The zero value is a valid exact fuzzy
// join at threshold 0 — callers normally set at least Threshold.
type Options struct {
	// Threshold is the NSLD threshold T.
	Threshold float64
	// MaxTokenFreq is M: tokens contained in more than M strings are
	// dropped from candidate generation. <= 0 means unlimited.
	MaxTokenFreq int
	// Matching selects fuzzy (default) or exact token matching.
	Matching Matching
	// Aligning selects Hungarian (default) or greedy alignment.
	Aligning Aligning
	// Dedup selects the grouping strategy (default: one string).
	Dedup Dedup
	// MultiMatchAware controls the MassJoin substring selection.
	// Disabled only for ablation.
	MultiMatchAware bool
	// DisableLengthFilter / DisableLBFilter switch off the Sec. III-E
	// filters (ablation only; results are unaffected, work grows).
	DisableLengthFilter bool
	DisableLBFilter     bool
	// DisableBoundedVerify switches off threshold-aware verification
	// (core.Verifier): by default the verify stage derives an SLD budget
	// from the threshold and abandons a pair as soon as any lower bound
	// exceeds it. Results are byte-identical either way; disabling is for
	// ablation and equivalence testing only.
	DisableBoundedVerify bool
	// DisableTokenLDCache switches off the bounded verifier's token-pair
	// LD memo (on by default; it only applies when bounded verification
	// is on). Results are unaffected.
	DisableTokenLDCache bool
	// DisableSIMD switches off the vectorized batched verification path:
	// by default (when bounded verification is on and the kernel is live
	// on this hardware/build — core.BatchKernelAvailable) each
	// grouping-on-one-string reducer verifies its partner list in
	// lane-width batches against the shared probe string. Results are
	// byte-identical either way; disabling is for ablation, equivalence
	// testing, and ruling out kernel issues in the field.
	DisableSIMD bool
	// DisablePrefixFilter switches off threshold-aware candidate pruning
	// in the shared-token generator: by default only each string's
	// threshold-derived prefix (its MaxErrors(T, L)+1 rarest tokens under
	// the global frequency order) feeds the posting lists, each pair is
	// emitted by exactly one reducer, and positional + length filters
	// discard pairs that provably cannot satisfy NSLD <= T. Results are
	// byte-identical either way (the pruning is lossless under every
	// Matching mode); disabling is for ablation and equivalence testing.
	DisablePrefixFilter bool
	// DisableSegmentPrefixFilter switches off threshold-aware candidate
	// pruning in the similar-token generator: by default the token-space
	// NLD join and the postings expansion see only tokens inside some
	// string's threshold-derived prefix — lossless because a pair whose
	// only witness is a similar (non-identical) token pair shares no
	// token, which forces both prefixes to cover the strings' entire
	// kept-distinct sets (prefilter.SegmentPrefixLen). Results are
	// byte-identical either way, including under MaxTokenFreq; disabling
	// is for ablation and equivalence testing only.
	DisableSegmentPrefixFilter bool
	// MapTasks / Parallelism forward to the MapReduce engine.
	MapTasks    int
	Parallelism int
}

// prefixFilterWants reports which candidate generators consume a prefix
// index under opts: Job 1 (shared-token) unless DisablePrefixFilter, and
// Job 2 (similar-token) unless DisableSegmentPrefixFilter — Job 2 only
// exists under fuzzy matching. One index serves both; callers build it
// when either wants it.
func prefixFilterWants(opts Options) (shared, seg bool) {
	return !opts.DisablePrefixFilter,
		!opts.DisableSegmentPrefixFilter && opts.Matching == FuzzyTokenMatching
}

// DefaultOptions returns the paper's default configuration: T = 0.1,
// M = 1000, fuzzy matching, Hungarian alignment, grouping-on-one-string.
func DefaultOptions() Options {
	return Options{
		Threshold:       0.1,
		MaxTokenFreq:    1000,
		Matching:        FuzzyTokenMatching,
		Aligning:        HungarianAligning,
		Dedup:           GroupOnOneString,
		MultiMatchAware: true,
	}
}

// Result is one joined pair: string ids with A < B, the (possibly
// greedy-overestimated) SLD used for the decision, and its NSLD.
type Result struct {
	A, B token.StringID
	SLD  int
	NSLD float64
}
