package tsj

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

// nameCorpus generates a corpus of synthetic names with planted
// near-duplicate rings, mimicking the motivating application.
func nameCorpus(rng *rand.Rand, n int) *token.Corpus {
	firsts := []string{"barak", "john", "mary", "chun", "ahmed", "wei", "olga", "juan"}
	lasts := []string{"obama", "smith", "huang", "metwally", "chen", "garcia", "ivanova"}
	var raw []string
	for len(raw) < n {
		name := firsts[rng.Intn(len(firsts))] + " " + lasts[rng.Intn(len(lasts))]
		if rng.Intn(3) == 0 {
			name += " " + string(rune('a'+rng.Intn(26)))
		}
		raw = append(raw, name)
		// Ring members: small adversarial edits.
		for k := 0; k < rng.Intn(3) && len(raw) < n; k++ {
			raw = append(raw, perturbName(rng, name))
		}
	}
	return token.BuildCorpus(raw, token.WhitespaceAndPunct)
}

func perturbName(rng *rand.Rand, name string) string {
	r := []rune(name)
	switch rng.Intn(4) {
	case 0: // substitute a letter
		p := rng.Intn(len(r))
		if r[p] != ' ' {
			r[p] = rune('a' + rng.Intn(26))
		}
	case 1: // insert a letter
		p := rng.Intn(len(r) + 1)
		r = append(r[:p], append([]rune{rune('a' + rng.Intn(26))}, r[p:]...)...)
	case 2: // delete a letter
		p := rng.Intn(len(r))
		if r[p] != ' ' {
			r = append(r[:p], r[p+1:]...)
		}
	case 3: // swap token order (free under NSLD)
		return name + ""
	}
	return string(r)
}

// bruteSelfJoin computes the exact NSLD self-join by pairwise SLD.
func bruteSelfJoin(c *token.Corpus, t float64) map[[2]int]int {
	want := make(map[[2]int]int)
	for i := 0; i < c.NumStrings(); i++ {
		for j := i + 1; j < c.NumStrings(); j++ {
			sld := core.SLD(c.Strings[i], c.Strings[j])
			if core.WithinNSLD(sld, c.Strings[i].AggregateLen(), c.Strings[j].AggregateLen(), t) {
				want[[2]int{i, j}] = sld
			}
		}
	}
	return want
}

func resultSet(rs []Result) map[[2]int]int {
	m := make(map[[2]int]int, len(rs))
	for _, r := range rs {
		m[[2]int{int(r.A), int(r.B)}] = r.SLD
	}
	return m
}

func TestSelfJoinExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, threshold := range []float64{0.05, 0.1, 0.225} {
		for _, dedup := range []Dedup{GroupOnOneString, GroupOnBothStrings} {
			c := nameCorpus(rng, 120)
			opts := DefaultOptions()
			opts.Threshold = threshold
			opts.MaxTokenFreq = 0 // unlimited: exact join
			opts.Dedup = dedup
			got, st, err := SelfJoin(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteSelfJoin(c, threshold)
			gs := resultSet(got)
			if len(gs) != len(want) {
				t.Fatalf("T=%v dedup=%v: got %d pairs, want %d\n%s",
					threshold, dedup, len(gs), len(want), describeDiff(want, gs, c))
			}
			for k, sld := range want {
				if g, ok := gs[k]; !ok || g != sld {
					t.Fatalf("T=%v dedup=%v: pair %v got (%d,%v) want %d", threshold, dedup, k, g, ok, sld)
				}
			}
			if int64(len(got)) != st.Results {
				t.Fatalf("stats Results=%d, len(results)=%d", st.Results, len(got))
			}
		}
	}
}

func describeDiff(want, got map[[2]int]int, c *token.Corpus) string {
	s := ""
	for k := range want {
		if _, ok := got[k]; !ok {
			s += fmt.Sprintf("missing %v (%q | %q)\n", k, c.Strings[k[0]].String(), c.Strings[k[1]].String())
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			s += fmt.Sprintf("extra %v (%q | %q)\n", k, c.Strings[k[0]].String(), c.Strings[k[1]].String())
		}
	}
	return s
}

func TestSelfJoinPaperExample(t *testing.T) {
	raw := []string{"Barak Obama", "Obamma, Boraak H.", "Burak Ubama", "John Smith"}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	opts := DefaultOptions()
	opts.Threshold = 0.2
	opts.MaxTokenFreq = 0
	got, _, err := SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	// At T=0.2 only {barak obama} ~ {burak ubama} (NSLD = 4/22 ≈ 0.18).
	if len(got) != 1 || got[0].A != 0 || got[0].B != 2 {
		t.Fatalf("T=0.2: got %+v, want exactly (0,2)", got)
	}
	// At T=0.3 the Boraak H. Obamma variant joins too (NSLD = 8/27 ≈ 0.296).
	opts.Threshold = 0.3
	got, _, err = SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	gs := resultSet(got)
	for _, want := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if _, ok := gs[want]; !ok && want != [2]int{1, 2} {
			t.Fatalf("T=0.3: missing pair %v in %v", want, gs)
		}
	}
	if _, ok := gs[[2]int{0, 3}]; ok {
		t.Fatal("john smith must not join barak obama")
	}
}

func TestExactTokenMatchingIsSubsetWithPrecisionOne(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	c := nameCorpus(rng, 150)
	base := DefaultOptions()
	base.Threshold = 0.2
	base.MaxTokenFreq = 0

	fuzzy, _, err := SelfJoin(c, base)
	if err != nil {
		t.Fatal(err)
	}
	exact := base
	exact.Matching = ExactTokenMatching
	approx, _, err := SelfJoin(c, exact)
	if err != nil {
		t.Fatal(err)
	}
	fs := resultSet(fuzzy)
	for k, sld := range resultSet(approx) {
		want, ok := fs[k]
		if !ok || want != sld {
			t.Fatalf("exact-token-matching produced pair %v not in fuzzy results", k)
		}
	}
	if len(approx) > len(fuzzy) {
		t.Fatal("approximation cannot find more pairs than fuzzy")
	}
}

func TestGreedyAligningIsSubsetWithPrecisionOne(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	c := nameCorpus(rng, 150)
	base := DefaultOptions()
	base.Threshold = 0.225
	base.MaxTokenFreq = 0

	hung, _, err := SelfJoin(c, base)
	if err != nil {
		t.Fatal(err)
	}
	gr := base
	gr.Aligning = GreedyAligning
	greedy, _, err := SelfJoin(c, gr)
	if err != nil {
		t.Fatal(err)
	}
	hs := resultSet(hung)
	for k := range resultSet(greedy) {
		if _, ok := hs[k]; !ok {
			t.Fatalf("greedy verified pair %v that exact verification rejects", k)
		}
	}
	// Precision 1: every greedy pair's true NSLD is within threshold.
	for _, r := range greedy {
		sld := core.SLD(c.Strings[r.A], c.Strings[r.B])
		if !core.WithinNSLD(sld, c.Strings[r.A].AggregateLen(), c.Strings[r.B].AggregateLen(), base.Threshold) {
			t.Fatalf("greedy emitted false positive %+v", r)
		}
	}
}

func TestMaxTokenFreqDropsOnlyRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	c := nameCorpus(rng, 200)
	base := DefaultOptions()
	base.Threshold = 0.15
	base.MaxTokenFreq = 0
	full, _, err := SelfJoin(c, base)
	if err != nil {
		t.Fatal(err)
	}
	lim := base
	lim.MaxTokenFreq = 5
	limited, st, err := SelfJoin(c, lim)
	if err != nil {
		t.Fatal(err)
	}
	if st.DroppedTokens == 0 {
		t.Fatal("cutoff must drop some tokens in this corpus")
	}
	fs := resultSet(full)
	for k := range resultSet(limited) {
		if _, ok := fs[k]; !ok {
			t.Fatalf("M-cutoff introduced pair %v not in full results", k)
		}
	}
	if len(limited) > len(full) {
		t.Fatal("M-cutoff cannot increase results")
	}
}

func TestFiltersDoNotChangeResults(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	c := nameCorpus(rng, 120)
	base := DefaultOptions()
	base.Threshold = 0.2
	base.MaxTokenFreq = 0
	withFilters, stA, err := SelfJoin(c, base)
	if err != nil {
		t.Fatal(err)
	}
	noF := base
	noF.DisableLengthFilter = true
	noF.DisableLBFilter = true
	without, stB, err := SelfJoin(c, noF)
	if err != nil {
		t.Fatal(err)
	}
	a, b := resultSet(withFilters), resultSet(without)
	if len(a) != len(b) {
		t.Fatalf("filters changed result count: %d vs %d", len(a), len(b))
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("filters changed pair %v", k)
		}
	}
	if stA.LengthPruned+stA.LBPruned == 0 {
		t.Log("note: filters never fired on this corpus")
	}
	if stB.Verified < stA.Verified {
		t.Fatal("disabling filters must not reduce verification work")
	}
}

func TestSelfJoinEmptyStrings(t *testing.T) {
	raw := []string{"...", "---", "john smith", "!!!"}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	opts := DefaultOptions()
	opts.Threshold = 0.1
	got, st, err := SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Three token-less strings form 3 zero-distance pairs.
	if st.EmptyStringPairs != 3 {
		t.Fatalf("EmptyStringPairs = %d, want 3", st.EmptyStringPairs)
	}
	gs := resultSet(got)
	for _, k := range [][2]int{{0, 1}, {0, 3}, {1, 3}} {
		if _, ok := gs[k]; !ok {
			t.Fatalf("missing empty pair %v", k)
		}
	}
	if len(got) != 3 {
		t.Fatalf("got %d pairs, want 3", len(got))
	}
}

func TestSelfJoinThresholdValidation(t *testing.T) {
	c := token.BuildCorpus([]string{"a b"}, token.WhitespaceAndPunct)
	for _, bad := range []float64{-0.1, 1.0, 2.5} {
		opts := DefaultOptions()
		opts.Threshold = bad
		if _, _, err := SelfJoin(c, opts); err == nil {
			t.Fatalf("threshold %v must be rejected", bad)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	c := nameCorpus(rng, 100)
	opts := DefaultOptions()
	opts.Threshold = 0.15
	opts.MaxTokenFreq = 0
	_, st, err := SelfJoin(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.DedupedCandidates != st.LengthPruned+st.LBPruned+st.Verified {
		t.Fatalf("candidate accounting broken: deduped=%d len=%d lb=%d verified=%d",
			st.DedupedCandidates, st.LengthPruned, st.LBPruned, st.Verified)
	}
	if len(st.Pipeline.Jobs) < 4 {
		t.Fatalf("fuzzy pipeline must have >= 4 jobs, got %d", len(st.Pipeline.Jobs))
	}
	if st.Pipeline.TotalWork() <= 0 {
		t.Fatal("pipeline work must be positive")
	}
}
