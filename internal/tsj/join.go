package tsj

import (
	"errors"
	"sort"
	"sync/atomic"

	"repro/internal/mapreduce"
	"repro/internal/massjoin"
	"repro/internal/prefilter"
	"repro/internal/token"
)

// Join performs the bipartite NSLD join of the paper's problem statement
// (Sec. II-B): given R and P as one combined corpus whose first boundary
// strings are R and the rest are P, it returns every pair
// (A ∈ [0, boundary), B ∈ [boundary, n)) with NSLD <= opts.Threshold.
// Result.B is reported relative to the combined corpus (subtract boundary
// for a P-relative index).
//
// The pipeline is the self-join's with cross-side candidate enumeration:
// shared-token reducers pair R-side with P-side postings, and the
// similar-token expansion keeps only cross-side pairs. The self-join
// symmetry optimization (Sec. III-G.1) does not apply; the token-space
// NLD join runs bipartite over the two sides' token spaces.
func Join(combined *token.Corpus, boundary int, opts Options) ([]Result, *Stats, error) {
	if opts.Threshold < 0 || opts.Threshold >= 1 {
		return nil, nil, errors.New("tsj: threshold must be in [0, 1)")
	}
	if boundary < 0 || boundary > combined.NumStrings() {
		return nil, nil, errors.New("tsj: boundary out of range")
	}
	c := combined
	nr := token.StringID(boundary)
	st := &Stats{}
	ver := newVerifier(c, opts)
	engCfg := func(name string) mapreduce.Config {
		return mapreduce.Config{Name: name, MapTasks: opts.MapTasks, Parallelism: opts.Parallelism}
	}

	sids := make([]token.StringID, c.NumStrings())
	for i := range sids {
		sids[i] = token.StringID(i)
	}

	// ---- Job 0: token document frequencies ------------------------------
	type tokenFreq struct {
		id   token.TokenID
		freq int
	}
	freqs, st0 := mapreduce.Run(engCfg("tsj-join-token-freq"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, struct{}]) {
			for _, tid := range c.Members[sid] {
				ctx.Emit(tid, struct{}{})
			}
		},
		func(tid token.TokenID, vals []struct{}, ctx *mapreduce.ReduceCtx[tokenFreq]) {
			ctx.Emit(tokenFreq{tid, len(vals)})
		},
	)
	st.Pipeline.Add(st0)

	dropped := make([]bool, c.NumTokens())
	for _, tf := range freqs {
		if opts.MaxTokenFreq > 0 && tf.freq > opts.MaxTokenFreq {
			dropped[tf.id] = true
			st.DroppedTokens++
		}
	}
	st.KeptTokens = c.NumTokens() - st.DroppedTokens

	// Preamble: token-less strings pair across the boundary at NSLD 0.
	var results []Result
	var emptyR, emptyP []token.StringID
	for _, sid := range sids {
		if len(c.Members[sid]) == 0 {
			if sid < nr {
				emptyR = append(emptyR, sid)
			} else {
				emptyP = append(emptyP, sid)
			}
		}
	}
	for _, a := range emptyR {
		for _, b := range emptyP {
			results = append(results, Result{A: a, B: b})
			st.EmptyStringPairs++
		}
	}

	// ---- Job 1: shared-token candidates ---------------------------------
	// Prefix-filtered exactly like the self-join's: prefixes are computed
	// over the combined corpus, and the first-common-token rule plus the
	// positional/length filters apply to each cross-side pair.
	wantShared, wantSeg := prefixFilterWants(opts)
	var pf, pfSeg *prefilter.Index
	if wantShared || wantSeg {
		ix := prefilter.NewIndex(c, dropped, opts.Threshold)
		if wantShared {
			pf = ix
		}
		if wantSeg {
			pfSeg = ix
		}
	}
	var prefixPruned atomic.Int64
	sharedCands, st1 := mapreduce.Run(engCfg("tsj-join-shared-token"), sids,
		func(sid token.StringID, ctx *mapreduce.MapCtx[token.TokenID, token.StringID]) {
			if pf != nil {
				for _, tid := range pf.Prefix(sid) {
					ctx.Emit(tid, sid)
				}
				return
			}
			for _, tid := range c.Members[sid] {
				if !dropped[tid] {
					ctx.Emit(tid, sid)
				}
			}
		},
		func(tid token.TokenID, vals []token.StringID, ctx *mapreduce.ReduceCtx[uint64]) {
			var left, right []token.StringID
			for _, v := range vals {
				if v < nr {
					left = append(left, v)
				} else {
					right = append(right, v)
				}
			}
			sort.Slice(left, func(i, j int) bool { return left[i] < left[j] })
			sort.Slice(right, func(i, j int) bool { return right[i] < right[j] })
			var pruned int64
			for _, a := range left {
				for _, b := range right {
					if pf != nil {
						emit, prn := pf.Admit(tid, a, b)
						if !emit {
							if prn {
								pruned++
							}
							continue
						}
					}
					ctx.Emit(pairKey(a, b))
				}
			}
			if pruned > 0 {
				prefixPruned.Add(pruned)
			}
			ctx.AddCost(float64(len(left)) * float64(len(right)) * 0.05)
		},
	)
	st.Pipeline.Add(st1)
	st.SharedTokenCandidates = int64(len(sharedCands))
	st.PrefixPruned = prefixPruned.Load()
	candidates := sharedCands

	// ---- Jobs 2a+2b: similar-token candidates ----------------------------
	if opts.Matching == FuzzyTokenMatching {
		candidates = append(candidates, similarTokenCandidatesBipartite(c, nr, dropped, pfSeg, opts, st)...)
	}

	// ---- Job 3: dedup + filter + verify ----------------------------------
	var verified []Result
	var st3 *mapreduce.Stats
	switch opts.Dedup {
	case GroupOnBothStrings:
		verified, st3 = mapreduce.Run(engCfg("tsj-join-dedup-verify-bothstrings"), candidates,
			func(cand uint64, ctx *mapreduce.MapCtx[uint64, struct{}]) {
				ctx.Emit(cand, struct{}{})
			},
			func(k uint64, vals []struct{}, ctx *mapreduce.ReduceCtx[Result]) {
				a, b := unpackPair(k)
				pv := ver.get()
				ver.verifyPair(a, b, pv, ctx)
				ver.put(pv)
			},
		)
	default: // GroupOnOneString
		verified, st3 = mapreduce.Run(engCfg("tsj-join-dedup-verify-onestring"), candidates,
			func(cand uint64, ctx *mapreduce.MapCtx[token.StringID, token.StringID]) {
				a, b := unpackPair(cand)
				k, v := groupKey(a, b)
				ctx.Emit(k, v)
			},
			func(k token.StringID, partners []token.StringID, ctx *mapreduce.ReduceCtx[Result]) {
				seen := make(map[token.StringID]struct{}, len(partners))
				pv := ver.get()
				if ver.batch {
					// Batched path: dedup first, then verify the whole
					// partner list (one shared probe) in lane-width groups.
					pv.partners = pv.partners[:0]
					for _, p := range partners {
						if _, dup := seen[p]; dup {
							continue
						}
						seen[p] = struct{}{}
						pv.partners = append(pv.partners, p)
					}
					ver.verifyPartners(k, pv.partners, pv, ctx)
				} else {
					for _, p := range partners {
						if _, dup := seen[p]; dup {
							continue
						}
						seen[p] = struct{}{}
						// Restore id-ascending orientation.
						a, b := k, p
						if a > b {
							a, b = b, a
						}
						ver.verifyPair(a, b, pv, ctx)
					}
				}
				ver.put(pv)
			},
		)
	}
	// Flush the cross-key staged verdicts before the counters are read;
	// their results were deferred past the reducers' emit windows.
	verified = append(verified, ver.drain()...)
	st.Pipeline.Add(st3)
	st.DedupedCandidates = ver.lengthPruned.Load() + ver.lbPruned.Load() + ver.verified.Load()
	st.LengthPruned = ver.lengthPruned.Load()
	st.LBPruned = ver.lbPruned.Load()
	st.Verified = ver.verified.Load()
	st.BudgetPruned = ver.budgetPruned.Load()
	st.Results = ver.results.Load() + st.EmptyStringPairs
	st.BatchedPairs = ver.batchedPairs.Load()
	st.SIMDKernels = ver.simdKernels.Load()
	st.SIMDLanes = ver.simdLanes.Load()
	st.BatchScalarCells = ver.batchScalarCells.Load()

	results = append(results, verified...)
	sort.Slice(results, func(i, j int) bool {
		if results[i].A != results[j].A {
			return results[i].A < results[j].A
		}
		return results[i].B < results[j].B
	})
	return results, st, nil
}

// similarTokenCandidatesBipartite NLD-joins the R-side token space against
// the P-side token space with the bipartite MassJoin, then expands similar
// token pairs through cross-side postings. pfSeg, when non-nil, restricts
// both sides' postings to prefix membership (see
// similarTokenCandidatesPostings for the losslessness argument — the
// cross-side case is identical, with Job 1's bipartite reducers owning
// every shared-kept-token pair).
func similarTokenCandidatesBipartite(c *token.Corpus, nr token.StringID, dropped []bool, pfSeg *prefilter.Index, opts Options, st *Stats) []uint64 {
	// Postings split by side; a token may have postings on both.
	postR := make([][]token.StringID, c.NumTokens())
	postP := make([][]token.StringID, c.NumTokens())
	var segPruned int64
	for sid, mem := range c.Members {
		list := mem
		if pfSeg != nil {
			list = pfSeg.Prefix(token.StringID(sid))
			segPruned += int64(pfSeg.Distinct(token.StringID(sid)) - len(list))
		}
		for _, tid := range list {
			if token.StringID(sid) < nr {
				postR[tid] = append(postR[tid], token.StringID(sid))
			} else {
				postP[tid] = append(postP[tid], token.StringID(sid))
			}
		}
	}
	if pfSeg != nil {
		st.SegPrefixPruned = segPruned
	}

	// Token spaces per side (kept tokens that occur on that side).
	var rIdx, pIdx []token.TokenID
	var rRunes, pRunes [][]rune
	for tid := 0; tid < c.NumTokens(); tid++ {
		if dropped[tid] {
			continue
		}
		if len(postR[tid]) > 0 {
			rIdx = append(rIdx, token.TokenID(tid))
			rRunes = append(rRunes, c.TokenRunes[tid])
		}
		if len(postP[tid]) > 0 {
			pIdx = append(pIdx, token.TokenID(tid))
			pRunes = append(pRunes, c.TokenRunes[tid])
		}
	}

	mjCfg := massjoin.Config{
		MultiMatchAware: opts.MultiMatchAware,
		MapTasks:        opts.MapTasks,
		Parallelism:     opts.Parallelism,
		NamePrefix:      "tsj-join-similar-token",
	}
	pairs, pipe := massjoin.JoinNLD(rRunes, pRunes, opts.Threshold, mjCfg)
	st.Pipeline.Merge(pipe)
	st.SimilarTokenPairs = int64(len(pairs))

	// Combiner: collapse duplicate candidates at expansion time (see the
	// self-join counterpart for the rationale).
	seen := make(map[uint64]struct{})
	var cands []uint64
	var raw int64
	for _, p := range pairs {
		ta, tb := rIdx[p.A], pIdx[p.B]
		if ta == tb {
			// The identical token on both sides: covered by Job 1.
			continue
		}
		for _, sa := range postR[ta] {
			for _, sb := range postP[tb] {
				raw++
				k := pairKey(sa, sb)
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				cands = append(cands, k)
			}
		}
	}
	st.SimilarTokenCandidates = raw
	return cands
}
