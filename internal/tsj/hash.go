package tsj

import (
	"encoding/binary"
	"hash/fnv"

	"repro/internal/token"
)

// hashID fingerprints a string id, standing in for the paper's HASH
// fingerprint function over strings (ids are unique per string, as
// Sec. III-C notes "identifiers of the tokenized strings ... are used").
func hashID(id token.StringID) uint64 {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(id))
	h := fnv.New64a()
	h.Write(b[:])
	return h.Sum64()
}

// groupKey implements the grouping-on-one-string load-balancing rule of
// Sec. III-G.3 verbatim: for a pair (τ, υ), τ becomes the key if and only
// if int(HASH(τ) < HASH(υ)) == (HASH(τ)+HASH(υ)) % 2; otherwise υ does.
// The parity term flips roughly half the orderings so that hot strings do
// not always become keys.
func groupKey(a, b token.StringID) (key, val token.StringID) {
	ha, hb := hashID(a), hashID(b)
	lt := uint64(0)
	if ha < hb {
		lt = 1
	}
	if lt == (ha+hb)%2 {
		return a, b
	}
	return b, a
}

// pairKey packs an ordered pair of string ids into one comparable value.
func pairKey(a, b token.StringID) uint64 {
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// unpackPair reverses pairKey.
func unpackPair(k uint64) (a, b token.StringID) {
	return token.StringID(k >> 32), token.StringID(uint32(k))
}

// normPair orders a pair ascending.
func normPair(a, b token.StringID) (token.StringID, token.StringID) {
	if a > b {
		return b, a
	}
	return a, b
}
