package tsj

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

// buildBipartite merges two raw-name slices into one corpus with a
// boundary, mirroring how the public API drives Join.
func buildBipartite(r, p []string) (*token.Corpus, int) {
	combined := append(append([]string{}, r...), p...)
	return token.BuildCorpus(combined, token.WhitespaceAndPunct), len(r)
}

func bruteBipartite(c *token.Corpus, nr int, t float64) map[[2]int]int {
	want := make(map[[2]int]int)
	for i := 0; i < nr; i++ {
		for j := nr; j < c.NumStrings(); j++ {
			sld := core.SLD(c.Strings[i], c.Strings[j])
			if core.WithinNSLD(sld, c.Strings[i].AggregateLen(), c.Strings[j].AggregateLen(), t) {
				want[[2]int{i, j}] = sld
			}
		}
	}
	return want
}

func TestJoinBipartiteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, threshold := range []float64{0.1, 0.2} {
		for _, dedup := range []Dedup{GroupOnOneString, GroupOnBothStrings} {
			rc := nameCorpus(rng, 70)
			pc := nameCorpus(rng, 70)
			rNames := make([]string, rc.NumStrings())
			for i, s := range rc.Strings {
				rNames[i] = s.String()
			}
			pNames := make([]string, pc.NumStrings())
			for i, s := range pc.Strings {
				pNames[i] = s.String()
			}
			c, nr := buildBipartite(rNames, pNames)
			opts := DefaultOptions()
			opts.Threshold = threshold
			opts.MaxTokenFreq = 0
			opts.Dedup = dedup
			got, st, err := Join(c, nr, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteBipartite(c, nr, threshold)
			gs := resultSet(got)
			if len(gs) != len(want) {
				t.Fatalf("T=%v dedup=%v: got %d pairs, want %d\n%s",
					threshold, dedup, len(gs), len(want), describeDiff(want, gs, c))
			}
			for k, sld := range want {
				if g, ok := gs[k]; !ok || g != sld {
					t.Fatalf("pair %v: got (%d,%v), want %d", k, g, ok, sld)
				}
			}
			// Every result crosses the boundary.
			for _, r := range got {
				if int(r.A) >= nr || int(r.B) < nr {
					t.Fatalf("pair %+v does not cross the boundary %d", r, nr)
				}
			}
			if st.Results != int64(len(got)) {
				t.Fatalf("stats mismatch: %d vs %d", st.Results, len(got))
			}
		}
	}
}

func TestJoinNoSameSidePairs(t *testing.T) {
	// Two identical names on the R side must NOT pair with each other.
	c, nr := buildBipartite(
		[]string{"anna lee", "anna lee"},
		[]string{"anna leigh", "bob ross"},
	)
	opts := DefaultOptions()
	// NSLD(anna lee, anna leigh): LD(lee, leigh) = 3, so 6/19 ≈ 0.316.
	opts.Threshold = 0.35
	opts.MaxTokenFreq = 0
	got, _, err := Join(c, nr, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if int(r.A) >= nr || int(r.B) < nr {
			t.Fatalf("same-side pair leaked: %+v", r)
		}
	}
	// Both "anna lee" copies join "anna leigh".
	gs := resultSet(got)
	for _, want := range [][2]int{{0, 2}, {1, 2}} {
		if _, ok := gs[want]; !ok {
			t.Fatalf("missing %v in %v", want, gs)
		}
	}
}

func TestJoinExactTokenMatchingSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	rc := nameCorpus(rng, 80)
	rNames := make([]string, rc.NumStrings())
	for i, s := range rc.Strings {
		rNames[i] = s.String()
	}
	// P side: perturbed copies of R names.
	pNames := make([]string, len(rNames))
	for i, n := range rNames {
		pNames[i] = perturbName(rng, n)
	}
	c, nr := buildBipartite(rNames, pNames)
	base := DefaultOptions()
	base.Threshold = 0.2
	base.MaxTokenFreq = 0
	full, _, err := Join(c, nr, base)
	if err != nil {
		t.Fatal(err)
	}
	ex := base
	ex.Matching = ExactTokenMatching
	approx, _, err := Join(c, nr, ex)
	if err != nil {
		t.Fatal(err)
	}
	fs := resultSet(full)
	for k := range resultSet(approx) {
		if _, ok := fs[k]; !ok {
			t.Fatalf("exact-token-matching invented pair %v", k)
		}
	}
}

func TestJoinEmptyStringsAcrossBoundary(t *testing.T) {
	c, nr := buildBipartite([]string{"...", "john smith"}, []string{"!!!", "---"})
	opts := DefaultOptions()
	got, st, err := Join(c, nr, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The single empty R string pairs with both empty P strings; the two
	// empty P strings do NOT pair with each other (same side).
	if st.EmptyStringPairs != 2 || len(got) != 2 {
		t.Fatalf("got %d pairs, EmptyStringPairs=%d, want 2/2: %+v", len(got), st.EmptyStringPairs, got)
	}
}

func TestJoinBoundaryValidation(t *testing.T) {
	c, _ := buildBipartite([]string{"a"}, []string{"b"})
	opts := DefaultOptions()
	if _, _, err := Join(c, 5, opts); err == nil {
		t.Fatal("out-of-range boundary must error")
	}
	if _, _, err := Join(c, -1, opts); err == nil {
		t.Fatal("negative boundary must error")
	}
	opts.Threshold = 1.5
	if _, _, err := Join(c, 1, opts); err == nil {
		t.Fatal("bad threshold must error")
	}
}
