package tsj

import (
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/token"
)

// verifier is the filter+verify stage shared by both dedup strategies. The
// corpus acts as the distributed cache the paper resolves identifiers
// against ("the tokenized-string identifiers are resolved to the tokenized
// strings", Sec. III-F). Counters are atomic because reducers run
// concurrently.
type verifier struct {
	corpus *token.Corpus
	opts   Options

	lengthPruned atomic.Int64
	lbPruned     atomic.Int64
	verified     atomic.Int64
	results      atomic.Int64
}

// verifyPair runs the Sec. III-E filters and, if the candidate survives,
// the Sec. III-F verification, emitting a Result when NSLD <= T. The
// caller guarantees a < b.
func (v *verifier) verifyPair(a, b token.StringID, ctx *mapreduce.ReduceCtx[Result]) {
	x := &v.corpus.Strings[a]
	y := &v.corpus.Strings[b]
	la, lb := x.AggregateLen(), y.AggregateLen()
	t := v.opts.Threshold

	// Filter 1: aggregate-length pruning (Lemma 6 lower bound). Costs one
	// comparison on id-attached metadata.
	if !v.opts.DisableLengthFilter && core.LengthPrune(la, lb, t) {
		v.lengthPruned.Add(1)
		return
	}
	// Filter 2: token-length-histogram lower bound on SLD.
	if !v.opts.DisableLBFilter {
		ctx.AddCost(float64(x.Count() + y.Count()))
		if core.LowerBoundPrune(*x, *y, t) {
			v.lbPruned.Add(1)
			return
		}
	}

	// Verification. Charge the paper's stated complexity: the bigraph
	// construction O(L(x)*L(y)) plus the alignment term — O(k^3) for the
	// Hungarian algorithm (constant ~2 for its augmentation passes)
	// versus O(k^2 log k) for the greedy selection (Sec. III-G.5).
	k := x.Count()
	if y.Count() > k {
		k = y.Count()
	}
	align := 2 * float64(k*k*k)
	if v.opts.Aligning == GreedyAligning {
		align = float64(k*k) * math.Log2(float64(k)+1)
	}
	ctx.AddCost(float64(la*lb) + align)
	v.verified.Add(1)

	var sld int
	if v.opts.Aligning == GreedyAligning {
		sld = core.SLDGreedy(*x, *y)
	} else {
		sld = core.SLD(*x, *y)
	}
	if !core.WithinNSLD(sld, la, lb, t) {
		return
	}
	v.results.Add(1)
	ctx.Emit(Result{A: a, B: b, SLD: sld, NSLD: core.NSLDFromSLD(sld, la, lb)})
}
