package tsj

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/token"
)

// verifier is the filter+verify stage shared by both dedup strategies. The
// corpus acts as the distributed cache the paper resolves identifiers
// against ("the tokenized-string identifiers are resolved to the tokenized
// strings", Sec. III-F). Counters are atomic because reducers run
// concurrently; the per-worker verification engines (scratch matrices,
// Hungarian state, token-LD caches) live in a pool so reducers never
// share one and steady-state verification allocates nothing.
type verifier struct {
	corpus *token.Corpus
	opts   Options
	pool   sync.Pool // *pairVerifier
	// shared is the join-wide token-LD memo: one striped concurrent cache
	// for all reduce workers, so a hot token pair warms once per join
	// rather than once per pooled engine (nil when bounding or the cache
	// is disabled).
	shared *core.SharedTokenLDCache
	// batch gates the vectorized batched verify path of the
	// grouping-on-one-string reducers: on only when the kernel is live
	// (core.BatchKernelAvailable), bounded verification is on, and the
	// caller didn't opt out. Off, partner lists verify pair by pair
	// through the (token-LD-cached) scalar engine.
	batch bool
	// mu guards engines: every pairVerifier ever built, so drain can
	// flush stagers the sync.Pool may have dropped.
	mu      sync.Mutex
	engines []*pairVerifier

	lengthPruned     atomic.Int64
	lbPruned         atomic.Int64
	verified         atomic.Int64
	budgetPruned     atomic.Int64
	results          atomic.Int64
	batchedPairs     atomic.Int64
	simdKernels      atomic.Int64
	simdLanes        atomic.Int64
	batchScalarCells atomic.Int64
}

// pairVerifier is one worker's verification state: the threshold-aware
// core engine plus the position-aligned token-id buffers that feed its
// token-LD cache and the candidate-group scratch of the batched path.
type pairVerifier struct {
	v          core.Verifier
	xIDs, yIDs []token.TokenID
	partners   []token.StringID
	ids        []token.StringID
	ys         []*token.TokenizedString
	// staged records the reduce keys whose batched verdicts are pending
	// in the engine's stager: lanes pool token-pair cells across reduce
	// keys, and the post-job drain flushes and emits them.
	staged []stagedEmit
}

// stagedEmit is one reduce key's deferred batched emission: the verdict
// slots in res are retained by the engine's stager and land by the time
// drain's FlushBatch returns.
type stagedEmit struct {
	k   token.StringID
	la  int32
	ids []token.StringID
	lbs []int32
	res []core.BatchResult
}

// newVerifier builds the stage and its engine pool from the join options.
func newVerifier(c *token.Corpus, opts Options) *verifier {
	v := &verifier{corpus: c, opts: opts}
	if !opts.DisableBoundedVerify && !opts.DisableTokenLDCache {
		v.shared = core.NewSharedTokenLDCache(0)
	}
	v.batch = !opts.DisableSIMD && !opts.DisableBoundedVerify && core.BatchKernelAvailable()
	v.pool.New = func() any {
		pv := &pairVerifier{}
		pv.v.Greedy = opts.Aligning == GreedyAligning
		pv.v.Shared = v.shared
		// Engines carrying staged verdicts must survive until drain even
		// if the GC empties the sync.Pool, so the verifier keeps a strong
		// reference to every engine it ever built.
		v.mu.Lock()
		v.engines = append(v.engines, pv)
		v.mu.Unlock()
		return pv
	}
	return v
}

// expandIDs maps the multiset positions of ts onto corpus TokenIDs:
// members holds the string's distinct TokenIDs ascending, and both the
// tokens and the corpus token space are lexicographically sorted, so the
// distinct index advances exactly when the token changes.
func expandIDs(ts *token.TokenizedString, members []token.TokenID, buf []token.TokenID) []token.TokenID {
	buf = buf[:0]
	di := 0
	for i, tok := range ts.Tokens {
		if i > 0 && tok != ts.Tokens[i-1] {
			di++
		}
		buf = append(buf, members[di])
	}
	return buf
}

// get borrows a per-worker verification engine; callers hold it for a
// whole reduce task (not a single pair) so pool churn stays off the
// per-pair path and warmed token-LD caches survive longer.
func (v *verifier) get() *pairVerifier { return v.pool.Get().(*pairVerifier) }

// put returns an engine borrowed with get.
func (v *verifier) put(pv *pairVerifier) { v.pool.Put(pv) }

// verifyPair runs the Sec. III-E filters and, if the candidate survives,
// the Sec. III-F verification, emitting a Result when NSLD <= T. The
// caller guarantees a < b and supplies a borrowed engine (get/put).
func (v *verifier) verifyPair(a, b token.StringID, pv *pairVerifier, ctx *mapreduce.ReduceCtx[Result]) {
	x := &v.corpus.Strings[a]
	y := &v.corpus.Strings[b]
	la, lb := x.AggregateLen(), y.AggregateLen()
	t := v.opts.Threshold

	// Filter 1: aggregate-length pruning (Lemma 6 lower bound). Costs one
	// comparison on id-attached metadata.
	if !v.opts.DisableLengthFilter && core.LengthPrune(la, lb, t) {
		v.lengthPruned.Add(1)
		return
	}
	// Filter 2: token-length-histogram lower bound on SLD.
	if !v.opts.DisableLBFilter {
		ctx.AddCost(float64(x.Count() + y.Count()))
		if core.LowerBoundPrune(*x, *y, t) {
			v.lbPruned.Add(1)
			return
		}
	}

	// Verification. Charge the paper's stated complexity: the bigraph
	// construction O(L(x)*L(y)) plus the alignment term — O(k^3) for the
	// Hungarian algorithm (constant ~2 for its augmentation passes)
	// versus O(k^2 log k) for the greedy selection (Sec. III-G.5).
	k := x.Count()
	if y.Count() > k {
		k = y.Count()
	}
	align := 2 * float64(k*k*k)
	if v.opts.Aligning == GreedyAligning {
		align = float64(k*k) * math.Log2(float64(k)+1)
	}
	ctx.AddCost(float64(la*lb) + align)
	v.verified.Add(1)

	var sld int
	var within bool
	if v.opts.DisableBoundedVerify {
		if v.opts.Aligning == GreedyAligning {
			sld = core.SLDGreedy(*x, *y)
		} else {
			sld = core.SLD(*x, *y)
		}
		within = core.WithinNSLD(sld, la, lb, t)
	} else {
		var pruned bool
		if pv.v.Cache != nil || pv.v.Shared != nil {
			pv.xIDs = expandIDs(x, v.corpus.Members[a], pv.xIDs)
			pv.yIDs = expandIDs(y, v.corpus.Members[b], pv.yIDs)
			sld, within, pruned = pv.v.VerifyIDs(*x, *y, pv.xIDs, pv.yIDs, t)
		} else {
			sld, within, pruned = pv.v.Verify(*x, *y, t)
		}
		if pruned {
			v.budgetPruned.Add(1)
		}
	}
	if !within {
		return
	}
	v.results.Add(1)
	ctx.Emit(Result{A: a, B: b, SLD: sld, NSLD: core.NSLDFromSLD(sld, la, lb)})
}

// verifyPartners verifies one grouping-on-one-string reduce key's
// deduplicated partner list. Partners on the far side of the pair
// normalization (p < k, so the pair verifies as (p, k) with the partner
// as x) go through the scalar per-pair engine — verdicts, including
// greedy tie-breaking, which is orientation-sensitive, stay bit-identical
// to the unbatched reducer. Partners with k < p all share the probe
// x = Strings[k], so their filter survivors are STAGED on the engine
// (core.Verifier.StageBatch): their token-distance cells pool in kernel
// lanes alongside cells staged by this engine's other reduce keys, and
// the verdicts are deferred to the post-job drain. Cross-key pooling is
// what keeps lane fill near the vector width when individual partner
// lists are short. Results are identical to the per-pair loop,
// property-tested by TestSIMDEquivalenceJoin; the deferred pairs are
// emitted by drain, not through ctx, and join results are sorted before
// return.
func (v *verifier) verifyPartners(k token.StringID, partners []token.StringID, pv *pairVerifier, ctx *mapreduce.ReduceCtx[Result]) {
	x := &v.corpus.Strings[k]
	la := x.AggregateLen()
	t := v.opts.Threshold
	pv.ids = pv.ids[:0]
	pv.ys = pv.ys[:0]
	var lengthPruned, lbPruned, verified int64
	for _, p := range partners {
		if p < k {
			v.verifyPair(p, k, pv, ctx)
			continue
		}
		y := &v.corpus.Strings[p]
		lb := y.AggregateLen()
		// The Sec. III-E filters and the cost accounting, cell for cell
		// the same as verifyPair's.
		if !v.opts.DisableLengthFilter && core.LengthPrune(la, lb, t) {
			lengthPruned++
			continue
		}
		if !v.opts.DisableLBFilter {
			ctx.AddCost(float64(x.Count() + y.Count()))
			if core.LowerBoundPrune(*x, *y, t) {
				lbPruned++
				continue
			}
		}
		kk := x.Count()
		if y.Count() > kk {
			kk = y.Count()
		}
		align := 2 * float64(kk*kk*kk)
		if v.opts.Aligning == GreedyAligning {
			align = float64(kk*kk) * math.Log2(float64(kk)+1)
		}
		ctx.AddCost(float64(la*lb) + align)
		verified++
		pv.ids = append(pv.ids, p)
		pv.ys = append(pv.ys, y)
	}
	if lengthPruned > 0 {
		v.lengthPruned.Add(lengthPruned)
	}
	if lbPruned > 0 {
		v.lbPruned.Add(lbPruned)
	}
	if verified > 0 {
		v.verified.Add(verified)
	}
	if len(pv.ids) == 0 {
		return
	}
	// Exact-size allocations: the stager retains &res[i] verdict slots
	// until the drain's flush, so the backing array must never regrow.
	se := stagedEmit{
		k:   k,
		la:  int32(la),
		ids: append([]token.StringID(nil), pv.ids...),
		lbs: make([]int32, len(pv.ids)),
		res: make([]core.BatchResult, len(pv.ids)),
	}
	for i, y := range pv.ys {
		se.lbs[i] = int32(y.AggregateLen())
	}
	pv.v.StageBatch(*x, pv.ys, t, se.res)
	pv.staged = append(pv.staged, se)
}

// drain flushes every engine's stager and returns the deferred batched
// results, folding the verdict and kernel counters the staged pairs
// skipped at reduce time. Callers run it once, after the verify job's
// mapreduce.Run returns and before reading the verifier's counters; the
// engine registry (not the sync.Pool, which the GC may empty) guarantees
// no staged verdict is lost.
func (v *verifier) drain() []Result {
	v.mu.Lock()
	engines := v.engines
	v.mu.Unlock()
	var out []Result
	var budgetPruned, results int64
	var ctr core.BatchCounters
	for _, pv := range engines {
		pv.v.FlushBatch(&ctr)
		for _, se := range pv.staged {
			for i, r := range se.res {
				if r.Pruned {
					budgetPruned++
				}
				if r.Within {
					results++
					out = append(out, Result{
						A: se.k, B: se.ids[i], SLD: r.SLD,
						NSLD: core.NSLDFromSLD(r.SLD, int(se.la), int(se.lbs[i])),
					})
				}
			}
		}
		pv.staged = pv.staged[:0]
	}
	if budgetPruned > 0 {
		v.budgetPruned.Add(budgetPruned)
	}
	if results > 0 {
		v.results.Add(results)
	}
	if ctr.Batched > 0 {
		v.batchedPairs.Add(ctr.Batched)
	}
	if ctr.Kernels > 0 {
		v.simdKernels.Add(ctr.Kernels)
		v.simdLanes.Add(ctr.Lanes)
	}
	if ctr.ScalarCells > 0 {
		v.batchScalarCells.Add(ctr.ScalarCells)
	}
	return out
}
