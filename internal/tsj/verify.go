package tsj

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mapreduce"
	"repro/internal/token"
)

// verifier is the filter+verify stage shared by both dedup strategies. The
// corpus acts as the distributed cache the paper resolves identifiers
// against ("the tokenized-string identifiers are resolved to the tokenized
// strings", Sec. III-F). Counters are atomic because reducers run
// concurrently; the per-worker verification engines (scratch matrices,
// Hungarian state, token-LD caches) live in a pool so reducers never
// share one and steady-state verification allocates nothing.
type verifier struct {
	corpus *token.Corpus
	opts   Options
	pool   sync.Pool // *pairVerifier
	// shared is the join-wide token-LD memo: one striped concurrent cache
	// for all reduce workers, so a hot token pair warms once per join
	// rather than once per pooled engine (nil when bounding or the cache
	// is disabled).
	shared *core.SharedTokenLDCache
	// batch gates the vectorized batched verify path of the
	// grouping-on-one-string reducers: on only when the kernel is live
	// (core.BatchKernelAvailable), bounded verification is on, and the
	// caller didn't opt out. Off, partner lists verify pair by pair
	// through the (token-LD-cached) scalar engine.
	batch bool

	lengthPruned     atomic.Int64
	lbPruned         atomic.Int64
	verified         atomic.Int64
	budgetPruned     atomic.Int64
	results          atomic.Int64
	batchedPairs     atomic.Int64
	simdKernels      atomic.Int64
	simdLanes        atomic.Int64
	batchScalarCells atomic.Int64
}

// pairVerifier is one worker's verification state: the threshold-aware
// core engine plus the position-aligned token-id buffers that feed its
// token-LD cache and the candidate-group scratch of the batched path.
type pairVerifier struct {
	v          core.Verifier
	xIDs, yIDs []token.TokenID
	partners   []token.StringID
	ids        []token.StringID
	ys         []*token.TokenizedString
	res        []core.BatchResult
}

// newVerifier builds the stage and its engine pool from the join options.
func newVerifier(c *token.Corpus, opts Options) *verifier {
	v := &verifier{corpus: c, opts: opts}
	if !opts.DisableBoundedVerify && !opts.DisableTokenLDCache {
		v.shared = core.NewSharedTokenLDCache(0)
	}
	v.batch = !opts.DisableSIMD && !opts.DisableBoundedVerify && core.BatchKernelAvailable()
	v.pool.New = func() any {
		pv := &pairVerifier{}
		pv.v.Greedy = opts.Aligning == GreedyAligning
		pv.v.Shared = v.shared
		return pv
	}
	return v
}

// expandIDs maps the multiset positions of ts onto corpus TokenIDs:
// members holds the string's distinct TokenIDs ascending, and both the
// tokens and the corpus token space are lexicographically sorted, so the
// distinct index advances exactly when the token changes.
func expandIDs(ts *token.TokenizedString, members []token.TokenID, buf []token.TokenID) []token.TokenID {
	buf = buf[:0]
	di := 0
	for i, tok := range ts.Tokens {
		if i > 0 && tok != ts.Tokens[i-1] {
			di++
		}
		buf = append(buf, members[di])
	}
	return buf
}

// get borrows a per-worker verification engine; callers hold it for a
// whole reduce task (not a single pair) so pool churn stays off the
// per-pair path and warmed token-LD caches survive longer.
func (v *verifier) get() *pairVerifier { return v.pool.Get().(*pairVerifier) }

// put returns an engine borrowed with get.
func (v *verifier) put(pv *pairVerifier) { v.pool.Put(pv) }

// verifyPair runs the Sec. III-E filters and, if the candidate survives,
// the Sec. III-F verification, emitting a Result when NSLD <= T. The
// caller guarantees a < b and supplies a borrowed engine (get/put).
func (v *verifier) verifyPair(a, b token.StringID, pv *pairVerifier, ctx *mapreduce.ReduceCtx[Result]) {
	x := &v.corpus.Strings[a]
	y := &v.corpus.Strings[b]
	la, lb := x.AggregateLen(), y.AggregateLen()
	t := v.opts.Threshold

	// Filter 1: aggregate-length pruning (Lemma 6 lower bound). Costs one
	// comparison on id-attached metadata.
	if !v.opts.DisableLengthFilter && core.LengthPrune(la, lb, t) {
		v.lengthPruned.Add(1)
		return
	}
	// Filter 2: token-length-histogram lower bound on SLD.
	if !v.opts.DisableLBFilter {
		ctx.AddCost(float64(x.Count() + y.Count()))
		if core.LowerBoundPrune(*x, *y, t) {
			v.lbPruned.Add(1)
			return
		}
	}

	// Verification. Charge the paper's stated complexity: the bigraph
	// construction O(L(x)*L(y)) plus the alignment term — O(k^3) for the
	// Hungarian algorithm (constant ~2 for its augmentation passes)
	// versus O(k^2 log k) for the greedy selection (Sec. III-G.5).
	k := x.Count()
	if y.Count() > k {
		k = y.Count()
	}
	align := 2 * float64(k*k*k)
	if v.opts.Aligning == GreedyAligning {
		align = float64(k*k) * math.Log2(float64(k)+1)
	}
	ctx.AddCost(float64(la*lb) + align)
	v.verified.Add(1)

	var sld int
	var within bool
	if v.opts.DisableBoundedVerify {
		if v.opts.Aligning == GreedyAligning {
			sld = core.SLDGreedy(*x, *y)
		} else {
			sld = core.SLD(*x, *y)
		}
		within = core.WithinNSLD(sld, la, lb, t)
	} else {
		var pruned bool
		if pv.v.Cache != nil || pv.v.Shared != nil {
			pv.xIDs = expandIDs(x, v.corpus.Members[a], pv.xIDs)
			pv.yIDs = expandIDs(y, v.corpus.Members[b], pv.yIDs)
			sld, within, pruned = pv.v.VerifyIDs(*x, *y, pv.xIDs, pv.yIDs, t)
		} else {
			sld, within, pruned = pv.v.Verify(*x, *y, t)
		}
		if pruned {
			v.budgetPruned.Add(1)
		}
	}
	if !within {
		return
	}
	v.results.Add(1)
	ctx.Emit(Result{A: a, B: b, SLD: sld, NSLD: core.NSLDFromSLD(sld, la, lb)})
}

// verifyPartners verifies one grouping-on-one-string reduce key's
// deduplicated partner list. Partners on the far side of the pair
// normalization (p < k, so the pair verifies as (p, k) with the partner
// as x) go through the scalar per-pair engine — verdicts, including
// greedy tie-breaking, which is orientation-sensitive, stay bit-identical
// to the unbatched reducer. Partners with k < p all share the probe
// x = Strings[k], so their filter survivors verify as one batch whose
// token-distance cells run a vector-lane-width at a time
// (core.Verifier.VerifyBatch); results are identical, property-tested by
// TestSIMDEquivalenceJoin. Emission order within a reduce key differs
// from the per-pair loop, but join results are sorted before return.
func (v *verifier) verifyPartners(k token.StringID, partners []token.StringID, pv *pairVerifier, ctx *mapreduce.ReduceCtx[Result]) {
	x := &v.corpus.Strings[k]
	la := x.AggregateLen()
	t := v.opts.Threshold
	pv.ids = pv.ids[:0]
	pv.ys = pv.ys[:0]
	var lengthPruned, lbPruned, verified int64
	for _, p := range partners {
		if p < k {
			v.verifyPair(p, k, pv, ctx)
			continue
		}
		y := &v.corpus.Strings[p]
		lb := y.AggregateLen()
		// The Sec. III-E filters and the cost accounting, cell for cell
		// the same as verifyPair's.
		if !v.opts.DisableLengthFilter && core.LengthPrune(la, lb, t) {
			lengthPruned++
			continue
		}
		if !v.opts.DisableLBFilter {
			ctx.AddCost(float64(x.Count() + y.Count()))
			if core.LowerBoundPrune(*x, *y, t) {
				lbPruned++
				continue
			}
		}
		kk := x.Count()
		if y.Count() > kk {
			kk = y.Count()
		}
		align := 2 * float64(kk*kk*kk)
		if v.opts.Aligning == GreedyAligning {
			align = float64(kk*kk) * math.Log2(float64(kk)+1)
		}
		ctx.AddCost(float64(la*lb) + align)
		verified++
		pv.ids = append(pv.ids, p)
		pv.ys = append(pv.ys, y)
	}
	if lengthPruned > 0 {
		v.lengthPruned.Add(lengthPruned)
	}
	if lbPruned > 0 {
		v.lbPruned.Add(lbPruned)
	}
	if verified > 0 {
		v.verified.Add(verified)
	}
	if len(pv.ids) == 0 {
		return
	}
	if cap(pv.res) < len(pv.ids) {
		pv.res = make([]core.BatchResult, len(pv.ids), 2*len(pv.ids))
	}
	pv.res = pv.res[:len(pv.ids)]
	var ctr core.BatchCounters
	pv.v.VerifyBatch(*x, pv.ys, t, pv.res, &ctr)
	var budgetPruned, results int64
	for i, r := range pv.res {
		if r.Pruned {
			budgetPruned++
		}
		if r.Within {
			results++
			ctx.Emit(Result{A: k, B: pv.ids[i], SLD: r.SLD, NSLD: core.NSLDFromSLD(r.SLD, la, pv.ys[i].AggregateLen())})
		}
	}
	if budgetPruned > 0 {
		v.budgetPruned.Add(budgetPruned)
	}
	if results > 0 {
		v.results.Add(results)
	}
	v.batchedPairs.Add(ctr.Batched)
	if ctr.Kernels > 0 {
		v.simdKernels.Add(ctr.Kernels)
		v.simdLanes.Add(ctr.Lanes)
	}
	if ctr.ScalarCells > 0 {
		v.batchScalarCells.Add(ctr.ScalarCells)
	}
}
