// Package prefilter implements threshold-aware candidate pruning for the
// shared-token candidate-generation path: PASS-JOIN/prefix-filter style
// prefix probing plus a positional filter, specialized to the NSLD
// threshold semantics of the paper.
//
// The key observation: every token occurrence of x that is not matched to
// an identical token of y contributes at least one edit to SLD(x, y), so a
// pair with NSLD <= T has at most B = MaxSLDWithin(T, L(x), L(y)) distinct
// tokens on either side without an identical partner on the other. Order
// the token space by a fixed global total order (document frequency
// ascending, TokenID ascending on ties — rarest first) and call the first
//
//	p(x) = min(|distinct(x)|, MaxErrors(T, L(x)) + 1)
//
// tokens of x under that order its prefix. Then for any pair with
// NSLD <= T that shares at least one token, the two prefixes share a
// token (see FirstCommon for the argument). The shared-token generator may
// therefore index and probe prefixes only — the pairs it no longer emits
// are exactly pairs that either share no token (never job-1's
// responsibility) or cannot satisfy the threshold (pruned losslessly).
//
// MaxErrors bounds B without knowing the partner: by Lemma 6 a pair with
// NSLD <= T has L(y) <= L(x)/(1-T), and MaxSLDWithin is monotone in the
// aggregate-length sum, so B <= MaxErrors(T, L(x)) for every admissible
// partner.
package prefilter

import (
	"sort"

	"repro/internal/core"
	"repro/internal/token"
)

// MaxPartnerAggLen returns the largest aggregate length a string within
// NSLD threshold t of a string with aggregate length aggLen can have.
// Derivation: NSLD <= t implies sld <= t*(La+Lb)/(2-t), and sld >= Lb-La
// for Lb >= La (each missing rune must be inserted), which rearranges to
// Lb <= La/(1-t).
func MaxPartnerAggLen(t float64, aggLen int) int {
	if t <= 0 {
		return aggLen
	}
	if t >= 1 {
		// Degenerate: the Lemma 6 bound is vacuous. Callers gate on
		// t < 1 (join thresholds live in [0, 1)); return a safe identity.
		return aggLen
	}
	lb := int(float64(aggLen) / (1 - t))
	// Snap to the exact boundary of the integer inequality La >= (1-t)*Lb
	// so float rounding never undercounts an admissible partner.
	for float64(aggLen) >= (1-t)*float64(lb+1) {
		lb++
	}
	return lb
}

// MaxErrors returns B(x): an upper bound on SLD(x, y) over every y with
// NSLD(x, y) <= t, computed from x's aggregate length alone. The prefix
// length of x is MaxErrors + 1.
func MaxErrors(t float64, aggLen int) int {
	if t < 0 {
		return -1
	}
	return core.MaxSLDWithin(t, aggLen, MaxPartnerAggLen(t, aggLen))
}

// PrefixLen returns the number of rarest-first distinct tokens of a string
// with the given aggregate length and distinct-token count that the
// shared-token generator must index/probe: min(distinct, MaxErrors + 1).
func PrefixLen(t float64, aggLen, distinct int) int {
	p := MaxErrors(t, aggLen) + 1
	if p > distinct {
		p = distinct
	}
	if p < 0 {
		p = 0
	}
	return p
}

// SegmentPrefixLen returns the number of rarest-first distinct tokens of
// a string whose segments the similar-token generator must index/probe.
// The bound is the same min(distinct, MaxErrors + 1) as the shared-token
// prefix, but the argument differs, because a similar-token witness need
// not be a shared token:
//
// Let (x, y) satisfy NSLD <= t and suppose the similar-token path is the
// pair's only generator — x and y share no (kept) token. Then every
// distinct (kept) token of x lies in distinct(x) \ distinct(y); each such
// token has at least one occurrence matched to a non-identical partner or
// unmatched, costing >= 1 edit apiece, so
//
//	|distinct(x)| <= SLD(x, y) <= MaxSLDWithin(t, L(x), L(y)) <= MaxErrors(t, L(x))
//
// (the last step by Lemma 6 monotonicity, exactly as in MaxErrors). The
// prefix length min(distinct, MaxErrors+1) then equals distinct: the
// threshold-derived prefix is *untruncated*, and every token — in
// particular every similar-witness carrier — is a prefix token. A pair
// that does share a token is the shared-token path's responsibility (its
// prefixes intersect; see FirstCommon / markPrefix), so restricting the
// segment index to prefix tokens on both the probe and the storage side
// loses no pair.
//
// Two boundary notes. First, nothing above consults the order itself —
// only the prefix length, which depends on L and the distinct count
// alone. Probe-side and storage-side selections may therefore use
// different (even arbitrarily stale) frequency orders and remain
// lossless. Second, under a finite max-frequency cutoff M the dichotomy
// leaks: a pair whose every shared token exceeds M is invisible to the
// shared-token path, yet its witness carrier can sit outside a truncated
// prefix — necessarily with frequency above M, since it is then at least
// as frequent as a shared prefix token that the M-gate rejected. Probe
// sides handle this by also probing tokens beyond the cutoff; storage
// sides cannot (the index side's frequencies at insert time may lie
// below a cutoff the token crosses later), so storage pruning is only
// performed when M is unlimited.
func SegmentPrefixLen(t float64, aggLen, distinct int) int {
	return PrefixLen(t, aggLen, distinct)
}

// Index is the batch-side pruning state for one join: the global token
// order and every string's prefix under it. Build it once after the
// token-frequency job; it is immutable afterwards and safe for concurrent
// readers (the reduce workers).
type Index struct {
	c *token.Corpus
	t float64

	// rank maps TokenID -> position in the global rarest-first order;
	// dropped tokens get rank -1 and never appear in prefixes.
	rank []int32
	// prefix[sid] holds the string's prefix tokens sorted by rank
	// ascending (the head of its full rank-sorted kept-distinct list).
	prefix [][]token.TokenID
	// distinct[sid] is the string's kept-distinct token count, the |D'|
	// term of the positional filter.
	distinct []int32
	// aggLen[sid] caches the string's aggregate length, saving a
	// TokenizedString copy per Admit call on the hot reducer path.
	aggLen []int32
	// budgetBySum[la+lb] precomputes MaxSLDWithin(t, la, lb), which
	// depends only on the aggregate-length sum; Admit runs once per
	// co-occurring pair, so the iterative boundary snap is hoisted here.
	budgetBySum []int
}

// NewIndex builds the pruning index for a corpus at threshold t. dropped
// marks tokens excluded by the max-frequency cutoff M (nil = none): they
// take no part in the order or the prefixes, which preserves the exact
// candidate semantics of the unfiltered generator under the same M.
func NewIndex(c *token.Corpus, dropped []bool, t float64) *Index {
	ix := &Index{
		c:        c,
		t:        t,
		rank:     make([]int32, c.NumTokens()),
		prefix:   make([][]token.TokenID, c.NumStrings()),
		distinct: make([]int32, c.NumStrings()),
		aggLen:   make([]int32, c.NumStrings()),
	}
	maxLen := 0
	for sid := range c.Strings {
		l := c.Strings[sid].AggregateLen()
		ix.aggLen[sid] = int32(l)
		if l > maxLen {
			maxLen = l
		}
	}
	ix.budgetBySum = make([]int, 2*maxLen+1)
	for sum := range ix.budgetBySum {
		ix.budgetBySum[sum] = core.MaxSLDWithin(t, sum, 0)
	}
	// Global order: kept tokens by (document frequency asc, TokenID asc).
	// The deterministic tie-break is load-bearing: prefix sets must agree
	// across workers, shards, and the batch/stream engines, and document
	// frequencies tie constantly in real corpora.
	kept := make([]token.TokenID, 0, c.NumTokens())
	for tid := 0; tid < c.NumTokens(); tid++ {
		if dropped == nil || !dropped[tid] {
			kept = append(kept, token.TokenID(tid))
		} else {
			ix.rank[tid] = -1
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		fi, fj := c.Freq[kept[i]], c.Freq[kept[j]]
		if fi != fj {
			return fi < fj
		}
		return kept[i] < kept[j]
	})
	for r, tid := range kept {
		ix.rank[tid] = int32(r)
	}

	// Per-string prefixes: rank-sort the kept members, keep the head.
	var scratch []token.TokenID
	for sid := range c.Members {
		scratch = scratch[:0]
		for _, tid := range c.Members[sid] {
			if ix.rank[tid] >= 0 {
				scratch = append(scratch, tid)
			}
		}
		ix.distinct[sid] = int32(len(scratch))
		p := PrefixLen(t, c.Strings[sid].AggregateLen(), len(scratch))
		if p == 0 {
			continue
		}
		sort.Slice(scratch, func(i, j int) bool { return ix.rank[scratch[i]] < ix.rank[scratch[j]] })
		ix.prefix[sid] = append([]token.TokenID(nil), scratch[:p]...)
	}
	return ix
}

// NewIndexFromRanked builds the pruning index from externally maintained
// order state instead of computing it: rank maps every token to its
// position in a fixed total order (all values >= 0; the persistent
// corpus's epoch-stamped frozen order), and ranked[sid] holds each
// string's distinct tokens already sorted by that order. Each string's
// prefix is then just a slice of its ranked list — no global sort and no
// per-string sort, which is what lets one stored order serve joins at
// many thresholds with zero rebuilds.
//
// Losslessness does not require the order to be frequency-sorted: every
// argument in this package (FirstCommon's prefix-intersection theorem and
// Admit's positional filter) assumes only some fixed total order shared
// by all strings. A stale order — frozen while frequencies kept drifting
// — therefore prunes exactly as correctly as a fresh one; it may merely
// prune less effectively. alive masks tombstoned strings (nil = all
// alive): they get empty prefixes and zero distinct counts, so they can
// neither emit nor admit. dropped marks tokens excluded by the
// max-frequency cutoff, exactly as in NewIndex; dropped tokens are
// stripped from the ranked lists before slicing, which preserves the
// kept-token prefix semantics.
func NewIndexFromRanked(c *token.Corpus, dropped []bool, rank []int32, ranked [][]token.TokenID, alive []bool, t float64) *Index {
	ix := &Index{
		c:        c,
		t:        t,
		rank:     make([]int32, c.NumTokens()),
		prefix:   make([][]token.TokenID, c.NumStrings()),
		distinct: make([]int32, c.NumStrings()),
		aggLen:   make([]int32, c.NumStrings()),
	}
	anyDropped := false
	for tid := 0; tid < c.NumTokens(); tid++ {
		if dropped != nil && dropped[tid] {
			ix.rank[tid] = -1
			anyDropped = true
		} else {
			ix.rank[tid] = rank[tid]
		}
	}
	maxLen := 0
	for sid := range c.Strings {
		if alive != nil && !alive[sid] {
			continue
		}
		l := c.Strings[sid].AggregateLen()
		ix.aggLen[sid] = int32(l)
		if l > maxLen {
			maxLen = l
		}
	}
	ix.budgetBySum = make([]int, 2*maxLen+1)
	for sum := range ix.budgetBySum {
		ix.budgetBySum[sum] = core.MaxSLDWithin(t, sum, 0)
	}
	var scratch []token.TokenID
	for sid := range ranked {
		if alive != nil && !alive[sid] {
			continue
		}
		list := ranked[sid]
		if anyDropped {
			// Strip dropped tokens; the remainder keeps its rank order.
			scratch = scratch[:0]
			for _, tid := range list {
				if ix.rank[tid] >= 0 {
					scratch = append(scratch, tid)
				}
			}
			list = scratch
		}
		ix.distinct[sid] = int32(len(list))
		p := PrefixLen(t, int(ix.aggLen[sid]), len(list))
		if p == 0 {
			continue
		}
		if anyDropped && len(list) != len(ranked[sid]) {
			// The filtered list lives in scratch; the prefix needs its own
			// storage.
			ix.prefix[sid] = append([]token.TokenID(nil), list[:p]...)
		} else {
			// Common case (no cutoff in play): share the stored list. The
			// caller guarantees it is never mutated after capture.
			ix.prefix[sid] = ranked[sid][:p:p]
		}
	}
	return ix
}

// Prefix returns the string's prefix tokens (rank-ascending). The caller
// must not mutate the returned slice.
func (ix *Index) Prefix(sid token.StringID) []token.TokenID { return ix.prefix[sid] }

// Distinct returns the string's kept-distinct token count (the |D'| term
// of the positional filter; 0 for tombstoned strings).
func (ix *Index) Distinct(sid token.StringID) int { return int(ix.distinct[sid]) }

// FirstCommon returns the first token (in the global order) present in
// both prefixes, with its position in each, or ok = false when the
// prefixes are disjoint.
//
// Why the first prefix-common token governs the pair: suppose prefixes
// were disjoint for a pair with NSLD <= T sharing a kept token, and let a
// (resp. b) be the last prefix element of x (resp. y), with, WLOG,
// rank(a) <= rank(b). Every prefix token of x precedes b, so if it were
// in distinct(y) it would be in y's prefix — contradiction with
// disjointness. Hence prefix(x) ⊆ distinct(x)\distinct(y), whose size is
// at most SLD <= B < |prefix(x)| (or the prefix is all of distinct(x) and
// the pair shares no token at all). Either way: contradiction.
func (ix *Index) FirstCommon(a, b token.StringID) (tid token.TokenID, posA, posB int, ok bool) {
	pa, pb := ix.prefix[a], ix.prefix[b]
	i, j := 0, 0
	for i < len(pa) && j < len(pb) {
		ra, rb := ix.rank[pa[i]], ix.rank[pb[j]]
		switch {
		case ra == rb:
			return pa[i], i, j, true
		case ra < rb:
			i++
		default:
			j++
		}
	}
	return 0, 0, 0, false
}

// Admit decides, inside the posting-list reducer of token z, whether the
// pair (a, b) should be emitted there. Exactly one reducer emits each
// surviving pair (the one owning the pair's first prefix-common token),
// and a pair is rejected — pruned — there when the aggregate-length filter
// or the positional filter proves NSLD > t.
//
// Positional filter: all tokens common to distinct(a) and distinct(b) sit
// at rank-order positions >= posA in a and >= posB in b (any earlier
// common token would contradict z being the first prefix-common token —
// see FirstCommon), so the overlap is at most
// 1 + min(|D'a|-posA-1, |D'b|-posB-1); a pair within the threshold needs
// overlap >= max(|D'a|, |D'b|) - MaxSLDWithin(t, La, Lb).
func (ix *Index) Admit(z token.TokenID, a, b token.StringID) (emit, pruned bool) {
	first, posA, posB, ok := ix.FirstCommon(a, b)
	if !ok || first != z {
		return false, false // another reducer owns the pair
	}
	la := int(ix.aggLen[a])
	lb := int(ix.aggLen[b])
	if core.LengthPrune(la, lb, ix.t) {
		return false, true
	}
	budget := ix.budgetBySum[la+lb]
	da, db := int(ix.distinct[a]), int(ix.distinct[b])
	req := da
	if db > req {
		req = db
	}
	req -= budget
	if req > 1 {
		ubound := 1 + min(da-posA-1, db-posB-1)
		if ubound < req {
			return false, true
		}
	}
	return true, false
}
