package prefilter

import (
	"testing"

	"repro/internal/core"
	"repro/internal/token"
)

// TestMaxPartnerAggLenBoundary: the returned length is admissible under
// the exact integer form of Lemma 6 and the next one is not.
func TestMaxPartnerAggLenBoundary(t *testing.T) {
	for _, th := range []float64{0, 0.05, 0.1, 0.25, 0.5, 0.9} {
		for _, l := range []int{0, 1, 2, 5, 17, 100, 1000} {
			lb := MaxPartnerAggLen(th, l)
			if lb < l {
				t.Fatalf("t=%g l=%d: partner bound %d below own length", th, l, lb)
			}
			if th > 0 && th < 1 {
				if float64(l) < (1-th)*float64(lb)-1e-9 {
					t.Fatalf("t=%g l=%d: bound %d not admissible", th, l, lb)
				}
				if !(float64(l) < (1-th)*float64(lb+1)-1e-9) && float64(l) >= (1-th)*float64(lb+1) {
					t.Fatalf("t=%g l=%d: bound %d not maximal", th, l, lb)
				}
			}
		}
	}
}

// TestMaxErrorsDominatesPairBudget: MaxErrors(t, L(x)) >= MaxSLDWithin(t,
// L(x), L(y)) for every partner length admissible under Lemma 6 — the
// property the per-string prefix length rests on.
func TestMaxErrorsDominatesPairBudget(t *testing.T) {
	for _, th := range []float64{0.05, 0.1, 0.2, 0.35} {
		for _, lx := range []int{1, 3, 8, 20, 60} {
			b := MaxErrors(th, lx)
			for ly := 0; ly <= MaxPartnerAggLen(th, lx); ly++ {
				if pair := core.MaxSLDWithin(th, lx, ly); pair > b {
					t.Fatalf("t=%g lx=%d ly=%d: pair budget %d exceeds MaxErrors %d",
						th, lx, ly, pair, b)
				}
			}
		}
	}
}

// TestPrefixLenShrinks: small thresholds yield prefixes far shorter than
// the distinct-token count — the point of the filter.
func TestPrefixLenShrinks(t *testing.T) {
	// 10 tokens of 6 runes each: aggregate 60, distinct 10.
	if p := PrefixLen(0.1, 60, 10); p >= 10 {
		t.Fatalf("PrefixLen(0.1, 60, 10) = %d, want < 10", p)
	}
	if p := PrefixLen(0, 60, 10); p != 1 {
		t.Fatalf("PrefixLen(0, 60, 10) = %d, want 1 (zero threshold: exact duplicates share every token)", p)
	}
	if p := PrefixLen(0.9, 60, 10); p != 10 {
		t.Fatalf("PrefixLen(0.9, 60, 10) = %d, want full set at a lax threshold", p)
	}
}

// TestIndexDeterministicUnderTies: with every token at the same document
// frequency, the order must fall back to TokenID (lexicographic token
// order) and prefixes must be reproducible across builds.
func TestIndexDeterministicUnderTies(t *testing.T) {
	raw := []string{
		"delta echo alpha",
		"bravo charlie foxtrot",
		"golf hotel india",
	}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	a := NewIndex(c, nil, 0.2)
	b := NewIndex(c, nil, 0.2)
	for sid := 0; sid < c.NumStrings(); sid++ {
		pa, pb := a.Prefix(token.StringID(sid)), b.Prefix(token.StringID(sid))
		if len(pa) != len(pb) {
			t.Fatalf("sid %d: prefix lengths differ across builds", sid)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("sid %d: prefix token %d differs across builds", sid, i)
			}
		}
		// Every token has freq 1 here, so the prefix must be the
		// lexicographically (TokenID-) smallest members.
		mem := c.Members[sid]
		for i, tid := range pa {
			if tid != mem[i] {
				t.Fatalf("sid %d: tie-break not by TokenID: prefix[%d]=%d want %d",
					sid, i, tid, mem[i])
			}
		}
	}
}

// TestFirstCommonSymmetric: FirstCommon agrees with a brute-force scan and
// is symmetric in its positions.
func TestFirstCommonSymmetric(t *testing.T) {
	raw := []string{
		"alpha bravo charlie delta",
		"alpha bravo echo foxtrot",
		"zulu yankee",
	}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	ix := NewIndex(c, nil, 0.5)

	tid, pa, pb, ok := ix.FirstCommon(0, 1)
	if !ok {
		t.Fatal("strings 0 and 1 share tokens; FirstCommon found none")
	}
	tid2, pb2, pa2, ok2 := ix.FirstCommon(1, 0)
	if !ok2 || tid2 != tid || pa2 != pa || pb2 != pb {
		t.Fatalf("FirstCommon not symmetric: (%d,%d,%d) vs (%d,%d,%d)", tid, pa, pb, tid2, pa2, pb2)
	}
	if _, _, _, ok := ix.FirstCommon(0, 2); ok {
		t.Fatal("disjoint strings reported a common prefix token")
	}
}

// TestDroppedTokensExcluded: dropped tokens take no rank and never appear
// in prefixes.
func TestDroppedTokensExcluded(t *testing.T) {
	raw := []string{"hot alpha", "hot bravo", "hot charlie"}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	dropped := make([]bool, c.NumTokens())
	hot, ok := c.TokenIDOf("hot")
	if !ok {
		t.Fatal("token 'hot' missing")
	}
	dropped[hot] = true
	ix := NewIndex(c, dropped, 0.4)
	for sid := 0; sid < c.NumStrings(); sid++ {
		for _, tid := range ix.Prefix(token.StringID(sid)) {
			if tid == hot {
				t.Fatalf("sid %d: dropped token in prefix", sid)
			}
		}
	}
}
