// Package fuzzyset implements the weighted set-based fuzzy similarity
// measures of Wang, Li, Feng (TODS 2014) — fuzzy Jaccard, fuzzy Cosine and
// fuzzy Dice — that Sec. V-D compares NSLD against.
//
// Two tokens may "fuzzily overlap" when their edit similarity exceeds a
// token threshold δ; the fuzzy overlap of two token sets is the maximum
// total similarity over one-to-one token matchings; the set-level measure
// normalizes the overlap Jaccard/Cosine/Dice-style. Token weights (the
// "weighted versions" the paper evaluates) default to IDF computed from a
// corpus; without a corpus all weights are 1.
//
// As the paper notes, these measures require two unrelated thresholds
// (δ on tokens, plus the join threshold) and are provably non-metric; they
// exist here for the Fig. 6 accuracy comparison, where distance is taken
// as 1 - similarity.
package fuzzyset

import (
	"math"

	"repro/internal/assignment"
	"repro/internal/strdist"
	"repro/internal/token"
)

// Measure selects the set-level normalization.
type Measure int

const (
	FJaccard Measure = iota
	FCosine
	FDice
)

func (m Measure) String() string {
	switch m {
	case FJaccard:
		return "weighted FJaccard"
	case FCosine:
		return "weighted FCosine"
	case FDice:
		return "weighted FDice"
	}
	return "unknown"
}

// Weigher returns the weight of a token. Weights must be positive.
type Weigher func(tok string) float64

// UniformWeights weighs every token 1.
func UniformWeights(string) float64 { return 1 }

// IDFWeights builds an inverse-document-frequency weigher from a corpus:
// w(t) = ln(1 + N/freq(t)). Unknown tokens get the maximum weight.
func IDFWeights(c *token.Corpus) Weigher {
	n := float64(c.NumStrings())
	return func(tok string) float64 {
		if id, ok := c.TokenIDOf(tok); ok && c.Freq[id] > 0 {
			return math.Log1p(n / float64(c.Freq[id]))
		}
		return math.Log1p(n)
	}
}

// Options configures the measure family.
type Options struct {
	// TokenThreshold is δ: the minimum edit similarity 1 - NLD for two
	// tokens to be allowed to match (Wang et al.'s T1). 0.75 is a common
	// setting for names.
	TokenThreshold float64
	// Weights weighs tokens; nil means uniform.
	Weights Weigher
}

// DefaultOptions uses δ = 0.75 and uniform weights.
func DefaultOptions() Options { return Options{TokenThreshold: 0.75} }

// Similarity returns the fuzzy similarity of two tokenized strings in
// [0, 1] under the selected measure.
func Similarity(m Measure, x, y token.TokenizedString, opt Options) float64 {
	if opt.Weights == nil {
		opt.Weights = UniformWeights
	}
	wx := totalWeight(x, opt.Weights)
	wy := totalWeight(y, opt.Weights)
	if wx == 0 && wy == 0 {
		return 1 // both empty: identical
	}
	if wx == 0 || wy == 0 {
		return 0
	}
	o := fuzzyOverlap(x, y, opt)
	switch m {
	case FJaccard:
		return o / (wx + wy - o)
	case FCosine:
		return o / math.Sqrt(wx*wy)
	case FDice:
		return 2 * o / (wx + wy)
	}
	return 0
}

// Distance returns 1 - Similarity, the conversion the paper uses in
// Sec. V-D ("the distance is taken as 1 - similarity").
func Distance(m Measure, x, y token.TokenizedString, opt Options) float64 {
	return 1 - Similarity(m, x, y, opt)
}

// totalWeight sums the token weights of a multiset.
func totalWeight(x token.TokenizedString, w Weigher) float64 {
	var sum float64
	for _, t := range x.Tokens {
		sum += w(t)
	}
	return sum
}

// fuzzyOverlap computes the maximum-weight one-to-one matching of tokens
// whose edit similarity reaches the token threshold. Each matched pair
// contributes sim * (w(a)+w(b))/2; the optimum is found with the Hungarian
// algorithm on a scaled integer cost matrix (maximization by negation).
func fuzzyOverlap(x, y token.TokenizedString, opt Options) float64 {
	m, n := x.Count(), y.Count()
	k := m
	if n > k {
		k = n
	}
	if k == 0 {
		return 0
	}
	const scale = 1 << 20
	profit := make([][]float64, k)
	var maxProfit float64
	for i := 0; i < k; i++ {
		profit[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			if i >= m || j >= n {
				continue // padding: zero profit
			}
			sim := editSimilarity(x.TokenRunes(i), y.TokenRunes(j))
			if sim < opt.TokenThreshold {
				continue
			}
			p := sim * (opt.Weights(x.Tokens[i]) + opt.Weights(y.Tokens[j])) / 2
			profit[i][j] = p
			if p > maxProfit {
				maxProfit = p
			}
		}
	}
	if maxProfit == 0 {
		return 0
	}
	// Convert profits to costs for the min-cost solver.
	cost := make([][]int, k)
	for i := range cost {
		cost[i] = make([]int, k)
		for j := range cost[i] {
			cost[i][j] = int((maxProfit - profit[i][j]) / maxProfit * scale)
		}
	}
	asg, _ := assignment.Hungarian(cost)
	var overlap float64
	for i, j := range asg {
		overlap += profit[i][j]
	}
	return overlap
}

// editSimilarity is 1 - NLD, the normalized edit similarity used for
// token-level fuzzy matching.
func editSimilarity(a, b []rune) float64 {
	return 1 - strdist.NLDRunes(a, b)
}
