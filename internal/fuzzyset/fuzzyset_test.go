package fuzzyset

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/token"
)

func ts(tokens ...string) token.TokenizedString { return token.New(tokens) }

func TestIdenticalStringsSimilarityOne(t *testing.T) {
	x := ts("barak", "obama")
	for _, m := range []Measure{FJaccard, FCosine, FDice} {
		if got := Similarity(m, x, x, DefaultOptions()); math.Abs(got-1) > 1e-9 {
			t.Errorf("%v(x,x) = %v, want 1", m, got)
		}
		if got := Distance(m, x, x, DefaultOptions()); math.Abs(got) > 1e-9 {
			t.Errorf("%v distance(x,x) = %v, want 0", m, got)
		}
	}
}

func TestDisjointStringsSimilarityZero(t *testing.T) {
	x := ts("barak", "obama")
	y := ts("xqz", "wvu")
	for _, m := range []Measure{FJaccard, FCosine, FDice} {
		if got := Similarity(m, x, y, DefaultOptions()); got != 0 {
			t.Errorf("%v of disjoint = %v, want 0", m, got)
		}
	}
}

func TestExactJaccardWhenNoFuzzyMatches(t *testing.T) {
	// With δ = 1.0 only identical tokens match, reducing FJaccard to
	// plain (unweighted) Jaccard on token sets.
	x := ts("a", "b", "c")
	y := ts("b", "c", "d")
	opt := Options{TokenThreshold: 1.0}
	// Jaccard = |{b,c}| / |{a,b,c,d}| = 2/4.
	if got := Similarity(FJaccard, x, y, opt); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("FJaccard = %v, want 0.5", got)
	}
	// Dice = 2*2/(3+3).
	if got := Similarity(FDice, x, y, opt); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("FDice = %v, want 2/3", got)
	}
	// Cosine = 2/sqrt(9).
	if got := Similarity(FCosine, x, y, opt); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("FCosine = %v, want 2/3", got)
	}
}

func TestFuzzyTokenMatchCounts(t *testing.T) {
	// "smith" vs "smyth": NLD = 2/(5+5+1) ... LD=1 -> NLD = 2/11 ≈ 0.18,
	// sim ≈ 0.82 >= 0.75, so the pair fuzzily overlaps.
	x := ts("john", "smith")
	y := ts("john", "smyth")
	got := Similarity(FJaccard, x, y, DefaultOptions())
	if got <= 0.5 {
		t.Errorf("fuzzy match should lift similarity above plain Jaccard 1/3: got %v", got)
	}
	if got >= 1 {
		t.Errorf("non-identical strings must have similarity < 1: got %v", got)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for i := 0; i < 300; i++ {
		x := randomTS(rng)
		y := randomTS(rng)
		for _, m := range []Measure{FJaccard, FCosine, FDice} {
			a := Similarity(m, x, y, DefaultOptions())
			b := Similarity(m, y, x, DefaultOptions())
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("%v asymmetric: %v vs %v for %v | %v", m, a, b, x, y)
			}
			if a < 0 || a > 1+1e-9 {
				t.Fatalf("%v out of range: %v", m, a)
			}
		}
	}
}

func randomTS(rng *rand.Rand) token.TokenizedString {
	n := rng.Intn(4)
	toks := make([]string, 0, n)
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(6)
		b := make([]rune, l)
		for j := range b {
			b[j] = rune('a' + rng.Intn(5))
		}
		toks = append(toks, string(b))
	}
	return token.New(toks)
}

func TestIDFWeightsPreferRareTokens(t *testing.T) {
	raw := []string{"john smith", "john doe", "john wu", "zyx smith"}
	c := token.BuildCorpus(raw, token.WhitespaceAndPunct)
	w := IDFWeights(c)
	if w("john") >= w("zyx") {
		t.Errorf("frequent token must weigh less: john=%v zyx=%v", w("john"), w("zyx"))
	}
	opt := Options{TokenThreshold: 1.0, Weights: w}
	// Sharing rare "smith" must beat sharing frequent "john".
	shareRare := Similarity(FJaccard, ts("john", "smith"), ts("zyx", "smith"), opt)
	shareFreq := Similarity(FJaccard, ts("john", "smith"), ts("john", "wu"), opt)
	if shareRare <= shareFreq {
		t.Errorf("rare-token overlap should score higher: %v vs %v", shareRare, shareFreq)
	}
}

func TestEmptyStrings(t *testing.T) {
	empty := ts()
	x := ts("a")
	for _, m := range []Measure{FJaccard, FCosine, FDice} {
		if got := Similarity(m, empty, empty, DefaultOptions()); got != 1 {
			t.Errorf("%v(ε,ε) = %v, want 1", m, got)
		}
		if got := Similarity(m, empty, x, DefaultOptions()); got != 0 {
			t.Errorf("%v(ε,x) = %v, want 0", m, got)
		}
	}
}

// TestOptimalMatching verifies the Hungarian-based overlap beats a bad
// pairing: the crossed alignment is required for the optimum.
func TestOptimalMatching(t *testing.T) {
	x := ts("aaaa", "bbbb")
	y := ts("bbbb", "aaaa")
	if got := Similarity(FJaccard, x, y, DefaultOptions()); math.Abs(got-1) > 1e-9 {
		t.Errorf("shuffled identical tokens must be similarity 1, got %v", got)
	}
}
