// Package experiments regenerates every figure of the paper's evaluation
// (Sec. V) on the synthetic workload, printing the same series the paper
// plots. Each figure has a dedicated runner; cmd/tsjexp and the root
// benchmarks are thin wrappers around them.
//
// Runtime figures use the simulated cluster of internal/mapreduce: task
// costs are measured during the real in-process execution, then scheduled
// onto m simulated machines. The per-job overhead is calibrated once per
// figure from the reference configuration (see calibrate) so that the
// reference speedup saturates the way the paper's does; all series within
// a figure share the same cluster constants, so every comparison between
// algorithms is measurement-driven. EXPERIMENTS.md records the
// paper-vs-measured shapes.
package experiments

import (
	"fmt"
	"io"
	"strconv"
	"text/tabwriter"

	"repro/internal/mapreduce"
	"repro/internal/namegen"
	"repro/internal/token"
)

// Workload parameterizes the synthetic dataset standing in for the
// paper's 44.4M Google-account names.
type Workload struct {
	Seed     int64
	NumNames int
	// HMJNames optionally reduces the corpus for the HMJ comparison
	// (Fig. 7); 0 means NumNames.
	HMJNames int
	// NumChanges is the labeled name-change sample size for Fig. 6;
	// 0 means the paper's 10,000.
	NumChanges int
}

// DefaultWorkload is sized to run every figure in minutes on one machine.
func DefaultWorkload() Workload {
	return Workload{Seed: 42, NumNames: 10000, HMJNames: 4000, NumChanges: 10000}
}

// Corpus materializes the workload.
func (w Workload) Corpus() *token.Corpus {
	names := namegen.Generate(namegen.Config{Seed: w.Seed, NumNames: w.NumNames})
	return token.BuildCorpus(names, token.WhitespaceAndPunct)
}

// Table is one reproduced figure: a titled grid with the paper's series
// as columns.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case int:
			row[i] = strconv.Itoa(v)
		case int64:
			row[i] = strconv.FormatInt(v, 10)
		case float64:
			row[i] = strconv.FormatFloat(v, 'g', 6, 64)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned text rendition.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, h := range t.Header {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, h)
	}
	fmt.Fprintln(tw)
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Machines is the paper's sweep: 100 to 1,000 in steps of 100.
var Machines = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// Thresholds is the paper's T sweep for Figs. 2 and 4.
var Thresholds = []float64{0.025, 0.05, 0.075, 0.1, 0.125, 0.15, 0.175, 0.2, 0.225}

// MaxFreqs is the paper's M sweep for Figs. 3 and 5.
var MaxFreqs = []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}

// calibrate builds the cluster constants for a figure. The per-job
// overhead is set from the reference pipeline so that the reference
// configuration exhibits the paper's ~3.8x speedup from 100 to 1,000
// machines; everything else (task skew, per-task startup, relative
// algorithm costs) comes from measurements. The same Cluster (modulo the
// machine count) is applied to every series of the figure.
func calibrate(ref *mapreduce.Pipeline) func(machines int) mapreduce.Cluster {
	const target = 3.8 // the paper's reference speedup for 10x machines
	// Scheduling time (makespans + shuffle, no per-job overhead) at both
	// ends of the sweep, from the measured task costs.
	zero := func(machines int) mapreduce.Cluster {
		c := mapreduce.DefaultCluster(machines)
		c.PerJobOverheadSec = 0
		return c
	}
	s100 := zero(100).PipelineSeconds(ref)
	s1000 := zero(1000).PipelineSeconds(ref)
	nJobs := float64(len(ref.Jobs))
	if nJobs == 0 {
		nJobs = 1
	}
	// Solve (n*O + S100) / (n*O + S1000) = target for the per-job
	// overhead O. If the measured schedule is already skew-limited below
	// the target (S100/S1000 < target), no overhead can reach it; use a
	// negligible one and let the measured skew dictate the curve.
	overhead := (s100 - target*s1000) / (target - 1) / nJobs
	if overhead < 1e-9 {
		overhead = 1e-9
	}
	return func(machines int) mapreduce.Cluster {
		c := mapreduce.DefaultCluster(machines)
		c.PerJobOverheadSec = overhead
		return c
	}
}

// fmtSecs renders simulated seconds compactly with enough significant
// digits that small-workload test runs keep their resolution.
func fmtSecs(s float64) string {
	return strconv.FormatFloat(s, 'g', 5, 64)
}

// fmtRecall renders recall with the paper's precision.
func fmtRecall(r float64) string {
	return strconv.FormatFloat(r, 'f', 6, 64)
}

// simMapTasks is the input-split count used for all simulated runs. The
// paper's cluster runs 1,000 mappers; using at least 2,000 splits lets the
// map phase of the simulated makespan scale to the full machine sweep
// regardless of how few cores the host running the simulation has.
const simMapTasks = 2000
