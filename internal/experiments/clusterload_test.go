package experiments

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	tsjoin "repro"
	"repro/internal/backoff"
	"repro/internal/distrib"
)

// TestClusterLoadAgainstCoordinator drives the cluster load generator at
// an in-process coordinator over two in-memory workers and checks the
// report's shape: both op rows present with the full sample counts, and
// the engine-vs-end-to-end split note rendered.
func TestClusterLoadAgainstCoordinator(t *testing.T) {
	newWorker := func() string {
		m, err := tsjoin.NewConcurrentMatcher(tsjoin.ConcurrentMatcherOptions{
			MatcherOptions: tsjoin.MatcherOptions{Threshold: 0.2},
			Shards:         2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		ts := httptest.NewServer(distrib.WorkerMux(m, nil))
		t.Cleanup(ts.Close)
		return ts.URL
	}
	pm := distrib.Map{Shards: []distrib.Shard{{Worker: newWorker()}, {Worker: newWorker()}}}
	co := httptest.NewServer(distrib.New(pm, distrib.Options{
		QueryTimeout: 3 * time.Second,
		WriteTimeout: 5 * time.Second,
		Retry:        backoff.Policy{Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond},
	}).Handler())
	t.Cleanup(co.Close)

	const names, qpa = 60, 2
	tbl, err := ClusterLoad(ClusterLoadConfig{
		Coordinator:   co.URL,
		Seed:          11,
		NumNames:      names,
		Clients:       4,
		QueriesPerAdd: qpa,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want add + query", len(tbl.Rows))
	}
	wantCounts := map[string]int{"add": names, "query": names * qpa}
	for _, row := range tbl.Rows {
		op := row[0]
		if got := parseF(t, row[1]); int(got) != wantCounts[op] {
			t.Fatalf("%s count = %v, want %d", op, got, wantCounts[op])
		}
		for _, cell := range row[3:] {
			if !strings.HasSuffix(cell, "ms") {
				t.Fatalf("%s latency cell %q not in ms", op, cell)
			}
		}
	}
	split := tbl.Notes[0]
	if !strings.Contains(split, "worker engine wall") || !strings.Contains(split, "total client time") {
		t.Fatalf("split note missing: %q", split)
	}
	if !strings.Contains(tbl.Notes[1], "grew 0 -> 60 strings across 2 workers") {
		t.Fatalf("growth note wrong: %q", tbl.Notes[1])
	}
}
